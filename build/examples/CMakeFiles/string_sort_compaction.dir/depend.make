# Empty dependencies file for string_sort_compaction.
# This may be replaced when dependencies are built.
