file(REMOVE_RECURSE
  "CMakeFiles/string_sort_compaction.dir/string_sort_compaction.cpp.o"
  "CMakeFiles/string_sort_compaction.dir/string_sort_compaction.cpp.o.d"
  "string_sort_compaction"
  "string_sort_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_sort_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
