# Empty dependencies file for spmv_row_binning.
# This may be replaced when dependencies are built.
