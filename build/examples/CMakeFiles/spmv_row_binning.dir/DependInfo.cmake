
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spmv_row_binning.cpp" "examples/CMakeFiles/spmv_row_binning.dir/spmv_row_binning.cpp.o" "gcc" "examples/CMakeFiles/spmv_row_binning.dir/spmv_row_binning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ms_multisplit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
