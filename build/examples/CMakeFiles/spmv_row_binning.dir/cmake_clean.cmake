file(REMOVE_RECURSE
  "CMakeFiles/spmv_row_binning.dir/spmv_row_binning.cpp.o"
  "CMakeFiles/spmv_row_binning.dir/spmv_row_binning.cpp.o.d"
  "spmv_row_binning"
  "spmv_row_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_row_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
