# Empty dependencies file for ray_bucketing.
# This may be replaced when dependencies are built.
