file(REMOVE_RECURSE
  "CMakeFiles/ray_bucketing.dir/ray_bucketing.cpp.o"
  "CMakeFiles/ray_bucketing.dir/ray_bucketing.cpp.o.d"
  "ray_bucketing"
  "ray_bucketing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ray_bucketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
