# Empty compiler generated dependencies file for hash_join_buckets.
# This may be replaced when dependencies are built.
