file(REMOVE_RECURSE
  "CMakeFiles/hash_join_buckets.dir/hash_join_buckets.cpp.o"
  "CMakeFiles/hash_join_buckets.dir/hash_join_buckets.cpp.o.d"
  "hash_join_buckets"
  "hash_join_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_join_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
