# Empty compiler generated dependencies file for topk_selection.
# This may be replaced when dependencies are built.
