file(REMOVE_RECURSE
  "CMakeFiles/topk_selection.dir/topk_selection.cpp.o"
  "CMakeFiles/topk_selection.dir/topk_selection.cpp.o.d"
  "topk_selection"
  "topk_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
