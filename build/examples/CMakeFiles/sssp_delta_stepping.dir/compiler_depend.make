# Empty compiler generated dependencies file for sssp_delta_stepping.
# This may be replaced when dependencies are built.
