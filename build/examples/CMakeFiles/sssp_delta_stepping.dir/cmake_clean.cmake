file(REMOVE_RECURSE
  "CMakeFiles/sssp_delta_stepping.dir/sssp_delta_stepping.cpp.o"
  "CMakeFiles/sssp_delta_stepping.dir/sssp_delta_stepping.cpp.o.d"
  "sssp_delta_stepping"
  "sssp_delta_stepping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_delta_stepping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
