# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sssp_delta_stepping "/root/repo/build/examples/sssp_delta_stepping")
set_tests_properties(example_sssp_delta_stepping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ray_bucketing "/root/repo/build/examples/ray_bucketing")
set_tests_properties(example_ray_bucketing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topk_selection "/root/repo/build/examples/topk_selection")
set_tests_properties(example_topk_selection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hash_join_buckets "/root/repo/build/examples/hash_join_buckets")
set_tests_properties(example_hash_join_buckets PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spmv_row_binning "/root/repo/build/examples/spmv_row_binning")
set_tests_properties(example_spmv_row_binning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_string_sort_compaction "/root/repo/build/examples/string_sort_compaction")
set_tests_properties(example_string_sort_compaction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
