# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_ms_cli "/root/repo/build/tools/ms_cli" "--method" "all" "--m" "8" "--n" "14")
set_tests_properties(tool_ms_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_ms_cli_list "/root/repo/build/tools/ms_cli" "--list")
set_tests_properties(tool_ms_cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
