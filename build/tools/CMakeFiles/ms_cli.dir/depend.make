# Empty dependencies file for ms_cli.
# This may be replaced when dependencies are built.
