file(REMOVE_RECURSE
  "CMakeFiles/ms_cli.dir/ms_cli.cpp.o"
  "CMakeFiles/ms_cli.dir/ms_cli.cpp.o.d"
  "ms_cli"
  "ms_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
