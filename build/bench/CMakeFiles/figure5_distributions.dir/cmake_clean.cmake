file(REMOVE_RECURSE
  "CMakeFiles/figure5_distributions.dir/figure5_distributions.cpp.o"
  "CMakeFiles/figure5_distributions.dir/figure5_distributions.cpp.o.d"
  "figure5_distributions"
  "figure5_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
