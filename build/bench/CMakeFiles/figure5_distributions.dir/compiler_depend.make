# Empty compiler generated dependencies file for figure5_distributions.
# This may be replaced when dependencies are built.
