file(REMOVE_RECURSE
  "CMakeFiles/ablation_reduced_bit_permute.dir/ablation_reduced_bit_permute.cpp.o"
  "CMakeFiles/ablation_reduced_bit_permute.dir/ablation_reduced_bit_permute.cpp.o.d"
  "ablation_reduced_bit_permute"
  "ablation_reduced_bit_permute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reduced_bit_permute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
