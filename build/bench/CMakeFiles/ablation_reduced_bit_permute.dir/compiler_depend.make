# Empty compiler generated dependencies file for ablation_reduced_bit_permute.
# This may be replaced when dependencies are built.
