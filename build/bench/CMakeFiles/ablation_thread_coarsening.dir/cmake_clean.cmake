file(REMOVE_RECURSE
  "CMakeFiles/ablation_thread_coarsening.dir/ablation_thread_coarsening.cpp.o"
  "CMakeFiles/ablation_thread_coarsening.dir/ablation_thread_coarsening.cpp.o.d"
  "ablation_thread_coarsening"
  "ablation_thread_coarsening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thread_coarsening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
