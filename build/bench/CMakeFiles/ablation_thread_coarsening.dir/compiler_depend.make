# Empty compiler generated dependencies file for ablation_thread_coarsening.
# This may be replaced when dependencies are built.
