file(REMOVE_RECURSE
  "CMakeFiles/ablation_recompute_vs_store.dir/ablation_recompute_vs_store.cpp.o"
  "CMakeFiles/ablation_recompute_vs_store.dir/ablation_recompute_vs_store.cpp.o.d"
  "ablation_recompute_vs_store"
  "ablation_recompute_vs_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recompute_vs_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
