# Empty compiler generated dependencies file for ablation_recompute_vs_store.
# This may be replaced when dependencies are built.
