file(REMOVE_RECURSE
  "CMakeFiles/ablation_delta_sweep.dir/ablation_delta_sweep.cpp.o"
  "CMakeFiles/ablation_delta_sweep.dir/ablation_delta_sweep.cpp.o.d"
  "ablation_delta_sweep"
  "ablation_delta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
