# Empty compiler generated dependencies file for figure3_time_vs_buckets.
# This may be replaced when dependencies are built.
