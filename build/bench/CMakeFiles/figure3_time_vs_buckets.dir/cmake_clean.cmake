file(REMOVE_RECURSE
  "CMakeFiles/figure3_time_vs_buckets.dir/figure3_time_vs_buckets.cpp.o"
  "CMakeFiles/figure3_time_vs_buckets.dir/figure3_time_vs_buckets.cpp.o.d"
  "figure3_time_vs_buckets"
  "figure3_time_vs_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_time_vs_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
