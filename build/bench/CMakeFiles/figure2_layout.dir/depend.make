# Empty dependencies file for figure2_layout.
# This may be replaced when dependencies are built.
