file(REMOVE_RECURSE
  "CMakeFiles/figure2_layout.dir/figure2_layout.cpp.o"
  "CMakeFiles/figure2_layout.dir/figure2_layout.cpp.o.d"
  "figure2_layout"
  "figure2_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
