# Empty dependencies file for ablation_randomized_insertion.
# This may be replaced when dependencies are built.
