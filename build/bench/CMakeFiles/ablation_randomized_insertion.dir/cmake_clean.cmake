file(REMOVE_RECURSE
  "CMakeFiles/ablation_randomized_insertion.dir/ablation_randomized_insertion.cpp.o"
  "CMakeFiles/ablation_randomized_insertion.dir/ablation_randomized_insertion.cpp.o.d"
  "ablation_randomized_insertion"
  "ablation_randomized_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_randomized_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
