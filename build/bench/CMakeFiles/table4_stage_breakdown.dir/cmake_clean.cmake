file(REMOVE_RECURSE
  "CMakeFiles/table4_stage_breakdown.dir/table4_stage_breakdown.cpp.o"
  "CMakeFiles/table4_stage_breakdown.dir/table4_stage_breakdown.cpp.o.d"
  "table4_stage_breakdown"
  "table4_stage_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_stage_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
