# Empty dependencies file for table4_stage_breakdown.
# This may be replaced when dependencies are built.
