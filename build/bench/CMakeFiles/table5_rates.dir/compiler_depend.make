# Empty compiler generated dependencies file for table5_rates.
# This may be replaced when dependencies are built.
