file(REMOVE_RECURSE
  "CMakeFiles/table5_rates.dir/table5_rates.cpp.o"
  "CMakeFiles/table5_rates.dir/table5_rates.cpp.o.d"
  "table5_rates"
  "table5_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
