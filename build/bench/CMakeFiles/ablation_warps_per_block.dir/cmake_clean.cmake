file(REMOVE_RECURSE
  "CMakeFiles/ablation_warps_per_block.dir/ablation_warps_per_block.cpp.o"
  "CMakeFiles/ablation_warps_per_block.dir/ablation_warps_per_block.cpp.o.d"
  "ablation_warps_per_block"
  "ablation_warps_per_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warps_per_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
