# Empty compiler generated dependencies file for ablation_warps_per_block.
# This may be replaced when dependencies are built.
