# Empty dependencies file for sssp_footnote1.
# This may be replaced when dependencies are built.
