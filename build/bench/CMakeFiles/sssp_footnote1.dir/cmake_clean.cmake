file(REMOVE_RECURSE
  "CMakeFiles/sssp_footnote1.dir/sssp_footnote1.cpp.o"
  "CMakeFiles/sssp_footnote1.dir/sssp_footnote1.cpp.o.d"
  "sssp_footnote1"
  "sssp_footnote1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_footnote1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
