# Empty compiler generated dependencies file for ablation_fused_sort.
# This may be replaced when dependencies are built.
