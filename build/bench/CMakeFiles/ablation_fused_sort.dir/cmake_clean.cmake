file(REMOVE_RECURSE
  "CMakeFiles/ablation_fused_sort.dir/ablation_fused_sort.cpp.o"
  "CMakeFiles/ablation_fused_sort.dir/ablation_fused_sort.cpp.o.d"
  "ablation_fused_sort"
  "ablation_fused_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fused_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
