file(REMOVE_RECURSE
  "CMakeFiles/figure4_many_buckets.dir/figure4_many_buckets.cpp.o"
  "CMakeFiles/figure4_many_buckets.dir/figure4_many_buckets.cpp.o.d"
  "figure4_many_buckets"
  "figure4_many_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_many_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
