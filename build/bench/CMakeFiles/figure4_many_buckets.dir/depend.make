# Empty dependencies file for figure4_many_buckets.
# This may be replaced when dependencies are built.
