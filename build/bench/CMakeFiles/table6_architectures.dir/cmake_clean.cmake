file(REMOVE_RECURSE
  "CMakeFiles/table6_architectures.dir/table6_architectures.cpp.o"
  "CMakeFiles/table6_architectures.dir/table6_architectures.cpp.o.d"
  "table6_architectures"
  "table6_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
