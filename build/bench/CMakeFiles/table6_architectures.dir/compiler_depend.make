# Empty compiler generated dependencies file for table6_architectures.
# This may be replaced when dependencies are built.
