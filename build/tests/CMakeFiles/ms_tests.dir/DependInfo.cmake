
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_block_ops.cpp" "tests/CMakeFiles/ms_tests.dir/test_block_ops.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_block_ops.cpp.o.d"
  "/root/repo/tests/test_buckets.cpp" "tests/CMakeFiles/ms_tests.dir/test_buckets.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_buckets.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/ms_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_compact.cpp" "tests/CMakeFiles/ms_tests.dir/test_compact.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_compact.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/ms_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/ms_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/ms_tests.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/ms_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/ms_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/ms_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_intrinsics.cpp" "tests/CMakeFiles/ms_tests.dir/test_intrinsics.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_intrinsics.cpp.o.d"
  "/root/repo/tests/test_lane_array.cpp" "tests/CMakeFiles/ms_tests.dir/test_lane_array.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_lane_array.cpp.o.d"
  "/root/repo/tests/test_memory_model.cpp" "tests/CMakeFiles/ms_tests.dir/test_memory_model.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_memory_model.cpp.o.d"
  "/root/repo/tests/test_multisplit_correctness.cpp" "tests/CMakeFiles/ms_tests.dir/test_multisplit_correctness.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_multisplit_correctness.cpp.o.d"
  "/root/repo/tests/test_multisplit_edge_cases.cpp" "tests/CMakeFiles/ms_tests.dir/test_multisplit_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_multisplit_edge_cases.cpp.o.d"
  "/root/repo/tests/test_multisplit_fuzz.cpp" "tests/CMakeFiles/ms_tests.dir/test_multisplit_fuzz.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_multisplit_fuzz.cpp.o.d"
  "/root/repo/tests/test_multisplit_large_m.cpp" "tests/CMakeFiles/ms_tests.dir/test_multisplit_large_m.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_multisplit_large_m.cpp.o.d"
  "/root/repo/tests/test_multisplit_u64_values.cpp" "tests/CMakeFiles/ms_tests.dir/test_multisplit_u64_values.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_multisplit_u64_values.cpp.o.d"
  "/root/repo/tests/test_paper_shapes.cpp" "tests/CMakeFiles/ms_tests.dir/test_paper_shapes.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_paper_shapes.cpp.o.d"
  "/root/repo/tests/test_radix_sort.cpp" "tests/CMakeFiles/ms_tests.dir/test_radix_sort.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_radix_sort.cpp.o.d"
  "/root/repo/tests/test_randomized_insertion.cpp" "tests/CMakeFiles/ms_tests.dir/test_randomized_insertion.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_randomized_insertion.cpp.o.d"
  "/root/repo/tests/test_scan.cpp" "tests/CMakeFiles/ms_tests.dir/test_scan.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_scan.cpp.o.d"
  "/root/repo/tests/test_sort_baselines.cpp" "tests/CMakeFiles/ms_tests.dir/test_sort_baselines.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_sort_baselines.cpp.o.d"
  "/root/repo/tests/test_sssp.cpp" "tests/CMakeFiles/ms_tests.dir/test_sssp.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_sssp.cpp.o.d"
  "/root/repo/tests/test_warp_ops.cpp" "tests/CMakeFiles/ms_tests.dir/test_warp_ops.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_warp_ops.cpp.o.d"
  "/root/repo/tests/test_warp_scan.cpp" "tests/CMakeFiles/ms_tests.dir/test_warp_scan.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_warp_scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ms_multisplit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
