file(REMOVE_RECURSE
  "CMakeFiles/ms_multisplit.dir/multisplit/multisplit.cpp.o"
  "CMakeFiles/ms_multisplit.dir/multisplit/multisplit.cpp.o.d"
  "libms_multisplit.a"
  "libms_multisplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_multisplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
