# Empty compiler generated dependencies file for ms_multisplit.
# This may be replaced when dependencies are built.
