file(REMOVE_RECURSE
  "libms_multisplit.a"
)
