file(REMOVE_RECURSE
  "CMakeFiles/ms_primitives.dir/primitives/radix_sort.cpp.o"
  "CMakeFiles/ms_primitives.dir/primitives/radix_sort.cpp.o.d"
  "libms_primitives.a"
  "libms_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
