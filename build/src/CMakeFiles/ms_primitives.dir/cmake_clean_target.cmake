file(REMOVE_RECURSE
  "libms_primitives.a"
)
