# Empty dependencies file for ms_primitives.
# This may be replaced when dependencies are built.
