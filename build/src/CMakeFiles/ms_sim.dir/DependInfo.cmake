
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/ms_sim.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/ms_sim.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/ms_sim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/ms_sim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/ms_sim.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/ms_sim.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/profile.cpp" "src/CMakeFiles/ms_sim.dir/sim/profile.cpp.o" "gcc" "src/CMakeFiles/ms_sim.dir/sim/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
