file(REMOVE_RECURSE
  "CMakeFiles/ms_sim.dir/sim/cache.cpp.o"
  "CMakeFiles/ms_sim.dir/sim/cache.cpp.o.d"
  "CMakeFiles/ms_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/ms_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/ms_sim.dir/sim/device.cpp.o"
  "CMakeFiles/ms_sim.dir/sim/device.cpp.o.d"
  "CMakeFiles/ms_sim.dir/sim/profile.cpp.o"
  "CMakeFiles/ms_sim.dir/sim/profile.cpp.o.d"
  "libms_sim.a"
  "libms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
