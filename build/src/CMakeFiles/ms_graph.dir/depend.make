# Empty dependencies file for ms_graph.
# This may be replaced when dependencies are built.
