file(REMOVE_RECURSE
  "CMakeFiles/ms_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/ms_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/ms_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/ms_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/ms_graph.dir/graph/sssp.cpp.o"
  "CMakeFiles/ms_graph.dir/graph/sssp.cpp.o.d"
  "libms_graph.a"
  "libms_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
