file(REMOVE_RECURSE
  "libms_graph.a"
)
