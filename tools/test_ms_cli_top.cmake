# CTest script for tool_ms_cli_top: produce a telemetry timeline with
# bench/plan_reuse --telemetry, then render its final snapshot with
# `ms_cli top` and check the Prometheus text output carries the expected
# series.  Run via:
#   cmake -DPLAN_REUSE=... -DMS_CLI=... -DWORK_DIR=... -P test_ms_cli_top.cmake

foreach(var PLAN_REUSE MS_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(timeline "${WORK_DIR}/ms_cli_top_timeline.jsonl")
file(REMOVE "${timeline}")

execute_process(
  COMMAND "${PLAN_REUSE}" --json "${WORK_DIR}/ms_cli_top_report.json"
          --telemetry "${timeline}"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "plan_reuse --telemetry exited ${bench_rc}")
endif()
if(NOT EXISTS "${timeline}")
  message(FATAL_ERROR "plan_reuse did not write ${timeline}")
endif()

execute_process(
  COMMAND "${MS_CLI}" top "${timeline}"
  RESULT_VARIABLE top_rc
  OUTPUT_VARIABLE top_out)
if(NOT top_rc EQUAL 0)
  message(FATAL_ERROR "ms_cli top exited ${top_rc}:\n${top_out}")
endif()

# The Prometheus rendering must expose the allocator/L2 gauges, the
# request latency summary with percentile quantiles, and the resilience
# instruments (pre-registered by enable_telemetry, so they appear -- as
# zeros -- even in fault-free runs).
foreach(needle
    "ms_allocator_bytes_reserved"
    "ms_l2_read_hit_pct"
    "ms_request_modeled_ms"
    "quantile=\"0.99\""
    "ms_resilience_retries"
    "ms_request_retry_ms")
  string(FIND "${top_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "ms_cli top output missing '${needle}':\n${top_out}")
  endif()
endforeach()

message(STATUS "OK: ms_cli top rendered the timeline's final snapshot")
