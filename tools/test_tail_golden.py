#!/usr/bin/env python3
"""Golden-output test for `ms_cli tail`.

Drives the tail subcommand over the committed span-dump fixture in
tools/testdata/ and checks the output and exit-code contract:

  0  rendered        (the fixture: p99 line, ranked attribution table
                      summing to 100%, retry-backoff category from the
                      chaos-recovered requests, slowest-N trees with the
                      request/attempt/stage/launch nesting and fault
                      events; every listed request >= 95% attributed)
  2  unusable input  (a telemetry timeline is not a span dump; missing
                      file)

Usage: test_tail_golden.py <ms_cli-binary> <testdata-dir>
"""

import re
import subprocess
import sys
from pathlib import Path


def run_tail(ms_cli, *args):
    proc = subprocess.run([str(ms_cli), "tail", *map(str, args)],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    ms_cli = Path(sys.argv[1])
    data = Path(sys.argv[2])
    fixture = data / "spans_chaos_small.jsonl"
    not_spans = data / "diff_base.json"
    failures = []

    code, out = run_tail(ms_cli, fixture, "--top", "3")
    if code != 0:
        failures.append(f"fixture: expected exit 0, got {code}\n{out}")
    for needle in (
            "p99 request latency:",
            "tail-latency attribution",
            "retry backoff",
            "launch overhead",
            "slowest 3 request(s)",
            "request:",
            "attempt:",
            "stage:",
            "launch:",
            "! retry",
    ):
        if needle not in out:
            failures.append(f"fixture: output missing '{needle}'\n{out}")

    # The acceptance bar: every slow request's latency >= 95% attributed
    # to named categories (the span model makes it exactly 100%).
    shares = re.findall(r"attributed (\d+(?:\.\d+)?)%", out)
    if not shares:
        failures.append(f"fixture: no per-request attribution lines\n{out}")
    for s in shares:
        if float(s) < 95.0:
            failures.append(f"fixture: request only {s}% attributed\n{out}")
    total = re.search(r"^  total\s+\S+\s+(\d+(?:\.\d+)?)%", out, re.M)
    if total is None:
        failures.append(f"fixture: no attribution total line\n{out}")
    elif float(total.group(1)) < 95.0:
        failures.append(
            f"fixture: tail set only {total.group(1)}% attributed\n{out}")

    code, out = run_tail(ms_cli, not_spans)
    if code != 2 or "not a span dump" not in out:
        failures.append(
            f"non-span input: expected exit 2 + diagnostic, got {code}\n{out}")

    code, out = run_tail(ms_cli, data / "no_such_file.jsonl")
    if code != 2:
        failures.append(f"missing file: expected exit 2, got {code}\n{out}")

    if failures:
        print("FAIL: ms_cli tail golden contract:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("OK: ms_cli tail golden contract holds over committed fixtures")
    return 0


if __name__ == "__main__":
    sys.exit(main())
