#!/usr/bin/env python3
"""Summarize the bench-history trajectory (bench/history/*.jsonl).

Each line of a history file is one recorded bench run (written by
`check_bench.py record`): git sha, schema version, host threads, the
bench's headline metrics per configuration, and request-latency
percentiles when the run carried a telemetry timeline.  This tool reads
those files and prints, per bench:

  - run count and the sha/time span covered,
  - per configuration: modeled headline first -> last (modeled drift is a
    real behavior change -- the simulator is deterministic),
  - host_keys_per_sec first -> last (host speed, noisy, min-of-trials),
  - latest request-latency percentiles when present.

Exit codes: 0 = summarized cleanly, 1 = malformed history (bad JSON,
missing fields, schema mismatch), 2 = usage error / nothing to read.

Usage: bench_history.py --summarize [file.jsonl | dir] ...
       (default path: bench/history next to this script's repo)
"""

import json
import sys
from pathlib import Path

# Must match kReportSchemaVersion (src/sim/metrics.hpp) and
# check_bench.py's SCHEMA_VERSION.  History records are append-only, so
# older stamps stay readable as long as the record fields are unchanged:
# v6 only added the "resilience" block to metrics reports and v7 only
# touched span dumps / timeline exemplars -- history rows carry the same
# fields as v5.  v8 adds the "batching" block and serving rows'
# requests_per_sec; every earlier field is unchanged.
SCHEMA_VERSION = 8
COMPATIBLE_VERSIONS = (5, 6, 7, 8)

REQUIRED_FIELDS = (
    "history", "schema_version", "utc", "git_sha", "bench", "device",
    "log2_n", "trials", "host_threads", "results",
)


def load_history(path):
    """Parse one .jsonl history file into a list of run entries.

    Raises SystemExit(1) on malformed lines: history files are appended by
    tooling, so damage means something is wrong with the pipeline, not the
    data -- fail loudly.
    """
    entries = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"FAIL: {path}:{lineno}: malformed JSON: {e}")
        for field in REQUIRED_FIELDS:
            if field not in entry:
                raise SystemExit(
                    f"FAIL: {path}:{lineno}: missing field {field!r}")
        if entry["history"] != "bench_run":
            raise SystemExit(
                f"FAIL: {path}:{lineno}: not a bench_run record")
        if entry["schema_version"] not in COMPATIBLE_VERSIONS:
            raise SystemExit(
                f"FAIL: {path}:{lineno}: schema_version "
                f"{entry['schema_version']!r}, this tool reads "
                f"{COMPATIBLE_VERSIONS}")
        entries.append(entry)
    return entries


def headline(row):
    """Headline metric of one result row, preferring throughput.  Serving
    rows (v8) lead with request throughput."""
    if "requests_per_sec" in row:
        return row["requests_per_sec"], "req/s"
    if "rate_gkeys" in row:
        return row["rate_gkeys"], "Gkeys/s"
    if "steady_ms" in row:
        return row["steady_ms"], "steady ms"
    if "total_ms" in row:
        return row["total_ms"], "ms"
    return None, ""


def config_key(row):
    return (row.get("method"), row.get("m"), row.get("key_value"))


def pct_change(first, last):
    if first in (None, 0):
        return ""
    return f" ({(last - first) / first * 100.0:+.1f}%)"


def summarize_file(path):
    entries = load_history(path)
    if not entries:
        print(f"{path.name}: empty history")
        return
    first, last = entries[0], entries[-1]
    print(f"{last['bench']}: {len(entries)} run(s), "
          f"{first['git_sha']} ({first['utc']}) -> "
          f"{last['git_sha']} ({last['utc']}), "
          f"device {last['device']}, n=2^{last['log2_n']}, "
          f"host_threads {last['host_threads']}")

    first_rows = {config_key(r): r for r in first["results"]}
    for row in last["results"]:
        key = config_key(row)
        base = first_rows.get(key)
        val, unit = headline(row)
        if val is None:
            continue
        base_val = headline(base)[0] if base is not None else None
        span = (f"{base_val:10.3f} -> {val:10.3f} {unit}"
                f"{pct_change(base_val, val)}"
                if base_val is not None else f"{val:10.3f} {unit}")
        host = ""
        if "host_keys_per_sec" in row:
            base_host = (base or {}).get("host_keys_per_sec")
            host = f" | host {row['host_keys_per_sec']:10.3e} keys/s"
            if base_host:
                host += pct_change(base_host, row["host_keys_per_sec"])
        method, m, kv = key
        print(f"  {method:<18} m={m!s:<4} {'kv' if kv else 'key':<3} "
              f"{span}{host}")

    for name, h in (last.get("latency") or {}).items():
        print(f"  latency {name}: count {h['count']} "
              f"p50 {h['p50_ms']:.4f} p95 {h['p95_ms']:.4f} "
              f"p99 {h['p99_ms']:.4f} p99.9 {h['p999_ms']:.4f} "
              f"max {h['max_ms']:.4f} ms")

    # Resilience digest (v7 records): first -> last delta of the executor
    # accounting, so chaos-enabled history shows retry/fallback drift.
    res_last = last.get("resilience")
    if res_last:
        res_first = first.get("resilience") or {}
        parts = []
        for k in ("retries", "fallbacks", "recovered", "lost"):
            if k not in res_last:
                continue
            f_val, l_val = res_first.get(k), res_last[k]
            parts.append(f"{k} {f_val} -> {l_val}" if f_val is not None
                         and len(entries) > 1 else f"{k} {l_val}")
        if parts:
            print(f"  resilience: {', '.join(parts)}")

    # Batching digest (v8 records): serving-executor packing pressure of
    # the latest run (top-level for ms_cli-style reports, else the densest
    # per-row block a serving bench recorded).
    bat = last.get("batching")
    if not bat:
        rows = [r.get("batching") for r in last["results"]
                if isinstance(r.get("batching"), dict)]
        bat = max(rows, key=lambda b: b.get("batches", 0), default=None)
    if bat:
        fill = bat.get("fill_ratio")
        fill_txt = f", fill {fill * 100.0:.1f}%" if fill is not None else ""
        print(f"  batching: {bat.get('batches', 0)} batch(es), "
              f"{bat.get('packed_problems', 0)} packed / "
              f"{bat.get('unpacked_problems', 0)} unpacked, "
              f"{bat.get('fused_launches', 0)} fused launch(es)"
              f"{fill_txt}")


def main():
    args = sys.argv[1:]
    if "--summarize" not in args:
        print(__doc__, file=sys.stderr)
        return 2
    paths = [Path(a) for a in args if a != "--summarize"]
    if not paths:
        paths = [Path(__file__).resolve().parent.parent / "bench" / "history"]
    files = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.glob("*.jsonl")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"bench_history: no such file or directory: {p}",
                  file=sys.stderr)
            return 2
    if not files:
        print("bench_history: no history files found (run "
              "`check_bench.py record <bench>` to start one)")
        return 0
    for i, f in enumerate(files):
        if i:
            print()
        summarize_file(f)
    return 0


if __name__ == "__main__":
    sys.exit(main())
