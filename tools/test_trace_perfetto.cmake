# CTest script for tool_trace_perfetto: produce a span-augmented Chrome
# trace with `ms_cli --trace --spans`, then lint it for Perfetto
# compatibility (event structure, slice nesting, flow pairing, span-track
# naming).  Run via:
#   cmake -DMS_CLI=... -DPYTHON=... -DLINT=... -DWORK_DIR=... \
#         -P test_trace_perfetto.cmake

foreach(var MS_CLI PYTHON LINT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(trace "${WORK_DIR}/perfetto_span_trace.json")
set(spans "${WORK_DIR}/perfetto_span_dump.jsonl")
file(REMOVE "${trace}" "${spans}")

execute_process(
  COMMAND "${MS_CLI}" --method block --m 8 --n 12
          --trace "${trace}" --spans "${spans}"
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "ms_cli --trace --spans exited ${run_rc}")
endif()
foreach(out "${trace}" "${spans}")
  if(NOT EXISTS "${out}")
    message(FATAL_ERROR "ms_cli did not write ${out}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${LINT}" "${trace}" --require-spans
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "Perfetto lint failed (${lint_rc}):\n${lint_out}")
endif()

message(STATUS "OK: span-augmented trace is Perfetto-compatible")
