#!/usr/bin/env python3
"""Golden test for `ms_cli --help`.

The top-level usage text is the CLI's table of contents: it must
enumerate EVERY subcommand (run, metrics, diff, top, tail, chaos,
serve) so none of them is discoverable only by reading the source, and
`--help` must exit 2 -- the "printed usage, ran nothing" code shared
with every other bad-invocation path -- so scripts can distinguish it
from a successful run (0) and a failed one (1).

Usage: test_help_golden.py <ms_cli-binary>
"""

import subprocess
import sys

SUBCOMMANDS = ["run", "metrics", "diff", "top", "tail", "chaos", "serve"]


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    ms_cli = sys.argv[1]
    failures = []

    proc = subprocess.run([ms_cli, "--help"], capture_output=True, text=True)
    out = proc.stdout + proc.stderr
    if proc.returncode != 2:
        failures.append(f"--help: expected exit 2, got {proc.returncode}")
    if "usage:" not in out:
        failures.append("--help: output does not start a usage block")
    # Every subcommand must appear both in the one-line synopsis and as a
    # described entry in the subcommands section.
    for sub in SUBCOMMANDS:
        if out.count(sub) < 2:
            failures.append(
                f"--help: subcommand '{sub}' not enumerated in both the "
                f"synopsis and the subcommands section")
    if "subcommands:" not in out:
        failures.append("--help: missing the 'subcommands:' section")

    # An unknown flag prints the same usage but exits 1 (an error, not a
    # help request).
    proc = subprocess.run([ms_cli, "--definitely-not-a-flag"],
                          capture_output=True, text=True)
    if proc.returncode != 1:
        failures.append(
            f"unknown flag: expected exit 1, got {proc.returncode}")
    if "usage:" not in proc.stdout + proc.stderr:
        failures.append("unknown flag: usage text not printed")

    if failures:
        print("FAIL: ms_cli --help golden test:")
        for f in failures:
            print("  " + f)
        print("---- captured --help output ----")
        print(out)
        return 1
    print("OK: ms_cli --help enumerates every subcommand and exits 2")
    return 0


if __name__ == "__main__":
    sys.exit(main())
