// ms_cli: run any multisplit method on a synthetic workload from the
// command line and inspect timing, throughput and event counters --
// a quick way to explore the implementation space without writing code.
//
//   $ ms_cli --method warp --m 8 --n 20 --dist binomial --kv
//   $ ms_cli --method all --m 32 --device 750ti
//   $ ms_cli --list
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "multisplit/multisplit.hpp"
#include "multisplit/sort_baselines.hpp"
#include "sim/cost_model.hpp"
#include "workload/distributions.hpp"

using namespace ms;

namespace {

const std::map<std::string, split::Method> kMethods = {
    {"direct", split::Method::kDirect},
    {"warp", split::Method::kWarpLevel},
    {"block", split::Method::kBlockLevel},
    {"scan_split", split::Method::kScanSplit},
    {"recursive_split", split::Method::kRecursiveScanSplit},
    {"reduced_bit", split::Method::kReducedBitSort},
    {"randomized", split::Method::kRandomizedInsertion},
    {"fused_sort", split::Method::kFusedBucketSort},
};

const std::map<std::string, workload::Distribution> kDists = {
    {"uniform", workload::Distribution::kUniform},
    {"binomial", workload::Distribution::kBinomial},
    {"skewed", workload::Distribution::kSkewedOne},
    {"identity", workload::Distribution::kIdentity},
    {"sorted", workload::Distribution::kSortedUniform},
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --method <name|all>   one of:", argv0);
  for (const auto& [name, _] : kMethods) std::printf(" %s", name.c_str());
  std::printf(
      "\n"
      "  --m <buckets>         bucket count (default 8)\n"
      "  --n <log2 keys>       input size as a power of two (default 20)\n"
      "  --dist <name>         uniform|binomial|skewed|identity|sorted\n"
      "  --device <name>       k40c (default) | 750ti | sol\n"
      "  --kv                  key-value instead of key-only\n"
      "  --nw <warps>          warps per block (default 8)\n"
      "  --ipt <items>         items per thread, warp methods (default 1)\n"
      "  --seed <u64>          workload seed\n"
      "  --list                list methods and exit\n");
}

struct Args {
  std::string method = "block";
  u32 m = 8;
  u32 log2_n = 20;
  std::string dist = "uniform";
  std::string device = "k40c";
  bool kv = false;
  u32 nw = 8;
  u32 ipt = 1;
  u64 seed = 0xC0FFEE;
};

void run_one(const Args& a, const std::string& name, split::Method method) {
  workload::WorkloadConfig wc;
  wc.dist = kDists.at(a.dist);
  wc.m = a.m;
  wc.seed = a.seed;
  const u64 n = u64{1} << a.log2_n;
  const auto host = workload::generate_keys(n, wc);

  sim::DeviceProfile prof = sim::DeviceProfile::tesla_k40c();
  if (a.device == "750ti") prof = sim::DeviceProfile::gtx_750_ti();
  if (a.device == "sol") prof = sim::DeviceProfile::speed_of_light();
  sim::Device dev(prof);

  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  split::MultisplitConfig cfg;
  cfg.method = method;
  cfg.warps_per_block = a.nw;
  cfg.items_per_thread = a.ipt;

  split::MultisplitResult r;
  try {
    if (a.kv) {
      const auto vals = workload::identity_values(n);
      sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals));
      sim::DeviceBuffer<u32> kout(dev, n), vout(dev, n);
      r = split::multisplit_pairs(dev, in, vin, kout, vout, a.m,
                                  split::RangeBucket{a.m}, cfg);
    } else {
      r = split::multisplit_keys(dev, in, out, a.m, split::RangeBucket{a.m},
                                 cfg);
    }
  } catch (const std::logic_error& e) {
    std::printf("%-16s unsupported for this configuration: %s\n", name.c_str(),
                e.what());
    return;
  }

  const auto& ev = r.summary.events;
  std::printf(
      "%-16s %9.3f ms (%6.2f Gkeys/s) | pre %7.3f scan %7.3f post %7.3f | "
      "coalescing %4.0f%% | %llu kernels\n",
      name.c_str(), r.total_ms(),
      static_cast<f64>(n) / (r.total_ms() * 1e6), r.stages.prescan_ms,
      r.stages.scan_ms, r.stages.postscan_ms,
      100.0 * sim::coalescing_efficiency(ev, dev.profile()),
      static_cast<unsigned long long>(r.summary.kernels));
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&] {
      check(i + 1 < argc, "missing argument value");
      return std::string(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--method")) a.method = next();
    else if (!std::strcmp(argv[i], "--m")) a.m = std::stoul(next());
    else if (!std::strcmp(argv[i], "--n")) a.log2_n = std::stoul(next());
    else if (!std::strcmp(argv[i], "--dist")) a.dist = next();
    else if (!std::strcmp(argv[i], "--device")) a.device = next();
    else if (!std::strcmp(argv[i], "--kv")) a.kv = true;
    else if (!std::strcmp(argv[i], "--nw")) a.nw = std::stoul(next());
    else if (!std::strcmp(argv[i], "--ipt")) a.ipt = std::stoul(next());
    else if (!std::strcmp(argv[i], "--seed")) a.seed = std::stoull(next());
    else if (!std::strcmp(argv[i], "--list")) {
      for (const auto& [name, meth] : kMethods)
        std::printf("%-16s %s\n", name.c_str(), to_string(meth).c_str());
      return 0;
    } else {
      usage(argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
    }
  }
  if (!kDists.contains(a.dist)) {
    std::printf("unknown distribution '%s'\n", a.dist.c_str());
    return 1;
  }

  std::printf("n = 2^%u, m = %u, %s, %s, %s\n\n", a.log2_n, a.m,
              a.dist.c_str(), a.kv ? "key-value" : "key-only",
              a.device.c_str());
  if (a.method == "all") {
    for (const auto& [name, meth] : kMethods) run_one(a, name, meth);
  } else if (kMethods.contains(a.method)) {
    run_one(a, a.method, kMethods.at(a.method));
  } else {
    std::printf("unknown method '%s'\n", a.method.c_str());
    usage(argv[0]);
    return 1;
  }
  return 0;
}
