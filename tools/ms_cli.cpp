// ms_cli: run any multisplit method on a synthetic workload from the
// command line and inspect timing, throughput and event counters --
// a quick way to explore the implementation space without writing code.
//
//   $ ms_cli --method warp --m 8 --n 20 --dist binomial --kv
//   $ ms_cli --method all --m 32 --device 750ti
//   $ ms_cli --method warp --m 32 --trace out.json   # Perfetto timeline
//   $ ms_cli --method all --sites                    # per-site counters
//   $ ms_cli --method all --sanitize=memcheck,racecheck,initcheck
//   $ ms_cli metrics --method warp --m 32          # nsight-style report
//   $ ms_cli diff base.json cur.json               # run-diff regression gate
//   $ ms_cli --list
//
// With --sanitize, runs continue past faults (the compute-sanitizer model:
// a faulting launch is aborted and recorded, later launches proceed) and a
// report is printed per method; the exit code is 1 if any errors were found.
//
// `diff` compares two --json reports (from ms_cli or the benches)
// value-by-value with exact matching by default; exit 0 = no drift,
// 1 = drift found, 2 = unusable input (bad file / schema mismatch).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <iostream>

#include "multisplit/chaos_campaign.hpp"
#include "multisplit/multisplit.hpp"
#include "multisplit/serving.hpp"
#include "multisplit/sort_baselines.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"
#include "sim/span.hpp"
#include "sim/telemetry.hpp"
#include "workload/distributions.hpp"

using namespace ms;

namespace {

/// All concrete methods, dispatch-table order (the `--method all` sweep).
std::vector<split::Method> concrete_methods() {
  std::vector<split::Method> out;
  for (u32 i = 0; i < split::kConcreteMethodCount; ++i)
    out.push_back(static_cast<split::Method>(i));
  return out;
}

const std::map<std::string, workload::Distribution> kDists = {
    {"uniform", workload::Distribution::kUniform},
    {"binomial", workload::Distribution::kBinomial},
    {"skewed", workload::Distribution::kSkewedOne},
    {"identity", workload::Distribution::kIdentity},
    {"sorted", workload::Distribution::kSortedUniform},
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [run] [options]\n"
      "       %s <subcommand> [args]   (run, metrics, diff, top, tail, "
      "chaos, serve)\n"
      "run options ('run' may be omitted):\n"
      "  --method <name|all>   auto (paper-guided selection) or one of:",
      argv0, argv0);
  for (const auto meth : concrete_methods())
    std::printf(" %s", split::method_token(meth).c_str());
  std::printf(
      "\n"
      "  --m <buckets>         bucket count (default 8)\n"
      "  --n <log2 keys>       input size as a power of two (default 20)\n"
      "  --dist <name>         uniform|binomial|skewed|identity|sorted\n"
      "  --device <name>       k40c (default) | 750ti | sol\n"
      "  --kv                  key-value instead of key-only\n"
      "  --nw <warps>          warps per block (default 8)\n"
      "  --ipt <items>         items per thread, warp methods (default 1)\n"
      "  --seed <u64>          workload seed\n"
      "  --host-threads <k>    simulator worker threads (default: "
      "MS_HOST_THREADS\n"
      "                        or the hardware concurrency; modeled results\n"
      "                        are identical for every k)\n"
      "  --sites               print per-access-site counters\n"
      "  --sanitize <tools>    memcheck,racecheck,initcheck (or all|none)\n"
      "  --json <file>         write a machine-readable report\n"
      "  --trace <file>        write a Chrome/Perfetto trace (single method)\n"
      "  --spans <file>        write the request span dump (single method;\n"
      "                        analyze with `ms_cli tail`)\n"
      "  --list                list methods and exit\n"
      "  --version             print the report schema version and exit\n"
      "subcommands:\n"
      "  run [options]         run one method on a synthetic workload (the\n"
      "                        default when no subcommand is given)\n"
      "  metrics [options]     run and print the derived-metrics report\n"
      "                        (speed of light, coalescing, divergence,\n"
      "                        guided analysis)\n"
      "  diff <baseline.json> <current.json> [--tolerance <pct>]\n"
      "       [--json <file>]  compare two reports; exit 1 on drift\n"
      "  top <timeline.jsonl>  render the latest telemetry snapshot of a\n"
      "                        --telemetry timeline as Prometheus text\n"
      "                        (+ latency percentile table)\n"
      "  tail <spans.jsonl> [--top N]\n"
      "                        tail-latency attribution over a --spans dump:\n"
      "                        p99 tail set, ranked per-category critical\n"
      "                        path, slowest-N request trees\n"
      "  chaos [--requests N] [--n <log2>] [--m <buckets>] [--seed <u64>]\n"
      "        [--chaos-seed <u64>] [--spans <file>]\n"
      "                        run a deterministic fault-injection campaign\n"
      "                        over the resilient executor; exit 1 unless\n"
      "                        every injected fault was recovered or\n"
      "                        surfaced as a structured error\n"
      "  serve [--requests N] [--batch B] [--linger <ms>] [--seed <u64>]\n"
      "        [--device k40c|750ti|sol]\n"
      "                        drive the async batched serving executor\n"
      "                        over a stream of tiny mixed-shape requests\n"
      "                        (sub-warp/warp packing into fused launches)\n"
      "                        and print the batching report; exit 1 if any\n"
      "                        request failed\n");
}

struct Args {
  std::string method = "block";
  u32 m = 8;
  u32 log2_n = 20;
  std::string dist = "uniform";
  std::string device = "k40c";
  bool kv = false;
  u32 nw = 8;
  u32 ipt = 1;
  u64 seed = 0xC0FFEE;
  bool sites = false;
  bool metrics = false;
  std::string sanitize;
  std::string json_path;
  std::string trace_path;
  std::string spans_path;
};

/// Runs one method; returns the number of sanitizer errors found.
u64 run_one(const Args& a, const std::string& name, split::Method method,
            const sim::SanitizerConfig* scfg, sim::JsonWriter* jw) {
  workload::WorkloadConfig wc;
  wc.dist = kDists.at(a.dist);
  wc.m = a.m;
  wc.seed = a.seed;
  const u64 n = u64{1} << a.log2_n;
  const auto host = workload::generate_keys(n, wc);

  sim::DeviceProfile prof = sim::DeviceProfile::tesla_k40c();
  if (a.device == "750ti") prof = sim::DeviceProfile::gtx_750_ti();
  if (a.device == "sol") prof = sim::DeviceProfile::speed_of_light();
  sim::Device dev(prof);
  if (scfg != nullptr) dev.sanitizer().configure(*scfg);
  if (!a.spans_path.empty()) dev.enable_spans();

  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host), "in"),
      out(dev, n, "out");
  split::MultisplitConfig cfg;
  cfg.method = method;
  cfg.warps_per_block = a.nw;
  cfg.items_per_thread = a.ipt;

  split::MultisplitResult r;
  const auto host_t0 = std::chrono::steady_clock::now();
  try {
    // Build the plan once (validates the config and resolves kAuto before
    // any device work), then run it through the plan API.
    const split::MultisplitPlan plan(dev, n, a.m, cfg,
                                     a.kv ? static_cast<u32>(sizeof(u32)) : 0);
    if (a.kv) {
      const auto vals = workload::identity_values(n);
      sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals), "vin");
      sim::DeviceBuffer<u32> kout(dev, n, "kout"), vout(dev, n, "vout");
      r = plan.run_pairs(in, vin, kout, vout, split::RangeBucket{a.m});
    } else {
      r = plan.run(in, out, split::RangeBucket{a.m});
    }
  } catch (const std::logic_error& e) {
    std::printf("%-16s unsupported for this configuration: %s\n", name.c_str(),
                e.what());
    return dev.sanitizer().error_count();
  }
  const auto host_t1 = std::chrono::steady_clock::now();
  const f64 host_ms =
      std::chrono::duration<f64, std::milli>(host_t1 - host_t0).count();

  if (const auto fault = dev.take_last_error()) {
    // A launch was aborted mid-run (sanitizer armed, reporting mode); the
    // timing summary would be meaningless, so print the fault instead.
    std::printf("%-16s launch aborted by fault:\n%s", name.c_str(),
                sim::format_fault(*fault).c_str());
    const std::string rep = dev.sanitizer().format_reports();
    if (!rep.empty()) std::printf("%s", rep.c_str());
    return dev.sanitizer().error_count();
  }

  const auto& ev = r.summary.events;
  // With --method auto, show what the plan resolved to.
  const std::string shown =
      method == split::Method::kAuto
          ? name + "->" + split::method_token(r.method_selected)
          : name;
  std::printf(
      "%-16s %9.3f ms (%6.2f Gkeys/s) | pre %7.3f scan %7.3f post %7.3f | "
      "coalescing %4.0f%% | %llu kernels\n",
      shown.c_str(), r.total_ms(),
      static_cast<f64>(n) / (r.total_ms() * 1e6), r.stages.prescan_ms,
      r.stages.scan_ms, r.stages.postscan_ms,
      100.0 * sim::coalescing_efficiency(ev, dev.profile()),
      static_cast<unsigned long long>(r.summary.kernels));

  const auto& sites = dev.site_stats();
  if (a.sites) {
    std::printf("  %-28s %12s %10s %10s %10s %6s\n", "site", "issue_slots",
                "replays", "dram_rd", "dram_wr", "coal%");
    for (const auto& s : sites) {
      if (s.events == sim::KernelEvents{}) continue;
      std::printf("  %-28s %12llu %10llu %10llu %10llu %5.0f%%\n",
                  s.label.c_str(),
                  static_cast<unsigned long long>(s.events.issue_slots),
                  static_cast<unsigned long long>(s.events.scatter_replays),
                  static_cast<unsigned long long>(s.events.dram_read_tx),
                  static_cast<unsigned long long>(s.events.dram_write_tx),
                  100.0 * sim::coalescing_efficiency(s.events, dev.profile()));
    }
  }
  sim::MetricsReport mrep = sim::analyze_device(dev);
  if (a.metrics) std::printf("\n%s\n", sim::format_metrics(mrep).c_str());
  if (jw != nullptr) {
    auto& w = *jw;
    w.begin_object();
    w.field("method", name);
    w.field("method_selected", split::method_token(r.method_selected));
    w.field("total_ms", r.total_ms());
    w.field("rate_gkeys", static_cast<f64>(n) / (r.total_ms() * 1e6));
    w.field("host_ms", host_ms);
    w.field("host_keys_per_sec",
            host_ms > 0 ? static_cast<f64>(n) / (host_ms * 1e-3) : 0.0);
    // "kernel_launches", not "kernels": write_metrics_json below emits the
    // per-kernel-group "kernels" array and JSON keys must stay unique.
    w.field("kernel_launches", r.summary.kernels);
    w.key("stages").begin_object();
    w.field("prescan_ms", r.stages.prescan_ms);
    w.field("scan_ms", r.stages.scan_ms);
    w.field("postscan_ms", r.stages.postscan_ms);
    w.end_object();
    w.field("coalescing_pct",
            100.0 * sim::coalescing_efficiency(ev, dev.profile()));
    w.key("sites").begin_array();
    for (const auto& s : sites) {
      if (s.events == sim::KernelEvents{}) continue;
      sim::write_site_json(w, s.label, s.events, dev.profile());
    }
    w.end_array();
    sim::write_metrics_json(w, mrep);
    w.end_object();
  }
  if (!a.trace_path.empty()) {
    if (!sim::write_chrome_trace_file(dev, a.trace_path))
      std::printf("warning: could not write trace to '%s'\n",
                  a.trace_path.c_str());
  }
  if (!a.spans_path.empty()) {
    if (!sim::write_spans_jsonl_file(a.spans_path, *dev.spans(), "ms_cli",
                                     dev.profile().name))
      std::printf("warning: could not write spans to '%s'\n",
                  a.spans_path.c_str());
  }
  if (dev.sanitizer().any()) {
    const std::string rep = dev.sanitizer().format_reports();
    if (!rep.empty()) std::printf("%s", rep.c_str());
  }
  return dev.sanitizer().error_count();
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// `ms_cli diff <baseline.json> <current.json>`: the run-diff regression
/// gate.  Exit 0 = reports match (within --tolerance), 1 = drift found,
/// 2 = unusable input.
int cmd_diff(int argc, char** argv) {
  std::vector<std::string> paths;
  sim::DiffOptions opts;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&] {
      check(i + 1 < argc, "missing argument value");
      return std::string(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--tolerance")) {
      opts.tolerance = std::stod(next()) / 100.0;
    } else if (!std::strcmp(argv[i], "--json")) {
      json_path = next();
    } else if (argv[i][0] == '-') {
      std::printf("diff: unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::printf("usage: ms_cli diff <baseline.json> <current.json> "
                "[--tolerance <pct>] [--json <file>]\n");
    return 2;
  }

  sim::JsonValue base, cur;
  try {
    for (int side = 0; side < 2; ++side) {
      const auto text = read_file(paths[side]);
      if (!text) {
        std::printf("diff: cannot read '%s'\n", paths[side].c_str());
        return 2;
      }
      (side == 0 ? base : cur) = sim::parse_json(*text);
    }
  } catch (const std::runtime_error& e) {
    std::printf("diff: malformed JSON: %s\n", e.what());
    return 2;
  }

  sim::DiffResult res;
  try {
    res = sim::diff_reports(base, cur, opts);
  } catch (const std::runtime_error& e) {
    std::printf("diff: %s\n", e.what());
    return 2;
  }

  std::printf("comparing baseline %s vs current %s (schema v%u, tolerance "
              "%g%%)\n",
              paths[0].c_str(), paths[1].c_str(), sim::kReportSchemaVersion,
              opts.tolerance * 100.0);
  for (const auto& f : res.findings) {
    std::printf("  DRIFT %s: %s\n", f.path.c_str(), f.note.c_str());
  }
  if (res.total_findings > res.findings.size()) {
    std::printf("  ... (%llu more finding(s) suppressed)\n",
                static_cast<unsigned long long>(res.total_findings -
                                                res.findings.size()));
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::printf("diff: cannot open '%s' for writing\n", json_path.c_str());
      return 2;
    }
    sim::JsonWriter w(os);
    w.begin_object();
    w.field("tool", "ms_cli diff");
    w.field("schema_version", sim::kReportSchemaVersion);
    w.field("baseline", paths[0]);
    w.field("current", paths[1]);
    w.field("tolerance_pct", opts.tolerance * 100.0);
    w.field("values_compared", res.values_compared);
    w.field("total_findings", res.total_findings);
    w.key("findings").begin_array();
    for (const auto& f : res.findings) {
      w.begin_object();
      w.field("path", f.path);
      w.field("note", f.note);
      w.field("drift", f.drift);
      w.end_object();
    }
    w.end_array().end_object();
    os << "\n";
  }

  if (res.total_findings > 0) {
    std::printf("ms_cli diff: FAIL -- %llu finding(s) across %llu compared "
                "values\n",
                static_cast<unsigned long long>(res.total_findings),
                static_cast<unsigned long long>(res.values_compared));
    return 1;
  }
  std::printf("ms_cli diff: OK -- %llu values compared, zero drift\n",
              static_cast<unsigned long long>(res.values_compared));
  return 0;
}

/// `ms_cli top <timeline.jsonl>`: one-shot Prometheus-text render of the
/// latest snapshot of a --telemetry timeline.  Exit 0 = rendered, 2 =
/// unusable input (missing file, malformed line, schema mismatch, empty
/// timeline).
int cmd_top(int argc, char** argv) {
  if (argc != 2 || argv[1][0] == '-') {
    std::printf("usage: ms_cli top <timeline.jsonl>\n");
    return 2;
  }
  std::ifstream is(argv[1]);
  if (!is) {
    std::printf("top: cannot read '%s'\n", argv[1]);
    return 2;
  }
  std::string line, last;
  bool saw_header = false;
  u64 line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!saw_header) {
      // Line 1 is the timeline header: check provenance and schema before
      // trusting any snapshot line (the diff-tool convention).
      try {
        const sim::JsonValue h = sim::parse_json(line);
        const sim::JsonValue* tag = h.find("telemetry");
        if (tag == nullptr || tag->str != "timeline") {
          std::printf("top: '%s' is not a telemetry timeline\n", argv[1]);
          return 2;
        }
        const u32 ver = static_cast<u32>(h.at("schema_version").number);
        if (ver != sim::kReportSchemaVersion) {
          std::printf("top: schema v%u, this tool expects v%u\n", ver,
                      sim::kReportSchemaVersion);
          return 2;
        }
      } catch (const std::runtime_error& e) {
        std::printf("top: malformed header: %s\n", e.what());
        return 2;
      }
      saw_header = true;
      continue;
    }
    last = line;
  }
  if (!saw_header || last.empty()) {
    std::printf("top: '%s' has no snapshots\n", argv[1]);
    return 2;
  }

  sim::TelemetrySnapshot snap;
  try {
    const sim::JsonValue v = sim::parse_json(last);
    snap.seq = static_cast<u64>(v.at("seq").number);
    snap.host_ms = v.at("host_ms").number;
    snap.modeled_ms = v.at("modeled_ms").number;
    for (const auto& [name, val] : v.at("scalars").object) {
      snap.scalars.push_back({name, val.number});
    }
    for (const auto& [name, h] : v.at("histograms").object) {
      sim::HistogramSample out;
      out.name = name;
      out.count = static_cast<u64>(h.at("count").number);
      out.sum_ms = h.at("sum_ms").number;
      out.min_ms = h.at("min_ms").number;
      out.max_ms = h.at("max_ms").number;
      out.p50_ms = h.at("p50_ms").number;
      out.p95_ms = h.at("p95_ms").number;
      out.p99_ms = h.at("p99_ms").number;
      out.p999_ms = h.at("p999_ms").number;
      // Exemplar trace ids are only written when a traced request landed in
      // the percentile's bucket -- optional on read too.
      const auto trace = [&h](const char* key) -> u64 {
        const sim::JsonValue* v = h.find(key);
        return v != nullptr ? static_cast<u64>(v->number) : 0;
      };
      out.p50_trace = trace("p50_trace");
      out.p95_trace = trace("p95_trace");
      out.p99_trace = trace("p99_trace");
      out.p999_trace = trace("p999_trace");
      out.max_trace = trace("max_trace");
      snap.histograms.push_back(std::move(out));
    }
  } catch (const std::runtime_error& e) {
    std::printf("top: malformed snapshot (line %llu): %s\n",
                static_cast<unsigned long long>(line_no), e.what());
    return 2;
  }
  sim::write_prometheus(std::cout, snap);
  return 0;
}

// ---------------------------------------------------------------------------
// `ms_cli tail`: tail-latency attribution over a span dump
// ---------------------------------------------------------------------------

/// One span line of a --spans JSONL dump, reduced to what attribution needs.
struct TailSpan {
  u64 span = 0, parent = 0, trace = 0;
  std::string kind, name;
  f64 begin_ms = 0.0, end_ms = 0.0;
  f64 overhead_ms = 0.0, backoff_ms = 0.0;
  std::vector<std::string> events;  // "what" or "what detail" per event
  bool closed = false;

  f64 dur_ms() const { return end_ms - begin_ms; }
};

/// Per-request roll-up: total modeled latency and its category breakdown.
struct TailRequest {
  u64 trace = 0;
  u64 root = 0;  // span_id of the request span
  std::string method;
  f64 total_ms = 0.0;       // (end - begin) + backoff
  f64 attributed_ms = 0.0;  // sum over categories (== total by construction)
  std::map<std::string, f64> by_category;
};

/// Loads a span dump; returns std::nullopt (with a printed diagnostic)
/// when the file is missing, malformed or from another schema version.
std::optional<std::vector<TailSpan>> load_span_dump(const char* path) {
  std::ifstream is(path);
  if (!is) {
    std::printf("tail: cannot read '%s'\n", path);
    return std::nullopt;
  }
  std::vector<TailSpan> spans;
  std::string line;
  bool saw_header = false;
  u64 line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      const sim::JsonValue v = sim::parse_json(line);
      if (!saw_header) {
        const sim::JsonValue* tag = v.find("spans");
        if (tag == nullptr || tag->str != "trace") {
          std::printf("tail: '%s' is not a span dump\n", path);
          return std::nullopt;
        }
        const u32 ver = static_cast<u32>(v.at("schema_version").number);
        if (ver != sim::kReportSchemaVersion) {
          std::printf("tail: schema v%u, this tool expects v%u\n", ver,
                      sim::kReportSchemaVersion);
          return std::nullopt;
        }
        saw_header = true;
        continue;
      }
      TailSpan s;
      s.span = static_cast<u64>(v.at("span").number);
      s.parent = static_cast<u64>(v.at("parent").number);
      s.trace = static_cast<u64>(v.at("trace").number);
      s.kind = v.at("kind").str;
      s.name = v.at("name").str;
      s.begin_ms = v.at("begin_ms").number;
      s.end_ms = v.at("end_ms").number;
      if (const auto* o = v.find("overhead_ms")) s.overhead_ms = o->number;
      if (const auto* b = v.find("backoff_ms")) s.backoff_ms = b->number;
      if (const auto* ev = v.find("events")) {
        for (const sim::JsonValue& e : ev->array) {
          std::string what = e.at("what").str;
          if (const auto* d = e.find("detail"); d != nullptr && !d->str.empty())
            what += " " + d->str;
          if (const auto* f = e.find("fault")) {
            what += " (" + f->at("kind").str + " in " + f->at("kernel").str +
                    ")";
          }
          s.events.push_back(std::move(what));
        }
      }
      s.closed = v.at("closed").boolean;
      if (s.span != spans.size() + 1) {
        std::printf("tail: non-contiguous span ids at line %llu\n",
                    static_cast<unsigned long long>(line_no));
        return std::nullopt;
      }
      spans.push_back(std::move(s));
    } catch (const std::runtime_error& e) {
      std::printf("tail: malformed line %llu: %s\n",
                  static_cast<unsigned long long>(line_no), e.what());
      return std::nullopt;
    }
  }
  if (!saw_header) {
    std::printf("tail: '%s' has no header line\n", path);
    return std::nullopt;
  }
  return spans;
}

/// Critical-path attribution for one request: every modeled millisecond of
/// the request lands in exactly one category.
///
/// The simulator's clock only advances inside kernels (launch spans), so a
/// request decomposes exactly into its launch spans plus retry backoff:
///   - per launch, the fixed launch overhead -> "launch overhead";
///   - the remainder of the launch -> "stage:<innermost enclosing stage>"
///     (or "unstaged kernel" for launches outside any ProfileRegion);
///   - the request's accumulated retry backoff -> "retry backoff".
/// Anything left over (zero by construction) is reported as "unattributed"
/// so a broken dump is visible rather than silently renormalized.
TailRequest attribute_request(const std::vector<TailSpan>& spans,
                              const TailSpan& req) {
  TailRequest out;
  out.trace = req.trace;
  out.root = req.span;
  out.method = req.name;
  out.total_ms = req.dur_ms() + req.backoff_ms;
  if (req.backoff_ms > 0.0) {
    out.by_category["retry backoff"] += req.backoff_ms;
    out.attributed_ms += req.backoff_ms;
  }
  for (const TailSpan& s : spans) {
    if (s.kind != "launch" || !s.closed || s.trace != req.trace) continue;
    // Confirm the launch actually descends from this request span (trace
    // ids are per-request in practice, but the parent chain is the truth).
    bool under = false;
    std::string stage = "unstaged kernel";
    bool stage_found = false;
    for (u64 p = s.parent; p != 0; p = spans[p - 1].parent) {
      const TailSpan& a = spans[p - 1];
      if (!stage_found && a.kind == "stage") {
        stage = "stage:" + a.name;
        stage_found = true;
      }
      if (p == req.span) {
        under = true;
        break;
      }
    }
    if (!under) continue;
    const f64 overhead = std::min(s.overhead_ms, s.dur_ms());
    out.by_category["launch overhead"] += overhead;
    out.by_category[stage] += s.dur_ms() - overhead;
    out.attributed_ms += s.dur_ms();
  }
  const f64 leftover = out.total_ms - out.attributed_ms;
  if (leftover > 1e-12 * std::max(1.0, out.total_ms)) {
    out.by_category["unattributed"] += leftover;
  }
  return out;
}

/// Renders one request's span tree (the slowest-N drill-down).
void print_span_tree(const std::vector<TailSpan>& spans, u64 root_span,
                     u32 depth) {
  const TailSpan& s = spans[root_span - 1];
  std::printf("  %*s%s:%s  %.6f ms", static_cast<int>(depth * 2), "",
              s.kind.c_str(), s.name.c_str(), s.dur_ms());
  if (s.backoff_ms > 0.0) std::printf(" (+%.3f ms backoff)", s.backoff_ms);
  std::printf("\n");
  for (const std::string& ev : s.events) {
    std::printf("  %*s! %s\n", static_cast<int>(depth * 2 + 2), "",
                ev.c_str());
  }
  for (const TailSpan& c : spans) {
    if (c.parent == root_span) print_span_tree(spans, c.span, depth + 1);
  }
}

/// `ms_cli tail <spans.jsonl> [--top N]`: per-request critical-path roll-up
/// of a span dump, the tail set (requests at or above the exact p99 total),
/// the ranked category attribution over that tail, and the slowest N
/// request trees.  Exit 0 = rendered, 2 = unusable input.
int cmd_tail(int argc, char** argv) {
  const char* path = nullptr;
  u64 top_n = 5;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--top") && i + 1 < argc) {
      top_n = std::stoull(argv[++i]);
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      std::printf("usage: ms_cli tail <spans.jsonl> [--top N]\n");
      return 2;
    }
  }
  if (path == nullptr) {
    std::printf("usage: ms_cli tail <spans.jsonl> [--top N]\n");
    return 2;
  }
  const auto spans = load_span_dump(path);
  if (!spans) return 2;

  std::vector<TailRequest> reqs;
  for (const TailSpan& s : *spans) {
    if (s.kind == "request" && s.closed) {
      reqs.push_back(attribute_request(*spans, s));
    }
  }
  if (reqs.empty()) {
    std::printf("tail: '%s' contains no closed request spans\n", path);
    return 2;
  }

  // Exact p99 by nearest rank over the sorted totals; the tail set is
  // every request at or above it.
  std::vector<f64> totals;
  totals.reserve(reqs.size());
  for (const TailRequest& r : reqs) totals.push_back(r.total_ms);
  std::sort(totals.begin(), totals.end());
  const std::size_t rank =
      (totals.size() * 99 + 99) / 100;  // ceil(0.99 * count), 1-based
  const f64 p99 = totals[std::min(rank, totals.size()) - 1];

  std::vector<const TailRequest*> tail;
  for (const TailRequest& r : reqs) {
    if (r.total_ms >= p99) tail.push_back(&r);
  }
  // Slowest first; trace id breaks ties so the listing is deterministic.
  std::sort(tail.begin(), tail.end(),
            [](const TailRequest* a, const TailRequest* b) {
              if (a->total_ms != b->total_ms) return a->total_ms > b->total_ms;
              return a->trace < b->trace;
            });

  std::printf("span dump: %s (%llu spans, %llu requests)\n", path,
              static_cast<unsigned long long>(spans->size()),
              static_cast<unsigned long long>(reqs.size()));
  std::printf("p99 request latency: %.6f ms; tail set: %llu request(s)\n\n",
              p99, static_cast<unsigned long long>(tail.size()));

  // Ranked category table over the tail set.
  std::map<std::string, f64> categories;
  f64 tail_total = 0.0, tail_attributed = 0.0;
  for (const TailRequest* r : tail) {
    tail_total += r->total_ms;
    tail_attributed += r->attributed_ms;
    for (const auto& [cat, ms] : r->by_category) categories[cat] += ms;
  }
  std::vector<std::pair<std::string, f64>> ranked(categories.begin(),
                                                  categories.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::printf("tail-latency attribution (%llu request(s) >= p99)\n",
              static_cast<unsigned long long>(tail.size()));
  std::printf("  %-36s %12s %8s\n", "category", "ms", "share");
  for (const auto& [cat, ms] : ranked) {
    std::printf("  %-36s %12.6f %7.2f%%\n", cat.c_str(), ms,
                tail_total > 0.0 ? 100.0 * ms / tail_total : 0.0);
  }
  std::printf("  %-36s %12.6f %7.2f%%\n", "total", tail_total,
              tail_total > 0.0 ? 100.0 * tail_attributed / tail_total : 0.0);

  // Slowest-N drill-down over ALL requests (the tail set only scopes the
  // attribution table; --top can reach past it): full span tree with
  // events.
  std::vector<const TailRequest*> slowest;
  for (const TailRequest& r : reqs) slowest.push_back(&r);
  std::sort(slowest.begin(), slowest.end(),
            [](const TailRequest* a, const TailRequest* b) {
              if (a->total_ms != b->total_ms) return a->total_ms > b->total_ms;
              return a->trace < b->trace;
            });
  const u64 shown = std::min<u64>(top_n, slowest.size());
  std::printf("\nslowest %llu request(s)\n",
              static_cast<unsigned long long>(shown));
  for (u64 i = 0; i < shown; ++i) {
    const TailRequest& r = *slowest[i];
    std::printf("trace %llu  %s  total %.6f ms  (attributed %.2f%%)\n",
                static_cast<unsigned long long>(r.trace), r.method.c_str(),
                r.total_ms,
                r.total_ms > 0.0 ? 100.0 * r.attributed_ms / r.total_ms
                                 : 100.0);
    print_span_tree(*spans, r.root, 0);
  }
  return 0;
}

/// `ms_cli chaos [...]`: run one seeded fault-injection campaign and print
/// the recovery table.  Exit 0 = clean (every fault recovered or surfaced
/// as a structured error), 1 = silent wrong results or lost requests,
/// 2 = bad arguments.
int cmd_chaos(int argc, char** argv) {
  split::ChaosCampaignConfig cfg;
  std::string spans_path;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    const std::string arg = argv[i];
    std::optional<std::string> v;
    if (arg == "--requests" && (v = next())) {
      cfg.requests = static_cast<u32>(std::stoul(*v));
    } else if (arg == "--n" && (v = next())) {
      cfg.log2_n = static_cast<u32>(std::stoul(*v));
    } else if (arg == "--m" && (v = next())) {
      cfg.m = static_cast<u32>(std::stoul(*v));
    } else if (arg == "--seed" && (v = next())) {
      cfg.seed = std::stoull(*v, nullptr, 0);
    } else if (arg == "--chaos-seed" && (v = next())) {
      cfg.chaos.seed = std::stoull(*v, nullptr, 0);
    } else if (arg == "--device" && (v = next())) {
      cfg.profile = *v;
    } else if (arg == "--spans" && (v = next())) {
      spans_path = *v;
      cfg.record_spans = true;
    } else {
      std::printf(
          "chaos: unknown or incomplete option '%s'\n"
          "usage: ms_cli chaos [--requests N] [--n <log2>] [--m <buckets>]\n"
          "                    [--seed <u64>] [--chaos-seed <u64>]\n"
          "                    [--device k40c|750ti|sol]\n"
          "                    [--spans <file>]\n",
          arg.c_str());
      return 2;
    }
  }
  const split::ChaosCampaignReport rep = split::run_chaos_campaign(cfg);
  std::fputs(split::format_campaign(rep).c_str(), stdout);
  if (!spans_path.empty()) {
    std::ofstream os(spans_path);
    if (!os) {
      std::printf("chaos: cannot open '%s' for writing\n", spans_path.c_str());
      return 2;
    }
    os << rep.spans_jsonl;
    std::printf("spans: %s (feed to `ms_cli tail`)\n", spans_path.c_str());
  }
  return rep.clean() ? 0 : 1;
}

/// `ms_cli serve [...]`: drive the async batched serving executor over a
/// mixed stream of tiny multisplit requests and print the batching report.
/// Exit 0 = every request served, 1 = failed requests, 2 = bad arguments.
int cmd_serve(int argc, char** argv) {
  u64 requests = 4096;
  split::ServingPolicy policy;
  u64 seed = 0xABCDE;
  std::string device = "k40c";
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    const std::string arg = argv[i];
    std::optional<std::string> v;
    if (arg == "--requests" && (v = next())) {
      requests = std::stoull(*v);
    } else if (arg == "--batch" && (v = next())) {
      policy.max_batch = static_cast<u32>(std::stoul(*v));
    } else if (arg == "--linger" && (v = next())) {
      policy.max_linger_ms = std::stod(*v);
    } else if (arg == "--seed" && (v = next())) {
      seed = std::stoull(*v, nullptr, 0);
    } else if (arg == "--device" && (v = next())) {
      device = *v;
    } else {
      std::printf(
          "serve: unknown or incomplete option '%s'\n"
          "usage: ms_cli serve [--requests N] [--batch B] [--linger <ms>]\n"
          "                    [--seed <u64>] [--device k40c|750ti|sol]\n",
          arg.c_str());
      return 2;
    }
  }
  if (requests == 0 || policy.max_batch == 0) {
    std::printf("serve: --requests and --batch must be >= 1\n");
    return 2;
  }
  sim::DeviceProfile prof = sim::DeviceProfile::tesla_k40c();
  if (device == "750ti") prof = sim::DeviceProfile::gtx_750_ti();
  else if (device == "sol") prof = sim::DeviceProfile::speed_of_light();
  else if (device != "k40c") {
    std::printf("serve: unknown device '%s' (expected k40c, 750ti or sol)\n",
                device.c_str());
    return 2;
  }
  sim::Device dev(prof);
  split::ServingExecutor exec(dev, policy);

  // The serving-shape stream: tiny n, small m, every pack class
  // represented (sub-warp, warp-packed, and the plan fallback).
  static constexpr u64 kNs[] = {5, 8, 32, 96, 256, 1024};
  static constexpr u32 kMs[] = {2, 3, 4, 8, 16, 32};
  std::vector<split::ServeTicket> tickets;
  tickets.reserve(requests);
  workload::WorkloadConfig wc;
  for (u64 i = 0; i < requests; ++i) {
    const u32 m = kMs[(i / 6) % 6];
    wc.m = m;
    wc.seed = seed + i * 7919;
    tickets.push_back(exec.submit(workload::generate_keys(kNs[i % 6], wc), m,
                                  split::RangeBucket{m}));
  }
  exec.drain();

  u64 failed = 0, packed = 0;
  f64 packed_cost_ms = 0.0;
  for (const auto t : tickets) {
    const split::ServeResult& r = exec.get(t);
    if (r.failed) {
      if (failed == 0)
        std::printf("serve: request %" PRIu64 " failed: %s\n", t,
                    r.error.c_str());
      ++failed;
      continue;
    }
    if (r.packed) {
      ++packed;
      packed_cost_ms += r.modeled_cost_ms;
    }
  }
  const sim::BatchStats& bs = dev.batch_stats();
  const sim::MetricsReport rep = sim::analyze_device(dev);
  const f64 total_ms = dev.lifetime_ms();
  std::printf("serve: %" PRIu64 " requests, device %s, max_batch %u\n",
              requests, device.c_str(), policy.max_batch);
  std::printf("  batches            %" PRIu64 "\n", bs.batches);
  std::printf("  fused launches     %" PRIu64 "\n", bs.fused_launches);
  std::printf("  packed problems    %" PRIu64 "  (sub-warp/warp fused)\n",
              bs.packed_problems);
  std::printf("  unpacked problems  %" PRIu64 "  (plan fallback)\n",
              bs.unpacked_problems);
  std::printf("  slot fill ratio    %.1f%%\n", 100.0 * bs.fill_ratio());
  std::printf("  retried problems   %" PRIu64 "\n", bs.problems_retried);
  std::printf("  modeled time       %.3f ms  (%.0f requests/sec)\n", total_ms,
              static_cast<f64>(requests) / (total_ms * 1e-3));
  std::printf("  launch overhead    %.1f%% of modeled time (%" PRIu64
              " launches)\n",
              rep.aggregate.launch_overhead_pct, rep.launches);
  std::printf("  packed cost        %.3f ms closed-form across %" PRIu64
              " problems\n",
              packed_cost_ms, packed);
  if (failed > 0) {
    std::printf("serve: %" PRIu64 " of %" PRIu64 " requests FAILED\n", failed,
                requests);
    return 1;
  }
  std::printf("serve: all requests served\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (!std::strcmp(argv[1], "--version") ||
                   !std::strcmp(argv[1], "-V"))) {
    std::printf("ms_cli report schema v%u\n", sim::kReportSchemaVersion);
    std::printf("host_simd %s\n", sim::simd::backend_name());
    return 0;
  }
  if (argc > 1 && !std::strcmp(argv[1], "diff")) {
    return cmd_diff(argc - 1, argv + 1);
  }
  if (argc > 1 && !std::strcmp(argv[1], "top")) {
    return cmd_top(argc - 1, argv + 1);
  }
  if (argc > 1 && !std::strcmp(argv[1], "tail")) {
    return cmd_tail(argc - 1, argv + 1);
  }
  if (argc > 1 && !std::strcmp(argv[1], "chaos")) {
    return cmd_chaos(argc - 1, argv + 1);
  }
  if (argc > 1 && !std::strcmp(argv[1], "serve")) {
    return cmd_serve(argc - 1, argv + 1);
  }
  Args a;
  int argi = 1;
  if (argc > 1 && !std::strcmp(argv[1], "metrics")) {
    a.metrics = true;
    argi = 2;
  } else if (argc > 1 && !std::strcmp(argv[1], "run")) {
    argi = 2;  // explicit form of the default subcommand
  } else if (argc > 1 && argv[1][0] != '-') {
    // A bare word that is not a known subcommand must not fall through to
    // flag parsing ("ms_cli metrcs" silently running the default method).
    std::printf("unknown subcommand '%s' (expected chaos, diff, metrics, "
                "run, serve, tail or top; try --help)\n",
                argv[1]);
    return 2;
  }
  for (int i = argi; i < argc; ++i) {
    const auto next = [&] {
      check(i + 1 < argc, "missing argument value");
      return std::string(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--method")) a.method = next();
    else if (!std::strcmp(argv[i], "--m")) a.m = std::stoul(next());
    else if (!std::strcmp(argv[i], "--n")) a.log2_n = std::stoul(next());
    else if (!std::strcmp(argv[i], "--dist")) a.dist = next();
    else if (!std::strcmp(argv[i], "--device")) a.device = next();
    else if (!std::strcmp(argv[i], "--kv")) a.kv = true;
    else if (!std::strcmp(argv[i], "--nw")) a.nw = std::stoul(next());
    else if (!std::strcmp(argv[i], "--ipt")) a.ipt = std::stoul(next());
    else if (!std::strcmp(argv[i], "--seed")) a.seed = std::stoull(next());
    else if (!std::strcmp(argv[i], "--host-threads")) {
      sim::set_default_host_threads(
          static_cast<u32>(std::stoul(next())));
    }
    else if (!std::strcmp(argv[i], "--sites")) a.sites = true;
    else if (!std::strcmp(argv[i], "--sanitize")) a.sanitize = next();
    else if (!std::strncmp(argv[i], "--sanitize=", 11)) a.sanitize = argv[i] + 11;
    else if (!std::strcmp(argv[i], "--json")) a.json_path = next();
    else if (!std::strcmp(argv[i], "--trace")) a.trace_path = next();
    else if (!std::strcmp(argv[i], "--spans")) a.spans_path = next();
    else if (!std::strcmp(argv[i], "--list")) {
      for (const auto meth : concrete_methods())
        std::printf("%-16s %s\n", split::method_token(meth).c_str(),
                    to_string(meth).c_str());
      std::printf("%-16s %s\n", "auto",
                  "paper-guided selection (warp/block/reduced-bit by m)");
      return 0;
    } else {
      usage(argv[0]);
      // --help exits 2 like every "did not run anything" path, so scripts
      // can tell "printed usage" from "ran a workload" (0) / "failed" (1).
      return std::strcmp(argv[i], "--help") == 0 ? 2 : 1;
    }
  }
  if (!kDists.contains(a.dist)) {
    std::printf("unknown distribution '%s'\n", a.dist.c_str());
    return 1;
  }
  if (a.device != "k40c" && a.device != "750ti" && a.device != "sol") {
    std::printf("unknown device '%s' (expected k40c, 750ti or sol)\n",
                a.device.c_str());
    return 1;
  }
  if (!a.trace_path.empty() && a.method == "all") {
    std::printf("--trace needs a single --method (one trace per device)\n");
    return 1;
  }
  if (!a.spans_path.empty() && a.method == "all") {
    std::printf("--spans needs a single --method (one dump per device)\n");
    return 1;
  }
  std::optional<sim::SanitizerConfig> scfg;
  if (!a.sanitize.empty()) {
    scfg = sim::SanitizerConfig::parse(a.sanitize);
    if (!scfg) {
      std::printf("unknown sanitizer tool in '%s' (expected "
                  "memcheck,racecheck,initcheck or all|none)\n",
                  a.sanitize.c_str());
      return 1;
    }
  }
  const sim::SanitizerConfig* scfgp = scfg ? &*scfg : nullptr;

  std::ofstream json_out;
  std::optional<sim::JsonWriter> jw;
  if (!a.json_path.empty()) {
    json_out.open(a.json_path);
    if (!json_out) {
      std::printf("cannot open '%s' for writing\n", a.json_path.c_str());
      return 1;
    }
    jw.emplace(json_out);
    jw->begin_object();
    jw->field("tool", "ms_cli");
    jw->field("schema_version", sim::kReportSchemaVersion);
    jw->field("log2_n", a.log2_n);
    jw->field("m", a.m);
    jw->field("dist", a.dist);
    jw->field("device", a.device);
    jw->field("key_value", a.kv);
    jw->key("results").begin_array();
  }
  sim::JsonWriter* jwp = jw ? &*jw : nullptr;

  std::printf("n = 2^%u, m = %u, %s, %s, %s\n\n", a.log2_n, a.m,
              a.dist.c_str(), a.kv ? "key-value" : "key-only",
              a.device.c_str());
  u64 sanitizer_errors = 0;
  if (a.method == "all") {
    for (const auto meth : concrete_methods())
      sanitizer_errors +=
          run_one(a, split::method_token(meth), meth, scfgp, jwp);
  } else if (const auto meth = split::parse_method(a.method)) {
    sanitizer_errors += run_one(a, a.method, *meth, scfgp, jwp);
  } else {
    std::printf("unknown method '%s'\n", a.method.c_str());
    usage(argv[0]);
    return 1;
  }
  if (jw) {
    jw->end_array().end_object();
    json_out << "\n";
  }
  if (sanitizer_errors > 0) {
    std::printf("\nsanitizer: %llu error(s) across methods\n",
                static_cast<unsigned long long>(sanitizer_errors));
    return 1;
  }
  return 0;
}
