#!/usr/bin/env python3
"""CI gate: telemetry must observe, never perturb.

Runs bench/plan_reuse twice -- telemetry off and telemetry on -- and
enforces the two contracts of DESIGN.md §11:

  1. Modeled costs are tolerance-0 identical.  The --json reports must
     match exactly after stripping the host_* keys (host wall-clock is the
     only thing allowed to differ).  Any drift in a modeled number means
     telemetry wrote to simulator state it should only read.
  2. Host overhead stays below 5%.  Both modes run several times and the
     *minimum* wall times are compared (min-of-N is the noise-resistant
     statistic; means conflate scheduler noise with real overhead).  A
     small absolute allowance covers timer quantization on sub-second
     runs.

Also checks the telemetry run actually produced a usable timeline (header
plus at least one snapshot) -- a silently empty file would make the
overhead comparison meaningless.

Usage: check_telemetry_overhead.py <plan_reuse-binary> [runs] [max_pct]
"""

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

# Sub-second bench runs quantize on OS scheduling; this absolute slack
# keeps the percentage gate meaningful without hiding real overhead.
ABS_SLACK_SEC = 0.05


def strip_host(node):
    """Drop host-timing keys (host_ms, host_keys_per_sec, ...) everywhere:
    they measure the machine, not the model."""
    if isinstance(node, dict):
        return {k: strip_host(v) for k, v in node.items()
                if not k.startswith("host_")}
    if isinstance(node, list):
        return [strip_host(v) for v in node]
    return node


def timed_run(cmd):
    t0 = time.perf_counter()
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
    elapsed = time.perf_counter() - t0
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: {' '.join(map(str, cmd))} exited "
                         f"{proc.returncode}")
    return elapsed


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench = Path(sys.argv[1])
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    max_pct = float(sys.argv[3]) if len(sys.argv) > 3 else 5.0

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        off_json, on_json = tmp / "off.json", tmp / "on.json"
        timeline = tmp / "timeline.jsonl"

        off_times, on_times = [], []
        for i in range(runs):
            off_times.append(timed_run(
                [bench, "--json", off_json]))
            on_times.append(timed_run(
                [bench, "--json", on_json, "--telemetry", timeline]))

        off_doc = json.loads(off_json.read_text())
        on_doc = json.loads(on_json.read_text())
        lines = [l for l in timeline.read_text().splitlines() if l.strip()]

    failures = []

    # Contract 1: modeled costs tolerance-0.
    if strip_host(off_doc) != strip_host(on_doc):
        failures.append(
            "modeled results differ between telemetry off and on "
            "(compare the two --json reports with host_* stripped)")

    # Contract 2: host overhead bounded.
    t_off, t_on = min(off_times), min(on_times)
    overhead_pct = ((t_on - t_off) / t_off * 100.0) if t_off > 0 else 0.0
    print(f"host wall (min of {runs}): off {t_off:.3f}s, on {t_on:.3f}s "
          f"({overhead_pct:+.1f}%)")
    if t_on > t_off * (1.0 + max_pct / 100.0) + ABS_SLACK_SEC:
        failures.append(
            f"telemetry host overhead {overhead_pct:.1f}% exceeds "
            f"{max_pct:.0f}%")

    # The timeline must be real: header line + >= 1 snapshot.
    if len(lines) < 2:
        failures.append(f"timeline has {len(lines)} line(s), expected a "
                        "header plus snapshots")
    else:
        header = json.loads(lines[0])
        if header.get("telemetry") != "timeline":
            failures.append("timeline header is malformed")
        final = json.loads(lines[-1])
        if not final.get("scalars") or not final.get("histograms"):
            failures.append("final telemetry snapshot is empty")

    if failures:
        print("\nFAIL: telemetry overhead gate:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: modeled costs identical, overhead {overhead_pct:+.1f}% "
          f"<= {max_pct:.0f}%, timeline has {len(lines) - 1} snapshot(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
