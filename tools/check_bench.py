#!/usr/bin/env python3
"""Regression gate for the simulator's modeled performance.

Runs a bench binary with --json at the baseline's recorded problem size and
compares every (method, m, key_value) rate against the committed baseline,
failing on relative drift beyond the tolerance.  The simulator is fully
deterministic, so drift means the cost model or an implementation changed;
rerun

    build/bench/table5_rates --n <log2_n> --trials <trials> \
        --json bench/baselines/table5_rates_n14.json

and commit the new file together with the change that explains it.

Usage: check_bench.py <bench-binary> <baseline.json> [tolerance]
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def load_results(doc):
    """Index a bench report's results by (method, m, key_value)."""
    out = {}
    for row in doc["results"]:
        key = (row["method"], row["m"], row["key_value"])
        if key in out:
            raise SystemExit(f"duplicate result row {key}")
        out[key] = row
    return out


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    bench = Path(sys.argv[1])
    baseline_path = Path(sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) == 4 else 0.10

    baseline = json.loads(baseline_path.read_text())
    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "current.json"
        cmd = [
            str(bench),
            "--n", str(baseline["log2_n"]),
            "--trials", str(baseline["trials"]),
            "--json", str(out_path),
        ]
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
            return 1
        current = json.loads(out_path.read_text())

    if current["device"] != baseline["device"]:
        print(f"FAIL: device changed: {baseline['device']} -> "
              f"{current['device']}")
        return 1

    base_rows = load_results(baseline)
    cur_rows = load_results(current)
    failures = []
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current run")
            continue
        want, got = base["rate_gkeys"], cur["rate_gkeys"]
        drift = abs(got - want) / want
        status = "ok" if drift <= tolerance else "DRIFT"
        method, m, kv = key
        print(f"{status:5} {method:<18} m={m:<3} {'kv' if kv else 'key':<3} "
              f"baseline {want:6.2f} current {got:6.2f} Gkeys/s "
              f"({drift * 100:+.1f}%)")
        if drift > tolerance:
            failures.append(
                f"{key}: {want:.3f} -> {got:.3f} Gkeys/s "
                f"({drift * 100:.1f}% > {tolerance * 100:.0f}%)")
    for key in cur_rows.keys() - base_rows.keys():
        print(f"note: {key} not in baseline (new configuration)")

    if failures:
        print(f"\nFAIL: {len(failures)} configuration(s) drifted:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {len(base_rows)} configurations within "
          f"{tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
