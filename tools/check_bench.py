#!/usr/bin/env python3
"""Regression gate for the simulator's modeled performance.

Runs a bench binary with --json at the baseline's recorded problem size and
compares every (method, m, key_value) headline metric against the committed
baseline, failing on relative drift beyond the tolerance.  With --sites the
per-site counter slices are compared too (matched by label, exact integer
comparison regardless of tolerance) -- that is the tolerance-0 gate on the
table4 stage-breakdown baseline.

The simulator is fully deterministic, so drift means the cost model or an
implementation changed; rerun

    build/bench/table5_rates --n <log2_n> --trials <trials> \
        --json bench/baselines/table5_rates_n14.json

and commit the new file together with the change that explains it.

Reports carry a schema_version; a baseline written by a different schema is
rejected (regenerate it) rather than silently mis-compared.

Usage: check_bench.py <bench-binary> <baseline.json> [tolerance] [--sites]
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

# Must match kReportSchemaVersion in src/sim/metrics.hpp.
# v3: benches report host wall-clock (host_ms / host_keys_per_sec); these
# fields vary run to run and are never compared by this checker.
# v4: reports carry the device sub-allocator stats block ("allocator") and
# result rows record the concrete method that ran ("method_selected").
SCHEMA_VERSION = 4

# Per-site counters compared exactly under --sites.  Integer event counts:
# any deviation is a real behavior change, never rounding.
SITE_COUNTERS = [
    "issue_slots", "scatter_replays", "smem_slots",
    "dram_read_tx", "dram_write_tx",
    "l2_read_segments", "l2_write_segments",
    "useful_bytes_read", "useful_bytes_written",
    "simt_insts", "simt_active_lanes", "ballot_rounds", "smem_accesses",
]


def check_schema(doc, name):
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SystemExit(
            f"FAIL: {name} has schema_version {version!r}, this checker "
            f"reads {SCHEMA_VERSION}; regenerate the report with the "
            f"current build")


def load_results(doc):
    """Index a bench report's results by (method, m, key_value)."""
    out = {}
    for row in doc["results"]:
        key = (row["method"], row["m"], row["key_value"])
        if key in out:
            raise SystemExit(f"duplicate result row {key}")
        out[key] = row
    return out


def headline(row):
    """The row's headline metric: throughput when present, time otherwise
    (the table4 stage-breakdown report has no rate column)."""
    if "rate_gkeys" in row:
        return row["rate_gkeys"], "Gkeys/s"
    return row["total_ms"], "ms"


def compare_sites(key, base_row, cur_row, failures):
    base_sites = {s["label"]: s for s in base_row.get("sites", [])}
    cur_sites = {s["label"]: s for s in cur_row.get("sites", [])}
    for label, base_site in base_sites.items():
        cur_site = cur_sites.get(label)
        if cur_site is None:
            failures.append(f"{key} site '{label}': missing from current run")
            continue
        for counter in SITE_COUNTERS:
            want, got = base_site.get(counter), cur_site.get(counter)
            if want != got:
                failures.append(
                    f"{key} site '{label}' {counter}: "
                    f"baseline {want} current {got}")
    for label in cur_sites.keys() - base_sites.keys():
        failures.append(f"{key} site '{label}': not in baseline")


def main():
    args = [a for a in sys.argv[1:] if a != "--sites"]
    check_sites = "--sites" in sys.argv[1:]
    if len(args) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    bench = Path(args[0])
    baseline_path = Path(args[1])
    tolerance = float(args[2]) if len(args) == 3 else 0.10

    baseline = json.loads(baseline_path.read_text())
    check_schema(baseline, str(baseline_path))
    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "current.json"
        cmd = [
            str(bench),
            "--n", str(baseline["log2_n"]),
            "--trials", str(baseline["trials"]),
            "--json", str(out_path),
        ]
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
            return 1
        current = json.loads(out_path.read_text())
    check_schema(current, "current run")

    if current["device"] != baseline["device"]:
        print(f"FAIL: device changed: {baseline['device']} -> "
              f"{current['device']}")
        return 1

    base_rows = load_results(baseline)
    cur_rows = load_results(current)
    failures = []
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current run")
            continue
        want, unit = headline(base)
        got, _ = headline(cur)
        drift = abs(got - want) / want
        status = "ok" if drift <= tolerance else "DRIFT"
        method, m, kv = key
        print(f"{status:5} {method:<18} m={m:<3} {'kv' if kv else 'key':<3} "
              f"baseline {want:6.2f} current {got:6.2f} {unit} "
              f"({drift * 100:+.1f}%)")
        if drift > tolerance:
            failures.append(
                f"{key}: {want:.3f} -> {got:.3f} {unit} "
                f"({drift * 100:.1f}% > {tolerance * 100:.0f}%)")
        if check_sites:
            compare_sites(key, base, cur, failures)
    for key in cur_rows.keys() - base_rows.keys():
        print(f"note: {key} not in baseline (new configuration)")

    if failures:
        print(f"\nFAIL: {len(failures)} comparison(s) drifted:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {len(base_rows)} configurations within "
          f"{tolerance * 100:.0f}% of baseline"
          + (", per-site counters exact" if check_sites else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
