#!/usr/bin/env python3
"""Regression gate for the simulator's modeled performance.

Runs a bench binary with --json at the baseline's recorded problem size and
compares every (method, m, key_value) headline metric against the committed
baseline, failing on relative drift beyond the tolerance.  With --sites the
per-site counter slices are compared too (matched by label, exact integer
comparison regardless of tolerance) -- that is the tolerance-0 gate on the
table4 stage-breakdown baseline.

The simulator is fully deterministic, so drift means the cost model or an
implementation changed; rerun

    build/bench/table5_rates --n <log2_n> --trials <trials> \
        --json bench/baselines/table5_rates_n14.json

and commit the new file together with the change that explains it.

Reports carry a schema_version; a baseline written by a different schema is
rejected (regenerate it) rather than silently mis-compared.

The `record` mode runs a bench the same way but, instead of comparing,
appends one JSONL line (git sha, schema version, host threads, headline
metrics, request-latency percentiles when the bench emits a telemetry
timeline) to bench/history/<bench>.jsonl -- the cross-PR trajectory
tools/bench_history.py summarizes.

Usage: check_bench.py <bench-binary> <baseline.json> [tolerance] [--sites]
       check_bench.py record <bench-binary> [--history-dir <dir>]
                      [--n <log2>] [--trials <k>]
"""

import datetime
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

# Must match kReportSchemaVersion in src/sim/metrics.hpp.
# v3: benches report host wall-clock (host_ms / host_keys_per_sec); these
# fields vary run to run and are never compared by this checker.
# v4: reports carry the device sub-allocator stats block ("allocator") and
# result rows record the concrete method that ran ("method_selected").
# v5: bench host timing excludes the warm-up trial and adds host_ms_min;
# telemetry timelines and history records carry the same stamp.
# v6: reports carry the "resilience" block (chaos-injected fault counts and
# the resilient executor's retry/fallback/recovery accounting).  All zeros
# in bench reports -- chaos is off there -- so the block never perturbs
# comparisons at any tolerance.
# v7: span dumps (--spans JSONL) carry the same stamp and telemetry
# timelines gain optional exemplar trace-id fields; bench report fields are
# unchanged, so comparisons are unaffected.
# v8: reports carry the "batching" block (serving-executor batch/packing
# stats) and serving benches report requests_per_sec headline rows.  All
# zeros outside serving runs; no existing field changed meaning, so v7
# modeled values are bit-identical under v8.
SCHEMA_VERSION = 8

# Per-site counters compared exactly under --sites.  Integer event counts:
# any deviation is a real behavior change, never rounding.
SITE_COUNTERS = [
    "issue_slots", "scatter_replays", "smem_slots",
    "dram_read_tx", "dram_write_tx",
    "l2_read_segments", "l2_write_segments",
    "useful_bytes_read", "useful_bytes_written",
    "simt_insts", "simt_active_lanes", "ballot_rounds", "smem_accesses",
]


def check_schema(doc, name):
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SystemExit(
            f"FAIL: {name} has schema_version {version!r}, this checker "
            f"reads {SCHEMA_VERSION}; regenerate the report with the "
            f"current build")


def load_results(doc):
    """Index a bench report's results by (method, m, key_value)."""
    out = {}
    for row in doc["results"]:
        key = (row["method"], row["m"], row["key_value"])
        if key in out:
            raise SystemExit(f"duplicate result row {key}")
        out[key] = row
    return out


def headline(row):
    """The row's headline metric: throughput when present, time otherwise
    (the table4 stage-breakdown report has no rate column).  Serving rows
    (v8) lead with request throughput."""
    if "requests_per_sec" in row:
        return row["requests_per_sec"], "req/s"
    if "rate_gkeys" in row:
        return row["rate_gkeys"], "Gkeys/s"
    return row["total_ms"], "ms"


def compare_sites(key, base_row, cur_row, failures):
    base_sites = {s["label"]: s for s in base_row.get("sites", [])}
    cur_sites = {s["label"]: s for s in cur_row.get("sites", [])}
    for label, base_site in base_sites.items():
        cur_site = cur_sites.get(label)
        if cur_site is None:
            failures.append(f"{key} site '{label}': missing from current run")
            continue
        for counter in SITE_COUNTERS:
            want, got = base_site.get(counter), cur_site.get(counter)
            if want != got:
                failures.append(
                    f"{key} site '{label}' {counter}: "
                    f"baseline {want} current {got}")
    for label in cur_sites.keys() - base_sites.keys():
        failures.append(f"{key} site '{label}': not in baseline")


def git_sha():
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent)
        sha = proc.stdout.strip()
        return sha if proc.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def latency_from_timeline(path):
    """Histogram digests of the final snapshot of a --telemetry timeline
    (None when the bench wrote no usable timeline)."""
    try:
        lines = [l for l in Path(path).read_text().splitlines() if l.strip()]
    except OSError:
        return None
    if len(lines) < 2:
        return None
    header = json.loads(lines[0])
    if header.get("telemetry") != "timeline":
        return None
    check_schema(header, str(path))
    snap = json.loads(lines[-1])
    digests = {}
    for name, h in snap.get("histograms", {}).items():
        digests[name] = {k: h[k] for k in (
            "count", "p50_ms", "p95_ms", "p99_ms", "p999_ms", "max_ms")}
    return digests or None


def cmd_record(argv):
    """`record` mode: run one bench, append one history line."""
    bench = None
    history_dir = Path(__file__).resolve().parent.parent / "bench" / "history"
    log2_n = None
    trials = None
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--history-dir":
            i += 1
            history_dir = Path(argv[i])
        elif a == "--n":
            i += 1
            log2_n = int(argv[i])
        elif a == "--trials":
            i += 1
            trials = int(argv[i])
        elif bench is None and not a.startswith("-"):
            bench = Path(a)
        else:
            print(f"record: unexpected argument {a!r}", file=sys.stderr)
            return 2
        i += 1
    if bench is None:
        print(__doc__, file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "report.json"
        telem_path = Path(tmp) / "timeline.jsonl"
        cmd = [str(bench), "--json", str(out_path),
               "--telemetry", str(telem_path)]
        if log2_n is not None:
            cmd += ["--n", str(log2_n)]
        if trials is not None:
            cmd += ["--trials", str(trials)]
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
            return 1
        report = json.loads(out_path.read_text())
        check_schema(report, "bench report")
        latency = latency_from_timeline(telem_path)

    entry = {
        "history": "bench_run",
        "schema_version": SCHEMA_VERSION,
        "utc": datetime.datetime.now(datetime.timezone.utc)
               .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_sha": git_sha(),
        "bench": report["bench"],
        "device": report["device"],
        "log2_n": report["log2_n"],
        "trials": report["trials"],
        "host_threads": int(os.environ.get("MS_HOST_THREADS", 0))
                        or (os.cpu_count() or 1),
        "results": [],
    }
    # Additive provenance (never compared): which host lane engine ran.
    if "host_simd" in report:
        entry["host_simd"] = report["host_simd"]
    if latency is not None:
        entry["latency"] = latency
    # Resilience digest (v7): the executor-side accounting worth trending.
    # All zeros in ordinary bench runs (chaos is off), but history from
    # chaos-enabled runs shows retry/fallback pressure over time.
    res = report.get("resilience")
    if res is not None:
        entry["resilience"] = {k: res[k] for k in (
            "requests", "faults_observed", "retries", "fallbacks",
            "recovered", "lost") if k in res}
    # Batching digest (v8): serving-executor packing pressure over time.
    bat = report.get("batching")
    if bat is not None and bat.get("batches", 0) > 0:
        entry["batching"] = {k: bat[k] for k in (
            "batches", "packed_problems", "unpacked_problems",
            "fused_launches", "fill_ratio", "problems_retried") if k in bat}
    for row in report["results"]:
        rec = {k: row[k] for k in ("method", "m", "key_value") if k in row}
        for k in ("method_selected", "rate_gkeys", "total_ms", "steady_ms",
                  "host_ms", "host_ms_min", "host_keys_per_sec",
                  "requests_per_sec", "launch_overhead_pct"):
            if k in row:
                rec[k] = row[k]
        if isinstance(row.get("batching"), dict):
            rec["batching"] = row["batching"]
        entry["results"].append(rec)

    history_dir.mkdir(parents=True, exist_ok=True)
    out_file = history_dir / f"{report['bench']}.jsonl"
    with out_file.open("a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"recorded {report['bench']} @ {entry['git_sha']} -> {out_file}")
    return 0


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "record":
        return cmd_record(sys.argv[2:])
    args = [a for a in sys.argv[1:] if a != "--sites"]
    check_sites = "--sites" in sys.argv[1:]
    if len(args) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    bench = Path(args[0])
    baseline_path = Path(args[1])
    tolerance = float(args[2]) if len(args) == 3 else 0.10

    baseline = json.loads(baseline_path.read_text())
    check_schema(baseline, str(baseline_path))
    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "current.json"
        cmd = [
            str(bench),
            "--n", str(baseline["log2_n"]),
            "--trials", str(baseline["trials"]),
            "--json", str(out_path),
        ]
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
            return 1
        current = json.loads(out_path.read_text())
    check_schema(current, "current run")

    if current["device"] != baseline["device"]:
        print(f"FAIL: device changed: {baseline['device']} -> "
              f"{current['device']}")
        return 1

    base_rows = load_results(baseline)
    cur_rows = load_results(current)
    failures = []
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current run")
            continue
        want, unit = headline(base)
        got, _ = headline(cur)
        drift = abs(got - want) / want
        status = "ok" if drift <= tolerance else "DRIFT"
        method, m, kv = key
        print(f"{status:5} {method:<18} m={m:<3} {'kv' if kv else 'key':<3} "
              f"baseline {want:6.2f} current {got:6.2f} {unit} "
              f"({drift * 100:+.1f}%)")
        if drift > tolerance:
            failures.append(
                f"{key}: {want:.3f} -> {got:.3f} {unit} "
                f"({drift * 100:.1f}% > {tolerance * 100:.0f}%)")
        if check_sites:
            compare_sites(key, base, cur, failures)
    for key in cur_rows.keys() - base_rows.keys():
        print(f"note: {key} not in baseline (new configuration)")

    if failures:
        print(f"\nFAIL: {len(failures)} comparison(s) drifted:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {len(base_rows)} configurations within "
          f"{tolerance * 100:.0f}% of baseline"
          + (", per-site counters exact" if check_sites else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
