#!/usr/bin/env python3
"""Self-check for the bench-history pipeline (the bench_history_selfcheck
CTest entry).

Records two runs of a bench into a *temporary* history directory via
`check_bench.py record`, then verifies the JSONL schema round-trips
through `bench_history.py --summarize`: two lines on disk, both parse,
the summary reports both runs and the latency percentile digest when the
bench emitted one.  Never touches the committed bench/history/.

Usage: test_bench_history.py <check_bench.py> <bench-binary>
       <bench_history.py>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def run(cmd, **kw):
    proc = subprocess.run([sys.executable] + [str(c) for c in cmd],
                          capture_output=True, text=True, **kw)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(map(str, cmd))} exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
    return proc.stdout


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    check_bench, bench, bench_history = (Path(a) for a in sys.argv[1:4])

    with tempfile.TemporaryDirectory() as tmp:
        hist_dir = Path(tmp) / "history"
        for _ in range(2):
            run([check_bench, "record", bench, "--history-dir", hist_dir])

        files = sorted(hist_dir.glob("*.jsonl"))
        if len(files) != 1:
            raise SystemExit(
                f"FAIL: expected one history file, found {files}")
        lines = [l for l in files[0].read_text().splitlines() if l.strip()]
        if len(lines) != 2:
            raise SystemExit(
                f"FAIL: expected 2 history lines, found {len(lines)}")
        entries = [json.loads(l) for l in lines]
        for e in entries:
            for field in ("history", "schema_version", "git_sha", "bench",
                          "results", "host_threads"):
                if field not in e:
                    raise SystemExit(f"FAIL: history line missing {field!r}")
            if not e["results"]:
                raise SystemExit("FAIL: history line has no results")

        summary = run([bench_history, "--summarize", hist_dir])
        if "2 run(s)" not in summary:
            raise SystemExit(
                f"FAIL: summary does not report both runs:\n{summary}")
        if entries[-1].get("latency") and "latency" not in summary:
            raise SystemExit(
                f"FAIL: summary dropped the latency digest:\n{summary}")

    print("OK: bench history round-trips (2 records -> summarize)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
