#!/usr/bin/env python3
"""Golden-output test for `ms_cli diff`.

Drives the diff subcommand over the committed fixtures in tools/testdata/
and checks the full exit-code contract:

  0  identical reports            (self-diff of diff_base.json)
  1  regression found             (diff_base vs diff_edited: one bumped
                                   per-site sector counter; the finding must
                                   name the result row, site label and
                                   counter)
  2  unusable input               (schema_version mismatch against the v1
                                   fixture, and a missing file)

Usage: test_diff_golden.py <ms_cli-binary> <testdata-dir>
"""

import subprocess
import sys
from pathlib import Path


def run_diff(ms_cli, *args):
    proc = subprocess.run([str(ms_cli), "diff", *map(str, args)],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    ms_cli = Path(sys.argv[0 + 1])
    data = Path(sys.argv[2])
    base = data / "diff_base.json"
    edited = data / "diff_edited.json"
    old = data / "diff_old_schema.json"
    failures = []

    code, out = run_diff(ms_cli, base, base)
    if code != 0:
        failures.append(f"self-diff: expected exit 0, got {code}\n{out}")
    if "zero drift" not in out:
        failures.append(f"self-diff: missing 'zero drift' summary\n{out}")

    code, out = run_diff(ms_cli, base, edited)
    if code != 1:
        failures.append(f"edited diff: expected exit 1, got {code}\n{out}")
    needle = "sites[label=warp_ms/postscan_scatter].dram_read_tx"
    if needle not in out:
        failures.append(
            f"edited diff: finding does not name the edited site counter "
            f"({needle})\n{out}")
    if "baseline" not in out or "current" not in out:
        failures.append(f"edited diff: finding lacks before/after values\n{out}")

    code, out = run_diff(ms_cli, base, old)
    if code != 2:
        failures.append(
            f"old-schema diff: expected exit 2, got {code}\n{out}")
    if "schema_version" not in out:
        failures.append(
            f"old-schema diff: error does not mention schema_version\n{out}")

    code, out = run_diff(ms_cli, base, data / "does_not_exist.json")
    if code != 2:
        failures.append(f"missing file: expected exit 2, got {code}\n{out}")

    # Tolerance flag: the edited counter drifts 2 transactions on a small
    # count; a huge tolerance must turn the failure into a pass.
    code, out = run_diff(ms_cli, base, edited, "--tolerance", "200")
    if code != 0:
        failures.append(
            f"tolerant diff: expected exit 0 at 200% tolerance, got {code}"
            f"\n{out}")

    if failures:
        print("FAIL: ms_cli diff golden test:")
        for f in failures:
            print("  " + f.replace("\n", "\n    "))
        return 1
    print("OK: ms_cli diff exit codes and finding paths match the contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
