#!/usr/bin/env python3
"""Perfetto/Chrome-trace compatibility lint.

Validates that a trace written by sim/trace.cpp loads cleanly in
chrome://tracing / Perfetto and that the span track obeys the invariants
the UI relies on:

  - top level is an object with a traceEvents array (JSON Object Format);
  - every event carries ph/pid/tid and numeric ts where applicable;
  - complete events ("X") have dur >= 0;
  - per-tid "X" slices nest strictly (a slice either contains another or
    is disjoint from it -- partial overlap renders as garbage);
  - metadata events ("M") carry args.name;
  - flow events pair up: every flow start ("s") has a matching finish
    ("f") with the same category and id, and finishes bind to an
    enclosing slice ("bp": "e");
  - span slices (cat "span" -- NOT the tid-0 stage bands, which reuse
    cat "stage") are named "<kind>:<name>" for a known kind and carry
    the trace/span/parent args the tail tooling echoes.

Usage: check_trace_perfetto.py <trace.json> [--require-spans]
With --require-spans the trace must contain at least one span slice.
Exit 0 = compatible, 1 = violations found, 2 = unusable input.
"""

import json
import sys
from collections import defaultdict
from pathlib import Path

SPAN_KINDS = ("request", "attempt", "stage", "launch")


def lint(doc, failures, require_spans=False):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        failures.append("top level lacks a traceEvents array")
        return
    flow_starts = {}
    flow_finishes = {}
    slices_by_tid = defaultdict(list)
    span_slices = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            failures.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph is None:
            failures.append(f"{where}: missing ph")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), (int, float)):
                failures.append(f"{where}: missing numeric {key}")
        if ph in ("X", "C", "s", "f") and not isinstance(
                ev.get("ts"), (int, float)):
            failures.append(f"{where}: ph={ph} missing numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                failures.append(f"{where}: X slice with bad dur {dur!r}")
            else:
                slices_by_tid[ev.get("tid")].append((ev.get("ts"), dur,
                                                     ev.get("name"), where))
            if ev.get("cat") == "span":
                span_slices += 1
                name = ev.get("name", "")
                if not any(name.startswith(k + ":") for k in SPAN_KINDS):
                    failures.append(
                        f"{where}: span slice named {name!r}, expected "
                        f"'<kind>:...' with kind in {SPAN_KINDS}")
                args = ev.get("args", {})
                for key in ("trace", "span", "parent"):
                    if key not in args:
                        failures.append(
                            f"{where}: span slice lacks args.{key}")
        elif ph == "M":
            if "name" not in ev.get("args", {}):
                failures.append(f"{where}: metadata event lacks args.name")
        elif ph == "s":
            flow_starts[(ev.get("cat"), ev.get("id"))] = where
        elif ph == "f":
            flow_finishes[(ev.get("cat"), ev.get("id"))] = where
            if ev.get("bp") != "e":
                failures.append(
                    f"{where}: flow finish without bp=e binds to the NEXT "
                    f"slice, not the enclosing one")

    for key, where in flow_starts.items():
        if key not in flow_finishes:
            failures.append(f"{where}: flow start {key} has no finish")
    for key, where in flow_finishes.items():
        if key not in flow_starts:
            failures.append(f"{where}: flow finish {key} has no start")

    if require_spans and span_slices == 0:
        failures.append(
            "trace has no span slices (cat \"span\") -- was the device's "
            "span recorder enabled?")

    # Strict nesting per tid: walk slices in (ts, -dur) order keeping a
    # stack of open end times; a slice starting inside an open slice must
    # also end inside it.
    eps = 1e-9
    for tid, slices in slices_by_tid.items():
        slices.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for ts, dur, name, where in slices:
            while stack and ts >= stack[-1] - eps:
                stack.pop()
            if stack and ts + dur > stack[-1] + eps:
                failures.append(
                    f"{where}: slice {name!r} (tid {tid}) partially "
                    f"overlaps an earlier slice")
                continue
            stack.append(ts + dur)


def main():
    argv = [a for a in sys.argv[1:] if a != "--require-spans"]
    require_spans = "--require-spans" in sys.argv[1:]
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(argv[0])
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load {path}: {e}")
        return 2

    failures = []
    lint(doc, failures, require_spans=require_spans)
    if failures:
        print(f"FAIL: {path} has {len(failures)} Perfetto-compat "
              f"violation(s):")
        for f in failures[:40]:
            print(f"  {f}")
        return 1
    n = len(doc.get("traceEvents", []))
    print(f"OK: {path} is Perfetto-compatible ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
