// SpMV row binning (one of the paper's motivating applications, after
// Ashari et al.: "sparse-matrix dense-vector multiplication work, which
// bins rows by length").
//
// Rows of a CSR matrix are bucketed by ceil(log2(row length)) with one
// key-value multisplit (key = packed row length, value = row id); each
// bin then gets an execution strategy sized to its rows -- one thread per
// row for short rows, one warp per row for long ones.  The binning pass
// is the multisplit; the per-bin SpMV kernels run on the same simulator.
//
//   $ ./spmv_row_binning
#include <cmath>
#include <cstdio>
#include <random>

#include "graph/generators.hpp"
#include "multisplit/multisplit.hpp"

using namespace ms;

namespace {

/// Bucket rows by length class: 0 for empty, else 1 + floor(log2(len)),
/// clamped to 8 classes.
struct RowLengthBucket {
  u32 operator()(u32 len) const {
    if (len == 0) return 0;
    return std::min<u32>(7, 1 + ceil_log2(len + 1) / 2);
  }
  static constexpr u32 charge_cost = 3;
};

}  // namespace

int main() {
  // A scale-free sparsity pattern: most rows short, a few huge (the
  // regime where row binning pays).
  graph::GenConfig gc;
  gc.max_weight = 100;
  const graph::Csr mat = graph::social_like(20000, 120000, gc);
  const u32 nrows = mat.num_vertices;

  sim::Device dev;
  sim::DeviceBuffer<u32> row_off(dev, std::span<const u32>(mat.row_offsets));
  sim::DeviceBuffer<u32> cols(dev, std::span<const u32>(mat.col_indices));
  sim::DeviceBuffer<u32> vals(dev, std::span<const u32>(mat.weights));
  sim::DeviceBuffer<u32> x(dev, nrows), y(dev, nrows);
  std::mt19937 rng(5);
  for (u32 i = 0; i < nrows; ++i) x[i] = rng() % 16;

  // ---- bin rows by length with one multisplit -----------------------
  sim::DeviceBuffer<u32> lens(dev, nrows), row_ids(dev, nrows);
  for (u32 r = 0; r < nrows; ++r) {
    lens[r] = mat.degree(r);
    row_ids[r] = r;
  }
  sim::DeviceBuffer<u32> lens_out(dev, nrows), rows_out(dev, nrows);
  split::MultisplitConfig cfg;
  cfg.method = split::Method::kBlockLevel;
  const auto bins = split::multisplit_pairs(dev, lens, row_ids, lens_out,
                                            rows_out, 8, RowLengthBucket{},
                                            cfg);
  std::printf("binned %u rows into 8 length classes in %.3f ms:\n", nrows,
              bins.total_ms());
  for (u32 b = 0; b < 8; ++b) {
    std::printf("  class %u (len ~ %4u+): %6u rows\n", b,
                b == 0 ? 0 : (1u << (2 * (b - 1))),
                bins.bucket_offsets[b + 1] - bins.bucket_offsets[b]);
  }

  // ---- per-bin SpMV: thread-per-row for short bins, warp-per-row for
  // the heavy tail ----------------------------------------------------
  const u64 t0 = dev.mark();
  for (u32 b = 1; b < 8; ++b) {
    const u32 lo = bins.bucket_offsets[b], hi = bins.bucket_offsets[b + 1];
    if (lo == hi) continue;
    if (b <= 4) {
      // Short rows: one lane per row, sequential dot product.
      sim::launch_warps(dev, "spmv_short", ceil_div(hi - lo, kWarpSize),
                        [&](sim::Warp& w, u64 wid) {
        const u64 base = lo + wid * kWarpSize;
        const LaneMask mask = sim::tail_mask(hi - base);
        const auto rows = w.load(rows_out, base, mask);
        LaneArray<u64> ridx{}, ridx1{};
        for (u32 l = 0; l < kWarpSize; ++l) {
          ridx[l] = rows[l];
          ridx1[l] = rows[l] + 1u;
        }
        auto e = w.gather(row_off, ridx, mask);
        const auto e_end = w.gather(row_off, ridx1, mask);
        LaneArray<u32> acc{};
        LaneMask act = w.ballot(
            e.zip(e_end, [](u32 a, u32 c) { return a < c ? 1u : 0u; }), mask);
        while (act != 0) {
          LaneArray<u64> ei{};
          for (u32 l = 0; l < kWarpSize; ++l) ei[l] = e[l];
          const auto c = w.gather(cols, ei, act);
          const auto v = w.gather(vals, ei, act);
          LaneArray<u64> ci{};
          for (u32 l = 0; l < kWarpSize; ++l) ci[l] = c[l];
          const auto xv = w.gather(x, ci, act);
          w.charge(2);
          for (u32 l = 0; l < kWarpSize; ++l) {
            if (lane_active(act, l)) {
              acc[l] += v[l] * xv[l];
              e[l] += 1;
            }
          }
          act = w.ballot(
              e.zip(e_end, [](u32 a, u32 c2) { return a < c2 ? 1u : 0u; }),
              act);
        }
        w.scatter(y, ridx, acc, mask);
      });
    } else {
      // Long rows: one warp per row, lanes stride the row, warp-reduce.
      sim::launch_warps(dev, "spmv_long", hi - lo, [&](sim::Warp& w, u64 wid) {
        const u32 row = rows_out[lo + wid];
        const u32 e0 = mat.row_offsets[row], e1 = mat.row_offsets[row + 1];
        LaneArray<u32> acc{};
        for (u32 base = e0; base < e1; base += kWarpSize) {
          const LaneMask mask = sim::tail_mask(e1 - base);
          const auto c = w.load(cols, base, mask);
          const auto v = w.load(vals, base, mask);
          LaneArray<u64> ci{};
          for (u32 l = 0; l < kWarpSize; ++l) ci[l] = c[l];
          const auto xv = w.gather(x, ci, mask);
          w.charge(1);
          for (u32 l = 0; l < kWarpSize; ++l) {
            if (lane_active(mask, l)) acc[l] += v[l] * xv[l];
          }
        }
        const auto total = prim::warp_reduce_sum(w, acc);
        w.store(y, row, total, 1u);
      });
    }
  }
  const f64 spmv_ms = dev.summary_since(t0).total_ms;

  // Verify against a host reference.
  u64 errors = 0;
  for (u32 r = 0; r < nrows; ++r) {
    u32 want = 0;
    for (u32 e = mat.row_offsets[r]; e < mat.row_offsets[r + 1]; ++e)
      want += mat.weights[e] * x[mat.col_indices[e]];
    if (mat.degree(r) > 0 && y[r] != want) ++errors;
  }
  std::printf("\nbinned SpMV: %.3f ms, %llu edges, %s\n", spmv_ms,
              static_cast<unsigned long long>(mat.num_edges()),
              errors == 0 ? "matches host reference" : "WRONG");
  return errors == 0 ? 0 : 1;
}
