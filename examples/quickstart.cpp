// Quickstart: split one million random 32-bit keys into 8 contiguous
// range buckets with the block-level multisplit, inspect the bucket
// offsets, and look at the per-stage cost breakdown the simulator models.
//
//   $ ./quickstart
#include <cstdio>
#include <random>

#include "multisplit/multisplit.hpp"

using namespace ms;

int main() {
  // A simulated Tesla K40c (the paper's evaluation device).
  sim::Device dev;

  // 1M random keys in device memory (host access is free setup).
  const u64 n = 1u << 20;
  sim::DeviceBuffer<u32> keys_in(dev, n), keys_out(dev, n);
  std::mt19937 rng(2016);
  for (u64 i = 0; i < n; ++i) keys_in[i] = rng();

  // Split into 8 buckets that equally divide the 32-bit key domain.  Any
  // functor u32 -> bucket id works here; RangeBucket is the paper's
  // evaluation setup.  Building a plan resolves the method (kAuto applies
  // the paper's crossover guidance for this device and m), the grid shape,
  // and the scratch footprint once; plan.run() can then be called any
  // number of times against pooled scratch.
  const u32 m = 8;
  split::MultisplitConfig cfg;
  cfg.method = split::Method::kAuto;  // let the paper's guidance pick
  const split::MultisplitPlan plan(dev, n, m, cfg);
  const auto result = plan.run(keys_in, keys_out, split::RangeBucket{m});

  std::printf("multisplit of %llu keys into %u buckets (auto -> %s):\n\n",
              static_cast<unsigned long long>(n), m,
              to_string(result.method_selected).c_str());
  for (u32 j = 0; j < m; ++j) {
    std::printf("  bucket %u: [%9u, %9u)  (%u keys)\n", j,
                result.bucket_offsets[j], result.bucket_offsets[j + 1],
                result.bucket_offsets[j + 1] - result.bucket_offsets[j]);
  }

  std::printf("\nmodeled device time: %.3f ms  (pre-scan %.3f | scan %.3f | "
              "post-scan %.3f)\n",
              result.total_ms(), result.stages.prescan_ms,
              result.stages.scan_ms, result.stages.postscan_ms);
  std::printf("throughput: %.2f Gkeys/s on a simulated K40c\n",
              static_cast<f64>(n) / (result.total_ms() * 1e6));

  // The output really is bucket-ordered and stable; spot-check one boundary.
  const split::RangeBucket f{m};
  for (u64 i = 1; i < n; ++i) {
    if (f(keys_out[i - 1]) > f(keys_out[i])) {
      std::printf("ERROR: bucket order violated at %llu\n",
                  static_cast<unsigned long long>(i));
      return 1;
    }
  }
  std::printf("verified: output is bucket-contiguous and ascending.\n");
  return 0;
}
