// String-sort singleton compaction (one of the paper's motivating
// applications, after Deshpande & Narayanan: "in string sort for singleton
// compaction and elimination").
//
// GPU string sorts proceed character column by character column.  After
// bucketing strings by their current character, any bucket holding exactly
// one string (a "singleton") is already in final position and is
// *eliminated* from later, more expensive passes.  Multisplit does the
// bucketing (the fused-bucket sort handles the thousands of buckets of
// the deeper prefix widths); compaction removes the finished strings.
// This example runs three prefix widths of that pipeline on a skewed
// dictionary and reports how much work singleton elimination saves.
//
//   $ ./string_sort_compaction
#include <algorithm>
#include <cstdio>
#include <random>
#include <cmath>
#include <string>
#include <vector>

#include "multisplit/multisplit.hpp"
#include "primitives/compact.hpp"

using namespace ms;

namespace {

/// Pack the (up to) first 4 characters of a string into a sortable key.
u32 prefix_key(const std::string& s, size_t from) {
  u32 k = 0;
  for (size_t i = 0; i < 4; ++i) {
    k = (k << 8) | (from + i < s.size() ? static_cast<u8>(s[from + i]) : 0);
  }
  return k;
}

/// Bucket by the first `width` characters of the packed prefix key:
/// 26^width buckets.  Each sorting column widens the prefix, so buckets
/// refine and singletons appear.
struct PrefixBucket {
  u32 width;
  u32 operator()(u32 key) const {
    u32 b = 0;
    for (u32 i = 0; i < width; ++i) {
      const u32 c = (key >> (24 - 8 * i)) & 0xFF;
      b = b * 26 + (c < 'a' ? 0u : std::min(c - 'a', 25u));
    }
    return b;
  }
  static constexpr u32 charge_cost = 4;
};

}  // namespace

int main() {
  // A dictionary with a zipf-ish first-letter distribution: many 's'/'c'
  // words, few 'x'/'z' -- the regime where singleton buckets appear early.
  std::mt19937 rng(31);
  const char* alphabet = "abcdefghijklmnopqrstuvwxyz";
  std::vector<std::string> dict;
  const u64 n_strings = 1u << 12;
  for (u64 i = 0; i < n_strings; ++i) {
    std::string s;
    const size_t len = 3 + rng() % 10;
    for (size_t j = 0; j < len; ++j) {
      // Heavier mass on early letters as the word extends.
      const u32 r = rng() % 100;
      s += alphabet[(r * r / 400 + rng() % 7) % 26];
    }
    dict.push_back(std::move(s));
  }

  sim::Device dev;
  const u64 n = dict.size();
  sim::DeviceBuffer<u32> keys(dev, n), ids(dev, n);
  for (u64 i = 0; i < n; ++i) {
    keys[i] = prefix_key(dict[i], 0);
    ids[i] = static_cast<u32>(i);
  }

  std::printf("string sort pipeline over %llu strings:\n\n",
              static_cast<unsigned long long>(n));
  u64 active = n;
  u64 eliminated = 0;
  f64 total_ms = 0;
  split::MultisplitConfig cfg;
  // Deep columns mean thousands of buckets: the fused-bucket sort is the
  // right tool there (Section 3.4 future work, implemented here).
  cfg.method = split::Method::kFusedBucketSort;

  for (u32 width = 1; width <= 3 && active > 0; ++width) {
    const u32 m = static_cast<u32>(std::pow(26, width));
    const PrefixBucket bucket{width};
    // 1. bucket the active strings by the current prefix width.
    sim::DeviceBuffer<u32> kout(dev, active), iout(dev, active);
    sim::DeviceBuffer<u32> kin(dev, active), iin(dev, active);
    for (u64 i = 0; i < active; ++i) {
      kin[i] = keys[i];
      iin[i] = ids[i];
    }
    const auto r =
        split::multisplit_pairs(dev, kin, iin, kout, iout, m, bucket, cfg);
    total_ms += r.total_ms();

    // 2. mark singleton buckets: those strings are in final position.
    u32 singletons = 0;
    sim::DeviceBuffer<u32> flags(dev, active);
    for (u64 i = 0; i < active; ++i) {
      const u32 b = bucket(kout[i]);
      const bool single = r.bucket_offsets[b + 1] - r.bucket_offsets[b] == 1;
      flags[i] = single ? 0u : 1u;  // keep non-singletons
      singletons += single ? 1u : 0u;
    }

    // 3. compact the finished strings out; survivors go one column deeper.
    sim::DeviceBuffer<u32> survivors_k(dev, active), survivors_i(dev, active);
    const u64 mark = dev.mark();
    const u64 kept = prim::compact_by_flags<u32>(dev, kout, flags, survivors_k);
    prim::compact_by_flags<u32>(dev, iout, flags, survivors_i);
    total_ms += dev.summary_since(mark).total_ms;

    std::printf(
        "  prefix width %u: %6llu active -> %5u buckets in %.3f ms, "
        "%4u singletons eliminated\n",
        width, static_cast<unsigned long long>(active), m, r.total_ms(),
        singletons);

    for (u64 i = 0; i < kept; ++i) {
      ids[i] = survivors_i[i];
      keys[i] = prefix_key(dict[survivors_i[i]], 0);
    }
    eliminated += singletons;
    active = kept;
  }

  std::printf(
      "\n%llu of %llu strings eliminated as singletons (%.3f ms device "
      "time);\nthey never pay for the expensive deep-prefix passes.\n",
      static_cast<unsigned long long>(eliminated),
      static_cast<unsigned long long>(n), total_ms);

  // Sanity: every id appears exactly once across placed + active sets.
  std::vector<u32> seen;
  for (u64 i = 0; i < active; ++i) seen.push_back(ids[i]);
  std::sort(seen.begin(), seen.end());
  check(std::adjacent_find(seen.begin(), seen.end()) == seen.end(),
        "duplicate string id after compaction");
  std::printf("verified: no string lost or duplicated.\n");
  return 0;
}
