// Ray-direction bucketing (one of the paper's motivating applications:
// "reorganizing rays into 8 direction-based buckets for better coherence
// in a GPU-based ray tracer").
//
// Rays are packed as 32-bit records whose top bits encode the direction
// signs; the bucket function extracts the direction octant.  A key-value
// multisplit groups coherent rays while carrying each ray's id, so the
// tracer can fetch the full ray payload bucket by bucket.
//
//   $ ./ray_bucketing
#include <cmath>
#include <cstdio>
#include <random>

#include "multisplit/multisplit.hpp"

using namespace ms;

namespace {

/// Pack a direction into a sortable 32-bit key: 3 sign bits (the octant)
/// on top, then a coarse dominant-axis cosine for intra-bucket reuse.
u32 pack_ray_key(f64 dx, f64 dy, f64 dz) {
  const u32 octant = (dx < 0 ? 4u : 0u) | (dy < 0 ? 2u : 0u) | (dz < 0 ? 1u : 0u);
  const f64 len = std::sqrt(dx * dx + dy * dy + dz * dz);
  const f64 major = std::max({std::fabs(dx), std::fabs(dy), std::fabs(dz)});
  const u32 cosine = static_cast<u32>(major / len * ((1u << 29) - 1));
  return (octant << 29) | cosine;
}

struct OctantBucket {
  u32 operator()(u32 key) const { return key >> 29; }
  static constexpr u32 charge_cost = 1;
};

}  // namespace

int main() {
  sim::Device dev;
  const u64 n = 1u << 19;  // half a million rays

  // Generate incoherent secondary rays (uniform directions on the sphere).
  sim::DeviceBuffer<u32> ray_keys(dev, n), ray_ids(dev, n);
  std::mt19937_64 rng(7);
  std::normal_distribution<f64> gauss;
  for (u64 i = 0; i < n; ++i) {
    ray_keys[i] = pack_ray_key(gauss(rng), gauss(rng), gauss(rng));
    ray_ids[i] = static_cast<u32>(i);
  }

  sim::DeviceBuffer<u32> keys_out(dev, n), ids_out(dev, n);
  split::MultisplitConfig cfg;
  cfg.method = split::Method::kWarpLevel;  // 8 buckets: warp-level territory
  const auto r = split::multisplit_pairs(dev, ray_keys, ray_ids, keys_out,
                                         ids_out, 8, OctantBucket{}, cfg);

  std::printf("bucketed %llu rays into 8 direction octants in %.3f ms "
              "(%.2f Grays/s, simulated K40c)\n\n",
              static_cast<unsigned long long>(n), r.total_ms(),
              static_cast<f64>(n) / (r.total_ms() * 1e6));
  static const char* kNames[8] = {"+x+y+z", "+x+y-z", "+x-y+z", "+x-y-z",
                                  "-x+y+z", "-x+y-z", "-x-y+z", "-x-y-z"};
  for (u32 b = 0; b < 8; ++b) {
    std::printf("  octant %s: %6u rays\n", kNames[b],
                r.bucket_offsets[b + 1] - r.bucket_offsets[b]);
  }

  // Every octant's rays are now contiguous: a tracer batches them with
  // coherent traversal.  Verify the grouping and that ids follow their rays.
  const OctantBucket f;
  for (u64 i = 0; i < n; ++i) {
    if (keys_out[i] != ray_keys[ids_out[i]]) {
      std::printf("ERROR: ray id desynchronized at %llu\n",
                  static_cast<unsigned long long>(i));
      return 1;
    }
    const u32 b = f(keys_out[i]);
    if (i < r.bucket_offsets[b] || i >= r.bucket_offsets[b + 1]) {
      std::printf("ERROR: ray outside its octant range\n");
      return 1;
    }
  }
  std::printf("\nverified: rays grouped by octant, ids intact.\n");
  return 0;
}
