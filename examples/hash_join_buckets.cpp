// Hash-join partitioning (one of the paper's motivating applications,
// after He et al. / Diamos et al.: "in hash-join for relational databases
// to group low-bit keys").
//
// Both relations are partitioned by the low bits of the join key with one
// key-value multisplit each (value = row id); matching partitions are then
// joined independently -- the classic partitioned hash join, with the
// partitioning pass powered by multisplit instead of a sort.
//
//   $ ./hash_join_buckets
#include <cstdio>
#include <random>
#include <unordered_map>

#include "multisplit/multisplit.hpp"

using namespace ms;

int main() {
  sim::Device dev;
  const u64 nr = 1u << 19;  // build relation R
  const u64 ns = 1u << 20;  // probe relation S
  const u32 kBits = 4;      // 16 partitions
  const u32 m = 1u << kBits;

  std::mt19937_64 rng(123);
  sim::DeviceBuffer<u32> r_keys(dev, nr), r_ids(dev, nr);
  sim::DeviceBuffer<u32> s_keys(dev, ns), s_ids(dev, ns);
  for (u64 i = 0; i < nr; ++i) {
    r_keys[i] = static_cast<u32>(rng() % (1u << 22));  // some join hits
    r_ids[i] = static_cast<u32>(i);
  }
  for (u64 i = 0; i < ns; ++i) {
    s_keys[i] = static_cast<u32>(rng() % (1u << 22));
    s_ids[i] = static_cast<u32>(i);
  }

  split::MultisplitConfig cfg;
  cfg.method = split::Method::kBlockLevel;  // 16 buckets: block-level wins
  const split::LowBitsBucket part{kBits};

  // One plan per relation shape; in a real pipeline each would be built
  // once and reused every time that relation (or one of its size) is
  // re-partitioned, with scratch coming back from the device pool.
  const split::MultisplitPlan plan_r(dev, nr, m, cfg, sizeof(u32));
  const split::MultisplitPlan plan_s(dev, ns, m, cfg, sizeof(u32));

  sim::DeviceBuffer<u32> rk(dev, nr), ri(dev, nr), sk(dev, ns), si(dev, ns);
  const auto pr = plan_r.run_pairs(r_keys, r_ids, rk, ri, part);
  const auto ps = plan_s.run_pairs(s_keys, s_ids, sk, si, part);

  std::printf("partitioned R (%llu rows) and S (%llu rows) into %u buckets "
              "in %.3f + %.3f ms (simulated K40c)\n\n",
              static_cast<unsigned long long>(nr),
              static_cast<unsigned long long>(ns), m, pr.total_ms(),
              ps.total_ms());

  // Join each partition pair (host-side hash join stands in for the
  // per-partition GPU kernel; the point of the example is the partitioning).
  u64 matches = 0;
  for (u32 b = 0; b < m; ++b) {
    std::unordered_multimap<u32, u32> build;
    for (u32 i = pr.bucket_offsets[b]; i < pr.bucket_offsets[b + 1]; ++i)
      build.emplace(rk[i], ri[i]);
    for (u32 i = ps.bucket_offsets[b]; i < ps.bucket_offsets[b + 1]; ++i) {
      matches += build.count(sk[i]);
    }
    std::printf("  partition %2u: |R|=%6u |S|=%7u\n", b,
                pr.bucket_offsets[b + 1] - pr.bucket_offsets[b],
                ps.bucket_offsets[b + 1] - ps.bucket_offsets[b]);
  }

  // Reference join count without partitioning.
  u64 want = 0;
  {
    std::unordered_multimap<u32, u32> build;
    for (u64 i = 0; i < nr; ++i) build.emplace(r_keys[i], 0u);
    for (u64 i = 0; i < ns; ++i) want += build.count(s_keys[i]);
  }
  std::printf("\njoin result: %llu matches (reference %llu) -- %s\n",
              static_cast<unsigned long long>(matches),
              static_cast<unsigned long long>(want),
              matches == want ? "correct" : "WRONG");
  return matches == want ? 0 : 1;
}
