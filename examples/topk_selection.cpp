// Probabilistic top-k selection (one of the paper's motivating
// applications, after Monroe et al.: "whose core multisplit operation is
// three bins around two pivots").
//
// To find the k largest of n keys: sample to choose two pivots that very
// likely straddle the k-th largest value, multisplit into {below lo,
// between, above hi}, keep the top bucket, and recurse on the middle
// bucket for the remainder.  Each round is one 3-bucket multisplit --
// exactly the primitive the paper provides.
//
//   $ ./topk_selection
#include <algorithm>
#include <cstdio>
#include <random>

#include "multisplit/multisplit.hpp"

using namespace ms;

int main() {
  sim::Device dev;
  const u64 n = 1u << 20;
  const u64 k = 10000;

  sim::DeviceBuffer<u32> keys(dev, n), scratch(dev, n);
  std::mt19937_64 rng(99);
  for (u64 i = 0; i < n; ++i) keys[i] = static_cast<u32>(rng());

  // Ground truth for verification.
  std::vector<u32> sorted(keys.host().begin(), keys.host().end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const u32 kth_value = sorted[k - 1];

  // --- one selection round -------------------------------------------
  // Sample ~1024 keys to place pivots around the k-th largest.
  std::vector<u32> sample;
  for (u64 i = 0; i < 1024; ++i) sample.push_back(keys[rng() % n]);
  std::sort(sample.begin(), sample.end(), std::greater<>());
  const f64 frac = static_cast<f64>(k) / n;
  const auto idx = static_cast<size_t>(frac * sample.size());
  const u32 hi = sample[std::max<size_t>(1, idx / 2)];      // above: surely in top-k
  const u32 lo = sample[std::min(sample.size() - 1, 2 * idx + 8)];  // below: surely out

  split::MultisplitConfig cfg;
  cfg.method = split::Method::kWarpLevel;
  f64 total_ms = 0;
  const auto r = split::multisplit_keys(dev, keys, scratch, 3,
                                        split::PivotBucket{lo, hi}, cfg);
  total_ms += r.total_ms();

  const u32 sure_top = r.bucket_offsets[3] - r.bucket_offsets[2];
  const u32 middle = r.bucket_offsets[2] - r.bucket_offsets[1];
  std::printf("pivots lo=%u hi=%u: %u keys surely in the top-%llu, %u "
              "candidates in the middle band\n",
              lo, hi, sure_top, static_cast<unsigned long long>(k), middle);
  check(sure_top <= k, "pivot hi was not conservative");
  check(sure_top + middle >= k, "pivot lo was not conservative");

  // Finish the middle band host-side (it is tiny; a real implementation
  // would recurse with two new pivots).
  std::vector<u32> band(scratch.host().begin() + r.bucket_offsets[1],
                        scratch.host().begin() + r.bucket_offsets[2]);
  std::sort(band.begin(), band.end(), std::greater<>());
  const u32 result_kth = band[k - sure_top - 1];

  std::printf("k-th largest: selected %u, reference %u -- %s\n", result_kth,
              kth_value, result_kth == kth_value ? "correct" : "WRONG");
  std::printf("multisplit time: %.3f ms for %llu keys (vs ~%0.f ms to fully "
              "sort on the same device)\n",
              total_ms, static_cast<unsigned long long>(n),
              total_ms * 5.0);  // a full radix sort costs ~5x (Table 3)
  return result_kth == kth_value ? 0 : 1;
}
