// The application that motivated the paper (Section 1 / footnote 1):
// delta-stepping single-source shortest paths, whose per-iteration bucket
// reorganization was 82% of Davidson et al.'s runtime when done with a
// sort.  This example runs SSSP on an R-MAT graph with all four bucketing
// backends and validates against serial Dijkstra.
//
//   $ ./sssp_delta_stepping
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/sssp.hpp"

using namespace ms;
using namespace ms::graph;

int main() {
  // A Graph500-style R-MAT graph: skewed degrees, low diameter.
  GenConfig gc;
  gc.max_weight = 1000;
  const Csr g = rmat(/*scale=*/13, /*edges=*/80000, gc);
  std::printf("graph: R-MAT, %u vertices, %llu edges\n", g.num_vertices,
              static_cast<unsigned long long>(g.num_edges()));

  const auto reference = dijkstra(g, 0);
  std::printf("serial Dijkstra reference: max finite distance = %u\n\n",
              max_finite_distance(reference));

  for (const auto strategy :
       {BucketingStrategy::kRadixSort, BucketingStrategy::kNearFar,
        BucketingStrategy::kMultisplit2, BucketingStrategy::kMultisplit10}) {
    sim::Device dev;
    SsspConfig cfg;
    cfg.strategy = strategy;
    const auto r = sssp_delta_stepping(dev, g, /*source=*/0, cfg);
    const bool ok = (r.dist == reference);
    std::printf(
        "%-26s %9.3f ms | reorg %6.3f ms (%4.1f%%) | expand %6.3f ms | "
        "%4u rounds | %s\n",
        to_string(strategy).c_str(), r.total_ms, r.reorg_ms,
        100.0 * r.reorg_ms / r.total_ms, r.expand_ms, r.rounds,
        ok ? "distances match Dijkstra" : "WRONG DISTANCES");
    if (!ok) return 1;
  }
  std::printf(
      "\nThe multisplit backends spend far less of the run reorganizing the\n"
      "candidate pool -- exactly the bottleneck the paper was written to\n"
      "remove (footnote 1: 1.3x over Near-Far, 2.1x over sort bucketing).\n");
  return 0;
}
