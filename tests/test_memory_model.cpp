// The memory model is what makes the reproduction meaningful: these tests
// pin down the coalescing accounting (issue replays per lane-order run /
// 128 B line), the 32 B DRAM sector accounting through the L2 model, L2
// write combining, bank-conflict counting, and the bookkeeping around
// kernel brackets.
#include <gtest/gtest.h>

#include "sim/sim.hpp"

namespace ms::sim {
namespace {

class MemoryModelTest : public ::testing::Test {
 protected:
  Device dev;

  KernelEvents run(const std::function<void(Warp&)>& f) {
    launch_warps(dev, "probe", 1, [&](Warp& w, u64) { f(w); });
    return dev.records().back().events;
  }
};

TEST_F(MemoryModelTest, CoalescedLoadIsOneLineFourSectors) {
  DeviceBuffer<u32> buf(dev, 1024);
  const auto ev = run([&](Warp& w) { w.load(buf, 0); });
  // 32 lanes x 4 B = 128 B: one issue slot, no replays, four 32 B sectors.
  EXPECT_EQ(ev.scatter_replays, 0u);
  EXPECT_EQ(ev.l2_read_segments, 4u);
  EXPECT_EQ(ev.useful_bytes_read, 128u);
}

TEST_F(MemoryModelTest, CoalescedU64LoadSpansTwoLines) {
  DeviceBuffer<u64> buf(dev, 1024);
  const auto ev = run([&](Warp& w) { w.load(buf, 0); });
  EXPECT_EQ(ev.scatter_replays, 1u);  // 256 B = 2 lines
  EXPECT_EQ(ev.l2_read_segments, 8u);
}

TEST_F(MemoryModelTest, StridedGatherTouchesOneLinePerLane) {
  DeviceBuffer<u32> buf(dev, 32 * 64);
  const auto ev = run([&](Warp& w) {
    LaneArray<u64> idx;
    for (u32 i = 0; i < kWarpSize; ++i) idx[i] = u64{i} * 64;  // 256 B stride
    w.gather(buf, idx);
  });
  EXPECT_EQ(ev.scatter_replays, 31u);  // 32 separate lines
  EXPECT_EQ(ev.l2_read_segments, 32u);
}

TEST_F(MemoryModelTest, InterleavedScatterPaysPerRunNotPerLine) {
  // Figure 2's coalescing model: lanes alternating between two distant
  // regions break into 32 single-element runs even though only a few
  // distinct lines are touched.
  DeviceBuffer<u32> buf(dev, 4096);
  const auto ev = run([&](Warp& w) {
    LaneArray<u64> idx;
    for (u32 i = 0; i < kWarpSize; ++i)
      idx[i] = (i % 2 == 0) ? (i / 2) : (2048 + i / 2);
    w.scatter(buf, idx, LaneArray<u32>::filled(1));
  });
  EXPECT_EQ(ev.scatter_replays, 31u);  // 32 runs of length 1
  // ...but the physical sectors are just 2 x 64 B regions.
  EXPECT_EQ(ev.l2_write_segments, 4u);
}

TEST_F(MemoryModelTest, ReorderedScatterCollapsesToTwoRuns) {
  // The same addresses in bucket-grouped lane order: 2 runs.
  DeviceBuffer<u32> buf(dev, 4096);
  const auto ev = run([&](Warp& w) {
    LaneArray<u64> idx;
    for (u32 i = 0; i < 16; ++i) idx[i] = i;
    for (u32 i = 16; i < 32; ++i) idx[i] = 2048 + (i - 16);
    w.scatter(buf, idx, LaneArray<u32>::filled(1));
  });
  EXPECT_EQ(ev.scatter_replays, 1u);  // 2 runs x 1 line each
  EXPECT_EQ(ev.l2_write_segments, 4u);
}

TEST_F(MemoryModelTest, L2CombinesRepeatedWritesToOneSector) {
  DeviceBuffer<u32> buf(dev, 64);
  launch_warps(dev, "wcombine", 1, [&](Warp& w, u64) {
    for (int rep = 0; rep < 10; ++rep)
      w.store(buf, 0, LaneArray<u32>::filled(rep));
  });
  const auto ev = dev.records().back().events;
  // 10 stores to the same 4 sectors: dirty lines flushed once at kernel end.
  EXPECT_EQ(ev.l2_write_segments, 40u);
  EXPECT_EQ(ev.dram_write_tx, 4u);
}

TEST_F(MemoryModelTest, StreamingReadMissesOncePerSector) {
  const u64 n = 32 * 1024;
  DeviceBuffer<u32> buf(dev, n);
  launch_warps(dev, "stream", n / kWarpSize,
               [&](Warp& w, u64 wid) { w.load(buf, wid * kWarpSize); });
  const auto ev = dev.records().back().events;
  EXPECT_EQ(ev.dram_read_tx, n * 4 / dev.profile().transaction_bytes);
}

TEST_F(MemoryModelTest, RereadWithinL2CapacityHits) {
  DeviceBuffer<u32> buf(dev, 1024);
  launch_warps(dev, "reread", 1, [&](Warp& w, u64) {
    w.load(buf, 0);
    w.load(buf, 0);
    w.load(buf, 0);
  });
  EXPECT_EQ(dev.records().back().events.dram_read_tx, 4u);  // only first trip
}

TEST_F(MemoryModelTest, OutOfBoundsAccessThrows) {
  DeviceBuffer<u32> buf(dev, 16);
  EXPECT_THROW(run([&](Warp& w) { w.load(buf, 0); }), std::logic_error);
  // A masked access inside bounds is fine.
  Device dev2;
  DeviceBuffer<u32> small(dev2, 16);
  launch_warps(dev2, "masked", 1,
               [&](Warp& w, u64) { w.load(small, 0, tail_mask(16)); });
  SUCCEED();
}

TEST_F(MemoryModelTest, AtomicAddReturnsOldAndCountsConflicts) {
  DeviceBuffer<u32> buf(dev, 8);
  buf.fill(0);
  launch_warps(dev, "atomics", 1, [&](Warp& w, u64) {
    // All 32 lanes add 1 to the same counter.
    const auto old = w.atomic_add(buf, LaneArray<u64>::filled(3),
                                  LaneArray<u32>::filled(1));
    // Serialized in lane order: lane i sees i.
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(old[i], i);
  });
  EXPECT_EQ(buf[3], 32u);
  const auto ev = dev.records().back().events;
  EXPECT_EQ(ev.atomic_ops, 32u);
  EXPECT_EQ(ev.atomic_conflicts, 31u);
}

TEST_F(MemoryModelTest, AtomicMinSettlesToMinimum) {
  DeviceBuffer<u32> buf(dev, 4);
  buf.fill(1000);
  launch_warps(dev, "atomic_min", 1, [&](Warp& w, u64) {
    w.atomic_min(buf, LaneArray<u64>::filled(2), LaneArray<u32>::iota(50));
  });
  EXPECT_EQ(buf[2], 50u);
  EXPECT_EQ(buf[0], 1000u);
}

TEST_F(MemoryModelTest, SharedMemoryBankConflicts) {
  launch_blocks(dev, "banks", 1, 1, [&](Block& blk) {
    auto arr = blk.shared<u32>(2048);
    Warp& w = blk.warp(0);
    const u64 before = dev.events().smem_slots;
    // Unit stride: conflict-free.
    w.smem_read(arr, LaneArray<u32>::iota());
    EXPECT_EQ(dev.events().smem_slots - before, 1u);
    // Stride 32: all lanes in bank 0 -> 32-way serialization.
    const auto strided = LaneArray<u32>::iota().map([](u32 i) { return i * 32; });
    w.smem_read(arr, strided);
    EXPECT_EQ(dev.events().smem_slots - before, 1u + 32u);
    // Broadcast (all lanes same word): free, one pass.
    w.smem_read(arr, LaneArray<u32>::filled(5));
    EXPECT_EQ(dev.events().smem_slots - before, 1u + 32u + 1u);
  });
}

TEST_F(MemoryModelTest, SharedMemoryOvercommitIsTracked) {
  launch_blocks(dev, "smem_over", 1, 1, [&](Block& blk) {
    blk.shared<u32>(1024);
    EXPECT_FALSE(blk.smem_overcommitted());
    blk.shared<u32>(64 * 1024);  // blow past 48 kB
    EXPECT_TRUE(blk.smem_overcommitted());
    EXPECT_GT(blk.peak_smem_bytes(), dev.profile().smem_bytes_per_block);
  });
}

TEST_F(MemoryModelTest, KernelBracketingIsEnforced) {
  EXPECT_THROW(dev.end_kernel(), std::logic_error);
  dev.begin_kernel("a");
  EXPECT_THROW(dev.begin_kernel("b"), std::logic_error);
  dev.end_kernel();
}

TEST_F(MemoryModelTest, DeviceFillAndCopyWork) {
  DeviceBuffer<u32> a(dev, 1000), b(dev, 1000);
  device_fill<u32>(dev, a, 42);
  for (u64 i = 0; i < 1000; ++i) ASSERT_EQ(a[i], 42u);
  for (u64 i = 0; i < 1000; ++i) a[i] = static_cast<u32>(i * 3);
  device_copy(dev, b, a);
  for (u64 i = 0; i < 1000; ++i) ASSERT_EQ(b[i], i * 3);
  DeviceBuffer<u32> c(dev, 100);
  device_copy_n(dev, c, 10, a, 500, 80);
  for (u64 i = 0; i < 80; ++i) ASSERT_EQ(c[10 + i], (500 + i) * 3);
}

TEST_F(MemoryModelTest, TimingSectionsSumKernels) {
  DeviceBuffer<u32> a(dev, 4096);
  const u64 m0 = dev.mark();
  device_fill<u32>(dev, a, 1);
  const u64 m1 = dev.mark();
  device_fill<u32>(dev, a, 2);
  const auto s0 = dev.summary_since(m0);
  const auto s1 = dev.summary_since(m1);
  EXPECT_EQ(s0.kernels, 2u);
  EXPECT_EQ(s1.kernels, 1u);
  EXPECT_NEAR(s0.total_ms, dev.total_ms(), 1e-12);
  EXPECT_GT(s0.total_ms, s1.total_ms);
}

}  // namespace
}  // namespace ms::sim
