// Request-span suite (the `span_suite` / `span_suite_mt4` ctest gates).
//
// Covers: the determinism contract (serial vs 4-worker span dumps are
// byte-identical for every campaign method AND for the seeded chaos
// campaign), span-tree integrity under fault injection (every span closed
// exactly once, children nested inside their parents, events only on
// faulted traces), the observe-only contract (recording spans changes no
// modeled cost bit), and the histogram exemplar rule (last traced request
// to land in a bucket owns its exemplar).
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "multisplit/chaos_campaign.hpp"
#include "multisplit/plan.hpp"
#include "multisplit_test_util.hpp"
#include "sim/span.hpp"
#include "sim/telemetry.hpp"

namespace ms::test {
namespace {

using split::ChaosCampaignConfig;
using split::ChaosCampaignReport;
using split::Method;
using split::MultisplitConfig;
using split::MultisplitPlan;
using split::RangeBucket;

constexpr Method kCampaignMethods[] = {
    Method::kWarpLevel, Method::kBlockLevel, Method::kReducedBitSort,
    Method::kRecursiveScanSplit};

std::vector<u32> make_keys(u64 n, u32 m, u64 seed) {
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = seed;
  return workload::generate_keys(n, wc);
}

/// One traced plan.run() on a fresh device; returns the span dump text.
std::string spans_of_run(Method method, u32 host_threads, u64 n = 1u << 12,
                         u32 m = 8) {
  sim::Device dev;
  dev.set_host_threads(host_threads);
  dev.enable_spans();
  const auto host = make_keys(n, m, 0xBEEF);
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = method;
  const MultisplitPlan plan(dev, n, m, cfg);
  (void)plan.run(in, out, RangeBucket{m});
  std::ostringstream os;
  sim::write_spans_jsonl(os, *dev.spans(), "test", dev.profile().name);
  return os.str();
}

// ------------------------------------------------ determinism

TEST(SpanDeterminism, SerialAndFourWorkerDumpsAreByteIdentical) {
  for (const Method method : kCampaignMethods) {
    const std::string serial = spans_of_run(method, 1);
    const std::string mt = spans_of_run(method, 4);
    EXPECT_EQ(serial, mt) << "method " << static_cast<int>(method);
  }
}

TEST(SpanDeterminism, ChaosCampaignDumpIsByteIdenticalAcrossSchedulers) {
  // The acceptance gate from the spans PR: a seeded fault-injection
  // campaign (retries, fallbacks, fault events and all) must serialize to
  // the same bytes at any MS_HOST_THREADS setting.
  ChaosCampaignConfig cfg;
  cfg.requests = 60;
  cfg.record_spans = true;

  const u32 saved = sim::default_host_threads();
  sim::set_default_host_threads(1);
  const ChaosCampaignReport serial = split::run_chaos_campaign(cfg);
  sim::set_default_host_threads(4);
  const ChaosCampaignReport mt = split::run_chaos_campaign(cfg);
  sim::set_default_host_threads(saved);

  ASSERT_FALSE(serial.spans_jsonl.empty());
  EXPECT_EQ(serial.spans_jsonl, mt.spans_jsonl);
}

// ------------------------------------------------ tree integrity

TEST(SpanTree, CampaignSpansNestAndCloseExactlyOnce) {
  ChaosCampaignConfig cfg;
  cfg.requests = 120;
  cfg.record_spans = false;  // drive the recorder directly instead

  // Re-run the campaign shape by hand so the recorder is inspectable:
  // resilient requests against an armed chaos engine.
  sim::Device dev;
  dev.enable_chaos(cfg.chaos);
  sim::SpanRecorder& rec = dev.enable_spans();
  const u64 n = u64{1} << cfg.log2_n;
  sim::DeviceBuffer<u32> in(dev, n, "in"), out(dev, n, "out");
  dev.chaos()->protect_buffer(in.base_address());
  std::vector<MultisplitPlan> plans;
  for (const Method m : cfg.methods) {
    MultisplitConfig mc;
    mc.method = m;
    plans.emplace_back(dev, n, cfg.m, mc);
  }
  u32 faulted_requests = 0;
  for (u32 req = 0; req < cfg.requests; ++req) {
    const auto host = make_keys(n, cfg.m, cfg.seed ^ req);
    std::copy(host.begin(), host.end(), in.host().begin());
    try {
      const auto r = plans[req % plans.size()].run(in, out,
                                                   RangeBucket{cfg.m},
                                                   cfg.retry);
      if (r.resilience.attempts > 1) ++faulted_requests;
    } catch (const sim::SimError&) {
      (void)dev.take_last_error();
      ++faulted_requests;
    }
  }
  ASSERT_GT(faulted_requests, 0u) << "campaign injected nothing; the "
                                     "integrity assertions below are vacuous";

  ASSERT_EQ(rec.open_depth(), 0u);
  ASSERT_EQ(rec.trace_count(), cfg.requests);
  const auto& spans = rec.spans();
  u32 events_total = 0;
  for (const sim::SpanRecord& s : spans) {
    // Closed exactly once (end() enforces single-close; open spans at dump
    // time would mean a leaked scope).
    EXPECT_TRUE(s.closed) << "span " << s.span_id << " never closed";
    EXPECT_LE(s.begin_ms, s.end_ms);
    if (s.parent_id != 0) {
      ASSERT_LT(s.parent_id, s.span_id);
      const sim::SpanRecord& p = spans[s.parent_id - 1];
      // Children begin and end inside their parents and share the trace.
      EXPECT_GE(s.begin_ms, p.begin_ms);
      EXPECT_LE(s.end_ms, p.end_ms);
      EXPECT_EQ(s.trace_id, p.trace_id);
      EXPECT_NE(p.kind, sim::SpanKind::kLaunch);
    } else {
      EXPECT_EQ(s.kind, sim::SpanKind::kRequest);
    }
    events_total += static_cast<u32>(s.events.size());
    for (const sim::SpanEvent& ev : s.events) {
      EXPECT_GE(ev.t_ms, s.begin_ms);
      EXPECT_LE(ev.t_ms, s.end_ms);
    }
  }
  EXPECT_GT(events_total, 0u) << "faulted campaign recorded no span events";
}

// ------------------------------------------------ observe-only contract

TEST(SpanOverhead, RecordingChangesNoModeledBit) {
  auto run = [](bool spans) {
    sim::Device dev;
    if (spans) dev.enable_spans();
    const u64 n = 1u << 13;
    const u32 m = 16;
    const auto host = make_keys(n, m, 0xD00D);
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kBlockLevel;
    const MultisplitPlan plan(dev, n, m, cfg);
    const auto r = plan.run(in, out, RangeBucket{m});
    return std::pair<f64, u64>{r.total_ms(), dev.lifetime_launches()};
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.first, on.first);  // bit-identical, not approximately
  EXPECT_EQ(off.second, on.second);
}

// ------------------------------------------------ exemplars

TEST(SpanExemplar, LastTracedRequestInBucketOwnsTheExemplar) {
  sim::LatencyHistogram h;
  // Two traced samples in the same bucket: last write wins.  A third in a
  // far bucket owns that bucket's exemplar alone.
  h.record_ms(1.0, 7);
  h.record_ms(1.0, 9);
  h.record_ms(1000.0, 42);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.percentile_exemplar(50.0), 9u);
  EXPECT_EQ(snap.percentile_exemplar(99.9), 42u);

  // Untraced samples (trace 0) never claim an exemplar slot.
  sim::LatencyHistogram quiet;
  quiet.record_ms(1.0);
  EXPECT_EQ(quiet.snapshot().percentile_exemplar(50.0), 0u);
}

TEST(SpanExemplar, RequestHistogramLinksToSpanDump) {
  // The cross-subsystem contract behind the EXPERIMENTS.md walkthrough:
  // the request.modeled_ms exemplar names a trace id that exists in the
  // span dump produced by the same run.
  sim::Device dev;
  dev.enable_telemetry();
  sim::SpanRecorder& rec = dev.enable_spans();
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 0xF00D);
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kWarpLevel;
  const MultisplitPlan plan(dev, n, m, cfg);
  for (int i = 0; i < 3; ++i) (void)plan.run(in, out, RangeBucket{m});

  const auto snap = dev.telemetry()->histogram("request.modeled_ms")
                        .snapshot();
  const u64 exemplar = snap.percentile_exemplar(50.0);
  ASSERT_NE(exemplar, 0u);
  EXPECT_LE(exemplar, rec.trace_count());
  bool found = false;
  for (const sim::SpanRecord& s : rec.spans()) {
    if (s.kind == sim::SpanKind::kRequest && s.trace_id == exemplar)
      found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ms::test
