// The size-bucketed caching sub-allocator behind Device address-range
// allocation: LIFO reuse per rounded size class, bounded address space
// under alloc/free churn, exact legacy bump behavior with pooling off,
// stats accounting, and the sanitizer interaction (a recycled range gets a
// fresh initcheck shadow, so stale reads through a new buffer still fire).
#include <gtest/gtest.h>

#include "sim/allocator.hpp"
#include "sim/sim.hpp"

namespace ms::sim {
namespace {

TEST(CachingAllocator, ReusesFreedRangeLifo) {
  CachingAllocator a(32);
  const u64 x = a.allocate(100);  // rounds to 128
  const u64 y = a.allocate(100);
  EXPECT_NE(x, y);
  a.deallocate(x, 100);
  a.deallocate(y, 100);
  // LIFO: the most recently freed range comes back first.
  EXPECT_EQ(a.allocate(100), y);
  EXPECT_EQ(a.allocate(100), x);
  EXPECT_EQ(a.stats().reuse_hits, 2u);
}

TEST(CachingAllocator, SizeClassesAreExactRoundedSizes) {
  CachingAllocator a(32);
  const u64 x = a.allocate(100);  // class 128
  a.deallocate(x, 100);
  // 129 B rounds to 160: different class, must NOT steal the 128 B range
  // (a larger-block match would shift addresses vs the legacy bump pass).
  const u64 y = a.allocate(129);
  EXPECT_NE(x, y);
  // 97 B rounds to 128: same class, exact reuse.
  EXPECT_EQ(a.allocate(97), x);
}

TEST(CachingAllocator, ChurnKeepsAddressSpaceBounded) {
  // The DeviceBuffer-destructor satellite: 10k alloc/free cycles through a
  // real Device must not grow the reserved address space past the high
  // water mark of one live buffer per size class.
  Device dev;
  const u64 kCycles = 10'000;
  u64 after_first = 0;
  for (u64 i = 0; i < kCycles; ++i) {
    DeviceBuffer<u32> buf(dev, 1024);
    DeviceBuffer<u32> small(dev, 17);
    if (i == 0) after_first = dev.allocator().reserved_bytes();
  }
  EXPECT_EQ(dev.allocator().reserved_bytes(), after_first);
  EXPECT_EQ(dev.allocator().stats().reuse_hits, 2 * (kCycles - 1));
  EXPECT_EQ(dev.allocator().stats().bytes_live, 0u);
}

TEST(CachingAllocator, PoolingOffMatchesLegacyBump) {
  // With pooling off the allocator is the pre-pool bump allocator: every
  // allocation advances the high-water mark by the rounded size, frees are
  // accounting-only.
  CachingAllocator a(32);
  a.set_pooling(false);
  const u64 x = a.allocate(100);
  a.deallocate(x, 100);
  const u64 y = a.allocate(100);
  EXPECT_EQ(y, x + 128);
  EXPECT_EQ(a.stats().reuse_hits, 0u);
  EXPECT_EQ(a.reserved_bytes(), 256u);
}

TEST(CachingAllocator, PooledFirstPassIsBumpIdentical) {
  // The bit-identity cornerstone: a sequence of allocations with no
  // intervening frees (a single-shot multisplit call on a fresh device)
  // must land at the same addresses pooled or not.
  CachingAllocator pooled(32), bump(32);
  bump.set_pooling(false);
  const u64 sizes[] = {4096, 132, 1, 64, 7777, 32};
  for (const u64 s : sizes) EXPECT_EQ(pooled.allocate(s), bump.allocate(s));
  EXPECT_EQ(pooled.reserved_bytes(), bump.reserved_bytes());
}

TEST(CachingAllocator, StatsAccounting) {
  CachingAllocator a(32);
  const u64 x = a.allocate(100);  // 128 reserved
  const u64 y = a.allocate(200);  // 224 reserved
  a.deallocate(x, 100);
  const auto& s1 = a.stats();
  EXPECT_EQ(s1.alloc_count, 2u);
  EXPECT_EQ(s1.free_count, 1u);
  EXPECT_EQ(s1.bytes_requested, 128u + 224u);  // rounded sizes
  EXPECT_EQ(s1.bytes_reserved, 128u + 224u);
  EXPECT_EQ(s1.bytes_cached, 128u);
  EXPECT_EQ(s1.bytes_live, 224u);
  EXPECT_EQ(a.allocate(128), x);
  const auto& s2 = a.stats();
  EXPECT_EQ(s2.reuse_hits, 1u);
  EXPECT_EQ(s2.bytes_reused, 128u);
  EXPECT_EQ(s2.bytes_cached, 0u);
  a.deallocate(y, 200);
  a.trim();
  EXPECT_EQ(a.stats().bytes_cached, 0u);
  // Trim drops the free lists but not the reserved high-water mark.
  EXPECT_EQ(a.reserved_bytes(), 128u + 224u);
}

TEST(CachingAllocator, DoubleFreeStyleUnderflowThrows) {
  CachingAllocator a(32);
  const u64 x = a.allocate(64);
  a.deallocate(x, 64);
  EXPECT_THROW(a.deallocate(x, 64), std::logic_error);
}

TEST(CachingAllocator, ZeroByteAllocationsGetDistinctAddresses) {
  // DeviceBuffers of size 0 exist (empty inputs); they must not alias.
  CachingAllocator a(32);
  EXPECT_NE(a.allocate(0), a.allocate(0));
}

TEST(CachingAllocator, RecycledRangeGetsFreshInitcheckShadow) {
  // The sanitizer-interaction satellite: buffer A is fully written, freed,
  // and its range recycled into buffer B.  B's reads before any write must
  // still be uninitialized-read faults -- A's valid bits must not leak
  // through the pool.
  Device dev;
  SanitizerConfig cfg;
  cfg.initcheck = true;
  dev.sanitizer().configure(cfg);

  u64 recycled_base = 0;
  {
    DeviceBuffer<u32> a(dev, 64, "pool.a");
    a.fill(7);  // every element initialized
    recycled_base = a.base_address();
    launch_warps(dev, "read_a", 1, [&](Warp& w, u64) { w.load(a, 0); });
    EXPECT_EQ(dev.sanitizer().error_count(), 0u);
  }
  DeviceBuffer<u32> b(dev, 64, "pool.b");
  ASSERT_EQ(b.base_address(), recycled_base);  // really the same range
  launch_warps(dev, "read_b", 1, [&](Warp& w, u64) { w.load(b, 0); });
  EXPECT_EQ(dev.sanitizer().error_count(), 32u);  // one per stale lane
  ASSERT_FALSE(dev.sanitizer().reports().empty());
  EXPECT_EQ(dev.sanitizer().reports().front().kind,
            FaultKind::kUninitGlobalRead);
}

TEST(CachingAllocator, DeviceReportsAllocatorStats) {
  // The pool's stats surface through metrics reports (schema v4).
  Device dev;
  { DeviceBuffer<u32> tmp(dev, 256); }
  { DeviceBuffer<u32> tmp(dev, 256); }
  const MetricsReport rep = analyze_device(dev);
  EXPECT_EQ(rep.allocator.alloc_count, 2u);
  EXPECT_EQ(rep.allocator.free_count, 2u);
  EXPECT_EQ(rep.allocator.reuse_hits, 1u);
  EXPECT_EQ(rep.allocator.bytes_live, 0u);
}

TEST(CachingAllocator, MovedFromBufferDoesNotDoubleFree) {
  Device dev;
  DeviceBuffer<u32> a(dev, 128);
  const u64 base = a.base_address();
  DeviceBuffer<u32> b(std::move(a));
  EXPECT_EQ(b.base_address(), base);
  // a's destructor is a no-op; only b returns the range.  The churn stats
  // prove exactly one free happened once both are gone.
  b = DeviceBuffer<u32>();
  EXPECT_EQ(dev.allocator().stats().free_count, 1u);
  EXPECT_EQ(dev.allocator().stats().bytes_live, 0u);
}

}  // namespace
}  // namespace ms::sim
