// The radix sort baseline: correctness (vs std::sort), stability, partial
// bit ranges (the reduced-bit use case), value payload types, and tuning
// configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "primitives/radix_sort.hpp"

namespace ms::prim {
namespace {

using sim::Device;
using sim::DeviceBuffer;

class RadixSortTest : public ::testing::TestWithParam<u64> {};

TEST_P(RadixSortTest, KeysMatchStdSort) {
  const u64 n = GetParam();
  Device dev;
  std::mt19937 rng(static_cast<u32>(n));
  DeviceBuffer<u32> keys(dev, n);
  std::vector<u32> ref(n);
  for (u64 i = 0; i < n; ++i) ref[i] = keys[i] = rng();

  sort_keys(dev, keys);
  std::sort(ref.begin(), ref.end());
  for (u64 i = 0; i < n; ++i) ASSERT_EQ(keys[i], ref[i]) << "index " << i;
}

TEST_P(RadixSortTest, PairsAreStable) {
  const u64 n = GetParam();
  Device dev;
  std::mt19937 rng(static_cast<u32>(n) + 5);
  DeviceBuffer<u32> keys(dev, n), vals(dev, n);
  // Few distinct keys force many ties; values record original positions.
  for (u64 i = 0; i < n; ++i) {
    keys[i] = rng() % 50;
    vals[i] = static_cast<u32>(i);
  }
  std::vector<u32> ref_keys(keys.host().begin(), keys.host().end());

  sort_pairs<u32>(dev, keys, vals);

  std::vector<u32> sorted = ref_keys;
  std::stable_sort(sorted.begin(), sorted.end());
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], sorted[i]);
    ASSERT_EQ(ref_keys[vals[i]], keys[i]) << "value does not follow its key";
    if (i > 0 && keys[i - 1] == keys[i]) {
      ASSERT_LT(vals[i - 1], vals[i]) << "stability violated at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortTest,
                         ::testing::Values(1ull, 2ull, 32ull, 1000ull,
                                           2048ull, 2049ull, 50000ull,
                                           100001ull));

TEST(RadixSortBits, PartialBitRangeSortsOnlyThoseBits) {
  Device dev;
  const u64 n = 10000;
  std::mt19937 rng(7);
  DeviceBuffer<u32> keys(dev, n), vals(dev, n);
  for (u64 i = 0; i < n; ++i) {
    keys[i] = rng();
    vals[i] = static_cast<u32>(i);
  }
  std::vector<u32> ref(keys.host().begin(), keys.host().end());

  // Sort by bits [0, 4) only: a 1-pass stable counting sort on the low
  // nibble -- the reduced-bit sort's workhorse.
  sort_pairs<u32>(dev, keys, vals, 0, 4);
  for (u64 i = 1; i < n; ++i) {
    ASSERT_LE(keys[i - 1] & 0xF, keys[i] & 0xF) << "index " << i;
  }
  // Stability within equal nibbles.
  for (u64 i = 1; i < n; ++i) {
    if ((keys[i - 1] & 0xF) == (keys[i] & 0xF))
      ASSERT_LT(vals[i - 1], vals[i]);
  }
  for (u64 i = 0; i < n; ++i) ASSERT_EQ(keys[i], ref[vals[i]]);
}

TEST(RadixSortBits, HighBitRange) {
  Device dev;
  const u64 n = 5000;
  std::mt19937 rng(8);
  DeviceBuffer<u32> keys(dev, n);
  for (u64 i = 0; i < n; ++i) keys[i] = rng();
  sort_keys(dev, keys, 24, 32);
  for (u64 i = 1; i < n; ++i) ASSERT_LE(keys[i - 1] >> 24, keys[i] >> 24);
}

TEST(RadixSortValues, U64PayloadSurvives) {
  // The reduced-bit key-value path packs (key,value) into u64 payloads.
  Device dev;
  const u64 n = 20000;
  std::mt19937_64 rng(9);
  DeviceBuffer<u32> keys(dev, n);
  DeviceBuffer<u64> vals(dev, n);
  std::vector<std::pair<u32, u64>> ref(n);
  for (u64 i = 0; i < n; ++i) {
    keys[i] = static_cast<u32>(rng()) % 256;
    vals[i] = rng();
    ref[i] = {keys[i], vals[i]};
  }
  sort_pairs<u64>(dev, keys, vals, 0, 8);
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], ref[i].first);
    ASSERT_EQ(vals[i], ref[i].second);
  }
}

TEST(RadixSortConfigs, NonDefaultTuningsStillSort) {
  const u64 n = 30000;
  for (const u32 bits : {1u, 2u, 3u, 4u, 5u}) {
    for (const u32 ipt : {2u, 8u}) {
      Device dev;
      std::mt19937 rng(bits * 10 + ipt);
      DeviceBuffer<u32> keys(dev, n);
      std::vector<u32> ref(n);
      for (u64 i = 0; i < n; ++i) ref[i] = keys[i] = rng();
      RadixSortConfig cfg;
      cfg.bits_per_pass = bits;
      cfg.items_per_thread = ipt;
      sort_keys(dev, keys, 0, 32, cfg);
      std::sort(ref.begin(), ref.end());
      for (u64 i = 0; i < n; ++i)
        ASSERT_EQ(keys[i], ref[i]) << "bits=" << bits << " ipt=" << ipt;
    }
  }
}

TEST(RadixSortConfigs, RejectsBadConfigs) {
  Device dev;
  DeviceBuffer<u32> keys(dev, 100);
  RadixSortConfig cfg;
  cfg.bits_per_pass = 6;
  EXPECT_THROW(sort_keys(dev, keys, 0, 32, cfg), std::logic_error);
  EXPECT_THROW(sort_keys(dev, keys, 8, 8), std::logic_error);
  EXPECT_THROW(sort_keys(dev, keys, 0, 33), std::logic_error);
}

TEST(RadixSortCost, MoreBitsPerPassMeansFewerPasses) {
  const u64 n = 1u << 16;
  f64 t_small_digits, t_large_digits;
  {
    Device dev;
    DeviceBuffer<u32> keys(dev, n);
    std::mt19937 rng(1);
    for (u64 i = 0; i < n; ++i) keys[i] = rng();
    dev.clear_records();
    RadixSortConfig cfg;
    cfg.bits_per_pass = 1;
    sort_keys(dev, keys, 0, 32, cfg);
    t_small_digits = dev.total_ms();
  }
  {
    Device dev;
    DeviceBuffer<u32> keys(dev, n);
    std::mt19937 rng(1);
    for (u64 i = 0; i < n; ++i) keys[i] = rng();
    dev.clear_records();
    RadixSortConfig cfg;
    cfg.bits_per_pass = 5;
    sort_keys(dev, keys, 0, 32, cfg);
    t_large_digits = dev.total_ms();
  }
  EXPECT_GT(t_small_digits, 2.0 * t_large_digits);
}

}  // namespace
}  // namespace ms::prim
