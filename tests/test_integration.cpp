// Cross-module integration: pipelines that compose multisplit with the
// other primitives the way the example applications do, plus whole-stack
// consistency checks across methods.
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"
#include "primitives/compact.hpp"
#include "primitives/histogram.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;

TEST(Integration, AllStableMethodsProduceIdenticalOutput) {
  // Stability pins the output uniquely: every stable method must produce
  // the exact same permutation, not merely a valid one.
  const u64 n = 50000;
  const u32 m = 16;
  workload::WorkloadConfig wc;
  wc.m = m;
  const auto host = workload::generate_keys(n, wc);

  std::vector<u32> reference;
  for (const Method meth :
       {Method::kDirect, Method::kWarpLevel, Method::kBlockLevel,
        Method::kRecursiveScanSplit, Method::kReducedBitSort,
        Method::kFusedBucketSort}) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg);
    const auto got = buffer_to_vector(out);
    if (reference.empty()) {
      reference = got;
    } else {
      ASSERT_EQ(got, reference) << to_string(meth)
                                << " disagrees with the stable reference";
    }
  }
}

TEST(Integration, MultisplitIsIdempotentOnItsOwnOutput) {
  const u64 n = 30000;
  const u32 m = 8;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> a(dev, std::span<const u32>(host)), b(dev, n),
      c(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  split::multisplit_keys(dev, a, b, m, RangeBucket{m}, cfg);
  split::multisplit_keys(dev, b, c, m, RangeBucket{m}, cfg);
  EXPECT_EQ(buffer_to_vector(b), buffer_to_vector(c));
}

TEST(Integration, OffsetsAgreeWithHistogramPrimitive) {
  const u64 n = 40000;
  const u32 m = 13;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.dist = workload::Distribution::kBinomial;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  sim::DeviceBuffer<u32> hist(dev, m);
  prim::histogram_block_local(dev, in, hist, m, RangeBucket{m});
  MultisplitConfig cfg;
  cfg.method = Method::kWarpLevel;
  const auto r = split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg);
  for (u32 b = 0; b < m; ++b) {
    ASSERT_EQ(r.bucket_offsets[b + 1] - r.bucket_offsets[b], hist[b])
        << "bucket " << b;
  }
}

TEST(Integration, BucketThenCompactOneBucket) {
  // The "extract one bin" pattern: multisplit, then compact a single
  // bucket's range out by predicate -- both ways must agree.
  const u64 n = 20000;
  const u32 m = 8;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n),
      picked(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  const auto r = split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg);

  const u32 want_bucket = 3;
  const u64 kept = prim::compact<u32>(dev, in, picked, [&](u32 k) {
    return RangeBucket{m}(k) == want_bucket;
  });
  ASSERT_EQ(kept, r.bucket_offsets[want_bucket + 1] -
                      r.bucket_offsets[want_bucket]);
  // Stability makes the two extraction orders identical.
  for (u64 i = 0; i < kept; ++i) {
    ASSERT_EQ(picked[i], out[r.bucket_offsets[want_bucket] + i]);
  }
}

TEST(Integration, ChainedSplitsRefineLikeOneBigSplit) {
  // Splitting by the high bit and then each half by the next bit must
  // equal a single 4-bucket multisplit (stability composes).
  const u64 n = 16000;
  workload::WorkloadConfig wc;
  wc.seed = 77;
  const auto host = workload::generate_keys(n, wc);
  const RangeBucket four{4};

  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), direct4(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  split::multisplit_keys(dev, in, direct4, 4, four, cfg);

  // Chain: 2-way split, then split each half in place via sub-buffers.
  sim::DeviceBuffer<u32> half(dev, n), chained(dev, n);
  const auto r2 = split::multisplit_keys(
      dev, in, half, 2, [](u32 k) { return k >> 31; }, cfg);
  const u32 cut = r2.bucket_offsets[1];
  for (int side = 0; side < 2; ++side) {
    const u32 lo = side == 0 ? 0 : cut;
    const u32 hi = side == 0 ? cut : static_cast<u32>(n);
    if (lo == hi) continue;
    sim::DeviceBuffer<u32> part_in(dev, hi - lo), part_out(dev, hi - lo);
    for (u32 i = lo; i < hi; ++i) part_in[i - lo] = half[i];
    split::multisplit_keys(dev, part_in, part_out, 2,
                           [](u32 k) { return (k >> 30) & 1u; }, cfg);
    for (u32 i = lo; i < hi; ++i) chained[i] = part_out[i - lo];
  }
  EXPECT_EQ(buffer_to_vector(chained), buffer_to_vector(direct4));
}

TEST(Integration, SameSeedSameResultAcrossDevices) {
  // Device profiles change costs, never results.
  const u64 n = 20000;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  std::vector<u32> outs[2];
  int i = 0;
  for (const auto prof : {sim::DeviceProfile::tesla_k40c(),
                          sim::DeviceProfile::gtx_750_ti()}) {
    sim::Device dev(prof);
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kBlockLevel;
    split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
    outs[i++] = buffer_to_vector(out);
  }
  EXPECT_EQ(outs[0], outs[1]);
}

}  // namespace
}  // namespace ms::test
