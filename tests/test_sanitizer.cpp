// Sanitizer subsystem tests: every tool gets a positive case (the
// fault-injection kernels from sim/faultinject.hpp must be detected, with
// full kernel/warp/lane context) and a negative case (clean code must
// produce zero reports), plus the structured-fault plumbing itself:
// SimError context round-trips through a std::logic_error catch, faults
// park in Device::last_error(), fail_fast promotes reports to errors, and
// arming the sanitizer never changes modeled costs.
#include <gtest/gtest.h>

#include <limits>

#include "multisplit_test_util.hpp"
#include "sim/faultinject.hpp"

namespace ms::test {
namespace {

using sim::FaultKind;
using sim::SanitizerConfig;
using sim::SimError;

SanitizerConfig memcheck_only() {
  SanitizerConfig cfg;
  cfg.memcheck = true;
  return cfg;
}

SanitizerConfig initcheck_only() {
  SanitizerConfig cfg;
  cfg.initcheck = true;
  return cfg;
}

SanitizerConfig racecheck_only() {
  SanitizerConfig cfg;
  cfg.racecheck = true;
  return cfg;
}

// ---------------------------------------------------------------- SimError

TEST(SimErrorTest, ContextSurvivesLogicErrorCatch) {
  sim::Device dev;  // sanitizer off: the OOB propagates to the caller
  try {
    sim::inject::oob_scatter(dev);
    FAIL() << "expected the injected OOB to throw";
  } catch (const std::logic_error& e) {
    const auto* se = dynamic_cast<const SimError*>(&e);
    ASSERT_NE(se, nullptr) << "SimError must be catchable as logic_error";
    EXPECT_EQ(se->context().kind, FaultKind::kGlobalOOB);
    EXPECT_EQ(se->context().kernel, "inject_oob_scatter");
    EXPECT_EQ(se->context().object, "inject::oob_scatter.buf");
    EXPECT_EQ(se->context().index, 64u);
    EXPECT_EQ(se->context().extent, 64u);
    EXPECT_EQ(se->context().lane, 31u);
    EXPECT_EQ(se->context().global_warp, 1u);
    EXPECT_NE(std::string(e.what()).find("memcheck"), std::string::npos);
  }
}

TEST(SimErrorTest, HostIndexingFaultsWithHostContext) {
  sim::Device dev;
  try {
    sim::inject::oob_host_index(dev, 16);
    FAIL() << "expected host-side OOB to throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().kind, FaultKind::kHostOOB);
    EXPECT_EQ(e.context().kernel, "<host>");
    EXPECT_EQ(e.context().index, 16u);
    EXPECT_EQ(e.context().extent, 16u);
  }
}

// ---------------------------------------------------------------- memcheck

TEST(Memcheck, DetectsOobScatterAndParksFault) {
  sim::Device dev;
  dev.sanitizer().configure(memcheck_only());
  // Reporting mode: the faulting launch is aborted and recorded, but the
  // caller is not unwound (cudaGetLastError idiom).
  EXPECT_NO_THROW(sim::inject::oob_scatter(dev));
  EXPECT_EQ(dev.sanitizer().error_count(), 1u);
  ASSERT_FALSE(dev.records().empty());
  EXPECT_TRUE(dev.records().back().faulted);

  const auto err = dev.take_last_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, FaultKind::kGlobalOOB);
  EXPECT_EQ(err->kernel, "inject_oob_scatter");
  EXPECT_EQ(err->index, 64u);
  EXPECT_EQ(err->lane, 31u);
  // take_last_error clears the sticky fault.
  EXPECT_FALSE(dev.take_last_error().has_value());

  // The device stays usable: a following clean launch succeeds.
  sim::DeviceBuffer<u32> ok(dev, 128, "ok");
  sim::device_fill(dev, ok, 3u);
  EXPECT_FALSE(dev.records().back().faulted);
}

TEST(Memcheck, DetectsSharedOob) {
  sim::Device dev;
  dev.sanitizer().configure(memcheck_only());
  EXPECT_NO_THROW(sim::inject::smem_oob(dev));
  const auto err = dev.take_last_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, FaultKind::kSharedOOB);
  EXPECT_EQ(err->kernel, "inject_smem_oob");
  EXPECT_EQ(err->object, "inject::smem_oob.tile");
  EXPECT_EQ(err->index, 32u);
  EXPECT_EQ(err->extent, 32u);
  EXPECT_EQ(err->lane, 31u);
}

TEST(Memcheck, CleanKernelProducesNoReports) {
  sim::Device dev;
  dev.sanitizer().configure(memcheck_only());
  sim::DeviceBuffer<u32> buf(dev, 1000, "buf");
  sim::device_fill(dev, buf, 7u);
  sim::DeviceBuffer<u32> dst(dev, 1000, "dst");
  sim::device_copy(dev, dst, buf);
  EXPECT_EQ(dev.sanitizer().error_count(), 0u);
  EXPECT_EQ(dev.sanitizer().warning_count(), 0u);
  EXPECT_FALSE(dev.last_error().has_value());
}

// ---------------------------------------------------------------- initcheck

TEST(Initcheck, DetectsUninitializedGlobalRead) {
  sim::Device dev;
  dev.sanitizer().configure(initcheck_only());
  // Non-fatal: the kernel runs to completion reading garbage.
  EXPECT_NO_THROW(sim::inject::uninit_global_read(dev, 64));
  EXPECT_EQ(dev.sanitizer().error_count(), 64u);  // one per stale element
  ASSERT_FALSE(dev.sanitizer().reports().empty());
  const auto& r = dev.sanitizer().reports().front();
  EXPECT_EQ(r.kind, FaultKind::kUninitGlobalRead);
  EXPECT_EQ(r.kernel, "inject_uninit_global");
  EXPECT_EQ(r.object, "inject::uninit.staging");
  EXPECT_FALSE(dev.records().back().faulted);  // ran to completion
}

TEST(Initcheck, DetectsUninitializedSharedRead) {
  sim::Device dev;
  dev.sanitizer().configure(initcheck_only());
  EXPECT_NO_THROW(sim::inject::uninit_smem_read(dev));
  // The injector writes only the 16 even words of a 32-word tile.
  EXPECT_EQ(dev.sanitizer().error_count(), 16u);
  const auto& r = dev.sanitizer().reports().front();
  EXPECT_EQ(r.kind, FaultKind::kUninitSharedRead);
  EXPECT_EQ(r.kernel, "inject_uninit_smem");
  EXPECT_EQ(r.object, "inject::uninit.tile");
  EXPECT_EQ(r.index, 1u);  // first odd element
}

TEST(Initcheck, HostInitializationIsTracked) {
  sim::Device dev;
  dev.sanitizer().configure(initcheck_only());
  // fill(), the span constructor, operator[] and host() all count as
  // initialization; reading any of them back is clean.
  sim::DeviceBuffer<u32> a(dev, 64, "a");
  a.fill(1);
  const std::vector<u32> init(64, 2);
  sim::DeviceBuffer<u32> b(dev, std::span<const u32>(init), "b");
  sim::DeviceBuffer<u32> c(dev, 64, "c");
  for (u64 i = 0; i < 64; ++i) c[i] = static_cast<u32>(i);
  sim::DeviceBuffer<u32> sink(dev, 64, "sink");
  for (auto* src : {&a, &b, &c}) sim::device_copy(dev, sink, *src);
  EXPECT_EQ(dev.sanitizer().error_count(), 0u);
}

// ---------------------------------------------------------------- racecheck

TEST(Racecheck, DetectsSkippedBarrier) {
  sim::Device dev;
  dev.sanitizer().configure(racecheck_only());
  // The simulator executes warps sequentially, so the racy kernel still
  // "works"; only racecheck surfaces the missing barrier.
  EXPECT_NO_THROW(sim::inject::skipped_barrier(dev));
  EXPECT_GE(dev.sanitizer().error_count(), 1u);
  const auto& r = dev.sanitizer().reports().front();
  EXPECT_EQ(r.kind, FaultKind::kRaceHazard);
  EXPECT_EQ(r.kernel, "inject_skipped_barrier");
  EXPECT_EQ(r.object, "inject::race.tile");
  EXPECT_EQ(r.warp_in_block, 1u);  // the reading warp
  EXPECT_NE(r.detail.find("RAW"), std::string::npos);
  EXPECT_NE(r.detail.find("warp 0"), std::string::npos);
}

TEST(Racecheck, BarrierSeparatedAccessIsClean) {
  sim::Device dev;
  dev.sanitizer().configure(racecheck_only());
  sim::launch_blocks(dev, "with_barrier", 1, 2, [&](sim::Block& blk) {
    auto tile = blk.shared<u32>(kWarpSize, "tile");
    blk.warp(0).smem_write(tile, sim::Warp::lane_id(),
                           LaneArray<u32>::filled(42u));
    blk.sync();
    blk.warp(1).smem_read(tile, sim::Warp::lane_id());
  });
  EXPECT_EQ(dev.sanitizer().error_count(), 0u);
}

TEST(Racecheck, WarpSerializedAnnotationSuppressesHazard) {
  sim::Device dev;
  dev.sanitizer().configure(racecheck_only());
  // Same shape as the skipped-barrier injection, but the array carries the
  // benign-race annotation: cross-warp access within one epoch is declared
  // ordered by construction, so racecheck stays quiet.
  sim::launch_blocks(dev, "annotated_race", 1, 2, [&](sim::Block& blk) {
    auto tile = blk.shared<u32>(kWarpSize, "annotated.tile");
    tile.annotate_warp_serialized();
    blk.warp(0).smem_write(tile, sim::Warp::lane_id(),
                           LaneArray<u32>::filled(7u));
    blk.warp(1).smem_read(tile, sim::Warp::lane_id());
  });
  EXPECT_EQ(dev.sanitizer().error_count(), 0u);
}

TEST(Racecheck, WarpSerializedAnnotationKeepsInitcheck) {
  sim::Device dev;
  sim::SanitizerConfig cfg;
  cfg.racecheck = true;
  cfg.initcheck = true;
  dev.sanitizer().configure(cfg);
  // The annotation narrows only racecheck: a never-written read of an
  // annotated array is still an initcheck error.
  sim::launch_blocks(dev, "annotated_uninit", 1, 1, [&](sim::Block& blk) {
    auto tile = blk.shared<u32>(kWarpSize, "annotated.tile");
    tile.annotate_warp_serialized();
    blk.warp(0).smem_read(tile, sim::Warp::lane_id());
  });
  EXPECT_EQ(dev.sanitizer().error_count(), kWarpSize);
  EXPECT_EQ(dev.sanitizer().reports().front().kind,
            FaultKind::kUninitSharedRead);
}

TEST(Racecheck, CrossWarpAtomicsAreExempt) {
  sim::Device dev;
  dev.sanitizer().configure(racecheck_only());
  // Histogram idiom: several warps atomically bump the same bins within
  // one epoch -- ordered by the hardware, not a hazard.
  sim::launch_blocks(dev, "atomic_histogram", 1, 4, [&](sim::Block& blk) {
    auto bins = blk.shared<u32>(kWarpSize, "bins");
    blk.for_each_warp([&](sim::Warp& w) {
      w.smem_write(bins, sim::Warp::lane_id(), LaneArray<u32>::filled(0u),
                   w.warp_in_block() == 0 ? kFullMask : 0u);
    });
    blk.sync();
    blk.for_each_warp([&](sim::Warp& w) {
      w.smem_atomic_add(bins, sim::Warp::lane_id(),
                        LaneArray<u32>::filled(1u));
    });
  });
  EXPECT_EQ(dev.sanitizer().error_count(), 0u);
}

// -------------------------------------------------- fail_fast & overcommit

TEST(FailFast, PromotesReportsToThrow) {
  sim::Device dev;
  SanitizerConfig cfg = SanitizerConfig::all();
  cfg.fail_fast = true;
  dev.sanitizer().configure(cfg);
  // racecheck findings are non-fatal reports; fail_fast turns them into a
  // SimError at the end of the offending launch.
  EXPECT_THROW(sim::inject::skipped_barrier(dev), SimError);
  EXPECT_THROW(sim::inject::oob_scatter(dev), SimError);
}

TEST(Overcommit, ReportedAsWarningNamingTheKernel) {
  sim::Device dev;
  dev.sanitizer().configure(SanitizerConfig::all());
  EXPECT_NO_THROW(sim::inject::smem_overcommit(dev));
  EXPECT_EQ(dev.sanitizer().error_count(), 0u);  // warning, not error
  EXPECT_EQ(dev.sanitizer().warning_count(), 1u);
  const auto& r = dev.sanitizer().reports().front();
  EXPECT_EQ(r.kind, FaultKind::kSmemOvercommit);
  EXPECT_EQ(r.kernel, "inject_smem_overcommit");
  EXPECT_GT(r.index, r.extent);  // requested bytes vs capacity

  // A warning must not trip fail_fast.
  sim::Device strict;
  SanitizerConfig cfg = SanitizerConfig::all();
  cfg.fail_fast = true;
  strict.sanitizer().configure(cfg);
  EXPECT_NO_THROW(sim::inject::smem_overcommit(strict));
}

// ------------------------------------------------------ satellite guards

TEST(Guards, SharedArrayRawIsBoundsChecked) {
  sim::Device dev;
  FaultKind seen = FaultKind::kLaunchFailure;
  sim::launch_blocks(dev, "raw_oob", 1, 1, [&](sim::Block& blk) {
    auto t = blk.shared<u32>(8, "t");
    try {
      t.raw(8) = 1;
    } catch (const SimError& e) {
      seen = e.context().kind;
    }
  });
  EXPECT_EQ(seen, FaultKind::kSharedOOB);
}

TEST(Guards, BufferAllocationOverflowIsRejected) {
  sim::Device dev;
  EXPECT_THROW(
      sim::DeviceBuffer<u64>(dev, std::numeric_limits<u64>::max() / 4),
      std::logic_error);
}

TEST(Guards, TailMaskRejectsWrappedCount) {
  EXPECT_EQ(sim::tail_mask(0), 0u);
  EXPECT_EQ(sim::tail_mask(3), 0b111u);
  EXPECT_EQ(sim::tail_mask(32), kFullMask);
  EXPECT_EQ(sim::tail_mask(1000), kFullMask);
  // A count in the top half of the range means `n - base` wrapped.
  EXPECT_THROW(sim::tail_mask(u64{0} - 5), std::logic_error);
}

// ------------------------------------------------- clean multisplit runs

TEST(SanitizerCleanRun, MultisplitMethodsProduceNoReports) {
  const u64 n = 30000;
  const u32 m = 8;
  workload::WorkloadConfig wc;
  wc.m = m;
  const auto host = workload::generate_keys(n, wc);
  const split::Method methods[] = {
      split::Method::kDirect, split::Method::kWarpLevel,
      split::Method::kBlockLevel, split::Method::kScanSplit};
  for (const auto meth : methods) {
    const u32 buckets = meth == split::Method::kScanSplit ? 2 : m;
    sim::Device dev;
    dev.sanitizer().configure(SanitizerConfig::all());
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host), "in"),
        out(dev, n, "out");
    split::MultisplitConfig cfg;
    cfg.method = meth;
    const auto r = split::multisplit_keys(dev, in, out, buckets,
                                          split::RangeBucket{buckets}, cfg);
    EXPECT_EQ(dev.sanitizer().error_count(), 0u)
        << to_string(meth) << ":\n" << dev.sanitizer().format_reports();
    EXPECT_FALSE(dev.last_error().has_value()) << to_string(meth);
    expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets,
                            buckets, split::RangeBucket{buckets},
                            is_stable(meth));
  }
}

TEST(SanitizerCleanRun, ModeledCostsUnchangedBySanitizers) {
  const u64 n = 4096;
  workload::WorkloadConfig wc;
  wc.m = 8;
  const auto host = workload::generate_keys(n, wc);
  const auto run = [&](bool sanitize) {
    sim::Device dev;
    if (sanitize) dev.sanitizer().configure(SanitizerConfig::all());
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    split::MultisplitConfig cfg;
    cfg.method = split::Method::kWarpLevel;
    split::multisplit_keys(dev, in, out, 8, split::RangeBucket{8}, cfg);
    return dev.total_ms();
  };
  // The hooks never touch KernelEvents: bit-identical modeled time.
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace ms::test
