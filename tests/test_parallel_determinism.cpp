// Determinism contract of the parallel block scheduler: every modeled
// quantity -- event counters, per-site slices, L2/DRAM traffic, modeled
// times, the derived-metrics report -- must be bit-identical whether the
// simulator executes blocks serially (1 host thread) or concurrently
// (4 host threads), with and without the sanitizers armed.  Host
// wall-clock is the only thing allowed to change.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>

#include "multisplit/multisplit.hpp"
#include "primitives/histogram.hpp"
#include "sim/metrics.hpp"
#include "workload/distributions.hpp"

namespace ms::test {
namespace {

using split::Method;

void dump_events(std::ostream& os, const sim::KernelEvents& e) {
  os << e.issue_slots << ' ' << e.scatter_replays << ' ' << e.smem_slots
     << ' ' << e.dram_read_tx << ' ' << e.dram_write_tx << ' '
     << e.l2_read_segments << ' ' << e.l2_write_segments << ' '
     << e.useful_bytes_read << ' ' << e.useful_bytes_written << ' '
     << e.warps_launched << ' ' << e.blocks_launched << ' ' << e.barriers
     << ' ' << e.atomic_ops << ' ' << e.atomic_conflicts << ' '
     << e.simt_insts << ' ' << e.simt_active_lanes << ' ' << e.ballot_rounds
     << ' ' << e.smem_accesses;
}

/// Everything modeled, as one diffable string: the kernel log (names,
/// counters, per-site slices, exact modeled times), the device-lifetime
/// per-site totals, and the derived-metrics JSON report.
std::string snapshot(sim::Device& dev) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& r : dev.records()) {
    os << r.name << " t=" << r.time_ms << " mem=" << r.mem_time_ms
       << " issue=" << r.issue_time_ms << " smem=" << r.peak_smem_bytes
       << " faulted=" << r.faulted << "\n  ev ";
    dump_events(os, r.events);
    for (const auto& [site, slice] : r.sites) {
      os << "\n  site " << site << ": ";
      dump_events(os, slice);
    }
    os << "\n";
  }
  for (const auto& s : dev.site_stats()) {
    if (s.events == sim::KernelEvents{}) continue;
    os << s.label << ": ";
    dump_events(os, s.events);
    os << "\n";
  }
  std::ostringstream json;
  sim::JsonWriter w(json);
  w.begin_object();
  sim::write_metrics_json(w, sim::analyze_device(dev));
  w.end_object();
  os << json.str();
  return os.str();
}

struct RunResult {
  std::string snapshot;
  std::vector<u32> out;
  f64 total_ms = 0.0;
  u64 sanitizer_errors = 0;
  u64 sanitizer_warnings = 0;
};

RunResult run_multisplit(Method method, u32 host_threads, bool sanitize) {
  constexpr u64 n = u64{1} << 16;
  constexpr u32 m = 13;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = 0xD15C0 + static_cast<u32>(method);
  const auto host = workload::generate_keys(n, wc);

  sim::Device dev;
  dev.set_host_threads(host_threads);
  if (sanitize) dev.sanitizer().configure(sim::SanitizerConfig::all());
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host), "in"),
      out(dev, n, "out");
  split::MultisplitConfig cfg;
  cfg.method = method;
  const auto r =
      split::multisplit_keys(dev, in, out, m, split::RangeBucket{m}, cfg);

  RunResult res;
  res.snapshot = snapshot(dev);
  res.out.assign(out.host().begin(), out.host().end());
  res.total_ms = r.total_ms();
  res.sanitizer_errors = dev.sanitizer().error_count();
  res.sanitizer_warnings = dev.sanitizer().warning_count();
  return res;
}

class ParallelDeterminism : public ::testing::TestWithParam<Method> {};

TEST_P(ParallelDeterminism, SerialVsFourThreads) {
  const RunResult serial = run_multisplit(GetParam(), 1, /*sanitize=*/false);
  const RunResult mt = run_multisplit(GetParam(), 4, /*sanitize=*/false);
  EXPECT_EQ(serial.snapshot, mt.snapshot);
  EXPECT_EQ(serial.out, mt.out);
  EXPECT_EQ(serial.total_ms, mt.total_ms);  // bit-identical, not approx
}

TEST_P(ParallelDeterminism, SerialVsFourThreadsSanitized) {
  const RunResult serial = run_multisplit(GetParam(), 1, /*sanitize=*/true);
  const RunResult mt = run_multisplit(GetParam(), 4, /*sanitize=*/true);
  EXPECT_EQ(serial.snapshot, mt.snapshot);
  EXPECT_EQ(serial.out, mt.out);
  EXPECT_EQ(serial.total_ms, mt.total_ms);
  EXPECT_EQ(serial.sanitizer_errors, mt.sanitizer_errors);
  EXPECT_EQ(serial.sanitizer_warnings, mt.sanitizer_warnings);
  EXPECT_EQ(serial.sanitizer_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(Methods, ParallelDeterminism,
                         ::testing::Values(Method::kWarpLevel,
                                           Method::kBlockLevel,
                                           Method::kReducedBitSort,
                                           Method::kRandomizedInsertion),
                         [](const auto& info) {
                           std::string name;
                           for (const char c : to_string(info.param)) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               name += c;
                             }
                           }
                           return name;
                         });

/// Cross-block global-atomic contention: every block of a 4-thread run
/// increments the same histogram cells.  The final counts must be exact
/// (real read-modify-write, no lost updates) and all modeled counters
/// must match the serial run, including the per-warp atomic-conflict
/// accounting and the old values the fence serializes.
TEST(ParallelAtomics, CrossBlockContentionIsExactAndDeterministic) {
  constexpr u64 n = u64{1} << 15;
  constexpr u32 m = 4;  // few buckets -> heavy cross-block contention
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = 42;
  const auto host = workload::generate_keys(n, wc);
  std::vector<u32> expected(m, 0);
  for (const u32 k : host) expected[k % m] += 1;

  auto run = [&](u32 host_threads, std::vector<u32>* hist_out) {
    sim::Device dev;
    dev.set_host_threads(host_threads);
    sim::DeviceBuffer<u32> keys(dev, std::span<const u32>(host), "keys");
    sim::DeviceBuffer<u32> hist(dev, m, "hist");
    prim::histogram_global_atomic(dev, keys, hist, m,
                                  [&](u32 k) { return k % m; });
    hist_out->assign(hist.host().begin(), hist.host().end());
    return snapshot(dev);
  };

  std::vector<u32> hist1, hist4;
  const std::string s1 = run(1, &hist1);
  const std::string s4 = run(4, &hist4);
  EXPECT_EQ(hist1, expected);  // serial reference is exact
  EXPECT_EQ(hist4, expected);  // no lost updates across worker threads
  EXPECT_EQ(s1, s4);
}

/// Same property for the block-local variant (shared-memory histograms
/// merged with one global atomic per block): counters include
/// bank-conflict serialization and barrier costs, all order-sensitive.
TEST(ParallelAtomics, BlockLocalHistogramDeterministic) {
  constexpr u64 n = u64{1} << 15;
  constexpr u32 m = 64;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = 7;
  const auto host = workload::generate_keys(n, wc);
  std::vector<u32> expected(m, 0);
  for (const u32 k : host) expected[k % m] += 1;

  auto run = [&](u32 host_threads, std::vector<u32>* hist_out) {
    sim::Device dev;
    dev.set_host_threads(host_threads);
    sim::DeviceBuffer<u32> keys(dev, std::span<const u32>(host), "keys");
    sim::DeviceBuffer<u32> hist(dev, m, "hist");
    prim::histogram_block_local(dev, keys, hist, m,
                                [&](u32 k) { return k % m; });
    hist_out->assign(hist.host().begin(), hist.host().end());
    return snapshot(dev);
  };

  std::vector<u32> hist1, hist4;
  const std::string s1 = run(1, &hist1);
  const std::string s4 = run(4, &hist4);
  EXPECT_EQ(hist1, expected);
  EXPECT_EQ(hist4, expected);
  EXPECT_EQ(s1, s4);
}

/// The scheduler must also be deterministic at thread counts that do not
/// divide the block count, and when the pool is reused across launches
/// with different worker counts.
TEST(ParallelAtomics, OddThreadCountsMatchSerial) {
  const RunResult serial =
      run_multisplit(Method::kBlockLevel, 1, /*sanitize=*/false);
  for (const u32 threads : {2u, 3u, 7u}) {
    const RunResult mt =
        run_multisplit(Method::kBlockLevel, threads, /*sanitize=*/false);
    EXPECT_EQ(serial.snapshot, mt.snapshot) << threads << " threads";
    EXPECT_EQ(serial.out, mt.out) << threads << " threads";
  }
}

}  // namespace
}  // namespace ms::test
