// Unit tests for the fundamental simulator types: LaneArray, lane masks,
// and the small integer helpers everything else leans on.
#include <gtest/gtest.h>

#include "sim/types.hpp"

namespace ms {
namespace {

TEST(LaneArray, FilledBroadcastsToAllLanes) {
  const auto a = LaneArray<u32>::filled(7);
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(a[i], 7u);
}

TEST(LaneArray, IotaMatchesLaneIndex) {
  const auto a = LaneArray<u32>::iota();
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(a[i], i);
  const auto b = LaneArray<u32>::iota(100);
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(b[i], 100 + i);
}

TEST(LaneArray, DefaultIsZeroInitialized) {
  const LaneArray<u64> a{};
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(a[i], 0u);
}

TEST(LaneArray, MapAppliesElementwise) {
  const auto a = LaneArray<u32>::iota();
  const auto b = a.map([](u32 x) { return x * x; });
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(b[i], i * i);
}

TEST(LaneArray, MapCanChangeType) {
  const auto a = LaneArray<u32>::iota();
  const auto b = a.map([](u32 x) { return static_cast<u64>(x) << 40; });
  static_assert(std::is_same_v<decltype(b[0]), const u64&>);
  EXPECT_EQ(b[3], u64{3} << 40);
}

TEST(LaneArray, ZipCombinesTwoArrays) {
  const auto a = LaneArray<u32>::iota();
  const auto b = LaneArray<u32>::filled(10);
  const auto c = a.zip(b, [](u32 x, u32 y) { return x + y; });
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(c[i], i + 10);
}

TEST(LaneMaskHelpers, ForEachLaneVisitsSetBitsAscending) {
  std::vector<u32> visited;
  for_each_lane(0b1010'0001u, [&](u32 lane) { visited.push_back(lane); });
  EXPECT_EQ(visited, (std::vector<u32>{0, 5, 7}));
}

TEST(LaneMaskHelpers, ForEachLaneEmptyMask) {
  u32 count = 0;
  for_each_lane(0u, [&](u32) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(LaneMaskHelpers, LaneActive) {
  EXPECT_TRUE(lane_active(0b100u, 2));
  EXPECT_FALSE(lane_active(0b100u, 1));
  EXPECT_TRUE(lane_active(kFullMask, 31));
}

TEST(IntHelpers, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 32), 0u);
  EXPECT_EQ(ceil_div(1, 32), 1u);
  EXPECT_EQ(ceil_div(32, 32), 1u);
  EXPECT_EQ(ceil_div(33, 32), 2u);
  EXPECT_EQ(ceil_div(u64{1} << 40, 2), u64{1} << 39);
}

TEST(IntHelpers, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(32), 5u);
  EXPECT_EQ(ceil_log2(33), 6u);
  EXPECT_EQ(ceil_log2(1u << 16), 16u);
}

TEST(IntHelpers, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  EXPECT_THROW(check(false, "boom"), std::logic_error);
  try {
    fail("specific message");
    FAIL() << "fail() must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("specific message"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ms
