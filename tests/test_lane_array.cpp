// Unit tests for the fundamental simulator types: LaneArray, lane masks,
// and the small integer helpers everything else leans on -- plus the
// randomized property tests pinning the SIMD lane engine (sim/simd.hpp)
// to its scalar reference loops bit for bit.
#include <gtest/gtest.h>

#include <random>

#include "primitives/warp_ops.hpp"
#include "sim/simd.hpp"
#include "sim/types.hpp"

namespace ms {
namespace {

TEST(LaneArray, FilledBroadcastsToAllLanes) {
  const auto a = LaneArray<u32>::filled(7);
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(a[i], 7u);
}

TEST(LaneArray, IotaMatchesLaneIndex) {
  const auto a = LaneArray<u32>::iota();
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(a[i], i);
  const auto b = LaneArray<u32>::iota(100);
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(b[i], 100 + i);
}

TEST(LaneArray, DefaultIsZeroInitialized) {
  const LaneArray<u64> a{};
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(a[i], 0u);
}

TEST(LaneArray, MapAppliesElementwise) {
  const auto a = LaneArray<u32>::iota();
  const auto b = a.map([](u32 x) { return x * x; });
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(b[i], i * i);
}

TEST(LaneArray, MapCanChangeType) {
  const auto a = LaneArray<u32>::iota();
  const auto b = a.map([](u32 x) { return static_cast<u64>(x) << 40; });
  static_assert(std::is_same_v<decltype(b[0]), const u64&>);
  EXPECT_EQ(b[3], u64{3} << 40);
}

TEST(LaneArray, ZipCombinesTwoArrays) {
  const auto a = LaneArray<u32>::iota();
  const auto b = LaneArray<u32>::filled(10);
  const auto c = a.zip(b, [](u32 x, u32 y) { return x + y; });
  for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(c[i], i + 10);
}

TEST(LaneMaskHelpers, ForEachLaneVisitsSetBitsAscending) {
  std::vector<u32> visited;
  for_each_lane(0b1010'0001u, [&](u32 lane) { visited.push_back(lane); });
  EXPECT_EQ(visited, (std::vector<u32>{0, 5, 7}));
}

TEST(LaneMaskHelpers, ForEachLaneEmptyMask) {
  u32 count = 0;
  for_each_lane(0u, [&](u32) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(LaneMaskHelpers, LaneActive) {
  EXPECT_TRUE(lane_active(0b100u, 2));
  EXPECT_FALSE(lane_active(0b100u, 1));
  EXPECT_TRUE(lane_active(kFullMask, 31));
}

TEST(IntHelpers, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 32), 0u);
  EXPECT_EQ(ceil_div(1, 32), 1u);
  EXPECT_EQ(ceil_div(32, 32), 1u);
  EXPECT_EQ(ceil_div(33, 32), 2u);
  EXPECT_EQ(ceil_div(u64{1} << 40, 2), u64{1} << 39);
}

TEST(IntHelpers, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(32), 5u);
  EXPECT_EQ(ceil_log2(33), 6u);
  EXPECT_EQ(ceil_log2(1u << 16), 16u);
}

TEST(IntHelpers, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  EXPECT_THROW(check(false, "boom"), std::logic_error);
  try {
    fail("specific message");
    FAIL() << "fail() must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("specific message"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// SIMD lane engine: every vector kernel against its scalar reference loop.
// The simd:: entry points compile to the widest available backend
// unconditionally (callers gate on simd::enabled()), so these tests
// exercise the vector code directly -- in an MS_SIMD=off build they
// degenerate into scalar-vs-scalar and stay green by construction.
// ---------------------------------------------------------------------------

// The mask shapes most likely to break lane<->bit plumbing: empty, lane 0
// only, lane 31 only (sign-bit handling in movemask-style extractions),
// both alternating phases, and full.
constexpr LaneMask kEdgeMasks[] = {0x0u,        0x1u,        0x80000000u,
                                   0xAAAAAAAAu, 0x55555555u, kFullMask};

u32 ref_nonzero_mask(const u32* v) {
  u32 out = 0;
  for (u32 i = 0; i < kWarpSize; ++i) out |= (v[i] != 0 ? 1u : 0u) << i;
  return out;
}

void ref_bit_ballots(const u32* bucket, u32 rounds, LaneMask valid,
                     u32* ballots) {
  for (u32 k = 0; k < rounds; ++k) {
    u32 mask = 0;
    for (u32 i = 0; i < kWarpSize; ++i) mask |= ((bucket[i] >> k) & 1u) << i;
    ballots[k] = mask & valid;
  }
}

void ref_class_masks(u32 rounds, const u32* ballots, LaneMask valid, u32* M) {
  const u32 classes = 1u << rounds;
  for (u32 c = 0; c < classes; ++c) M[c] = valid;
  for (u32 k = 0; k < rounds; ++k) {
    const u32 b = ballots[k];
    for (u32 c = 0; c < classes; ++c) M[c] &= b ^ (((c >> k) & 1u) - 1u);
  }
}

TEST(SimdLaneEngine, NonzeroMaskMatchesReference) {
  std::mt19937 rng(2016);
  for (int trial = 0; trial < 2000; ++trial) {
    LaneArray<u32> v;
    for (u32 i = 0; i < kWarpSize; ++i) {
      // Mix zeros, small values, and sign-bit-heavy values: movemask-based
      // backends must classify 0x80000000 as nonzero like any other word.
      switch (rng() % 4) {
        case 0: v[i] = 0; break;
        case 1: v[i] = 1 + rng() % 7; break;
        case 2: v[i] = 0x80000000u; break;
        default: v[i] = rng(); break;
      }
    }
    ASSERT_EQ(sim::simd::nonzero_mask(v.data()), ref_nonzero_mask(v.data()));
  }
  // Single-lane patterns: exactly one nonzero lane at each position.
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    LaneArray<u32> v{};
    v[lane] = 0x80000000u;
    ASSERT_EQ(sim::simd::nonzero_mask(v.data()), 1u << lane) << "lane " << lane;
  }
}

TEST(SimdLaneEngine, BallotMatchesReferenceUnderEdgeMasks) {
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 500; ++trial) {
    LaneArray<u32> pred;
    for (u32 i = 0; i < kWarpSize; ++i) pred[i] = rng() & 1u ? rng() | 1u : 0u;
    for (LaneMask active : kEdgeMasks) {
      ASSERT_EQ(sim::simd::ballot(pred.data(), active),
                ref_nonzero_mask(pred.data()) & active);
    }
    const LaneMask random_mask = rng();
    ASSERT_EQ(sim::simd::ballot(pred.data(), random_mask),
              ref_nonzero_mask(pred.data()) & random_mask);
  }
}

TEST(SimdLaneEngine, BitBallotsMatchesReferenceForAllRounds) {
  std::mt19937 rng(4242);
  for (u32 rounds = 1; rounds <= 8; ++rounds) {
    for (int trial = 0; trial < 200; ++trial) {
      LaneArray<u32> bucket;
      for (u32 i = 0; i < kWarpSize; ++i) bucket[i] = rng() % (1u << rounds);
      const LaneMask valid =
          trial < 6 ? kEdgeMasks[trial] : static_cast<LaneMask>(rng());
      u32 got[8], want[8];
      sim::simd::bit_ballots(bucket.data(), rounds, valid, got);
      ref_bit_ballots(bucket.data(), rounds, valid, want);
      for (u32 k = 0; k < rounds; ++k) {
        ASSERT_EQ(got[k], want[k]) << "rounds=" << rounds << " k=" << k;
      }
    }
  }
}

TEST(SimdLaneEngine, ClassMasksMatchReferenceAndPartitionValid) {
  std::mt19937 rng(99173);
  for (u32 rounds = 1; rounds <= 8; ++rounds) {
    const u32 classes = 1u << rounds;
    for (int trial = 0; trial < 100; ++trial) {
      LaneArray<u32> bucket;
      for (u32 i = 0; i < kWarpSize; ++i) bucket[i] = rng() % classes;
      const LaneMask valid =
          trial < 6 ? kEdgeMasks[trial] : static_cast<LaneMask>(rng());
      u32 ballots[8];
      sim::simd::bit_ballots(bucket.data(), rounds, valid, ballots);
      std::vector<u32> got(classes), want(classes);
      sim::simd::class_masks(rounds, ballots, valid, got.data());
      ref_class_masks(rounds, ballots, valid, want.data());
      LaneMask unioned = 0;
      for (u32 c = 0; c < classes; ++c) {
        ASSERT_EQ(got[c], want[c]) << "rounds=" << rounds << " class " << c;
        // Partition property: class masks are pairwise disjoint...
        ASSERT_EQ(unioned & got[c], 0u) << "overlap at class " << c;
        unioned |= got[c];
        // ...and each valid lane lands in exactly the class of its bucket.
        for_each_lane(got[c], [&](u32 lane) {
          ASSERT_EQ(bucket[lane] & (classes - 1), c) << "lane " << lane;
        });
      }
      ASSERT_EQ(unioned, valid) << "union must cover exactly the valid lanes";
    }
  }
}

// A/B the fused warp primitives through the runtime switch: same inputs,
// same Device, scalar and vector engines must agree lane for lane.  In a
// scalar-only build set_enabled is a no-op and both runs take the
// reference path.
TEST(SimdLaneEngine, FusedWarpOpsBitIdenticalAcrossEngines) {
  const bool was_enabled = sim::simd::enabled();
  std::mt19937 rng(777);
  sim::Device dev;
  sim::Warp w(dev, 0);
  for (u32 m : {1u, 2u, 3u, 5u, 8u, 17u, 32u}) {
    for (int trial = 0; trial < 50; ++trial) {
      LaneArray<u32> bucket;
      for (u32 i = 0; i < kWarpSize; ++i) bucket[i] = rng() % m;
      const LaneMask valid =
          trial < 6 ? kEdgeMasks[trial] : static_cast<LaneMask>(rng());
      if (valid == 0) continue;  // warp ops require at least one lane
      sim::simd::set_enabled(false);
      const auto h_s = prim::warp_histogram(w, bucket, m, valid);
      const auto o_s = prim::warp_offsets(w, bucket, m, valid);
      const auto r_s = prim::warp_rank(w, bucket, m, valid);
      sim::simd::set_enabled(true);
      const auto h_v = prim::warp_histogram(w, bucket, m, valid);
      const auto o_v = prim::warp_offsets(w, bucket, m, valid);
      const auto r_v = prim::warp_rank(w, bucket, m, valid);
      for (u32 i = 0; i < kWarpSize; ++i) {
        ASSERT_EQ(h_s[i], h_v[i]) << "histogram lane " << i << " m=" << m;
        ASSERT_EQ(r_s.histogram[i], r_v.histogram[i]) << "rank.hist " << i;
      }
      for_each_lane(valid, [&](u32 i) {
        ASSERT_EQ(o_s[i], o_v[i]) << "offsets lane " << i << " m=" << m;
        ASSERT_EQ(r_s.offsets[i], r_v.offsets[i]) << "rank.off " << i;
      });
    }
  }
  sim::simd::set_enabled(was_enabled);
}

}  // namespace
}  // namespace ms
