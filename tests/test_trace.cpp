// JSON writer/parser round-trips and the Chrome trace-event schema of the
// profiler export (what chrome://tracing and Perfetto require to load it).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "multisplit/multisplit.hpp"
#include "workload/distributions.hpp"

namespace ms::sim {
namespace {

TEST(Json, WriterParserRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("name", "he \"quoted\" \\ path\nnewline");
  w.field("count", u64{18446744073709551615ull});
  w.field("pi", 3.141592653589793);
  w.field("neg", i64{-42});
  w.field("yes", true);
  w.key("list").begin_array();
  w.value(u64{1}).value(u64{2});
  w.begin_object().field("nested", "x").end_object();
  w.end_array();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();
  ASSERT_TRUE(w.complete());

  const JsonValue v = parse_json(os.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").str, "he \"quoted\" \\ path\nnewline");
  EXPECT_DOUBLE_EQ(v.at("count").number, 18446744073709551615.0);
  EXPECT_DOUBLE_EQ(v.at("pi").number, 3.141592653589793);
  EXPECT_DOUBLE_EQ(v.at("neg").number, -42.0);
  EXPECT_TRUE(v.at("yes").boolean);
  ASSERT_TRUE(v.at("list").is_array());
  ASSERT_EQ(v.at("list").array.size(), 3u);
  EXPECT_EQ(v.at("list").array[2].at("nested").str, "x");
  EXPECT_TRUE(v.at("empty_obj").is_object());
  EXPECT_TRUE(v.at("empty_obj").object.empty());
  EXPECT_TRUE(v.at("empty_arr").array.empty());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse_json("1 2"), std::runtime_error);  // trailing garbage
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("tru"), std::runtime_error);
  EXPECT_THROW(parse_json("{'a':1}"), std::runtime_error);
}

TEST(Json, ParserAcceptsEscapesAndNumbers) {
  const JsonValue v =
      parse_json(R"({"s":"aA\t","x":-1.5e3,"n":null})");
  EXPECT_EQ(v.at("s").str, "aA\t");
  EXPECT_DOUBLE_EQ(v.at("x").number, -1500.0);
  EXPECT_EQ(v.at("n").type, JsonValue::Type::kNull);
}

/// Run one warp-level multisplit and return (device trace JSON, total ms).
JsonValue traced_run(Device& dev) {
  workload::WorkloadConfig wc;
  wc.m = 8;
  const u64 n = u64{1} << 12;
  const auto host = workload::generate_keys(n, wc);
  DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  split::MultisplitConfig cfg;
  cfg.method = split::Method::kWarpLevel;
  split::multisplit_keys(dev, in, out, 8, split::RangeBucket{8}, cfg);
  std::ostringstream os;
  write_chrome_trace(dev, os);
  return parse_json(os.str());
}

TEST(ChromeTrace, MatchesTraceEventSchema) {
  Device dev;
  const JsonValue doc = traced_run(dev);

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  EXPECT_EQ(doc.at("otherData").at("device").str, dev.profile().name);
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());

  u64 slices = 0, metadata = 0, counters = 0;
  for (const JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e.at("ph").str;
    ASSERT_TRUE(e.at("pid").is_number());
    ASSERT_TRUE(e.at("tid").is_number());
    if (ph == "X") {
      slices += 1;
      EXPECT_TRUE(e.at("name").is_string());
      ASSERT_TRUE(e.at("ts").is_number());
      ASSERT_TRUE(e.at("dur").is_number());
      EXPECT_GE(e.at("ts").number, 0.0);
      EXPECT_GT(e.at("dur").number, 0.0);
    } else if (ph == "M") {
      metadata += 1;
      EXPECT_TRUE(e.at("args").at("name").is_string());
    } else if (ph == "C") {
      counters += 1;
      EXPECT_TRUE(e.at("args").is_object());
    } else {
      ADD_FAILURE() << "unexpected event phase '" << ph << "'";
    }
  }
  EXPECT_GT(slices, 0u);
  EXPECT_GE(metadata, 5u);  // process name + 4 thread names
  EXPECT_GT(counters, 0u);
}

TEST(ChromeTrace, KernelSliceDurationsSumToDeviceTotal) {
  Device dev;
  const JsonValue doc = traced_run(dev);

  f64 kernel_us = 0.0;
  u64 kernel_slices = 0;
  f64 end_of_last = 0.0;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").str != "X" || e.at("tid").number != 1.0) continue;
    kernel_slices += 1;
    kernel_us += e.at("dur").number;
    // Kernel slices are laid end-to-end on the modeled timeline.
    EXPECT_NEAR(e.at("ts").number, end_of_last, 1e-6);
    end_of_last = e.at("ts").number + e.at("dur").number;
    // Per-kernel args carry the profiler counters.
    const JsonValue& args = e.at("args");
    EXPECT_TRUE(args.at("issue_slots").is_number());
    EXPECT_TRUE(args.at("coalescing_pct").is_number());
    EXPECT_TRUE(args.at("achieved_gbps").is_number());
  }
  EXPECT_EQ(kernel_slices, dev.records().size());
  EXPECT_NEAR(kernel_us * 1e-3, dev.total_ms(), 1e-9 * kernel_slices + 1e-12);
}

TEST(ChromeTrace, StageBandsCoverTheKernelTimeline) {
  Device dev;
  const JsonValue doc = traced_run(dev);
  f64 stage_us = 0.0;
  u64 stage_slices = 0;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").str != "X" || e.at("tid").number != 0.0) continue;
    stage_slices += 1;
    stage_us += e.at("dur").number;
  }
  // warp_ms records prescan/scan/postscan regions; together they span the
  // whole run.
  EXPECT_GE(stage_slices, 3u);
  EXPECT_NEAR(stage_us * 1e-3, dev.total_ms(), 1e-9 * stage_slices + 1e-12);
}

TEST(ChromeTrace, PerSiteArgsAppearOnKernelSlices) {
  Device dev;
  const JsonValue doc = traced_run(dev);
  bool saw_scatter_site = false;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").str != "X" || e.at("tid").number != 1.0) continue;
    const JsonValue* sites = e.at("args").find("sites");
    if (sites == nullptr) continue;
    if (const JsonValue* s = sites->find("warp_ms/postscan_scatter")) {
      saw_scatter_site = true;
      EXPECT_TRUE(s->at("coalescing_pct").is_number());
      EXPECT_TRUE(s->at("l2_segments").is_number());
    }
  }
  EXPECT_TRUE(saw_scatter_site);
}

TEST(ChromeTrace, FileWriterProducesParseableOutput) {
  Device dev;
  DeviceBuffer<u32> buf(dev, 1024);
  device_fill<u32>(dev, buf, 1);
  const std::string path = ::testing::TempDir() + "ms_trace_test.json";
  ASSERT_TRUE(write_chrome_trace_file(dev, path));
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  const JsonValue doc = parse_json(ss.str());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ms::sim
