// Device-wide histogram primitives (Section 2's two families): global
// atomics vs. block-local shared-memory accumulation.
#include <gtest/gtest.h>

#include <random>

#include "multisplit/bucket.hpp"
#include "primitives/histogram.hpp"

namespace ms::prim {
namespace {

using sim::Device;
using sim::DeviceBuffer;

struct HistParam {
  u64 n;
  u32 m;
};

class HistogramTest : public ::testing::TestWithParam<HistParam> {};

TEST_P(HistogramTest, BothVariantsMatchReference) {
  const auto [n, m] = GetParam();
  Device dev;
  std::mt19937 rng(static_cast<u32>(n * 31 + m));
  DeviceBuffer<u32> keys(dev, n);
  std::vector<u32> want(m, 0);
  const split::RangeBucket bucket{m};
  for (u64 i = 0; i < n; ++i) {
    keys[i] = rng();
    want[bucket(keys[i])]++;
  }
  DeviceBuffer<u32> h1(dev, m), h2(dev, m);
  histogram_global_atomic(dev, keys, h1, m, bucket);
  histogram_block_local(dev, keys, h2, m, bucket);
  for (u32 d = 0; d < m; ++d) {
    ASSERT_EQ(h1[d], want[d]) << "atomic, bucket " << d;
    ASSERT_EQ(h2[d], want[d]) << "block-local, bucket " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistogramTest,
    ::testing::Values(HistParam{1, 4}, HistParam{1000, 2}, HistParam{1000, 32},
                      HistParam{4096, 100}, HistParam{100001, 8},
                      HistParam{65536, 256}));

TEST(HistogramContention, FewBucketsCauseMoreAtomicConflicts) {
  // The paper's Section 2 point: atomics are fine for many buckets and
  // contention-bound for few.  Check the conflict counter reflects that.
  Device dev;
  const u64 n = 1u << 14;
  std::mt19937 rng(3);
  DeviceBuffer<u32> keys(dev, n), hist(dev, 256);
  for (u64 i = 0; i < n; ++i) keys[i] = rng();

  dev.clear_records();
  histogram_global_atomic(dev, keys, hist, 2, split::RangeBucket{2});
  const u64 conflicts_few = dev.summary_all().events.atomic_conflicts;

  dev.reset_stats();
  histogram_global_atomic(dev, keys, hist, 256, split::RangeBucket{256});
  const u64 conflicts_many = dev.summary_all().events.atomic_conflicts;

  EXPECT_GT(conflicts_few, 2 * conflicts_many);
}

TEST(HistogramContention, BlockLocalBeatsGlobalAtomicsForFewBuckets) {
  Device dev;
  const u64 n = 1u << 16;
  std::mt19937 rng(4);
  DeviceBuffer<u32> keys(dev, n), hist(dev, 4);
  for (u64 i = 0; i < n; ++i) keys[i] = rng();

  dev.clear_records();
  histogram_global_atomic(dev, keys, hist, 4, split::RangeBucket{4});
  const f64 t_atomic = dev.total_ms();
  dev.reset_stats();
  histogram_block_local(dev, keys, hist, 4, split::RangeBucket{4});
  const f64 t_block = dev.total_ms();
  EXPECT_LT(t_block, t_atomic);
}

TEST(HistogramEdge, SkewedInputAllInOneBucket) {
  Device dev;
  const u64 n = 10000;
  DeviceBuffer<u32> keys(dev, n), hist(dev, 8);
  keys.fill(0);  // everything lands in bucket 0
  histogram_block_local(dev, keys, hist, 8, split::RangeBucket{8});
  EXPECT_EQ(hist[0], n);
  for (u32 d = 1; d < 8; ++d) EXPECT_EQ(hist[d], 0u);
}

}  // namespace
}  // namespace ms::prim
