// MultisplitPlan: the build-once/run-many entry point.  Covers the wrapper
// equivalence contract (a plan run and the legacy free function are
// bit-identical in results AND modeled costs for single-shot use), config
// validation at plan-build time, method metadata round-trips, kAuto's
// paper-guided crossover table, and plan reuse (same plan, fresh inputs,
// results identical to fresh single-shot calls; clean under sanitizers --
// the ctest gate `plan_reuse_sanitized` reruns this file with
// MS_SANITIZE=all).
#include <gtest/gtest.h>

#include <sstream>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::MultisplitPlan;
using split::RangeBucket;

std::vector<u32> make_keys(u64 n, u32 m, u64 seed) {
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = seed;
  return workload::generate_keys(n, wc);
}

// ------------------------------------------------- wrapper equivalence

TEST(PlanEquivalence, SingleShotMatchesFreeFunctionBitExactly) {
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 42);
  for (const Method method :
       {Method::kDirect, Method::kWarpLevel, Method::kBlockLevel,
        Method::kReducedBitSort, Method::kFusedBucketSort}) {
    MultisplitConfig cfg;
    cfg.method = method;

    sim::Device dev_a;
    sim::DeviceBuffer<u32> ina(dev_a, std::span<const u32>(host));
    sim::DeviceBuffer<u32> outa(dev_a, n);
    const auto ra =
        split::multisplit_keys(dev_a, ina, outa, m, RangeBucket{m}, cfg);

    sim::Device dev_b;
    sim::DeviceBuffer<u32> inb(dev_b, std::span<const u32>(host));
    sim::DeviceBuffer<u32> outb(dev_b, n);
    const MultisplitPlan plan(dev_b, n, m, cfg);
    const auto rb = plan.run(inb, outb, RangeBucket{m});

    EXPECT_EQ(ra.bucket_offsets, rb.bucket_offsets) << to_string(method);
    EXPECT_EQ(buffer_to_vector(outa), buffer_to_vector(outb))
        << to_string(method);
    // Modeled costs must be bit-identical, not merely close: the free
    // functions are thin plan wrappers and the pooled allocator's first
    // pass is bump-identical.
    EXPECT_EQ(ra.stages.prescan_ms, rb.stages.prescan_ms) << to_string(method);
    EXPECT_EQ(ra.stages.scan_ms, rb.stages.scan_ms) << to_string(method);
    EXPECT_EQ(ra.stages.postscan_ms, rb.stages.postscan_ms)
        << to_string(method);
    EXPECT_EQ(ra.method_selected, rb.method_selected);
  }
}

TEST(PlanEquivalence, PairsMatchFreeFunction) {
  const u64 n = 1u << 10;
  const u32 m = 16;
  const auto host = make_keys(n, m, 7);
  const auto vals = workload::identity_values(n);
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;

  sim::Device dev_a;
  sim::DeviceBuffer<u32> ka(dev_a, std::span<const u32>(host));
  sim::DeviceBuffer<u32> va(dev_a, std::span<const u32>(vals));
  sim::DeviceBuffer<u32> koa(dev_a, n), voa(dev_a, n);
  const auto ra = split::multisplit_pairs(dev_a, ka, va, koa, voa, m,
                                          RangeBucket{m}, cfg);

  sim::Device dev_b;
  sim::DeviceBuffer<u32> kb(dev_b, std::span<const u32>(host));
  sim::DeviceBuffer<u32> vb(dev_b, std::span<const u32>(vals));
  sim::DeviceBuffer<u32> kob(dev_b, n), vob(dev_b, n);
  const MultisplitPlan plan(dev_b, n, m, cfg, sizeof(u32));
  const auto rb = plan.run_pairs(kb, vb, kob, vob, RangeBucket{m});

  EXPECT_EQ(ra.bucket_offsets, rb.bucket_offsets);
  EXPECT_EQ(buffer_to_vector(koa), buffer_to_vector(kob));
  EXPECT_EQ(buffer_to_vector(voa), buffer_to_vector(vob));
  EXPECT_EQ(ra.total_ms(), rb.total_ms());
}

// ------------------------------------------------------- plan metadata

TEST(Plan, ReportsGridAndTempStorage) {
  sim::Device dev;
  MultisplitConfig cfg;
  cfg.method = Method::kWarpLevel;
  const MultisplitPlan plan(dev, 1u << 14, 32, cfg);
  // 2^14 keys / (32 keys per warp-subproblem) = 512 subproblems over 8
  // warps per block.
  EXPECT_EQ(plan.grid().subproblems, 512u);
  EXPECT_EQ(plan.grid().warps_per_block, 8u);
  EXPECT_EQ(plan.grid().blocks, 64u);
  // Two m x L histogram matrices plus the scan tree, all sector-aligned.
  EXPECT_GE(plan.temp_storage_bytes(), 2u * 32u * 512u * 4u);
  EXPECT_EQ(plan.n(), u64{1} << 14);
  EXPECT_EQ(plan.m(), 32u);
  EXPECT_EQ(plan.method(), Method::kWarpLevel);
  EXPECT_EQ(plan.requested_method(), Method::kWarpLevel);
}

TEST(Plan, RejectsMismatchedInputSize) {
  sim::Device dev;
  const MultisplitPlan plan(dev, 1024, 8);
  sim::DeviceBuffer<u32> in(dev, 512), out(dev, 512);
  in.host();  // initialized, size is the problem
  EXPECT_THROW(plan.run(in, out, RangeBucket{8}), std::logic_error);
}

TEST(Plan, RandomizedInsertionRejectsPairsAtBuild) {
  sim::Device dev;
  MultisplitConfig cfg;
  cfg.method = Method::kRandomizedInsertion;
  EXPECT_THROW(MultisplitPlan(dev, 1024, 8, cfg, sizeof(u32)),
               std::logic_error);
  EXPECT_NO_THROW(MultisplitPlan(dev, 1024, 8, cfg));
}

TEST(Plan, ScanSplitRejectsLargeMAtBuild) {
  sim::Device dev;
  MultisplitConfig cfg;
  cfg.method = Method::kScanSplit;
  EXPECT_THROW(MultisplitPlan(dev, 1024, 8, cfg), std::logic_error);
  EXPECT_NO_THROW(MultisplitPlan(dev, 1024, 2, cfg));
}

// ------------------------------------------------------ config validation

class PlanConfigValidation
    : public ::testing::TestWithParam<std::pair<const char*, MultisplitConfig>> {
};

TEST_P(PlanConfigValidation, RejectedAtBuildWithStructuredFault) {
  sim::Device dev;
  const auto& [label, cfg] = GetParam();
  try {
    const MultisplitPlan plan(dev, 1024, 8, cfg);
    FAIL() << label << ": malformed config accepted";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.context().kind, sim::FaultKind::kInvalidConfig) << label;
    EXPECT_EQ(e.context().object, "MultisplitConfig") << label;
    EXPECT_FALSE(e.context().detail.empty()) << label;
  }
}

MultisplitConfig with_zero_warps() {
  MultisplitConfig c;
  c.warps_per_block = 0;
  return c;
}
MultisplitConfig with_zero_items() {
  MultisplitConfig c;
  c.items_per_thread = 0;
  return c;
}
MultisplitConfig with_zero_block_items() {
  MultisplitConfig c;
  c.block_items_per_thread = 0;
  return c;
}
MultisplitConfig with_low_relaxation() {
  MultisplitConfig c;
  c.relaxation = 0.99;
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, PlanConfigValidation,
    ::testing::Values(std::pair{"zero_warps", with_zero_warps()},
                      std::pair{"zero_items", with_zero_items()},
                      std::pair{"zero_block_items", with_zero_block_items()},
                      std::pair{"low_relaxation", with_low_relaxation()}),
    [](const auto& info) { return std::string(info.param.first); });

TEST(PlanConfigValidation, FreeFunctionsValidateToo) {
  // The wrappers build a plan internally, so the same rejection fires.
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, 64), out(dev, 64);
  in.fill(1);
  EXPECT_THROW(split::multisplit_keys(dev, in, out, 8, RangeBucket{8},
                                      with_zero_warps()),
               sim::SimError);
}

// ------------------------------------------------------- method metadata

TEST(MethodNames, TokenRoundTripsThroughParse) {
  for (u32 i = 0; i <= static_cast<u32>(Method::kAuto); ++i) {
    const Method m = static_cast<Method>(i);
    const auto parsed = split::parse_method(split::method_token(m));
    ASSERT_TRUE(parsed.has_value()) << split::method_token(m);
    EXPECT_EQ(*parsed, m);
    // Display names parse too (diff tooling reads them back from reports).
    const auto display = split::parse_method(to_string(m));
    ASSERT_TRUE(display.has_value()) << to_string(m);
    EXPECT_EQ(*display, m);
  }
}

TEST(MethodNames, UnknownNamesStayHardErrors) {
  EXPECT_FALSE(split::parse_method("warp_level").has_value());
  EXPECT_FALSE(split::parse_method("").has_value());
  EXPECT_FALSE(split::parse_method("AUTO").has_value());
  EXPECT_FALSE(split::parse_method("bms").has_value());
}

// ------------------------------------------------------------- kAuto

struct AutoCase {
  u32 m;
  Method want;  // on the default device (Tesla K40c decision table)
  friend std::ostream& operator<<(std::ostream& os, const AutoCase& c) {
    return os << "m" << c.m << "_" << split::method_token(c.want);
  }
};

class AutoSelection : public ::testing::TestWithParam<AutoCase> {};

TEST_P(AutoSelection, PicksPaperCrossoverAndRunsCorrectly) {
  const auto [m, want] = GetParam();
  const u64 n = 1u << 12;
  const auto host = make_keys(n, m, 1234 + m);

  sim::Device dev;
  MultisplitConfig cfg;
  cfg.method = Method::kAuto;
  const MultisplitPlan plan(dev, n, m, cfg);
  EXPECT_EQ(plan.method(), want);
  EXPECT_EQ(plan.requested_method(), Method::kAuto);
  EXPECT_EQ(split::resolve_auto(dev.profile(), n, m), want);

  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  const auto r = plan.run(in, out, RangeBucket{m});
  EXPECT_EQ(r.method_selected, want);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                          RangeBucket{m}, is_stable(want));
}

INSTANTIATE_TEST_SUITE_P(
    PaperGuidance, AutoSelection,
    ::testing::Values(AutoCase{2, Method::kWarpLevel},
                      AutoCase{8, Method::kBlockLevel},
                      AutoCase{32, Method::kBlockLevel},
                      AutoCase{256, Method::kBlockLevel},
                      AutoCase{4096, Method::kReducedBitSort}),
    [](const auto& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

TEST(AutoSelection, DecisionTableIsPerDeviceProfile) {
  // The Maxwell profile crosses over to block-level earlier (m > 4).
  const auto k40c = sim::DeviceProfile::tesla_k40c();
  const auto gtx750 = sim::DeviceProfile::gtx_750_ti();
  EXPECT_EQ(split::resolve_auto(k40c, 1 << 20, 6), Method::kWarpLevel);
  EXPECT_EQ(split::resolve_auto(gtx750, 1 << 20, 6), Method::kBlockLevel);
}

// ------------------------------------------------------------ plan reuse

TEST(PlanReuse, ThreeRunsMatchThreeFreshSingleShots) {
  // Satellite (d): one plan run three times on different inputs must
  // produce exactly the results of three fresh single-shot calls, and stay
  // sanitizer-clean (this whole file reruns under MS_SANITIZE=all via the
  // plan_reuse_sanitized ctest gate).
  const u64 n = 1u << 12;
  const u32 m = 32;
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;

  sim::Device dev;
  const MultisplitPlan plan(dev, n, m, cfg);
  sim::DeviceBuffer<u32> in(dev, n), out(dev, n);

  for (u32 round = 0; round < 3; ++round) {
    const auto host = make_keys(n, m, 100 + round * 31);
    std::copy(host.begin(), host.end(), in.host().begin());
    const auto reused = plan.run(in, out, RangeBucket{m});

    sim::Device fresh_dev;
    sim::DeviceBuffer<u32> fin(fresh_dev, std::span<const u32>(host));
    sim::DeviceBuffer<u32> fout(fresh_dev, n);
    const auto fresh =
        split::multisplit_keys(fresh_dev, fin, fout, m, RangeBucket{m}, cfg);

    EXPECT_EQ(reused.bucket_offsets, fresh.bucket_offsets) << round;
    EXPECT_EQ(buffer_to_vector(out), buffer_to_vector(fout)) << round;
    EXPECT_EQ(reused.method_selected, fresh.method_selected);
    expect_valid_multisplit(host, buffer_to_vector(out),
                            reused.bucket_offsets, m, RangeBucket{m}, true);
  }
  // The pool really was exercised: runs 2 and 3 recycled run 1's scratch.
  EXPECT_GT(dev.allocator().stats().reuse_hits, 0u);
}

TEST(PlanReuse, ReusedRunsAreDeterministic) {
  // Pool reuse is LIFO over deterministic free lists, so the whole
  // reuse sequence -- including every modeled time -- must reproduce
  // bit-for-bit on a second device.  (Individual reused runs may differ
  // slightly from run 1 in either direction: recycled residency shifts
  // L2 set pressure.  Determinism is the contract; plan_reuse measures
  // the amortized win.)
  const u64 n = 1u << 12;
  auto sequence = [&] {
    sim::Device dev;
    const MultisplitPlan plan(dev, n, 16);
    sim::DeviceBuffer<u32> in(dev, n), out(dev, n);
    std::vector<f64> times;
    for (u32 round = 0; round < 3; ++round) {
      const auto host = make_keys(n, 16, 900 + round);
      std::copy(host.begin(), host.end(), in.host().begin());
      times.push_back(plan.run(in, out, RangeBucket{16}).total_ms());
    }
    return times;
  };
  const auto a = sequence();
  const auto b = sequence();
  EXPECT_EQ(a, b);
  EXPECT_GT(a[0], 0.0);
}

}  // namespace
}  // namespace ms::test
