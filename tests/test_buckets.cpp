// Bucket-identification functors.
#include <gtest/gtest.h>

#include "multisplit/bucket.hpp"

namespace ms::split {
namespace {

TEST(RangeBucketTest, EquallyDividesDomain) {
  const RangeBucket b{4};
  EXPECT_EQ(b(0), 0u);
  EXPECT_EQ(b(0x3FFFFFFF), 0u);
  EXPECT_EQ(b(0x40000000), 1u);
  EXPECT_EQ(b(0x7FFFFFFF), 1u);
  EXPECT_EQ(b(0x80000000), 2u);
  EXPECT_EQ(b(0xC0000000), 3u);
  EXPECT_EQ(b(0xFFFFFFFF), 3u);
}

TEST(RangeBucketTest, AlwaysInRange) {
  for (const u32 m : {1u, 2u, 3u, 7u, 32u, 100u, 65536u}) {
    const RangeBucket b{m};
    for (const u32 k : {0u, 1u, 0x12345678u, 0xFFFFFFFEu, 0xFFFFFFFFu}) {
      EXPECT_LT(b(k), m) << "m=" << m << " k=" << k;
    }
  }
}

TEST(RangeBucketTest, MonotoneInKey) {
  const RangeBucket b{13};
  u32 prev = 0;
  for (u64 k = 0; k <= 0xFFFFFFFFull; k += 0x01000001) {
    const u32 cur = b(static_cast<u32>(k));
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(IdentityBucketTest, PassThrough) {
  const IdentityBucket b;
  EXPECT_EQ(b(0), 0u);
  EXPECT_EQ(b(17), 17u);
}

TEST(LowBitsBucketTest, MasksLowBits) {
  const LowBitsBucket b{3};
  EXPECT_EQ(b(0b10101), 0b101u);
  EXPECT_EQ(b(0xFFFFFFFF), 7u);
}

TEST(DeltaBucketTest, ClampsToLastBucket) {
  const DeltaBucket b{100, 10};
  EXPECT_EQ(b(0), 0u);
  EXPECT_EQ(b(99), 0u);
  EXPECT_EQ(b(100), 1u);
  EXPECT_EQ(b(950), 9u);
  EXPECT_EQ(b(0xFFFFFFFF), 9u);
}

TEST(PivotBucketTest, ThreeWayAroundPivots) {
  const PivotBucket b{100, 1000};
  EXPECT_EQ(b(50), 0u);
  EXPECT_EQ(b(100), 1u);
  EXPECT_EQ(b(999), 1u);
  EXPECT_EQ(b(1000), 2u);
}

TEST(PrimeBucketTest, ClassifiesSmallNumbers) {
  const PrimeBucket b;
  EXPECT_EQ(b(2), 0u);
  EXPECT_EQ(b(3), 0u);
  EXPECT_EQ(b(17), 0u);
  EXPECT_EQ(b(4), 1u);
  EXPECT_EQ(b(100), 1u);
  EXPECT_EQ(b(0), 1u);
  EXPECT_EQ(b(1), 1u);
}

TEST(ChargeCost, DeclaredCostsArePickedUp) {
  EXPECT_EQ(bucket_charge_cost<RangeBucket>, 2u);
  EXPECT_EQ(bucket_charge_cost<IdentityBucket>, 0u);
  EXPECT_EQ(bucket_charge_cost<PrimeBucket>, 16u);
  // A lambda without a declared cost defaults to 2.
  const auto lambda = [](u32 k) { return k & 1u; };
  EXPECT_EQ(bucket_charge_cost<decltype(lambda)>, 2u);
}

}  // namespace
}  // namespace ms::split
