// Algorithms 2 and 3 (ballot-based warp histogram / local offsets), the
// merged ranking, and the m > 32 multi-bitmap extensions -- checked against
// straightforward references over randomized inputs, including partial
// (tail) warps.
#include <gtest/gtest.h>

#include <random>

#include "primitives/warp_ops.hpp"

namespace ms::prim {
namespace {

using sim::Device;

std::vector<u32> reference_histogram(const LaneArray<u32>& b, u32 m,
                                     LaneMask valid) {
  std::vector<u32> h(m, 0);
  for_each_lane(valid, [&](u32 lane) { h[b[lane]]++; });
  return h;
}

std::vector<u32> reference_offsets(const LaneArray<u32>& b, LaneMask valid) {
  std::vector<u32> out(kWarpSize, 0);
  for_each_lane(valid, [&](u32 lane) {
    u32 r = 0;
    for (u32 j = 0; j < lane; ++j) {
      if (lane_active(valid, j) && b[j] == b[lane]) ++r;
    }
    out[lane] = r;
  });
  return out;
}

class WarpOpsTest : public ::testing::TestWithParam<u32> {
 protected:
  Device dev;
  std::mt19937 rng{GetParam() * 7919 + 13};

  template <typename F>
  void in_warp(F&& f) {
    sim::launch_warps(dev, "test", 1, [&](sim::Warp& w, u64) { f(w); });
  }
};

TEST_P(WarpOpsTest, HistogramMatchesReference) {
  const u32 m = GetParam();
  in_warp([&](sim::Warp& w) {
    for (int trial = 0; trial < 40; ++trial) {
      LaneArray<u32> b;
      for (u32 i = 0; i < kWarpSize; ++i) b[i] = rng() % m;
      const LaneMask valid =
          (trial % 3 == 0) ? sim::tail_mask(1 + rng() % 32) : kFullMask;
      const auto got = warp_histogram(w, b, m, valid);
      const auto want = reference_histogram(b, m, valid);
      for (u32 d = 0; d < m; ++d) ASSERT_EQ(got[d], want[d]) << "bucket " << d;
    }
  });
}

TEST_P(WarpOpsTest, OffsetsMatchReference) {
  const u32 m = GetParam();
  in_warp([&](sim::Warp& w) {
    for (int trial = 0; trial < 40; ++trial) {
      LaneArray<u32> b;
      for (u32 i = 0; i < kWarpSize; ++i) b[i] = rng() % m;
      const LaneMask valid =
          (trial % 3 == 1) ? sim::tail_mask(1 + rng() % 32) : kFullMask;
      const auto got = warp_offsets(w, b, m, valid);
      const auto want = reference_offsets(b, valid);
      for_each_lane(valid,
                    [&](u32 i) { ASSERT_EQ(got[i], want[i]) << "lane " << i; });
    }
  });
}

TEST_P(WarpOpsTest, MergedRankAgreesWithSeparateOps) {
  const u32 m = GetParam();
  in_warp([&](sim::Warp& w) {
    for (int trial = 0; trial < 20; ++trial) {
      LaneArray<u32> b;
      for (u32 i = 0; i < kWarpSize; ++i) b[i] = rng() % m;
      const LaneMask valid = sim::tail_mask(1 + rng() % 32);
      const auto rank = warp_rank(w, b, m, valid);
      const auto h = warp_histogram(w, b, m, valid);
      const auto o = warp_offsets(w, b, m, valid);
      for (u32 i = 0; i < kWarpSize; ++i) {
        ASSERT_EQ(rank.histogram[i], h[i]);
        ASSERT_EQ(rank.offsets[i], o[i]);
      }
    }
  });
}

TEST_P(WarpOpsTest, HistogramSumsToValidCount) {
  const u32 m = GetParam();
  in_warp([&](sim::Warp& w) {
    LaneArray<u32> b;
    for (u32 i = 0; i < kWarpSize; ++i) b[i] = rng() % m;
    const LaneMask valid = sim::tail_mask(17);
    const auto h = warp_histogram(w, b, m, valid);
    u32 total = 0;
    for (u32 d = 0; d < m; ++d) total += h[d];
    EXPECT_EQ(total, 17u);
  });
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, WarpOpsTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 15u, 16u,
                                           17u, 31u, 32u));

class WarpOpsMultiTest : public ::testing::TestWithParam<u32> {
 protected:
  Device dev;
  std::mt19937 rng{GetParam() * 104729 + 7};
};

TEST_P(WarpOpsMultiTest, MultiHistogramMatchesReference) {
  const u32 m = GetParam();
  sim::launch_warps(dev, "test", 1, [&](sim::Warp& w, u64) {
    for (int trial = 0; trial < 20; ++trial) {
      LaneArray<u32> b;
      for (u32 i = 0; i < kWarpSize; ++i) b[i] = rng() % m;
      const LaneMask valid =
          (trial % 2 == 0) ? sim::tail_mask(1 + rng() % 32) : kFullMask;
      const auto groups = warp_histogram_multi(w, b, m, valid);
      const auto want = reference_histogram(b, m, valid);
      ASSERT_EQ(groups.size(), ceil_div(m, kWarpSize));
      for (u32 d = 0; d < m; ++d) {
        ASSERT_EQ(groups[d / kWarpSize][d % kWarpSize], want[d])
            << "bucket " << d;
      }
    }
  });
}

TEST_P(WarpOpsMultiTest, MultiOffsetsMatchReference) {
  const u32 m = GetParam();
  sim::launch_warps(dev, "test", 1, [&](sim::Warp& w, u64) {
    for (int trial = 0; trial < 20; ++trial) {
      LaneArray<u32> b;
      for (u32 i = 0; i < kWarpSize; ++i) b[i] = rng() % m;
      const LaneMask valid = kFullMask;
      const auto got = warp_offsets_multi(w, b, m, valid);
      const auto want = reference_offsets(b, valid);
      for (u32 i = 0; i < kWarpSize; ++i) ASSERT_EQ(got[i], want[i]);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(LargeBucketCounts, WarpOpsMultiTest,
                         ::testing::Values(33u, 64u, 100u, 256u, 1000u));

TEST(WarpOpsCost, BallotRoundsScaleWithLogM) {
  // The defining property of Algorithm 2: ceil(log2 m) ballots, not m.
  Device dev;
  dev.begin_kernel("count");
  sim::Warp w(dev, 0);
  const auto count_ballots = [&](u32 m) {
    const u64 before = dev.events().issue_slots;
    warp_histogram(w, LaneArray<u32>::filled(0), m);
    return dev.events().issue_slots - before;
  };
  const u64 c2 = count_ballots(2);
  const u64 c32 = count_ballots(32);
  // 1 round vs 5 rounds (2 slots per round + final popc).
  EXPECT_EQ(c2, 1 * 2 + 1);
  EXPECT_EQ(c32, 5 * 2 + 1);
  dev.end_kernel();
}

TEST(WarpOpsCost, RejectsOutOfRangeM) {
  Device dev;
  dev.begin_kernel("bad");
  sim::Warp w(dev, 0);
  EXPECT_THROW(warp_histogram(w, LaneArray<u32>{}, 33), std::logic_error);
  EXPECT_THROW(warp_offsets(w, LaneArray<u32>{}, 0), std::logic_error);
  dev.end_kernel();
}

}  // namespace
}  // namespace ms::prim
