// Block-wide multi-reduction, multi-scan, and the m > 32 block-wide
// shared-memory scan (paper Sections 5.1 and 6.4).
#include <gtest/gtest.h>

#include <random>

#include "primitives/block_ops.hpp"

namespace ms::prim {
namespace {

using sim::Block;
using sim::Device;

struct BlockOpsParam {
  u32 m;
  u32 nw;
};

class BlockOpsTest : public ::testing::TestWithParam<BlockOpsParam> {};

TEST_P(BlockOpsTest, MultiReduceSumsRows) {
  const auto [m, nw] = GetParam();
  Device dev;
  std::mt19937 rng(m * 31 + nw);
  std::vector<u32> h2_host(static_cast<size_t>(nw) * m);
  for (auto& x : h2_host) x = rng() % 100;

  sim::launch_blocks(dev, "t", 1, nw, [&](Block& blk) {
    auto h2 = blk.shared<u32>(nw * m);
    for (u32 i = 0; i < nw * m; ++i) h2.raw(i) = h2_host[i];
    block_multi_reduce(blk, h2, m);
    for (u32 d = 0; d < m; ++d) {
      u32 want = 0;
      for (u32 w = 0; w < nw; ++w) want += h2_host[w * m + d];
      ASSERT_EQ(h2.raw(d), want) << "row " << d;
    }
  });
}

TEST_P(BlockOpsTest, MultiScanExclusivePerRow) {
  const auto [m, nw] = GetParam();
  Device dev;
  std::mt19937 rng(m * 131 + nw);
  std::vector<u32> h2_host(static_cast<size_t>(nw) * m);
  for (auto& x : h2_host) x = rng() % 50;

  sim::launch_blocks(dev, "t", 1, nw, [&](Block& blk) {
    auto h2 = blk.shared<u32>((nw + 1) * m);
    for (u32 i = 0; i < nw * m; ++i) h2.raw(i) = h2_host[i];
    block_multi_scan_exclusive(blk, h2, m);
    for (u32 d = 0; d < m; ++d) {
      u32 acc = 0;
      for (u32 w = 0; w < nw; ++w) {
        ASSERT_EQ(h2.raw(w * m + d), acc) << "row " << d << " col " << w;
        acc += h2_host[w * m + d];
      }
      ASSERT_EQ(h2.raw(nw * m + d), acc) << "totals row " << d;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockOpsTest,
    ::testing::Values(BlockOpsParam{1, 2}, BlockOpsParam{2, 8},
                      BlockOpsParam{8, 8}, BlockOpsParam{32, 8},
                      BlockOpsParam{32, 4}, BlockOpsParam{16, 3},
                      BlockOpsParam{7, 5}, BlockOpsParam{32, 1},
                      BlockOpsParam{64, 8}, BlockOpsParam{100, 4}));

class BlockScanSmemTest : public ::testing::TestWithParam<u32> {};

TEST_P(BlockScanSmemTest, MatchesStdExclusiveScan) {
  const u32 count = GetParam();
  Device dev;
  std::mt19937 rng(count);
  std::vector<u32> host(count);
  for (auto& x : host) x = rng() % 20;

  sim::launch_blocks(dev, "t", 1, 8, [&](Block& blk) {
    auto arr = blk.shared<u32>(count);
    for (u32 i = 0; i < count; ++i) arr.raw(i) = host[i];
    block_exclusive_scan_smem(blk, arr, count);
    u32 acc = 0;
    for (u32 i = 0; i < count; ++i) {
      ASSERT_EQ(arr.raw(i), acc) << "index " << i;
      acc += host[i];
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockScanSmemTest,
                         ::testing::Values(1u, 31u, 32u, 33u, 255u, 256u,
                                           257u, 1000u, 4096u, 10000u));

TEST(BlockOps, MultiScanLogRounds) {
  // Kogge-Stone over NW columns: barriers scale with log2(NW), not NW.
  Device dev;
  u64 barriers8 = 0, barriers2 = 0;
  sim::launch_blocks(dev, "b8", 1, 8, [&](Block& blk) {
    auto h2 = blk.shared<u32>(9 * 4);
    block_multi_scan_exclusive(blk, h2, 4);
  });
  barriers8 = dev.records().back().events.barriers;
  sim::launch_blocks(dev, "b2", 1, 2, [&](Block& blk) {
    auto h2 = blk.shared<u32>(3 * 4);
    block_multi_scan_exclusive(blk, h2, 4);
  });
  barriers2 = dev.records().back().events.barriers;
  EXPECT_GT(barriers8, barriers2);
  EXPECT_LE(barriers8, 2 + 2 * 3u + 2u);  // log2(8)=3 rounds + shift phases
}

}  // namespace
}  // namespace ms::prim
