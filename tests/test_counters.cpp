// Per-access-site attribution: the delta-snapshot bookkeeping must
// partition every kernel's counters exactly, ScopedSite must nest, and
// ProfileRegion must agree with the underlying mark()/summary_since().
#include <gtest/gtest.h>

#include "multisplit/multisplit.hpp"
#include "workload/distributions.hpp"

namespace ms::sim {
namespace {

KernelEvents sum_slices(const KernelRecord& r) {
  KernelEvents total;
  for (const auto& [site, ev] : r.sites) total += ev;
  return total;
}

/// Every kernel's site slices must reproduce its event totals exactly --
/// the unattributed remainder lives in site 0, so nothing can leak.
void expect_exact_partition(Device& dev) {
  ASSERT_FALSE(dev.records().empty());
  for (const auto& r : dev.records()) {
    EXPECT_EQ(sum_slices(r), r.events) << "kernel " << r.name;
  }
  // And the device-wide per-site accumulation matches the kernel log.
  KernelEvents from_sites;
  for (const auto& s : dev.site_stats()) from_sites += s.events;
  KernelEvents from_records;
  for (const auto& r : dev.records()) from_records += r.events;
  EXPECT_EQ(from_sites, from_records);
}

TEST(SiteAttribution, HandWrittenKernelPartitionsExactly) {
  Device dev;
  const u64 n = 4096;
  DeviceBuffer<u32> a(dev, n), b(dev, n);
  a.fill(1);
  const SiteId load_site = dev.site_id("test/load");
  const SiteId store_site = dev.site_id("test/store");

  launch_warps(dev, "copyish", n / kWarpSize, [&](Warp& w, u64 wid) {
    const u64 base = wid * kWarpSize;
    const auto x = [&] {
      ScopedSite site(dev, load_site);
      return w.load(a, base, kFullMask);
    }();
    w.charge(3);  // unattributed -> site 0 ("other")
    ScopedSite site(dev, store_site);
    w.store(b, base, x, kFullMask);
  });

  expect_exact_partition(dev);
  const auto& sites = dev.site_stats();
  ASSERT_GT(sites.size(), store_site);
  EXPECT_EQ(sites[load_site].label, "test/load");
  EXPECT_GT(sites[load_site].events.l2_read_segments, 0u);
  EXPECT_GT(sites[store_site].events.l2_write_segments, 0u);
  // The w.charge(3) issue slots landed in "other", not in either site.
  EXPECT_GT(sites[kSiteOther].events.issue_slots, 0u);
}

TEST(SiteAttribution, EndOfKernelWritebackGoesToItsOwnSite) {
  Device dev;
  const u64 n = 4096;
  DeviceBuffer<u32> buf(dev, n);
  device_fill<u32>(dev, buf, 7);
  const SiteId wb = dev.site_id("sim/l2_writeback");
  const auto& sites = dev.site_stats();
  ASSERT_GT(sites.size(), wb);
  // The fill's stores are flushed from L2 at end_kernel and must be
  // attributed to the writeback site, not to "other".
  EXPECT_GT(sites[wb].events.dram_write_tx, 0u);
  expect_exact_partition(dev);
}

TEST(SiteAttribution, WarpMultisplitPartitionsEveryKernel) {
  workload::WorkloadConfig wc;
  wc.m = 8;
  const u64 n = u64{1} << 12;
  const auto host = workload::generate_keys(n, wc);
  Device dev;
  DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  split::MultisplitConfig cfg;
  cfg.method = split::Method::kWarpLevel;
  split::multisplit_keys(dev, in, out, 8, split::RangeBucket{8}, cfg);
  expect_exact_partition(dev);

  // The registered sites actually saw traffic.
  const auto& sites = dev.site_stats();
  const auto find = [&](std::string_view label) -> const SiteStats* {
    for (const auto& s : sites)
      if (s.label == label) return &s;
    return nullptr;
  };
  const SiteStats* scatter = find("warp_ms/postscan_scatter");
  ASSERT_NE(scatter, nullptr);
  EXPECT_GT(scatter->events.l2_write_segments, 0u);
  const SiteStats* load = find("warp_ms/prescan_load");
  ASSERT_NE(load, nullptr);
  EXPECT_GT(load->events.l2_read_segments, 0u);
}

TEST(SiteAttribution, ScatterCoalescingDegradesWithMoreBuckets) {
  // The paper's core diagnosis: the post-scan scatter's coalescing decays
  // as m grows because each warp writes to m distinct bucket regions.
  const auto scatter_eff = [](u32 m) {
    workload::WorkloadConfig wc;
    wc.m = m;
    const u64 n = u64{1} << 13;
    const auto host = workload::generate_keys(n, wc);
    Device dev;
    DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    split::MultisplitConfig cfg;
    cfg.method = split::Method::kWarpLevel;
    split::multisplit_keys(dev, in, out, m, split::RangeBucket{m}, cfg);
    for (const auto& s : dev.site_stats()) {
      if (s.label == "warp_ms/postscan_scatter")
        return coalescing_efficiency(s.events, dev.profile());
    }
    ADD_FAILURE() << "scatter site not found for m=" << m;
    return 0.0;
  };
  const f64 eff2 = scatter_eff(2);
  const f64 eff32 = scatter_eff(32);
  EXPECT_GT(eff2, 0.0);
  EXPECT_LT(eff32, eff2);
}

TEST(ScopedSite, NestsAndRestores) {
  Device dev;
  const SiteId outer = dev.site_id("outer");
  const SiteId inner = dev.site_id("inner");
  EXPECT_EQ(dev.current_site(), kSiteOther);
  {
    ScopedSite a(dev, outer);
    EXPECT_EQ(dev.current_site(), outer);
    {
      ScopedSite b(dev, inner);
      EXPECT_EQ(dev.current_site(), inner);
    }
    EXPECT_EQ(dev.current_site(), outer);
  }
  EXPECT_EQ(dev.current_site(), kSiteOther);
  // Registering the same label twice returns the same id.
  EXPECT_EQ(dev.site_id("outer"), outer);
}

TEST(ProfileRegion, MatchesSummarySinceAndIsIdempotent) {
  Device dev;
  DeviceBuffer<u32> buf(dev, 2048);
  device_fill<u32>(dev, buf, 1);  // outside the region

  const u64 before = dev.mark();
  ProfileRegion region(dev, "test/region");
  device_fill<u32>(dev, buf, 2);
  device_fill<u32>(dev, buf, 3);
  const TimingSummary got = region.end();
  const TimingSummary want = dev.summary_since(before);
  EXPECT_EQ(got.kernels, 2u);
  EXPECT_DOUBLE_EQ(got.total_ms, want.total_ms);
  EXPECT_EQ(got.events, want.events);

  device_fill<u32>(dev, buf, 4);  // after end(): must not extend the region
  const TimingSummary again = region.end();
  EXPECT_EQ(again.kernels, got.kernels);
  EXPECT_DOUBLE_EQ(again.total_ms, got.total_ms);

  ASSERT_EQ(dev.regions().size(), 1u);
  EXPECT_EQ(dev.regions()[0].name, "test/region");
  EXPECT_EQ(dev.regions()[0].first_kernel, before);
  EXPECT_EQ(dev.regions()[0].end_kernel, before + 2);
}

TEST(ProfileRegion, MultisplitStagesSumToKernelTotal) {
  workload::WorkloadConfig wc;
  wc.m = 16;
  const u64 n = u64{1} << 12;
  const auto host = workload::generate_keys(n, wc);
  Device dev;
  DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  split::MultisplitConfig cfg;
  cfg.method = split::Method::kBlockLevel;
  const auto r =
      split::multisplit_keys(dev, in, out, 16, split::RangeBucket{16}, cfg);
  // The three stage regions cover every kernel of the run exactly once.
  EXPECT_NEAR(r.stages.total(), dev.total_ms(), 1e-9);
  EXPECT_NEAR(r.summary.total_ms, dev.total_ms(), 1e-9);
  EXPECT_EQ(r.summary.kernels, dev.records().size());
}

// ---------------------------------------------------------------------------
// Exception safety: a SimError thrown mid-kernel (OOB access) unwinds any
// in-kernel ScopedSite scopes, so the attribution stack is restored and
// later launches cannot be misattributed to the site that was live at the
// fault.
// ---------------------------------------------------------------------------

TEST(SiteAttribution, FaultMidKernelRestoresSiteStack) {
  Device dev;
  SanitizerConfig cfg;
  cfg.memcheck = true;  // reporting mode: the launch swallows the fault
  dev.sanitizer().configure(cfg);
  DeviceBuffer<u32> buf(dev, 64);
  buf.fill(0);
  const SiteId good = dev.site_id("test/good");
  const SiteId bad = dev.site_id("test/bad");

  launch_warps(dev, "faulty", 1, [&](Warp& w, u64) {
    ScopedSite outer(dev, good);
    w.store(buf, 0, LaneArray<u32>::filled(1), kFullMask);
    ScopedSite inner(dev, bad);
    const auto oob =
        Warp::lane_id().map([](u32 l) { return u64{l} + 1000; });
    w.scatter(buf, oob, LaneArray<u32>::filled(2), kFullMask);
    ADD_FAILURE() << "the OOB scatter must abort the kernel";
  });

  // Both nested scopes were unwound; the device is back at "other".
  EXPECT_EQ(dev.current_site(), kSiteOther);
  ASSERT_TRUE(dev.last_error().has_value());
  ASSERT_EQ(dev.records().size(), 1u);
  EXPECT_TRUE(dev.records()[0].faulted);
  // What the aborted kernel did charge is still partitioned exactly.
  expect_exact_partition(dev);

  // A later clean launch must not leak counters into the faulted site.
  const KernelEvents bad_before = dev.site_stats()[bad].events;
  launch_warps(dev, "clean", 1, [&](Warp& w, u64) {
    ScopedSite site(dev, good);
    (void)w.load(buf, 0, kFullMask);
  });
  ASSERT_EQ(dev.records().size(), 2u);
  EXPECT_FALSE(dev.records()[1].faulted);
  expect_exact_partition(dev);
  EXPECT_EQ(dev.site_stats()[bad].events, bad_before);
}

TEST(SiteAttribution, FaultPropagatedToCallerStillRestoresSite) {
  Device dev;  // sanitizer disabled: launch_warps rethrows the SimError
  DeviceBuffer<u32> buf(dev, 32);
  buf.fill(0);
  const SiteId site = dev.site_id("test/site");
  EXPECT_THROW(
      launch_warps(dev, "faulty", 1,
                   [&](Warp& w, u64) {
                     ScopedSite s(dev, site);
                     const auto oob = Warp::lane_id().map(
                         [](u32 l) { return u64{l} + 100; });
                     w.scatter(buf, oob, LaneArray<u32>::filled(1),
                               kFullMask);
                   }),
      SimError);
  EXPECT_EQ(dev.current_site(), kSiteOther);
  // end_kernel still ran: the aborted launch has a (faulted) record and
  // the device stays usable for further launches.
  ASSERT_EQ(dev.records().size(), 1u);
  EXPECT_TRUE(dev.records()[0].faulted);
  device_fill<u32>(dev, buf, 3);
  expect_exact_partition(dev);
}

TEST(ProfileRegion, ClosesAcrossFaultedLaunch) {
  Device dev;
  SanitizerConfig cfg;
  cfg.memcheck = true;  // reporting mode
  dev.sanitizer().configure(cfg);
  ProfileRegion region(dev, "test/faulted_stage");
  inject::oob_scatter(dev);  // aborted launch, swallowed by the sanitizer
  DeviceBuffer<u32> buf(dev, 1024);
  device_fill<u32>(dev, buf, 1);
  const TimingSummary s = region.end();
  // The faulted launch still closed its record, so the region spans both.
  EXPECT_EQ(s.kernels, 2u);
  ASSERT_EQ(dev.regions().size(), 1u);
  EXPECT_EQ(dev.regions()[0].first_kernel, 0u);
  EXPECT_EQ(dev.regions()[0].end_kernel, 2u);
  expect_exact_partition(dev);
}

TEST(SiteAttribution, ResetStatsZeroesCountersKeepsLabels) {
  Device dev;
  const SiteId site = dev.site_id("sticky");
  DeviceBuffer<u32> buf(dev, 1024);
  device_fill<u32>(dev, buf, 5);
  dev.reset_stats();
  EXPECT_TRUE(dev.regions().empty());
  const auto& sites = dev.site_stats();
  ASSERT_GT(sites.size(), site);
  EXPECT_EQ(sites[site].label, "sticky");
  for (const auto& s : sites) EXPECT_EQ(s.events, KernelEvents{});
  EXPECT_EQ(dev.site_id("sticky"), site);
}

}  // namespace
}  // namespace ms::sim
