// The trace-replay fast path (sim/tape.hpp + MultisplitPlan::run_traced):
// reused plans record the cost-uniform stages' accounting on run 1, prove
// the recording input-independent on run 2 (the verify handshake), and
// replay it from run 3 on.  These tests pin the two contracts that make
// that safe:
//
//   1. bit-identity -- a replayed run's results and modeled costs equal
//      the same run executed live (twin-device comparison);
//   2. conservative fallback -- anything that could perturb accounting
//      (sanitizer, chaos, the resilient executor, different buffers,
//      MS_REPLAY=off) keeps or drops to the live path, never a stale tape.
//
// The ctest gates plan_replay_suite / plan_replay_off_suite rerun this
// file with MS_REPLAY=on and =off; the env-sensitive assertions adapt.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::MultisplitPlan;
using split::RangeBucket;

std::vector<u32> make_keys(u64 n, u32 m, u64 seed) {
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = seed;
  return workload::generate_keys(n, wc);
}

bool replay_env_on() {
  const char* env = std::getenv("MS_REPLAY");
  if (env == nullptr || *env == '\0') return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
}

/// Whether a plan on `dev` is expected to tape at all.  Mirrors the
/// plan's eligibility rule (MS_REPLAY on, sanitizer and chaos unarmed):
/// the plan_reuse_sanitized ctest gate reruns this whole suite with
/// MS_SANITIZE=all, where every engagement assertion flips to
/// "stays live" -- which is itself the conservative-bail contract.
bool replay_expected(const sim::Device& dev) {
  return replay_env_on() && !dev.sanitizer().any() && dev.chaos() == nullptr;
}

/// A device whose plans can never tape: the sanitizer is armed in
/// observe-only mode (memcheck, no fail-fast), which makes replay
/// ineligible while leaving results and modeled costs untouched -- the
/// sanitizer is a checker, not a cost source.
sim::SanitizerConfig observe_only_sanitizer() {
  sim::SanitizerConfig cfg;
  cfg.memcheck = true;
  cfg.fail_fast = false;
  return cfg;
}

// ------------------------------------------------------------ bit-identity

// One plan run N times with replay against a twin device running the same
// sequence live: every run -- recording, verify, and the replayed tail --
// must match the live sequence in results AND modeled costs, bit for bit.
TEST(PlanReplay, ReplayedRunsMatchLiveTwinBitExactly) {
  const u64 n = 1u << 12;
  const u32 m = 16;
  for (const Method method : {Method::kWarpLevel, Method::kBlockLevel}) {
    MultisplitConfig cfg;
    cfg.method = method;

    sim::Device dev_r;  // replay engages here (runs 3+)
    const MultisplitPlan plan_r(dev_r, n, m, cfg);
    sim::DeviceBuffer<u32> in_r(dev_r, n), out_r(dev_r, n);

    sim::Device dev_l;  // live twin: sanitizer armed => never tapes
    dev_l.sanitizer().configure(observe_only_sanitizer());
    const MultisplitPlan plan_l(dev_l, n, m, cfg);
    sim::DeviceBuffer<u32> in_l(dev_l, n), out_l(dev_l, n);

    EXPECT_STREQ(plan_r.replay_phase(), "idle");
    EXPECT_STREQ(plan_l.replay_phase(), "idle");
    for (u32 round = 0; round < 5; ++round) {
      const auto host = make_keys(n, m, 7000 + round);
      std::copy(host.begin(), host.end(), in_r.host().begin());
      std::copy(host.begin(), host.end(), in_l.host().begin());
      const auto rr = plan_r.run(in_r, out_r, RangeBucket{m});
      const auto rl = plan_l.run(in_l, out_l, RangeBucket{m});

      EXPECT_EQ(rr.bucket_offsets, rl.bucket_offsets)
          << to_string(method) << " round " << round;
      EXPECT_EQ(buffer_to_vector(out_r), buffer_to_vector(out_l))
          << to_string(method) << " round " << round;
      EXPECT_EQ(rr.stages.prescan_ms, rl.stages.prescan_ms)
          << to_string(method) << " round " << round;
      EXPECT_EQ(rr.stages.scan_ms, rl.stages.scan_ms)
          << to_string(method) << " round " << round;
      EXPECT_EQ(rr.stages.postscan_ms, rl.stages.postscan_ms)
          << to_string(method) << " round " << round;
      EXPECT_EQ(rr.total_ms(), rl.total_ms())
          << to_string(method) << " round " << round;
      expect_valid_multisplit(host, buffer_to_vector(out_r), rr.bucket_offsets,
                              m, RangeBucket{m}, true);
    }
    if (replay_expected(dev_r)) {
      EXPECT_TRUE(plan_r.replay_active()) << to_string(method);
    } else {
      EXPECT_STREQ(plan_r.replay_phase(), "idle") << to_string(method);
    }
    EXPECT_STREQ(plan_l.replay_phase(), "idle") << to_string(method);
  }
}

TEST(PlanReplay, PhaseProgressesIdleRecordedReady) {
  const u64 n = 1u << 12;
  sim::Device dev;
  if (!replay_expected(dev)) {
    GTEST_SKIP() << "environment pins the live path (MS_REPLAY=off or an "
                    "ambient sanitizer/chaos config)";
  }
  const MultisplitPlan plan(dev, n, 8);
  sim::DeviceBuffer<u32> in(dev, n), out(dev, n);
  const auto host = make_keys(n, 8, 1);
  std::copy(host.begin(), host.end(), in.host().begin());

  EXPECT_STREQ(plan.replay_phase(), "idle");
  plan.run(in, out, RangeBucket{8});
  EXPECT_STREQ(plan.replay_phase(), "recorded");
  plan.run(in, out, RangeBucket{8});
  EXPECT_STREQ(plan.replay_phase(), "ready");
  plan.run(in, out, RangeBucket{8});
  EXPECT_STREQ(plan.replay_phase(), "ready");
  EXPECT_TRUE(plan.replay_active());
}

// Key-value runs tape the same way as key-only runs.
TEST(PlanReplay, PairsReplayMatchesLiveTwin) {
  const u64 n = 1u << 11;
  const u32 m = 8;
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  const auto vals = workload::identity_values(n);

  sim::Device dev_r;
  const MultisplitPlan plan_r(dev_r, n, m, cfg, sizeof(u32));
  sim::DeviceBuffer<u32> ki_r(dev_r, n), vi_r(dev_r, n);
  sim::DeviceBuffer<u32> ko_r(dev_r, n), vo_r(dev_r, n);

  sim::Device dev_l;
  dev_l.sanitizer().configure(observe_only_sanitizer());
  const MultisplitPlan plan_l(dev_l, n, m, cfg, sizeof(u32));
  sim::DeviceBuffer<u32> ki_l(dev_l, n), vi_l(dev_l, n);
  sim::DeviceBuffer<u32> ko_l(dev_l, n), vo_l(dev_l, n);

  for (u32 round = 0; round < 4; ++round) {
    const auto host = make_keys(n, m, 4400 + round);
    std::copy(host.begin(), host.end(), ki_r.host().begin());
    std::copy(host.begin(), host.end(), ki_l.host().begin());
    std::copy(vals.begin(), vals.end(), vi_r.host().begin());
    std::copy(vals.begin(), vals.end(), vi_l.host().begin());
    const auto rr = plan_r.run_pairs(ki_r, vi_r, ko_r, vo_r, RangeBucket{m});
    const auto rl = plan_l.run_pairs(ki_l, vi_l, ko_l, vo_l, RangeBucket{m});
    EXPECT_EQ(rr.bucket_offsets, rl.bucket_offsets) << round;
    EXPECT_EQ(buffer_to_vector(ko_r), buffer_to_vector(ko_l)) << round;
    EXPECT_EQ(buffer_to_vector(vo_r), buffer_to_vector(vo_l)) << round;
    EXPECT_EQ(rr.total_ms(), rl.total_ms()) << round;
  }
  if (replay_expected(dev_r)) EXPECT_TRUE(plan_r.replay_active());
}

// The parallel scheduler must stay invisible: the whole record/verify/
// replay sequence on 4 worker threads reproduces the serial sequence's
// modeled costs bit for bit (replayed launches run serial by design; the
// recording itself must survive parallel shard capture).
TEST(PlanReplay, FourThreadSequenceMatchesSerial) {
  const u64 n = 1u << 12;
  const u32 m = 16;
  auto sequence = [&](u32 threads) {
    sim::Device dev;
    dev.set_host_threads(threads);
    const MultisplitPlan plan(dev, n, m);
    sim::DeviceBuffer<u32> in(dev, n), out(dev, n);
    std::vector<f64> times;
    for (u32 round = 0; round < 5; ++round) {
      const auto host = make_keys(n, m, 90 + round);
      std::copy(host.begin(), host.end(), in.host().begin());
      times.push_back(plan.run(in, out, RangeBucket{m}).total_ms());
    }
    return times;
  };
  EXPECT_EQ(sequence(1), sequence(4));
}

// ------------------------------------------------------ conservative bail

// Armed sanitizer: never tapes (reports could perturb accounting).
TEST(PlanReplay, SanitizerKeepsLivePath) {
  const u64 n = 1u << 10;
  sim::Device dev;
  dev.sanitizer().configure(observe_only_sanitizer());
  const MultisplitPlan plan(dev, n, 8);
  sim::DeviceBuffer<u32> in(dev, n), out(dev, n);
  const auto host = make_keys(n, 8, 3);
  for (u32 round = 0; round < 3; ++round) {
    std::copy(host.begin(), host.end(), in.host().begin());
    plan.run(in, out, RangeBucket{8});
    EXPECT_STREQ(plan.replay_phase(), "idle");
  }
}

// Chaos armed (even with all probabilities zero): never tapes.
TEST(PlanReplay, ChaosKeepsLivePath) {
  const u64 n = 1u << 10;
  sim::Device dev;
  dev.enable_chaos(sim::ChaosPolicy{});
  const MultisplitPlan plan(dev, n, 8);
  sim::DeviceBuffer<u32> in(dev, n), out(dev, n);
  const auto host = make_keys(n, 8, 5);
  for (u32 round = 0; round < 3; ++round) {
    std::copy(host.begin(), host.end(), in.host().begin());
    plan.run(in, out, RangeBucket{8});
    EXPECT_STREQ(plan.replay_phase(), "idle");
  }
}

// The resilient entry points route around the tape entirely (retry loops
// re-launch kernels; taping them would record the retries too).
TEST(PlanReplay, ResilientRunsNeverTape) {
  const u64 n = 1u << 10;
  sim::Device dev;
  const MultisplitPlan plan(dev, n, 8);
  sim::DeviceBuffer<u32> in(dev, n), out(dev, n);
  const auto host = make_keys(n, 8, 11);
  const split::RetryPolicy rp;
  for (u32 round = 0; round < 3; ++round) {
    std::copy(host.begin(), host.end(), in.host().begin());
    plan.run(in, out, RangeBucket{8}, rp);
    EXPECT_STREQ(plan.replay_phase(), "idle");
  }
}

// Runs on buffers other than the recorded set execute live (the recorded
// sector streams are absolute addresses), but the recording survives:
// returning to the original buffers replays again, bit-identically.
TEST(PlanReplay, DifferentBuffersFallThroughLiveAndKeepTheTape) {
  const u64 n = 1u << 12;
  const u32 m = 16;

  sim::Device dev_r;
  if (!replay_expected(dev_r)) {
    GTEST_SKIP() << "environment pins the live path (MS_REPLAY=off or an "
                    "ambient sanitizer/chaos config)";
  }
  const MultisplitPlan plan_r(dev_r, n, m);
  sim::DeviceBuffer<u32> a_in(dev_r, n), a_out(dev_r, n);
  sim::DeviceBuffer<u32> b_in(dev_r, n), b_out(dev_r, n);

  sim::Device dev_l;
  dev_l.sanitizer().configure(observe_only_sanitizer());
  const MultisplitPlan plan_l(dev_l, n, m);
  sim::DeviceBuffer<u32> la_in(dev_l, n), la_out(dev_l, n);
  sim::DeviceBuffer<u32> lb_in(dev_l, n), lb_out(dev_l, n);

  // The twin mirrors the exact buffer sequence so device state (L2,
  // allocator) evolves identically on both sides.
  auto run_both = [&](u32 round, bool set_b) {
    const auto host = make_keys(n, m, 60000 + round);
    auto& ri = set_b ? b_in : a_in;
    auto& ro = set_b ? b_out : a_out;
    auto& li = set_b ? lb_in : la_in;
    auto& lo = set_b ? lb_out : la_out;
    std::copy(host.begin(), host.end(), ri.host().begin());
    std::copy(host.begin(), host.end(), li.host().begin());
    const auto rr = plan_r.run(ri, ro, RangeBucket{m});
    const auto rl = plan_l.run(li, lo, RangeBucket{m});
    EXPECT_EQ(rr.total_ms(), rl.total_ms()) << "round " << round;
    EXPECT_EQ(buffer_to_vector(ro), buffer_to_vector(lo)) << "round " << round;
    expect_valid_multisplit(host, buffer_to_vector(ro), rr.bucket_offsets, m,
                            RangeBucket{m}, true);
  };

  run_both(0, false);  // record on buffer set A
  run_both(1, false);  // verify on A
  ASSERT_TRUE(plan_r.replay_active());
  run_both(2, true);   // different buffers: live, tape kept
  EXPECT_TRUE(plan_r.replay_active());
  run_both(3, false);  // back on A: replays again
  run_both(4, true);   // and B stays live
  EXPECT_TRUE(plan_r.replay_active());
}

// A plan whose run faults during recording disables the fast path
// permanently instead of keeping a half-recorded tape.  The fault is a
// SimError -- the structured kind the launch helpers know how to unwind
// (an arbitrary foreign exception mid-kernel is not a supported recovery
// path for the device, tape or no tape).
TEST(PlanReplay, FaultDuringRecordingDisablesReplay) {
  const u64 n = 1u << 10;
  sim::Device dev;
  if (!replay_expected(dev)) {
    GTEST_SKIP() << "environment pins the live path (MS_REPLAY=off or an "
                    "ambient sanitizer/chaos config)";
  }
  const MultisplitPlan plan(dev, n, 8);
  sim::DeviceBuffer<u32> in(dev, n), out(dev, n);
  // Run 1 records... with a bucket function that faults mid-kernel.
  std::copy_n(make_keys(n, 8, 17).begin(), n, in.host().begin());
  u64 calls = 0;
  EXPECT_THROW(plan.run(in, out,
                        [&](u32 key) -> u32 {
                          if (++calls > n / 2) {
                            sim::FaultContext ctx;
                            ctx.kind = sim::FaultKind::kLaunchFailure;
                            ctx.detail = "injected mid-record fault";
                            throw sim::SimError(std::move(ctx));
                          }
                          return key % 8;
                        }),
               sim::SimError);
  EXPECT_STREQ(plan.replay_phase(), "disabled");
  // The plan still runs fine afterwards -- live.
  const auto host = make_keys(n, 8, 18);
  std::copy(host.begin(), host.end(), in.host().begin());
  const auto r = plan.run(in, out, RangeBucket{8});
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 8,
                          RangeBucket{8}, true);
  EXPECT_STREQ(plan.replay_phase(), "disabled");
}

// MS_REPLAY=off (the plan_replay_off_suite gate environment) must pin the
// live path for every plan in the process.
TEST(PlanReplay, EnvOffPinsLivePath) {
  if (replay_env_on()) GTEST_SKIP() << "only meaningful under MS_REPLAY=off";
  const u64 n = 1u << 10;
  sim::Device dev;
  const MultisplitPlan plan(dev, n, 8);
  sim::DeviceBuffer<u32> in(dev, n), out(dev, n);
  const auto host = make_keys(n, 8, 23);
  for (u32 round = 0; round < 3; ++round) {
    std::copy(host.begin(), host.end(), in.host().begin());
    plan.run(in, out, RangeBucket{8});
    EXPECT_STREQ(plan.replay_phase(), "idle");
  }
}

}  // namespace
}  // namespace ms::test
