// Workload generator properties.
#include <gtest/gtest.h>

#include "multisplit/bucket.hpp"
#include "workload/distributions.hpp"

namespace ms::workload {
namespace {

TEST(Distributions, UniformFillsAllBucketsEvenly) {
  WorkloadConfig cfg;
  cfg.m = 8;
  const auto keys = generate_keys(80000, cfg);
  std::vector<u32> hist(8, 0);
  const split::RangeBucket b{8};
  for (u32 k : keys) hist[b(k)]++;
  for (u32 d = 0; d < 8; ++d) {
    EXPECT_NEAR(hist[d], 10000.0, 500.0) << "bucket " << d;
  }
}

TEST(Distributions, BinomialPeaksInTheMiddle) {
  WorkloadConfig cfg;
  cfg.dist = Distribution::kBinomial;
  cfg.m = 16;
  const auto keys = generate_keys(50000, cfg);
  std::vector<u32> hist(16, 0);
  const split::RangeBucket b{16};
  for (u32 k : keys) hist[b(k)]++;
  // B(15, 0.5): the central buckets dominate, the tails are nearly empty.
  EXPECT_GT(hist[7] + hist[8], hist[0] + hist[1] + hist[14] + hist[15]);
  EXPECT_GT(hist[7], 5000u);
  EXPECT_LT(hist[0], 100u);
}

TEST(Distributions, SkewedOnePutsMassInOneBucket) {
  WorkloadConfig cfg;
  cfg.dist = Distribution::kSkewedOne;
  cfg.m = 8;
  const auto keys = generate_keys(40000, cfg);
  std::vector<u32> hist(8, 0);
  const split::RangeBucket b{8};
  for (u32 k : keys) hist[b(k)]++;
  // ~75% + 25%/8 in the heavy bucket (m/2).
  EXPECT_NEAR(hist[4], 40000 * (0.75 + 0.25 / 8), 600.0);
}

TEST(Distributions, IdentityKeysAreSmall) {
  WorkloadConfig cfg;
  cfg.dist = Distribution::kIdentity;
  cfg.m = 10;
  const auto keys = generate_keys(1000, cfg);
  for (u32 k : keys) EXPECT_LT(k, 10u);
}

TEST(Distributions, SortedUniformIsSorted) {
  WorkloadConfig cfg;
  cfg.dist = Distribution::kSortedUniform;
  const auto keys = generate_keys(10000, cfg);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(Distributions, SeedsAreReproducibleAndDistinct) {
  WorkloadConfig a, b;
  a.seed = 1;
  b.seed = 2;
  const auto k1 = generate_keys(1000, a);
  const auto k1_again = generate_keys(1000, a);
  const auto k2 = generate_keys(1000, b);
  EXPECT_EQ(k1, k1_again);
  EXPECT_NE(k1, k2);
}

TEST(Distributions, IdentityValuesAreIota) {
  const auto v = identity_values(100);
  for (u32 i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

}  // namespace
}  // namespace ms::workload
