// Contract of the async batched serving executor (multisplit/serving.hpp)
// and its fused sub-warp/warp packing kernels (multisplit/batch_ms.hpp):
//
//   * batched outputs (keys + bucket offsets) are bit-identical to the
//     sequential plan path's, request by request;
//   * per-problem Method::kAuto resolves to the SAME method_selected a
//     sequential plan.run() records;
//   * the reported per-problem modeled cost is f64-bitwise invariant
//     across batch sizes and compositions;
//   * the whole serving pass is bit-identical at 1 and 4 host threads
//     (gated again by batch_suite_mt4 / the MS_SANITIZE=all variant);
//   * per-request attribution spans nest directly under the fused launch
//     span;
//   * a faulted fused launch retries only its own problems; permanent
//     (caller) errors fail without poisoning the rest of the batch;
//   * BatchStats flows into the schema-v8 "batching" metrics block.
#include <gtest/gtest.h>

#include <sstream>

#include "multisplit/multisplit.hpp"
#include "multisplit/plan.hpp"
#include "multisplit/serving.hpp"
#include "sim/chaos.hpp"
#include "sim/metrics.hpp"
#include "sim/span.hpp"
#include "workload/distributions.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::PackClass;

struct Stream {
  std::vector<std::vector<u32>> keys;
  std::vector<u32> ms;
};

/// The serving-shape mix from bench/batch_serving.cpp: sub-warp class
/// (n <= 8, m <= 8), warp class, and shapes resolving to both kAuto
/// outcomes.
Stream make_stream(u64 count, u64 seed = 0xABCDE) {
  static constexpr u64 kNs[] = {5, 8, 32, 96, 256, 1024};
  static constexpr u32 kMs[] = {2, 3, 4, 8, 16, 32};
  Stream s;
  workload::WorkloadConfig wc;
  for (u64 i = 0; i < count; ++i) {
    const u32 m = kMs[(i / 6) % 6];
    wc.m = m;
    wc.seed = seed + i * 7919;
    s.ms.push_back(m);
    s.keys.push_back(workload::generate_keys(kNs[i % 6], wc));
  }
  return s;
}

struct SeqRef {
  std::vector<u32> keys_out;
  std::vector<u32> offsets;
  Method selected = Method::kAuto;
};

/// Sequential reference: a fresh device, one kAuto plan per request, the
/// type-erased run -- exactly the serving executor's unpacked fallback.
SeqRef run_sequential(const std::vector<u32>& keys, u32 m) {
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(keys), "in");
  sim::DeviceBuffer<u32> out(dev, keys.size(), "out");
  split::MultisplitConfig cfg;
  cfg.method = Method::kAuto;
  const split::MultisplitPlan plan(dev, keys.size(), m, cfg);
  const split::BucketFunction fn = split::RangeBucket{m};
  const split::MultisplitResult r = plan.run(in, out, fn);
  SeqRef ref;
  const std::span<const u32> ho = std::as_const(out).host();
  ref.keys_out.assign(ho.begin(), ho.end());
  ref.offsets = r.bucket_offsets;
  ref.selected = r.method_selected;
  return ref;
}

/// One serving pass over `s` with max_batch = batch; returns the results
/// in submit order.
std::vector<split::ServeResult> serve_all(sim::Device& dev, const Stream& s,
                                          u32 batch) {
  split::ServingPolicy policy;
  policy.max_batch = batch;
  policy.max_linger_ms = 1e9;  // flush on size only
  split::ServingExecutor exec(dev, policy);
  std::vector<split::ServeTicket> tickets;
  for (u64 i = 0; i < s.keys.size(); ++i) {
    tickets.push_back(
        exec.submit(s.keys[i], s.ms[i], split::RangeBucket{s.ms[i]}));
  }
  exec.drain();
  std::vector<split::ServeResult> out;
  for (const auto t : tickets) out.push_back(exec.get(t));
  return out;
}

TEST(BatchServing, PackClassification) {
  // Sub-warp slot: tiny n and m, any stable method.
  EXPECT_EQ(split::classify_packing(5, 4, Method::kWarpLevel),
            PackClass::kSub);
  EXPECT_EQ(split::classify_packing(8, 8, Method::kBlockLevel),
            PackClass::kSub);
  // One-warp problems up to the serving shape bounds.
  EXPECT_EQ(split::classify_packing(9, 4, Method::kWarpLevel),
            PackClass::kWarp);
  EXPECT_EQ(split::classify_packing(4096, 32, Method::kBlockLevel),
            PackClass::kWarp);
  // Outside the serving shape, or a method whose output order the fused
  // stable partition cannot reproduce: ordinary plan path.
  EXPECT_EQ(split::classify_packing(4097, 8, Method::kWarpLevel),
            PackClass::kNone);
  EXPECT_EQ(split::classify_packing(64, 33, Method::kWarpLevel),
            PackClass::kNone);
  EXPECT_EQ(split::classify_packing(0, 8, Method::kWarpLevel),
            PackClass::kNone);
  EXPECT_EQ(split::classify_packing(64, 8, Method::kRandomizedInsertion),
            PackClass::kNone);
}

// Satellite (b): per-problem kAuto inside a packed batch records the same
// method_selected as a sequential plan.run of the same problem.
TEST(BatchServing, AutoSelectionMatchesSequential) {
  const Stream s = make_stream(48);
  sim::Device dev;
  const auto results = serve_all(dev, s, 48);
  u64 packed = 0;
  for (u64 i = 0; i < s.keys.size(); ++i) {
    ASSERT_FALSE(results[i].failed) << results[i].error;
    const SeqRef ref = run_sequential(s.keys[i], s.ms[i]);
    EXPECT_EQ(results[i].method_selected, ref.selected) << "request " << i;
    packed += results[i].packed ? 1 : 0;
  }
  // The mix must actually exercise the fused path, not fall back.
  EXPECT_GT(packed, 0u);
  EXPECT_EQ(dev.batch_stats().packed_problems, packed);
}

// Tolerance-0 output parity: batched == sequential, key for key.
TEST(BatchServing, BatchedMatchesSequentialBitwise) {
  const Stream s = make_stream(36);
  sim::Device dev;
  const auto results = serve_all(dev, s, 36);
  for (u64 i = 0; i < s.keys.size(); ++i) {
    ASSERT_FALSE(results[i].failed) << results[i].error;
    const SeqRef ref = run_sequential(s.keys[i], s.ms[i]);
    EXPECT_EQ(results[i].keys_out, ref.keys_out) << "request " << i;
    EXPECT_EQ(results[i].bucket_offsets, ref.offsets) << "request " << i;
  }
}

// The reported per-problem cost is a closed form of (profile, n, m,
// class): f64-bitwise identical whether the problem shares its fused
// launch with 0 or 100 neighbours.
TEST(BatchServing, ModeledCostInvariantAcrossBatchSizes) {
  const Stream s = make_stream(30);
  sim::Device d1, d2, d3;
  const auto r1 = serve_all(d1, s, 1);
  const auto r8 = serve_all(d2, s, 8);
  const auto r30 = serve_all(d3, s, 30);
  for (u64 i = 0; i < s.keys.size(); ++i) {
    ASSERT_FALSE(r1[i].failed || r8[i].failed || r30[i].failed);
    EXPECT_EQ(r1[i].modeled_cost_ms, r8[i].modeled_cost_ms) << i;
    EXPECT_EQ(r1[i].modeled_cost_ms, r30[i].modeled_cost_ms) << i;
    EXPECT_EQ(r1[i].pack_class, r30[i].pack_class) << i;
  }
  // ...while the device-clock win from fusing is real: one launch
  // sequence for many problems beats one per problem.
  EXPECT_LT(d3.lifetime_ms(), d1.lifetime_ms());
}

// Tickets complete asynchronously: nothing runs before a flush point,
// get() forces one.
TEST(BatchServing, AsyncCompletionObservable) {
  const Stream s = make_stream(3);
  sim::Device dev;
  split::ServingPolicy policy;
  policy.max_batch = 64;
  policy.max_linger_ms = 1e9;
  split::ServingExecutor exec(dev, policy);
  std::vector<split::ServeTicket> tickets;
  for (u64 i = 0; i < s.keys.size(); ++i) {
    tickets.push_back(
        exec.submit(s.keys[i], s.ms[i], split::RangeBucket{s.ms[i]}));
  }
  EXPECT_EQ(exec.pending(), 3u);
  for (const auto t : tickets) EXPECT_FALSE(exec.ready(t));
  EXPECT_EQ(dev.lifetime_launches(), 0u);  // truly deferred: nothing ran
  const split::ServeResult& r0 = exec.get(tickets[0]);  // forces the flush
  EXPECT_FALSE(r0.failed);
  EXPECT_EQ(exec.pending(), 0u);
  for (const auto t : tickets) EXPECT_TRUE(exec.ready(t));
  EXPECT_EQ(exec.get(tickets[2]).batch_size, 3u);
}

// The linger trigger is measured on the VIRTUAL clock: a queued request
// aged by foreground launches flushes at the next submit.
TEST(BatchServing, LingerFlushOnVirtualClock) {
  const Stream s = make_stream(2);
  sim::Device dev;
  split::ServingPolicy policy;
  policy.max_batch = 1000;
  policy.max_linger_ms = 0.001;
  split::ServingExecutor exec(dev, policy);
  const auto t0 =
      exec.submit(s.keys[0], s.ms[0], split::RangeBucket{s.ms[0]});
  EXPECT_FALSE(exec.ready(t0));  // nothing aged it yet
  // Foreground work advances the virtual clock past the linger budget.
  const auto keys = workload::generate_keys(1 << 12, {});
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(keys), "fg.in");
  sim::DeviceBuffer<u32> out(dev, keys.size(), "fg.out");
  split::multisplit_keys(dev, in, out, 8, split::RangeBucket{8});
  const auto t1 =
      exec.submit(s.keys[1], s.ms[1], split::RangeBucket{s.ms[1]});
  EXPECT_TRUE(exec.ready(t0));  // the aged request flushed at submit
  EXPECT_TRUE(exec.ready(t1));  // ... taking the fresh one with it
  EXPECT_EQ(exec.get(t0).batch_size, 2u);
}

/// Serving-pass fingerprint: every result field that must be
/// thread-count-invariant, plus the device's modeled clock and stats.
std::string fingerprint(sim::Device& dev,
                        const std::vector<split::ServeResult>& results) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& r : results) {
    os << static_cast<u32>(r.pack_class) << ' ' << r.packed << ' '
       << r.failed << ' ' << split::method_token(r.method_selected) << ' '
       << r.modeled_cost_ms << ' ' << r.batch_id << ' ' << r.batch_size
       << ' ' << r.retry_rounds << '\n';
    for (const u32 k : r.keys_out) os << k << ' ';
    for (const u32 o : r.bucket_offsets) os << o << ' ';
    os << '\n';
  }
  const sim::BatchStats& bs = dev.batch_stats();
  os << bs.batches << ' ' << bs.packed_problems << ' '
     << bs.unpacked_problems << ' ' << bs.fused_launches << ' '
     << bs.slots_filled << ' ' << bs.slots_total << ' '
     << bs.problems_retried << '\n';
  os << dev.lifetime_ms() << '\n';
  return os.str();
}

// Satellite (c): the whole pass -- outputs, costs, stats, the virtual
// clock -- is bit-identical at 1 and 4 simulator worker threads.  The
// batch_suite_mt4 / sanitize gates rerun this file under
// MS_HOST_THREADS=4 and MS_SANITIZE=all on top.
TEST(BatchServingDeterminism, SerialVsFourThreads) {
  const Stream s = make_stream(40);
  auto pass = [&](u32 threads) {
    sim::Device dev;
    dev.set_host_threads(threads);
    const auto results = serve_all(dev, s, 16);
    return fingerprint(dev, results);
  };
  EXPECT_EQ(pass(1), pass(4));
}

// Per-request attribution spans nest DIRECTLY under the fused launch
// span, one per packed problem, tiling the launch interval.
TEST(BatchServing, SpansNestUnderFusedLaunch) {
  Stream s;  // 6 sub-warp problems -> exactly one fused sub launch
  workload::WorkloadConfig wc;
  for (u64 i = 0; i < 6; ++i) {
    wc.m = 4;
    wc.seed = 77 + i;
    s.ms.push_back(4);
    s.keys.push_back(workload::generate_keys(5 + (i % 4), wc));
  }
  sim::Device dev;
  sim::SpanRecorder& rec = dev.enable_spans();
  const auto results = serve_all(dev, s, 6);
  for (const auto& r : results) ASSERT_FALSE(r.failed) << r.error;

  u64 launch_id = 0;
  f64 launch_begin = 0.0, launch_end = 0.0;
  for (const auto& sp : rec.spans()) {
    if (sp.kind == sim::SpanKind::kLaunch &&
        sp.name.find("batch_ms_sub") != std::string::npos) {
      EXPECT_EQ(launch_id, 0u) << "one fused launch expected";
      launch_id = sp.span_id;
      launch_begin = sp.begin_ms;
      launch_end = sp.end_ms;
    }
  }
  ASSERT_NE(launch_id, 0u) << "fused sub launch span not recorded";

  std::vector<const sim::SpanRecord*> children;
  for (const auto& sp : rec.spans()) {
    if (sp.parent_id == launch_id && sp.kind == sim::SpanKind::kRequest) {
      children.push_back(&sp);
    }
  }
  ASSERT_EQ(children.size(), s.keys.size());
  f64 cursor = launch_begin;
  for (const auto* sp : children) {
    EXPECT_TRUE(sp->closed);
    EXPECT_DOUBLE_EQ(sp->begin_ms, cursor);  // contiguous tiling
    EXPECT_LE(sp->end_ms, launch_end + 1e-12);
    cursor = sp->end_ms;
    // Each attribution span is named after the problem's resolved method.
    EXPECT_FALSE(split::parse_method(sp->name) == std::nullopt ||
                 *split::parse_method(sp->name) == Method::kAuto);
  }
  EXPECT_DOUBLE_EQ(cursor, launch_end);
}

// A faulted fused launch retries ONLY its own problems: the sub-class
// launch aborts once, its problems succeed on round 1, and the warp-class
// problems of the same batch never retry.
TEST(BatchServing, FaultedFusedLaunchRetriesOnlyAffected) {
  const Stream s = make_stream(24);  // mixes sub and warp classes
  sim::Device dev;
  dev.enable_chaos(sim::ChaosPolicy{});  // armed, all probabilities zero
  split::ServingPolicy policy;
  policy.max_batch = 1000;
  policy.max_linger_ms = 1e9;
  split::ServingExecutor exec(dev, policy);
  std::vector<split::ServeTicket> tickets;
  for (u64 i = 0; i < s.keys.size(); ++i) {
    tickets.push_back(
        exec.submit(s.keys[i], s.ms[i], split::RangeBucket{s.ms[i]}));
  }
  // The first launch of the flush is the fused sub-warp launch.
  dev.chaos()->arm_launch_abort();
  exec.drain();

  u64 sub = 0, warp = 0;
  for (u64 i = 0; i < tickets.size(); ++i) {
    const split::ServeResult& r = exec.get(tickets[i]);
    ASSERT_FALSE(r.failed) << "request " << i << ": " << r.error;
    const SeqRef ref = run_sequential(s.keys[i], s.ms[i]);
    EXPECT_EQ(r.keys_out, ref.keys_out) << "request " << i;
    if (r.pack_class == PackClass::kSub) {
      EXPECT_EQ(r.retry_rounds, 1u) << "request " << i;
      sub += 1;
    } else {
      EXPECT_EQ(r.retry_rounds, 0u) << "request " << i;
      warp += r.pack_class == PackClass::kWarp ? 1 : 0;
    }
  }
  EXPECT_GT(sub, 0u);
  EXPECT_GT(warp, 0u);
  EXPECT_EQ(dev.batch_stats().problems_retried, sub);
}

// A caller error (bucket function out of range) fails permanently --
// no retry rounds burned -- without touching its batch neighbours.
TEST(BatchServing, CallerErrorFailsWithoutPoisoningBatch) {
  Stream s = make_stream(8);
  sim::Device dev;
  split::ServingPolicy policy;
  policy.max_batch = 1000;
  policy.max_linger_ms = 1e9;
  split::ServingExecutor exec(dev, policy);
  std::vector<split::ServeTicket> tickets;
  for (u64 i = 0; i < s.keys.size(); ++i) {
    tickets.push_back(
        exec.submit(s.keys[i], s.ms[i], split::RangeBucket{s.ms[i]}));
  }
  // Bucket function maps everything to m (one past the last bucket).
  const u32 bad_m = 4;
  const auto bad = exec.submit({1, 2, 3, 4, 5}, bad_m,
                               [](u32) { return bad_m; });
  exec.drain();
  const split::ServeResult& rb = exec.get(bad);
  EXPECT_TRUE(rb.failed);
  EXPECT_EQ(rb.retry_rounds, 0u);  // deterministic error: no retry can cure
  EXPECT_NE(rb.error.find("outside [0, m)"), std::string::npos) << rb.error;
  for (u64 i = 0; i < tickets.size(); ++i) {
    const split::ServeResult& r = exec.get(tickets[i]);
    EXPECT_FALSE(r.failed) << "victim request " << i << ": " << r.error;
    const SeqRef ref = run_sequential(s.keys[i], s.ms[i]);
    EXPECT_EQ(r.keys_out, ref.keys_out) << "request " << i;
  }
  EXPECT_EQ(dev.batch_stats().problems_retried, 0u);
}

// Satellite (f): BatchStats flows into the schema-v8 metrics report and
// its "batching" JSON block.
TEST(BatchServing, MetricsReportCarriesBatchingBlock) {
  EXPECT_EQ(sim::kReportSchemaVersion, 8u);
  const Stream s = make_stream(20);
  sim::Device dev;
  const auto results = serve_all(dev, s, 20);
  for (const auto& r : results) ASSERT_FALSE(r.failed);

  const sim::MetricsReport rep = sim::analyze_device(dev);
  const sim::BatchStats& bs = dev.batch_stats();
  EXPECT_EQ(rep.batching.batches, bs.batches);
  EXPECT_EQ(rep.batching.packed_problems, bs.packed_problems);
  EXPECT_EQ(rep.batching.fused_launches, bs.fused_launches);
  EXPECT_EQ(rep.batching.slots_filled, bs.slots_filled);
  EXPECT_GE(bs.fill_ratio(), 0.0);
  EXPECT_LE(bs.fill_ratio(), 1.0);

  std::ostringstream os;
  sim::JsonWriter w(os);
  w.begin_object();
  sim::write_metrics_json(w, rep);
  w.end_object();
  const std::string json = os.str();
  EXPECT_NE(json.find("\"batching\""), std::string::npos);
  EXPECT_NE(json.find("\"fused_launches\""), std::string::npos);
  EXPECT_NE(json.find("\"fill_ratio\""), std::string::npos);
}

}  // namespace
}  // namespace ms::test
