// Randomized stress sweep: for a set of seeds, draw random (method, m, n,
// distribution, NW, items-per-thread, value width) configurations and
// check the full multisplit contract on each.  This is the net under the
// targeted suites -- anything the structured tests miss tends to show up
// here first.
#include <gtest/gtest.h>

#include <random>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;

class Fuzz : public ::testing::TestWithParam<u32> {};

TEST_P(Fuzz, RandomConfigurationsHoldTheContract) {
  std::mt19937_64 rng(GetParam() * 0x9E3779B9u + 1);
  for (int iter = 0; iter < 6; ++iter) {
    const Method methods[] = {Method::kDirect,
                              Method::kWarpLevel,
                              Method::kBlockLevel,
                              Method::kRecursiveScanSplit,
                              Method::kReducedBitSort,
                              Method::kRandomizedInsertion,
                              Method::kFusedBucketSort};
    const Method meth = methods[rng() % std::size(methods)];
    const bool big_m_ok = (meth == Method::kBlockLevel ||
                           meth == Method::kReducedBitSort ||
                           meth == Method::kFusedBucketSort ||
                           meth == Method::kRecursiveScanSplit ||
                           meth == Method::kDirect);
    const u32 m = 1 + static_cast<u32>(rng() % (big_m_ok ? 100 : 32));
    const u64 n = 1 + rng() % 50000;
    const workload::Distribution dists[] = {
        workload::Distribution::kUniform, workload::Distribution::kBinomial,
        workload::Distribution::kSkewedOne,
        workload::Distribution::kSortedUniform};
    workload::WorkloadConfig wc;
    wc.dist = dists[rng() % std::size(dists)];
    wc.m = m;
    wc.seed = rng();
    const auto host = workload::generate_keys(n, wc);

    MultisplitConfig cfg;
    cfg.method = meth;
    cfg.warps_per_block = 1u << (rng() % 4);  // 1, 2, 4, 8
    cfg.items_per_thread = 1u << (rng() % 3);
    cfg.block_items_per_thread = 1u << (rng() % 3);

    SCOPED_TRACE(::testing::Message()
                 << to_string(meth) << " m=" << m << " n=" << n << " dist="
                 << workload::to_string(wc.dist) << " nw="
                 << cfg.warps_per_block << " ipt=" << cfg.items_per_thread);

    const bool kv = (meth != Method::kRandomizedInsertion) && (rng() % 2);
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    if (!kv) {
      const auto r =
          split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg);
      expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets,
                              m, RangeBucket{m}, is_stable(meth));
    } else if (rng() % 2) {
      const auto vals = workload::identity_values(n);
      sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals));
      sim::DeviceBuffer<u32> kout(dev, n), vout(dev, n);
      const auto r = split::multisplit_pairs(dev, in, vin, kout, vout, m,
                                             RangeBucket{m}, cfg);
      expect_valid_multisplit(host, buffer_to_vector(kout), r.bucket_offsets,
                              m, RangeBucket{m}, true);
      for (u64 i = 0; i < n; ++i) ASSERT_EQ(kout[i], host[vout[i]]);
    } else {
      sim::DeviceBuffer<u64> vin(dev, n), vout(dev, n);
      for (u64 i = 0; i < n; ++i) vin[i] = (u64{0xA5} << 32) | i;
      sim::DeviceBuffer<u32> kout(dev, n);
      const auto r = split::multisplit_pairs(dev, in, vin, kout, vout, m,
                                             RangeBucket{m}, cfg);
      expect_valid_multisplit(host, buffer_to_vector(kout), r.bucket_offsets,
                              m, RangeBucket{m}, true);
      for (u64 i = 0; i < n; ++i) {
        ASSERT_EQ(vout[i] >> 32, 0xA5u);
        ASSERT_EQ(kout[i], host[vout[i] & 0xFFFFFFFF]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(1u, 17u));

}  // namespace
}  // namespace ms::test
