// Telemetry layer: histogram percentile math against closed forms, the
// registry/sampler mechanics, and the observe-only contract -- enabling
// telemetry must keep every modeled quantity bit-identical, serially and
// under the 4-thread scheduler.
#include <gtest/gtest.h>

#include <sstream>

#include "multisplit/multisplit.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "workload/distributions.hpp"

namespace ms::test {
namespace {

using sim::LatencyHistogram;

// --- bucket geometry -------------------------------------------------------

TEST(LatencyHistogramBuckets, LinearRegionIsExact) {
  for (u64 v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    const u32 idx = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(idx, static_cast<u32>(v));
    EXPECT_EQ(LatencyHistogram::bucket_lower(idx), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(idx), v);
  }
}

TEST(LatencyHistogramBuckets, EveryValueLandsInsideItsBucket) {
  for (const u64 v : {u64{32}, u64{33}, u64{100}, u64{500}, u64{1000},
                      u64{999999}, u64{1} << 20, (u64{1} << 40) + 12345,
                      ~u64{0}}) {
    const u32 idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::kBucketCount) << v;
    EXPECT_LE(LatencyHistogram::bucket_lower(idx), v) << v;
    EXPECT_GE(LatencyHistogram::bucket_upper(idx), v) << v;
    // Log-linear bound: bucket width / lower bound <= 1 / 2^kSubBits.
    const f64 lo = static_cast<f64>(LatencyHistogram::bucket_lower(idx));
    const f64 hi = static_cast<f64>(LatencyHistogram::bucket_upper(idx));
    EXPECT_LE((hi - lo) / lo, 1.0 / LatencyHistogram::kSubBuckets + 1e-12)
        << v;
  }
}

TEST(LatencyHistogramBuckets, BucketsTileContiguously) {
  for (u32 idx = 0; idx + 1 < 512; ++idx) {
    EXPECT_EQ(LatencyHistogram::bucket_upper(idx) + 1,
              LatencyHistogram::bucket_lower(idx + 1))
        << idx;
  }
}

// --- closed-form percentiles ----------------------------------------------

TEST(LatencyHistogramPercentiles, UniformClosedForm) {
  LatencyHistogram h;
  for (u64 v = 1; v <= 1000; ++v) h.record_ticks(v);
  const auto s = h.snapshot();
  ASSERT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min_ticks, 1u);
  EXPECT_EQ(s.max_ticks, 1000u);
  // percentile = upper bound of the bucket holding rank ceil(p/100 * n),
  // clamped to the recorded maximum.
  const auto upper_of = [](u64 v) {
    return LatencyHistogram::bucket_upper(LatencyHistogram::bucket_index(v));
  };
  EXPECT_EQ(s.percentile_ticks(50.0), upper_of(500));    // rank 500
  EXPECT_EQ(s.percentile_ticks(95.0), upper_of(950));    // rank 950
  EXPECT_EQ(s.percentile_ticks(99.0), upper_of(990));    // rank 990
  EXPECT_EQ(s.percentile_ticks(99.9), 1000u);  // rank 999, clamped to max
  EXPECT_EQ(s.percentile_ticks(100.0), 1000u);
  // The log-linear quantization bound holds at every percentile.
  for (const f64 p : {50.0, 95.0, 99.0, 99.9}) {
    const u64 rank_value = static_cast<u64>(p * 10.0);
    const f64 got = static_cast<f64>(s.percentile_ticks(p));
    EXPECT_GE(got, static_cast<f64>(rank_value)) << p;
    EXPECT_LE(got, static_cast<f64>(rank_value) *
                       (1.0 + 1.0 / LatencyHistogram::kSubBuckets))
        << p;
  }
}

TEST(LatencyHistogramPercentiles, BimodalClosedForm) {
  LatencyHistogram h;
  for (u32 i = 0; i < 500; ++i) h.record_ticks(10);        // fast mode
  for (u32 i = 0; i < 500; ++i) h.record_ticks(1000000);   // slow mode
  const auto s = h.snapshot();
  ASSERT_EQ(s.count, 1000u);
  // Rank 500 is the last fast sample: value 10 sits in the linear region,
  // so its bucket is exact.
  EXPECT_EQ(s.percentile_ticks(50.0), 10u);
  // Every higher percentile is the slow mode, clamped to the exact max.
  EXPECT_EQ(s.percentile_ticks(95.0), 1000000u);
  EXPECT_EQ(s.percentile_ticks(99.0), 1000000u);
  EXPECT_EQ(s.percentile_ticks(99.9), 1000000u);
}

TEST(LatencyHistogramPercentiles, SingleSampleIsExactEverywhere) {
  LatencyHistogram h;
  h.record_ticks(777);
  const auto s = h.snapshot();
  ASSERT_EQ(s.count, 1u);
  for (const f64 p : {0.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(s.percentile_ticks(p), 777u) << p;
  }
  EXPECT_EQ(s.min_ticks, 777u);
  EXPECT_EQ(s.max_ticks, 777u);
}

TEST(LatencyHistogramPercentiles, EmptyIsZero) {
  LatencyHistogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min_ticks, 0u);
  EXPECT_EQ(s.max_ticks, 0u);
  for (const f64 p : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(s.percentile_ticks(p), 0u) << p;
  }
}

TEST(LatencyHistogramPercentiles, MsRoundTrip) {
  LatencyHistogram h;
  h.record_ms(1.5);  // 1.5 ms == 1'500'000 ns ticks
  const auto s = h.snapshot();
  EXPECT_EQ(s.max_ticks, 1500000u);
  const f64 p50 = s.percentile_ms(50.0);
  EXPECT_GE(p50, 1.5);
  EXPECT_LE(p50, 1.5 * (1.0 + 1.0 / LatencyHistogram::kSubBuckets));
}

// --- registry & sampler ----------------------------------------------------

TEST(TelemetryRegistry, NamedInstrumentsDeduplicate) {
  sim::Telemetry t;
  t.counter("a").add(3);
  t.counter("a").add(4);
  EXPECT_EQ(t.counter("a").value(), 7u);
  t.gauge("g").set(2.5);
  EXPECT_EQ(t.gauge("g").value(), 2.5);
  t.histogram("h").record_ticks(5);
  EXPECT_EQ(t.histogram("h").count(), 1u);
}

TEST(TelemetryRegistry, SampleCapturesInstrumentsAndProviders) {
  sim::Telemetry t;
  t.counter("events").add(11);
  t.gauge("depth").set(3.0);
  t.add_provider([](std::vector<sim::ScalarSample>& out, f64) {
    out.push_back({"derived.x", 42.0});
  });
  t.sample_now();
  ASSERT_NE(t.latest(), nullptr);
  const auto& snap = *t.latest();
  const auto find = [&](std::string_view name) -> f64 {
    for (const auto& s : snap.scalars) {
      if (s.name == name) return s.value;
    }
    return -1.0;
  };
  EXPECT_EQ(find("events"), 11.0);
  EXPECT_EQ(find("depth"), 3.0);
  EXPECT_EQ(find("derived.x"), 42.0);
}

TEST(TelemetryRegistry, RingEvictsOldestAndCountsDrops) {
  sim::TelemetryConfig cfg;
  cfg.ring_capacity = 4;
  sim::Telemetry t(cfg);
  for (u32 i = 0; i < 10; ++i) t.sample_now();
  EXPECT_EQ(t.timeline().size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(t.timeline().front().seq, 6u);  // seq survives eviction
  EXPECT_EQ(t.timeline().back().seq, 9u);
}

// --- the observe-only contract --------------------------------------------

/// Everything modeled, as one diffable string (the idiom of
/// test_parallel_determinism.cpp, trimmed to what telemetry could plausibly
/// perturb: kernel log with exact times and counters, plus the metrics
/// report JSON).
std::string modeled_snapshot(sim::Device& dev) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& r : dev.records()) {
    os << r.name << " t=" << r.time_ms << " mem=" << r.mem_time_ms
       << " issue=" << r.issue_time_ms << " rd=" << r.events.dram_read_tx
       << " wr=" << r.events.dram_write_tx
       << " l2r=" << r.events.l2_read_segments
       << " slots=" << r.events.issue_slots << "\n";
  }
  std::ostringstream json;
  sim::JsonWriter w(json);
  w.begin_object();
  sim::write_metrics_json(w, sim::analyze_device(dev));
  w.end_object();
  os << json.str();
  return os.str();
}

struct TelemetryRun {
  std::string snapshot;
  std::vector<u32> out;
  f64 total_ms = 0.0;
  u64 requests = 0;
};

TelemetryRun run_with(u32 host_threads, bool telemetry) {
  constexpr u64 n = u64{1} << 15;
  constexpr u32 m = 16;
  constexpr u32 kRuns = 3;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = 0x7E1E;
  const auto host = workload::generate_keys(n, wc);

  sim::Device dev;
  dev.set_host_threads(host_threads);
  if (telemetry) dev.enable_telemetry();
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  split::MultisplitConfig cfg;
  cfg.method = split::Method::kBlockLevel;
  const split::MultisplitPlan plan(dev, n, m, cfg);

  TelemetryRun res;
  for (u32 i = 0; i < kRuns; ++i) {
    const auto r = plan.run(in, out, split::RangeBucket{m});
    res.total_ms += r.total_ms();
  }
  res.snapshot = modeled_snapshot(dev);
  res.out.assign(out.host().begin(), out.host().end());
  if (telemetry) {
    dev.telemetry()->sample_now();
    for (const auto& h : dev.telemetry()->latest()->histograms) {
      if (h.name == "request.modeled_ms") res.requests = h.count;
    }
  }
  return res;
}

TEST(TelemetryDeterminism, OnVsOffBitIdenticalSerialAndMt4) {
  const TelemetryRun off1 = run_with(1, /*telemetry=*/false);
  const TelemetryRun on1 = run_with(1, /*telemetry=*/true);
  const TelemetryRun off4 = run_with(4, /*telemetry=*/false);
  const TelemetryRun on4 = run_with(4, /*telemetry=*/true);

  // Telemetry on/off: bit-identical modeled state, serially...
  EXPECT_EQ(off1.snapshot, on1.snapshot);
  EXPECT_EQ(off1.total_ms, on1.total_ms);
  EXPECT_EQ(off1.out, on1.out);
  // ...and under the 4-thread scheduler...
  EXPECT_EQ(off4.snapshot, on4.snapshot);
  EXPECT_EQ(off4.total_ms, on4.total_ms);
  EXPECT_EQ(off4.out, on4.out);
  // ...and the scheduler itself stays invisible with telemetry armed.
  EXPECT_EQ(on1.snapshot, on4.snapshot);
  EXPECT_EQ(on1.total_ms, on4.total_ms);

  // The instrumentation itself saw every request in both modes.
  EXPECT_EQ(on1.requests, 3u);
  EXPECT_EQ(on4.requests, 3u);
}

/// The request bracket feeds the modeled-latency histogram with modeled
/// (deterministic) values: the recorded percentile digests must agree
/// between a serial and a 4-thread run.
TEST(TelemetryDeterminism, ModeledLatencyDigestMatchesAcrossThreadCounts) {
  const auto digest = [](u32 threads) {
    constexpr u64 n = u64{1} << 14;
    constexpr u32 m = 8;
    workload::WorkloadConfig wc;
    wc.m = m;
    wc.seed = 99;
    const auto host = workload::generate_keys(n, wc);
    sim::Device dev;
    dev.set_host_threads(threads);
    sim::Telemetry& t = dev.enable_telemetry();
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    split::MultisplitConfig cfg;
    cfg.method = split::Method::kWarpLevel;
    const split::MultisplitPlan plan(dev, n, m, cfg);
    for (u32 i = 0; i < 5; ++i) plan.run(in, out, split::RangeBucket{m});
    const auto s = t.histogram("request.modeled_ms").snapshot();
    std::ostringstream os;
    os << s.count << ' ' << s.min_ticks << ' ' << s.max_ticks << ' '
       << s.percentile_ticks(50.0) << ' ' << s.percentile_ticks(99.0);
    return os.str();
  };
  EXPECT_EQ(digest(1), digest(4));
}

}  // namespace
}  // namespace ms::test
