// Delta-stepping SSSP: every bucketing strategy must be bit-exact with
// Dijkstra on every graph family, and the cost structure must reflect the
// paper's motivating observation (radix-sort bucketing is reorganization-
// dominated).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/sssp.hpp"

namespace ms::graph {
namespace {

struct SsspCase {
  const char* graph;
  BucketingStrategy strategy;

  friend std::ostream& operator<<(std::ostream& os, const SsspCase& c) {
    return os << c.graph << "/" << to_string(c.strategy);
  }
};

Csr make_graph(const std::string& name) {
  GenConfig gc;
  gc.max_weight = 100;
  if (name == "social") return social_like(1200, 7000, gc);
  if (name == "rmat") return rmat(10, 8000, gc);
  if (name == "low_diameter") return low_diameter(1500, 9000, gc);
  if (name == "grid") return grid2d(32, gc);
  fail("unknown graph");
}

class SsspStrategies : public ::testing::TestWithParam<SsspCase> {};

TEST_P(SsspStrategies, MatchesDijkstraExactly) {
  const auto c = GetParam();
  const Csr g = make_graph(c.graph);
  const auto ref = dijkstra(g, 0);
  sim::Device dev;
  SsspConfig cfg;
  cfg.strategy = c.strategy;
  const auto r = sssp_delta_stepping(dev, g, 0, cfg);
  ASSERT_EQ(r.dist, ref);
  EXPECT_GT(r.rounds, 0u);
  EXPECT_GT(r.total_ms, 0.0);
  EXPECT_GE(r.total_ms, r.reorg_ms);
}

std::vector<SsspCase> sssp_cases() {
  std::vector<SsspCase> cases;
  for (const char* graph : {"social", "rmat", "low_diameter", "grid"}) {
    for (const auto s :
         {BucketingStrategy::kMultisplit2, BucketingStrategy::kNearFar,
          BucketingStrategy::kRadixSort, BucketingStrategy::kMultisplit10}) {
      cases.push_back({graph, s});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Strategies, SsspStrategies,
                         ::testing::ValuesIn(sssp_cases()));

TEST(Sssp, DifferentSourcesAgreeWithDijkstra) {
  const Csr g = low_diameter(800, 5000);
  for (const u32 src : {0u, 17u, 799u}) {
    sim::Device dev;
    const auto r = sssp_delta_stepping(dev, g, src);
    ASSERT_EQ(r.dist, dijkstra(g, src)) << "source " << src;
  }
}

TEST(Sssp, DeltaSweepStaysCorrect) {
  const Csr g = social_like(600, 4000);
  const auto ref = dijkstra(g, 0);
  for (const u32 delta : {1u, 10u, 100u, 1000u, 100000u}) {
    sim::Device dev;
    SsspConfig cfg;
    cfg.delta = delta;
    const auto r = sssp_delta_stepping(dev, g, 0, cfg);
    ASSERT_EQ(r.dist, ref) << "delta " << delta;
  }
}

TEST(Sssp, LargerDeltaMeansFewerRounds) {
  const Csr g = grid2d(24);
  sim::Device dev1, dev2;
  SsspConfig small, large;
  small.delta = 20;
  large.delta = 2000;
  const auto r_small = sssp_delta_stepping(dev1, g, 0, small);
  const auto r_large = sssp_delta_stepping(dev2, g, 0, large);
  EXPECT_GT(r_small.rounds, r_large.rounds);
}

TEST(Sssp, RadixBucketingIsReorganizationDominated) {
  // Davidson et al.: "the reorganizational overhead takes 82% of the
  // runtime" with sort-based bucketing.  Require the dominant share.
  const Csr g = low_diameter(2000, 14000);
  sim::Device dev;
  SsspConfig cfg;
  cfg.strategy = BucketingStrategy::kRadixSort;
  const auto r = sssp_delta_stepping(dev, g, 0, cfg);
  EXPECT_GT(r.reorg_ms / r.total_ms, 0.6);
}

TEST(Sssp, MultisplitBucketingBeatsRadixSortBucketing) {
  const Csr g = low_diameter(2000, 14000);
  sim::Device dev1, dev2;
  SsspConfig ms2, radix;
  ms2.strategy = BucketingStrategy::kMultisplit2;
  radix.strategy = BucketingStrategy::kRadixSort;
  const auto r_ms = sssp_delta_stepping(dev1, g, 0, ms2);
  const auto r_radix = sssp_delta_stepping(dev2, g, 0, radix);
  EXPECT_LT(r_ms.total_ms, r_radix.total_ms);
}

TEST(Sssp, TrivialGraphs) {
  // Single vertex.
  {
    Csr g;
    g.num_vertices = 1;
    g.row_offsets = {0, 0};
    sim::Device dev;
    const auto r = sssp_delta_stepping(dev, g, 0);
    EXPECT_EQ(r.dist, (std::vector<u32>{0}));
  }
  // Disconnected pair.
  {
    Csr g;
    g.num_vertices = 2;
    g.row_offsets = {0, 0, 0};
    sim::Device dev;
    const auto r = sssp_delta_stepping(dev, g, 0);
    EXPECT_EQ(r.dist, (std::vector<u32>{0, kInfDist}));
  }
}

TEST(Sssp, RejectsBadSource) {
  const Csr g = grid2d(4);
  sim::Device dev;
  EXPECT_THROW(sssp_delta_stepping(dev, g, 1000), std::logic_error);
}

}  // namespace
}  // namespace ms::graph
