// Edge cases for all multisplit methods: tiny inputs, warp/block boundary
// sizes, m = 1, empty buckets, everything-in-one-bucket, identity keys,
// and configuration corners (NW, items_per_thread).
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;

const Method kAllMethods[] = {Method::kDirect,
                              Method::kWarpLevel,
                              Method::kBlockLevel,
                              Method::kRecursiveScanSplit,
                              Method::kReducedBitSort,
                              Method::kRandomizedInsertion,
                              Method::kFusedBucketSort};

class EdgeSizes : public ::testing::TestWithParam<u64> {};

TEST_P(EdgeSizes, AllMethodsHandleBoundarySizes) {
  const u64 n = GetParam();
  workload::WorkloadConfig wc;
  wc.seed = n;
  const auto host = workload::generate_keys(n, wc);
  for (const Method meth : kAllMethods) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    const auto r = split::multisplit_keys(dev, in, out, 4, RangeBucket{4}, cfg);
    expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 4,
                            RangeBucket{4}, is_stable(meth));
  }
}

// 1 element; sub-warp; warp-1; warp; warp+1; tile boundaries of the
// warp-coarsened (128) and block (256) subproblems; scan tile (2048).
INSTANTIATE_TEST_SUITE_P(BoundarySizes, EdgeSizes,
                         ::testing::Values(1ull, 5ull, 31ull, 32ull, 33ull,
                                           127ull, 128ull, 129ull, 255ull,
                                           256ull, 257ull, 2047ull, 2048ull,
                                           2049ull));

TEST(EdgeCases, SingleBucketIsIdentityPermutation) {
  const u64 n = 10000;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  for (const Method meth :
       {Method::kDirect, Method::kWarpLevel, Method::kBlockLevel,
        Method::kReducedBitSort}) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    const auto r = split::multisplit_keys(dev, in, out, 1, RangeBucket{1}, cfg);
    EXPECT_EQ(r.bucket_offsets, (std::vector<u32>{0, static_cast<u32>(n)}));
    // Stability with one bucket means the output IS the input.
    EXPECT_EQ(buffer_to_vector(out), host) << to_string(meth);
  }
}

TEST(EdgeCases, AllKeysInOneBucketOfMany) {
  const u64 n = 30000;
  std::vector<u32> host(n, 0x40000000u);  // all in bucket 2 of 8
  for (const Method meth : kAllMethods) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    const auto r = split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
    expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 8,
                            RangeBucket{8}, is_stable(meth));
    EXPECT_EQ(r.bucket_offsets[2], 0u);
    EXPECT_EQ(r.bucket_offsets[3], n);
  }
}

TEST(EdgeCases, EmptyMiddleBucketsReportZeroWidth) {
  // Keys only in buckets 0 and 7; offsets for 1..7 must collapse.
  const u64 n = 5000;
  std::vector<u32> host(n);
  for (u64 i = 0; i < n; ++i) host[i] = (i % 2 == 0) ? 0u : 0xFFFFFFFFu;
  for (const Method meth : kAllMethods) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    const auto r = split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
    expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 8,
                            RangeBucket{8}, is_stable(meth));
    for (u32 j = 1; j <= 7; ++j)
      EXPECT_EQ(r.bucket_offsets[j], n / 2) << to_string(meth) << " j=" << j;
  }
}

TEST(EdgeCases, IdentityBucketKeys) {
  // Keys drawn from {0..m-1} with identity buckets (Section 3.1's trivial
  // case) -- must still work through the general machinery.
  const u64 n = 20000;
  workload::WorkloadConfig wc;
  wc.dist = workload::Distribution::kIdentity;
  wc.m = 16;
  const auto host = workload::generate_keys(n, wc);
  for (const Method meth : kAllMethods) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    const auto r = split::multisplit_keys(dev, in, out, 16,
                                          split::IdentityBucket{}, cfg);
    expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 16,
                            split::IdentityBucket{}, is_stable(meth));
    // With identity buckets a valid multisplit is a full sort.
    for (u64 i = 1; i < n; ++i) ASSERT_LE(out[i - 1], out[i]);
  }
}

class ConfigSweep : public ::testing::TestWithParam<std::pair<u32, u32>> {};

TEST_P(ConfigSweep, WarpsPerBlockAndCoarsening) {
  const auto [nw, ipt] = GetParam();
  const u64 n = 40000;
  workload::WorkloadConfig wc;
  wc.seed = nw * 100 + ipt;
  const auto host = workload::generate_keys(n, wc);
  for (const Method meth :
       {Method::kDirect, Method::kWarpLevel, Method::kBlockLevel}) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    cfg.warps_per_block = nw;
    cfg.items_per_thread = ipt;
    cfg.block_items_per_thread = ipt;  // exercises coarsened block MS too
    const auto r = split::multisplit_keys(dev, in, out, 13, RangeBucket{13}, cfg);
    expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 13,
                            RangeBucket{13}, true);
  }
}

INSTANTIATE_TEST_SUITE_P(Tunings, ConfigSweep,
                         ::testing::Values(std::pair<u32, u32>{1, 1},
                                           std::pair<u32, u32>{2, 1},
                                           std::pair<u32, u32>{2, 4},
                                           std::pair<u32, u32>{8, 1},
                                           std::pair<u32, u32>{8, 8},
                                           std::pair<u32, u32>{16, 2}));

TEST(EdgeCases, DuplicateHeavyInput) {
  // Millions of ties stress the stable-rank paths.
  const u64 n = 60000;
  std::vector<u32> host(n);
  std::mt19937 rng(42);
  for (auto& k : host) k = (rng() % 4) << 30;  // 4 distinct keys
  for (const Method meth : kAllMethods) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    const auto r = split::multisplit_keys(dev, in, out, 4, RangeBucket{4}, cfg);
    expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 4,
                            RangeBucket{4}, is_stable(meth));
  }
}

}  // namespace
}  // namespace ms::test
