// Device-wide scan and reduction vs. std references, across sizes that
// exercise the single-block base case, exact tile multiples, the recursive
// partial tree, and u64 payloads.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "primitives/scan.hpp"

namespace ms::prim {
namespace {

using sim::Device;
using sim::DeviceBuffer;

class ScanTest : public ::testing::TestWithParam<u64> {};

TEST_P(ScanTest, ExclusiveMatchesStd) {
  const u64 n = GetParam();
  Device dev;
  std::mt19937 rng(static_cast<u32>(n));
  DeviceBuffer<u32> in(dev, n), out(dev, n);
  for (u64 i = 0; i < n; ++i) in[i] = rng() % 100;

  exclusive_scan<u32>(dev, in, out);

  u32 acc = 0;
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], acc) << "index " << i;
    acc += in[i];
  }
}

TEST_P(ScanTest, InclusiveMatchesStd) {
  const u64 n = GetParam();
  Device dev;
  std::mt19937 rng(static_cast<u32>(n) + 1);
  DeviceBuffer<u32> in(dev, n), out(dev, n);
  for (u64 i = 0; i < n; ++i) in[i] = rng() % 100;

  inclusive_scan<u32>(dev, in, out);

  u32 acc = 0;
  for (u64 i = 0; i < n; ++i) {
    acc += in[i];
    ASSERT_EQ(out[i], acc) << "index " << i;
  }
}

TEST_P(ScanTest, ReduceMatchesStd) {
  const u64 n = GetParam();
  Device dev;
  std::mt19937 rng(static_cast<u32>(n) + 2);
  DeviceBuffer<u32> in(dev, n);
  u64 want = 0;
  for (u64 i = 0; i < n; ++i) {
    in[i] = rng() % 100;
    want += in[i];
  }
  EXPECT_EQ(device_reduce<u32>(dev, in), static_cast<u32>(want));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(1ull, 2ull, 31ull, 32ull, 33ull,
                                           1023ull, 2048ull, 2049ull,
                                           65536ull, 100000ull, 300000ull));

TEST(ScanEdge, EmptyInputIsNoop) {
  Device dev;
  DeviceBuffer<u32> in(dev, 0), out(dev, 0);
  exclusive_scan<u32>(dev, in, out);
  EXPECT_EQ(device_reduce<u32>(dev, in), 0u);
}

TEST(ScanEdge, U64PayloadsAvoidOverflow) {
  Device dev;
  const u64 n = 10000;
  DeviceBuffer<u64> in(dev, n), out(dev, n);
  for (u64 i = 0; i < n; ++i) in[i] = u64{1} << 33;
  exclusive_scan<u64>(dev, in, out);
  EXPECT_EQ(out[n - 1], (n - 1) * (u64{1} << 33));
}

TEST(ScanEdge, RejectsAliasedBuffers) {
  Device dev;
  DeviceBuffer<u32> buf(dev, 100);
  EXPECT_THROW(exclusive_scan<u32>(dev, buf, buf), std::logic_error);
}

TEST(ScanEdge, NonDefaultConfig) {
  Device dev;
  const u64 n = 50000;
  std::mt19937 rng(5);
  DeviceBuffer<u32> in(dev, n), out(dev, n);
  for (u64 i = 0; i < n; ++i) in[i] = rng() % 10;
  ScanConfig cfg;
  cfg.warps_per_block = 2;
  cfg.items_per_thread = 3;
  exclusive_scan<u32>(dev, in, out, cfg);
  u32 acc = 0;
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], acc);
    acc += in[i];
  }
}

TEST(ScanCost, TrafficIsAboutThreeN) {
  // Reduce-then-scan moves ~3n elements of DRAM traffic (read, read+write);
  // n is chosen to exceed the modeled L2 so re-reads cannot hit.
  Device dev;
  const u64 n = 1u << 20;
  DeviceBuffer<u32> in(dev, n), out(dev, n);
  dev.clear_records();
  exclusive_scan<u32>(dev, in, out);
  const auto s = dev.summary_all();
  const f64 bytes =
      static_cast<f64>(s.events.dram_read_tx + s.events.dram_write_tx) *
      dev.profile().transaction_bytes;
  EXPECT_GT(bytes, 2.5 * n * 4);
  EXPECT_LT(bytes, 3.6 * n * 4);
}

}  // namespace
}  // namespace ms::prim
