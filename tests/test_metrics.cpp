// Derived-metrics engine (metrics.hpp): synthetic kernels with closed-form
// counter totals must produce exact derived metrics and the expected guided-
// analysis diagnoses; the divergence counters must match hand-computed lane
// counts; and the report differ must flag exactly the edits made to a
// document -- all without perturbing any modeled time.
#include <gtest/gtest.h>

#include <stdexcept>

#include "multisplit/multisplit.hpp"
#include "workload/distributions.hpp"

namespace ms::sim {
namespace {

const Diagnosis* find_rule(const MetricsReport& rep, std::string_view rule,
                           std::string_view scope = {}) {
  for (const auto& d : rep.diagnoses) {
    if (d.rule == rule && (scope.empty() || d.scope == scope)) return &d;
  }
  return nullptr;
}

const SiteMetrics* find_site(const MetricsReport& rep, std::string_view label) {
  for (const auto& s : rep.sites) {
    if (s.label == label) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Speed-of-light self-checks: three synthetic kernels whose counters have
// closed forms, so every derived metric is asserted exactly.
// ---------------------------------------------------------------------------

// A perfectly coalesced stream copy: 8 warps x 4 rounds of a unit-stride
// 32 x u32 load + store.  Every metric sits at its ideal value and the
// kernel is memory-bound (256 DRAM transactions vs 160 weighted slots).
TEST(MetricsSelfCheck, CoalescedStreamCopyIsIdealAndMemoryBound) {
  Device dev;  // Tesla K40c
  const u64 n = 1024;
  DeviceBuffer<u32> src(dev, n), dst(dev, n);
  src.fill(1);

  launch_warps(dev, "selfcheck_stream_copy", 8, [&](Warp& w, u64 wid) {
    for (u32 r = 0; r < 4; ++r) {
      const u64 base = (wid * 4 + r) * kWarpSize;
      const auto v = w.load(src, base, kFullMask);
      w.store(dst, base, v, kFullMask);
    }
  });

  const MetricsReport rep = analyze_device(dev);

  // Raw totals: 32 loads + 32 stores, 4 sectors (128 B) each, all cold.
  const KernelEvents& ev = rep.events;
  EXPECT_EQ(ev.issue_slots, 64u);
  EXPECT_EQ(ev.scatter_replays, 0u);
  EXPECT_EQ(ev.l2_read_segments, 128u);
  EXPECT_EQ(ev.dram_read_tx, 128u);
  EXPECT_EQ(ev.l2_write_segments, 128u);
  EXPECT_EQ(ev.dram_write_tx, 128u);  // dirty sectors flushed at kernel end
  EXPECT_EQ(ev.useful_bytes_read, 4096u);
  EXPECT_EQ(ev.useful_bytes_written, 4096u);
  EXPECT_EQ(ev.simt_insts, 64u);
  EXPECT_EQ(ev.simt_active_lanes, 2048u);
  EXPECT_EQ(ev.warps_launched, 8u);

  const DerivedMetrics& m = rep.aggregate;
  EXPECT_DOUBLE_EQ(m.coalescing_pct, 100.0);
  EXPECT_DOUBLE_EQ(m.sector_overfetch, 1.0);
  EXPECT_DOUBLE_EQ(m.active_lane_pct, 100.0);
  // Streaming: every read sector is touched exactly once, so all miss.
  EXPECT_DOUBLE_EQ(m.l2_read_hit_pct, 0.0);
  EXPECT_DOUBLE_EQ(m.bank_conflict_slot_pct, 0.0);
  EXPECT_DOUBLE_EQ(m.scatter_replay_slot_pct, 0.0);

  // Two-resource roofline: mem = 256 tx * 32 B / 288 GB/s = 28.4 ns,
  // issue = (64 + 8*12) slots / 16 Gips = 10 ns -> memory-bound.
  EXPECT_DOUBLE_EQ(m.mem_time_ms, 256.0 * 32.0 / (288.0 * 1e9) * 1e3);
  EXPECT_DOUBLE_EQ(m.issue_time_ms, 160.0 / (16.0 * 1e9) * 1e3);
  EXPECT_EQ(m.bound, Bound::kMemory);
  EXPECT_NEAR(m.sol_mem_pct, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.smem_occupancy_pct, 100.0);

  const Diagnosis* sol = find_rule(rep, "speed-of-light");
  ASSERT_NE(sol, nullptr);
  EXPECT_EQ(sol->severity, Diagnosis::Severity::kInfo);
  EXPECT_EQ(sol->scope, "run");
  // Perfectly coalesced: the over-fetch rule must not fire anywhere.
  EXPECT_EQ(find_rule(rep, "dram-overfetch"), nullptr);
  EXPECT_EQ(find_rule(rep, "bank-conflict-replays"), nullptr);
}

// A 32-byte-strided gather: each lane touches its own sector but requests
// only 4 of its 32 bytes, so the gather site reads 12.5% coalescing and an
// 8x over-fetch exactly, and the run diagnoses DRAM over-fetch at that
// site as critical (the run is memory-bound).
TEST(MetricsSelfCheck, StridedGatherIsOverfetchBound) {
  Device dev;
  const u64 n_dst = 1024;
  DeviceBuffer<u32> src(dev, n_dst * 8), dst(dev, n_dst);
  src.fill(1);

  launch_warps(dev, "selfcheck_strided_gather", 8, [&](Warp& w, u64 wid) {
    for (u32 r = 0; r < 4; ++r) {
      const u64 t = wid * 4 + r;
      const auto idx =
          Warp::lane_id().map([&](u32 l) { return (t * kWarpSize + l) * 8; });
      const auto v = [&] {
        ScopedSite site(dev, "selfcheck/strided_gather");
        return w.gather(src, idx, kFullMask);
      }();
      ScopedSite site(dev, "selfcheck/stream_store");
      w.store(dst, t * kWarpSize, v, kFullMask);
    }
  });

  const MetricsReport rep = analyze_device(dev);

  // Each of the 32 gathers: 32 distinct sectors, 32 single-line lane runs
  // (1 issue slot + 31 replays), 128 useful bytes.
  const KernelEvents& ev = rep.events;
  EXPECT_EQ(ev.issue_slots, 64u);
  EXPECT_EQ(ev.scatter_replays, 992u);
  EXPECT_EQ(ev.l2_read_segments, 1024u);
  EXPECT_EQ(ev.dram_read_tx, 1024u);
  EXPECT_EQ(ev.l2_write_segments, 128u);
  EXPECT_EQ(ev.dram_write_tx, 128u);
  EXPECT_EQ(ev.useful_bytes_read, 4096u);
  EXPECT_EQ(ev.useful_bytes_written, 4096u);

  const SiteMetrics* gather = find_site(rep, "selfcheck/strided_gather");
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(gather->events.scatter_replays, 992u);
  EXPECT_DOUBLE_EQ(gather->metrics.coalescing_pct, 12.5);
  EXPECT_DOUBLE_EQ(gather->metrics.sector_overfetch, 8.0);
  const SiteMetrics* store = find_site(rep, "selfcheck/stream_store");
  ASSERT_NE(store, nullptr);
  EXPECT_DOUBLE_EQ(store->metrics.coalescing_pct, 100.0);

  // mem = 1152 tx * 32 B / 288 GB/s = 128 ns > issue = (64 + 96 +
  // 992*1.5) / 16 Gips = 103 ns: DRAM-bound, so wasted bytes are critical.
  EXPECT_EQ(rep.aggregate.bound, Bound::kMemory);
  const Diagnosis* ovf =
      find_rule(rep, "dram-overfetch", "site:selfcheck/strided_gather");
  ASSERT_NE(ovf, nullptr);
  EXPECT_EQ(ovf->severity, Diagnosis::Severity::kCritical);
  EXPECT_DOUBLE_EQ(ovf->value, 87.5);  // 100 - 12.5
  // The coalesced store site must NOT be flagged.
  EXPECT_EQ(find_rule(rep, "dram-overfetch", "site:selfcheck/stream_store"),
            nullptr);
  // The replay share is large but the run is memory-bound: info only.
  const Diagnosis* rep_d = find_rule(rep, "scatter-replays");
  ASSERT_NE(rep_d, nullptr);
  EXPECT_EQ(rep_d->severity, Diagnosis::Severity::kInfo);
}

// Worst-case shared-memory banking: idx = lane * 32 puts all 32 lanes in
// bank 0, a 32-way conflict on every access.  No global traffic at all, so
// the kernel is issue-bound and the bank-conflict rule fires critical.
TEST(MetricsSelfCheck, BankConflictKernelIsIssueBound) {
  Device dev;
  launch_blocks(dev, "selfcheck_bank_conflict", 1, 1, [&](Block& blk) {
    auto tile = blk.shared<u32>(1024, "selfcheck.tile");
    Warp& w = blk.warp(0);
    ScopedSite site(dev, "selfcheck/conflict_smem");
    const auto idx = Warp::lane_id().map([](u32 l) { return l * 32; });
    for (u32 k = 0; k < 8; ++k) {
      w.smem_write(tile, idx, LaneArray<u32>::filled(k), kFullMask);
    }
    for (u32 k = 0; k < 8; ++k) {
      (void)w.smem_read(tile, idx, kFullMask);
    }
  });

  const MetricsReport rep = analyze_device(dev);

  const KernelEvents& ev = rep.events;
  EXPECT_EQ(ev.smem_accesses, 16u);
  EXPECT_EQ(ev.smem_slots, 512u);  // 16 accesses x 32-way serialization
  EXPECT_EQ(ev.dram_read_tx, 0u);
  EXPECT_EQ(ev.dram_write_tx, 0u);

  const DerivedMetrics& m = rep.aggregate;
  EXPECT_DOUBLE_EQ(m.bank_conflict_mult, 32.0);
  // Weighted slots: 1 warp * 12 overhead + 512 * 0.5 smem = 268; the
  // conflict excess is (512 - 16) * 0.5 = 248 of them.
  EXPECT_DOUBLE_EQ(m.bank_conflict_slot_pct, 100.0 * 248.0 / 268.0);
  EXPECT_DOUBLE_EQ(m.mem_time_ms, 0.0);
  EXPECT_EQ(m.bound, Bound::kIssue);

  const Diagnosis* bank =
      find_rule(rep, "bank-conflict-replays", "site:selfcheck/conflict_smem");
  ASSERT_NE(bank, nullptr);
  EXPECT_EQ(bank->severity, Diagnosis::Severity::kCritical);

  // 4 KB of shared memory -> 12 of 16 resident blocks: above the warning
  // threshold, so no occupancy diagnosis.
  ASSERT_FALSE(rep.kernels.empty());
  EXPECT_DOUBLE_EQ(rep.kernels[0].metrics.smem_occupancy_pct,
                   100.0 * 12.0 / 16.0);
  EXPECT_EQ(find_rule(rep, "smem-occupancy"), nullptr);
}

TEST(MetricsSelfCheck, SmemOccupancyProxyClosedForms) {
  const DeviceProfile k40c = DeviceProfile::tesla_k40c();
  EXPECT_DOUBLE_EQ(smem_occupancy_pct(0, k40c), 100.0);      // no smem
  EXPECT_DOUBLE_EQ(smem_occupancy_pct(3072, k40c), 100.0);   // 16 fit = cap
  EXPECT_DOUBLE_EQ(smem_occupancy_pct(6144, k40c), 50.0);    // 8 of 16
  EXPECT_DOUBLE_EQ(smem_occupancy_pct(100000, k40c), 0.0);   // exceeds 48 KB
  const DeviceProfile ti = DeviceProfile::gtx_750_ti();
  EXPECT_DOUBLE_EQ(smem_occupancy_pct(3072, ti), 50.0);      // 16 of 32
}

TEST(MetricsSelfCheck, BoundClassificationMargin) {
  EXPECT_EQ(classify_bound(0.0, 0.0), Bound::kBalanced);
  EXPECT_EQ(classify_bound(1.06, 1.0), Bound::kMemory);
  EXPECT_EQ(classify_bound(1.0, 1.06), Bound::kIssue);
  EXPECT_EQ(classify_bound(1.02, 1.0), Bound::kBalanced);
  EXPECT_EQ(classify_bound(1.0, 0.0), Bound::kMemory);
  EXPECT_EQ(classify_bound(0.0, 1.0), Bound::kIssue);
}

// Computing metrics is read-only: analyzing a device twice yields the same
// report and leaves every recorded kernel time bit-identical.
TEST(MetricsSelfCheck, AnalysisDoesNotPerturbRecordedTimes) {
  workload::WorkloadConfig wc;
  wc.m = 8;
  const u64 n = u64{1} << 12;
  const auto host = workload::generate_keys(n, wc);
  Device dev;
  DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  split::MultisplitConfig cfg;
  cfg.method = split::Method::kWarpLevel;
  split::multisplit_keys(dev, in, out, 8, split::RangeBucket{8}, cfg);

  std::vector<f64> times_before;
  for (const auto& r : dev.records()) times_before.push_back(r.time_ms);

  const MetricsReport a = analyze_device(dev);
  const MetricsReport b = analyze_device(dev);

  ASSERT_EQ(dev.records().size(), times_before.size());
  for (size_t i = 0; i < times_before.size(); ++i) {
    EXPECT_EQ(dev.records()[i].time_ms, times_before[i]) << "kernel " << i;
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.total_ms, b.total_ms);
  ASSERT_EQ(a.diagnoses.size(), b.diagnoses.size());
  for (size_t i = 0; i < a.diagnoses.size(); ++i) {
    EXPECT_EQ(a.diagnoses[i].rule, b.diagnoses[i].rule);
    EXPECT_EQ(a.diagnoses[i].message, b.diagnoses[i].message);
  }
  // The aggregate reproduces the kernel log exactly.
  KernelEvents from_records;
  for (const auto& r : dev.records()) from_records += r.events;
  EXPECT_EQ(a.events, from_records);
}

// ---------------------------------------------------------------------------
// Divergence counters: hand-built kernels with exact lane counts.
// ---------------------------------------------------------------------------

KernelEvents run_one_warp(void (*body)(Device&, Warp&)) {
  Device dev;
  launch_warps(dev, "divergence_probe", 1,
               [&](Warp& w, u64) { body(dev, w); });
  return dev.records().at(0).events;
}

TEST(DivergenceCounters, FullWarpBallotIsFullyConverged) {
  const KernelEvents ev = run_one_warp([](Device&, Warp& w) {
    (void)w.ballot(LaneArray<u32>::filled(1), kFullMask);
  });
  EXPECT_EQ(ev.simt_insts, 1u);
  EXPECT_EQ(ev.simt_active_lanes, 32u);
  EXPECT_EQ(ev.ballot_rounds, 1u);
  Device dev;
  EXPECT_DOUBLE_EQ(derive_metrics(ev, dev.profile()).active_lane_pct, 100.0);
}

TEST(DivergenceCounters, HalfWarpIsExactlyFiftyPercent) {
  Device dev;
  DeviceBuffer<u32> buf(dev, kWarpSize);
  buf.fill(0);
  const LaneMask half = 0x0000FFFFu;
  launch_warps(dev, "half_warp", 1, [&](Warp& w, u64) {
    (void)w.ballot(LaneArray<u32>::filled(1), half);
    (void)w.shfl_xor(LaneArray<u32>::iota(), 1, half);
    (void)w.load(buf, 0, half);
  });
  const KernelEvents& ev = dev.records().at(0).events;
  EXPECT_EQ(ev.simt_insts, 3u);
  EXPECT_EQ(ev.simt_active_lanes, 48u);
  EXPECT_DOUBLE_EQ(derive_metrics(ev, dev.profile()).active_lane_pct, 50.0);
}

TEST(DivergenceCounters, SingleLaneIsOneThirtySecond) {
  Device dev;
  DeviceBuffer<u32> buf(dev, kWarpSize);
  buf.fill(0);
  const LaneMask one = 0x1u;
  launch_warps(dev, "single_lane", 1, [&](Warp& w, u64) {
    (void)w.ballot(LaneArray<u32>::filled(1), one);
    (void)w.shfl_xor(LaneArray<u32>::iota(), 1, one);
    (void)w.load(buf, 0, one);
  });
  const KernelEvents& ev = dev.records().at(0).events;
  EXPECT_EQ(ev.simt_insts, 3u);
  EXPECT_EQ(ev.simt_active_lanes, 3u);
  EXPECT_DOUBLE_EQ(derive_metrics(ev, dev.profile()).active_lane_pct, 3.125);
}

// Data-dependent exit: lane l leaves the loop after round l.  Round j runs
// a ballot over 32-j live lanes, so 32 ballots count 32+31+...+1 = 528
// active lanes: 528 / (32*32) = 51.5625% exactly.
TEST(DivergenceCounters, DataDependentExitLoop) {
  const KernelEvents ev = run_one_warp([](Device&, Warp& w) {
    LaneMask active = kFullMask;
    u32 k = 0;
    while (active != 0) {
      const auto still_going =
          Warp::lane_id().map([&](u32 l) { return l > k ? 1u : 0u; });
      active = w.ballot(still_going, active);
      ++k;
    }
  });
  EXPECT_EQ(ev.simt_insts, 32u);
  EXPECT_EQ(ev.ballot_rounds, 32u);
  EXPECT_EQ(ev.simt_active_lanes, 528u);
  Device dev;
  EXPECT_DOUBLE_EQ(derive_metrics(ev, dev.profile()).active_lane_pct,
                   51.5625);
}

// Warp::charge() models converged scalar bookkeeping and must not count as
// a SIMT instruction (it would dilute the divergence signal).
TEST(DivergenceCounters, ChargeIsNotASimtInstruction) {
  const KernelEvents ev =
      run_one_warp([](Device&, Warp& w) { w.charge(5); });
  EXPECT_EQ(ev.issue_slots, 5u);
  EXPECT_EQ(ev.simt_insts, 0u);
  EXPECT_EQ(ev.simt_active_lanes, 0u);
}

// ---------------------------------------------------------------------------
// Report differ
// ---------------------------------------------------------------------------

TEST(ReportDiff, IdenticalReportsHaveZeroFindings) {
  const char* doc = R"({"schema_version":8,"device":"k40c","results":[
    {"method":"X","m":8,"key_value":true,"total_ms":1.5,
     "sites":[{"label":"a","dram_read_tx":100},
              {"label":"b","dram_read_tx":7}]}]})";
  const DiffResult r = diff_reports(parse_json(doc), parse_json(doc));
  EXPECT_EQ(r.total_findings, 0u);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_GT(r.values_compared, 5u);
}

TEST(ReportDiff, EditedCounterNamesRowSiteAndMetric) {
  const char* base = R"({"schema_version":8,"results":[
    {"method":"Warp-level MS","m":8,"key_value":true,
     "sites":[{"label":"warp_ms/postscan_scatter","dram_read_tx":2948}]}]})";
  const char* cur = R"({"schema_version":8,"results":[
    {"method":"Warp-level MS","m":8,"key_value":true,
     "sites":[{"label":"warp_ms/postscan_scatter","dram_read_tx":2950}]}]})";
  const DiffResult r = diff_reports(parse_json(base), parse_json(cur));
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].path,
            "results[method=Warp-level MS,m=8,key_value=true]"
            ".sites[label=warp_ms/postscan_scatter].dram_read_tx");
  EXPECT_NE(r.findings[0].note.find("baseline 2948"), std::string::npos);
  EXPECT_NE(r.findings[0].note.find("current 2950"), std::string::npos);
}

TEST(ReportDiff, ToleranceSuppressesSmallDrift) {
  const char* base = R"({"schema_version":8,"results":[
    {"name":"k","time_ms":100.0}]})";
  const char* cur = R"({"schema_version":8,"results":[
    {"name":"k","time_ms":100.5}]})";
  DiffOptions opts;
  opts.tolerance = 0.01;  // 1% allowed; drift here is ~0.5%
  EXPECT_EQ(diff_reports(parse_json(base), parse_json(cur), opts)
                .total_findings,
            0u);
  opts.tolerance = 0.001;
  EXPECT_EQ(diff_reports(parse_json(base), parse_json(cur), opts)
                .total_findings,
            1u);
  // Exact tolerance 0: any numeric change is a finding.
  EXPECT_EQ(
      diff_reports(parse_json(base), parse_json(cur)).total_findings, 1u);
}

TEST(ReportDiff, RowOrderDoesNotMatter) {
  const char* base = R"({"schema_version":8,"results":[
    {"method":"A","m":2,"key_value":false,"total_ms":1.0},
    {"method":"B","m":2,"key_value":false,"total_ms":2.0}]})";
  const char* cur = R"({"schema_version":8,"results":[
    {"method":"B","m":2,"key_value":false,"total_ms":2.0},
    {"method":"A","m":2,"key_value":false,"total_ms":1.0}]})";
  EXPECT_EQ(diff_reports(parse_json(base), parse_json(cur)).total_findings,
            0u);
}

TEST(ReportDiff, MissingRowsAndMembersAreFindings) {
  const char* base = R"({"schema_version":8,"total_ms":3.0,"results":[
    {"method":"A","m":2,"key_value":false,"total_ms":1.0},
    {"method":"B","m":2,"key_value":false,"total_ms":2.0}]})";
  const char* cur = R"({"schema_version":8,"results":[
    {"method":"A","m":2,"key_value":false,"total_ms":1.0},
    {"method":"C","m":2,"key_value":false,"total_ms":9.0}]})";
  const DiffResult r = diff_reports(parse_json(base), parse_json(cur));
  ASSERT_EQ(r.findings.size(), 3u);
  bool missing_member = false, missing_row = false, added_row = false;
  for (const auto& f : r.findings) {
    if (f.path == "total_ms" &&
        f.note.find("missing in current") != std::string::npos)
      missing_member = true;
    if (f.path == "results[method=B,m=2,key_value=false]" &&
        f.note.find("missing in current") != std::string::npos)
      missing_row = true;
    if (f.path == "results[method=C,m=2,key_value=false]" &&
        f.note.find("added in current") != std::string::npos)
      added_row = true;
  }
  EXPECT_TRUE(missing_member);
  EXPECT_TRUE(missing_row);
  EXPECT_TRUE(added_row);
}

TEST(ReportDiff, PositionalArraysCompareByIndex) {
  const char* base = R"({"schema_version":8,"xs":[1,2,3]})";
  const char* cur = R"({"schema_version":8,"xs":[1,2,4,5]})";
  const DiffResult r = diff_reports(parse_json(base), parse_json(cur));
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].path, "xs[2]");
  EXPECT_EQ(r.findings[1].path, "xs");  // length change
}

TEST(ReportDiff, SchemaVersionIsEnforced) {
  const char* cur = R"({"schema_version":8,"x":1})";
  const char* old = R"({"schema_version":4,"x":1})";
  const char* none = R"({"x":1})";
  EXPECT_THROW(diff_reports(parse_json(none), parse_json(cur)),
               std::runtime_error);
  EXPECT_THROW(diff_reports(parse_json(cur), parse_json(none)),
               std::runtime_error);
  // Mismatched versions and matching-but-unsupported versions both throw.
  EXPECT_THROW(diff_reports(parse_json(old), parse_json(cur)),
               std::runtime_error);
  EXPECT_THROW(diff_reports(parse_json(old), parse_json(old)),
               std::runtime_error);
  EXPECT_NO_THROW(diff_reports(parse_json(cur), parse_json(cur)));
}

TEST(ReportDiff, HostTimeFieldsAreNeverCompared) {
  // Host wall-clock is nondeterministic by nature; any key starting with
  // "host_" is excluded from the diff in both directions (extra, missing,
  // or changed).
  const char* base = R"({"schema_version":8,"total_ms":3.0,"results":[
      {"method":"warp","host_ms":12.5,"host_keys_per_sec":1e8}]})";
  const char* cur = R"({"schema_version":8,"total_ms":3.0,"results":[
      {"method":"warp","host_ms":99.0}]})";
  const DiffResult r = diff_reports(parse_json(base), parse_json(cur));
  EXPECT_EQ(r.findings.size(), 0u)
      << (r.findings.empty() ? "" : r.findings[0].path);
}

TEST(ReportDiff, FindingCapKeepsTotalCount) {
  std::string base = R"({"schema_version":8,"xs":[)";
  std::string cur = base;
  for (int i = 0; i < 20; ++i) {
    base += (i ? "," : "") + std::to_string(i);
    cur += (i ? "," : "") + std::to_string(i + 100);
  }
  base += "]}";
  cur += "]}";
  DiffOptions opts;
  opts.max_findings = 5;
  const DiffResult r =
      diff_reports(parse_json(base), parse_json(cur), opts);
  EXPECT_EQ(r.findings.size(), 5u);
  EXPECT_EQ(r.total_findings, 20u);
}

}  // namespace
}  // namespace ms::sim
