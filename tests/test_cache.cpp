// SectorCache (L2 model) unit tests: hit/miss behaviour, LRU eviction,
// dirty writeback accounting, and flush semantics.
#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace ms::sim {
namespace {

TEST(SectorCache, ColdReadMissesThenHits) {
  SectorCache c(1024, 4, 32);
  auto r1 = c.read(7);
  EXPECT_FALSE(r1.hit);
  EXPECT_EQ(r1.dram_read_tx, 1u);
  auto r2 = c.read(7);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.dram_read_tx, 0u);
}

TEST(SectorCache, WriteAllocatesWithoutFill) {
  SectorCache c(1024, 4, 32);
  auto w = c.write(3);
  EXPECT_FALSE(w.hit);
  EXPECT_EQ(w.dram_read_tx, 0u);   // no fill on write miss
  EXPECT_EQ(w.dram_write_tx, 0u);  // cost deferred to writeback
  EXPECT_EQ(c.flush_dirty(), 1u);
  EXPECT_EQ(c.flush_dirty(), 0u);  // idempotent
}

TEST(SectorCache, ReadAfterWriteHitsWithoutFill) {
  SectorCache c(1024, 4, 32);
  c.write(5);
  auto r = c.read(5);
  EXPECT_TRUE(r.hit);
}

TEST(SectorCache, LruEvictionWithinSet) {
  // 4 ways; sectors that map to the same set are k*num_sets apart.
  SectorCache c(1024, 4, 32);  // 32 lines, 8 sets
  const u64 sets = c.num_sets();
  // Fill set 0 with 4 distinct tags.
  for (u64 k = 0; k < 4; ++k) c.read(k * sets);
  // Touch the first three again so tag 3*sets is LRU.
  c.read(0);
  c.read(sets);
  c.read(2 * sets);
  // A fifth tag evicts the LRU (3*sets).
  c.read(4 * sets);
  EXPECT_TRUE(c.read(0).hit);
  EXPECT_FALSE(c.read(3 * sets).hit);
}

TEST(SectorCache, DirtyEvictionCostsWriteback) {
  SectorCache c(128, 1, 32);  // 4 sets, direct-mapped
  const u64 sets = c.num_sets();
  c.write(0);
  auto r = c.read(sets);  // maps to set 0, evicts dirty line
  EXPECT_EQ(r.dram_write_tx, 1u);
  EXPECT_EQ(r.dram_read_tx, 1u);
}

TEST(SectorCache, ResetDropsEverything) {
  SectorCache c(1024, 4, 32);
  c.write(1);
  c.read(2);
  c.reset();
  EXPECT_EQ(c.flush_dirty(), 0u);
  EXPECT_FALSE(c.read(2).hit);
}

TEST(SectorCache, RejectsBadGeometry) {
  EXPECT_THROW(SectorCache(16, 4, 32), std::logic_error);
}

TEST(SectorCache, LargeWorkingSetThrashes) {
  SectorCache c(1024, 4, 32);  // 32 lines total
  u32 misses = 0;
  for (int rep = 0; rep < 3; ++rep) {
    for (u64 s = 0; s < 64; ++s) {  // 2x capacity
      if (!c.read(s).hit) ++misses;
    }
  }
  EXPECT_EQ(misses, 3u * 64u);  // pure capacity thrash: no reuse survives
}

}  // namespace
}  // namespace ms::sim
