// Device lifecycle, buffer semantics, profiles and launch-helper edges.
#include <gtest/gtest.h>

#include "sim/sim.hpp"

namespace ms::sim {
namespace {

TEST(Device, ProfilesHaveSaneConstants) {
  const auto k40 = DeviceProfile::tesla_k40c();
  const auto m750 = DeviceProfile::gtx_750_ti();
  const auto sol = DeviceProfile::speed_of_light();
  EXPECT_GT(k40.mem_bandwidth_gbps, m750.mem_bandwidth_gbps);
  EXPECT_GT(k40.issue_rate_gips, m750.issue_rate_gips);
  EXPECT_GE(m750.scatter_issue_penalty, k40.scatter_issue_penalty);
  EXPECT_EQ(sol.kernel_launch_us, 0.0);
  EXPECT_EQ(sol.warp_overhead_slots, 0u);
  EXPECT_EQ(k40.transaction_bytes, 32u);
  EXPECT_EQ(k40.smem_bytes_per_block, 48u * 1024);
}

TEST(Device, AddressRangesAreDisjointAndAligned) {
  Device dev;
  const u64 a = dev.allocate_address_range(100);
  const u64 b = dev.allocate_address_range(1);
  const u64 c = dev.allocate_address_range(64);
  EXPECT_EQ(a % dev.profile().transaction_bytes, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(b % dev.profile().transaction_bytes, 0u);
  EXPECT_GT(c, b);
}

TEST(Device, ResetStatsClearsRecordsKeepsData) {
  Device dev;
  DeviceBuffer<u32> buf(dev, 256);
  device_fill<u32>(dev, buf, 9);
  EXPECT_FALSE(dev.records().empty());
  dev.reset_stats();
  EXPECT_TRUE(dev.records().empty());
  EXPECT_EQ(dev.total_ms(), 0.0);
  EXPECT_EQ(buf[100], 9u);  // contents survive
}

TEST(DeviceBuffer, SpanConstructorCopies) {
  Device dev;
  std::vector<u32> host{1, 2, 3, 4};
  DeviceBuffer<u32> buf(dev, std::span<const u32>(host));
  host[0] = 99;
  EXPECT_EQ(buf[0], 1u);
  EXPECT_EQ(buf.size(), 4u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  Device dev;
  DeviceBuffer<u32> a(dev, 64);
  a[5] = 77;
  const u64 addr = a.base_address();
  DeviceBuffer<u32> b = std::move(a);
  EXPECT_EQ(b[5], 77u);
  EXPECT_EQ(b.base_address(), addr);
  DeviceBuffer<u32> c;
  c = std::move(b);
  EXPECT_EQ(c[5], 77u);
}

TEST(Launch, ZeroWarpsIsAnEmptyKernel) {
  Device dev;
  launch_warps(dev, "empty", 0, [](Warp&, u64) { FAIL() << "no warps"; });
  EXPECT_EQ(dev.records().back().events.warps_launched, 0u);
}

TEST(Launch, BlockRequiresAtLeastOneWarp) {
  Device dev;
  EXPECT_THROW(launch_blocks(dev, "bad", 1, 0, [](Block&) {}),
               std::logic_error);
}

TEST(Launch, WarpAndBlockIdsAreConsistent) {
  Device dev;
  launch_blocks(dev, "ids", 3, 4, [&](Block& blk) {
    u32 expect_wi = 0;
    blk.for_each_warp([&](Warp& w) {
      EXPECT_EQ(w.block_id(), blk.block_id());
      EXPECT_EQ(w.warp_in_block(), expect_wi);
      EXPECT_EQ(w.warp_id(), static_cast<u64>(blk.block_id()) * 4 + expect_wi);
      ++expect_wi;
    });
    EXPECT_EQ(expect_wi, 4u);
  });
}

TEST(Launch, TailMaskValues) {
  EXPECT_EQ(tail_mask(0), 0u);
  EXPECT_EQ(tail_mask(1), 1u);
  EXPECT_EQ(tail_mask(31), 0x7FFFFFFFu);
  EXPECT_EQ(tail_mask(32), kFullMask);
  EXPECT_EQ(tail_mask(1000), kFullMask);
}

TEST(Launch, BarrierChargesPerWarp) {
  Device dev;
  launch_blocks(dev, "barrier", 1, 8, [](Block& blk) { blk.sync(); });
  const auto ev = dev.records().back().events;
  EXPECT_EQ(ev.barriers, 1u);
  EXPECT_GE(ev.issue_slots, 8u * dev.profile().barrier_overhead_slots);
}

TEST(Launch, SharedArrayStableAcrossArenaGrowth) {
  // Regression: a SharedArray handed out before the arena grows past the
  // 48 kB default must stay valid after a later allocation resizes it.
  Device dev;
  launch_blocks(dev, "grow", 1, 1, [&](Block& blk) {
    auto early = blk.shared<u32>(64);
    early.raw(7) = 1234;
    auto huge = blk.shared<u32>(64 * 1024);  // forces arena growth
    huge.raw(0) = 1;
    EXPECT_EQ(early.raw(7), 1234u);
    Warp& w = blk.warp(0);
    const auto v =
        w.smem_read(early, LaneArray<u32>::filled(7), /*active=*/1u);
    EXPECT_EQ(v[0], 1234u);
  });
}

}  // namespace
}  // namespace ms::sim
