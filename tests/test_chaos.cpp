// Chaos engine + resilient executor suite (the `chaos_suite` /
// `chaos_suite_mt4` ctest gates rerun the campaign tests with 4 simulator
// worker threads; `chaos_plan_state` reruns the plan-state tests with every
// sanitizer armed).
//
// Covers: one-shot deterministic injection (the faultinject.hpp positive
// controls), zero-overhead/bit-identity with chaos off or idle, retry and
// fallback behavior of the resilient executor, exception safety of a
// faulted run (no address-space leak, plan reusable), deterministic
// first-fault-wins under the parallel scheduler, and the seeded campaign
// acceptance gate: every injected fault recovered or surfaced, never a
// silent wrong result.
#include <gtest/gtest.h>

#include "multisplit/chaos_campaign.hpp"
#include "multisplit/plan.hpp"
#include "multisplit_test_util.hpp"
#include "sim/faultinject.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::MultisplitPlan;
using split::RangeBucket;
using split::RetryPolicy;
using sim::ChaosPolicy;
using sim::FaultKind;

std::vector<u32> make_keys(u64 n, u32 m, u64 seed) {
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = seed;
  return workload::generate_keys(n, wc);
}

// ------------------------------------------------ one-shot injection

TEST(ChaosInject, AllocFailureIsStructuredAndLeavesAllocatorUntouched) {
  sim::Device dev;
  const sim::AllocatorStats before = dev.allocator().stats();
  try {
    sim::inject::alloc_failure(dev);
    FAIL() << "injected allocation failure did not throw";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.context().kind, FaultKind::kAllocFailure);
    EXPECT_EQ(e.context().kernel, "<host>");
  }
  // The chaos check precedes all stats bumps: a failed allocation leaves
  // the allocator exactly as it was.
  const sim::AllocatorStats& after = dev.allocator().stats();
  EXPECT_EQ(before.alloc_count, after.alloc_count);
  EXPECT_EQ(before.bytes_live, after.bytes_live);
  EXPECT_EQ(before.bytes_reserved, after.bytes_reserved);
  EXPECT_EQ(dev.resilience_stats().injected_alloc_failures, 1u);
}

TEST(ChaosInject, LaunchAbortIsStructuredAndRecordsFaultedKernel) {
  sim::Device dev;
  const std::size_t records_before = dev.records().size();
  try {
    sim::inject::launch_abort(dev);
    FAIL() << "injected launch abort did not throw";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.context().kind, FaultKind::kLaunchFailure);
  }
  // The aborted launch leaves a faulted KernelRecord (the launch happened,
  // it just died), mirroring how a real device reports aborted kernels.
  ASSERT_EQ(dev.records().size(), records_before + 1);
  EXPECT_TRUE(dev.records().back().faulted);
  EXPECT_EQ(dev.resilience_stats().injected_launch_aborts, 1u);
  // The device stays servable: a later launch runs normally.
  sim::DeviceBuffer<u32> buf(dev, 32, "post_abort");
  buf.fill(0);
  sim::launch_warps(dev, "post_abort_kernel", 1, [&](sim::Warp& w, u64) {
    w.store(buf, 0, LaneArray<u32>::filled(7u));
  });
  EXPECT_EQ(buf[0], 7u);
}

TEST(ChaosInject, ArmedBitFlipHitsExactlyTheKnownWord) {
  sim::Device dev;
  dev.enable_chaos(ChaosPolicy{});  // all probabilities zero
  sim::DeviceBuffer<u32> buf(dev, 64, "flip_target");
  buf.fill(0xAAAAAAAAu);
  sim::inject::bit_flip(dev, buf, /*word=*/5, /*bit=*/17);
  for (u64 i = 0; i < buf.size(); ++i) {
    const u32 want = i == 5 ? (0xAAAAAAAAu ^ (1u << 17)) : 0xAAAAAAAAu;
    EXPECT_EQ(buf[i], want) << "word " << i;
  }
  ASSERT_EQ(dev.chaos()->log().size(), 1u);
  const sim::InjectionRecord& rec = dev.chaos()->log()[0];
  EXPECT_EQ(rec.site, sim::ChaosSite::kBitFlip);
  EXPECT_EQ(rec.word, 5u);
  EXPECT_EQ(rec.bit, 17u);
  EXPECT_NE(rec.object.find("flip_target"), std::string::npos);
  EXPECT_EQ(dev.resilience_stats().injected_bit_flips, 1u);
}

TEST(ChaosEngine, ProtectedBufferIsNeverFlipped) {
  sim::Device dev;
  ChaosPolicy pol;
  pol.p_bit_flip = 1.0;  // every kernel end flips some unprotected buffer
  dev.enable_chaos(pol);
  sim::DeviceBuffer<u32> guarded(dev, 64, "guarded");
  sim::DeviceBuffer<u32> fair_game(dev, 64, "fair_game");
  guarded.fill(0x12345678u);
  fair_game.fill(0x12345678u);
  dev.chaos()->protect_buffer(guarded.base_address());
  for (int k = 0; k < 8; ++k) {
    sim::launch_warps(dev, "noop", 1, [&](sim::Warp&, u64) {});
  }
  for (u64 i = 0; i < guarded.size(); ++i) {
    ASSERT_EQ(guarded[i], 0x12345678u) << "protected buffer was corrupted";
  }
  EXPECT_EQ(dev.resilience_stats().injected_bit_flips, 8u);
  u32 changed = 0;
  for (u64 i = 0; i < fair_game.size(); ++i) {
    if (fair_game[i] != 0x12345678u) ++changed;
  }
  EXPECT_GT(changed, 0u) << "the unprotected buffer took no flips";
}

// ----------------------------------- zero overhead / bit-identity when off

TEST(ChaosEngine, IdleEngineIsBitIdenticalToNoEngine) {
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 99);
  split::MultisplitResult plain, idle;
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    plain = MultisplitPlan(dev, n, m).run(in, out, RangeBucket{m});
  }
  {
    sim::Device dev;
    dev.enable_chaos(ChaosPolicy{});  // armed but all probabilities zero
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    idle = MultisplitPlan(dev, n, m).run(in, out, RangeBucket{m});
    EXPECT_TRUE(dev.chaos()->log().empty());
  }
  EXPECT_EQ(plain.bucket_offsets, idle.bucket_offsets);
  EXPECT_EQ(plain.stages.prescan_ms, idle.stages.prescan_ms);
  EXPECT_EQ(plain.stages.scan_ms, idle.stages.scan_ms);
  EXPECT_EQ(plain.stages.postscan_ms, idle.stages.postscan_ms);
  EXPECT_EQ(plain.summary.total_ms, idle.summary.total_ms);
}

// ------------------------------------------- retry/fallback classification

TEST(ResilientPolicy, RetryClassification) {
  RetryPolicy rp;  // retry_data_faults = false
  EXPECT_TRUE(split::fault_is_retryable(FaultKind::kAllocFailure, rp));
  EXPECT_TRUE(split::fault_is_retryable(FaultKind::kLaunchFailure, rp));
  EXPECT_TRUE(split::fault_is_retryable(FaultKind::kValidationFailure, rp));
  EXPECT_FALSE(split::fault_is_retryable(FaultKind::kGlobalOOB, rp));
  EXPECT_FALSE(split::fault_is_retryable(FaultKind::kUninitGlobalRead, rp));
  EXPECT_FALSE(split::fault_is_retryable(FaultKind::kInvalidConfig, rp));
  EXPECT_FALSE(split::fault_is_retryable(FaultKind::kHostOOB, rp));
  EXPECT_FALSE(split::fault_is_retryable(FaultKind::kRetryExhausted, rp));
  rp.retry_data_faults = true;  // the chaos-campaign setting
  EXPECT_TRUE(split::fault_is_retryable(FaultKind::kGlobalOOB, rp));
  EXPECT_TRUE(split::fault_is_retryable(FaultKind::kRaceHazard, rp));
  EXPECT_FALSE(split::fault_is_retryable(FaultKind::kInvalidConfig, rp));
}

TEST(ResilientPolicy, FallbackLadder) {
  using split::fallback_method;
  // m = 8, key-only: fused -> reduced_bit -> block -> warp -> direct ->
  // recursive scan split -> out of rungs.
  EXPECT_EQ(fallback_method(Method::kFusedBucketSort, 8, false),
            Method::kReducedBitSort);
  EXPECT_EQ(fallback_method(Method::kReducedBitSort, 8, false),
            Method::kBlockLevel);
  EXPECT_EQ(fallback_method(Method::kBlockLevel, 8, false),
            Method::kWarpLevel);
  EXPECT_EQ(fallback_method(Method::kWarpLevel, 8, false), Method::kDirect);
  EXPECT_EQ(fallback_method(Method::kDirect, 8, false),
            Method::kRecursiveScanSplit);
  // m <= 2 bottoms out in the single scan split instead.
  EXPECT_EQ(fallback_method(Method::kDirect, 2, false), Method::kScanSplit);
  // The scan splits are the bottom: nothing below them.
  EXPECT_EQ(fallback_method(Method::kScanSplit, 2, false), std::nullopt);
  EXPECT_EQ(fallback_method(Method::kRecursiveScanSplit, 8, false),
            std::nullopt);
  // The non-stable specialist degrades to the stable generalist.
  EXPECT_EQ(fallback_method(Method::kRandomizedInsertion, 8, false),
            Method::kWarpLevel);
}

// --------------------------------------------------- resilient execution

TEST(ResilientRun, CleanRunIsBitIdenticalToPlainRun) {
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 7);
  split::MultisplitResult plain, resilient;
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    plain = MultisplitPlan(dev, n, m).run(in, out, RangeBucket{m});
  }
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    resilient =
        MultisplitPlan(dev, n, m).run(in, out, RangeBucket{m}, RetryPolicy{});
    EXPECT_EQ(dev.resilience_stats().requests, 1u);
    EXPECT_EQ(dev.resilience_stats().faults_observed, 0u);
  }
  EXPECT_EQ(resilient.resilience.attempts, 1u);
  EXPECT_EQ(resilient.resilience.retries, 0u);
  EXPECT_FALSE(resilient.resilience.degraded);
  EXPECT_EQ(plain.bucket_offsets, resilient.bucket_offsets);
  // The validation pass is host-side and uncharged: modeled costs match
  // the plain run bit-for-bit.
  EXPECT_EQ(plain.stages.prescan_ms, resilient.stages.prescan_ms);
  EXPECT_EQ(plain.stages.scan_ms, resilient.stages.scan_ms);
  EXPECT_EQ(plain.stages.postscan_ms, resilient.stages.postscan_ms);
}

TEST(ResilientRun, RecoversFromArmedAllocFailure) {
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 11);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  dev.enable_chaos(ChaosPolicy{});
  dev.chaos()->arm_alloc_failure();  // first scratch alloc of attempt 1
  const MultisplitPlan plan(dev, n, m);
  const auto r = plan.run(in, out, RangeBucket{m}, RetryPolicy{});
  EXPECT_EQ(r.resilience.attempts, 2u);
  EXPECT_EQ(r.resilience.retries, 1u);
  EXPECT_GT(r.resilience.backoff_ms, 0.0);
  EXPECT_EQ(dev.resilience_stats().recovered, 1u);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                          RangeBucket{m}, /*stable=*/true);
}

TEST(ResilientRun, RecoversFromArmedLaunchAbort) {
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 12);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  dev.enable_chaos(ChaosPolicy{});
  dev.chaos()->arm_launch_abort();
  const MultisplitPlan plan(dev, n, m);
  const auto r = plan.run(in, out, RangeBucket{m}, RetryPolicy{});
  EXPECT_EQ(r.resilience.attempts, 2u);
  EXPECT_EQ(dev.resilience_stats().injected_launch_aborts, 1u);
  EXPECT_EQ(dev.resilience_stats().recovered, 1u);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                          RangeBucket{m}, /*stable=*/true);
}

TEST(ResilientRun, ValidationCatchesArmedOutputBitFlip) {
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 13);
  MultisplitConfig cfg;
  cfg.method = Method::kWarpLevel;
  // Count the method's kernels on a clean reference device so the flip can
  // be armed for the LAST kernel end of attempt 1 (after the output is
  // fully written, where only end-to-end validation can catch it).
  std::size_t kernels = 0;
  {
    sim::Device ref;
    sim::DeviceBuffer<u32> in(ref, std::span<const u32>(host)), out(ref, n);
    MultisplitPlan(ref, n, m, cfg).run(in, out, RangeBucket{m});
    kernels = ref.records().size();
  }
  ASSERT_GT(kernels, 0u);

  sim::Device dev;
  dev.enable_chaos(ChaosPolicy{});
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  dev.chaos()->protect_buffer(in.base_address());
  dev.chaos()->arm_bit_flip(out.base_address(), /*word=*/3, /*bit=*/30,
                            /*skip_kernel_ends=*/kernels - 1);
  const MultisplitPlan plan(dev, n, m, cfg);
  const auto r = plan.run(in, out, RangeBucket{m}, RetryPolicy{});
  EXPECT_EQ(r.resilience.attempts, 2u);
  EXPECT_EQ(r.resilience.validation_failures, 1u);
  EXPECT_EQ(dev.resilience_stats().validation_failures, 1u);
  EXPECT_EQ(dev.resilience_stats().injected_bit_flips, 1u);
  EXPECT_EQ(dev.resilience_stats().recovered, 1u);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                          RangeBucket{m}, /*stable=*/true);
}

TEST(ResilientRun, ExhaustedBudgetThrowsStructuredError) {
  const u64 n = 1u << 10;
  const u32 m = 8;
  const auto host = make_keys(n, m, 14);
  sim::Device dev;
  // Buffers BEFORE chaos: with p_alloc_fail = 1 every later allocation
  // fails, so every attempt of every method dies the same way.
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  ChaosPolicy pol;
  pol.p_alloc_fail = 1.0;
  dev.enable_chaos(pol);
  const MultisplitPlan plan(dev, n, m);
  RetryPolicy rp;
  rp.max_attempts = 4;
  try {
    plan.run(in, out, RangeBucket{m}, rp);
    FAIL() << "exhausted retries did not throw";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.context().kind, FaultKind::kRetryExhausted);
    EXPECT_NE(e.context().detail.find("4 attempts"), std::string::npos);
  }
  EXPECT_EQ(dev.resilience_stats().lost, 1u);
  EXPECT_EQ(dev.resilience_stats().faults_observed, 4u);
  EXPECT_EQ(dev.resilience_stats().retries, 3u);
}

TEST(ResilientRun, FallbackLadderEngagesUnderPersistentAborts) {
  const u64 n = 1u << 10;
  const u32 m = 8;
  const auto host = make_keys(n, m, 15);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  ChaosPolicy pol;
  pol.p_launch_abort = 1.0;  // every launch of every method aborts
  dev.enable_chaos(pol);
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  const MultisplitPlan plan(dev, n, m, cfg);
  RetryPolicy rp;
  rp.max_attempts = 4;
  rp.attempts_per_method = 1;  // degrade on every retry
  EXPECT_THROW(plan.run(in, out, RangeBucket{m}, rp), sim::SimError);
  // block -> warp -> direct -> recursive scan split: three downgrades.
  EXPECT_EQ(dev.resilience_stats().fallbacks, 3u);
  EXPECT_EQ(dev.resilience_stats().lost, 1u);
}

// -------------------------- exception safety of a faulted run (satellite)

TEST(PlanFault, FaultedRunLeaksNoAddressSpaceAndPlanStaysUsable) {
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 21);
  sim::Device dev;
  dev.enable_chaos(ChaosPolicy{});
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  // Recursive scan split allocates per round, so a mid-method failure
  // unwinds with scratch live (the DeferredScope regression this guards).
  MultisplitConfig cfg;
  cfg.method = Method::kRecursiveScanSplit;
  const MultisplitPlan plan(dev, n, m, cfg);

  // One clean run to settle the pool, then snapshot.
  const auto clean = plan.run(in, out, RangeBucket{m});
  const u64 live0 = dev.allocator().stats().bytes_live;
  u64 reserved_after_first_cycle = 0;

  for (int cycle = 0; cycle < 3; ++cycle) {
    // Fail the 3rd allocation from now: mid-method, after some scratch
    // (and for later rounds, some kernels) already happened.
    dev.chaos()->arm_alloc_failure(/*skip=*/2);
    EXPECT_THROW(plan.run(in, out, RangeBucket{m}), sim::SimError);
    // Unwinding released every parked scratch range back to the pool.
    EXPECT_EQ(dev.allocator().stats().bytes_live, live0)
        << "faulted run leaked live bytes (cycle " << cycle << ")";

    // The same plan must serve the next request, correctly.
    const auto r = plan.run(in, out, RangeBucket{m});
    EXPECT_EQ(r.method_selected, Method::kRecursiveScanSplit);
    EXPECT_EQ(r.bucket_offsets, clean.bucket_offsets);
    expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                            RangeBucket{m}, /*stable=*/true);

    // Address space must not grow cycle over cycle: the free lists absorb
    // and re-serve the fault/retry churn.
    const u64 reserved = dev.allocator().stats().bytes_reserved;
    if (cycle == 0) {
      reserved_after_first_cycle = reserved;
    } else {
      EXPECT_EQ(reserved, reserved_after_first_cycle)
          << "address space grew across fault cycles";
    }
  }
}

TEST(PlanFault, ResilientRunAfterFaultKeepsPooledScratchClean) {
  const u64 n = 1u << 12;
  const u32 m = 8;
  const auto host = make_keys(n, m, 22);
  sim::Device dev;
  dev.enable_chaos(ChaosPolicy{});
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  const MultisplitPlan plan(dev, n, m);
  // Faulted resilient run (recovers internally), then a plain run: the
  // recycled scratch must be indistinguishable from fresh.
  dev.chaos()->arm_alloc_failure(/*skip=*/1);
  const auto r1 = plan.run(in, out, RangeBucket{m}, RetryPolicy{});
  EXPECT_EQ(r1.resilience.attempts, 2u);
  const auto r2 = plan.run(in, out, RangeBucket{m});
  EXPECT_EQ(r1.bucket_offsets, r2.bucket_offsets);
  expect_valid_multisplit(host, buffer_to_vector(out), r2.bucket_offsets, m,
                          RangeBucket{m}, /*stable=*/true);
}

// ---------------- first-fault-wins under the parallel scheduler (satellite)

TEST(FaultRecord, FirstFaultWinsInAscendingItemOrder) {
  sim::Device dev;
  sim::DeviceBuffer<u32> buf(dev, 16 * kWarpSize, "fault_record.buf");
  buf.fill(0);
  sim::launch_warps(dev, "faulting_kernel", 16, [&](sim::Warp& w, u64 wid) {
    if (wid == 3 || wid == 7 || wid == 11) {
      sim::FaultContext ctx;
      ctx.kind = FaultKind::kGlobalOOB;
      ctx.kernel = "faulting_kernel";
      ctx.object = "fault_record.buf";
      ctx.index = wid;
      ctx.detail = "synthetic non-fatal fault";
      dev.record_fault(std::move(ctx));
    }
    w.store(buf, wid * kWarpSize, LaneArray<u32>::filled(1u));
  });
  // Whether the 16 warps ran serially or on 4 worker threads, the lowest
  // faulting item's context must win (merge order is ascending).
  const auto err = dev.take_last_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->index, 3u);
  EXPECT_FALSE(dev.take_last_error().has_value()) << "error not consumed";
  // The launch itself completed: every warp stored its lane values.
  EXPECT_EQ(buf[15 * kWarpSize], 1u);
}

// ------------------------------------------------- metrics integration

TEST(ChaosMetrics, ResilienceStatsFlowIntoTheReport) {
  const u64 n = 1u << 10;
  const u32 m = 8;
  const auto host = make_keys(n, m, 31);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  const MultisplitPlan plan(dev, n, m);
  plan.run(in, out, RangeBucket{m}, RetryPolicy{});
  const sim::MetricsReport rep = sim::analyze_device(dev);
  EXPECT_EQ(rep.resilience.requests, 1u);
  EXPECT_EQ(rep.resilience.faults_observed, 0u);
  EXPECT_EQ(rep.resilience.injected_total(), 0u);
}

// --------------------------------------------------- campaign acceptance

TEST(ChaosCampaign, FiveHundredRequestsNoSilentWrongResults) {
  split::ChaosCampaignConfig cfg;  // 500 requests, all four methods
  const split::ChaosCampaignReport rep = split::run_chaos_campaign(cfg);
  EXPECT_TRUE(rep.clean()) << split::format_campaign(rep);
  EXPECT_EQ(rep.silent_wrong, 0u);
  EXPECT_EQ(rep.total(), cfg.requests);
  // The policy actually exercised the machinery.
  EXPECT_GT(rep.stats.injected_alloc_failures, 0u);
  EXPECT_GT(rep.stats.injected_launch_aborts, 0u);
  EXPECT_GT(rep.stats.injected_bit_flips, 0u);
  EXPECT_GT(rep.stats.faults_observed, 0u);
  EXPECT_GT(rep.recovered, 0u);
  // Every injection is in the audit log.
  EXPECT_EQ(rep.injections.size(), rep.stats.injected_total());
}

TEST(ChaosCampaign, DeterministicGivenSeed) {
  split::ChaosCampaignConfig cfg;
  cfg.requests = 120;
  cfg.log2_n = 8;
  const auto a = split::run_chaos_campaign(cfg);
  const auto b = split::run_chaos_campaign(cfg);
  EXPECT_EQ(a.ok_first_try, b.ok_first_try);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.structured_errors, b.structured_errors);
  EXPECT_EQ(a.silent_wrong, b.silent_wrong);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.stats.injected_total(), b.stats.injected_total());
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    EXPECT_EQ(a.injections[i].site, b.injections[i].site) << "record " << i;
    EXPECT_EQ(a.injections[i].word, b.injections[i].word) << "record " << i;
    EXPECT_EQ(a.injections[i].bit, b.injections[i].bit) << "record " << i;
  }

  // A different chaos seed re-times the faults.
  split::ChaosCampaignConfig other = cfg;
  other.chaos.seed ^= 0xDEADBEEFull;
  const auto c = split::run_chaos_campaign(other);
  EXPECT_TRUE(c.clean()) << split::format_campaign(c);
}

}  // namespace
}  // namespace ms::test
