// Stream compaction: predicate and flag-vector variants.
#include <gtest/gtest.h>

#include <random>

#include "primitives/compact.hpp"

namespace ms::prim {
namespace {

using sim::Device;
using sim::DeviceBuffer;

class CompactTest : public ::testing::TestWithParam<u64> {};

TEST_P(CompactTest, PredicateCompactionPreservesOrder) {
  const u64 n = GetParam();
  Device dev;
  std::mt19937 rng(static_cast<u32>(n));
  DeviceBuffer<u32> in(dev, n), out(dev, n);
  for (u64 i = 0; i < n; ++i) in[i] = rng() % 1000;

  const auto pred = [](u32 x) { return x % 7 == 0; };
  const u64 kept = compact<u32>(dev, in, out, pred);

  std::vector<u32> want;
  for (u64 i = 0; i < n; ++i) {
    if (pred(in[i])) want.push_back(in[i]);
  }
  ASSERT_EQ(kept, want.size());
  for (u64 i = 0; i < kept; ++i) ASSERT_EQ(out[i], want[i]) << "index " << i;
}

TEST_P(CompactTest, FlagCompactionMatchesPredicate) {
  const u64 n = GetParam();
  Device dev;
  std::mt19937 rng(static_cast<u32>(n) + 9);
  DeviceBuffer<u32> in(dev, n), flags(dev, n), out(dev, n);
  std::vector<u32> want;
  for (u64 i = 0; i < n; ++i) {
    in[i] = rng();
    flags[i] = rng() % 2;
    if (flags[i]) want.push_back(in[i]);
  }
  const u64 kept = compact_by_flags<u32>(dev, in, flags, out);
  ASSERT_EQ(kept, want.size());
  for (u64 i = 0; i < kept; ++i) ASSERT_EQ(out[i], want[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompactTest,
                         ::testing::Values(1ull, 32ull, 33ull, 1000ull,
                                           4096ull, 100001ull));

TEST(CompactEdge, KeepAllAndKeepNone) {
  Device dev;
  const u64 n = 5000;
  DeviceBuffer<u32> in(dev, n), out(dev, n);
  for (u64 i = 0; i < n; ++i) in[i] = static_cast<u32>(i);
  EXPECT_EQ((compact<u32>(dev, in, out, [](u32) { return true; })), n);
  for (u64 i = 0; i < n; ++i) ASSERT_EQ(out[i], i);
  EXPECT_EQ((compact<u32>(dev, in, out, [](u32) { return false; })), 0u);
}

TEST(CompactEdge, OutputSmallerThanInputIsAllowedIfKeptFits) {
  Device dev;
  const u64 n = 1000;
  DeviceBuffer<u32> in(dev, n), flags(dev, n), out(dev, 10);
  flags.fill(0);
  for (u64 i = 0; i < 5; ++i) flags[i * 100] = 1;
  EXPECT_EQ((compact_by_flags<u32>(dev, in, flags, out)), 5u);
  flags.fill(1);
  EXPECT_THROW((compact_by_flags<u32>(dev, in, flags, out)),
               std::logic_error);
}

}  // namespace
}  // namespace ms::prim
