// Regression guard for the reproduction itself: the paper's headline
// *orderings* (who wins where) must keep holding on the cost model.  If a
// future change to the simulator or the kernels flips one of these, this
// suite -- not a human reading bench output -- catches it.
//
// Each claim cites the paper section it comes from.  Sizes are chosen
// large enough that launch overheads don't dominate (n = 2^19).
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"
#include "multisplit/sort_baselines.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;

constexpr u64 kN = 1u << 19;

split::MultisplitResult run(Method meth, u32 m, bool kv, u64 seed = 7) {
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = seed;
  const auto host = workload::generate_keys(kN, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, kN);
  MultisplitConfig cfg;
  cfg.method = meth;
  if (!kv) return split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg);
  const auto vals = workload::identity_values(kN);
  sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals));
  sim::DeviceBuffer<u32> kout(dev, kN), vout(dev, kN);
  return split::multisplit_pairs(dev, in, vin, kout, vout, m, RangeBucket{m},
                                 cfg);
}

f64 radix_ms(bool kv) {
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(kN, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, kN);
  if (!kv) {
    return split::radix_sort_multisplit_keys(dev, in, out, 2, RangeBucket{2})
        .total_ms();
  }
  const auto vals = workload::identity_values(kN);
  sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals));
  sim::DeviceBuffer<u32> kout(dev, kN), vout(dev, kN);
  return split::radix_sort_multisplit_pairs(dev, in, vin, kout, vout, 2,
                                            RangeBucket{2})
      .total_ms();
}

TEST(PaperShapes, WarpBeatsDirectAtSmallM_KeyOnly) {
  // Table 4 / Figure 3a: warp-level reordering pays at m = 2.
  EXPECT_LT(run(Method::kWarpLevel, 2, false).total_ms(),
            run(Method::kDirect, 2, false).total_ms());
}

TEST(PaperShapes, DirectBeatsWarpAtM32_KeyOnly) {
  // Table 4: at m = 32 key-only the reorder no longer pays.
  EXPECT_LT(run(Method::kDirect, 32, false).total_ms(),
            run(Method::kWarpLevel, 32, false).total_ms());
}

TEST(PaperShapes, BlockIsWorstAtM2_KeyOnly) {
  // Table 4: block-level's hierarchy overhead dominates at tiny m.
  const f64 block = run(Method::kBlockLevel, 2, false).total_ms();
  EXPECT_GT(block, run(Method::kDirect, 2, false).total_ms());
  EXPECT_GT(block, run(Method::kWarpLevel, 2, false).total_ms());
}

TEST(PaperShapes, BlockIsBestAtM32) {
  // Table 4 / Figure 3: block-level wins at large m, both scenarios.
  for (const bool kv : {false, true}) {
    const f64 block = run(Method::kBlockLevel, 32, kv).total_ms();
    EXPECT_LT(block, run(Method::kDirect, 32, kv).total_ms()) << "kv=" << kv;
    EXPECT_LT(block, run(Method::kWarpLevel, 32, kv).total_ms()) << "kv=" << kv;
  }
}

TEST(PaperShapes, DirectIsWorstAtM32_KeyValue) {
  // Table 4: two fragmented scatters (keys + values) sink Direct MS.
  const f64 direct = run(Method::kDirect, 32, true).total_ms();
  EXPECT_GT(direct, run(Method::kWarpLevel, 32, true).total_ms());
  EXPECT_GT(direct, run(Method::kBlockLevel, 32, true).total_ms());
}

TEST(PaperShapes, EveryProposedMethodBeatsRadixSortByAtLeast2x) {
  // Abstract / Table 6: 3.0-6.7x key-only, 4.4-8.0x key-value.
  for (const bool kv : {false, true}) {
    const f64 radix = radix_ms(kv);
    for (const Method meth :
         {Method::kDirect, Method::kWarpLevel, Method::kBlockLevel}) {
      for (const u32 m : {2u, 8u, 32u}) {
        EXPECT_GT(radix / run(meth, m, kv).total_ms(), 2.0)
            << to_string(meth) << " m=" << m << " kv=" << kv;
      }
    }
  }
}

TEST(PaperShapes, ReducedBitSortBeatsFullSortButLosesToMultisplit) {
  // Sections 3.4 / 6.2: reduced-bit sort is the best sort-based option,
  // and still loses to the proposed methods for m <= 32.
  const f64 radix = radix_ms(false);
  for (const u32 m : {2u, 8u, 32u}) {
    const f64 rbs = run(Method::kReducedBitSort, m, false).total_ms();
    EXPECT_LT(rbs, radix) << "m=" << m;
    EXPECT_GT(rbs, run(Method::kBlockLevel, m, false).total_ms()) << "m=" << m;
  }
}

TEST(PaperShapes, RecursiveSplitScalesWithLogM) {
  // Section 3.2 / Table 4: ceil(log2 m) split rounds.
  const f64 m2 = run(Method::kRecursiveScanSplit, 2, false).total_ms();
  const f64 m32 = run(Method::kRecursiveScanSplit, 32, false).total_ms();
  EXPECT_GT(m32 / m2, 3.5);  // 5 rounds vs 1, minus shared labeling effects
  EXPECT_LT(m32 / m2, 6.5);
}

TEST(PaperShapes, BlockScanStageIsFlattestInM) {
  // Table 1 / Table 4: block-level's global scan is NW x smaller.
  const auto d2 = run(Method::kDirect, 2, false);
  const auto d32 = run(Method::kDirect, 32, false);
  const auto b2 = run(Method::kBlockLevel, 2, false);
  const auto b32 = run(Method::kBlockLevel, 32, false);
  EXPECT_LT(b32.stages.scan_ms, d32.stages.scan_ms);
  // Direct's scan grows by much more than block's between m=2 and m=32.
  EXPECT_GT(d32.stages.scan_ms - d2.stages.scan_ms,
            2.0 * (b32.stages.scan_ms - b2.stages.scan_ms));
}

TEST(PaperShapes, FusedSortBeatsReducedBitSort) {
  // Section 3.4's future-work prediction, verified by the implementation.
  for (const u32 m : {2u, 32u, 256u}) {
    EXPECT_LT(run(Method::kFusedBucketSort, m, false).total_ms(),
              run(Method::kReducedBitSort, m, false).total_ms())
        << "m=" << m;
  }
}

TEST(PaperShapes, BlockLevelDegradesLinearlyPast32Buckets) {
  // Figure 4: block-level MS cost grows ~linearly in m (shared-memory
  // histogram pressure), reduced-bit sort only logarithmically.
  const f64 b64 = run(Method::kBlockLevel, 64, false).total_ms();
  const f64 b512 = run(Method::kBlockLevel, 512, false).total_ms();
  EXPECT_GT(b512 / b64, 3.0);
  const f64 r64 = run(Method::kReducedBitSort, 64, false).total_ms();
  const f64 r512 = run(Method::kReducedBitSort, 512, false).total_ms();
  EXPECT_LT(r512 / r64, 1.8);
}

TEST(PaperShapes, ThreadCoarseningShrinksTheScanStage) {
  // Footnote 5: k items per thread cut the histogram matrix ~1/k.  Needs
  // a size where the scan stage is not pure launch overhead.
  const u64 n = 1u << 21;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  f64 scan_k1 = 0, scan_k8 = 0;
  for (const u32 k : {1u, 8u}) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kDirect;
    cfg.items_per_thread = k;
    const auto r = split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
    (k == 1 ? scan_k1 : scan_k8) = r.stages.scan_ms;
  }
  EXPECT_LT(scan_k8, 0.5 * scan_k1);
}

}  // namespace
}  // namespace ms::test
