// Cost-model properties: the invariants the paper-reproduction benches
// rely on.  Simulated time must be (a) deterministic, (b) ~linear in n,
// (c) ordered sensibly across device profiles, and (d) bounded below by
// the speed-of-light analysis of Section 6.2.2.
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;

f64 run_ms(const sim::DeviceProfile& profile, u64 n, u32 m, Method meth,
           u64 seed = 1) {
  workload::WorkloadConfig wc;
  wc.seed = seed;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev(profile);
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = meth;
  return split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg)
      .total_ms();
}

TEST(CostModel, Deterministic) {
  const f64 a = run_ms(sim::DeviceProfile::tesla_k40c(), 100000, 8,
                       Method::kBlockLevel);
  const f64 b = run_ms(sim::DeviceProfile::tesla_k40c(), 100000, 8,
                       Method::kBlockLevel);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(CostModel, ApproximatelyLinearInN) {
  // Doubling n should roughly double the modeled time; n is large enough
  // that fixed kernel-launch overheads do not distort the ratio.
  for (const Method meth :
       {Method::kDirect, Method::kWarpLevel, Method::kBlockLevel}) {
    const f64 t1 =
        run_ms(sim::DeviceProfile::tesla_k40c(), 1u << 19, 8, meth);
    const f64 t2 =
        run_ms(sim::DeviceProfile::tesla_k40c(), 1u << 20, 8, meth);
    EXPECT_GT(t2 / t1, 1.6) << to_string(meth);
    EXPECT_LT(t2 / t1, 2.5) << to_string(meth);
  }
}

TEST(CostModel, MaxwellIsSlowerThanKepler) {
  // The 750 Ti has ~30% of the K40c's bandwidth and fewer SMs; absolute
  // times must be substantially larger for the same problem.
  const f64 k40 = run_ms(sim::DeviceProfile::tesla_k40c(), 1u << 19, 8,
                         Method::kBlockLevel);
  const f64 m750 = run_ms(sim::DeviceProfile::gtx_750_ti(), 1u << 19, 8,
                          Method::kBlockLevel);
  EXPECT_GT(m750, 1.8 * k40);
}

TEST(CostModel, SpeedOfLightIsAFloor) {
  // No method may beat the 3-accesses-per-key bound on its own device.
  const u64 n = 1u << 18;
  const auto sol = sim::DeviceProfile::speed_of_light();
  const f64 floor_ms =
      3.0 * n * 4 / (sol.mem_bandwidth_gbps * 1e9) * 1e3;
  for (const Method meth :
       {Method::kDirect, Method::kWarpLevel, Method::kBlockLevel}) {
    const f64 t = run_ms(sim::DeviceProfile::tesla_k40c(), n, 4, meth);
    EXPECT_GT(t, floor_ms) << to_string(meth);
  }
}

TEST(CostModel, KernelTimeDecomposition) {
  // kernel = launch + max(mem, issue); components are exposed per record.
  sim::Device dev;
  sim::DeviceBuffer<u32> buf(dev, 1u << 16);
  sim::device_fill<u32>(dev, buf, 1);
  const auto& r = dev.records().back();
  EXPECT_NEAR(r.time_ms,
              dev.profile().kernel_launch_us * 1e-3 +
                  std::max(r.mem_time_ms, r.issue_time_ms),
              1e-12);
  EXPECT_GT(r.mem_time_ms, 0.0);
  EXPECT_GT(r.issue_time_ms, 0.0);
}

TEST(CostModel, CoalescingEfficiencyDiagnostics) {
  sim::Device dev;
  sim::DeviceBuffer<u32> buf(dev, 1u << 16);
  // Streaming fill: near-perfect efficiency.
  sim::device_fill<u32>(dev, buf, 1);
  const auto ev_fill = dev.records().back().events;
  EXPECT_GT(sim::coalescing_efficiency(ev_fill, dev.profile()), 0.9);
  // Strided scatter: terrible efficiency.
  sim::launch_warps(dev, "strided", 64, [&](sim::Warp& w, u64 wid) {
    LaneArray<u64> idx;
    for (u32 i = 0; i < kWarpSize; ++i)
      idx[i] = (wid * kWarpSize + i) * 16 % (1u << 16);
    w.scatter(buf, idx, LaneArray<u32>::filled(0));
  });
  const auto ev_scatter = dev.records().back().events;
  EXPECT_LT(sim::coalescing_efficiency(ev_scatter, dev.profile()), 0.5);
}

TEST(CostModel, UniformIsWorstCaseDistribution) {
  // Section 6.5: skewed inputs can only help the multisplit methods.
  const u64 n = 1u << 17;
  const u32 m = 16;
  const auto run_dist = [&](workload::Distribution d) {
    workload::WorkloadConfig wc;
    wc.dist = d;
    wc.m = m;
    const auto host = workload::generate_keys(n, wc);
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kBlockLevel;
    return split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg)
        .total_ms();
  };
  const f64 t_uniform = run_dist(workload::Distribution::kUniform);
  const f64 t_binomial = run_dist(workload::Distribution::kBinomial);
  const f64 t_skewed = run_dist(workload::Distribution::kSkewedOne);
  EXPECT_LE(t_binomial, t_uniform * 1.02);
  EXPECT_LE(t_skewed, t_uniform * 1.02);
}

}  // namespace
}  // namespace ms::test
