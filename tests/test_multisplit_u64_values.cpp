// 64-bit value payloads (the paper's "values larger than the size of a
// pointer use a pointer in place of the actual value"): every pair-capable
// method must carry u64 values intact and stably.
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;

class U64Values : public ::testing::TestWithParam<Method> {};

TEST_P(U64Values, PairsCarryWidePayloads) {
  const Method meth = GetParam();
  const u64 n = 60000;
  const u32 m = 8;
  workload::WorkloadConfig wc;
  wc.seed = static_cast<u64>(meth) + 1;
  const auto host = workload::generate_keys(n, wc);

  sim::Device dev;
  sim::DeviceBuffer<u32> kin(dev, std::span<const u32>(host)), kout(dev, n);
  sim::DeviceBuffer<u64> vin(dev, n), vout(dev, n);
  // Value = (tag << 32) | original index: both halves must survive.
  for (u64 i = 0; i < n; ++i) vin[i] = (u64{0xFEEDF00D} << 32) | i;

  MultisplitConfig cfg;
  cfg.method = meth;
  const auto r =
      split::multisplit_pairs(dev, kin, vin, kout, vout, m, RangeBucket{m}, cfg);

  expect_valid_multisplit(host, buffer_to_vector(kout), r.bucket_offsets, m,
                          RangeBucket{m}, /*stable=*/true);
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(vout[i] >> 32, 0xFEEDF00Du) << "high half clobbered at " << i;
    const u64 orig = vout[i] & 0xFFFFFFFFu;
    ASSERT_EQ(kout[i], host[orig]) << "value desynchronized at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PairMethods, U64Values,
                         ::testing::Values(Method::kDirect, Method::kWarpLevel,
                                           Method::kBlockLevel,
                                           Method::kRecursiveScanSplit,
                                           Method::kReducedBitSort,
                                           Method::kFusedBucketSort));

TEST(U64Values, WidePayloadsCostMoreMemoryTraffic) {
  // A u64 payload doubles the value traffic; the model must charge the
  // extra DRAM transactions (total time may stay issue-bound).
  const u64 n = 1u << 17;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  u64 tx32, tx64;
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> kin(dev, std::span<const u32>(host)), kout(dev, n);
    sim::DeviceBuffer<u32> vin(dev, n), vout(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kBlockLevel;
    const auto r = split::multisplit_pairs(dev, kin, vin, kout, vout, 8,
                                           RangeBucket{8}, cfg);
    tx32 = r.summary.events.dram_read_tx + r.summary.events.dram_write_tx;
  }
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> kin(dev, std::span<const u32>(host)), kout(dev, n);
    sim::DeviceBuffer<u64> vin(dev, n), vout(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kBlockLevel;
    const auto r = split::multisplit_pairs(dev, kin, vin, kout, vout, 8,
                                           RangeBucket{8}, cfg);
    tx64 = r.summary.events.dram_read_tx + r.summary.events.dram_write_tx;
  }
  EXPECT_GT(static_cast<f64>(tx64), 1.2 * static_cast<f64>(tx32));
}

TEST(U64Values, LargeMBlockLevel) {
  const u64 n = 30000;
  const u32 m = 100;
  workload::WorkloadConfig wc;
  wc.m = m;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> kin(dev, std::span<const u32>(host)), kout(dev, n);
  sim::DeviceBuffer<u64> vin(dev, n), vout(dev, n);
  for (u64 i = 0; i < n; ++i) vin[i] = i * 0x100000001ull;
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  const auto r =
      split::multisplit_pairs(dev, kin, vin, kout, vout, m, RangeBucket{m}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(kout), r.bucket_offsets, m,
                          RangeBucket{m}, true);
  for (u64 i = 0; i < n; ++i)
    ASSERT_EQ(kout[i], host[vout[i] & 0xFFFFFFFF]);
}

}  // namespace
}  // namespace ms::test
