// Sort-based multisplit baselines (full radix sort, identity-bucket sort).
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::RangeBucket;

TEST(SortBaselines, RadixSortIsAValidMultisplitForRangeBuckets) {
  const u64 n = 50000;
  const u32 m = 8;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  const auto r =
      split::radix_sort_multisplit_keys(dev, in, out, m, RangeBucket{m});
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                          RangeBucket{m}, /*stable=*/false);
  // Stronger than multisplit: fully sorted.
  for (u64 i = 1; i < n; ++i) ASSERT_LE(out[i - 1], out[i]);
}

TEST(SortBaselines, PairVariantKeepsValuesAttached) {
  const u64 n = 30000;
  const u32 m = 4;
  workload::WorkloadConfig wc;
  wc.seed = 11;
  const auto host = workload::generate_keys(n, wc);
  const auto vals = workload::identity_values(n);
  sim::Device dev;
  sim::DeviceBuffer<u32> kin(dev, std::span<const u32>(host));
  sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals));
  sim::DeviceBuffer<u32> kout(dev, n), vout(dev, n);
  const auto r = split::radix_sort_multisplit_pairs(dev, kin, vin, kout, vout,
                                                    m, RangeBucket{m});
  expect_valid_multisplit(host, buffer_to_vector(kout), r.bucket_offsets, m,
                          RangeBucket{m}, false);
  for (u64 i = 0; i < n; ++i) ASSERT_EQ(kout[i], host[vout[i]]);
}

TEST(SortBaselines, ReducedBitsAreCheaperThanFullSort) {
  // Sorting only log2(m) bits (identity-bucket case, Table 4's last row)
  // must beat the full 32-bit sort by roughly the pass ratio.
  const u64 n = 1u << 17;
  workload::WorkloadConfig wc;
  wc.dist = workload::Distribution::kIdentity;
  wc.m = 8;
  const auto host = workload::generate_keys(n, wc);
  f64 t_full, t_3bit;
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    split::radix_sort_multisplit_keys(dev, in, out, 8, split::IdentityBucket{},
                                      32);
    t_full = dev.total_ms();
  }
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    split::radix_sort_multisplit_keys(dev, in, out, 8, split::IdentityBucket{},
                                      3);
    t_3bit = dev.total_ms();
  }
  EXPECT_GT(t_full, 3.0 * t_3bit);
}

TEST(SortBaselines, OffsetsHandleEmptyBuckets) {
  const u64 n = 1000;
  std::vector<u32> host(n, 0xFFFFFFFFu);  // everything in the last bucket
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  const auto r =
      split::radix_sort_multisplit_keys(dev, in, out, 4, RangeBucket{4});
  EXPECT_EQ(r.bucket_offsets, (std::vector<u32>{0, 0, 0, 0, 1000}));
}

}  // namespace
}  // namespace ms::test
