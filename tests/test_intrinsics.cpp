// Warp intrinsic semantics: ballot / shfl / shfl_up / shfl_down / shfl_xor /
// popc must match their CUDA definitions bit-exactly, including the
// behaviour of inactive lanes, because the paper's Algorithms 2 and 3 are
// bit-level programs over these primitives.
#include <gtest/gtest.h>

#include <random>

#include "sim/sim.hpp"

namespace ms::sim {
namespace {

class IntrinsicsTest : public ::testing::Test {
 protected:
  Device dev;

  /// Run `f` inside a single-warp kernel (intrinsics must be charged, so
  /// they need an open kernel bracket).
  template <typename F>
  void in_warp(F&& f) {
    launch_warps(dev, "test", 1, [&](Warp& w, u64) { f(w); });
  }
};

TEST_F(IntrinsicsTest, BallotCollectsPredicateBits) {
  in_warp([&](Warp& w) {
    const auto pred = LaneArray<u32>::iota().map([](u32 i) { return i % 3 == 0 ? 1u : 0u; });
    const LaneMask got = w.ballot(pred);
    LaneMask want = 0;
    for (u32 i = 0; i < kWarpSize; i += 3) want |= 1u << i;
    EXPECT_EQ(got, want);
  });
}

TEST_F(IntrinsicsTest, BallotTreatsAnyNonzeroAsTrue) {
  in_warp([&](Warp& w) {
    const auto pred = LaneArray<u32>::filled(0xDEADBEEF);
    EXPECT_EQ(w.ballot(pred), kFullMask);
  });
}

TEST_F(IntrinsicsTest, BallotInactiveLanesContributeZero) {
  in_warp([&](Warp& w) {
    const auto pred = LaneArray<u32>::filled(1);
    EXPECT_EQ(w.ballot(pred, 0x0000FFFFu), 0x0000FFFFu);
    EXPECT_EQ(w.ballot(pred, 0u), 0u);
  });
}

TEST_F(IntrinsicsTest, AnyAndAllVotes) {
  in_warp([&](Warp& w) {
    EXPECT_FALSE(w.any(LaneArray<u32>{}));
    EXPECT_TRUE(w.all(LaneArray<u32>::filled(1)));
    LaneArray<u32> one{};
    one[17] = 1;
    EXPECT_TRUE(w.any(one));
    EXPECT_FALSE(w.all(one));
    // Inactive lanes don't participate.
    EXPECT_FALSE(w.any(one, 0x0000FFFFu));
    EXPECT_TRUE(w.all(one, 1u << 17));
  });
}

TEST_F(IntrinsicsTest, ShflBroadcastFromUniformLane) {
  in_warp([&](Warp& w) {
    const auto v = LaneArray<u32>::iota(100);
    const auto got = w.shfl(v, 5);
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(got[i], 105u);
  });
}

TEST_F(IntrinsicsTest, ShflPerLaneSourceWrapsModulo32) {
  in_warp([&](Warp& w) {
    const auto v = LaneArray<u32>::iota();
    const auto src = LaneArray<u32>::iota().map([](u32 i) { return i + 33; });
    const auto got = w.shfl(v, src);
    // Source lane (i + 33) % 32 == (i + 1) % 32.
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(got[i], (i + 1) % kWarpSize);
  });
}

TEST_F(IntrinsicsTest, ShflUpKeepsLowLanes) {
  in_warp([&](Warp& w) {
    const auto v = LaneArray<u32>::iota(10);
    const auto got = w.shfl_up(v, 3);
    for (u32 i = 0; i < 3; ++i) EXPECT_EQ(got[i], 10 + i) << "low lane " << i;
    for (u32 i = 3; i < kWarpSize; ++i) EXPECT_EQ(got[i], 10 + i - 3);
  });
}

TEST_F(IntrinsicsTest, ShflDownKeepsHighLanes) {
  in_warp([&](Warp& w) {
    const auto v = LaneArray<u32>::iota();
    const auto got = w.shfl_down(v, 4);
    for (u32 i = 0; i + 4 < kWarpSize; ++i) EXPECT_EQ(got[i], i + 4);
    for (u32 i = kWarpSize - 4; i < kWarpSize; ++i) EXPECT_EQ(got[i], i);
  });
}

TEST_F(IntrinsicsTest, ShflXorButterfly) {
  in_warp([&](Warp& w) {
    const auto v = LaneArray<u32>::iota();
    const auto got = w.shfl_xor(v, 1);
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(got[i], i ^ 1u);
    const auto got16 = w.shfl_xor(v, 16);
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(got16[i], i ^ 16u);
  });
}

TEST_F(IntrinsicsTest, PopcCountsPerLane) {
  in_warp([&](Warp& w) {
    LaneArray<u32> v;
    for (u32 i = 0; i < kWarpSize; ++i) v[i] = (1u << i) - 1;  // i set bits
    const auto got = w.popc(v);
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(got[i], i);
  });
}

TEST_F(IntrinsicsTest, IntrinsicsChargeIssueSlots) {
  dev.begin_kernel("charged");
  Warp w(dev, 0);
  const u64 before = dev.events().issue_slots;
  w.ballot(LaneArray<u32>::filled(1));
  w.shfl(LaneArray<u32>::iota(), 0u);
  w.popc(LaneArray<u32>::filled(3));
  w.charge(5);
  EXPECT_EQ(dev.events().issue_slots, before + 3 + 5);
  dev.end_kernel();
}

TEST_F(IntrinsicsTest, RandomizedShflMatchesReference) {
  std::mt19937 rng(99);
  in_warp([&](Warp& w) {
    for (int trial = 0; trial < 100; ++trial) {
      LaneArray<u32> v, src;
      for (u32 i = 0; i < kWarpSize; ++i) {
        v[i] = rng();
        src[i] = rng() % 64;
      }
      const auto got = w.shfl(v, src);
      for (u32 i = 0; i < kWarpSize; ++i)
        ASSERT_EQ(got[i], v[src[i] % kWarpSize]);
    }
  });
}

}  // namespace
}  // namespace ms::sim
