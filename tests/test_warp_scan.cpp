// Warp-level scan and reduction building blocks.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "primitives/warp_scan.hpp"

namespace ms::prim {
namespace {

using sim::Device;

class WarpScanTest : public ::testing::Test {
 protected:
  Device dev;

  template <typename F>
  void in_warp(F&& f) {
    sim::launch_warps(dev, "test", 1, [&](sim::Warp& w, u64) { f(w); });
  }
};

TEST_F(WarpScanTest, InclusiveScanIota) {
  in_warp([&](sim::Warp& w) {
    const auto got = warp_inclusive_scan(w, LaneArray<u32>::filled(1));
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(got[i], i + 1);
  });
}

TEST_F(WarpScanTest, ExclusiveScanMatchesReference) {
  std::mt19937 rng(11);
  in_warp([&](sim::Warp& w) {
    for (int trial = 0; trial < 50; ++trial) {
      LaneArray<u32> v;
      for (u32 i = 0; i < kWarpSize; ++i) v[i] = rng() % 1000;
      const auto got = warp_exclusive_scan(w, v);
      u32 acc = 0;
      for (u32 i = 0; i < kWarpSize; ++i) {
        ASSERT_EQ(got[i], acc) << "lane " << i;
        acc += v[i];
      }
    }
  });
}

TEST_F(WarpScanTest, ReduceSumBroadcastsToAllLanes) {
  std::mt19937 rng(12);
  in_warp([&](sim::Warp& w) {
    LaneArray<u32> v;
    u32 want = 0;
    for (u32 i = 0; i < kWarpSize; ++i) {
      v[i] = rng() % 1000;
      want += v[i];
    }
    const auto got = warp_reduce_sum(w, v);
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(got[i], want);
  });
}

TEST_F(WarpScanTest, ReduceMax) {
  in_warp([&](sim::Warp& w) {
    LaneArray<u32> v = LaneArray<u32>::iota();
    v[13] = 999;
    const auto got = warp_reduce_max(w, v);
    for (u32 i = 0; i < kWarpSize; ++i) EXPECT_EQ(got[i], 999u);
  });
}

TEST_F(WarpScanTest, WorksForU64) {
  in_warp([&](sim::Warp& w) {
    const auto v = LaneArray<u64>::filled(u64{1} << 40);
    const auto got = warp_reduce_sum(w, v);
    EXPECT_EQ(got[0], (u64{1} << 40) * 32);
  });
}

TEST_F(WarpScanTest, LaneAddHelpers) {
  in_warp([&](sim::Warp& w) {
    const auto a = LaneArray<u32>::iota();
    const auto b = LaneArray<u32>::filled(5);
    const auto c = lane_add(w, a, b);
    const auto d = lane_add_scalar(w, a, 7u);
    for (u32 i = 0; i < kWarpSize; ++i) {
      EXPECT_EQ(c[i], i + 5);
      EXPECT_EQ(d[i], i + 7);
    }
  });
}

TEST_F(WarpScanTest, ScanUsesLogRounds) {
  // 5 shuffle rounds for a 32-wide scan: count charged issue slots.
  dev.begin_kernel("count");
  sim::Warp w(dev, 0);
  const u64 before = dev.events().issue_slots;
  warp_inclusive_scan(w, LaneArray<u32>::filled(1));
  const u64 slots = dev.events().issue_slots - before;
  EXPECT_EQ(slots, 10u);  // 5 shfl_up + 5 predicated adds
  dev.end_kernel();
}

}  // namespace
}  // namespace ms::prim
