// Randomized insertion (paper Section 3.5): validity under relaxation
// sweeps, skewed inputs that force mid-flushes, and the cost trade-off the
// paper analyzes (more relaxation = fewer collisions but more compaction).
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;

class RelaxationSweep : public ::testing::TestWithParam<f64> {};

TEST_P(RelaxationSweep, ValidAcrossRelaxationFactors) {
  const f64 x = GetParam();
  const u64 n = 60000;
  workload::WorkloadConfig wc;
  wc.seed = static_cast<u64>(x * 1000);
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kRandomizedInsertion;
  cfg.relaxation = x;
  const auto r = split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 8,
                          RangeBucket{8}, /*stable=*/false);
}

INSTANTIATE_TEST_SUITE_P(Factors, RelaxationSweep,
                         ::testing::Values(1.25, 1.5, 2.0, 3.0, 4.0));

TEST(RandomizedInsertion, SurvivesHeavySkewViaMidFlushes) {
  // 90% of keys in one bucket: per-block shared buffers overflow and the
  // mid-flush path must engage.
  const u64 n = 40000;
  std::mt19937 rng(5);
  std::vector<u32> host(n);
  for (auto& k : host) k = (rng() % 10 == 0) ? rng() : 0x10000000u;
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kRandomizedInsertion;
  const auto r = split::multisplit_keys(dev, in, out, 16, RangeBucket{16}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 16,
                          RangeBucket{16}, false);
}

TEST(RandomizedInsertion, SortedInputClustersPerBlock) {
  // Sorted input: each block sees only 1-2 buckets, the worst case for
  // expected-share buffer sizing.
  const u64 n = 50000;
  workload::WorkloadConfig wc;
  wc.dist = workload::Distribution::kSortedUniform;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kRandomizedInsertion;
  const auto r = split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 8,
                          RangeBucket{8}, false);
}

TEST(RandomizedInsertion, CollisionsDropWithRelaxation) {
  const u64 n = 100000;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  u64 conflicts_tight, conflicts_loose;
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kRandomizedInsertion;
    cfg.relaxation = 1.25;
    split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
    conflicts_tight = dev.summary_all().events.atomic_conflicts;
  }
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kRandomizedInsertion;
    cfg.relaxation = 4.0;
    split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
    conflicts_loose = dev.summary_all().events.atomic_conflicts;
  }
  EXPECT_GT(conflicts_tight, conflicts_loose);
}

TEST(RandomizedInsertion, SlowerThanDeterministicMethods) {
  // Section 3.5's conclusion: contention-based insertion is not
  // competitive.  It must lose to warp-level MS by a wide margin.
  const u64 n = 1u << 17;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  f64 t_rand, t_warp;
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kRandomizedInsertion;
    t_rand = split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg)
                 .total_ms();
  }
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = Method::kWarpLevel;
    t_warp = split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg)
                 .total_ms();
  }
  EXPECT_GT(t_rand, 2.0 * t_warp);
}

TEST(RandomizedInsertion, RejectsKeyValueAndLargeM) {
  sim::Device dev;
  sim::DeviceBuffer<u32> a(dev, 256), b(dev, 256), c(dev, 256), d(dev, 256);
  MultisplitConfig cfg;
  cfg.method = Method::kRandomizedInsertion;
  EXPECT_THROW(
      split::multisplit_pairs(dev, a, b, c, d, 4, RangeBucket{4}, cfg),
      std::logic_error);
  EXPECT_THROW(split::multisplit_keys(dev, a, c, 64, RangeBucket{64}, cfg),
               std::logic_error);
}

}  // namespace
}  // namespace ms::test
