// Shared validation helpers for the multisplit test suites: the invariants
// every multisplit result must satisfy (Section 3.1's definition).
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "multisplit/multisplit.hpp"
#include "workload/distributions.hpp"

namespace ms::test {

/// Check the multisplit output invariants:
///  1. output is a permutation of the input;
///  2. each bucket's elements are contiguous and buckets appear in
///     ascending ID order, exactly at the reported offsets;
///  3. (stable methods) the per-bucket subsequences preserve input order.
template <typename BucketFn>
void expect_valid_multisplit(const std::vector<u32>& input,
                             const std::vector<u32>& output,
                             const std::vector<u32>& offsets, u32 m,
                             BucketFn bucket_of, bool stable) {
  ASSERT_EQ(input.size(), output.size());
  ASSERT_EQ(offsets.size(), m + 1u);
  ASSERT_EQ(offsets[0], 0u);
  ASSERT_EQ(offsets[m], input.size());

  // 1. Permutation (multiset equality via sorted copies).
  {
    std::vector<u32> a = input, b = output;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "output is not a permutation of the input";
  }

  // 2. Offsets are monotone and every element sits inside its bucket range.
  for (u32 j = 0; j < m; ++j) ASSERT_LE(offsets[j], offsets[j + 1]);
  for (u64 i = 0; i < output.size(); ++i) {
    const u32 b = bucket_of(output[i]);
    ASSERT_LT(b, m) << "bucket function out of range";
    ASSERT_GE(i, offsets[b]) << "element before its bucket range, i=" << i;
    ASSERT_LT(i, offsets[b + 1]) << "element after its bucket range, i=" << i;
  }

  // 3. Stability.
  if (stable) {
    std::vector<std::vector<u32>> want(m), got(m);
    for (u32 k : input) want[bucket_of(k)].push_back(k);
    for (u32 k : output) got[bucket_of(k)].push_back(k);
    for (u32 j = 0; j < m; ++j)
      ASSERT_EQ(want[j], got[j]) << "bucket " << j << " not stable";
  }
}

/// True for the methods whose output is input-order-preserving per bucket.
inline bool is_stable(split::Method method) {
  return method != split::Method::kRandomizedInsertion;
}

inline std::vector<u32> buffer_to_vector(const sim::DeviceBuffer<u32>& b) {
  return std::vector<u32>(b.host().begin(), b.host().end());
}

}  // namespace ms::test
