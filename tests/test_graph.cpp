// Graph substrate: CSR construction, generators, and the Dijkstra
// reference.
#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ms::graph {
namespace {

TEST(Csr, FromEdgesBuildsCorrectAdjacency) {
  const std::vector<std::array<u32, 3>> edges = {
      {0, 1, 5}, {0, 2, 3}, {1, 2, 1}, {2, 0, 7}};
  const Csr g = csr_from_edges(3, edges);
  EXPECT_EQ(g.num_vertices, 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.col_indices[g.row_offsets[2]], 0u);
  EXPECT_EQ(g.weights[g.row_offsets[2]], 7u);
}

TEST(Csr, ValidateCatchesCorruption) {
  Csr g = csr_from_edges(2, {{0, 1, 1}});
  g.col_indices[0] = 99;
  EXPECT_THROW(g.validate(), std::logic_error);
  Csr g2 = csr_from_edges(2, {{0, 1, 1}});
  g2.weights[0] = 0;
  EXPECT_THROW(g2.validate(), std::logic_error);
}

TEST(Dijkstra, SmallGraphByHand) {
  //    0 --5--> 1 --1--> 2
  //    0 ------3-------> 2 ; 2 --7--> 0
  const Csr g = csr_from_edges(3, {{0, 1, 5}, {0, 2, 3}, {1, 2, 1}, {2, 0, 7}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d, (std::vector<u32>{0, 5, 3}));
  const auto d2 = dijkstra(g, 2);
  EXPECT_EQ(d2, (std::vector<u32>{7, 12, 0}));
}

TEST(Dijkstra, UnreachableVerticesStayInfinite) {
  const Csr g = csr_from_edges(4, {{0, 1, 1}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[2], kInfDist);
  EXPECT_EQ(d[3], kInfDist);
  EXPECT_EQ(max_finite_distance(d), 1u);
}

TEST(Generators, AllProduceValidGraphs) {
  GenConfig gc;
  gc.max_weight = 50;
  const Csr a = social_like(500, 3000, gc);
  const Csr b = rmat(9, 4000, gc);
  const Csr c = low_diameter(600, 4000, gc);
  const Csr d = grid2d(20, gc);
  for (const Csr* g : {&a, &b, &c, &d}) {
    g->validate();
    EXPECT_GT(g->num_edges(), 0u);
  }
  EXPECT_EQ(d.num_vertices, 400u);
}

TEST(Generators, SocialLikeHasHeavyTail) {
  const Csr g = social_like(2000, 20000);
  u32 dmax = 0;
  u64 dsum = 0;
  for (u32 v = 0; v < g.num_vertices; ++v) {
    dmax = std::max(dmax, g.degree(v));
    dsum += g.degree(v);
  }
  const f64 avg = static_cast<f64>(dsum) / g.num_vertices;
  EXPECT_GT(dmax, 5 * avg) << "expected a hub-dominated degree profile";
}

TEST(Generators, LowDiameterIsConnectedFromZero) {
  const Csr g = low_diameter(1000, 6000);
  const auto d = dijkstra(g, 0);
  for (u32 v = 0; v < g.num_vertices; ++v)
    ASSERT_NE(d[v], kInfDist) << "vertex " << v << " unreachable";
}

TEST(Generators, GridDiameterScalesWithSide) {
  // BFS-depth (hop) comparison via unit weights.
  GenConfig gc;
  gc.max_weight = 1;
  const auto far10 = max_finite_distance(dijkstra(grid2d(10, gc), 0));
  const auto far30 = max_finite_distance(dijkstra(grid2d(30, gc), 0));
  EXPECT_GE(far30, 2 * far10);
}

TEST(Generators, Deterministic) {
  const Csr a = rmat(8, 2000);
  const Csr b = rmat(8, 2000);
  EXPECT_EQ(a.col_indices, b.col_indices);
  EXPECT_EQ(a.weights, b.weights);
}

}  // namespace
}  // namespace ms::graph
