// The central property suite: every multisplit method, across bucket
// counts, input sizes and key distributions, must produce a valid
// (permutation, contiguous, ascending, offset-correct, stable-if-promised)
// multisplit -- for key-only and key-value inputs.
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;
using workload::Distribution;

struct Case {
  Method method;
  u32 m;
  u64 n;
  Distribution dist;

  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << to_string(c.method) << "/m" << c.m << "/n" << c.n << "/"
              << workload::to_string(c.dist);
  }
};

class MultisplitCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(MultisplitCorrectness, KeyOnly) {
  const Case c = GetParam();
  workload::WorkloadConfig wc;
  wc.dist = c.dist;
  wc.m = c.m;
  wc.seed = c.n * 131 + c.m;
  const auto host = workload::generate_keys(c.n, wc);

  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, c.n);
  MultisplitConfig cfg;
  cfg.method = c.method;
  const auto r = split::multisplit_keys(dev, in, out, c.m, RangeBucket{c.m}, cfg);

  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, c.m,
                          RangeBucket{c.m}, is_stable(c.method));
  EXPECT_GT(r.total_ms(), 0.0);
}

TEST_P(MultisplitCorrectness, KeyValue) {
  const Case c = GetParam();
  if (c.method == Method::kRandomizedInsertion) {
    GTEST_SKIP() << "randomized insertion is key-only";
  }
  workload::WorkloadConfig wc;
  wc.dist = c.dist;
  wc.m = c.m;
  wc.seed = c.n * 733 + c.m;
  const auto host = workload::generate_keys(c.n, wc);
  const auto vals = workload::identity_values(c.n);

  sim::Device dev;
  sim::DeviceBuffer<u32> kin(dev, std::span<const u32>(host));
  sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals));
  sim::DeviceBuffer<u32> kout(dev, c.n), vout(dev, c.n);
  MultisplitConfig cfg;
  cfg.method = c.method;
  const auto r = split::multisplit_pairs(dev, kin, vin, kout, vout, c.m,
                                         RangeBucket{c.m}, cfg);

  expect_valid_multisplit(host, buffer_to_vector(kout), r.bucket_offsets, c.m,
                          RangeBucket{c.m}, /*stable=*/true);
  // Every value must still point at its original key.
  for (u64 i = 0; i < c.n; ++i)
    ASSERT_EQ(kout[i], host[vout[i]]) << "value desynchronized at " << i;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const Method methods[] = {Method::kDirect,
                            Method::kWarpLevel,
                            Method::kBlockLevel,
                            Method::kRecursiveScanSplit,
                            Method::kReducedBitSort,
                            Method::kRandomizedInsertion,
                            Method::kFusedBucketSort};
  for (const Method meth : methods) {
    for (const u32 m : {2u, 5u, 8u, 17u, 32u}) {
      for (const u64 n : {4096ull, 100001ull}) {
        cases.push_back({meth, m, n, Distribution::kUniform});
      }
      cases.push_back({meth, m, 30000ull, Distribution::kBinomial});
      cases.push_back({meth, m, 30000ull, Distribution::kSkewedOne});
    }
    cases.push_back({meth, 8, 30000ull, Distribution::kSortedUniform});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MultisplitCorrectness,
                         ::testing::ValuesIn(all_cases()));

TEST(MultisplitScanSplit, TwoBucketSplitWorks) {
  const u64 n = 50000;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kScanSplit;
  const auto r = split::multisplit_keys(dev, in, out, 2, RangeBucket{2}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 2,
                          RangeBucket{2}, true);
}

TEST(MultisplitScanSplit, RejectsMoreThanTwoBuckets) {
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, 64), out(dev, 64);
  MultisplitConfig cfg;
  cfg.method = Method::kScanSplit;
  EXPECT_THROW(split::multisplit_keys(dev, in, out, 3, RangeBucket{3}, cfg),
               std::logic_error);
}

TEST(MultisplitApi, TypeErasedBucketFunction) {
  const u64 n = 10000;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  const split::BucketFunction fn = [](u32 k) { return k % 2 == 0 ? 0u : 1u; };
  const auto r = split::multisplit_keys(dev, in, out, 2, fn, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 2,
                          [](u32 k) { return k % 2 == 0 ? 0u : 1u; }, true);
  (void)r;
}

TEST(MultisplitApi, NonMonotoneBucketsWork) {
  // Bucket IDs need not be order-correlated with keys (Figure 1's
  // prime/composite example): parity of popcount.
  const u64 n = 20000;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  const auto fn = [](u32 k) { return static_cast<u32>(std::popcount(k)) % 3; };
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kWarpLevel;
  const auto r = split::multisplit_keys(dev, in, out, 3, fn, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, 3, fn,
                          true);
}

TEST(MultisplitApi, StageTimingsSumToTotal) {
  const u64 n = 65536;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  for (const Method meth :
       {Method::kDirect, Method::kWarpLevel, Method::kBlockLevel}) {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    MultisplitConfig cfg;
    cfg.method = meth;
    const auto r = split::multisplit_keys(dev, in, out, 8, RangeBucket{8}, cfg);
    EXPECT_GT(r.stages.prescan_ms, 0.0);
    EXPECT_GT(r.stages.scan_ms, 0.0);
    EXPECT_GT(r.stages.postscan_ms, 0.0);
    EXPECT_NEAR(r.total_ms(), r.summary.total_ms, 1e-9);
  }
}

TEST(MultisplitApi, RejectsAliasedOrUndersizedBuffers) {
  sim::Device dev;
  sim::DeviceBuffer<u32> a(dev, 128), small(dev, 64);
  MultisplitConfig cfg;
  EXPECT_THROW(split::multisplit_keys(dev, a, a, 2, RangeBucket{2}, cfg),
               std::logic_error);
  EXPECT_THROW(split::multisplit_keys(dev, a, small, 2, RangeBucket{2}, cfg),
               std::logic_error);
}

}  // namespace
}  // namespace ms::test
