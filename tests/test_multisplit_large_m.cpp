// Block-level multisplit beyond the warp width (paper Sections 5.3 / 6.4):
// the row-vectorized shared-memory path, shared-memory pressure tracking,
// and the reduced-bit sort at large m.
#include <gtest/gtest.h>

#include "multisplit_test_util.hpp"

namespace ms::test {
namespace {

using split::Method;
using split::MultisplitConfig;
using split::RangeBucket;

class LargeM : public ::testing::TestWithParam<u32> {};

TEST_P(LargeM, BlockLevelKeyOnly) {
  const u32 m = GetParam();
  const u64 n = 60000;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = m;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  const auto r = split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                          RangeBucket{m}, true);
}

TEST_P(LargeM, BlockLevelKeyValue) {
  const u32 m = GetParam();
  const u64 n = 40000;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = m + 17;
  const auto host = workload::generate_keys(n, wc);
  const auto vals = workload::identity_values(n);
  sim::Device dev;
  sim::DeviceBuffer<u32> kin(dev, std::span<const u32>(host));
  sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals));
  sim::DeviceBuffer<u32> kout(dev, n), vout(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kBlockLevel;
  const auto r = split::multisplit_pairs(dev, kin, vin, kout, vout, m,
                                         RangeBucket{m}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(kout), r.bucket_offsets, m,
                          RangeBucket{m}, true);
  for (u64 i = 0; i < n; ++i) ASSERT_EQ(kout[i], host[vout[i]]);
}

TEST_P(LargeM, DirectLinearizedKeyValue) {
  // Section 5.3: Direct MS past the warp width (linearized histograms).
  const u32 m = GetParam();
  const u64 n = 40000;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = m + 3;
  const auto host = workload::generate_keys(n, wc);
  const auto vals = workload::identity_values(n);
  sim::Device dev;
  sim::DeviceBuffer<u32> kin(dev, std::span<const u32>(host));
  sim::DeviceBuffer<u32> vin(dev, std::span<const u32>(vals));
  sim::DeviceBuffer<u32> kout(dev, n), vout(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kDirect;
  const auto r = split::multisplit_pairs(dev, kin, vin, kout, vout, m,
                                         RangeBucket{m}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(kout), r.bucket_offsets, m,
                          RangeBucket{m}, true);
  for (u64 i = 0; i < n; ++i) ASSERT_EQ(kout[i], host[vout[i]]);
}

TEST_P(LargeM, FusedBucketSortKeyOnly) {
  const u32 m = GetParam();
  const u64 n = 50000;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = m + 5;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kFusedBucketSort;
  const auto r = split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                          RangeBucket{m}, true);
}

TEST_P(LargeM, ReducedBitSortKeyOnly) {
  const u32 m = GetParam();
  const u64 n = 50000;
  workload::WorkloadConfig wc;
  wc.m = m;
  wc.seed = m + 99;
  const auto host = workload::generate_keys(n, wc);
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
  MultisplitConfig cfg;
  cfg.method = Method::kReducedBitSort;
  const auto r = split::multisplit_keys(dev, in, out, m, RangeBucket{m}, cfg);
  expect_valid_multisplit(host, buffer_to_vector(out), r.bucket_offsets, m,
                          RangeBucket{m}, true);
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, LargeM,
                         ::testing::Values(33u, 64u, 96u, 128u, 250u, 256u,
                                           1000u));

TEST(LargeMRejects, WarpLevelReorderingCapsAt32) {
  sim::Device dev;
  sim::DeviceBuffer<u32> in(dev, 1024), out(dev, 1024);
  MultisplitConfig cfg;
  cfg.method = Method::kWarpLevel;
  EXPECT_THROW(split::multisplit_keys(dev, in, out, 33, RangeBucket{33}, cfg),
               std::logic_error);
}

TEST(LargeMSmem, SharedMemoryScalesWithBucketCount) {
  // Section 6.4: shared memory per block grows ~linearly in m -- that is
  // the bottleneck the paper calls out.  Verify the simulator records the
  // growth (m * NW words for the row-vectorized histogram).
  const u64 n = 4096;
  workload::WorkloadConfig wc;
  const auto host = workload::generate_keys(n, wc);
  u32 peak_small = 0, peak_large = 0;
  {
    sim::Device dev;
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(host)), out(dev, n);
    sim::launch_blocks(dev, "probe", 1, 8, [&](sim::Block& blk) {
      blk.shared<u32>(64 * 8);
      peak_small = blk.peak_smem_bytes();
    });
    sim::launch_blocks(dev, "probe", 1, 8, [&](sim::Block& blk) {
      blk.shared<u32>(1024 * 8);
      peak_large = blk.peak_smem_bytes();
    });
  }
  EXPECT_EQ(peak_large, 16 * peak_small);
}

}  // namespace
}  // namespace ms::test
