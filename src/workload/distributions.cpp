#include "workload/distributions.hpp"

#include <algorithm>

namespace ms::workload {

std::string to_string(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kBinomial: return "binomial";
    case Distribution::kSkewedOne: return "0.25-uniform";
    case Distribution::kIdentity: return "identity";
    case Distribution::kSortedUniform: return "sorted-uniform";
  }
  return "?";
}

namespace {
/// Uniform key inside bucket b of RangeBucket{m}: the bucket's key range is
/// [ceil(b * 2^32 / m), ceil((b+1) * 2^32 / m)).
u32 key_in_bucket(std::mt19937_64& rng, u32 b, u32 m) {
  const u64 lo = ceil_div(static_cast<u64>(b) << 32, m);
  const u64 hi = ceil_div((static_cast<u64>(b) + 1) << 32, m);
  return static_cast<u32>(lo + rng() % (hi - lo));
}
}  // namespace

std::vector<u32> generate_keys(u64 n, const WorkloadConfig& cfg) {
  std::mt19937_64 rng(cfg.seed);
  std::vector<u32> keys(n);
  switch (cfg.dist) {
    case Distribution::kUniform:
      for (auto& k : keys) k = static_cast<u32>(rng());
      break;
    case Distribution::kBinomial: {
      std::binomial_distribution<u32> bucket_of(cfg.m - 1, cfg.binomial_p);
      for (auto& k : keys) k = key_in_bucket(rng, bucket_of(rng), cfg.m);
      break;
    }
    case Distribution::kSkewedOne: {
      const u32 heavy = cfg.m / 2;
      std::uniform_real_distribution<f64> coin(0.0, 1.0);
      for (auto& k : keys) {
        if (coin(rng) < cfg.skew_uniform_fraction) {
          k = static_cast<u32>(rng());
        } else {
          k = key_in_bucket(rng, heavy, cfg.m);
        }
      }
      break;
    }
    case Distribution::kIdentity:
      for (auto& k : keys) k = static_cast<u32>(rng() % cfg.m);
      break;
    case Distribution::kSortedUniform:
      for (auto& k : keys) k = static_cast<u32>(rng());
      std::sort(keys.begin(), keys.end());
      break;
  }
  return keys;
}

std::vector<u32> identity_values(u64 n) {
  std::vector<u32> v(n);
  for (u64 i = 0; i < n; ++i) v[i] = static_cast<u32>(i);
  return v;
}

}  // namespace ms::workload
