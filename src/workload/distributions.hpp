// Workload generators for the paper's evaluation (Sections 6 and 6.5).
//
// All experiments use 32-bit keys; the bucket function in play is
// RangeBucket{m} (equal division of the 32-bit domain), so a key
// distribution directly induces a bucket-occupancy histogram:
//
//   * kUniform   -- uniform over the full 32-bit domain: every bucket gets
//                   ~n/m keys.  The paper's default, and (Section 6.5) the
//                   *worst case* for the multisplit methods.
//   * kBinomial  -- bucket occupancy follows Binomial(m-1, p): the bucket
//                   of each key is drawn from B(m-1, p) and the key is then
//                   drawn uniformly inside that bucket's range.
//   * kSkewedOne -- 25% of keys uniform over all buckets, 75% inside one
//                   bucket (the paper's "milder" skew).
//   * kIdentity  -- keys drawn from {0..m-1} (the trivial identity-buckets
//                   case of Section 3.1 / Table 4's last row).
//   * kSortedUniform -- uniform keys, pre-sorted ascending: an adversarial
//                   locality case used by tests and ablations (every
//                   subproblem sees a single bucket).
#pragma once

#include <random>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ms::workload {

enum class Distribution {
  kUniform,
  kBinomial,
  kSkewedOne,
  kIdentity,
  kSortedUniform,
};

std::string to_string(Distribution d);

struct WorkloadConfig {
  Distribution dist = Distribution::kUniform;
  u32 m = 8;             // bucket count the distribution is shaped for
  f64 binomial_p = 0.5;  // success probability for kBinomial
  f64 skew_uniform_fraction = 0.25;  // kSkewedOne: fraction spread uniformly
  u64 seed = 0xC0FFEE;
};

/// Generate n keys according to `cfg`.
std::vector<u32> generate_keys(u64 n, const WorkloadConfig& cfg);

/// Values used in key-value experiments: the identity permutation, so any
/// test can verify value movement by indexing back into the original keys.
std::vector<u32> identity_values(u64 n);

}  // namespace ms::workload
