// Block-wide multi-reduction and multi-scan over per-warp histograms.
//
// Block-level multisplit (and the radix sort ranking kernel) keep an
// m x NW histogram matrix H2 in shared memory, stored column-major --
// column w is warp w's histogram, so each warp touches a contiguous run of
// shared memory and the per-row (per-bucket) tree operations are coalesced,
// as Section 5.1 of the paper describes.  Both operations run in
// O(log NW) barrier-separated rounds.
#pragma once

#include <vector>

#include "primitives/warp_scan.hpp"

namespace ms::prim {

using sim::Block;
using sim::SharedArray;

namespace detail {
inline u32 next_pow2(u32 x) {
  u32 p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Read one m-entry column (column-major layout, chunked by 32 lanes).
inline std::vector<LaneArray<u32>> read_column(Warp& w,
                                               const SharedArray<u32>& h2,
                                               u32 col, u32 m) {
  const u32 chunks = static_cast<u32>(ceil_div(m, kWarpSize));
  std::vector<LaneArray<u32>> out(chunks);
  for (u32 c = 0; c < chunks; ++c) {
    const u32 base = col * m + c * kWarpSize;
    const LaneMask mask = sim::tail_mask(m - c * kWarpSize);
    const auto idx = LaneArray<u32>::iota(base);
    out[c] = w.smem_read(h2, idx, mask);
  }
  return out;
}

inline void write_column(Warp& w, SharedArray<u32>& h2, u32 col, u32 m,
                         const std::vector<LaneArray<u32>>& vals) {
  const u32 chunks = static_cast<u32>(ceil_div(m, kWarpSize));
  for (u32 c = 0; c < chunks; ++c) {
    const u32 base = col * m + c * kWarpSize;
    const LaneMask mask = sim::tail_mask(m - c * kWarpSize);
    const auto idx = LaneArray<u32>::iota(base);
    w.smem_write(h2, idx, vals[c], mask);
  }
}
}  // namespace detail

/// Tree-reduce the NW columns of H2 (m rows each) into column 0.
/// `h2` must hold at least nw * m entries (column-major).
inline void block_multi_reduce(Block& blk, SharedArray<u32>& h2, u32 m) {
  const u32 nw = blk.num_warps();
  check(h2.size() >= nw * m, "block_multi_reduce: h2 too small");
  for (u32 s = detail::next_pow2(nw) / 2; s >= 1; s /= 2) {
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      if (wi >= s || wi + s >= nw) return;
      auto a = detail::read_column(w, h2, wi, m);
      const auto b = detail::read_column(w, h2, wi + s, m);
      for (u32 c = 0; c < a.size(); ++c) a[c] = lane_add(w, a[c], b[c]);
      detail::write_column(w, h2, wi, m, a);
    });
    blk.sync();
    if (s == 1) break;
  }
}

/// Per-row exclusive scan across the warp columns of H2, Kogge-Stone style.
/// `h2` must hold (nw + 1) * m entries: on return, column w holds the sum
/// of columns < w of the input, and the extra column nw holds the row
/// totals (the block-level histogram).
inline void block_multi_scan_exclusive(Block& blk, SharedArray<u32>& h2,
                                       u32 m) {
  const u32 nw = blk.num_warps();
  check(h2.size() >= (nw + 1) * m, "block_multi_scan_exclusive: h2 too small");

  // Inclusive Kogge-Stone over columns.
  for (u32 d = 1; d < nw; d <<= 1) {
    std::vector<std::vector<LaneArray<u32>>> staged(nw);
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      if (wi >= d) staged[wi] = detail::read_column(w, h2, wi - d, m);
    });
    blk.sync();
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      if (wi < d) return;
      auto mine = detail::read_column(w, h2, wi, m);
      for (u32 c = 0; c < mine.size(); ++c)
        mine[c] = lane_add(w, mine[c], staged[wi][c]);
      detail::write_column(w, h2, wi, m, mine);
    });
    blk.sync();
  }

  // Shift right for the exclusive result; the last inclusive column becomes
  // the row-totals column nw.
  std::vector<std::vector<LaneArray<u32>>> staged(nw);
  blk.for_each_warp([&](Warp& w) {
    const u32 wi = w.warp_in_block();
    staged[wi] = detail::read_column(w, h2, wi == 0 ? 0 : wi - 1, m);
    if (wi == nw - 1) {
      const auto totals = detail::read_column(w, h2, nw - 1, m);
      detail::write_column(w, h2, nw, m, totals);
    }
  });
  blk.sync();
  blk.for_each_warp([&](Warp& w) {
    const u32 wi = w.warp_in_block();
    if (wi == 0) {
      std::vector<LaneArray<u32>> zeros(ceil_div(m, kWarpSize));
      detail::write_column(w, h2, 0, m, zeros);
    } else {
      detail::write_column(w, h2, wi, m, staged[wi]);
    }
  });
  blk.sync();
}

/// Block-wide exclusive scan of `count` u32 entries living in shared
/// memory, in place.  This is the paper's Section 6.4 fallback for m > 32:
/// instead of per-row multi-scans, store the row-vectorized histogram
/// matrix in shared memory and run one block-wide scan of size m * NW over
/// it (they call CUB's block scan; this is the same three-phase shape).
inline void block_exclusive_scan_smem(Block& blk, SharedArray<u32>& arr,
                                      u32 count) {
  check(arr.size() >= count, "block_exclusive_scan_smem: array too small");
  const u32 nw = blk.num_warps();
  const u32 threads = nw * kWarpSize;
  const u32 ipt = static_cast<u32>(ceil_div(count, threads));
  const u32 strip = ipt * kWarpSize;
  auto warp_totals = blk.shared<u32>(nw);

  // Phase 1: per-warp strip totals.
  blk.for_each_warp([&](Warp& w) {
    const u32 wi = w.warp_in_block();
    LaneArray<u32> acc{};
    for (u32 r = 0; r < ipt; ++r) {
      const u32 base = wi * strip + r * kWarpSize;
      if (base >= count) break;
      const LaneMask mask = sim::tail_mask(count - base);
      acc = lane_add(w, acc,
                     w.smem_read(arr, LaneArray<u32>::iota(base), mask));
    }
    const auto total = warp_reduce_sum(w, acc);
    w.smem_write(warp_totals, LaneArray<u32>::filled(wi), total, 1u);
  });
  blk.sync();

  // Phase 2: warp 0 exclusive-scans the warp totals.
  {
    Warp& w0 = blk.warp(0);
    const LaneMask wm = sim::tail_mask(nw);
    LaneArray<u32> t = w0.smem_read(warp_totals, Warp::lane_id(), wm);
    for (u32 lane = nw; lane < kWarpSize; ++lane) t[lane] = 0;
    const auto ex = warp_exclusive_scan(w0, t);
    w0.smem_write(warp_totals, Warp::lane_id(), ex, wm);
  }
  blk.sync();

  // Phase 3: scan each strip, offset by the warp base.
  blk.for_each_warp([&](Warp& w) {
    const u32 wi = w.warp_in_block();
    u32 running;
    {
      const auto off =
          w.smem_read(warp_totals, LaneArray<u32>::filled(wi), 1u);
      running = off[0];
    }
    for (u32 r = 0; r < ipt; ++r) {
      const u32 base = wi * strip + r * kWarpSize;
      if (base >= count) break;
      const LaneMask mask = sim::tail_mask(count - base);
      const auto v = w.smem_read(arr, LaneArray<u32>::iota(base), mask);
      const auto incl = warp_inclusive_scan(w, v);
      auto ex = w.shfl_up(incl, 1);
      ex[0] = 0;
      ex = lane_add_scalar(w, ex, running);
      w.smem_write(arr, LaneArray<u32>::iota(base), ex, mask);
      const auto tot = w.shfl(incl, kWarpSize - 1);
      running += tot[0];
    }
  });
  blk.sync();
}

}  // namespace ms::prim
