// Ballot-based warp-level histogram and local-offset computation --
// Algorithms 2 and 3 of the paper, the computational core of every
// multisplit variant (and of the radix sort ranking kernel, which is why
// they live in the primitives layer).
//
// The idea: instead of materializing the binary bucket matrix H-bar, each
// thread keeps one 32-bit bitmap in a register.  ceil(log2 m) ballot rounds
// broadcast one bit of every lane's bucket ID; each thread intersects the
// ballots compatible with the bucket it is responsible for (histogram) or
// with its own element's bucket (offsets).  A final popc produces the
// count / rank.  No shared memory, no divergence.
#pragma once

#include <vector>

#include "primitives/warp_scan.hpp"

namespace ms::prim {

/// Algorithm 2: warp-level histogram for m <= 32 buckets.
/// Lane i returns the number of valid elements of this warp whose bucket ID
/// is i.  `valid` masks the lanes that actually hold elements (tail warps);
/// invalid lanes are counted in no bucket.
inline LaneArray<u32> warp_histogram(Warp& w, const LaneArray<u32>& bucket_id,
                                     u32 m, LaneMask valid = kFullMask) {
  check(m >= 1 && m <= kWarpSize, "warp_histogram: m out of range");
  const u32 rounds = ceil_log2(m);
  if (sim::simd::enabled()) {
    // Fused fast path: all class bitmaps in one shot, then one bulk charge
    // with the exact counter deltas of the reference loop below (r ballots,
    // r select-mask slots, one popc).  M[c] equals the final histo_bmp of
    // the lane responsible for class c, so lane i reads M[i & (2^r - 1)] --
    // the same wrap-around the reference's (lane >> k) & 1 bit walk gives
    // lanes past the last class.
    u32 ballots[8];
    sim::simd::bit_ballots(bucket_id.data(), rounds, valid, ballots);
    alignas(32) u32 M[kWarpSize];
    sim::simd::class_masks(rounds, ballots, valid, M);
    const u64 pv = static_cast<u64>(std::popcount(valid));
    w.charge_warp_op(/*issue_slots=*/2u * rounds + 1,
                     /*ballot_rounds=*/rounds,
                     /*simt_insts=*/rounds + 1,
                     /*simt_active_lanes=*/u64{rounds} * pv + kWarpSize);
    const u32 mb = (1u << rounds) - 1u;
    LaneArray<u32> out;
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      out[lane] = static_cast<u32>(std::popcount(M[lane & mb]));
    }
    return out;
  }
  // Each lane is responsible for the bucket with index == its lane ID.
  LaneArray<u32> histo_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    w.charge(1);  // select-and-mask (LOP3 on real hardware)
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const bool my_bit = (lane >> k) & 1u;
      histo_bmp[lane] &= my_bit ? ballot : ~ballot;
    }
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  return w.popc(histo_bmp);
}

/// Algorithm 3: warp-level local offsets for m <= 32 buckets.
/// Lane i returns the number of valid elements with lane index < i that
/// share lane i's bucket -- its stable rank within the bucket, local to the
/// warp.
inline LaneArray<u32> warp_offsets(Warp& w, const LaneArray<u32>& bucket_id,
                                   u32 m, LaneMask valid = kFullMask) {
  check(m >= 1 && m <= kWarpSize, "warp_offsets: m out of range");
  const u32 rounds = ceil_log2(m);
  if (sim::simd::enabled()) {
    // Fused fast path; lane i's final offset_bmp is the class bitmap of its
    // own bucket's low r bits, so the rank is a popc over M masked to the
    // lanes strictly below i.
    u32 ballots[8];
    sim::simd::bit_ballots(bucket_id.data(), rounds, valid, ballots);
    alignas(32) u32 M[kWarpSize];
    sim::simd::class_masks(rounds, ballots, valid, M);
    const u64 pv = static_cast<u64>(std::popcount(valid));
    w.charge_warp_op(/*issue_slots=*/2u * rounds + 2,
                     /*ballot_rounds=*/rounds,
                     /*simt_insts=*/rounds + 1,
                     /*simt_active_lanes=*/u64{rounds} * pv + kWarpSize);
    const u32 mb = (1u << rounds) - 1u;
    LaneArray<u32> out;
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
      out[lane] =
          static_cast<u32>(std::popcount(M[bucket_id[lane] & mb] & below));
    }
    return out;
  }
  LaneArray<u32> offset_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    w.charge(1);
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      // Keep lanes whose broadcast bit matches *my element's* bit.
      const bool my_bit = bits[lane] & 1u;
      offset_bmp[lane] &= my_bit ? ballot : ~ballot;
    }
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  // Count strictly-preceding set bits: mask bits [0, lane).
  w.charge(1);
  LaneArray<u32> masked;
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
    masked[lane] = offset_bmp[lane] & below;
  }
  return w.popc(masked);
}

/// Merged histogram + local offsets (the paper notes Algorithms 2 and 3
/// "share many common operations [and] can be merged into a single
/// procedure" -- one ballot per round feeds both bitmaps).  This is what
/// the post-scan stages use, where both results are needed.
struct WarpRank {
  LaneArray<u32> histogram;  // lane d: count of bucket d
  LaneArray<u32> offsets;    // lane i: stable rank of element i in its bucket
};

inline WarpRank warp_rank(Warp& w, const LaneArray<u32>& bucket_id, u32 m,
                          LaneMask valid = kFullMask) {
  check(m >= 1 && m <= kWarpSize, "warp_rank: m out of range");
  const u32 rounds = ceil_log2(m);
  if (sim::simd::enabled()) {
    // Fused fast path: one class-mask build serves both outputs (the merge
    // the paper describes), charged as the reference loop's r ballots, 2r
    // select-mask slots, and two popcs.
    u32 ballots[8];
    sim::simd::bit_ballots(bucket_id.data(), rounds, valid, ballots);
    alignas(32) u32 M[kWarpSize];
    sim::simd::class_masks(rounds, ballots, valid, M);
    const u64 pv = static_cast<u64>(std::popcount(valid));
    w.charge_warp_op(/*issue_slots=*/3u * rounds + 3,
                     /*ballot_rounds=*/rounds,
                     /*simt_insts=*/rounds + 2,
                     /*simt_active_lanes=*/u64{rounds} * pv + 2 * kWarpSize);
    const u32 mb = (1u << rounds) - 1u;
    WarpRank r;
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
      r.histogram[lane] = static_cast<u32>(std::popcount(M[lane & mb]));
      r.offsets[lane] =
          static_cast<u32>(std::popcount(M[bucket_id[lane] & mb] & below));
    }
    return r;
  }
  LaneArray<u32> histo_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> offset_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    w.charge(2);  // two select-and-mask updates off one ballot
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const bool my_bit = bits[lane] & 1u;
      const bool assigned_bit = (lane >> k) & 1u;
      offset_bmp[lane] &= my_bit ? ballot : ~ballot;
      histo_bmp[lane] &= assigned_bit ? ballot : ~ballot;
    }
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  WarpRank r;
  r.histogram = w.popc(histo_bmp);
  w.charge(1);
  LaneArray<u32> masked;
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
    masked[lane] = offset_bmp[lane] & below;
  }
  r.offsets = w.popc(masked);
  return r;
}

/// Section 5.3 extension: histogram for m > 32.  Thread i is responsible
/// for buckets i, i+32, i+64, ...; the result is one LaneArray per group of
/// 32 buckets (group g covers buckets [32g, 32g+32)).  All histogram state
/// scales by ceil(m/32), exactly the linearization the paper describes.
inline std::vector<LaneArray<u32>> warp_histogram_multi(
    Warp& w, const LaneArray<u32>& bucket_id, u32 m,
    LaneMask valid = kFullMask) {
  const u32 groups = static_cast<u32>(ceil_div(m, kWarpSize));
  const u32 rounds = ceil_log2(m);
  if (rounds <= 8 && sim::simd::enabled()) {
    // Fused fast path for up to 256 classes (the stack bitmap's limit;
    // larger m takes the reference loop).  Group g's lane i is responsible
    // for bucket 32g + i, i.e. class (32g + i) & (2^r - 1).
    u32 ballots[8];
    sim::simd::bit_ballots(bucket_id.data(), rounds, valid, ballots);
    alignas(32) u32 M[256];
    sim::simd::class_masks(rounds, ballots, valid, M);
    const u64 pv = static_cast<u64>(std::popcount(valid));
    w.charge_warp_op(/*issue_slots=*/u64{rounds} * (groups + 2) + groups,
                     /*ballot_rounds=*/rounds,
                     /*simt_insts=*/u64{rounds} + groups,
                     /*simt_active_lanes=*/u64{rounds} * pv +
                         u64{kWarpSize} * groups);
    const u32 mb = (1u << rounds) - 1u;
    std::vector<LaneArray<u32>> histo(groups);
    for (u32 g = 0; g < groups; ++g) {
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        histo[g][lane] = static_cast<u32>(
            std::popcount(M[(g * kWarpSize + lane) & mb]));
      }
    }
    return histo;
  }
  std::vector<LaneArray<u32>> bmp(groups, LaneArray<u32>::filled(valid));
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    for (u32 g = 0; g < groups; ++g) {
      w.charge(1);
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        const u32 bucket = g * kWarpSize + lane;
        const bool my_bit = (bucket >> k) & 1u;
        bmp[g][lane] &= my_bit ? ballot : ~ballot;
      }
    }
    w.charge(1);
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  std::vector<LaneArray<u32>> histo(groups);
  for (u32 g = 0; g < groups; ++g) histo[g] = w.popc(bmp[g]);
  return histo;
}

/// Section 5.3 extension: local offsets for m > 32.  The offset bitmap is
/// per-element (not per-responsible-bucket), so a single bitmap suffices
/// regardless of m; only the number of ballot rounds grows.
inline LaneArray<u32> warp_offsets_multi(Warp& w,
                                         const LaneArray<u32>& bucket_id,
                                         u32 m, LaneMask valid = kFullMask) {
  const u32 rounds = ceil_log2(m);
  if (rounds <= 8 && sim::simd::enabled()) {
    u32 ballots[8];
    sim::simd::bit_ballots(bucket_id.data(), rounds, valid, ballots);
    alignas(32) u32 M[256];
    sim::simd::class_masks(rounds, ballots, valid, M);
    const u64 pv = static_cast<u64>(std::popcount(valid));
    w.charge_warp_op(/*issue_slots=*/2u * rounds + 2,
                     /*ballot_rounds=*/rounds,
                     /*simt_insts=*/rounds + 1,
                     /*simt_active_lanes=*/u64{rounds} * pv + kWarpSize);
    const u32 mb = (1u << rounds) - 1u;
    LaneArray<u32> out;
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
      out[lane] =
          static_cast<u32>(std::popcount(M[bucket_id[lane] & mb] & below));
    }
    return out;
  }
  LaneArray<u32> offset_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    w.charge(1);
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const bool my_bit = bits[lane] & 1u;
      offset_bmp[lane] &= my_bit ? ballot : ~ballot;
    }
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  w.charge(1);
  LaneArray<u32> masked;
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
    masked[lane] = offset_bmp[lane] & below;
  }
  return w.popc(masked);
}

}  // namespace ms::prim
