// Ballot-based warp-level histogram and local-offset computation --
// Algorithms 2 and 3 of the paper, the computational core of every
// multisplit variant (and of the radix sort ranking kernel, which is why
// they live in the primitives layer).
//
// The idea: instead of materializing the binary bucket matrix H-bar, each
// thread keeps one 32-bit bitmap in a register.  ceil(log2 m) ballot rounds
// broadcast one bit of every lane's bucket ID; each thread intersects the
// ballots compatible with the bucket it is responsible for (histogram) or
// with its own element's bucket (offsets).  A final popc produces the
// count / rank.  No shared memory, no divergence.
#pragma once

#include <vector>

#include "primitives/warp_scan.hpp"

namespace ms::prim {

/// Algorithm 2: warp-level histogram for m <= 32 buckets.
/// Lane i returns the number of valid elements of this warp whose bucket ID
/// is i.  `valid` masks the lanes that actually hold elements (tail warps);
/// invalid lanes are counted in no bucket.
inline LaneArray<u32> warp_histogram(Warp& w, const LaneArray<u32>& bucket_id,
                                     u32 m, LaneMask valid = kFullMask) {
  check(m >= 1 && m <= kWarpSize, "warp_histogram: m out of range");
  const u32 rounds = ceil_log2(m);
  // Each lane is responsible for the bucket with index == its lane ID.
  LaneArray<u32> histo_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    w.charge(1);  // select-and-mask (LOP3 on real hardware)
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const bool my_bit = (lane >> k) & 1u;
      histo_bmp[lane] &= my_bit ? ballot : ~ballot;
    }
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  return w.popc(histo_bmp);
}

/// Algorithm 3: warp-level local offsets for m <= 32 buckets.
/// Lane i returns the number of valid elements with lane index < i that
/// share lane i's bucket -- its stable rank within the bucket, local to the
/// warp.
inline LaneArray<u32> warp_offsets(Warp& w, const LaneArray<u32>& bucket_id,
                                   u32 m, LaneMask valid = kFullMask) {
  check(m >= 1 && m <= kWarpSize, "warp_offsets: m out of range");
  const u32 rounds = ceil_log2(m);
  LaneArray<u32> offset_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    w.charge(1);
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      // Keep lanes whose broadcast bit matches *my element's* bit.
      const bool my_bit = bits[lane] & 1u;
      offset_bmp[lane] &= my_bit ? ballot : ~ballot;
    }
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  // Count strictly-preceding set bits: mask bits [0, lane).
  w.charge(1);
  LaneArray<u32> masked;
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
    masked[lane] = offset_bmp[lane] & below;
  }
  return w.popc(masked);
}

/// Merged histogram + local offsets (the paper notes Algorithms 2 and 3
/// "share many common operations [and] can be merged into a single
/// procedure" -- one ballot per round feeds both bitmaps).  This is what
/// the post-scan stages use, where both results are needed.
struct WarpRank {
  LaneArray<u32> histogram;  // lane d: count of bucket d
  LaneArray<u32> offsets;    // lane i: stable rank of element i in its bucket
};

inline WarpRank warp_rank(Warp& w, const LaneArray<u32>& bucket_id, u32 m,
                          LaneMask valid = kFullMask) {
  check(m >= 1 && m <= kWarpSize, "warp_rank: m out of range");
  const u32 rounds = ceil_log2(m);
  LaneArray<u32> histo_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> offset_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    w.charge(2);  // two select-and-mask updates off one ballot
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const bool my_bit = bits[lane] & 1u;
      const bool assigned_bit = (lane >> k) & 1u;
      offset_bmp[lane] &= my_bit ? ballot : ~ballot;
      histo_bmp[lane] &= assigned_bit ? ballot : ~ballot;
    }
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  WarpRank r;
  r.histogram = w.popc(histo_bmp);
  w.charge(1);
  LaneArray<u32> masked;
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
    masked[lane] = offset_bmp[lane] & below;
  }
  r.offsets = w.popc(masked);
  return r;
}

/// Section 5.3 extension: histogram for m > 32.  Thread i is responsible
/// for buckets i, i+32, i+64, ...; the result is one LaneArray per group of
/// 32 buckets (group g covers buckets [32g, 32g+32)).  All histogram state
/// scales by ceil(m/32), exactly the linearization the paper describes.
inline std::vector<LaneArray<u32>> warp_histogram_multi(
    Warp& w, const LaneArray<u32>& bucket_id, u32 m,
    LaneMask valid = kFullMask) {
  const u32 groups = static_cast<u32>(ceil_div(m, kWarpSize));
  const u32 rounds = ceil_log2(m);
  std::vector<LaneArray<u32>> bmp(groups, LaneArray<u32>::filled(valid));
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    for (u32 g = 0; g < groups; ++g) {
      w.charge(1);
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        const u32 bucket = g * kWarpSize + lane;
        const bool my_bit = (bucket >> k) & 1u;
        bmp[g][lane] &= my_bit ? ballot : ~ballot;
      }
    }
    w.charge(1);
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  std::vector<LaneArray<u32>> histo(groups);
  for (u32 g = 0; g < groups; ++g) histo[g] = w.popc(bmp[g]);
  return histo;
}

/// Section 5.3 extension: local offsets for m > 32.  The offset bitmap is
/// per-element (not per-responsible-bucket), so a single bitmap suffices
/// regardless of m; only the number of ballot rounds grows.
inline LaneArray<u32> warp_offsets_multi(Warp& w,
                                         const LaneArray<u32>& bucket_id,
                                         u32 m, LaneMask valid = kFullMask) {
  const u32 rounds = ceil_log2(m);
  LaneArray<u32> offset_bmp = LaneArray<u32>::filled(valid);
  LaneArray<u32> bits = bucket_id;
  for (u32 k = 0; k < rounds; ++k) {
    const LaneMask ballot =
        w.ballot(bits.map([](u32 b) { return b & 1u; }), valid);
    w.charge(1);
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const bool my_bit = bits[lane] & 1u;
      offset_bmp[lane] &= my_bit ? ballot : ~ballot;
    }
    bits = bits.map([](u32 b) { return b >> 1; });
  }
  w.charge(1);
  LaneArray<u32> masked;
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u32 below = (lane == 0) ? 0u : (kFullMask >> (kWarpSize - lane));
    masked[lane] = offset_bmp[lane] & below;
  }
  return w.popc(masked);
}

}  // namespace ms::prim
