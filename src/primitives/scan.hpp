// Device-wide scan and reduction (the library's CUB stand-in).
//
// Classic three-phase reduce-then-scan:
//   1. upsweep:   every block reduces its tile and stores one partial;
//   2. recurse:   exclusive scan of the partials (recursively, until one
//                 block suffices);
//   3. downsweep: every block re-reads its tile, scans it locally (warp
//                 shuffles + one shared-memory round for warp totals) and
//                 adds its scanned partial.
//
// Total DRAM traffic is ~3n (read, read, write) plus the partial tree,
// which is what CUB's scan achieves and what the paper's "scan stage" costs
// are built on.
#pragma once

#include <vector>

#include "primitives/warp_scan.hpp"

namespace ms::prim {

using sim::Block;
using sim::Device;
using sim::DeviceBuffer;
using sim::tail_mask;

struct ScanConfig {
  u32 warps_per_block = 8;
  u32 items_per_thread = 8;
  u32 tile_items() const { return warps_per_block * kWarpSize * items_per_thread; }
};

namespace detail {

/// Mask of lanes holding elements for the 32-wide row at `base` of an
/// n-element input.
inline LaneMask row_mask(u64 base, u64 n) {
  if (base >= n) return 0;
  return tail_mask(n - base);
}

/// Upsweep kernel: one partial (tile sum) per block.
template <typename T>
void scan_upsweep(Device& dev, const DeviceBuffer<T>& in,
                  DeviceBuffer<T>& partials, const ScanConfig& cfg) {
  const u64 n = in.size();
  const u32 tile = cfg.tile_items();
  const u32 nblocks = static_cast<u32>(ceil_div(n, tile));
  sim::launch_blocks(dev, "scan_upsweep", nblocks, cfg.warps_per_block,
                     [&](Block& blk) {
    auto warp_sums = blk.shared<T>(blk.num_warps());
    const u64 tile_base = static_cast<u64>(blk.block_id()) * tile;
    blk.for_each_warp([&](Warp& w) {
      const u64 strip =
          tile_base + static_cast<u64>(w.warp_in_block()) * kWarpSize * cfg.items_per_thread;
      LaneArray<T> acc{};
      for (u32 r = 0; r < cfg.items_per_thread; ++r) {
        const u64 base = strip + static_cast<u64>(r) * kWarpSize;
        const LaneMask m = row_mask(base, n);
        if (m == 0) break;
        acc = lane_add(w, acc, w.load(in, base, m));
      }
      const LaneArray<T> total = warp_reduce_sum(w, acc);
      w.smem_write(warp_sums, LaneArray<u32>::filled(w.warp_in_block()), total,
                   /*active=*/1u);
    });
    blk.sync();
    // Warp 0 reduces the warp totals and stores the block partial.
    Warp& w0 = blk.warp(0);
    const LaneMask wm = tail_mask(blk.num_warps());
    const LaneArray<T> sums = w0.smem_read(warp_sums, Warp::lane_id(), wm);
    const LaneArray<T> block_total = warp_reduce_sum(w0, sums);
    w0.store(partials, blk.block_id(), block_total, /*active=*/1u);
  });
}

/// Downsweep kernel: exclusive scan of each tile plus its scanned partial.
/// `partials_scanned` may be null for the single-block base case.
template <typename T>
void scan_downsweep(Device& dev, const DeviceBuffer<T>& in,
                    DeviceBuffer<T>& out,
                    const DeviceBuffer<T>* partials_scanned,
                    const ScanConfig& cfg, bool inclusive) {
  const u64 n = in.size();
  const u32 tile = cfg.tile_items();
  const u32 nblocks = static_cast<u32>(ceil_div(n, tile));
  sim::launch_blocks(dev, "scan_downsweep", nblocks, cfg.warps_per_block,
                     [&](Block& blk) {
    auto warp_sums = blk.shared<T>(blk.num_warps());
    const u64 tile_base = static_cast<u64>(blk.block_id()) * tile;
    // Per-warp register state persisting across barriers.
    std::vector<std::vector<LaneArray<T>>> vals(
        blk.num_warps(), std::vector<LaneArray<T>>(cfg.items_per_thread));

    // Phase 1: load strips, compute per-warp sums.
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      const u64 strip =
          tile_base + static_cast<u64>(wi) * kWarpSize * cfg.items_per_thread;
      LaneArray<T> acc{};
      for (u32 r = 0; r < cfg.items_per_thread; ++r) {
        const u64 base = strip + static_cast<u64>(r) * kWarpSize;
        const LaneMask m = row_mask(base, n);
        if (m == 0) break;
        vals[wi][r] = w.load(in, base, m);
        acc = lane_add(w, acc, vals[wi][r]);
      }
      const LaneArray<T> total = warp_reduce_sum(w, acc);
      w.smem_write(warp_sums, LaneArray<u32>::filled(wi), total, 1u);
    });
    blk.sync();

    // Phase 2: warp 0 exclusive-scans the warp totals in shared memory.
    {
      Warp& w0 = blk.warp(0);
      const LaneMask wm = tail_mask(blk.num_warps());
      LaneArray<T> sums = w0.smem_read(warp_sums, Warp::lane_id(), wm);
      for (u32 lane = blk.num_warps(); lane < kWarpSize; ++lane) sums[lane] = T{0};
      const LaneArray<T> ex = warp_exclusive_scan(w0, sums);
      w0.smem_write(warp_sums, Warp::lane_id(), ex, wm);
    }
    blk.sync();

    // Phase 3: each warp scans its strip and writes out.
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      const u64 strip =
          tile_base + static_cast<u64>(wi) * kWarpSize * cfg.items_per_thread;
      T running;
      {
        const LaneArray<T> warp_off =
            w.smem_read(warp_sums, LaneArray<u32>::filled(wi), 1u);
        running = warp_off[0];
      }
      if (partials_scanned != nullptr) {
        const LaneArray<T> blk_off =
            w.gather(*partials_scanned,
                     LaneArray<u64>::filled(blk.block_id()), 1u);
        w.charge(1);
        running = static_cast<T>(running + blk_off[0]);
      }
      for (u32 r = 0; r < cfg.items_per_thread; ++r) {
        const u64 base = strip + static_cast<u64>(r) * kWarpSize;
        const LaneMask m = row_mask(base, n);
        if (m == 0) break;
        const LaneArray<T> incl = warp_inclusive_scan(w, vals[wi][r]);
        LaneArray<T> res;
        if (inclusive) {
          res = incl;
        } else {
          res = w.shfl_up(incl, 1);
          res[0] = T{0};
        }
        res = lane_add_scalar(w, res, running);
        w.store(out, base, res, m);
        const LaneArray<T> tot = w.shfl(incl, kWarpSize - 1);
        running = static_cast<T>(running + tot[0]);
      }
    });
  });
}

}  // namespace detail

/// Device-wide exclusive plus-scan: out[i] = sum of in[0..i-1].
/// `in` and `out` must be distinct buffers of equal size.
template <typename T>
void exclusive_scan(Device& dev, const DeviceBuffer<T>& in,
                    DeviceBuffer<T>& out, ScanConfig cfg = {}) {
  check(&in != &out, "exclusive_scan: in and out must be distinct");
  check(out.size() >= in.size(), "exclusive_scan: output too small");
  const u64 n = in.size();
  if (n == 0) return;
  const u32 tile = cfg.tile_items();
  if (n <= tile) {
    detail::scan_downsweep<T>(dev, in, out, nullptr, cfg, /*inclusive=*/false);
    return;
  }
  const u32 nblocks = static_cast<u32>(ceil_div(n, tile));
  DeviceBuffer<T> partials(dev, nblocks);
  DeviceBuffer<T> partials_scanned(dev, nblocks);
  detail::scan_upsweep<T>(dev, in, partials, cfg);
  exclusive_scan<T>(dev, partials, partials_scanned, cfg);
  detail::scan_downsweep<T>(dev, in, out, &partials_scanned, cfg,
                            /*inclusive=*/false);
}

/// Device-wide inclusive plus-scan: out[i] = sum of in[0..i].
template <typename T>
void inclusive_scan(Device& dev, const DeviceBuffer<T>& in,
                    DeviceBuffer<T>& out, ScanConfig cfg = {}) {
  check(&in != &out, "inclusive_scan: in and out must be distinct");
  check(out.size() >= in.size(), "inclusive_scan: output too small");
  const u64 n = in.size();
  if (n == 0) return;
  const u32 tile = cfg.tile_items();
  if (n <= tile) {
    detail::scan_downsweep<T>(dev, in, out, nullptr, cfg, /*inclusive=*/true);
    return;
  }
  const u32 nblocks = static_cast<u32>(ceil_div(n, tile));
  DeviceBuffer<T> partials(dev, nblocks);
  DeviceBuffer<T> partials_scanned(dev, nblocks);
  detail::scan_upsweep<T>(dev, in, partials, cfg);
  exclusive_scan<T>(dev, partials, partials_scanned, cfg);
  detail::scan_downsweep<T>(dev, in, out, &partials_scanned, cfg,
                            /*inclusive=*/true);
}

/// Device-wide sum reduction.  The result is read back host-side (the
/// charged work is the reduction tree itself).
template <typename T>
T device_reduce(Device& dev, const DeviceBuffer<T>& in, ScanConfig cfg = {}) {
  const u64 n = in.size();
  if (n == 0) return T{0};
  const u32 tile = cfg.tile_items();
  if (n == 1) return in[0];
  const u32 nblocks = static_cast<u32>(ceil_div(n, tile));
  DeviceBuffer<T> partials(dev, nblocks);
  detail::scan_upsweep<T>(dev, in, partials, cfg);
  if (nblocks == 1) return partials[0];
  return device_reduce<T>(dev, partials, cfg);
}

}  // namespace ms::prim
