// Stream compaction: filter the elements satisfying a predicate into a
// dense output, preserving order (Section 2.2 of the paper).  Built from a
// flag kernel, a device-wide exclusive scan, and a scatter kernel -- the
// standard scan-based formulation.
#pragma once

#include "primitives/scan.hpp"

namespace ms::prim {

/// Compact the elements of `in` for which pred(x) != 0 into the front of
/// `out` (which must be at least as large as `in`), preserving their
/// relative order.  Returns the number of elements kept.
template <typename T, typename Pred>
u64 compact(Device& dev, const DeviceBuffer<T>& in, DeviceBuffer<T>& out,
            Pred&& pred) {
  const u64 n = in.size();
  check(out.size() >= n, "compact: output too small");
  if (n == 0) return 0;

  DeviceBuffer<u32> flags(dev, n);
  DeviceBuffer<u32> positions(dev, n);

  sim::launch_warps(dev, "compact_flags", ceil_div(n, kWarpSize),
                    [&](Warp& w, u64 wid) {
    const u64 base = wid * kWarpSize;
    const LaneMask m = detail::row_mask(base, n);
    const auto v = w.load(in, base, m);
    w.charge(1);  // predicate evaluation
    const auto f = v.map([&](T x) { return pred(x) ? 1u : 0u; });
    w.store(flags, base, f, m);
  });

  exclusive_scan<u32>(dev, flags, positions);
  const u64 kept = positions[n - 1] + (pred(in[n - 1]) ? 1u : 0u);

  sim::launch_warps(dev, "compact_scatter", ceil_div(n, kWarpSize),
                    [&](Warp& w, u64 wid) {
    const u64 base = wid * kWarpSize;
    const LaneMask m = detail::row_mask(base, n);
    const auto v = w.load(in, base, m);
    const auto pos = w.load(positions, base, m);
    w.charge(1);
    const LaneMask keep = w.ballot(v.map([&](T x) { return pred(x) ? 1u : 0u; }), m);
    LaneArray<u64> idx{};
    for (u32 lane = 0; lane < kWarpSize; ++lane) idx[lane] = pos[lane];
    w.scatter(out, idx, v, keep);
  });

  return kept;
}

/// Compact `in` by an explicit 0/1 flag vector (order-preserving).
/// Returns the number of elements kept.
template <typename T>
u64 compact_by_flags(Device& dev, const DeviceBuffer<T>& in,
                     const DeviceBuffer<u32>& flags, DeviceBuffer<T>& out) {
  const u64 n = in.size();
  check(flags.size() >= n, "compact_by_flags: flag vector too small");
  if (n == 0) return 0;
  DeviceBuffer<u32> positions(dev, n);
  exclusive_scan<u32>(dev, flags, positions);
  const u64 kept = positions[n - 1] + (flags[n - 1] ? 1 : 0);
  check(out.size() >= kept, "compact_by_flags: output too small");

  sim::launch_warps(dev, "compact_flags_scatter", ceil_div(n, kWarpSize),
                    [&](Warp& w, u64 wid) {
    const u64 base = wid * kWarpSize;
    const LaneMask m = detail::row_mask(base, n);
    const auto v = w.load(in, base, m);
    const auto f = w.load(flags, base, m);
    const auto pos = w.load(positions, base, m);
    const LaneMask keep = w.ballot(f, m);
    LaneArray<u64> idx{};
    for (u32 lane = 0; lane < kWarpSize; ++lane) idx[lane] = pos[lane];
    w.scatter(out, idx, v, keep);
  });
  return kept;
}

}  // namespace ms::prim
