#include "primitives/radix_sort.hpp"

namespace ms::prim {

void sort_keys(Device& dev, DeviceBuffer<u32>& keys, u32 begin_bit,
               u32 end_bit, const RadixSortConfig& cfg) {
  detail::radix_sort_impl<u32>(dev, keys, /*values=*/nullptr, begin_bit,
                               end_bit, cfg);
}

}  // namespace ms::prim
