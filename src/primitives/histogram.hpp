// Device-wide histogram computation, in the two styles the paper's related
// work section contrasts (Section 2): global atomics (good for many
// buckets, contention-bound for few) and block-local shared-memory
// histograms merged at block end (the approach multisplit's pre-scan
// generalizes).  Used by the randomized-insertion baseline's buffer-sizing
// pre-pass and exercised as a standalone primitive by tests.
#pragma once

#include "primitives/scan.hpp"

namespace ms::prim {

/// hist[b] = |{ i : bucket_of(keys[i]) == b }| via global atomicAdd.
template <typename BucketFn>
void histogram_global_atomic(Device& dev, const DeviceBuffer<u32>& keys,
                             DeviceBuffer<u32>& hist, u32 m,
                             BucketFn&& bucket_of) {
  check(hist.size() >= m, "histogram: output too small");
  sim::device_fill<u32>(dev, hist, 0);
  const u64 n = keys.size();
  sim::launch_warps(dev, "histogram_atomic", ceil_div(n, kWarpSize),
                    [&](Warp& w, u64 wid) {
    const u64 base = wid * kWarpSize;
    const LaneMask mask = detail::row_mask(base, n);
    const auto v = w.load(keys, base, mask);
    w.charge(2);  // bucket function
    const auto b = v.map([&](u32 x) { return bucket_of(x); });
    LaneArray<u64> idx{};
    for (u32 lane = 0; lane < kWarpSize; ++lane) idx[lane] = b[lane];
    w.atomic_add(hist, idx, LaneArray<u32>::filled(1), mask);
  });
}

/// Same result via per-block shared-memory histograms merged with one
/// global atomic per (block, bucket).
template <typename BucketFn>
void histogram_block_local(Device& dev, const DeviceBuffer<u32>& keys,
                           DeviceBuffer<u32>& hist, u32 m,
                           BucketFn&& bucket_of, u32 warps_per_block = 8,
                           u32 items_per_thread = 4) {
  check(hist.size() >= m, "histogram: output too small");
  sim::device_fill<u32>(dev, hist, 0);
  const u64 n = keys.size();
  const u32 tile = warps_per_block * kWarpSize * items_per_thread;
  const u32 nblocks = static_cast<u32>(ceil_div(n, tile));
  sim::launch_blocks(dev, "histogram_block", nblocks, warps_per_block,
                     [&](Block& blk) {
    auto sh = blk.shared<u32>(m);
    // Zero the shared histogram cooperatively.
    blk.for_each_warp([&](Warp& w) {
      for (u32 base = w.warp_in_block() * kWarpSize; base < m;
           base += blk.num_warps() * kWarpSize) {
        const LaneMask mask = sim::tail_mask(m - base);
        w.smem_write(sh, LaneArray<u32>::iota(base), LaneArray<u32>{}, mask);
      }
    });
    blk.sync();
    const u64 tile_base = static_cast<u64>(blk.block_id()) * tile;
    blk.for_each_warp([&](Warp& w) {
      for (u32 r = 0; r < items_per_thread; ++r) {
        const u64 base = tile_base +
                         (static_cast<u64>(w.warp_in_block()) * items_per_thread + r) *
                             kWarpSize;
        const LaneMask mask = detail::row_mask(base, n);
        if (mask == 0) break;
        const auto v = w.load(keys, base, mask);
        w.charge(2);
        const auto b = v.map([&](u32 x) { return bucket_of(x); });
        w.smem_atomic_add(sh, b, LaneArray<u32>::filled(1), mask);
      }
    });
    blk.sync();
    // Merge into the global histogram.
    blk.for_each_warp([&](Warp& w) {
      for (u32 base = w.warp_in_block() * kWarpSize; base < m;
           base += blk.num_warps() * kWarpSize) {
        const LaneMask mask = sim::tail_mask(m - base);
        const auto counts = w.smem_read(sh, LaneArray<u32>::iota(base), mask);
        w.charge(1);
        const LaneMask nz =
            w.ballot(counts.map([](u32 c) { return c != 0 ? 1u : 0u; }), mask);
        LaneArray<u64> idx{};
        for (u32 lane = 0; lane < kWarpSize; ++lane) idx[lane] = base + lane;
        w.atomic_add(hist, idx, counts, nz);
      }
    });
  });
}

}  // namespace ms::prim
