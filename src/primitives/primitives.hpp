// Umbrella header for the device-wide parallel primitives layer.
#pragma once

#include "primitives/block_ops.hpp"
#include "primitives/compact.hpp"
#include "primitives/histogram.hpp"
#include "primitives/radix_sort.hpp"
#include "primitives/scan.hpp"
#include "primitives/warp_ops.hpp"
#include "primitives/warp_scan.hpp"
