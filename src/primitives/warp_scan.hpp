// Warp-level scan and reduction built from shuffle instructions, exactly as
// on real GPUs: log2(32) = 5 shfl_up/shfl_down rounds, no shared memory.
// These are the building blocks for the device-wide scan, the multisplit
// post-scan stages, and the radix sort ranking kernels.
#pragma once

#include "sim/sim.hpp"

namespace ms::prim {

using sim::Warp;

/// Inclusive plus-scan across the warp: out[i] = sum of v[0..i].
/// All 32 lanes participate (the usual warp-synchronous contract); the
/// caller masks out tail lanes by passing zeros for them.
template <typename T>
LaneArray<T> warp_inclusive_scan(Warp& w, LaneArray<T> v) {
  for (u32 d = 1; d < kWarpSize; d <<= 1) {
    const LaneArray<T> up = w.shfl_up(v, d);
    w.charge(1);  // predicated add
    for (u32 lane = d; lane < kWarpSize; ++lane) v[lane] += up[lane];
  }
  return v;
}

/// Exclusive plus-scan: out[i] = sum of v[0..i-1], out[0] = 0.
template <typename T>
LaneArray<T> warp_exclusive_scan(Warp& w, const LaneArray<T>& v) {
  LaneArray<T> inc = warp_inclusive_scan(w, v);
  LaneArray<T> out = w.shfl_up(inc, 1);
  out[0] = T{0};
  return out;
}

/// Warp-wide sum, returned in every lane (butterfly reduction).
template <typename T>
LaneArray<T> warp_reduce_sum(Warp& w, LaneArray<T> v) {
  for (u32 d = kWarpSize / 2; d >= 1; d >>= 1) {
    const LaneArray<T> other = w.shfl_xor(v, d);
    w.charge(1);
    for (u32 lane = 0; lane < kWarpSize; ++lane) v[lane] += other[lane];
  }
  return v;
}

/// Warp-wide maximum, returned in every lane.
template <typename T>
LaneArray<T> warp_reduce_max(Warp& w, LaneArray<T> v) {
  for (u32 d = kWarpSize / 2; d >= 1; d >>= 1) {
    const LaneArray<T> other = w.shfl_xor(v, d);
    w.charge(1);
    for (u32 lane = 0; lane < kWarpSize; ++lane)
      v[lane] = std::max(v[lane], other[lane]);
  }
  return v;
}

/// Elementwise helpers for warp registers; each is one warp instruction.
template <typename T>
LaneArray<T> lane_add(Warp& w, const LaneArray<T>& a, const LaneArray<T>& b) {
  w.charge(1);
  return a.zip(b, [](T x, T y) { return static_cast<T>(x + y); });
}

template <typename T>
LaneArray<T> lane_add_scalar(Warp& w, const LaneArray<T>& a, T b) {
  w.charge(1);
  return a.map([b](T x) { return static_cast<T>(x + b); });
}

}  // namespace ms::prim
