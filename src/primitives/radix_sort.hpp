// LSB radix sort on the simulator -- the library's stand-in for CUB's
// device radix sort, which the paper uses both as the sort baseline
// (Table 3) and inside the reduced-bit sort method (Section 3.4).
//
// Structure per digit pass (bits_per_pass-bit digits, three kernels):
//   1. per-block digit histograms (ballot-based warp histograms reduced
//      across the block), stored digit-major: hist[d * nblocks + b];
//   2. device-wide exclusive scan of that matrix (global digit offsets);
//   3. rank-and-scatter: every block re-reads its tile, computes stable
//      local ranks (warp ballot offsets + block multi-scan), reorders the
//      tile in shared memory and writes each digit run out contiguously --
//      the same local-reordering-for-coalescing trick Block-level MS uses,
//      which is how real GPU radix sorts achieve their memory efficiency.
//
// Sorting a [begin_bit, end_bit) range takes ceil(bits/bits_per_pass)
// passes ping-ponging between the input and a temporary buffer; the result
// always ends up back in the caller's buffer.
#pragma once

#include <optional>
#include <vector>

#include "primitives/block_ops.hpp"
#include "primitives/scan.hpp"
#include "primitives/warp_ops.hpp"

namespace ms::prim {

struct RadixSortConfig {
  /// Digit width in bits; must be in [1, 5] so one warp covers all digits.
  u32 bits_per_pass = 4;
  u32 warps_per_block = 8;
  u32 items_per_thread = 8;
  u32 tile_items() const { return warps_per_block * kWarpSize * items_per_thread; }
};

namespace detail {

/// One stable counting pass over m = 2^bits digits produced by an
/// arbitrary key -> digit function (a plain bit-window extraction for the
/// classic radix sort; a fused bucket functor for the paper's future-work
/// variant).  Values are optional (null pointers for key-only sorts).
/// `digit_cost` is the modeled instruction cost of one digit evaluation.
template <typename V, typename DigitFn>
void radix_pass_fn(Device& dev, const DeviceBuffer<u32>& in_keys,
                   DeviceBuffer<u32>& out_keys, const DeviceBuffer<V>* in_vals,
                   DeviceBuffer<V>* out_vals, u32 m, DigitFn digit_fn,
                   u32 digit_cost, const RadixSortConfig& cfg) {
  check(m >= 1 && m <= kWarpSize, "radix_pass: digit width out of range");
  const u64 n = in_keys.size();
  const u32 tile = cfg.tile_items();
  const u32 nblocks = static_cast<u32>(ceil_div(n, tile));
  const u32 nw = cfg.warps_per_block;
  const u32 rounds = cfg.items_per_thread;

  DeviceBuffer<u32> hist(dev, static_cast<u64>(m) * nblocks);
  DeviceBuffer<u32> hist_scanned(dev, static_cast<u64>(m) * nblocks);

  // ---- kernel 1: per-block digit histograms --------------------------
  sim::launch_blocks(dev, "radix_histogram", nblocks, nw, [&](Block& blk) {
    auto h2 = blk.shared<u32>(nw * m);
    const u64 tile_base = static_cast<u64>(blk.block_id()) * tile;
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      LaneArray<u32> acc{};
      for (u32 r = 0; r < rounds; ++r) {
        const u64 base =
            tile_base + (static_cast<u64>(wi) * rounds + r) * kWarpSize;
        const LaneMask mask = row_mask(base, n);
        if (mask == 0) break;
        const auto keys = w.load(in_keys, base, mask);
        w.charge(digit_cost);
        const auto digits = keys.map(digit_fn);
        acc = lane_add(w, acc, warp_histogram(w, digits, m, mask));
      }
      // Column-major H2: warp wi's histogram at [wi*m, wi*m+m).
      w.smem_write(h2, LaneArray<u32>::iota(wi * m), acc, sim::tail_mask(m));
    });
    blk.sync();
    block_multi_reduce(blk, h2, m);
    // Warp 0 stores the block histogram digit-major: hist[d*nblocks + b].
    Warp& w0 = blk.warp(0);
    const LaneMask mm = sim::tail_mask(m);
    const auto counts = w0.smem_read(h2, LaneArray<u32>::iota(0), mm);
    LaneArray<u64> idx{};
    for (u32 lane = 0; lane < kWarpSize; ++lane)
      idx[lane] = static_cast<u64>(lane) * nblocks + blk.block_id();
    w0.charge(2);
    w0.scatter(hist, idx, counts, mm);
  });

  // ---- kernel 2: global scan of the digit-major histogram ------------
  exclusive_scan<u32>(dev, hist, hist_scanned);

  // ---- kernel 3: rank, reorder in shared memory, scatter --------------
  sim::launch_blocks(dev, "radix_scatter", nblocks, nw, [&](Block& blk) {
    const u64 tile_base = static_cast<u64>(blk.block_id()) * tile;
    const u32 tile_n = static_cast<u32>(std::min<u64>(tile, n - tile_base));

    auto h2 = blk.shared<u32>((nw + 1) * m);
    auto digit_start = blk.shared<u32>(m);    // first position of digit in tile
    auto adjusted_base = blk.shared<u32>(m);  // global base minus digit_start
    auto sm_keys = blk.shared<u32>(tile);
    SharedArray<V> sm_vals;
    if (in_vals != nullptr) sm_vals = blk.shared<V>(tile);

    // Per-warp register state carried across barriers.
    std::vector<std::vector<LaneArray<u32>>> keys_r(nw),
        digits_r(nw), rank_r(nw);
    std::vector<std::vector<LaneArray<V>>> vals_r(nw);
    std::vector<std::vector<LaneMask>> mask_r(nw);

    // Phase 1: load, compute warp histograms and stable in-warp ranks.
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      keys_r[wi].resize(rounds);
      digits_r[wi].resize(rounds);
      rank_r[wi].resize(rounds);
      mask_r[wi].assign(rounds, 0);
      if (in_vals != nullptr) vals_r[wi].resize(rounds);
      LaneArray<u32> acc{};
      for (u32 r = 0; r < rounds; ++r) {
        const u64 base =
            tile_base + (static_cast<u64>(wi) * rounds + r) * kWarpSize;
        const LaneMask mask = row_mask(base, n);
        mask_r[wi][r] = mask;
        if (mask == 0) break;
        keys_r[wi][r] = w.load(in_keys, base, mask);
        if (in_vals != nullptr) vals_r[wi][r] = w.load(*in_vals, base, mask);
        w.charge(digit_cost);
        digits_r[wi][r] = keys_r[wi][r].map(digit_fn);
        const auto rank = warp_rank(w, digits_r[wi][r], m, mask);
        // Stable rank within the warp strip so far: ranks of earlier rounds
        // for my digit (acc, indexed by digit via shfl) plus in-round rank.
        const auto base_for_digit = w.shfl(acc, digits_r[wi][r], mask);
        rank_r[wi][r] = lane_add(w, base_for_digit, rank.offsets);
        acc = lane_add(w, acc, rank.histogram);
      }
      w.smem_write(h2, LaneArray<u32>::iota(wi * m), acc, sim::tail_mask(m));
    });
    blk.sync();

    // Phase 2: per-digit exclusive scan across warps; block digit offsets.
    block_multi_scan_exclusive(blk, h2, m);
    {
      Warp& w0 = blk.warp(0);
      const LaneMask mm = sim::tail_mask(m);
      LaneArray<u32> totals = w0.smem_read(h2, LaneArray<u32>::iota(nw * m), mm);
      for (u32 lane = m; lane < kWarpSize; ++lane) totals[lane] = 0;
      const auto starts = warp_exclusive_scan(w0, totals);
      w0.smem_write(digit_start, Warp::lane_id(), starts, mm);
      // Global digit base for this block, shifted by the tile-local start.
      LaneArray<u64> idx{};
      for (u32 lane = 0; lane < kWarpSize; ++lane)
        idx[lane] = static_cast<u64>(lane) * nblocks + blk.block_id();
      const auto gbase = w0.gather(hist_scanned, idx, mm);
      w0.charge(1);
      const auto adj = gbase.zip(starts, [](u32 g, u32 s) { return g - s; });
      w0.smem_write(adjusted_base, Warp::lane_id(), adj, mm);
    }
    blk.sync();

    // Phase 3: reorder the tile in shared memory.
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      const auto warp_base = w.smem_read(h2, LaneArray<u32>::iota(wi * m),
                                         sim::tail_mask(m));
      for (u32 r = 0; r < rounds; ++r) {
        const LaneMask mask = mask_r[wi][r];
        if (mask == 0) break;
        // position = digit_start[d] + warp_base[d] + rank
        const auto ds = w.smem_read(digit_start, digits_r[wi][r], mask);
        const auto wb = w.shfl(warp_base, digits_r[wi][r], mask);
        auto pos = lane_add(w, lane_add(w, ds, wb), rank_r[wi][r]);
        w.smem_write(sm_keys, pos, keys_r[wi][r], mask);
        if (in_vals != nullptr) w.smem_write(sm_vals, pos, vals_r[wi][r], mask);
      }
    });
    blk.sync();

    // Phase 4: write digit runs out contiguously.
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      for (u32 r = 0; r < rounds; ++r) {
        const u32 t = (wi * rounds + r) * kWarpSize;
        if (t >= tile_n) break;
        const LaneMask mask = sim::tail_mask(tile_n - t);
        const auto keys = w.smem_read(sm_keys, LaneArray<u32>::iota(t), mask);
        w.charge(digit_cost);
        const auto digits = keys.map(digit_fn);
        const auto gb = w.smem_read(adjusted_base, digits, mask);
        w.charge(1);
        LaneArray<u64> idx{};
        for (u32 lane = 0; lane < kWarpSize; ++lane)
          idx[lane] = static_cast<u64>(gb[lane]) + t + lane;
        w.scatter(out_keys, idx, keys, mask);
        if (in_vals != nullptr) {
          const auto vals = w.smem_read(sm_vals, LaneArray<u32>::iota(t), mask);
          w.scatter(*out_vals, idx, vals, mask);
        }
      }
    });
  });
}

/// Classic bit-window pass (the wrapper the full radix sort uses).
template <typename V>
void radix_pass(Device& dev, const DeviceBuffer<u32>& in_keys,
                DeviceBuffer<u32>& out_keys, const DeviceBuffer<V>* in_vals,
                DeviceBuffer<V>* out_vals, u32 shift, u32 bits,
                const RadixSortConfig& cfg) {
  const u32 m = 1u << bits;
  radix_pass_fn<V>(
      dev, in_keys, out_keys, in_vals, out_vals, m,
      [shift, m](u32 k) { return (k >> shift) & (m - 1); },
      /*digit_cost=*/1, cfg);
}

template <typename V>
void radix_sort_impl(Device& dev, DeviceBuffer<u32>& keys,
                     DeviceBuffer<V>* values, u32 begin_bit, u32 end_bit,
                     const RadixSortConfig& cfg) {
  check(cfg.bits_per_pass >= 1 && cfg.bits_per_pass <= 5,
        "radix_sort: bits_per_pass must be in [1,5]");
  check(begin_bit < end_bit && end_bit <= 32, "radix_sort: bad bit range");
  const u64 n = keys.size();
  if (n <= 1) return;

  const u32 total_bits = end_bit - begin_bit;
  const u32 passes = static_cast<u32>(ceil_div(total_bits, cfg.bits_per_pass));

  DeviceBuffer<u32> tmp_keys(dev, n);
  std::optional<DeviceBuffer<V>> tmp_vals;
  if (values != nullptr) tmp_vals.emplace(dev, n);

  // Ping-pong so the final pass lands in the caller's buffers: with an odd
  // pass count, stage the input into the temporary first (one charged copy,
  // the same thing CUB's DoubleBuffer spares the caller from thinking
  // about).
  DeviceBuffer<u32>* src_k = &keys;
  DeviceBuffer<u32>* dst_k = &tmp_keys;
  DeviceBuffer<V>* src_v = values;
  DeviceBuffer<V>* dst_v = values != nullptr ? &*tmp_vals : nullptr;
  if (passes % 2 == 1) {
    sim::device_copy(dev, tmp_keys, keys);
    if (values != nullptr) sim::device_copy(dev, *tmp_vals, *values);
    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
  }

  u32 shift = begin_bit;
  for (u32 p = 0; p < passes; ++p) {
    const u32 bits = std::min(cfg.bits_per_pass, end_bit - shift);
    radix_pass<V>(dev, *src_k, *dst_k, src_v, dst_v, shift, bits, cfg);
    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
    shift += bits;
  }
  check(src_k == &keys, "radix_sort: ping-pong ended in the wrong buffer");
}

}  // namespace detail

/// Sort `keys` ascending by bits [begin_bit, end_bit), stably, in place.
void sort_keys(Device& dev, DeviceBuffer<u32>& keys, u32 begin_bit = 0,
               u32 end_bit = 32, const RadixSortConfig& cfg = {});

/// Sort (key, value) pairs ascending by key bits [begin_bit, end_bit),
/// stably, in place.  V is u32 or u64 (the paper packs 32+32-bit key-value
/// pairs into one 64-bit value for its reduced-bit sort).
template <typename V>
void sort_pairs(Device& dev, DeviceBuffer<u32>& keys, DeviceBuffer<V>& values,
                u32 begin_bit = 0, u32 end_bit = 32,
                const RadixSortConfig& cfg = {}) {
  check(values.size() == keys.size(), "sort_pairs: size mismatch");
  detail::radix_sort_impl<V>(dev, keys, &values, begin_bit, end_bit, cfg);
}

}  // namespace ms::prim
