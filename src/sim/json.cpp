#include "sim/json.hpp"

#include <cstdio>
#include <stdexcept>

namespace ms::sim {

// ---------------------------------------------------------------- writer

void JsonWriter::begin_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back() == 'O') {
      throw std::runtime_error("json: value inside object requires a key");
    }
    if (has_item_.back()) *os_ << ',';
    has_item_.back() = true;
  } else {
    if (wrote_top_level_) {
      throw std::runtime_error("json: multiple top-level values");
    }
  }
  if (stack_.empty()) wrote_top_level_ = true;
}

void JsonWriter::write_escaped(std::string_view s) {
  *os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': *os_ << "\\\""; break;
      case '\\': *os_ << "\\\\"; break;
      case '\n': *os_ << "\\n"; break;
      case '\r': *os_ << "\\r"; break;
      case '\t': *os_ << "\\t"; break;
      case '\b': *os_ << "\\b"; break;
      case '\f': *os_ << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *os_ << buf;
        } else {
          *os_ << c;
        }
    }
  }
  *os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  stack_.push_back('O');
  has_item_.push_back(false);
  *os_ << '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'O' || after_key_) {
    throw std::runtime_error("json: mismatched end_object");
  }
  stack_.pop_back();
  has_item_.pop_back();
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  stack_.push_back('A');
  has_item_.push_back(false);
  *os_ << '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'A') {
    throw std::runtime_error("json: mismatched end_array");
  }
  stack_.pop_back();
  has_item_.pop_back();
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != 'O' || after_key_) {
    throw std::runtime_error("json: key outside object");
  }
  if (has_item_.back()) *os_ << ',';
  has_item_.back() = true;
  write_escaped(k);
  *os_ << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  begin_value();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(f64 v) {
  begin_value();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  begin_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  begin_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value();
  *os_ << (v ? "true" : "false");
  return *this;
}

// ---------------------------------------------------------------- parser

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing member '" + std::string(key) + "'");
  }
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) err("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void err(const std::string& what) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) err("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) err(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) err("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) err("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) err("truncated \\u escape");
          u32 code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<u32>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<u32>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<u32>(h - 'A' + 10);
            else err("bad hex digit in \\u escape");
          }
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: err("unknown escape");
      }
    }
    return out;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      v.type = JsonValue::Type::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.type = JsonValue::Type::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    // Number.
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) err("unexpected character");
    const std::string num(s_.substr(start, pos_ - start));
    char* end = nullptr;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') err("malformed number");
    return v;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ms::sim
