#include "sim/sanitizer.hpp"

#include <sstream>

#include "sim/shard.hpp"

namespace ms::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kGlobalOOB: return "invalid global access (memcheck)";
    case FaultKind::kSharedOOB: return "invalid shared access (memcheck)";
    case FaultKind::kHostOOB: return "invalid host-side access (memcheck)";
    case FaultKind::kUninitGlobalRead:
      return "uninitialized global read (initcheck)";
    case FaultKind::kUninitSharedRead:
      return "uninitialized shared read (initcheck)";
    case FaultKind::kRaceHazard: return "shared-memory hazard (racecheck)";
    case FaultKind::kSmemOvercommit:
      return "shared-memory overcommit (warning)";
    case FaultKind::kInvalidConfig:
      return "invalid multisplit configuration";
    case FaultKind::kLaunchFailure: return "kernel launch failure";
    case FaultKind::kAllocFailure: return "device allocation failure";
    case FaultKind::kValidationFailure:
      return "output validation failure (resilience)";
    case FaultKind::kRetryExhausted:
      return "retry budget exhausted (resilience)";
  }
  return "unknown fault";
}

std::string object_label(std::string_view name, u64 base) {
  if (!name.empty()) return std::string(name);
  std::ostringstream os;
  os << "buffer@" << base;
  return os.str();
}

std::string format_fault(const FaultContext& ctx) {
  std::ostringstream os;
  os << "========= "
     << (ctx.severity == FaultSeverity::kWarning ? "WARNING: " : "ERROR: ")
     << to_string(ctx.kind) << "\n";
  os << "=========     kernel '" << (ctx.kernel.empty() ? "<host>" : ctx.kernel)
     << "'";
  if (ctx.lane != kNoLane) {
    os << ", block " << ctx.block << ", warp " << ctx.warp_in_block
       << " (global warp " << ctx.global_warp << "), lane " << ctx.lane;
  }
  os << "\n";
  if (!ctx.object.empty()) {
    os << "=========     object '" << ctx.object << "': index " << ctx.index
       << " (extent " << ctx.extent << ")\n";
  }
  if (!ctx.detail.empty()) os << "=========     " << ctx.detail << "\n";
  return os.str();
}

std::optional<SanitizerConfig> SanitizerConfig::parse(std::string_view csv) {
  SanitizerConfig cfg;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string_view tok =
        csv.substr(pos, comma == std::string_view::npos ? csv.size() - pos
                                                        : comma - pos);
    if (tok == "memcheck") cfg.memcheck = true;
    else if (tok == "racecheck") cfg.racecheck = true;
    else if (tok == "initcheck") cfg.initcheck = true;
    else if (tok == "all") cfg = SanitizerConfig::all();
    else if (tok == "none" || tok.empty()) { /* no-op */ }
    else return std::nullopt;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return cfg;
}

void Sanitizer::report(FaultContext ctx) {
  // Parallel path: defer the report into the executing item's shard; the
  // post-launch merge forwards shard reports here in item order, so
  // counts, stored reports and last_error_report match serial execution.
  if (CounterShard* sh = detail::t_shard; sh != nullptr) {
    sh->reports.push_back(std::move(ctx));
    return;
  }
  if (ctx.severity == FaultSeverity::kError) {
    ++errors_;
    last_error_report_ = ctx;
  } else {
    ++warnings_;
  }
  if (reports_.size() < kMaxStoredReports) {
    reports_.push_back(std::move(ctx));
  } else {
    ++dropped_;
  }
}

void Sanitizer::clear_reports() {
  reports_.clear();
  last_error_report_.reset();
  errors_ = warnings_ = dropped_ = 0;
}

std::string Sanitizer::format_reports() const {
  if (errors_ == 0 && warnings_ == 0) return {};
  std::ostringstream os;
  for (const auto& r : reports_) os << format_fault(r);
  os << "========= SANITIZER SUMMARY: " << errors_ << " error(s), "
     << warnings_ << " warning(s)";
  if (dropped_ > 0) {
    os << " (" << dropped_ << " further report(s) not stored)";
  }
  os << "\n";
  return os.str();
}

GlobalShadow* Sanitizer::on_buffer_alloc(u64 base, u64 count, u32 elem_size,
                                         std::string name) {
  if (!cfg_.initcheck) return nullptr;
  auto shadow = std::make_unique<GlobalShadow>();
  shadow->name = std::move(name);
  shadow->base = base;
  shadow->count = count;
  shadow->elem_size = elem_size;
  shadow->valid.assign(count, 0);
  GlobalShadow* raw = shadow.get();
  buffers_[base] = std::move(shadow);
  return raw;
}

void Sanitizer::on_buffer_free(u64 base) { buffers_.erase(base); }

}  // namespace ms::sim
