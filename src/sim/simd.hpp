// Portable host-SIMD lane engine for the 32-lane warp primitives.
//
// The simulator's inner loops are warp-wide operations over 32 lanes
// (ballot, bucket-bit broadcasts, class-mask intersection).  On a host
// with vector units those 32 lanes fit in a handful of registers, so this
// header wraps the few lane-parallel kernels the hot paths need behind a
// tiny ISA-dispatched API:
//
//   ballot(pred, active)        -- CUDA __ballot over a 32-lane register
//   bit_ballots(bucket, r, ...) -- ballots of bucket-ID bits 0..r-1 at once
//   class_masks(r, ballots, ..) -- the fused Algorithm-2/3 bitmap build:
//                                  M[c] = valid ∩ lanes whose low r bucket
//                                  bits equal c (see primitives/warp_ops)
//
// Backend selection is compile-time (AVX2 > SSE2 > NEON > scalar; the
// MS_SIMD=off CMake knob compiles the scalar loops unconditionally) plus a
// runtime kill switch: the MS_SIMD environment variable ("off"/"scalar"/
// "0") or simd::set_enabled(false) routes every caller back to its
// original per-lane reference loop.  The callers gate on simd::enabled(),
// keeping the reference implementation alive as the selectable fallback --
// the SIMD-off ctest gate proves both paths produce byte-identical
// reports.
//
// Nothing in here touches modeled costs: these are pure value computations
// whose results feed the same charging formulas either way.
#pragma once

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "sim/types.hpp"

#if !defined(MS_SIMD_DISABLE)
#if defined(__AVX2__)
#define MS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define MS_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define MS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !MS_SIMD_DISABLE

namespace ms::sim::simd {

enum class Backend { kScalar, kSse2, kAvx2, kNeon };

constexpr Backend compiled_backend() {
#if defined(MS_SIMD_AVX2)
  return Backend::kAvx2;
#elif defined(MS_SIMD_SSE2)
  return Backend::kSse2;
#elif defined(MS_SIMD_NEON)
  return Backend::kNeon;
#else
  return Backend::kScalar;
#endif
}

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    const char* e = std::getenv("MS_SIMD");
    return !(e != nullptr &&
             (std::strcmp(e, "off") == 0 || std::strcmp(e, "scalar") == 0 ||
              std::strcmp(e, "0") == 0));
  }()};
  return flag;
}
}  // namespace detail

/// True when callers should take their vector fast path.  Constant-false
/// in scalar-only builds so the branch folds away.
inline bool enabled() {
  if constexpr (compiled_backend() == Backend::kScalar) {
    return false;
  } else {
    return detail::enabled_flag().load(std::memory_order_relaxed);
  }
}

/// Runtime toggle (tests and benches A/B the two paths in one process).
/// No-op in scalar-only builds.
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Name of the lane engine actually in use, as surfaced in --json reports
/// and `ms_cli --version` ("host_simd").
inline const char* backend_name() {
  if (!enabled()) return "scalar";
  switch (compiled_backend()) {
    case Backend::kAvx2: return "avx2";
    case Backend::kSse2: return "sse2";
    case Backend::kNeon: return "neon";
    case Backend::kScalar: return "scalar";
  }
  return "scalar";
}

// ---------------------------------------------------------------------------
// Lane-parallel kernels.  Each has one vector implementation per backend
// and a scalar loop; results are bit-identical by construction.
// ---------------------------------------------------------------------------

/// Bit i of the result: v[i] != 0.  The core of __ballot/__any/__all.
inline u32 nonzero_mask(const u32* v) {
#if defined(MS_SIMD_AVX2)
  const __m256i zero = _mm256_setzero_si256();
  u32 out = 0;
  for (u32 g = 0; g < 4; ++g) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + 8 * g));
    const __m256i eq = _mm256_cmpeq_epi32(x, zero);
    const u32 zeros =
        static_cast<u32>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    out |= (~zeros & 0xFFu) << (8 * g);
  }
  return out;
#elif defined(MS_SIMD_SSE2)
  const __m128i zero = _mm_setzero_si128();
  u32 out = 0;
  for (u32 g = 0; g < 8; ++g) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + 4 * g));
    const __m128i eq = _mm_cmpeq_epi32(x, zero);
    const u32 zeros = static_cast<u32>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    out |= (~zeros & 0xFu) << (4 * g);
  }
  return out;
#elif defined(MS_SIMD_NEON)
  // Per group of 4 lanes: compare-nonzero lanes to all-ones, then collapse
  // each lane to its bit via a positional AND and a horizontal add.
  const uint32x4_t bits = {1u, 2u, 4u, 8u};
  u32 out = 0;
  for (u32 g = 0; g < 8; ++g) {
    const uint32x4_t x = vld1q_u32(v + 4 * g);
    const uint32x4_t nz = vtstq_u32(x, x);  // 0xFFFFFFFF where x != 0
    out |= vaddvq_u32(vandq_u32(nz, bits)) << (4 * g);
  }
  return out;
#else
  u32 out = 0;
  for (u32 i = 0; i < kWarpSize; ++i) {
    out |= (v[i] != 0 ? 1u : 0u) << i;
  }
  return out;
#endif
}

/// CUDA __ballot: bit i is pred[i] != 0 for lanes in `active`.
inline LaneMask ballot(const u32* pred, LaneMask active) {
  return nonzero_mask(pred) & active;
}

/// ballots[k] = mask of lanes (restricted to `valid`) whose bucket ID has
/// bit k set, for k in [0, rounds).  One pass replaces `rounds` sequential
/// ballot(bucket >> k & 1) calls.
inline void bit_ballots(const u32* bucket, u32 rounds, LaneMask valid,
                        u32* ballots) {
#if defined(MS_SIMD_AVX2)
  __m256i x[4];
  for (u32 g = 0; g < 4; ++g) {
    x[g] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bucket + 8 * g));
  }
  for (u32 k = 0; k < rounds; ++k) {
    u32 mask = 0;
    for (u32 g = 0; g < 4; ++g) {
      // Move bit k into the sign position and take the sign mask.
      const __m256i shifted = _mm256_slli_epi32(x[g], 31 - static_cast<int>(k));
      mask |= static_cast<u32>(
                  _mm256_movemask_ps(_mm256_castsi256_ps(shifted)) & 0xFF)
              << (8 * g);
    }
    ballots[k] = mask & valid;
  }
#elif defined(MS_SIMD_SSE2)
  for (u32 k = 0; k < rounds; ++k) {
    u32 mask = 0;
    for (u32 g = 0; g < 8; ++g) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bucket + 4 * g));
      const __m128i shifted = _mm_slli_epi32(x, 31 - static_cast<int>(k));
      mask |= static_cast<u32>(_mm_movemask_ps(_mm_castsi128_ps(shifted)) &
                               0xF)
              << (4 * g);
    }
    ballots[k] = mask & valid;
  }
#elif defined(MS_SIMD_NEON)
  const uint32x4_t bits = {1u, 2u, 4u, 8u};
  for (u32 k = 0; k < rounds; ++k) {
    u32 mask = 0;
    for (u32 g = 0; g < 8; ++g) {
      const uint32x4_t x = vld1q_u32(bucket + 4 * g);
      const uint32x4_t bit =
          vtstq_u32(x, vdupq_n_u32(1u << k));  // all-ones where bit k set
      mask |= vaddvq_u32(vandq_u32(bit, bits)) << (4 * g);
    }
    ballots[k] = mask & valid;
  }
#else
  for (u32 k = 0; k < rounds; ++k) {
    u32 mask = 0;
    for (u32 i = 0; i < kWarpSize; ++i) {
      mask |= ((bucket[i] >> k) & 1u) << i;
    }
    ballots[k] = mask & valid;
  }
#endif
}

/// The fused Algorithm-2/3 bitmap build.  M[c] (for c in [0, 2^rounds)) is
/// the mask of lanes in `valid` whose low `rounds` bucket bits equal c:
///
///   M[c] = valid & AND_k ( bit_k(c) ? ballots[k] : ~ballots[k] )
///
/// The select is branchless: ballots[k] ^ (bit - 1) is ballots[k] when
/// bit == 1 and ~ballots[k] when bit == 0.  `M` must hold 2^rounds words
/// (rounds <= 8 across this library: m <= 256).
inline void class_masks(u32 rounds, const u32* ballots, LaneMask valid,
                        u32* M) {
  const u32 classes = 1u << rounds;
#if defined(MS_SIMD_AVX2)
  if (classes >= 8) {
    const __m256i ones = _mm256_set1_epi32(-1);
    for (u32 c0 = 0; c0 < classes; c0 += 8) {
      __m256i m = _mm256_set1_epi32(static_cast<int>(valid));
      const __m256i c = _mm256_setr_epi32(
          static_cast<int>(c0 + 0), static_cast<int>(c0 + 1),
          static_cast<int>(c0 + 2), static_cast<int>(c0 + 3),
          static_cast<int>(c0 + 4), static_cast<int>(c0 + 5),
          static_cast<int>(c0 + 6), static_cast<int>(c0 + 7));
      for (u32 k = 0; k < rounds; ++k) {
        const __m256i b = _mm256_set1_epi32(static_cast<int>(ballots[k]));
        // bit - 1 per class: 0 where bit k of c is set, ~0 where clear.
        const __m256i bit = _mm256_and_si256(
            _mm256_srli_epi32(c, static_cast<int>(k)), _mm256_set1_epi32(1));
        const __m256i sel = _mm256_sub_epi32(bit, _mm256_set1_epi32(1));
        m = _mm256_and_si256(m, _mm256_xor_si256(b, sel));
        (void)ones;
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(M + c0), m);
    }
    return;
  }
#endif
  for (u32 c = 0; c < classes; ++c) M[c] = valid;
  for (u32 k = 0; k < rounds; ++k) {
    const u32 b = ballots[k];
    for (u32 c = 0; c < classes; ++c) {
      M[c] &= b ^ (((c >> k) & 1u) - 1u);
    }
  }
}

}  // namespace ms::sim::simd
