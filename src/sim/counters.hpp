// Per-access-site counters and scoped stage profiling -- the simulator's
// equivalent of `nvprof --metrics` source correlation.
//
// A *site* is a registered label for a region of kernel code ("who issued
// this traffic"), e.g. "warp_ms/postscan_scatter".  While a ScopedSite is
// alive, every counter increment -- sectors, useful bytes, scatter replays,
// bank-conflict slots, atomics -- is attributed to that site as well as to
// the kernel totals.  Attribution is delta-based: the device snapshots the
// running KernelEvents at every site transition and charges the difference
// to the outgoing site, so the per-site slices *partition* the kernel's
// totals exactly (anything outside an explicit scope lands on the reserved
// site 0, "other"; end-of-kernel L2 writeback lands on "sim/l2_writeback").
//
// A *ProfileRegion* is the scoped replacement for the manual
// `mark()`/`summary_since()` idiom: it brackets a sequence of kernel
// launches, returns their TimingSummary from end(), and records the span on
// the device so trace export (trace.hpp) can draw stage bands.
#pragma once

#include <string>

#include "sim/events.hpp"
#include "sim/types.hpp"

namespace ms::sim {

class Device;

/// Index into the device's site table.  Site 0 is always "other".
using SiteId = u32;
inline constexpr SiteId kSiteOther = 0;

/// Accumulated counters of one registered access site.
struct SiteStats {
  std::string label;
  KernelEvents events;
};

/// A closed ProfileRegion: [first_kernel, end_kernel) indexes into
/// Device::records().
struct RegionRecord {
  std::string name;
  u64 first_kernel = 0;
  u64 end_kernel = 0;
};

/// RAII site scope.  Construction switches the device's current attribution
/// site; destruction restores the previous one.  Scopes nest (the inner
/// site takes over for its lifetime only).  Cheap enough for per-round use
/// inside kernels: a transition costs one KernelEvents snapshot.
class ScopedSite {
 public:
  ScopedSite(Device& dev, SiteId site);
  ScopedSite(Device& dev, std::string_view label);
  ~ScopedSite();

  ScopedSite(const ScopedSite&) = delete;
  ScopedSite& operator=(const ScopedSite&) = delete;

 private:
  Device* dev_;
  SiteId prev_;
};

/// RAII stage timer over whole kernel launches.  end() closes the region,
/// records it on the device (for the trace's stage track) and returns the
/// TimingSummary of every kernel launched inside it.  A region destroyed
/// without end() is closed and recorded with whatever ran so far.
class ProfileRegion {
 public:
  ProfileRegion(Device& dev, std::string name);
  ~ProfileRegion();

  ProfileRegion(const ProfileRegion&) = delete;
  ProfileRegion& operator=(const ProfileRegion&) = delete;

  /// Close the region and return its summary (idempotent: later calls
  /// return the summary captured by the first).
  TimingSummary end();

  const std::string& name() const { return name_; }

 private:
  Device* dev_;
  std::string name_;
  u64 begin_;
  u64 span_id_ = 0;  ///< stage span, when the device traces a request
  bool ended_ = false;
  TimingSummary final_;
};

}  // namespace ms::sim
