// Fault-injection harness: tiny kernels that each exhibit exactly one
// fault class the sanitizer is supposed to catch.  They are the positive
// controls for the sanitizer subsystem -- tests (and skeptical users) run
// them under each tool and assert the expected report appears with full
// context, the same way compute-sanitizer's own test apps ship known-bad
// kernels.
//
// Each injector is deliberately minimal: one buffer or one shared tile,
// one access pattern, one bug.  None of them depend on the multisplit
// primitives, so a sanitizer regression cannot be masked by an algorithm
// change.
#pragma once

#include "sim/kernel.hpp"

namespace ms::sim::inject {

/// memcheck (global): scatter with a classic off-by-one -- lane 31 of the
/// last warp writes index n, one past the end of an n-element buffer.
inline void oob_scatter(Device& dev, u64 n = 64) {
  DeviceBuffer<u32> buf(dev, n, "inject::oob_scatter.buf");
  buf.fill(0);
  launch_warps(dev, "inject_oob_scatter", ceil_div(n, kWarpSize),
               [&](Warp& w, u64 wid) {
                 const u64 base = wid * kWarpSize;
                 const LaneMask active = tail_mask(n - base);
                 // Off by one: writes [base+1, base+32] instead of
                 // [base, base+31]; the final lane lands on index n.
                 const auto idx =
                     Warp::lane_id().map([&](u32 l) { return base + l + 1; });
                 w.scatter(buf, idx, LaneArray<u32>::filled(1u), active);
               });
}

/// memcheck (host): index one past the end from host code.
inline void oob_host_index(Device& dev, u64 n = 16) {
  DeviceBuffer<u32> buf(dev, n, "inject::oob_host.buf");
  buf[n] = 0;  // throws SimError{kHostOOB}
}

/// memcheck (shared): lane 31 reads one element past a 32-element tile.
inline void smem_oob(Device& dev) {
  launch_blocks(dev, "inject_smem_oob", 1, 1, [&](Block& blk) {
    auto tile = blk.shared<u32>(kWarpSize, "inject::smem_oob.tile");
    blk.for_each_warp([&](Warp& w) {
      w.smem_write(tile, Warp::lane_id(), LaneArray<u32>::filled(0u));
      // Off by one: lane i reads tile[i + 1]; lane 31 is out of bounds.
      const auto idx = Warp::lane_id().map([](u32 l) { return l + 1; });
      w.smem_read(tile, idx);
    });
  });
}

/// initcheck (global): sums a staging buffer that no host or device code
/// ever wrote.
inline void uninit_global_read(Device& dev, u64 n = 64) {
  DeviceBuffer<u32> staging(dev, n, "inject::uninit.staging");
  DeviceBuffer<u32> sink(dev, n, "inject::uninit.sink");
  launch_warps(dev, "inject_uninit_global", ceil_div(n, kWarpSize),
               [&](Warp& w, u64 wid) {
                 const u64 base = wid * kWarpSize;
                 const LaneMask active = tail_mask(n - base);
                 const auto v = w.load(staging, base, active);
                 w.store(sink, base, v, active);
               });
}

/// initcheck (shared): a tile where only the even elements are written
/// before the whole tile is read back.
inline void uninit_smem_read(Device& dev) {
  launch_blocks(dev, "inject_uninit_smem", 1, 1, [&](Block& blk) {
    auto tile = blk.shared<u32>(kWarpSize, "inject::uninit.tile");
    blk.for_each_warp([&](Warp& w) {
      const LaneMask evens = 0x55555555u;
      w.smem_write(tile, Warp::lane_id(), LaneArray<u32>::filled(7u), evens);
      blk.sync();
      w.smem_read(tile, Warp::lane_id());  // odd words were never written
    });
  });
}

/// racecheck: warp 1 reads the words warp 0 wrote with no Block::sync()
/// between them -- the canonical skipped barrier.  The simulator executes
/// the warps sequentially, so the kernel still "works"; only racecheck
/// sees the missing barrier.
inline void skipped_barrier(Device& dev) {
  launch_blocks(dev, "inject_skipped_barrier", 1, 2, [&](Block& blk) {
    auto tile = blk.shared<u32>(kWarpSize, "inject::race.tile");
    blk.warp(0).smem_write(tile, Warp::lane_id(),
                           LaneArray<u32>::filled(42u));
    // BUG: blk.sync() belongs here.
    blk.warp(1).smem_read(tile, Warp::lane_id());
  });
}

/// smem-overcommit warning: one allocation beyond the device's per-block
/// shared-memory capacity.
inline void smem_overcommit(Device& dev) {
  launch_blocks(dev, "inject_smem_overcommit", 1, 1, [&](Block& blk) {
    const u32 cap = dev.profile().smem_bytes_per_block;
    auto big = blk.shared<u32>(cap / 4 + kWarpSize, "inject::overcommit.big");
    blk.for_each_warp([&](Warp& w) {
      w.smem_write(big, Warp::lane_id(), LaneArray<u32>::filled(0u));
    });
  });
}

// --- chaos-engine positive controls (sim/chaos.hpp) ---
//
// The injectors below arm the device's chaos engine for exactly one
// deterministic fault and trigger it, the same positive-control role the
// kernels above play for the sanitizer.  Each enables chaos with an
// all-zero-probability policy, so nothing BUT the armed one-shot fires.

/// chaos (alloc): the next device allocation fails with a simulated OOM.
/// Throws SimError{kAllocFailure}; the allocator's stats are untouched.
inline void alloc_failure(Device& dev) {
  dev.enable_chaos(ChaosPolicy{}).arm_alloc_failure();
  DeviceBuffer<u32> doomed(dev, 64, "inject::alloc_failure.doomed");
}

/// chaos (launch): the next kernel launch aborts before any item runs.
/// Throws SimError{kLaunchFailure}.
inline void launch_abort(Device& dev) {
  dev.enable_chaos(ChaosPolicy{}).arm_launch_abort();
  launch_warps(dev, "inject_launch_abort", 1, [&](Warp&, u64) {});
}

/// chaos (bit flip): flip one known bit of `buf` at the end of the next
/// kernel.  The caller knows exactly which word changed, so tests can
/// assert both the corruption and its detection.  `buf` must have been
/// created AFTER chaos was enabled (construction registers it with the
/// engine).
template <typename T>
inline void bit_flip(Device& dev, DeviceBuffer<T>& buf, u64 word, u32 bit) {
  ChaosEngine* c = dev.chaos();
  check(c != nullptr, "inject::bit_flip: enable_chaos first");
  c->arm_bit_flip(buf.base_address(), word, bit);
  launch_warps(dev, "inject_bit_flip", 1, [&](Warp&, u64) {});
}

}  // namespace ms::sim::inject
