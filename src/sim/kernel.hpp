// Kernel launch helpers.
//
// launch_warps:  a grid of independent warps; the body sees (Warp&, warp_id).
// launch_blocks: a grid of blocks of NW warps with shared memory; the body
//                sees (Block&) and structures itself into barrier phases.
//
// Both bracket the execution with Device::begin/end_kernel so each launch
// becomes one KernelRecord with its own cost.  `device_fill` and
// `device_copy` are charged utility kernels (a real implementation would
// call cudaMemset/cudaMemcpy D2D, which cost bandwidth just the same).
//
// Fault handling (see sanitizer.hpp): a SimError thrown mid-kernel aborts
// the launch.  With the sanitizer disabled -- or in fail_fast mode -- the
// error propagates to the caller as before.  With a sanitizer armed in
// reporting mode, the fault parks in Device::last_error() and the launch
// helper returns normally (the cudaGetLastError idiom); the kernel's
// record is marked `faulted`.  fail_fast additionally promotes non-fatal
// error reports (initcheck / racecheck findings) to a SimError thrown at
// the end of the offending launch.
#pragma once

#include <algorithm>
#include <utility>

#include "sim/block.hpp"

namespace ms::sim {

namespace detail {
/// Shared fault policy of the launch helpers.  Returns true when the body
/// ran to completion (false: a fault aborted it and was swallowed).
template <typename Body>
bool run_kernel_body(Device& dev, Body&& run_body) {
  Sanitizer& san = dev.sanitizer();
  const u64 errors_before = san.error_count();
  try {
    run_body();
  } catch (const SimError& e) {
    dev.note_fault(e.context());
    dev.end_kernel();
    if (!san.any() || san.fail_fast()) throw;
    return false;
  }
  dev.end_kernel();
  if (san.fail_fast() && san.error_count() > errors_before) {
    // Non-fatal reports (initcheck / racecheck) accumulated during the
    // launch; promote the latest to an error so the run stops here.
    throw SimError(*san.last_error_report());
  }
  return true;
}
}  // namespace detail

/// Warps per scheduled item of launch_warps.  Fixed (independent of the
/// worker count) so the item decomposition -- and therefore the merged
/// accounting -- is identical for every host-thread setting.
inline constexpr u64 kWarpsPerScheduleItem = 16;

template <typename F>
void launch_warps(Device& dev, const char* name, u64 num_warps, F&& body) {
  dev.begin_kernel(name);
  dev.events().warps_launched += num_warps;
  detail::run_kernel_body(dev, [&] {
    const u64 items = ceil_div(num_warps, kWarpsPerScheduleItem);
    dev.run_items(items, [&](u64 item) {
      const u64 first = item * kWarpsPerScheduleItem;
      const u64 last = std::min(num_warps, first + kWarpsPerScheduleItem);
      for (u64 w = first; w < last; ++w) {
        Warp warp(dev, w);
        body(warp, w);
      }
    });
  });
}

template <typename F>
void launch_blocks(Device& dev, const char* name, u32 num_blocks,
                   u32 warps_per_block, F&& body) {
  check(warps_per_block > 0, "launch_blocks: need at least one warp");
  dev.begin_kernel(name);
  dev.events().blocks_launched += num_blocks;
  dev.events().warps_launched +=
      static_cast<u64>(num_blocks) * warps_per_block;
  detail::run_kernel_body(dev, [&] {
    dev.run_items(num_blocks, [&](u64 b) {
      Block blk(dev, static_cast<u32>(b), warps_per_block);
      body(blk);
    });
  });
}

/// Active-lane mask for a tile of `count` elements starting at a lane-0
/// position: lanes [0, count) are active.  Counts above 32 saturate to a
/// full mask (callers pass `n - base` for the last tile); a count in the
/// top half of the u64 range means that subtraction wrapped (base > n),
/// which is a caller bug, not a short tail.
inline LaneMask tail_mask(u64 count) {
  check(count < (u64{1} << 63),
        "tail_mask: count wrapped negative (tile base beyond element count)");
  if (count == 0) return 0;
  if (count >= kWarpSize) return kFullMask;
  return kFullMask >> (kWarpSize - count);
}

/// Charged device-side fill (cudaMemset equivalent).  Grid-stride style
/// with several items per thread, like a tuned memset kernel.
template <typename T>
void device_fill(Device& dev, DeviceBuffer<T>& buf, T value) {
  const u64 n = buf.size();
  constexpr u32 kItems = 4;
  launch_warps(dev, "device_fill", ceil_div(n, kWarpSize * kItems),
               [&](Warp& w, u64 wid) {
                 for (u32 r = 0; r < kItems; ++r) {
                   const u64 base = (wid * kItems + r) * kWarpSize;
                   if (base >= n) break;
                   w.store(buf, base, LaneArray<T>::filled(value),
                           tail_mask(n - base));
                 }
               });
}

/// Charged ranged device-to-device copy of `n` elements.
template <typename T>
void device_copy_n(Device& dev, DeviceBuffer<T>& dst, u64 dst_off,
                   const DeviceBuffer<T>& src, u64 src_off, u64 n) {
  check(dst_off + n <= dst.size() && src_off + n <= src.size(),
        "device_copy_n: range out of bounds");
  constexpr u32 kItems = 4;
  launch_warps(dev, "device_copy", ceil_div(n, kWarpSize * kItems),
               [&](Warp& w, u64 wid) {
                 for (u32 r = 0; r < kItems; ++r) {
                   const u64 base = (wid * kItems + r) * kWarpSize;
                   if (base >= n) break;
                   const LaneMask active = tail_mask(n - base);
                   const auto v = w.load(src, src_off + base, active);
                   w.store(dst, dst_off + base, v, active);
                 }
               });
}

/// Charged device-to-device copy (cudaMemcpyDeviceToDevice equivalent).
template <typename T>
void device_copy(Device& dev, DeviceBuffer<T>& dst, const DeviceBuffer<T>& src) {
  check(dst.size() >= src.size(), "device_copy: destination too small");
  const u64 n = src.size();
  constexpr u32 kItems = 4;
  launch_warps(dev, "device_copy", ceil_div(n, kWarpSize * kItems),
               [&](Warp& w, u64 wid) {
                 for (u32 r = 0; r < kItems; ++r) {
                   const u64 base = (wid * kItems + r) * kWarpSize;
                   if (base >= n) break;
                   const LaneMask active = tail_mask(n - base);
                   const auto v = w.load(src, base, active);
                   w.store(dst, base, v, active);
                 }
               });
}

}  // namespace ms::sim
