// Kernel launch helpers.
//
// launch_warps:  a grid of independent warps; the body sees (Warp&, warp_id).
// launch_blocks: a grid of blocks of NW warps with shared memory; the body
//                sees (Block&) and structures itself into barrier phases.
//
// Both bracket the execution with Device::begin/end_kernel so each launch
// becomes one KernelRecord with its own cost.  `device_fill` and
// `device_copy` are charged utility kernels (a real implementation would
// call cudaMemset/cudaMemcpy D2D, which cost bandwidth just the same).
#pragma once

#include <utility>

#include "sim/block.hpp"

namespace ms::sim {

template <typename F>
void launch_warps(Device& dev, const char* name, u64 num_warps, F&& body) {
  dev.begin_kernel(name);
  dev.events().warps_launched += num_warps;
  for (u64 w = 0; w < num_warps; ++w) {
    Warp warp(dev, w);
    body(warp, w);
  }
  dev.end_kernel();
}

template <typename F>
void launch_blocks(Device& dev, const char* name, u32 num_blocks,
                   u32 warps_per_block, F&& body) {
  check(warps_per_block > 0, "launch_blocks: need at least one warp");
  dev.begin_kernel(name);
  dev.events().blocks_launched += num_blocks;
  dev.events().warps_launched +=
      static_cast<u64>(num_blocks) * warps_per_block;
  for (u32 b = 0; b < num_blocks; ++b) {
    Block blk(dev, b, warps_per_block);
    body(blk);
  }
  dev.end_kernel();
}

/// Active-lane mask for a tile of `count` elements starting at a lane-0
/// position: lanes [0, count) are active.  count must be <= 32.
inline LaneMask tail_mask(u64 count) {
  if (count == 0) return 0;
  if (count >= kWarpSize) return kFullMask;
  return kFullMask >> (kWarpSize - count);
}

/// Charged device-side fill (cudaMemset equivalent).  Grid-stride style
/// with several items per thread, like a tuned memset kernel.
template <typename T>
void device_fill(Device& dev, DeviceBuffer<T>& buf, T value) {
  const u64 n = buf.size();
  constexpr u32 kItems = 4;
  launch_warps(dev, "device_fill", ceil_div(n, kWarpSize * kItems),
               [&](Warp& w, u64 wid) {
                 for (u32 r = 0; r < kItems; ++r) {
                   const u64 base = (wid * kItems + r) * kWarpSize;
                   if (base >= n) break;
                   w.store(buf, base, LaneArray<T>::filled(value),
                           tail_mask(n - base));
                 }
               });
}

/// Charged ranged device-to-device copy of `n` elements.
template <typename T>
void device_copy_n(Device& dev, DeviceBuffer<T>& dst, u64 dst_off,
                   const DeviceBuffer<T>& src, u64 src_off, u64 n) {
  check(dst_off + n <= dst.size() && src_off + n <= src.size(),
        "device_copy_n: range out of bounds");
  constexpr u32 kItems = 4;
  launch_warps(dev, "device_copy", ceil_div(n, kWarpSize * kItems),
               [&](Warp& w, u64 wid) {
                 for (u32 r = 0; r < kItems; ++r) {
                   const u64 base = (wid * kItems + r) * kWarpSize;
                   if (base >= n) break;
                   const LaneMask active = tail_mask(n - base);
                   const auto v = w.load(src, src_off + base, active);
                   w.store(dst, dst_off + base, v, active);
                 }
               });
}

/// Charged device-to-device copy (cudaMemcpyDeviceToDevice equivalent).
template <typename T>
void device_copy(Device& dev, DeviceBuffer<T>& dst, const DeviceBuffer<T>& src) {
  check(dst.size() >= src.size(), "device_copy: destination too small");
  const u64 n = src.size();
  constexpr u32 kItems = 4;
  launch_warps(dev, "device_copy", ceil_div(n, kWarpSize * kItems),
               [&](Warp& w, u64 wid) {
                 for (u32 r = 0; r < kItems; ++r) {
                   const u64 base = (wid * kItems + r) * kWarpSize;
                   if (base >= n) break;
                   const LaneMask active = tail_mask(n - base);
                   const auto v = w.load(src, base, active);
                   w.store(dst, base, v, active);
                 }
               });
}

}  // namespace ms::sim
