#include "sim/trace.hpp"

#include <fstream>
#include <ostream>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"

namespace ms::sim {

namespace {

constexpr u32 kTidStages = 0;
constexpr u32 kTidKernels = 1;
constexpr u32 kTidMem = 2;
constexpr u32 kTidIssue = 3;
constexpr u32 kTidSpans = 4;

void metadata_event(JsonWriter& w, const char* name, u32 tid,
                    const char* value) {
  w.begin_object()
      .field("ph", "M")
      .field("pid", u64{0})
      .field("tid", static_cast<u64>(tid))
      .field("name", name);
  w.key("args").begin_object().field("name", value).end_object();
  w.end_object();
}

void slice_begin(JsonWriter& w, std::string_view name, const char* cat,
                 u32 tid, f64 ts_us, f64 dur_us) {
  w.begin_object()
      .field("ph", "X")
      .field("pid", u64{0})
      .field("tid", static_cast<u64>(tid))
      .field("name", name)
      .field("cat", cat)
      .field("ts", ts_us)
      .field("dur", dur_us);
}

void counter_event(JsonWriter& w, const char* name, f64 ts_us) {
  w.begin_object()
      .field("ph", "C")
      .field("pid", u64{0})
      .field("tid", u64{0})
      .field("name", name)
      .field("ts", ts_us);
}

}  // namespace

void write_chrome_trace(Device& dev, std::ostream& os) {
  const auto& records = dev.records();
  const auto& sites = dev.site_stats();  // flushes pending deltas; id -> label
  const DeviceProfile& prof = dev.profile();

  // Modeled start time of each kernel (and the end of the last), in us.
  std::vector<f64> start_us(records.size() + 1, 0.0);
  for (u64 i = 0; i < records.size(); ++i) {
    start_us[i + 1] = start_us[i] + records[i].time_ms * 1e3;
  }

  JsonWriter w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").begin_object().field("device", prof.name).end_object();
  w.key("traceEvents").begin_array();

  metadata_event(w, "process_name", 0, ("simulated " + prof.name).c_str());
  metadata_event(w, "thread_name", kTidStages, "stages");
  metadata_event(w, "thread_name", kTidKernels, "kernels");
  metadata_event(w, "thread_name", kTidMem, "memory pipe");
  metadata_event(w, "thread_name", kTidIssue, "issue pipe");

  // Stage bands from recorded ProfileRegions.
  for (const RegionRecord& reg : dev.regions()) {
    if (reg.first_kernel >= reg.end_kernel ||
        reg.end_kernel > records.size()) {
      continue;
    }
    const f64 ts = start_us[reg.first_kernel];
    const f64 dur = start_us[reg.end_kernel] - ts;
    slice_begin(w, reg.name, "stage", kTidStages, ts, dur);
    w.end_object();
  }

  // Kernel slices + pipe sub-slices + counter tracks.
  u64 dram_read = 0, dram_write = 0;
  counter_event(w, "DRAM transactions", 0.0);
  w.key("args").begin_object().field("read", u64{0}).field("write", u64{0});
  w.end_object().end_object();

  for (u64 i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    const f64 ts = start_us[i];

    slice_begin(w, r.name, "kernel", kTidKernels, ts, r.time_ms * 1e3);
    w.key("args").begin_object();
    w.field("issue_slots", r.events.issue_slots)
        .field("scatter_replays", r.events.scatter_replays)
        .field("smem_slots", r.events.smem_slots)
        .field("dram_read_tx", r.events.dram_read_tx)
        .field("dram_write_tx", r.events.dram_write_tx)
        .field("l2_read_segments", r.events.l2_read_segments)
        .field("l2_write_segments", r.events.l2_write_segments)
        .field("useful_bytes_read", r.events.useful_bytes_read)
        .field("useful_bytes_written", r.events.useful_bytes_written)
        .field("warps_launched", r.events.warps_launched)
        .field("barriers", r.events.barriers)
        .field("atomic_ops", r.events.atomic_ops)
        .field("coalescing_pct",
               100.0 * coalescing_efficiency(r.events, prof))
        .field("achieved_gbps", achieved_bandwidth_gbps(r));
    if (!r.sites.empty()) {
      w.key("sites").begin_object();
      for (const auto& [site, ev] : r.sites) {
        w.key(site < sites.size() ? sites[site].label : "?").begin_object();
        w.field("coalescing_pct", 100.0 * coalescing_efficiency(ev, prof))
            .field("l2_segments", ev.l2_read_segments + ev.l2_write_segments)
            .field("scatter_replays", ev.scatter_replays)
            .field("issue_slots", ev.issue_slots);
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();  // args
    w.end_object();  // kernel slice

    // The two roofline components as sub-slices on their own pipes.
    if (r.mem_time_ms > 0.0) {
      slice_begin(w, r.name, "mem", kTidMem, ts + prof.kernel_launch_us,
                  r.mem_time_ms * 1e3);
      w.end_object();
    }
    if (r.issue_time_ms > 0.0) {
      slice_begin(w, r.name, "issue", kTidIssue, ts + prof.kernel_launch_us,
                  r.issue_time_ms * 1e3);
      w.end_object();
    }

    dram_read += r.events.dram_read_tx;
    dram_write += r.events.dram_write_tx;
    counter_event(w, "DRAM transactions", start_us[i + 1]);
    w.key("args").begin_object().field("read", dram_read).field("write",
                                                                dram_write);
    w.end_object().end_object();

    counter_event(w, "achieved GB/s", ts);
    w.key("args").begin_object().field("gbps", achieved_bandwidth_gbps(r));
    w.end_object().end_object();

    // Derived-metric counter tracks (metrics.hpp): each kernel contributes
    // one sample at its modeled start, so the tracks step along the same
    // timeline as the kernel slices.
    const DerivedMetrics dm =
        derive_run_metrics(r.events, r.time_ms, r.mem_time_ms,
                           r.issue_time_ms, 1, r.peak_smem_bytes, prof);
    counter_event(w, "speed of light %", ts);
    w.key("args").begin_object().field("mem", dm.sol_mem_pct).field(
        "issue", dm.sol_issue_pct);
    w.end_object().end_object();
    counter_event(w, "coalescing %", ts);
    w.key("args").begin_object().field("pct", dm.coalescing_pct);
    w.end_object().end_object();
    counter_event(w, "active lanes %", ts);
    w.key("args").begin_object().field("pct", dm.active_lane_pct);
    w.end_object().end_object();
  }
  if (!records.empty()) {
    const f64 end = start_us[records.size()];
    counter_event(w, "achieved GB/s", end);
    w.key("args").begin_object().field("gbps", 0.0).end_object().end_object();
    counter_event(w, "speed of light %", end);
    w.key("args").begin_object().field("mem", 0.0).field("issue", 0.0);
    w.end_object().end_object();
    counter_event(w, "coalescing %", end);
    w.key("args").begin_object().field("pct", 0.0).end_object().end_object();
    counter_event(w, "active lanes %", end);
    w.key("args").begin_object().field("pct", 0.0).end_object().end_object();
  }

  // Telemetry counter tracks (sim/telemetry.hpp): each ring snapshot
  // contributes one sample, plotted at its modeled timestamp so the tracks
  // line up with the kernel slices above.  Scalars are grouped by their
  // dotted prefix ("allocator.bytes_live" -> track "telemetry: allocator",
  // series "bytes_live"); per-worker series are skipped (host-time noise,
  // not modeled state).
  if (const Telemetry* telem = dev.telemetry(); telem != nullptr) {
    for (const TelemetrySnapshot& snap : telem->timeline()) {
      const f64 ts = snap.modeled_ms * 1e3;
      std::string group;
      bool open = false;
      for (const ScalarSample& s : snap.scalars) {
        const auto dot = s.name.find('.');
        if (dot == std::string::npos) continue;
        const std::string g = s.name.substr(0, dot);
        const std::string series = s.name.substr(dot + 1);
        if (g == "pool" && series.size() > 1 && series[0] == 'w' &&
            series[1] >= '0' && series[1] <= '9') {
          continue;
        }
        if (g != group) {
          if (open) w.end_object().end_object();
          counter_event(w, ("telemetry: " + g).c_str(), ts);
          w.key("args").begin_object();
          group = g;
          open = true;
        }
        w.field(series, s.value);
      }
      if (open) w.end_object().end_object();
    }
  }

  // Request / attempt / stage / launch spans (sim/span.hpp) as nested
  // slices on their own track, plotted on the same modeled timeline.
  // Flow arrows connect each attempt span to its first kernel launch, so
  // Perfetto draws the request -> kernel causality across tracks.
  if (const SpanRecorder* rec = dev.spans();
      rec != nullptr && !rec->spans().empty()) {
    metadata_event(w, "thread_name", kTidSpans, "requests (spans)");
    const auto& spans = rec->spans();
    for (const SpanRecord& s : spans) {
      if (!s.closed) continue;
      const f64 ts = s.begin_ms * 1e3;
      const std::string name =
          std::string(to_string(s.kind)) + ":" + s.name;
      // cat "span" (not the kind): the stage bands on tid 0 already use
      // cat "stage", and the Perfetto lint keys span-track checks on the
      // dedicated category.
      slice_begin(w, name, "span", kTidSpans, ts,
                  (s.end_ms - s.begin_ms) * 1e3);
      w.key("args").begin_object();
      w.field("trace", s.trace_id)
          .field("span", s.span_id)
          .field("parent", s.parent_id)
          .field("launches", s.counters.launches)
          .field("l2_read_segments", s.counters.l2_read_segments)
          .field("dram_read_tx", s.counters.dram_read_tx)
          .field("alloc_count", s.counters.alloc_count)
          .field("alloc_reuse_hits", s.counters.alloc_reuse_hits);
      if (s.backoff_ms > 0.0) w.field("backoff_ms", s.backoff_ms);
      if (s.overhead_ms > 0.0) w.field("overhead_ms", s.overhead_ms);
      if (!s.events.empty()) {
        w.field("events", static_cast<u64>(s.events.size()));
      }
      w.end_object();  // args
      w.end_object();  // span slice
      // Flow start on the attempt, finish on its first descendant launch
      // (launches usually nest under a stage span, not the attempt
      // directly -- walk the parent chain).
      if (s.kind == SpanKind::kAttempt) {
        const auto descends_from = [&spans](const SpanRecord& c, u64 id) {
          for (u64 p = c.parent_id; p != 0; p = spans[p - 1].parent_id) {
            if (p == id) return true;
          }
          return false;
        };
        for (const SpanRecord& c : spans) {
          if (c.kind != SpanKind::kLaunch || !c.closed ||
              !descends_from(c, s.span_id)) {
            continue;
          }
          w.begin_object()
              .field("ph", "s")
              .field("pid", u64{0})
              .field("tid", static_cast<u64>(kTidSpans))
              .field("name", "request flow")
              .field("cat", "span")
              .field("id", s.span_id)
              .field("ts", ts)
              .end_object();
          w.begin_object()
              .field("ph", "f")
              .field("bp", "e")
              .field("pid", u64{0})
              .field("tid", static_cast<u64>(kTidSpans))
              .field("name", "request flow")
              .field("cat", "span")
              .field("id", s.span_id)
              .field("ts", c.begin_ms * 1e3)
              .end_object();
          break;
        }
      }
      // Batched serving inverts the nesting: per-problem request spans sit
      // UNDER their fused launch span.  Draw the flow the other way --
      // start on the launch, finish on each packed per-problem request --
      // so Perfetto still shows the launch -> request fan-out.
      if (s.kind == SpanKind::kRequest && s.parent_id != 0 &&
          spans[s.parent_id - 1].kind == SpanKind::kLaunch) {
        const SpanRecord& launch = spans[s.parent_id - 1];
        w.begin_object()
            .field("ph", "s")
            .field("pid", u64{0})
            .field("tid", static_cast<u64>(kTidSpans))
            .field("name", "batch flow")
            .field("cat", "span")
            .field("id", s.span_id)
            .field("ts", launch.begin_ms * 1e3)
            .end_object();
        w.begin_object()
            .field("ph", "f")
            .field("bp", "e")
            .field("pid", u64{0})
            .field("tid", static_cast<u64>(kTidSpans))
            .field("name", "batch flow")
            .field("cat", "span")
            .field("id", s.span_id)
            .field("ts", ts)
            .end_object();
      }
    }
  }

  w.end_array();  // traceEvents
  w.end_object();
}

bool write_chrome_trace_file(Device& dev, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(dev, os);
  os << '\n';
  return os.good();
}

}  // namespace ms::sim
