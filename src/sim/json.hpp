// Minimal dependency-free JSON support for the profiling layer.
//
// JsonWriter is a streaming writer with explicit begin/end calls and
// automatic comma placement -- enough to emit Chrome trace files and bench
// reports without pulling in a JSON library.  parse_json is the matching
// minimal recursive-descent reader used by tests and tools to round-trip
// and schema-check what the writer (or any other producer) emitted.
//
// Deliberately small: numbers are f64, object keys keep insertion order,
// and \uXXXX escapes outside ASCII decode to '?'.  That covers everything
// this repository writes.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace ms::sim {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container begin.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(f64 v);
  JsonWriter& value(u64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(i64 v);
  JsonWriter& value(bool v);

  /// Shorthand for key(k) followed by value(v).
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// True once every opened container has been closed.
  bool complete() const { return stack_.empty() && wrote_top_level_; }

 private:
  void begin_value();
  void write_escaped(std::string_view s);

  std::ostream* os_;
  std::vector<char> stack_;     // 'O' or 'A' per open container
  std::vector<bool> has_item_;  // parallel to stack_
  bool after_key_ = false;
  bool wrote_top_level_ = false;
};

/// A parsed JSON document node.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  f64 number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() that throws std::runtime_error when the member is missing.
  const JsonValue& at(std::string_view key) const;
};

/// Parse a complete JSON document (throws std::runtime_error on malformed
/// input or trailing garbage).
JsonValue parse_json(std::string_view text);

}  // namespace ms::sim
