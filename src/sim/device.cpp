#include "sim/device.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "sim/telemetry.hpp"
#include "sim/threadpool.hpp"

namespace ms::sim {

namespace detail {
thread_local CounterShard* t_shard = nullptr;
}  // namespace detail

namespace {
/// Non-zero: explicit process-wide override (e.g. --host-threads).
std::atomic<u32> g_host_threads_override{0};
}  // namespace

void set_default_host_threads(u32 threads) {
  g_host_threads_override.store(threads, std::memory_order_relaxed);
}

u32 default_host_threads() {
  const u32 o = g_host_threads_override.load(std::memory_order_relaxed);
  if (o != 0) return o;
  if (const char* env = std::getenv("MS_HOST_THREADS"); env != nullptr && *env) {
    const int v = std::atoi(env);
    check(v >= 1, "MS_HOST_THREADS must be a positive integer");
    return static_cast<u32>(v);
  }
  return ThreadPool::hardware_threads();
}

Device::Device(DeviceProfile profile)
    : profile_(std::move(profile)),
      l2_(profile_.l2_bytes, profile_.l2_ways, profile_.transaction_bytes),
      alloc_(profile_.transaction_bytes) {
  host_threads_ = default_host_threads();
  sites_.push_back(SiteStats{"other", {}});  // SiteId 0 == kSiteOther
  writeback_site_ = site_id("sim/l2_writeback");
  // MS_SANITIZE=memcheck,racecheck,initcheck (or "all") arms the sanitizer
  // on every device, in fail-fast mode, so an unmodified test suite can be
  // rerun under the sanitizers (the CTest sanitize_clean_suite entry).
  if (const char* env = std::getenv("MS_SANITIZE"); env != nullptr && *env) {
    const auto cfg = SanitizerConfig::parse(env);
    check(cfg.has_value(), "MS_SANITIZE: unknown sanitizer tool name");
    SanitizerConfig armed = *cfg;
    armed.fail_fast = armed.any();
    san_.configure(armed);
  }
}

void Device::begin_kernel(std::string name) {
  check(!in_kernel_, "begin_kernel: a kernel is already executing");
  in_kernel_ = true;
  current_ = KernelEvents{};
  site_snapshot_ = KernelEvents{};
  kernel_sites_.clear();
  current_peak_smem_ = 0;
  current_name_ = std::move(name);
  // Launch span: one per kernel executed inside a request.  Opened here
  // (main thread) so kernel-body faults attach to it; end_kernel closes
  // it after the lifetime clock advances, so its duration is exactly the
  // kernel's modeled time.
  if (spans_ != nullptr && spans_->in_request()) {
    launch_span_ = open_span(SpanKind::kLaunch, current_name_);
    spans_->set_overhead(launch_span_, profile_.kernel_launch_us / 1000.0);
  }
}

const KernelRecord& Device::end_kernel() {
  check(in_kernel_, "end_kernel: no kernel is executing");
  in_kernel_ = false;
  flush_site_delta();
  // Stores become globally visible at kernel end: flush dirty L2 sectors.
  // The flushed write traffic is attributed to its own site so explicit
  // scatter sites keep only the transactions their lanes caused directly.
  const u64 writeback = l2_.flush_dirty();
  if (writeback > 0) {
    const SiteId prev = current_site_;
    current_site_ = writeback_site_;
    current_.dram_write_tx += writeback;
    flush_site_delta();
    current_site_ = prev;
  }

  KernelRecord rec;
  rec.name = std::move(current_name_);
  current_name_.clear();
  rec.events = current_;
  rec.faulted = pending_fault_;
  pending_fault_ = false;
  rec.peak_smem_bytes = current_peak_smem_;
  std::sort(kernel_sites_.begin(), kernel_sites_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  rec.sites = std::move(kernel_sites_);
  kernel_sites_.clear();
  const CostBreakdown c = model_kernel_cost(current_, profile_);
  rec.time_ms = c.time_ms;
  rec.mem_time_ms = c.mem_time_ms;
  rec.issue_time_ms = c.issue_time_ms;
  lifetime_ms_ += c.time_ms;
  lifetime_launches_ += 1;
  lifetime_l2_read_segments_ += rec.events.l2_read_segments;
  lifetime_dram_read_tx_ += rec.events.dram_read_tx;
  records_.push_back(std::move(rec));
  // Close the launch span now that the lifetime clock includes this
  // kernel -- and before the chaos hook, which may mutate buffers but
  // belongs to no launch.  Aborted launches reach here too (the launch
  // helpers' catch path calls end_kernel), so the span always closes.
  last_launch_span_ = launch_span_;
  if (launch_span_ != 0) {
    close_span(launch_span_);
    launch_span_ = 0;
  }
  // Chaos bit-flip decision point: transient device-memory corruption
  // manifests between kernels (host storage mutates; no modeled cost --
  // the corrupted VALUES may of course change later kernels' behavior).
  if (chaos_ != nullptr) chaos_->on_kernel_end(records_.back().name);
  if (telem_ != nullptr) telem_->tick();
  return records_.back();
}

void Device::record_fault(FaultContext ctx) {
  if (CounterShard* sh = detail::t_shard; sh != nullptr) {
    // Worker path: park in the item's shard, no shared state touched.
    // Within one item the first fault wins (serial call order).  The
    // span event parks alongside it and is forwarded at merge time only
    // if this item's fault wins (lifetime_ms_ is stable mid-kernel, so
    // the timestamp matches what the serial path would record).
    if (!sh->fault.has_value()) {
      if (spans_ != nullptr) {
        sh->span_events.push_back(SpanEvent{lifetime_ms_, "fault", {}, ctx});
      }
      sh->fault = std::move(ctx);
    }
    return;
  }
  std::lock_guard<std::mutex> lock(fault_mu_);
  // First-fault-wins per launch: once a fault of the current launch is
  // pending, later ones are dropped (matching ascending-item merge order).
  if (in_kernel_ && pending_fault_) return;
  if (spans_ != nullptr) {
    spans_->event(SpanEvent{lifetime_ms_, "fault", {}, ctx});
  }
  last_error_ = std::move(ctx);
  if (in_kernel_) pending_fault_ = true;
}

ChaosEngine& Device::enable_chaos(const ChaosPolicy& policy) {
  if (chaos_ != nullptr) return *chaos_;
  chaos_ = std::make_unique<ChaosEngine>(policy, *this, res_stats_);
  alloc_.set_chaos(chaos_.get());
  l2_.set_chaos(chaos_.get());
  return *chaos_;
}

void Device::disable_chaos() {
  alloc_.set_chaos(nullptr);
  l2_.set_chaos(nullptr);
  chaos_.reset();
}

u64 Device::allocate_address_range(u64 bytes) {
  const u64 base = alloc_.allocate(bytes);
  // Scratch placement is part of a cost tape's validity: recorded sector
  // streams are absolute, so replay is only sound when every allocation
  // of the run lands at the recorded base (the pooling allocator makes
  // this the common case for a reused plan).  A mismatch invalidates the
  // tape; the rest of the run falls back to live accounting.
  if (tape_mode_ == TapeMode::kRecord && tape_ok_) {
    tape_->allocs.push_back(base);
  } else if (tape_mode_ == TapeMode::kReplay && tape_ok_) {
    if (tape_alloc_cursor_ < tape_->allocs.size() &&
        tape_->allocs[tape_alloc_cursor_] == base) {
      ++tape_alloc_cursor_;
    } else {
      tape_ok_ = false;
    }
  }
  return base;
}

void Device::free_address_range(u64 base, u64 bytes) {
  alloc_.deallocate(base, bytes);
}

void Device::touch_read_sectors(u64 first_sector, u32 segments) {
  if (charging_off_) return;  // replay: taped sector stream carries these
  if (CounterShard* sh = detail::t_shard; sh != nullptr) {
    sh->events.l2_read_segments += segments;
    sh->record_sectors(first_sector, segments, /*is_write=*/false);
    return;
  }
  current_.l2_read_segments += segments;
  for (u32 s = 0; s < segments; ++s) {
    const auto r = l2_.read(first_sector + s);
    current_.dram_read_tx += r.dram_read_tx;
    current_.dram_write_tx += r.dram_write_tx;
  }
}

void Device::touch_write_sectors(u64 first_sector, u32 segments) {
  if (charging_off_) return;  // replay: taped sector stream carries these
  if (CounterShard* sh = detail::t_shard; sh != nullptr) {
    sh->events.l2_write_segments += segments;
    sh->record_sectors(first_sector, segments, /*is_write=*/true);
    return;
  }
  current_.l2_write_segments += segments;
  for (u32 s = 0; s < segments; ++s) {
    const auto r = l2_.write(first_sector + s);
    current_.dram_read_tx += r.dram_read_tx;
    current_.dram_write_tx += r.dram_write_tx;
  }
}

void Device::touch_read_sector(u64 sector) {
  if (charging_off_) return;  // replay: taped sector stream carries these
  if (CounterShard* sh = detail::t_shard; sh != nullptr) {
    sh->events.l2_read_segments += 1;
    sh->record_sectors(sector, 1, /*is_write=*/false);
    return;
  }
  current_.l2_read_segments += 1;
  const auto r = l2_.read(sector);
  current_.dram_read_tx += r.dram_read_tx;
  current_.dram_write_tx += r.dram_write_tx;
}

void Device::touch_write_sector(u64 sector) {
  if (charging_off_) return;  // replay: taped sector stream carries these
  if (CounterShard* sh = detail::t_shard; sh != nullptr) {
    sh->events.l2_write_segments += 1;
    sh->record_sectors(sector, 1, /*is_write=*/true);
    return;
  }
  current_.l2_write_segments += 1;
  const auto r = l2_.write(sector);
  current_.dram_read_tx += r.dram_read_tx;
  current_.dram_write_tx += r.dram_write_tx;
}

TimingSummary Device::summary_since(u64 mark) const {
  TimingSummary s;
  for (u64 i = mark; i < records_.size(); ++i) s.add(records_[i]);
  return s;
}

f64 Device::total_ms() const {
  f64 t = 0.0;
  for (const auto& r : records_) t += r.time_ms;
  return t;
}

SiteId Device::site_id(std::string_view label) {
  std::lock_guard<std::mutex> lock(site_mu_);
  for (SiteId i = 0; i < sites_.size(); ++i) {
    if (sites_[i].label == label) return i;
  }
  sites_.push_back(SiteStats{std::string(label), {}});
  return static_cast<SiteId>(sites_.size() - 1);
}

SiteId Device::set_site(SiteId site) {
  if (CounterShard* sh = detail::t_shard; sh != nullptr) {
    {
      std::lock_guard<std::mutex> lock(site_mu_);
      check(site < sites_.size(), "set_site: unregistered site id");
    }
    return sh->set_site(site);
  }
  check(site < sites_.size(), "set_site: unregistered site id");
  flush_site_delta();
  const SiteId prev = current_site_;
  current_site_ = site;
  return prev;
}

const std::vector<SiteStats>& Device::site_stats() {
  flush_site_delta();
  return sites_;
}

void Device::flush_site_delta() {
  const KernelEvents delta = current_ - site_snapshot_;
  if (!(delta == KernelEvents{})) {
    sites_[current_site_].events += delta;
    auto it = std::find_if(kernel_sites_.begin(), kernel_sites_.end(),
                           [&](const auto& p) { return p.first == current_site_; });
    if (it == kernel_sites_.end()) {
      kernel_sites_.emplace_back(current_site_, delta);
    } else {
      it->second += delta;
    }
  }
  site_snapshot_ = current_;
}

Device::~Device() = default;

SpanRecorder& Device::enable_spans() {
  if (spans_ == nullptr) spans_ = std::make_unique<SpanRecorder>();
  return *spans_;
}

Telemetry& Device::enable_telemetry(const TelemetryConfig& cfg) {
  if (telem_ != nullptr) return *telem_;
  telem_ = std::make_unique<Telemetry>(cfg);
  // Pre-register the resilient executor's instruments so every snapshot
  // carries them (zero-valued until a resilient run records something)
  // and `ms_cli top` renders the full resilience picture even for runs
  // that never faulted.
  telem_->counter("resilience.faults");
  telem_->counter("resilience.retries");
  telem_->counter("resilience.fallbacks");
  telem_->counter("resilience.recovered");
  telem_->counter("resilience.lost");
  telem_->counter("resilience.validation_failures");
  telem_->histogram("request.retry_ms");
  // Interval state lives in a shared_ptr captured by the provider: the
  // deltas between consecutive snapshots turn lifetime totals into
  // interval rates (L2 hit rate per interval, reuse-hit rate per
  // interval, per-worker busy fraction of the sampling window).
  struct IntervalState {
    u64 l2_reads = 0;
    u64 dram_reads = 0;
    u64 allocs = 0;
    u64 reuse_hits = 0;
    std::vector<f64> busy_ms;  // per worker, cumulative at last sample
  };
  auto st = std::make_shared<IntervalState>();
  telem_->add_provider([this, st](std::vector<ScalarSample>& out, f64 dt_ms) {
    out.push_back({"device.modeled_ms", lifetime_ms_});
    out.push_back({"device.launches", static_cast<f64>(lifetime_launches_)});

    const AllocatorStats& a = alloc_.stats();
    out.push_back({"allocator.bytes_live", static_cast<f64>(a.bytes_live)});
    out.push_back({"allocator.bytes_cached", static_cast<f64>(a.bytes_cached)});
    out.push_back(
        {"allocator.bytes_reserved", static_cast<f64>(a.bytes_reserved)});
    out.push_back({"allocator.alloc_count", static_cast<f64>(a.alloc_count)});
    out.push_back({"allocator.reuse_hits", static_cast<f64>(a.reuse_hits)});
    const u64 d_allocs = a.alloc_count - st->allocs;
    const u64 d_hits = a.reuse_hits - st->reuse_hits;
    out.push_back({"allocator.reuse_hit_pct",
                   d_allocs > 0 ? 100.0 * static_cast<f64>(d_hits) /
                                      static_cast<f64>(d_allocs)
                                : 0.0});
    out.push_back({"allocator.reuse_hit_pct_cum",
                   a.alloc_count > 0 ? 100.0 * static_cast<f64>(a.reuse_hits) /
                                           static_cast<f64>(a.alloc_count)
                                     : 0.0});
    st->allocs = a.alloc_count;
    st->reuse_hits = a.reuse_hits;

    const u64 d_l2 = lifetime_l2_read_segments_ - st->l2_reads;
    const u64 d_dram = lifetime_dram_read_tx_ - st->dram_reads;
    out.push_back(
        {"l2.read_hit_pct",
         d_l2 > 0 ? 100.0 * (1.0 - static_cast<f64>(std::min(d_dram, d_l2)) /
                                       static_cast<f64>(d_l2))
                  : 0.0});
    out.push_back(
        {"l2.read_hit_pct_cum",
         lifetime_l2_read_segments_ > 0
             ? 100.0 *
                   (1.0 - static_cast<f64>(std::min(
                              lifetime_dram_read_tx_,
                              lifetime_l2_read_segments_)) /
                              static_cast<f64>(lifetime_l2_read_segments_))
             : 0.0});
    st->l2_reads = lifetime_l2_read_segments_;
    st->dram_reads = lifetime_dram_read_tx_;

    if (pool_ != nullptr) {
      out.push_back({"pool.workers", static_cast<f64>(pool_->size())});
      out.push_back(
          {"pool.queue_depth", static_cast<f64>(pool_->queue_depth())});
      const auto ws = pool_->worker_stats();
      st->busy_ms.resize(ws.size(), 0.0);
      f64 total_busy = 0.0;
      for (u32 i = 0; i < ws.size(); ++i) {
        const f64 d_busy = ws[i].busy_ms - st->busy_ms[i];
        st->busy_ms[i] = ws[i].busy_ms;
        total_busy += d_busy;
        char name[32];
        std::snprintf(name, sizeof(name), "pool.w%u.busy_frac", i);
        out.push_back({name, dt_ms > 0.0 ? d_busy / dt_ms : 0.0});
      }
      out.push_back({"pool.busy_frac",
                     dt_ms > 0.0 && !ws.empty()
                         ? total_busy / (dt_ms * static_cast<f64>(ws.size()))
                         : 0.0});
    }
  });
  return *telem_;
}

Telemetry& Device::enable_telemetry() {
  return enable_telemetry(TelemetryConfig{});
}

void Device::set_host_threads(u32 threads) {
  check(!in_kernel_, "set_host_threads: kernel executing");
  host_threads_ = threads == 0 ? default_host_threads() : threads;
}

void Device::run_items(u64 n, const std::function<void(u64)>& body) {
  // Chaos launch-abort decision point: we are inside the launch helper's
  // try block (begin_kernel already ran), so the thrown kLaunchFailure
  // takes the normal aborted-launch path -- note_fault, a faulted
  // KernelRecord, rethrow (or a sanitizer report in reporting mode).
  if (chaos_ != nullptr) chaos_->maybe_abort_launch();
  // Cost-tape hooks: only launches inside a UniformStageScope participate,
  // and only while the tape is still valid.  Replay is serial regardless
  // of host_threads_ (no accounting work remains to parallelize); a tape
  // mismatch falls through to normal live execution.
  if (tape_mode_ != TapeMode::kOff && uniform_depth_ > 0 && tape_ok_) {
    if (tape_mode_ == TapeMode::kReplay) {
      if (tape_replay_launch(n, body)) return;
    } else if (host_threads_ <= 1 || n <= 1) {
      tape_record_serial(n, body);
      return;
    }
    // Parallel recording is handled inside the scheduler's merge loop.
  }
  const u32 threads = host_threads_;
  if (threads <= 1 || n <= 1) {
    for (u64 i = 0; i < n; ++i) body(i);
    return;
  }
  if (pool_ == nullptr || pool_->size() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  if (pool_->timing_enabled() != (telem_ != nullptr)) {
    pool_->set_timing_enabled(telem_ != nullptr);
  }
  sync_ = std::make_unique<LaunchSync>();
  sync_->done.assign(n, 0);
  // Items start attributing to the site active at launch entry, exactly
  // as the serial loop would.
  const SiteId launch_site = current_site_;
  std::exception_ptr first_error;
  // Parallel tape recording: merged shards are moved into the tape after
  // the merge consumed their live effects (the merge only reads the
  // cost-relevant fields).  Any fault/report/error poisons the tape.
  const bool taping =
      tape_mode_ == TapeMode::kRecord && uniform_depth_ > 0 && tape_ok_;
  LaunchTape taped;
  if (taping) taped.name = current_name_;
  // Batching bounds the memory held by recorded sector streams; it cannot
  // change results (batches run back-to-back, merges stay in item order,
  // and the completed-prefix fence spans the whole launch).
  constexpr u64 kBatch = 1024;
  std::vector<CounterShard> shards;
  for (u64 base = 0; base < n && first_error == nullptr; base += kBatch) {
    const u64 count = std::min(kBatch, n - base);
    shards.assign(count, CounterShard{});
    for (u64 i = 0; i < count; ++i) {
      shards[i].item_id = base + i;
      shards[i].current_site = launch_site;
    }
    const std::function<void(u64)> worker = [&](u64 item) {
      CounterShard& sh = shards[item - base];
      detail::t_shard = &sh;
      try {
        body(item);
      } catch (...) {
        sh.error = std::current_exception();
      }
      detail::t_shard = nullptr;
      // Always advance the completed prefix, fault or not: later items
      // may be blocked in global_atomic_fence.
      std::lock_guard<std::mutex> lock(sync_->mu);
      sync_->done[item] = 1;
      while (sync_->prefix < n && sync_->done[sync_->prefix] != 0) {
        sync_->prefix += 1;
      }
      sync_->cv.notify_all();
    };
    pool_->run(base, base + count, worker);
    // Merge in ascending item order.  A faulted item keeps its partial
    // counters but nothing after it is merged: serial execution would
    // have thrown before reaching those items.
    for (u64 i = 0; i < count; ++i) {
      const bool clean = !shards[i].fault.has_value() &&
                         shards[i].reports.empty() &&
                         shards[i].error == nullptr;
      const std::exception_ptr err = shards[i].error;
      merge_shard(shards[i]);
      if (taping) {
        if (clean) {
          taped.shards.push_back(std::move(shards[i]));
        } else {
          tape_ok_ = false;
        }
      }
      if (err != nullptr) {
        first_error = err;
        break;
      }
    }
  }
  sync_.reset();
  if (taping) {
    if (tape_ok_ && first_error == nullptr) {
      tape_->launches.push_back(std::move(taped));
    } else {
      tape_ok_ = false;
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void Device::tape_start(TapeMode mode, CostTape* tape) {
  check(tape_mode_ == TapeMode::kOff, "tape_start: a tape is already active");
  check(!in_kernel_, "tape_start: kernel executing");
  check(mode != TapeMode::kOff && tape != nullptr, "tape_start: bad arguments");
  tape_mode_ = mode;
  tape_ = tape;
  tape_cursor_ = 0;
  tape_alloc_cursor_ = 0;
  tape_ok_ = true;
  if (mode == TapeMode::kRecord) tape_->clear();
}

bool Device::tape_finish() {
  bool ok = tape_ok_;
  // A replay run must consume the whole recording: fewer launches or
  // allocations than recorded means the plan took a different path.
  if (tape_mode_ == TapeMode::kReplay) {
    ok = ok && tape_cursor_ == tape_->launches.size() &&
         tape_alloc_cursor_ == tape_->allocs.size();
  }
  tape_mode_ = TapeMode::kOff;
  tape_ = nullptr;
  charging_off_ = false;
  tape_ok_ = true;
  return ok;
}

void Device::tape_record_serial(u64 n, const std::function<void(u64)>& body) {
  // One shard for the whole launch: the body's charges, site slices and
  // sector touches all land in it, and the post-run merge applies them
  // exactly as the plain serial path would have (the shard merge replays
  // sector touches through the L2 in recorded order).
  CounterShard sh;
  sh.current_site = current_site_;
  detail::t_shard = &sh;
  try {
    for (u64 i = 0; i < n; ++i) body(i);
  } catch (...) {
    detail::t_shard = nullptr;
    tape_ok_ = false;
    // Keep the live effects up to the throw, mirroring the serial loop.
    merge_shard(sh);
    throw;
  }
  detail::t_shard = nullptr;
  const bool clean = !sh.fault.has_value() && sh.reports.empty();
  merge_shard(sh);
  if (!clean) {
    tape_ok_ = false;
    return;
  }
  LaunchTape taped;
  taped.name = current_name_;
  taped.shards.push_back(std::move(sh));
  tape_->launches.push_back(std::move(taped));
}

bool Device::tape_replay_launch(u64 n, const std::function<void(u64)>& body) {
  if (tape_cursor_ >= tape_->launches.size() ||
      tape_->launches[tape_cursor_].name != current_name_) {
    tape_ok_ = false;  // unexpected launch: fall back to live execution
    return false;
  }
  LaunchTape& taped = tape_->launches[tape_cursor_];
  ++tape_cursor_;
  // Run the body for its data effects only.  Serial even at high thread
  // counts: with charging suppressed there is no accounting left to
  // shard, and the stage's values are lane-deterministic.
  charging_off_ = true;
  try {
    for (u64 i = 0; i < n; ++i) body(i);
  } catch (...) {
    charging_off_ = false;
    tape_ok_ = false;
    throw;
  }
  charging_off_ = false;
  // Merge the recorded shards through the live device state: identical
  // counter deltas, site attribution and L2 evolution to executing the
  // launch, by the same argument that makes the parallel scheduler's
  // merge bit-identical to serial execution.
  for (CounterShard& sh : taped.shards) merge_shard(sh);
  return true;
}

void Device::global_atomic_fence() {
  CounterShard* sh = detail::t_shard;
  // sync_ is null when a shard is armed outside the parallel scheduler
  // (the serial tape-recording path): item order is execution order
  // there, so there is nothing to wait for.
  if (sh == nullptr || sh->fence_passed || sync_ == nullptr) return;
  LaunchSync& s = *sync_;
  std::unique_lock<std::mutex> lock(s.mu);
  s.cv.wait(lock, [&] { return s.prefix >= sh->item_id; });
  sh->fence_passed = true;
}

void Device::merge_shard(CounterShard& shard) {
  shard.flush_site_delta();
  for (const auto& [site, slice] : shard.sites) {
    add_attributed(site, slice);
  }
  current_peak_smem_ = std::max(current_peak_smem_, shard.peak_smem);
  // Replay the item's sector stream through the real L2.  Replay order ==
  // merge order == item order == serial execution order, so every access
  // sees the exact cache state it would have seen serially and the
  // hit/miss (and writeback) sequence is reproduced bit-for-bit.
  for (const SectorOp& op : shard.sector_ops) {
    KernelEvents d;
    for (u32 s = 0; s < op.count; ++s) {
      const auto r = op.is_write ? l2_.write(op.first_sector + s)
                                 : l2_.read(op.first_sector + s);
      d.dram_read_tx += r.dram_read_tx;
      d.dram_write_tx += r.dram_write_tx;
    }
    if (!(d == KernelEvents{})) add_attributed(op.site, d);
  }
  for (FaultContext& r : shard.reports) {
    san_.report(std::move(r));
  }
  shard.reports.clear();
  // Shard-parked record_fault: merges run in ascending item order, so the
  // guard makes the lowest faulting item's context win -- the exact fault
  // serial execution would have reported first.  Its parked span events
  // are forwarded only on a win, matching the serial emission rule.
  if (shard.fault.has_value()) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    if (!pending_fault_) {
      if (spans_ != nullptr) {
        for (SpanEvent& ev : shard.span_events) spans_->event(std::move(ev));
      }
      last_error_ = std::move(*shard.fault);
      pending_fault_ = true;
    }
    shard.fault.reset();
  }
  shard.span_events.clear();
}

void Device::add_attributed(SiteId site, const KernelEvents& delta) {
  // Bump totals and snapshot together so any delta the *main* thread had
  // pending before the launch stays pending and is attributed to its own
  // site at the next flush.
  current_ += delta;
  site_snapshot_ += delta;
  sites_[site].events += delta;
  auto it = std::find_if(kernel_sites_.begin(), kernel_sites_.end(),
                         [&](const auto& p) { return p.first == site; });
  if (it == kernel_sites_.end()) {
    kernel_sites_.emplace_back(site, delta);
  } else {
    it->second += delta;
  }
}

void Device::reset_stats() {
  check(!in_kernel_, "reset_stats: kernel executing");
  l2_.reset();
  records_.clear();
  regions_.clear();
  for (auto& s : sites_) s.events = KernelEvents{};
  current_ = KernelEvents{};
  site_snapshot_ = KernelEvents{};
  kernel_sites_.clear();
  current_site_ = kSiteOther;
}

}  // namespace ms::sim
