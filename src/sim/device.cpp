#include "sim/device.hpp"

namespace ms::sim {

Device::Device(DeviceProfile profile)
    : profile_(std::move(profile)),
      l2_(profile_.l2_bytes, profile_.l2_ways, profile_.transaction_bytes) {}

void Device::begin_kernel(std::string name) {
  check(!in_kernel_, "begin_kernel: a kernel is already executing");
  in_kernel_ = true;
  current_ = KernelEvents{};
  current_name_ = std::move(name);
}

const KernelRecord& Device::end_kernel() {
  check(in_kernel_, "end_kernel: no kernel is executing");
  in_kernel_ = false;
  // Stores become globally visible at kernel end: flush dirty L2 sectors.
  current_.dram_write_tx += l2_.flush_dirty();

  KernelRecord rec;
  rec.name = std::move(current_name_);
  rec.events = current_;
  const CostBreakdown c = model_kernel_cost(current_, profile_);
  rec.time_ms = c.time_ms;
  rec.mem_time_ms = c.mem_time_ms;
  rec.issue_time_ms = c.issue_time_ms;
  records_.push_back(std::move(rec));
  return records_.back();
}

u64 Device::allocate_address_range(u64 bytes) {
  const u64 align = profile_.transaction_bytes;
  const u64 base = next_addr_;
  next_addr_ += ceil_div(bytes == 0 ? 1 : bytes, align) * align;
  return base;
}

void Device::touch_read_sectors(u64 first_sector, u32 segments) {
  current_.l2_read_segments += segments;
  for (u32 s = 0; s < segments; ++s) {
    const auto r = l2_.read(first_sector + s);
    current_.dram_read_tx += r.dram_read_tx;
    current_.dram_write_tx += r.dram_write_tx;
  }
}

void Device::touch_write_sectors(u64 first_sector, u32 segments) {
  current_.l2_write_segments += segments;
  for (u32 s = 0; s < segments; ++s) {
    const auto r = l2_.write(first_sector + s);
    current_.dram_read_tx += r.dram_read_tx;
    current_.dram_write_tx += r.dram_write_tx;
  }
}

void Device::touch_read_sector(u64 sector) {
  current_.l2_read_segments += 1;
  const auto r = l2_.read(sector);
  current_.dram_read_tx += r.dram_read_tx;
  current_.dram_write_tx += r.dram_write_tx;
}

void Device::touch_write_sector(u64 sector) {
  current_.l2_write_segments += 1;
  const auto r = l2_.write(sector);
  current_.dram_read_tx += r.dram_read_tx;
  current_.dram_write_tx += r.dram_write_tx;
}

TimingSummary Device::summary_since(u64 mark) const {
  TimingSummary s;
  for (u64 i = mark; i < records_.size(); ++i) s.add(records_[i]);
  return s;
}

f64 Device::total_ms() const {
  f64 t = 0.0;
  for (const auto& r : records_) t += r.time_ms;
  return t;
}

void Device::reset_stats() {
  check(!in_kernel_, "reset_stats: kernel executing");
  l2_.reset();
  records_.clear();
}

}  // namespace ms::sim
