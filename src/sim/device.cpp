#include "sim/device.hpp"

#include <algorithm>
#include <cstdlib>

namespace ms::sim {

Device::Device(DeviceProfile profile)
    : profile_(std::move(profile)),
      l2_(profile_.l2_bytes, profile_.l2_ways, profile_.transaction_bytes) {
  sites_.push_back(SiteStats{"other", {}});  // SiteId 0 == kSiteOther
  writeback_site_ = site_id("sim/l2_writeback");
  // MS_SANITIZE=memcheck,racecheck,initcheck (or "all") arms the sanitizer
  // on every device, in fail-fast mode, so an unmodified test suite can be
  // rerun under the sanitizers (the CTest sanitize_clean_suite entry).
  if (const char* env = std::getenv("MS_SANITIZE"); env != nullptr && *env) {
    const auto cfg = SanitizerConfig::parse(env);
    check(cfg.has_value(), "MS_SANITIZE: unknown sanitizer tool name");
    SanitizerConfig armed = *cfg;
    armed.fail_fast = armed.any();
    san_.configure(armed);
  }
}

void Device::begin_kernel(std::string name) {
  check(!in_kernel_, "begin_kernel: a kernel is already executing");
  in_kernel_ = true;
  current_ = KernelEvents{};
  site_snapshot_ = KernelEvents{};
  kernel_sites_.clear();
  current_peak_smem_ = 0;
  current_name_ = std::move(name);
}

const KernelRecord& Device::end_kernel() {
  check(in_kernel_, "end_kernel: no kernel is executing");
  in_kernel_ = false;
  flush_site_delta();
  // Stores become globally visible at kernel end: flush dirty L2 sectors.
  // The flushed write traffic is attributed to its own site so explicit
  // scatter sites keep only the transactions their lanes caused directly.
  const u64 writeback = l2_.flush_dirty();
  if (writeback > 0) {
    const SiteId prev = current_site_;
    current_site_ = writeback_site_;
    current_.dram_write_tx += writeback;
    flush_site_delta();
    current_site_ = prev;
  }

  KernelRecord rec;
  rec.name = std::move(current_name_);
  current_name_.clear();
  rec.events = current_;
  rec.faulted = pending_fault_;
  pending_fault_ = false;
  rec.peak_smem_bytes = current_peak_smem_;
  std::sort(kernel_sites_.begin(), kernel_sites_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  rec.sites = std::move(kernel_sites_);
  kernel_sites_.clear();
  const CostBreakdown c = model_kernel_cost(current_, profile_);
  rec.time_ms = c.time_ms;
  rec.mem_time_ms = c.mem_time_ms;
  rec.issue_time_ms = c.issue_time_ms;
  records_.push_back(std::move(rec));
  return records_.back();
}

u64 Device::allocate_address_range(u64 bytes) {
  const u64 align = profile_.transaction_bytes;
  const u64 base = next_addr_;
  next_addr_ += ceil_div(bytes == 0 ? 1 : bytes, align) * align;
  return base;
}

void Device::touch_read_sectors(u64 first_sector, u32 segments) {
  current_.l2_read_segments += segments;
  for (u32 s = 0; s < segments; ++s) {
    const auto r = l2_.read(first_sector + s);
    current_.dram_read_tx += r.dram_read_tx;
    current_.dram_write_tx += r.dram_write_tx;
  }
}

void Device::touch_write_sectors(u64 first_sector, u32 segments) {
  current_.l2_write_segments += segments;
  for (u32 s = 0; s < segments; ++s) {
    const auto r = l2_.write(first_sector + s);
    current_.dram_read_tx += r.dram_read_tx;
    current_.dram_write_tx += r.dram_write_tx;
  }
}

void Device::touch_read_sector(u64 sector) {
  current_.l2_read_segments += 1;
  const auto r = l2_.read(sector);
  current_.dram_read_tx += r.dram_read_tx;
  current_.dram_write_tx += r.dram_write_tx;
}

void Device::touch_write_sector(u64 sector) {
  current_.l2_write_segments += 1;
  const auto r = l2_.write(sector);
  current_.dram_read_tx += r.dram_read_tx;
  current_.dram_write_tx += r.dram_write_tx;
}

TimingSummary Device::summary_since(u64 mark) const {
  TimingSummary s;
  for (u64 i = mark; i < records_.size(); ++i) s.add(records_[i]);
  return s;
}

f64 Device::total_ms() const {
  f64 t = 0.0;
  for (const auto& r : records_) t += r.time_ms;
  return t;
}

SiteId Device::site_id(std::string_view label) {
  for (SiteId i = 0; i < sites_.size(); ++i) {
    if (sites_[i].label == label) return i;
  }
  sites_.push_back(SiteStats{std::string(label), {}});
  return static_cast<SiteId>(sites_.size() - 1);
}

SiteId Device::set_site(SiteId site) {
  check(site < sites_.size(), "set_site: unregistered site id");
  flush_site_delta();
  const SiteId prev = current_site_;
  current_site_ = site;
  return prev;
}

const std::vector<SiteStats>& Device::site_stats() {
  flush_site_delta();
  return sites_;
}

void Device::flush_site_delta() {
  const KernelEvents delta = current_ - site_snapshot_;
  if (!(delta == KernelEvents{})) {
    sites_[current_site_].events += delta;
    auto it = std::find_if(kernel_sites_.begin(), kernel_sites_.end(),
                           [&](const auto& p) { return p.first == current_site_; });
    if (it == kernel_sites_.end()) {
      kernel_sites_.emplace_back(current_site_, delta);
    } else {
      it->second += delta;
    }
  }
  site_snapshot_ = current_;
}

void Device::reset_stats() {
  check(!in_kernel_, "reset_stats: kernel executing");
  l2_.reset();
  records_.clear();
  regions_.clear();
  for (auto& s : sites_) s.events = KernelEvents{};
  current_ = KernelEvents{};
  site_snapshot_ = KernelEvents{};
  kernel_sites_.clear();
  current_site_ = kSiteOther;
}

}  // namespace ms::sim
