#include "sim/cost_model.hpp"

#include <algorithm>

namespace ms::sim {

CostBreakdown model_kernel_cost(const KernelEvents& ev, const DeviceProfile& p) {
  CostBreakdown c;
  const f64 dram_bytes =
      static_cast<f64>(ev.dram_read_tx + ev.dram_write_tx) * p.transaction_bytes;
  c.mem_time_ms = dram_bytes / (p.mem_bandwidth_gbps * 1e9) * 1e3;

  const f64 slots = static_cast<f64>(ev.issue_slots) +
                    static_cast<f64>(ev.warps_launched) * p.warp_overhead_slots +
                    static_cast<f64>(ev.smem_slots) * p.smem_slot_weight +
                    static_cast<f64>(ev.scatter_replays) * p.scatter_issue_penalty;
  c.issue_time_ms = slots / (p.issue_rate_gips * 1e9) * 1e3;

  c.time_ms = p.kernel_launch_us * 1e-3 + std::max(c.mem_time_ms, c.issue_time_ms);
  return c;
}

f64 achieved_bandwidth_gbps(const KernelRecord& r) {
  if (r.time_ms <= 0.0) return 0.0;
  const f64 bytes = static_cast<f64>(r.events.useful_bytes_read +
                                     r.events.useful_bytes_written);
  return bytes / (r.time_ms * 1e-3) / 1e9;
}

f64 coalescing_efficiency(const KernelEvents& ev, const DeviceProfile& p) {
  // Sector *touches* (L2 side), not DRAM transactions: cache hits must not
  // make a scattered access pattern look coalesced.
  const f64 moved =
      static_cast<f64>(ev.l2_read_segments + ev.l2_write_segments) *
      p.transaction_bytes;
  if (moved <= 0.0) return 1.0;
  const f64 useful =
      static_cast<f64>(ev.useful_bytes_read + ev.useful_bytes_written);
  return std::min(1.0, useful / moved);
}

}  // namespace ms::sim
