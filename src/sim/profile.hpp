// Device profiles: the handful of architectural constants the cost model
// needs to turn counted simulator events into milliseconds for a specific
// GPU.  Two presets correspond to the two boards in the paper's evaluation
// (Tesla K40c / Kepler and GeForce GTX 750 Ti / Maxwell); a third,
// "speed-of-light", models the paper's Section 6.2.2 bound where computation
// is free and every access is fully coalesced.
#pragma once

#include <string>

#include "sim/types.hpp"

namespace ms::sim {

struct DeviceProfile {
  std::string name;

  /// Peak DRAM bandwidth in GB/s (1e9 bytes per second).
  f64 mem_bandwidth_gbps = 288.0;

  /// Aggregate warp-instruction issue throughput of the whole device, in
  /// warp-instructions per second.  A warp-wide global access that touches
  /// S memory segments occupies S issue slots (load-store unit replays);
  /// a shared-memory access with a B-way bank conflict occupies B slots.
  f64 issue_rate_gips = 16.0;  // G warp-instructions / s

  /// Fixed host-side cost of launching one kernel, microseconds.
  f64 kernel_launch_us = 5.0;

  /// Memory transaction (L2 <-> DRAM line) size in bytes.  Kepler and
  /// Maxwell move 32-byte sectors between L2 and DRAM.
  u32 transaction_bytes = 32;

  /// L2 cache geometry used by the write-combining / reuse model.
  u32 l2_bytes = 1536 * 1024;
  u32 l2_ways = 16;

  /// Fixed prologue/epilogue cost of one warp's kernel execution, in issue
  /// slots: address setup, bounds predicates, loop bookkeeping -- the
  /// per-warp work the simulator's charged operations don't see.
  u32 warp_overhead_slots = 12;

  /// Issue slots each warp burns at a __syncthreads(): pipeline drain and
  /// re-launch skew.  Block-wide algorithms with many barrier-separated
  /// phases (block-level multisplit's multi-scans) pay this; warp-
  /// synchronous code does not -- one of the paper's closing lessons.
  u32 barrier_overhead_slots = 1;

  /// Relative issue cost of a shared-memory slot versus an ALU slot.
  /// Shared-memory traffic flows through the LSU pipe and overlaps with
  /// ALU issue on Kepler/Maxwell, so it is cheaper than 1.0.
  f64 smem_slot_weight = 0.5;

  /// How well the device hides the latency of scattered (multi-segment)
  /// accesses.  1.0 = perfectly hidden (only throughput costs remain);
  /// larger values charge extra issue slots per non-ideal segment.  The
  /// paper observes (Section 6.3) that Maxwell-era parts punish
  /// non-coalesced traffic harder than the K40c, which is what this knob
  /// expresses.
  f64 scatter_issue_penalty = 1.5;

  /// Shared memory capacity per block in bytes (48 kB on both boards).
  u32 smem_bytes_per_block = 48 * 1024;

  /// Maximum blocks resident per SM when nothing else limits them (16 on
  /// Kepler, 32 on Maxwell).  The metrics layer's shared-memory-limited
  /// occupancy proxy compares floor(smem_capacity / peak_smem) against
  /// this ceiling.
  u32 max_resident_blocks = 16;

  /// Method::kAuto crossover table (paper Section 6's guidance, stored per
  /// device because the crossovers shift with how hard the part punishes
  /// non-coalesced traffic): warp-level multisplit wins up to
  /// auto_warp_level_max_m buckets, block-level through
  /// auto_block_level_max_m, and beyond that the shared-memory histogram
  /// per block stops paying and reduced-bit sort takes over.
  u32 auto_warp_level_max_m = 6;
  u32 auto_block_level_max_m = 256;

  static DeviceProfile tesla_k40c();
  static DeviceProfile gtx_750_ti();
  static DeviceProfile speed_of_light();
};

}  // namespace ms::sim
