// Deterministic fault-injection campaign engine (the simulator's chaos
// monkey).
//
// Production serving survives faults the happy path never sees: allocation
// failures under memory pressure, aborted launches, transient bit flips in
// device memory, corrupted cache writebacks.  The sanitizer (PR 2) detects
// *program* bugs; this subsystem injects *environment* faults so the
// resilient request executor (multisplit/plan.hpp) and its retry/fallback
// machinery can be exercised and gated in CI -- the same positive-control
// philosophy as sim/faultinject.hpp, scaled to campaigns.
//
// Design rules, mirroring the sanitizer's:
//   * Off by default and ZERO overhead when off: every injection point is
//     one null-pointer check (Device::chaos() == nullptr).  The chaos-off
//     tolerance-0 baseline gates prove modeled costs stay bit-identical.
//   * Deterministic: every decision comes from a counter-based splitmix64
//     stream seeded by (policy seed ^ site salt).  Streams are per-site,
//     so arming one fault class never perturbs another's draws, and the
//     decision points all execute on the main thread (allocations, launch
//     entry, kernel end, and the serially-replayed L2 writeback stream),
//     so a campaign is bit-identical at any MS_HOST_THREADS.
//   * Structured: injected alloc failures and launch aborts are thrown as
//     SimError with FaultContext (kAllocFailure / kLaunchFailure) through
//     the PR 2 error model; silent corruptions (bit flips, L2 scrambles)
//     mutate live DeviceBuffer storage and are expected to be caught by
//     the executor's output validation.
//
// One-shot arming (arm_alloc_failure / arm_launch_abort / arm_bit_flip)
// fires a single injection at a precise upcoming decision event regardless
// of the policy probabilities -- the unit-test / faultinject.hpp interface.
#pragma once

#include <array>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sanitizer.hpp"
#include "sim/types.hpp"

namespace ms::sim {

class Device;

/// Injection sites the engine arms (one deterministic RNG stream each).
enum class ChaosSite : u8 {
  kAlloc = 0,     ///< CachingAllocator::allocate (simulated OOM)
  kLaunch,        ///< Device::run_items entry (launch abort)
  kBitFlip,       ///< Device::end_kernel (one bit of one live buffer word)
  kL2Writeback,   ///< SectorCache dirty writeback (sector scramble)
};
inline constexpr u32 kChaosSiteCount = 4;
const char* to_string(ChaosSite s);

/// Declarative per-site fault probabilities, evaluated per decision event.
struct ChaosPolicy {
  u64 seed = 0xC405C0DEu;
  /// P(an allocate() call fails with a structured kAllocFailure).
  f64 p_alloc_fail = 0.0;
  /// P(a kernel launch aborts with a structured kLaunchFailure).
  f64 p_launch_abort = 0.0;
  /// P(one bit of one random live registered buffer flips at kernel end).
  f64 p_bit_flip = 0.0;
  /// P(a dirty-sector writeback scrambles the words it covers).
  f64 p_l2_corrupt = 0.0;

  bool any() const {
    return p_alloc_fail > 0.0 || p_launch_abort > 0.0 || p_bit_flip > 0.0 ||
           p_l2_corrupt > 0.0;
  }
};

/// One executed injection, in execution order (the campaign audit trail).
struct InjectionRecord {
  ChaosSite site = ChaosSite::kAlloc;
  std::string kernel;  ///< kernel executing at injection time, or "<host>"
  std::string object;  ///< corrupted buffer's label ("" for alloc/launch)
  u64 word = 0;        ///< first corrupted u32 word index within the buffer
  u32 bit = 0;         ///< flipped bit (bit flips only)
  u32 words = 0;       ///< corrupted word count (0 for alloc/launch)
};

/// Injection and recovery counters, surfaced through MetricsReport and the
/// schema-v6 "resilience" JSON block.  The injected_* fields are bumped by
/// the ChaosEngine; the request-side fields by the resilient executor in
/// multisplit/plan.hpp (which works with or without chaos armed).
struct ResilienceStats {
  u64 injected_alloc_failures = 0;
  u64 injected_launch_aborts = 0;
  u64 injected_bit_flips = 0;
  u64 injected_l2_corruptions = 0;

  u64 requests = 0;             ///< resilient executor entries
  u64 faults_observed = 0;      ///< faults seen by the executor (any attempt)
  u64 retries = 0;              ///< attempts beyond the first
  u64 fallbacks = 0;            ///< method downgrades on the fallback ladder
  u64 validation_failures = 0;  ///< output checks that caught corruption
  u64 recovered = 0;            ///< requests that failed then succeeded
  u64 lost = 0;                 ///< requests surfaced as structured errors

  u64 injected_total() const {
    return injected_alloc_failures + injected_launch_aborts +
           injected_bit_flips + injected_l2_corruptions;
  }
};

/// The engine.  Owned by Device (enable_chaos); all decision points run on
/// the main thread (see header comment), so no locking is needed.
class ChaosEngine {
 public:
  ChaosEngine(ChaosPolicy policy, Device& dev, ResilienceStats& stats);

  const ChaosPolicy& policy() const { return policy_; }

  // --- live-buffer registry (fed by DeviceBuffer while chaos is armed) ---
  void register_buffer(u64 base, void* data, u64 bytes, std::string label);
  void unregister_buffer(u64 base);
  /// Exempt the buffer at `base` from bit flips and L2 corruption.
  /// Campaigns protect request *inputs* so retries re-execute against
  /// pristine data and ground-truth comparison stays meaningful; anything
  /// else (outputs, scratch) is fair game.
  void protect_buffer(u64 base);

  // --- one-shot deterministic arming (positive controls) ---
  /// Fail the (skip+1)-th allocate() from now with kAllocFailure.
  void arm_alloc_failure(u64 skip = 0);
  /// Abort the (skip+1)-th launch from now with kLaunchFailure.
  void arm_launch_abort(u64 skip = 0);
  /// At the end of the (skip_kernel_ends+1)-th kernel from now, flip bit
  /// `bit` (0..31) of u32 word `word` of the registered buffer at `base`.
  /// Silently does nothing if the buffer is gone by then.
  void arm_bit_flip(u64 base, u64 word, u32 bit, u64 skip_kernel_ends = 0);

  // --- decision points (called by allocator / device / cache) ---
  /// Throws SimError{kAllocFailure} when the alloc-fail stream fires.
  /// Called at the top of CachingAllocator::allocate, BEFORE any stats
  /// are touched, so a failed allocation leaves the allocator unchanged.
  void maybe_fail_alloc(u64 bytes);
  /// Throws SimError{kLaunchFailure} when the launch-abort stream fires.
  void maybe_abort_launch();
  /// Bit-flip decision point (Device::end_kernel).  `kernel` stamps the
  /// injection record.
  void on_kernel_end(std::string_view kernel);
  /// L2-writeback corruption decision point: `first_byte` / `bytes` is
  /// the device address range of the sector being written back.  Only
  /// corrupts when the range overlaps an unprotected registered buffer.
  void on_writeback(u64 first_byte, u32 bytes);

  /// Every injection executed so far, in order.
  const std::vector<InjectionRecord>& log() const { return log_; }

 private:
  struct BufferEntry {
    void* data = nullptr;
    u64 bytes = 0;
    std::string label;
    bool protected_ = false;
  };
  struct OneShot {
    bool armed = false;
    u64 countdown = 0;
  };

  /// Next value of the site's counter-based stream.
  u64 draw(ChaosSite site);
  /// One-shot countdown (fires regardless of probability) or a Bernoulli
  /// draw at probability `p`; returns the raw draw via `rnd` for target
  /// selection when it fired probabilistically (0 for one-shot fires).
  bool decide(ChaosSite site, f64 p, u64& rnd);
  BufferEntry* find_covering(u64 addr, u64* base_out);
  void flip_bit(BufferEntry& buf, u64 word, u32 bit, std::string_view kernel);

  ChaosPolicy policy_;
  Device* dev_;
  ResilienceStats* stats_;
  std::array<u64, kChaosSiteCount> counters_{};
  std::array<OneShot, kChaosSiteCount> one_shot_{};
  struct TargetedFlip {
    bool armed = false;
    u64 base = 0;
    u64 word = 0;
    u32 bit = 0;
    u64 countdown = 0;
  } targeted_;
  /// base address -> live registered buffer (host storage + label).
  std::map<u64, BufferEntry> buffers_;
  std::vector<InjectionRecord> log_;
};

}  // namespace ms::sim
