#include "sim/cache.hpp"

#include "sim/chaos.hpp"

namespace ms::sim {

void SectorCache::note_writeback(u64 sector) {
  if (chaos_ != nullptr) {
    chaos_->on_writeback(sector * sector_bytes_, sector_bytes_);
  }
}

SectorCache::SectorCache(u32 capacity_bytes, u32 ways, u32 sector_bytes)
    : ways_(ways), sector_bytes_(sector_bytes) {
  check(ways > 0 && sector_bytes > 0, "cache: bad geometry");
  const u32 total_lines = capacity_bytes / sector_bytes;
  check(total_lines >= ways, "cache: capacity smaller than one set");
  num_sets_ = total_lines / ways;
  lines_.assign(static_cast<std::size_t>(num_sets_) * ways_, Line{});
}

u64 SectorCache::flush_dirty() {
  u64 writebacks = 0;
  for (Line& line : lines_) {
    if (line.tag != kInvalid && line.dirty) {
      line.dirty = false;
      ++writebacks;
      note_writeback(line.tag);
    }
  }
  return writebacks;
}

void SectorCache::reset() {
  for (Line& line : lines_) line = Line{};
  tick_ = 0;
}

}  // namespace ms::sim
