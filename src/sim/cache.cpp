#include "sim/cache.hpp"

#include "sim/chaos.hpp"

namespace ms::sim {

void SectorCache::note_writeback(u64 sector) {
  if (chaos_ != nullptr) {
    chaos_->on_writeback(sector * sector_bytes_, sector_bytes_);
  }
}

SectorCache::SectorCache(u32 capacity_bytes, u32 ways, u32 sector_bytes)
    : ways_(ways), sector_bytes_(sector_bytes) {
  check(ways > 0 && sector_bytes > 0, "cache: bad geometry");
  const u32 total_lines = capacity_bytes / sector_bytes;
  check(total_lines >= ways, "cache: capacity smaller than one set");
  num_sets_ = total_lines / ways;
  lines_.assign(static_cast<std::size_t>(num_sets_) * ways_, Line{});
}

SectorCache::Line* SectorCache::find(u64 set, u64 tag) {
  Line* base = &lines_[set * ways_];
  for (u32 w = 0; w < ways_; ++w) {
    if (base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

SectorCache::Line* SectorCache::victim(u64 set) {
  Line* base = &lines_[set * ways_];
  Line* best = base;
  for (u32 w = 1; w < ways_; ++w) {
    if (base[w].tag == kInvalid) return &base[w];
    if (base[w].lru < best->lru) best = &base[w];
  }
  return best;
}

SectorCache::AccessResult SectorCache::read(u64 sector) {
  const u64 set = sector % num_sets_;
  AccessResult r;
  if (Line* line = find(set, sector)) {
    r.hit = true;
    line->lru = ++tick_;
    return r;
  }
  Line* line = victim(set);
  if (line->tag != kInvalid && line->dirty) {
    r.dram_write_tx += 1;
    note_writeback(line->tag);
  }
  line->tag = sector;
  line->dirty = false;
  line->lru = ++tick_;
  r.dram_read_tx += 1;  // miss fill
  return r;
}

SectorCache::AccessResult SectorCache::write(u64 sector) {
  const u64 set = sector % num_sets_;
  AccessResult r;
  if (Line* line = find(set, sector)) {
    r.hit = true;
    line->dirty = true;
    line->lru = ++tick_;
    return r;
  }
  Line* line = victim(set);
  if (line->tag != kInvalid && line->dirty) {
    r.dram_write_tx += 1;
    note_writeback(line->tag);
  }
  line->tag = sector;
  line->dirty = true;  // allocate-without-fill: cost paid at writeback
  line->lru = ++tick_;
  return r;
}

u64 SectorCache::flush_dirty() {
  u64 writebacks = 0;
  for (Line& line : lines_) {
    if (line.tag != kInvalid && line.dirty) {
      line.dirty = false;
      ++writebacks;
      note_writeback(line.tag);
    }
  }
  return writebacks;
}

void SectorCache::reset() {
  for (Line& line : lines_) line = Line{};
  tick_ = 0;
}

}  // namespace ms::sim
