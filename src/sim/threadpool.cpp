#include "sim/threadpool.hpp"

#include <chrono>

namespace ms::sim {

ThreadPool::ThreadPool(u32 threads) {
  check(threads >= 1, "ThreadPool: need at least one worker");
  cells_ = std::make_unique<WorkerCell[]>(threads);
  workers_.reserve(threads);
  for (u32 t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

u32 ThreadPool::hardware_threads() {
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::run(u64 begin, u64 end, const std::function<void(u64)>& body) {
  if (begin >= end) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    next_ = begin;
    end_ = end;
    in_flight_ = 0;
    job_seq_ += 1;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return next_ >= end_ && in_flight_ == 0; });
  body_ = nullptr;
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(workers_.size());
  for (u32 i = 0; i < workers_.size(); ++i) {
    out[i].busy_ms =
        static_cast<f64>(cells_[i].busy_ns.load(std::memory_order_relaxed)) /
        1e6;
    out[i].items = cells_[i].items.load(std::memory_order_relaxed);
  }
  return out;
}

u64 ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  return (end_ > next_ ? end_ - next_ : 0) + in_flight_;
}

void ThreadPool::worker_loop(u32 worker_index) {
  WorkerCell& cell = cells_[worker_index];
  u64 seen_seq = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (job_seq_ != seen_seq && next_ < end_);
    });
    if (shutdown_) return;
    seen_seq = job_seq_;
    // Claim items in ascending order until the job is drained.
    while (next_ < end_) {
      const u64 item = next_++;
      in_flight_ += 1;
      const std::function<void(u64)>* body = body_;
      const bool timed = timing_enabled_.load(std::memory_order_relaxed);
      lock.unlock();
      if (timed) {
        const auto t0 = std::chrono::steady_clock::now();
        (*body)(item);
        const auto t1 = std::chrono::steady_clock::now();
        cell.busy_ns.fetch_add(
            static_cast<u64>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()),
            std::memory_order_relaxed);
        cell.items.fetch_add(1, std::memory_order_relaxed);
      } else {
        (*body)(item);
      }
      lock.lock();
      in_flight_ -= 1;
    }
    if (in_flight_ == 0) done_cv_.notify_all();
  }
}

}  // namespace ms::sim
