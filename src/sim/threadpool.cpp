#include "sim/threadpool.hpp"

namespace ms::sim {

ThreadPool::ThreadPool(u32 threads) {
  check(threads >= 1, "ThreadPool: need at least one worker");
  workers_.reserve(threads);
  for (u32 t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

u32 ThreadPool::hardware_threads() {
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::run(u64 begin, u64 end, const std::function<void(u64)>& body) {
  if (begin >= end) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    next_ = begin;
    end_ = end;
    in_flight_ = 0;
    job_seq_ += 1;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return next_ >= end_ && in_flight_ == 0; });
  body_ = nullptr;
}

void ThreadPool::worker_loop() {
  u64 seen_seq = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (job_seq_ != seen_seq && next_ < end_);
    });
    if (shutdown_) return;
    seen_seq = job_seq_;
    // Claim items in ascending order until the job is drained.
    while (next_ < end_) {
      const u64 item = next_++;
      in_flight_ += 1;
      const std::function<void(u64)>* body = body_;
      lock.unlock();
      (*body)(item);
      lock.lock();
      in_flight_ -= 1;
    }
    if (in_flight_ == 0) done_cv_.notify_all();
  }
}

}  // namespace ms::sim
