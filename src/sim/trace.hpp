// Chrome trace-event export of a Device's kernel log.
//
// Serializes the recorded kernels onto a modeled timeline as a JSON object
// in the Trace Event Format, loadable in chrome://tracing or Perfetto
// (ui.perfetto.dev -> "Open trace file").  Layout:
//
//   tid 0 "stages"      one slice per ProfileRegion (prescan/scan/postscan)
//   tid 1 "kernels"     one complete ("ph":"X") slice per kernel, with the
//                       event counters and derived metrics in args
//   tid 2 "memory pipe" the DRAM-throughput component of each kernel
//   tid 3 "issue pipe"  the instruction-issue component of each kernel
//
// plus counter tracks ("ph":"C") for cumulative DRAM transactions and the
// per-kernel achieved bandwidth.  Timestamps are microseconds (the trace
// format's native unit); kernel slices are laid end to end, so the sum of
// their durations equals Device::total_ms().
#pragma once

#include <iosfwd>
#include <string>

namespace ms::sim {

class Device;

/// Write the trace JSON for everything `dev` has recorded.  Non-const
/// because pending per-site deltas are flushed into the site table first.
void write_chrome_trace(Device& dev, std::ostream& os);

/// Convenience file variant; returns false (and writes nothing) when the
/// file cannot be opened.
bool write_chrome_trace_file(Device& dev, const std::string& path);

}  // namespace ms::sim
