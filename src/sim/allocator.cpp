#include "sim/allocator.hpp"

#include "sim/chaos.hpp"

namespace ms::sim {

u64 CachingAllocator::allocate(u64 bytes) {
  // Chaos injection point: a simulated OOM throws here, before any stats
  // move, so a failed allocation is indistinguishable from never asking.
  if (chaos_ != nullptr) chaos_->maybe_fail_alloc(bytes);
  const u64 size = rounded(bytes);
  stats_.alloc_count += 1;
  stats_.bytes_requested += size;
  stats_.bytes_live += size;
  if (pooling_) {
    auto it = free_lists_.find(size);
    if (it != free_lists_.end() && !it->second.empty()) {
      const u64 base = it->second.back();
      it->second.pop_back();
      if (it->second.empty()) free_lists_.erase(it);
      stats_.reuse_hits += 1;
      stats_.bytes_reused += size;
      stats_.bytes_cached -= size;
      return base;
    }
  }
  const u64 base = next_addr_;
  next_addr_ += size;
  stats_.bytes_reserved = next_addr_;
  return base;
}

void CachingAllocator::deallocate(u64 base, u64 bytes) {
  const u64 size = rounded(bytes);
  stats_.free_count += 1;
  check(stats_.bytes_live >= size, "CachingAllocator: free without alloc");
  stats_.bytes_live -= size;
  if (!pooling_) return;  // legacy behavior: the range is abandoned
  if (deferred_depth_ > 0) {
    // Mid-run free: park it.  Reusing it now would hand later allocations
    // of this run recycled addresses where the legacy allocator bumped,
    // changing modeled costs; it becomes reusable when the run completes.
    pending_.emplace_back(base, size);
    return;
  }
  free_lists_[size].push_back(base);
  stats_.bytes_cached += size;
}

void CachingAllocator::end_deferred_scope() {
  check(deferred_depth_ > 0, "CachingAllocator: unbalanced deferred scope");
  if (--deferred_depth_ > 0) return;
  for (const auto& [base, size] : pending_) {
    free_lists_[size].push_back(base);
    stats_.bytes_cached += size;
  }
  pending_.clear();
}

void CachingAllocator::set_pooling(bool on) {
  if (!on) trim();
  pooling_ = on;
}

void CachingAllocator::trim() {
  free_lists_.clear();
  stats_.bytes_cached = 0;
  // Pending frees of an open deferred scope are abandoned too: after a
  // trim nothing previously freed may be handed out again.
  pending_.clear();
}

}  // namespace ms::sim
