#include "sim/counters.hpp"

#include "sim/device.hpp"

namespace ms::sim {

ScopedSite::ScopedSite(Device& dev, SiteId site)
    : dev_(&dev), prev_(dev.set_site(site)) {}

ScopedSite::ScopedSite(Device& dev, std::string_view label)
    : ScopedSite(dev, dev.site_id(label)) {}

ScopedSite::~ScopedSite() { dev_->set_site(prev_); }

ProfileRegion::ProfileRegion(Device& dev, std::string name)
    : dev_(&dev), name_(std::move(name)), begin_(dev.mark()) {
  // Stage span: only inside a traced request, so free-standing regions
  // (tests, SSSP) add no span state.
  if (dev.spans() != nullptr && dev.spans()->in_request()) {
    span_id_ = dev.open_span(SpanKind::kStage, name_);
  }
}

ProfileRegion::~ProfileRegion() {
  if (!ended_) end();
}

TimingSummary ProfileRegion::end() {
  if (ended_) return final_;
  ended_ = true;
  final_ = dev_->summary_since(begin_);
  dev_->add_region(RegionRecord{name_, begin_, dev_->mark()});
  if (span_id_ != 0) {
    dev_->close_span(span_id_);
    span_id_ = 0;
  }
  return final_;
}

}  // namespace ms::sim
