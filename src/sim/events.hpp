// Event counters: everything the cost model needs, recorded while a kernel
// executes.  Counters are plain integers accumulated by the warp/block
// contexts; the cost model (cost_model.hpp) turns a KernelEvents into
// simulated milliseconds for a given DeviceProfile.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace ms::sim {

struct KernelEvents {
  // --- issue-side counters (occupy warp-instruction issue slots) ---
  /// Plain warp-wide instructions: arithmetic charges, ballots, shuffles,
  /// population counts, predicate evaluation.
  u64 issue_slots = 0;
  /// Extra issue slots caused by multi-segment (non-coalesced) global
  /// accesses: a warp access touching S segments replays S times; the
  /// first slot is counted in `issue_slots`, the remaining S-1 here so the
  /// scatter penalty knob can scale them separately.
  u64 scatter_replays = 0;
  /// Shared-memory access slots, including bank-conflict serialization
  /// (an access with a B-way conflict contributes B slots).
  u64 smem_slots = 0;

  // --- memory-side counters ---
  /// 32-byte DRAM transactions (L2 misses + write traffic), reads/writes.
  u64 dram_read_tx = 0;
  u64 dram_write_tx = 0;
  /// Total L2 segment touches (hits + misses), for diagnostics.
  u64 l2_read_segments = 0;
  u64 l2_write_segments = 0;
  /// Useful payload bytes actually requested by lanes (diagnostics; the
  /// coalescing efficiency of a kernel is useful_bytes / (tx * 32)).
  u64 useful_bytes_read = 0;
  u64 useful_bytes_written = 0;

  // --- structure counters ---
  u64 warps_launched = 0;
  u64 blocks_launched = 0;
  u64 barriers = 0;
  u64 atomic_ops = 0;
  u64 atomic_conflicts = 0;

  // --- SIMT divergence counters (metrics.hpp derives the active-lane
  // fraction from these) ---
  /// Warp-wide instructions that carry an explicit active-lane mask:
  /// ballot/any/all, all shfl variants, popc, and every global or shared
  /// memory instruction.  Uniform bookkeeping charged via Warp::charge() is
  /// deliberately excluded (it models already-converged scalar work).
  u64 simt_insts = 0;
  /// Total active lanes across those instructions; a full warp contributes
  /// 32.  active-lane fraction = simt_active_lanes / (32 * simt_insts).
  u64 simt_active_lanes = 0;
  /// Ballot instructions executed (the paper's per-bucket histogram loop is
  /// one ballot per bucket per round, so this counts its warp-level work).
  u64 ballot_rounds = 0;
  /// Warp-wide shared-memory instructions (each contributes >= 1
  /// smem_slots; the excess is bank-conflict / RMW serialization, so
  /// smem_slots / smem_accesses is the average serialization degree).
  u64 smem_accesses = 0;

  KernelEvents& operator+=(const KernelEvents& o) {
    issue_slots += o.issue_slots;
    scatter_replays += o.scatter_replays;
    smem_slots += o.smem_slots;
    dram_read_tx += o.dram_read_tx;
    dram_write_tx += o.dram_write_tx;
    l2_read_segments += o.l2_read_segments;
    l2_write_segments += o.l2_write_segments;
    useful_bytes_read += o.useful_bytes_read;
    useful_bytes_written += o.useful_bytes_written;
    warps_launched += o.warps_launched;
    blocks_launched += o.blocks_launched;
    barriers += o.barriers;
    atomic_ops += o.atomic_ops;
    atomic_conflicts += o.atomic_conflicts;
    simt_insts += o.simt_insts;
    simt_active_lanes += o.simt_active_lanes;
    ballot_rounds += o.ballot_rounds;
    smem_accesses += o.smem_accesses;
    return *this;
  }

  /// Counter delta (used by per-site attribution: every increment between
  /// two snapshots belongs to exactly one site).  All counters are
  /// monotonically increasing within a kernel, so the subtraction is safe.
  KernelEvents& operator-=(const KernelEvents& o) {
    issue_slots -= o.issue_slots;
    scatter_replays -= o.scatter_replays;
    smem_slots -= o.smem_slots;
    dram_read_tx -= o.dram_read_tx;
    dram_write_tx -= o.dram_write_tx;
    l2_read_segments -= o.l2_read_segments;
    l2_write_segments -= o.l2_write_segments;
    useful_bytes_read -= o.useful_bytes_read;
    useful_bytes_written -= o.useful_bytes_written;
    warps_launched -= o.warps_launched;
    blocks_launched -= o.blocks_launched;
    barriers -= o.barriers;
    atomic_ops -= o.atomic_ops;
    atomic_conflicts -= o.atomic_conflicts;
    simt_insts -= o.simt_insts;
    simt_active_lanes -= o.simt_active_lanes;
    ballot_rounds -= o.ballot_rounds;
    smem_accesses -= o.smem_accesses;
    return *this;
  }

  friend KernelEvents operator+(KernelEvents a, const KernelEvents& b) {
    return a += b;
  }
  friend KernelEvents operator-(KernelEvents a, const KernelEvents& b) {
    return a -= b;
  }
  friend bool operator==(const KernelEvents&, const KernelEvents&) = default;
};

/// One executed kernel: its name, counted events, and modeled time.
struct KernelRecord {
  std::string name;
  KernelEvents events;
  f64 time_ms = 0.0;       // modeled end-to-end time including launch
  f64 mem_time_ms = 0.0;   // DRAM-throughput component
  f64 issue_time_ms = 0.0; // instruction-issue component
  /// True when the launch was cut short by a fatal fault (see
  /// sanitizer.hpp); events and time cover only what ran.
  bool faulted = false;
  /// Largest per-block shared-memory footprint any block of this kernel
  /// allocated (0 for warp-granularity kernels).  Input to the
  /// shared-memory-limited occupancy proxy in metrics.hpp; deliberately a
  /// max, not a counter, so it lives here instead of in KernelEvents.
  u32 peak_smem_bytes = 0;
  /// Per-access-site attribution of `events` for this kernel: (site id,
  /// counter slice) pairs for every site touched while it ran.  The slices
  /// partition `events` exactly -- summing them reproduces the totals (the
  /// unattributed remainder is carried by site 0).
  std::vector<std::pair<u32, KernelEvents>> sites;
};

/// Batched-serving accounting, surfaced through MetricsReport and the
/// schema-v8 "batching" JSON block.  Bumped by the ServingExecutor
/// (multisplit/serving.cpp) on the device it serves; devices that never
/// serve batches report all-zero.
struct BatchStats {
  u64 batches = 0;          ///< flushes that executed at least one problem
  u64 packed_problems = 0;  ///< problems routed through fused packed launches
  u64 unpacked_problems = 0;  ///< problems that fell back to plan.run()
  u64 fused_launches = 0;   ///< fused kernel launches issued
  u64 slots_filled = 0;     ///< sub-warp/warp slots carrying a problem
  u64 slots_total = 0;      ///< slots available across fused launches
  u64 problems_retried = 0; ///< problems re-packed after a faulted launch

  /// Fill ratio of the packed launches (1.0 when every slot carried a
  /// problem); 0 when nothing was packed.
  f64 fill_ratio() const {
    return slots_total == 0
               ? 0.0
               : static_cast<f64>(slots_filled) / static_cast<f64>(slots_total);
  }
};

/// Aggregate of a sequence of kernels (e.g., one multisplit stage).
struct TimingSummary {
  f64 total_ms = 0.0;
  u64 kernels = 0;
  KernelEvents events;

  void add(const KernelRecord& r) {
    total_ms += r.time_ms;
    kernels += 1;
    events += r.events;
  }

  TimingSummary& operator+=(const TimingSummary& o) {
    total_ms += o.total_ms;
    kernels += o.kernels;
    events += o.events;
    return *this;
  }
};

}  // namespace ms::sim
