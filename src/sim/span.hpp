// Request-scoped span tracing -- the simulator's distributed-tracing
// analogue (request -> attempt -> stage -> kernel-launch nesting).
//
// Every resilient or plain plan execution opens a *request* span stamped
// with a deterministic counter-based trace id; under it the resilient
// executor opens one *attempt* span per try (retry or fallback-ladder
// hop), the method implementations open *stage* spans (the same
// histogram/scan/scatter bands ProfileRegion records, plus a span-only
// epilogue), and the device opens one *launch* span per kernel.  Spans
// carry modeled begin/end timestamps off the device's lifetime clock,
// the kernel-launch overhead charged, virtual retry backoff, and the
// deltas of a few key lifetime counters (launches, L2 read segments,
// DRAM read transactions, allocator traffic).  Fault / retry / fallback
// events attach to the owning span together with the structured
// FaultContext.
//
// Determinism: every span open/close point sits on the main thread
// (begin_kernel/end_kernel, run_method, run_resilient, ProfileRegion),
// and the only worker-thread producers -- kernel-body faults under the
// parallel block scheduler -- park their events in the per-item
// CounterShard and are merged in ascending item order, exactly like the
// counters (shard.hpp).  The JSONL dump therefore contains modeled
// values only and is byte-identical between serial and multi-threaded
// runs (test_span.cpp).  Host wall-clock per span is kept in memory for
// interactive inspection but never written to the deterministic dump.
//
// Tracing is strictly opt-in (Device::enable_spans); with it off, no
// span state exists and modeled costs are bit-identical -- and with it
// on, spans only *read* modeled state, so costs are bit-identical too
// (the tolerance-0 baseline gates run both ways).
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sanitizer.hpp"
#include "sim/types.hpp"

namespace ms::sim {

class Device;

enum class SpanKind : u8 {
  kRequest = 0,  ///< one MultisplitPlan::run / run_pairs / resilient run
  kAttempt,      ///< one try of the resilient executor (retry / fallback)
  kStage,        ///< one algorithm stage (ProfileRegion band or epilogue)
  kLaunch,       ///< one kernel launch
};

const char* to_string(SpanKind k);

/// One structured event attached to a span ("fault", "retry",
/// "fallback", "validation_failure"), stamped with the modeled time at
/// which it happened.
struct SpanEvent {
  f64 t_ms = 0.0;      ///< device lifetime clock at the event
  std::string what;    ///< event kind token
  std::string detail;  ///< free-form: method hopped to, backoff charged...
  std::optional<FaultContext> fault;  ///< structured fault, when one caused it
};

/// Snapshot of the device counters a span tracks; a closed span stores
/// the close-minus-open delta.
struct SpanCounters {
  u64 launches = 0;
  u64 l2_read_segments = 0;
  u64 dram_read_tx = 0;
  u64 alloc_count = 0;
  u64 alloc_reuse_hits = 0;

  SpanCounters operator-(const SpanCounters& o) const {
    return SpanCounters{launches - o.launches,
                        l2_read_segments - o.l2_read_segments,
                        dram_read_tx - o.dram_read_tx,
                        alloc_count - o.alloc_count,
                        alloc_reuse_hits - o.alloc_reuse_hits};
  }
};

/// One recorded span.  `span_id` is 1-based and monotonic in open order
/// (the deterministic ID: opens happen in the same order serial and
/// parallel); `parent_id` 0 means root; `trace_id` groups every span of
/// one request (assigned from the recorder's request counter).
struct SpanRecord {
  u64 span_id = 0;
  u64 parent_id = 0;
  u64 trace_id = 0;
  SpanKind kind = SpanKind::kRequest;
  std::string name;
  f64 begin_ms = 0.0;     ///< device lifetime clock at open
  f64 end_ms = 0.0;       ///< device lifetime clock at close
  f64 host_ms = 0.0;      ///< host wall-clock; in-memory only, never dumped
  f64 backoff_ms = 0.0;   ///< virtual retry backoff charged to this span
  f64 overhead_ms = 0.0;  ///< launch spans: fixed kernel-launch overhead
  SpanCounters counters;  ///< close-minus-open deltas once closed
  std::vector<SpanEvent> events;
  bool closed = false;
};

/// The span sink.  Main-thread only (see the header comment); the
/// recorder keeps an explicit open-span stack so nesting needs no
/// thread-local state and integrity (every span closed exactly once,
/// children before parents) is checkable after the fact.
class SpanRecorder {
 public:
  /// Open a span.  kRequest spans draw a fresh trace id from the request
  /// counter; every other kind inherits the innermost open span's trace.
  /// Returns the new span's id.
  u64 begin(SpanKind kind, std::string name, f64 now_ms,
            const SpanCounters& snap);
  /// Close span `id`, which must be the innermost open span (spans
  /// strictly nest).  Stores end time, counter deltas and host wall.
  void end(u64 id, f64 now_ms, const SpanCounters& snap);

  /// Append an already-closed span under an explicit parent, bypassing
  /// the open-span stack.  The batched serving executor uses this to
  /// attribute per-problem sub-intervals of a fused launch after the
  /// launch span itself has closed: the per-problem kRequest spans draw
  /// fresh trace ids (they ARE independent requests), every other kind
  /// inherits the parent's trace.  `parent_id` must name a recorded
  /// span.  Returns the new span's id.
  u64 insert_closed(SpanKind kind, std::string name, u64 parent_id,
                    f64 begin_ms, f64 end_ms, const SpanCounters& delta,
                    std::vector<SpanEvent> events = {});

  /// Attach an event to the innermost open span (dropped when no span is
  /// open -- events outside any request are not part of a trace).
  void event(SpanEvent ev);
  /// Charge virtual backoff milliseconds to span `id` (the request span;
  /// backoff never advances the device lifetime clock).
  void add_backoff(u64 id, f64 ms);
  /// Set the modeled fixed overhead of span `id` (launch spans).
  void set_overhead(u64 id, f64 ms);

  /// True while any span is open (all roots are request spans, so this
  /// is "a request is in flight").
  bool in_request() const { return !stack_.empty(); }
  /// Trace id of the innermost open span, 0 when none is open.  This is
  /// the exemplar id latency histograms record.
  u64 current_trace() const;
  /// Id of the innermost open span, 0 when none.
  u64 current_span() const { return stack_.empty() ? 0 : stack_.back(); }

  u64 trace_count() const { return next_trace_; }
  std::size_t open_depth() const { return stack_.size(); }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  const SpanRecord& at(u64 id) const { return spans_[id - 1]; }
  void clear();

 private:
  SpanRecord& mut(u64 id) { return spans_[id - 1]; }

  std::vector<SpanRecord> spans_;
  std::vector<u64> stack_;  ///< ids of open spans, outermost first
  std::vector<std::chrono::steady_clock::time_point> host_begin_;
  u64 next_trace_ = 0;
};

/// RAII span over a Device (snapshots the device's span counters at
/// both ends).  No-op when the device has no recorder or -- for
/// non-request kinds -- when no request span is open.  Destruction
/// closes the span if end() was not called (exception safety: an
/// aborted attempt still closes its span).
class SpanScope {
 public:
  SpanScope(Device& dev, SpanKind kind, std::string name);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void end();
  /// The span's id, 0 when the scope is inactive.
  u64 id() const { return id_; }
  bool active() const { return id_ != 0; }

 private:
  Device* dev_;
  u64 id_ = 0;
};

/// Write the deterministic span dump: a JSONL header line
/// `{"spans":"trace","schema_version":...,...}` followed by one line per
/// span in span_id order.  Modeled fields only (no host wall-clock).
void write_spans_jsonl(std::ostream& os, const SpanRecorder& rec,
                       std::string_view source, std::string_view device_name);
/// Same, to a file; returns false when the file cannot be opened.
bool write_spans_jsonl_file(const std::string& path, const SpanRecorder& rec,
                            std::string_view source,
                            std::string_view device_name);

}  // namespace ms::sim
