// Global-memory buffers.
//
// A DeviceBuffer<T> is a typed allocation in the simulated device's address
// space.  Host code may read/write it freely (that models cudaMemcpy-style
// setup and verification, which the paper excludes from timing); kernels
// must access it through the Warp context so that every access is charged
// for coalescing and DRAM traffic.
#pragma once

#include <span>
#include <vector>

#include "sim/device.hpp"
#include "sim/types.hpp"

namespace ms::sim {

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() : dev_(nullptr), base_addr_(0) {}

  DeviceBuffer(Device& dev, u64 count)
      : dev_(&dev),
        base_addr_(dev.allocate_address_range(count * sizeof(T))),
        data_(count) {}

  DeviceBuffer(Device& dev, std::span<const T> init)
      : DeviceBuffer(dev, init.size()) {
    std::copy(init.begin(), init.end(), data_.begin());
  }

  // Movable, not copyable: a buffer is a unique allocation.
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&&) noexcept = default;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept = default;

  u64 size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  u64 base_address() const { return base_addr_; }
  Device& device() const { return *dev_; }

  /// Host-side view (setup / verification only; not charged).
  std::span<T> host() { return data_; }
  std::span<const T> host() const { return data_; }
  T& operator[](u64 i) { return data_[i]; }
  const T& operator[](u64 i) const { return data_[i]; }

  /// Byte address of element i in the device address space.
  u64 address_of(u64 i) const { return base_addr_ + i * sizeof(T); }

  /// Host-side fill (setup only).
  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  Device* dev_;
  u64 base_addr_;
  std::vector<T> data_;
};

}  // namespace ms::sim
