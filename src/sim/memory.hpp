// Global-memory buffers.
//
// A DeviceBuffer<T> is a typed allocation in the simulated device's address
// space.  Host code may read/write it freely (that models cudaMemcpy-style
// setup and verification, which the paper excludes from timing); kernels
// must access it through the Warp context so that every access is charged
// for coalescing and DRAM traffic.
//
// Buffers may carry a name (used by sanitizer fault reports); unnamed
// buffers are identified by their base address.  When initcheck is armed
// at construction time the buffer registers a per-element valid-bit shadow
// with the device's sanitizer: host-side writes (fill, span construction,
// operator[], host()) mark elements initialized, device-side stores do the
// same, and device-side reads of never-written elements are reported.
#pragma once

#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "sim/device.hpp"
#include "sim/types.hpp"

namespace ms::sim {

class Warp;

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() : dev_(nullptr), base_addr_(0) {}

  DeviceBuffer(Device& dev, u64 count, std::string_view name = {})
      : dev_(&dev),
        base_addr_(dev.allocate_address_range(checked_bytes(count))),
        data_(count),
        name_(name) {
    shadow_ = dev.sanitizer().on_buffer_alloc(
        base_addr_, count, static_cast<u32>(sizeof(T)),
        object_label(name_, base_addr_));
    // Chaos registry: buffers created while the engine is armed become
    // corruption targets (bit flips, L2 writeback scrambles).  The raw
    // vector heap pointer stays valid across moves of this object.
    if (ChaosEngine* c = dev.chaos()) {
      c->register_buffer(base_addr_, data_.data(), count * sizeof(T),
                         object_label(name_, base_addr_));
    }
  }

  DeviceBuffer(Device& dev, std::span<const T> init, std::string_view name = {})
      : DeviceBuffer(dev, init.size(), name) {
    std::copy(init.begin(), init.end(), data_.begin());
    if (shadow_ != nullptr) shadow_->mark_all();
  }

  // Movable, not copyable: a buffer is a unique allocation.  The source is
  // detached (its device pointer nulled) so only one object ever owns the
  // sanitizer shadow registration.
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& o) noexcept
      : dev_(std::exchange(o.dev_, nullptr)),
        base_addr_(std::exchange(o.base_addr_, 0)),
        data_(std::move(o.data_)),
        name_(std::move(o.name_)),
        shadow_(std::exchange(o.shadow_, nullptr)) {}
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      dev_ = std::exchange(o.dev_, nullptr);
      base_addr_ = std::exchange(o.base_addr_, 0);
      data_ = std::move(o.data_);
      name_ = std::move(o.name_);
      shadow_ = std::exchange(o.shadow_, nullptr);
    }
    return *this;
  }

  ~DeviceBuffer() { release(); }

  u64 size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  u64 base_address() const { return base_addr_; }
  Device& device() const { return *dev_; }
  const std::string& name() const { return name_; }

  /// Host-side view (setup / verification only; not charged).  The mutable
  /// view counts as host initialization of the whole buffer: the simulator
  /// cannot observe writes through the raw span, so initcheck conservatively
  /// assumes them (as compute-sanitizer does for host memcpy).
  std::span<T> host() {
    if (shadow_ != nullptr) shadow_->mark_all();
    return data_;
  }
  std::span<const T> host() const { return data_; }

  T& operator[](u64 i) {
    host_bounds_check(i);
    if (shadow_ != nullptr) shadow_->valid[i] = 1;
    return data_[i];
  }
  const T& operator[](u64 i) const {
    host_bounds_check(i);
    return data_[i];
  }

  /// Byte address of element i in the device address space.
  u64 address_of(u64 i) const { return base_addr_ + i * sizeof(T); }

  /// Host-side fill (setup only).
  void fill(const T& v) {
    std::fill(data_.begin(), data_.end(), v);
    if (shadow_ != nullptr) shadow_->mark_all();
  }

  /// The initcheck shadow slot (null unless tracked).  Used by the Warp
  /// memory instructions; not part of the public surface.
  GlobalShadow* init_shadow() const { return shadow_; }

 private:
  friend class Warp;
  /// Unchecked element storage for the Warp memory instructions (which
  /// bounds-check and update the shadow themselves).
  T* raw_data() { return data_.data(); }
  const T* raw_data() const { return data_.data(); }

  /// Allocation-size guard: count * sizeof(T) must not overflow u64.
  static u64 checked_bytes(u64 count) {
    check(count <= std::numeric_limits<u64>::max() / sizeof(T),
          "DeviceBuffer: element count * sizeof(T) overflows");
    return count * sizeof(T);
  }

  void host_bounds_check(u64 i) const {
    if (i < data_.size()) return;
    FaultContext ctx;
    ctx.kind = FaultKind::kHostOOB;
    ctx.kernel = "<host>";
    ctx.object = object_label(name_, base_addr_);
    ctx.index = i;
    ctx.extent = data_.size();
    ctx.detail = "host-side DeviceBuffer::operator[] out of bounds";
    throw SimError(std::move(ctx));
  }

  /// Drop the shadow registration and return the address range to the
  /// device's pool.  A later allocation of the same rounded size may get
  /// this range back; it registers a fresh shadow, so initcheck still
  /// flags reads of the recycled range before the new owner writes it.
  void release() {
    if (dev_ == nullptr) return;  // default-constructed or moved-from
    if (shadow_ != nullptr) {
      dev_->sanitizer().on_buffer_free(base_addr_);
      shadow_ = nullptr;
    }
    // Tolerant of chaos being enabled/disabled mid-lifetime: unregister
    // is a no-op for a base the current engine never saw.
    if (ChaosEngine* c = dev_->chaos()) c->unregister_buffer(base_addr_);
    dev_->free_address_range(base_addr_, data_.size() * sizeof(T));
  }

  Device* dev_;
  u64 base_addr_;
  std::vector<T> data_;
  std::string name_;
  GlobalShadow* shadow_ = nullptr;
};

}  // namespace ms::sim
