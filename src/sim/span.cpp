#include "sim/span.hpp"

#include <fstream>
#include <ostream>

#include "sim/device.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"

namespace ms::sim {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kAttempt: return "attempt";
    case SpanKind::kStage: return "stage";
    case SpanKind::kLaunch: return "launch";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// SpanRecorder
// ---------------------------------------------------------------------------

u64 SpanRecorder::begin(SpanKind kind, std::string name, f64 now_ms,
                        const SpanCounters& snap) {
  SpanRecord r;
  r.span_id = static_cast<u64>(spans_.size()) + 1;
  r.parent_id = current_span();
  r.trace_id = kind == SpanKind::kRequest ? ++next_trace_ : current_trace();
  r.kind = kind;
  r.name = std::move(name);
  r.begin_ms = now_ms;
  r.counters = snap;  // open snapshot; replaced by the delta at end()
  spans_.push_back(std::move(r));
  stack_.push_back(spans_.back().span_id);
  host_begin_.push_back(std::chrono::steady_clock::now());
  return spans_.back().span_id;
}

void SpanRecorder::end(u64 id, f64 now_ms, const SpanCounters& snap) {
  check(!stack_.empty() && stack_.back() == id,
        "span: end() out of nesting order");
  SpanRecord& r = mut(id);
  check(!r.closed, "span: closed twice");
  r.end_ms = now_ms;
  r.counters = snap - r.counters;
  r.host_ms = std::chrono::duration<f64, std::milli>(
                  std::chrono::steady_clock::now() - host_begin_.back())
                  .count();
  r.closed = true;
  stack_.pop_back();
  host_begin_.pop_back();
}

u64 SpanRecorder::insert_closed(SpanKind kind, std::string name, u64 parent_id,
                                f64 begin_ms, f64 end_ms,
                                const SpanCounters& delta,
                                std::vector<SpanEvent> events) {
  check(parent_id >= 1 && parent_id <= spans_.size(),
        "span: insert_closed() under unknown parent");
  SpanRecord r;
  r.span_id = static_cast<u64>(spans_.size()) + 1;
  r.parent_id = parent_id;
  r.trace_id = kind == SpanKind::kRequest ? ++next_trace_
                                          : spans_[parent_id - 1].trace_id;
  r.kind = kind;
  r.name = std::move(name);
  r.begin_ms = begin_ms;
  r.end_ms = end_ms;
  r.counters = delta;  // already a delta: no open snapshot to subtract
  r.events = std::move(events);
  r.closed = true;
  spans_.push_back(std::move(r));
  return spans_.back().span_id;
}

void SpanRecorder::event(SpanEvent ev) {
  if (stack_.empty()) return;
  mut(stack_.back()).events.push_back(std::move(ev));
}

void SpanRecorder::add_backoff(u64 id, f64 ms) { mut(id).backoff_ms += ms; }

void SpanRecorder::set_overhead(u64 id, f64 ms) { mut(id).overhead_ms = ms; }

u64 SpanRecorder::current_trace() const {
  return stack_.empty() ? 0 : spans_[stack_.back() - 1].trace_id;
}

void SpanRecorder::clear() {
  check(stack_.empty(), "span: clear() with open spans");
  spans_.clear();
  host_begin_.clear();
  next_trace_ = 0;
}

// ---------------------------------------------------------------------------
// SpanScope
// ---------------------------------------------------------------------------

SpanScope::SpanScope(Device& dev, SpanKind kind, std::string name)
    : dev_(&dev) {
  SpanRecorder* rec = dev.spans();
  if (rec == nullptr) return;
  if (kind != SpanKind::kRequest && !rec->in_request()) return;
  id_ = dev.open_span(kind, std::move(name));
}

SpanScope::~SpanScope() { end(); }

void SpanScope::end() {
  if (id_ == 0) return;
  dev_->close_span(id_);
  id_ = 0;
}

// ---------------------------------------------------------------------------
// Deterministic JSONL dump
// ---------------------------------------------------------------------------

namespace {

void write_fault(JsonWriter& w, const FaultContext& f) {
  w.begin_object();
  w.field("kind", to_string(f.kind));
  w.field("severity", f.severity == FaultSeverity::kError ? "error"
                                                          : "warning");
  w.field("kernel", f.kernel);
  w.field("object", f.object);
  w.field("index", f.index);
  w.field("extent", f.extent);
  w.field("detail", f.detail);
  w.end_object();
}

}  // namespace

void write_spans_jsonl(std::ostream& os, const SpanRecorder& rec,
                       std::string_view source, std::string_view device_name) {
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("spans", "trace");
    w.field("schema_version", kReportSchemaVersion);
    w.field("source", source);
    w.field("device", device_name);
    w.field("trace_count", rec.trace_count());
    w.field("span_count", static_cast<u64>(rec.spans().size()));
    w.end_object();
  }
  os << '\n';
  for (const SpanRecord& r : rec.spans()) {
    JsonWriter w(os);
    w.begin_object();
    w.field("span", r.span_id);
    w.field("parent", r.parent_id);
    w.field("trace", r.trace_id);
    w.field("kind", to_string(r.kind));
    w.field("name", r.name);
    w.field("begin_ms", r.begin_ms);
    w.field("end_ms", r.end_ms);
    if (r.overhead_ms > 0.0) w.field("overhead_ms", r.overhead_ms);
    if (r.backoff_ms > 0.0) w.field("backoff_ms", r.backoff_ms);
    w.key("counters").begin_object();
    w.field("launches", r.counters.launches);
    w.field("l2_read_segments", r.counters.l2_read_segments);
    w.field("dram_read_tx", r.counters.dram_read_tx);
    w.field("alloc_count", r.counters.alloc_count);
    w.field("alloc_reuse_hits", r.counters.alloc_reuse_hits);
    w.end_object();
    if (!r.events.empty()) {
      w.key("events").begin_array();
      for (const SpanEvent& e : r.events) {
        w.begin_object();
        w.field("t_ms", e.t_ms);
        w.field("what", e.what);
        if (!e.detail.empty()) w.field("detail", e.detail);
        if (e.fault.has_value()) {
          w.key("fault");
          write_fault(w, *e.fault);
        }
        w.end_object();
      }
      w.end_array();
    }
    w.field("closed", r.closed);
    w.end_object();
    os << '\n';
  }
}

bool write_spans_jsonl_file(const std::string& path, const SpanRecorder& rec,
                            std::string_view source,
                            std::string_view device_name) {
  std::ofstream os(path);
  if (!os) return false;
  write_spans_jsonl(os, rec, source, device_name);
  return os.good();
}

}  // namespace ms::sim
