// The simulated device: owns the device profile, the L2 sector-cache model,
// the per-kernel event counters and the log of executed kernels.
//
// Kernels are executed host-side, warp by warp, between begin_kernel() /
// end_kernel() brackets (use the launch_* helpers in kernel.hpp rather than
// calling these directly).  At end_kernel() the dirty L2 sectors are flushed
// (a kernel's stores must be globally visible before the next launch) and
// the cost model converts the counters into modeled time.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include <optional>

#include "sim/allocator.hpp"
#include "sim/cache.hpp"
#include "sim/chaos.hpp"
#include "sim/cost_model.hpp"
#include "sim/counters.hpp"
#include "sim/events.hpp"
#include "sim/profile.hpp"
#include "sim/sanitizer.hpp"
#include "sim/shard.hpp"
#include "sim/span.hpp"
#include "sim/tape.hpp"
#include "sim/types.hpp"

namespace ms::sim {

class ThreadPool;
class Telemetry;
struct TelemetryConfig;

/// Process-wide default worker count for new Devices: an explicit value
/// set here (e.g. from a --host-threads flag) wins over the
/// MS_HOST_THREADS environment variable, which wins over the hardware
/// concurrency.  0 clears the override.
void set_default_host_threads(u32 threads);
u32 default_host_threads();

class Device {
 public:
  explicit Device(DeviceProfile profile = DeviceProfile::tesla_k40c());
  ~Device();  // out-of-line: ThreadPool is incomplete here

  const DeviceProfile& profile() const { return profile_; }

  // --- kernel bracketing (used by kernel.hpp) ---
  void begin_kernel(std::string name);
  const KernelRecord& end_kernel();
  bool in_kernel() const { return in_kernel_; }
  /// Name of the kernel currently executing ("" between launches); used by
  /// the sanitizer hooks to stamp FaultContexts.
  const std::string& current_kernel_name() const { return current_name_; }

  // --- sanitizer & structured faults (see sanitizer.hpp) ---
  Sanitizer& sanitizer() { return san_; }
  const Sanitizer& sanitizer() const { return san_; }
  /// Record a fatal fault: parks it as last_error() and flags the kernel
  /// record being finalized.  Called by the launch helpers' catch path
  /// (main thread); the mutex makes the rare direct call from a foreign
  /// thread safe too.
  void note_fault(const FaultContext& ctx) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    last_error_ = ctx;
    if (in_kernel_) pending_fault_ = true;
    // Attach the fault to the innermost open span (the launch span for
    // aborted kernels).  Main-thread calls only: worker-thread faults
    // route through record_fault's shard channel instead.
    if (spans_ != nullptr && detail::t_shard == nullptr) {
      spans_->event(SpanEvent{lifetime_ms_, "fault", {}, ctx});
    }
  }
  /// Thread-safe, deterministic fault recording for kernel bodies.  On a
  /// worker thread the fault parks in the executing item's shard and the
  /// post-launch merge applies the LOWEST faulting item's context --
  /// first-fault-wins in ascending item order, exactly the order serial
  /// execution reports.  On the serial path (and between launches) it
  /// applies the same rule directly: the first fault of a launch wins.
  void record_fault(FaultContext ctx);
  /// The most recent fatal fault, if any (sticky, like cudaPeekAtLastError).
  const std::optional<FaultContext>& last_error() const { return last_error_; }
  /// Return and clear the sticky fault (the cudaGetLastError idiom).
  std::optional<FaultContext> take_last_error() {
    std::optional<FaultContext> e = std::move(last_error_);
    last_error_.reset();
    return e;
  }

  // --- address space for DeviceBuffer allocations ---
  /// Reserve `bytes` of device address space, aligned to a sector.
  /// Served by the caching sub-allocator: a recycled range of the same
  /// rounded size when one is pooled, fresh address space otherwise.
  u64 allocate_address_range(u64 bytes);
  /// Return a range to the allocator's pool (DeviceBuffer destructor).
  /// `bytes` must be the size passed to the matching allocate call.
  void free_address_range(u64 base, u64 bytes);
  /// The device sub-allocator (pooling toggle, trim, reuse stats).
  CachingAllocator& allocator() { return alloc_; }
  const CachingAllocator& allocator() const { return alloc_; }

  // --- event recording (used by Warp/Block contexts) ---
  /// The counter sink of the executing context: the thread-local shard
  /// while a parallel item runs on this thread, the kernel totals
  /// otherwise (serial path, and host code between launches).
  KernelEvents& events() {
    if (charging_off_) return discard_events_;
    CounterShard* sh = detail::t_shard;
    return sh != nullptr ? sh->events : current_;
  }

  /// Record a warp-wide global read/write covering `segments` sectors
  /// starting at `first_sector` (contiguous case).  Serial path: the
  /// sectors go through the L2 model immediately.  Parallel path: they
  /// are recorded in the item's shard and replayed through the L2 in
  /// item order after the launch (see run_items).
  void touch_read_sectors(u64 first_sector, u32 segments);
  void touch_write_sectors(u64 first_sector, u32 segments);
  /// Same, for an arbitrary (already deduplicated) sector list.
  void touch_read_sector(u64 sector);
  void touch_write_sector(u64 sector);

  /// Record a block's shared-memory footprint (called by Block::shared);
  /// the maximum across the kernel's blocks lands in
  /// KernelRecord::peak_smem_bytes for the occupancy proxy.
  void note_smem_usage(u32 bytes) {
    if (charging_off_) return;  // replay: the taped shard carries the peak
    CounterShard* sh = detail::t_shard;
    if (sh != nullptr) {
      sh->peak_smem = std::max(sh->peak_smem, bytes);
    } else {
      current_peak_smem_ = std::max(current_peak_smem_, bytes);
    }
  }

  // --- parallel block scheduler (used by the launch helpers) ---
  /// Worker threads used to execute independent kernel items (blocks /
  /// warp chunks); 1 = the serial path.  Defaults to
  /// default_host_threads() at construction.
  u32 host_threads() const { return host_threads_; }
  /// Set the worker count (0 = reset to the process default).  Takes
  /// effect at the next launch; must not be called mid-kernel.
  void set_host_threads(u32 threads);

  /// Execute body(item) for items [0, n), concurrently when
  /// host_threads() > 1, with accounting merged in ascending item order
  /// so that counters, per-site slices, L2 traffic and modeled costs are
  /// bit-identical to serial execution.  Called by the launch helpers
  /// with one item per block (launch_blocks) or per fixed-size warp
  /// chunk (launch_warps).
  void run_items(u64 n, const std::function<void(u64)>& body);

  /// Serial-equivalence fence for global atomics: blocks the calling
  /// worker until every lower-numbered item of the current launch has
  /// completed, so atomic old values are consumed in the exact order
  /// serial execution would produce.  No-op on the serial path and after
  /// the item's first call.
  void global_atomic_fence();

  // --- kernel log / timing sections ---
  const std::vector<KernelRecord>& records() const { return records_; }
  void clear_records() { records_.clear(); }

  /// Position marker for timing sections: summarize everything executed
  /// after a mark() with summary_since().  (ProfileRegion in counters.hpp
  /// is the scoped front-end; this stays as the underlying primitive.)
  u64 mark() const { return records_.size(); }
  TimingSummary summary_since(u64 mark) const;
  TimingSummary summary_all() const { return summary_since(0); }

  /// Total modeled milliseconds across all recorded kernels.
  f64 total_ms() const;

  // --- per-site attribution (see counters.hpp) ---
  /// Register-or-look-up an access site by label.  Labels are stable for
  /// the device's lifetime; register once outside hot loops and reuse the
  /// id from ScopedSite(dev, id).
  SiteId site_id(std::string_view label);
  /// Switch the current attribution site (flushing the pending counter
  /// delta to the outgoing site); returns the previous site.  Prefer
  /// ScopedSite over calling this directly.
  SiteId set_site(SiteId site);
  SiteId current_site() const {
    const CounterShard* sh = detail::t_shard;
    return sh != nullptr ? sh->current_site : current_site_;
  }
  /// Accumulated per-site counters across all recorded kernels (pending
  /// deltas are flushed first).  Index == SiteId.
  const std::vector<SiteStats>& site_stats();

  // --- profiled regions (stage bands; see counters.hpp) ---
  const std::vector<RegionRecord>& regions() const { return regions_; }
  void add_region(RegionRecord r) { regions_.push_back(std::move(r)); }

  /// Reset the cache, the kernel log, per-site counters and regions
  /// (buffers keep their contents; site labels stay registered).
  void reset_stats();

  // --- telemetry (sim/telemetry.hpp) ---
  /// Attach a metrics registry.  Registers a provider that polls the
  /// allocator, the L2 counters and the threadpool at snapshot time, and
  /// makes end_kernel() tick the sampler.  Telemetry only *reads* modeled
  /// state -- modeled costs are bit-identical with it on or off (the
  /// telemetry_overhead CTest gate).  Idempotent; the config of the first
  /// call wins.
  Telemetry& enable_telemetry(const TelemetryConfig& cfg);
  Telemetry& enable_telemetry();
  /// The attached registry, or nullptr when telemetry is off.
  Telemetry* telemetry() { return telem_.get(); }
  const Telemetry* telemetry() const { return telem_.get(); }

  /// Device-lifetime modeled totals.  Unlike total_ms()/records(), these
  /// survive reset_stats()/clear_records() -- they are the monotonic clock
  /// telemetry snapshots are plotted against.
  f64 lifetime_ms() const { return lifetime_ms_; }
  u64 lifetime_launches() const { return lifetime_launches_; }

  // --- fault injection (sim/chaos.hpp) ---
  /// Arm the deterministic chaos engine with `policy`.  Idempotent like
  /// enable_telemetry: the first call's policy wins; later calls return
  /// the existing engine (use its one-shot arming APIs to add precise
  /// injections).  Buffers created while armed register with the engine
  /// and become corruption targets.
  ChaosEngine& enable_chaos(const ChaosPolicy& policy);
  /// Detach and destroy the engine; every injection point reverts to the
  /// zero-overhead null check (live buffers simply stop being targets).
  void disable_chaos();
  /// The armed engine, or nullptr when chaos is off.
  ChaosEngine* chaos() { return chaos_.get(); }
  const ChaosEngine* chaos() const { return chaos_.get(); }

  /// Injection and recovery counters (chaos engine + resilient executor).
  /// Lifetime totals; all-zero on a device that never saw chaos or a
  /// resilient run -- the schema-v6 "resilience" report block.
  ResilienceStats& resilience_stats() { return res_stats_; }
  const ResilienceStats& resilience_stats() const { return res_stats_; }

  /// Batched-serving accounting (ServingExecutor).  Lifetime totals;
  /// all-zero on a device that never served batches -- the schema-v8
  /// "batching" report block.
  BatchStats& batch_stats() { return batch_stats_; }
  const BatchStats& batch_stats() const { return batch_stats_; }

  // --- request-scoped span tracing (sim/span.hpp) ---
  /// Attach a span recorder.  Plan executions then open request /
  /// attempt / stage spans and every kernel launch inside a request gets
  /// a launch span.  Spans only *read* modeled state: modeled costs are
  /// bit-identical with tracing on or off.  Idempotent.
  SpanRecorder& enable_spans();
  /// The attached recorder, or nullptr when tracing is off.
  SpanRecorder* spans() { return spans_.get(); }
  const SpanRecorder* spans() const { return spans_.get(); }

  /// Open / close a span against the device lifetime clock and the span
  /// counter snapshot.  Main thread only; requires enable_spans().
  /// SpanScope is the RAII front-end.
  u64 open_span(SpanKind kind, std::string name) {
    return spans_->begin(kind, std::move(name), lifetime_ms_,
                         span_counters_now());
  }
  void close_span(u64 id) {
    spans_->end(id, lifetime_ms_, span_counters_now());
  }
  /// Launch span id of the most recently completed kernel, 0 when that
  /// kernel ran untraced.  Valid until the next launch begins; the
  /// serving executor uses it to nest per-problem spans under the fused
  /// launch that carried them.
  u64 last_launch_span() const { return last_launch_span_; }
  /// Snapshot of the lifetime counters spans track as deltas.
  SpanCounters span_counters_now() const {
    return SpanCounters{lifetime_launches_, lifetime_l2_read_segments_,
                        lifetime_dram_read_tx_, alloc_.stats().alloc_count,
                        alloc_.stats().reuse_hits};
  }

  // --- cost-tape record/replay (sim/tape.hpp; MultisplitPlan drives it) ---
  /// Attach `tape` for the duration of one plan run.  kRecord: annotated
  /// launches execute live and append their merged shard streams to the
  /// tape; every allocation base is logged.  kReplay: annotated launches
  /// execute functionally with charging suppressed and merge the taped
  /// shards through the live L2 instead; allocation bases are checked
  /// against the recording.  Must be bracketed with tape_finish().
  void tape_start(TapeMode mode, CostTape* tape);
  /// Detach the tape.  Returns false when anything invalidated it: a
  /// fault, a sanitizer report, an exception, an allocation-placement or
  /// launch-name mismatch, or (on replay) leftover unconsumed entries.
  bool tape_finish();
  /// Bracket for cost-uniform stages (UniformStageScope below): only
  /// launches inside the bracket are taped/replayed; everything else runs
  /// live even while a tape is attached.
  void uniform_stage_push() { ++uniform_depth_; }
  void uniform_stage_pop() { --uniform_depth_; }
  /// True while a replayed launch body executes: warp/block instructions
  /// move data but suppress charges, touches and checks (the taped shards
  /// carry the accounting).
  bool charging_off() const { return charging_off_; }
  /// True while the attached tape is still valid (diagnostics/tests).
  bool tape_ok() const { return tape_ok_; }

 private:
  /// Attribute `current_ - site_snapshot_` to the current site.
  void flush_site_delta();

  /// Fold one completed item's shard into the device state: per-site
  /// counter slices, peak shared memory, the L2 sector-stream replay and
  /// the deferred sanitizer reports.  Must be called in ascending item
  /// order (the replay reproduces the serial L2 access sequence).
  void merge_shard(CounterShard& shard);
  /// Add a counter delta to the kernel totals and to `site`'s slices,
  /// keeping the site-snapshot invariant (no pending delta afterwards).
  void add_attributed(SiteId site, const KernelEvents& delta);

  /// Record one annotated serial launch into the active tape: the whole
  /// launch runs under a single CounterShard which is merged (for the
  /// live effects) and then appended to the tape.
  void tape_record_serial(u64 n, const std::function<void(u64)>& body);
  /// Replay one annotated launch from the active tape: validate the
  /// launch name, run the body with charging suppressed, merge the taped
  /// shards.  Returns false (without running anything) when the tape does
  /// not match -- the caller falls back to live execution.
  bool tape_replay_launch(u64 n, const std::function<void(u64)>& body);

  /// Cross-item synchronization of one parallel launch (the
  /// completed-prefix fence global_atomic_fence waits on).
  struct LaunchSync {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<u8> done;
    u64 prefix = 0;  // items [0, prefix) have completed
  };

  DeviceProfile profile_;
  SectorCache l2_;
  Sanitizer san_;
  std::optional<FaultContext> last_error_;
  /// Guards last_error_ / pending_fault_ against record_fault from
  /// foreign threads (worker-thread faults normally route via shards).
  std::mutex fault_mu_;
  bool pending_fault_ = false;
  KernelEvents current_;
  std::string current_name_;
  u32 current_peak_smem_ = 0;
  bool in_kernel_ = false;
  CachingAllocator alloc_;  // initialized from profile_.transaction_bytes
  std::vector<KernelRecord> records_;
  std::vector<RegionRecord> regions_;

  std::vector<SiteStats> sites_;
  SiteId current_site_ = kSiteOther;
  SiteId writeback_site_ = 0;  // set in the constructor
  KernelEvents site_snapshot_;
  /// Site slices of the kernel currently executing (moved into its
  /// KernelRecord at end_kernel).
  std::vector<std::pair<u32, KernelEvents>> kernel_sites_;

  /// Guards site_id registration (kernel bodies may register labels from
  /// worker threads; the table itself is only read during execution).
  std::mutex site_mu_;

  u32 host_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;     // lazily created, reused
  std::unique_ptr<LaunchSync> sync_;     // non-null only during run_items

  // --- cost-tape state (see tape.hpp) ---
  TapeMode tape_mode_ = TapeMode::kOff;
  CostTape* tape_ = nullptr;        // non-null while a tape is attached
  u64 tape_cursor_ = 0;             // next launch to replay
  u64 tape_alloc_cursor_ = 0;       // next allocation base to check
  u32 uniform_depth_ = 0;           // inside a UniformStageScope when > 0
  bool charging_off_ = false;       // replayed launch body executing
  bool tape_ok_ = true;             // recording/replay still valid
  KernelEvents discard_events_;     // events() sink while charging_off_

  std::unique_ptr<ChaosEngine> chaos_;   // null when chaos is off
  ResilienceStats res_stats_;

  std::unique_ptr<Telemetry> telem_;     // null when telemetry is off
  std::unique_ptr<SpanRecorder> spans_;  // null when span tracing is off
  /// Launch span of the kernel currently executing (0 when none: tracing
  /// off, or the launch happened outside a request span).
  u64 launch_span_ = 0;
  /// Launch span of the most recently *completed* kernel (saved at
  /// end_kernel before launch_span_ resets).  The batched serving
  /// executor reads this to parent per-problem spans under their fused
  /// launch after the launch closes.
  u64 last_launch_span_ = 0;
  BatchStats batch_stats_;
  /// Lifetime accumulators (updated at end_kernel; survive reset_stats).
  f64 lifetime_ms_ = 0.0;
  u64 lifetime_launches_ = 0;
  u64 lifetime_l2_read_segments_ = 0;
  u64 lifetime_dram_read_tx_ = 0;
};

/// RAII marker for a cost-uniform stage: every launch inside the scope is
/// declared to derive its accounting from the launch shape alone (never
/// from key values), making it eligible for tape record/replay.  The
/// declaration is *checked*, not trusted: the plan's verify run proves
/// the recorded streams reproduce before any replay happens.  No-op when
/// no tape is attached.
class UniformStageScope {
 public:
  explicit UniformStageScope(Device& dev) : dev_(&dev) {
    dev_->uniform_stage_push();
  }
  ~UniformStageScope() { dev_->uniform_stage_pop(); }
  UniformStageScope(const UniformStageScope&) = delete;
  UniformStageScope& operator=(const UniformStageScope&) = delete;

 private:
  Device* dev_;
};

}  // namespace ms::sim
