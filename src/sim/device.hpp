// The simulated device: owns the device profile, the L2 sector-cache model,
// the per-kernel event counters and the log of executed kernels.
//
// Kernels are executed host-side, warp by warp, between begin_kernel() /
// end_kernel() brackets (use the launch_* helpers in kernel.hpp rather than
// calling these directly).  At end_kernel() the dirty L2 sectors are flushed
// (a kernel's stores must be globally visible before the next launch) and
// the cost model converts the counters into modeled time.
#pragma once

#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/cost_model.hpp"
#include "sim/events.hpp"
#include "sim/profile.hpp"
#include "sim/types.hpp"

namespace ms::sim {

class Device {
 public:
  explicit Device(DeviceProfile profile = DeviceProfile::tesla_k40c());

  const DeviceProfile& profile() const { return profile_; }

  // --- kernel bracketing (used by kernel.hpp) ---
  void begin_kernel(std::string name);
  const KernelRecord& end_kernel();
  bool in_kernel() const { return in_kernel_; }

  // --- address space for DeviceBuffer allocations ---
  /// Reserve `bytes` of device address space, aligned to a sector.
  u64 allocate_address_range(u64 bytes);

  // --- event recording (used by Warp/Block contexts) ---
  KernelEvents& events() { return current_; }

  /// Record a warp-wide global read/write covering `segments` sectors
  /// starting at `first_sector` (contiguous case).
  void touch_read_sectors(u64 first_sector, u32 segments);
  void touch_write_sectors(u64 first_sector, u32 segments);
  /// Same, for an arbitrary (already deduplicated) sector list.
  void touch_read_sector(u64 sector);
  void touch_write_sector(u64 sector);

  // --- kernel log / timing sections ---
  const std::vector<KernelRecord>& records() const { return records_; }
  void clear_records() { records_.clear(); }

  /// Position marker for timing sections: summarize everything executed
  /// after a mark() with summary_since().
  u64 mark() const { return records_.size(); }
  TimingSummary summary_since(u64 mark) const;
  TimingSummary summary_all() const { return summary_since(0); }

  /// Total modeled milliseconds across all recorded kernels.
  f64 total_ms() const;

  /// Reset the cache and the kernel log (buffers keep their contents).
  void reset_stats();

 private:
  DeviceProfile profile_;
  SectorCache l2_;
  KernelEvents current_;
  std::string current_name_;
  bool in_kernel_ = false;
  u64 next_addr_ = 0;
  std::vector<KernelRecord> records_;
};

}  // namespace ms::sim
