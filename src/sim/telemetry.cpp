#include "sim/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "sim/device.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"

namespace ms::sim {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

void LatencyHistogram::record_ticks(u64 ticks, u64 exemplar_trace) {
  const u32 idx = bucket_index(ticks);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_trace != 0) {
    exemplars_[idx].store(exemplar_trace, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ticks, std::memory_order_relaxed);
  u64 lo = min_.load(std::memory_order_relaxed);
  while (ticks < lo &&
         !min_.compare_exchange_weak(lo, ticks, std::memory_order_relaxed)) {
  }
  u64 hi = max_.load(std::memory_order_relaxed);
  while (ticks > hi &&
         !max_.compare_exchange_weak(hi, ticks, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(kBucketCount);
  s.exemplars.resize(kBucketCount);
  for (u32 i = 0; i < kBucketCount; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.exemplars[i] = exemplars_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  // Derive count from the buckets so the snapshot is internally consistent
  // even if a concurrent record lands between loads; sum/min/max are
  // best-effort under concurrency (exact when recording has quiesced).
  s.sum_ticks = sum_.load(std::memory_order_relaxed);
  const u64 mn = min_.load(std::memory_order_relaxed);
  s.min_ticks = s.count > 0 && mn != ~u64{0} ? mn : 0;
  s.max_ticks = max_.load(std::memory_order_relaxed);
  return s;
}

u64 LatencyHistogram::Snapshot::percentile_ticks(f64 p) const {
  if (count == 0) return 0;
  const u32 b = percentile_bucket(p);
  if (b >= buckets.size()) return max_ticks;
  // Upper bound of the rank's bucket, clamped to the exact maximum so
  // high percentiles never exceed an observed value.
  return std::min(bucket_upper(b), max_ticks);
}

u32 LatencyHistogram::Snapshot::percentile_bucket(f64 p) const {
  if (count == 0) return kBucketCount;
  const f64 clamped = std::min(100.0, std::max(0.0, p));
  u64 rank = static_cast<u64>(std::ceil(clamped / 100.0 *
                                        static_cast<f64>(count)));
  rank = std::max<u64>(1, std::min(rank, count));
  u64 cum = 0;
  for (u32 i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) return i;
  }
  return kBucketCount;
}

// ---------------------------------------------------------------------------
// Telemetry registry & sampler
// ---------------------------------------------------------------------------

namespace {

template <typename Vec>
auto* find_named(Vec& v, std::string_view name) {
  for (auto& [n, inst] : v) {
    if (n == name) return inst.get();
  }
  return decltype(v.front().second.get()){nullptr};
}

}  // namespace

Telemetry::Telemetry(TelemetryConfig cfg)
    : cfg_(cfg), start_(std::chrono::steady_clock::now()) {
  check(cfg_.ring_capacity >= 1, "telemetry: ring capacity must be >= 1");
}

f64 Telemetry::elapsed_ms() const {
  return std::chrono::duration<f64, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

Counter& Telemetry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto* c = find_named(counters_, name)) return *c;
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& Telemetry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto* g = find_named(gauges_, name)) return *g;
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

LatencyHistogram& Telemetry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto* h = find_named(hists_, name)) return *h;
  hists_.emplace_back(std::string(name),
                      std::make_unique<LatencyHistogram>());
  return *hists_.back().second;
}

void Telemetry::add_provider(Provider p) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.push_back(std::move(p));
}

void Telemetry::tick() {
  const f64 now_ms = elapsed_ms();
  if (last_sample_ms_ >= 0.0 &&
      now_ms - last_sample_ms_ < cfg_.sample_interval_ms) {
    return;
  }
  sample_now();
}

void Telemetry::sample_now() {
  std::lock_guard<std::mutex> lock(mu_);
  TelemetrySnapshot snap;
  snap.seq = next_seq_++;
  snap.host_ms = elapsed_ms();
  const f64 dt_ms =
      last_sample_ms_ >= 0.0 ? snap.host_ms - last_sample_ms_ : snap.host_ms;
  last_sample_ms_ = snap.host_ms;

  for (const auto& [name, c] : counters_) {
    snap.scalars.push_back({name, static_cast<f64>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    snap.scalars.push_back({name, g->value()});
  }
  for (const auto& p : providers_) p(snap.scalars, dt_ms);
  // The Device provider reports the modeled clock as a scalar; lift it
  // into the snapshot's timestamp so exporters can plot on the modeled
  // timeline without knowing provider internals.
  for (const auto& s : snap.scalars) {
    if (s.name == "device.modeled_ms") snap.modeled_ms = s.value;
  }

  for (const auto& [name, h] : hists_) {
    const LatencyHistogram::Snapshot hs = h->snapshot();
    HistogramSample out;
    out.name = name;
    out.count = hs.count;
    out.sum_ms = static_cast<f64>(hs.sum_ticks) / 1e6;
    out.min_ms = static_cast<f64>(hs.min_ticks) / 1e6;
    out.max_ms = static_cast<f64>(hs.max_ticks) / 1e6;
    out.p50_ms = hs.percentile_ms(50.0);
    out.p95_ms = hs.percentile_ms(95.0);
    out.p99_ms = hs.percentile_ms(99.0);
    out.p999_ms = hs.percentile_ms(99.9);
    out.p50_trace = hs.percentile_exemplar(50.0);
    out.p95_trace = hs.percentile_exemplar(95.0);
    out.p99_trace = hs.percentile_exemplar(99.0);
    out.p999_trace = hs.percentile_exemplar(99.9);
    if (hs.count > 0) {
      const u32 mb = LatencyHistogram::bucket_index(hs.max_ticks);
      out.max_trace = mb < hs.exemplars.size() ? hs.exemplars[mb] : 0;
    }
    snap.histograms.push_back(std::move(out));
  }

  ring_.push_back(std::move(snap));
  while (ring_.size() > cfg_.ring_capacity) {
    ring_.pop_front();
    ++dropped_;
  }
}

// ---------------------------------------------------------------------------
// TelemetryRequestScope
// ---------------------------------------------------------------------------

TelemetryRequestScope::TelemetryRequestScope(Device& dev)
    : t_(dev.telemetry()) {
  if (t_ != nullptr) t0_ = std::chrono::steady_clock::now();
}

void TelemetryRequestScope::finish(f64 modeled_ms, u64 exemplar_trace) {
  if (t_ == nullptr) return;
  const f64 host_ms = std::chrono::duration<f64, std::milli>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
  t_->histogram("request.host_ms").record_ms(host_ms, exemplar_trace);
  t_->histogram("request.modeled_ms").record_ms(modeled_ms, exemplar_trace);
  t_->counter("requests").add(1);
  t_->tick();
}

// ---------------------------------------------------------------------------
// JSONL timeline export
// ---------------------------------------------------------------------------

void write_timeline_jsonl(std::ostream& os, const Telemetry& t,
                          std::string_view source, std::string_view device) {
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("telemetry", "timeline");
    w.field("schema_version", kReportSchemaVersion);
    w.field("source", source);
    w.field("device", device);
    w.field("sample_interval_ms", t.config().sample_interval_ms);
    w.field("snapshots", static_cast<u64>(t.timeline().size()));
    w.field("dropped", t.dropped());
    w.end_object();
  }
  os << '\n';
  for (const TelemetrySnapshot& s : t.timeline()) {
    JsonWriter w(os);
    w.begin_object();
    w.field("seq", s.seq);
    w.field("host_ms", s.host_ms);
    w.field("modeled_ms", s.modeled_ms);
    w.key("scalars").begin_object();
    for (const ScalarSample& sc : s.scalars) w.field(sc.name, sc.value);
    w.end_object();
    w.key("histograms").begin_object();
    for (const HistogramSample& h : s.histograms) {
      w.key(h.name).begin_object();
      w.field("count", h.count);
      w.field("sum_ms", h.sum_ms);
      w.field("min_ms", h.min_ms);
      w.field("max_ms", h.max_ms);
      w.field("p50_ms", h.p50_ms);
      w.field("p95_ms", h.p95_ms);
      w.field("p99_ms", h.p99_ms);
      w.field("p999_ms", h.p999_ms);
      // Exemplar trace ids, only when a traced request landed in the
      // percentile's bucket (keeps untraced timelines byte-stable).
      if (h.p50_trace != 0) w.field("p50_trace", h.p50_trace);
      if (h.p95_trace != 0) w.field("p95_trace", h.p95_trace);
      if (h.p99_trace != 0) w.field("p99_trace", h.p99_trace);
      if (h.p999_trace != 0) w.field("p999_trace", h.p999_trace);
      if (h.max_trace != 0) w.field("max_trace", h.max_trace);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    os << '\n';
  }
}

bool write_timeline_jsonl_file(const std::string& path, const Telemetry& t,
                               std::string_view source,
                               std::string_view device) {
  std::ofstream os(path);
  if (!os) return false;
  write_timeline_jsonl(os, t, source, device);
  return os.good();
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

namespace {

std::string prom_name(std::string_view name) {
  std::string out = "ms_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void write_prometheus(std::ostream& os, const TelemetrySnapshot& snap) {
  os << "# telemetry snapshot seq=" << snap.seq << " host_ms=" << snap.host_ms
     << " modeled_ms=" << snap.modeled_ms << "\n";
  if (!snap.histograms.empty()) {
    os << "# latency percentiles (ms):\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf), "# %-24s %8s %10s %10s %10s %10s %10s\n",
                  "histogram", "count", "p50", "p95", "p99", "p99.9", "max");
    os << buf;
    for (const HistogramSample& h : snap.histograms) {
      std::snprintf(buf, sizeof(buf),
                    "# %-24s %8llu %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    h.p50_ms, h.p95_ms, h.p99_ms, h.p999_ms, h.max_ms);
      os << buf;
    }
  }
  for (const ScalarSample& s : snap.scalars) {
    const std::string n = prom_name(s.name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << s.value << '\n';
  }
  for (const HistogramSample& h : snap.histograms) {
    const std::string n = prom_name(h.name);
    // OpenMetrics-style exemplar suffix linking the quantile's bucket to
    // a concrete traced request (omitted when no trace landed there).
    const auto ex = [](u64 trace) {
      return trace != 0
                 ? " # {trace_id=\"" + std::to_string(trace) + "\"}"
                 : std::string();
    };
    os << "# TYPE " << n << " summary\n";
    os << n << "{quantile=\"0.5\"} " << h.p50_ms << ex(h.p50_trace) << '\n';
    os << n << "{quantile=\"0.95\"} " << h.p95_ms << ex(h.p95_trace) << '\n';
    os << n << "{quantile=\"0.99\"} " << h.p99_ms << ex(h.p99_trace) << '\n';
    os << n << "{quantile=\"0.999\"} " << h.p999_ms << ex(h.p999_trace)
       << '\n';
    os << n << "_sum " << h.sum_ms << '\n';
    os << n << "_count " << h.count << '\n';
  }
}

}  // namespace ms::sim
