// Fixed-size host worker pool for the parallel block scheduler.
//
// One pool is owned lazily by each Device and reused across kernel
// launches (spawning threads per launch would dominate small kernels).
// The only job shape it runs is the one the scheduler needs: execute
// `body(item)` for every item of [begin, end), handing items to workers
// in *ascending order* (a shared atomic cursor).  Ascending dispatch is
// load-bearing for deterministic execution: Device::run_items relies on
// the invariant that the lowest-numbered incomplete item is always
// already running on some worker, so a worker blocked in the
// global-atomic fence (waiting for every earlier item to finish) can
// never deadlock the pool.
//
// Worker threads never touch Device state directly; all counter routing
// happens through the thread-local CounterShard set up by the caller's
// `body` (see shard.hpp).  Exceptions must be contained by `body` itself
// (run_items captures them per item); a throw escaping `body` terminates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/types.hpp"

namespace ms::sim {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).  Workers idle on a condition
  /// variable between jobs.
  explicit ThreadPool(u32 threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  u32 size() const { return static_cast<u32>(workers_.size()); }

  // --- telemetry (sim/telemetry.hpp; read-only over scheduling state) ---

  /// Cumulative per-worker execution stats.  Busy time is only accumulated
  /// while timing is enabled (two steady_clock reads per item otherwise
  /// avoided -- the pool must stay invisible to untelemetered runs).
  struct WorkerStats {
    f64 busy_ms = 0.0;    ///< wall-clock spent inside item bodies
    u64 items = 0;        ///< items this worker executed
  };
  void set_timing_enabled(bool on) {
    timing_enabled_.store(on, std::memory_order_relaxed);
  }
  bool timing_enabled() const {
    return timing_enabled_.load(std::memory_order_relaxed);
  }
  std::vector<WorkerStats> worker_stats() const;

  /// Items of the current job not yet completed (unclaimed + in flight);
  /// 0 between jobs.  The telemetry sampler's queue-depth gauge.
  u64 queue_depth() const;

  /// Run body(item) for every item of [begin, end) across the workers and
  /// block until all items completed.  Items are claimed in ascending
  /// order.  One job at a time (the caller is the Device's launch path,
  /// which is single-threaded by construction).
  void run(u64 begin, u64 end, const std::function<void(u64)>& body);

  /// Number of hardware threads, with a floor of 1 (hardware_concurrency
  /// may report 0 on exotic platforms).
  static u32 hardware_threads();

 private:
  void worker_loop(u32 worker_index);

  /// Per-worker accumulators, cache-line separated so telemetry updates
  /// never bounce lines between workers.
  struct alignas(64) WorkerCell {
    std::atomic<u64> busy_ns{0};
    std::atomic<u64> items{0};
  };

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a job
  std::condition_variable done_cv_;   // run() waits here for completion
  const std::function<void(u64)>* body_ = nullptr;
  u64 next_ = 0;
  u64 end_ = 0;
  u64 in_flight_ = 0;  // items claimed but not yet finished
  u64 job_seq_ = 0;    // bumped per run() so idle workers wake exactly once
  bool shutdown_ = false;
  std::atomic<bool> timing_enabled_{false};
  std::unique_ptr<WorkerCell[]> cells_;  // one per worker, fixed at spawn
  std::vector<std::thread> workers_;
};

}  // namespace ms::sim
