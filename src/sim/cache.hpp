// Set-associative L2 cache model.
//
// The GPU's L2 is what makes fine-grained scatters survivable: when many
// warps append to the same per-bucket output cursors, their partial 32-byte
// sectors coalesce in L2 and reach DRAM once.  The multisplit paper's
// central trade-off -- local reordering vs. scattered writes -- only
// reproduces faithfully if that effect exists, so we model it: an LRU
// set-associative cache of 32-byte sectors.  Reads miss once per sector of
// streamed data; writes to a sector still resident in L2 are free at the
// DRAM level (write combining), and a dirty sector costs one DRAM
// transaction when evicted or flushed.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.hpp"

namespace ms::sim {

class ChaosEngine;

class SectorCache {
 public:
  struct AccessResult {
    bool hit = false;
    /// DRAM transactions caused by this access (miss fill and/or dirty
    /// eviction writeback).
    u32 dram_read_tx = 0;
    u32 dram_write_tx = 0;
  };

  /// `capacity_bytes` / `sector_bytes` sectors arranged in `ways`-way sets.
  SectorCache(u32 capacity_bytes, u32 ways, u32 sector_bytes);

  /// Read one sector (identified by a device-wide sector index).  Defined
  /// inline: every warp memory instruction funnels its sectors through here,
  /// making this the single hottest call in the simulator.
  AccessResult read(u64 sector) {
    const u64 set = sector % num_sets_;
    AccessResult r;
    if (Line* line = find(set, sector)) {
      r.hit = true;
      line->lru = ++tick_;
      return r;
    }
    Line* line = victim(set);
    if (line->tag != kInvalid && line->dirty) {
      r.dram_write_tx += 1;
      note_writeback(line->tag);
    }
    line->tag = sector;
    line->dirty = false;
    line->lru = ++tick_;
    r.dram_read_tx += 1;  // miss fill
    return r;
  }

  /// Write one sector.  Write misses allocate without a fill (the common
  /// GPU policy for full-sector streaming stores); the DRAM cost is paid at
  /// eviction/flush time as a writeback.
  AccessResult write(u64 sector) {
    const u64 set = sector % num_sets_;
    AccessResult r;
    if (Line* line = find(set, sector)) {
      r.hit = true;
      line->dirty = true;
      line->lru = ++tick_;
      return r;
    }
    Line* line = victim(set);
    if (line->tag != kInvalid && line->dirty) {
      r.dram_write_tx += 1;
      note_writeback(line->tag);
    }
    line->tag = sector;
    line->dirty = true;  // allocate-without-fill: cost paid at writeback
    line->lru = ++tick_;
    return r;
  }

  /// Write back all dirty lines; returns the number of DRAM write
  /// transactions.  Called at the end of each kernel: a kernel's stores
  /// must be globally visible before the next kernel launches.
  u64 flush_dirty();

  /// Drop everything (also clears statistics' working set).
  void reset();

  u32 sector_bytes() const { return sector_bytes_; }
  u32 num_sets() const { return num_sets_; }
  u32 ways() const { return ways_; }

  /// Attach/detach the fault-injection engine (Device::enable_chaos).
  /// When set, every dirty-sector writeback (eviction or flush) gives the
  /// engine a chance to corrupt the written-back range.  The writeback
  /// stream is identical serial vs replayed-parallel (PR 4), so injections
  /// here stay deterministic at any thread count.
  void set_chaos(ChaosEngine* chaos) { chaos_ = chaos; }

 private:
  /// Out of line: needs the ChaosEngine definition, and only runs on dirty
  /// evictions/flushes (off the resident-hit fast path).
  void note_writeback(u64 sector);
  struct Line {
    u64 tag = kInvalid;
    u64 lru = 0;
    bool dirty = false;
  };
  static constexpr u64 kInvalid = ~u64{0};

  Line* find(u64 set, u64 tag) {
    Line* base = &lines_[set * ways_];
    for (u32 w = 0; w < ways_; ++w) {
      if (base[w].tag == tag) return &base[w];
    }
    return nullptr;
  }

  Line* victim(u64 set) {
    Line* base = &lines_[set * ways_];
    Line* best = base;
    for (u32 w = 1; w < ways_; ++w) {
      if (base[w].tag == kInvalid) return &base[w];
      if (base[w].lru < best->lru) best = &base[w];
    }
    return best;
  }

  u32 ways_;
  u32 sector_bytes_;
  u32 num_sets_;
  u64 tick_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
  ChaosEngine* chaos_ = nullptr;
};

}  // namespace ms::sim
