#include "sim/profile.hpp"

namespace ms::sim {

DeviceProfile DeviceProfile::tesla_k40c() {
  DeviceProfile p;
  p.name = "Tesla K40c (Kepler)";
  p.mem_bandwidth_gbps = 288.0;
  // 15 SMX x 745 MHz, with modest dual-issue: ~16 G warp-instructions/s.
  p.issue_rate_gips = 16.0;
  p.kernel_launch_us = 5.0;
  p.transaction_bytes = 32;
  p.l2_bytes = 1536 * 1024;
  p.l2_ways = 16;
  p.warp_overhead_slots = 12;
  p.smem_slot_weight = 0.5;
  // Extra cost per non-coalesced line: replays occupy LSU slots and MSHRs
  // and their latency is only partially hidden, so a fragmented access
  // costs more than its line count alone.
  p.scatter_issue_penalty = 1.5;
  // Paper Table 4/Figure 8: warp-level MS leads through m ~ 6 on the K40c,
  // block-level through the shared-memory histogram limit.
  p.auto_warp_level_max_m = 6;
  p.auto_block_level_max_m = 256;
  return p;
}

DeviceProfile DeviceProfile::gtx_750_ti() {
  DeviceProfile p;
  p.name = "GeForce GTX 750 Ti (Maxwell)";
  p.mem_bandwidth_gbps = 86.4;
  // 5 SMM x 1020 MHz: ~6.4 G warp-instructions/s with dual-issue.
  p.issue_rate_gips = 6.4;
  p.kernel_launch_us = 5.0;
  p.transaction_bytes = 32;
  p.l2_bytes = 2048 * 1024;
  p.l2_ways = 16;
  p.warp_overhead_slots = 12;
  p.smem_slot_weight = 0.5;
  // Fewer resident warps and a shallower memory pipeline: scattered access
  // latency is hidden less well than on the K40c (paper Section 6.3).
  p.scatter_issue_penalty = 2.0;
  p.max_resident_blocks = 32;
  // Maxwell punishes the warp-level method's scattered writes sooner, so
  // the block-level crossover arrives at smaller m (paper Section 6.3).
  p.auto_warp_level_max_m = 4;
  p.auto_block_level_max_m = 256;
  return p;
}

DeviceProfile DeviceProfile::speed_of_light() {
  DeviceProfile p;
  p.name = "Speed of light (K40c bandwidth, free compute)";
  p.mem_bandwidth_gbps = 288.0;
  p.issue_rate_gips = 1e9;  // compute takes no time
  p.kernel_launch_us = 0.0;
  p.transaction_bytes = 32;
  p.l2_bytes = 1536 * 1024;
  p.l2_ways = 16;
  p.warp_overhead_slots = 0;
  p.smem_slot_weight = 0.0;
  p.scatter_issue_penalty = 0.0;
  return p;
}

}  // namespace ms::sim
