// Serving telemetry: a low-overhead time-series metrics registry.
//
// The snapshot-style reports (metrics.hpp) answer "what did this run cost
// in total"; they cannot show how a *serving* run evolves -- the allocator
// reuse ramp, the L2 hit rate climbing as a plan re-executes, latency
// percentiles over millions of small requests.  This header adds the
// over-time layer, in the spirit of MGSim's simulator-wide metric
// collection API (PAPERS.md, arXiv:1811.02884):
//
//   1. Instruments -- monotonic Counter, last-value Gauge, and a
//      log-bucketed HDR-style LatencyHistogram with exact-bucket
//      p50/p95/p99/p99.9 extraction.  All updates are relaxed atomics, so
//      worker threads may record without taking locks.
//   2. Telemetry (the registry) -- owns named instruments plus provider
//      callbacks (the Device registers one that polls the allocator, the
//      L2 counters and the threadpool), and a sampler: tick() snapshots
//      every instrument into an in-memory time-series ring once the
//      configured host-time interval has elapsed (interval 0 = every
//      tick).  The ring is bounded; the oldest snapshots are dropped.
//   3. Exports -- a schema-versioned JSONL timeline (one snapshot per
//      line; bench --telemetry), Prometheus text exposition of one
//      snapshot (`ms_cli top`), and counter tracks merged into the Chrome
//      trace (trace.cpp reads the ring and plots it on the modeled
//      timeline).
//
// Determinism contract (DESIGN.md §11): telemetry only ever *reads*
// modeled state.  Enabling it changes no counter, no L2 access, no
// allocator decision and therefore no modeled cost -- the tolerance-0
// baseline gates hold with telemetry on and off, at any thread count.
// Snapshot *timing* is host wall-clock and is not deterministic; snapshot
// *modeled* fields are.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace ms::sim {

struct TelemetryConfig {
  /// Minimum host milliseconds between ring snapshots taken by tick();
  /// 0 samples on every tick (one snapshot per kernel / request).
  f64 sample_interval_ms = 0.0;
  /// Snapshots kept in the in-memory ring; the oldest are dropped beyond
  /// this (dropped() reports how many).
  u64 ring_capacity = 4096;
};

/// Monotonic event counter.
class Counter {
 public:
  void add(u64 d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Last-value-wins instantaneous gauge.
class Gauge {
 public:
  void set(f64 v) { v_.store(v, std::memory_order_relaxed); }
  f64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<f64> v_{0.0};
};

/// Log-bucketed latency histogram (the HdrHistogram idea, sized for
/// telemetry): values are nanosecond ticks; each power-of-two octave is
/// split into 2^kSubBits linear sub-buckets, bounding the relative
/// quantization error at 1/2^kSubBits (3.125%) while covering the full
/// u64 range in ~2K fixed buckets.  Recording is a single relaxed atomic
/// increment; percentiles are extracted from an immutable Snapshot by a
/// cumulative walk, returning the upper bound of the bucket holding the
/// requested rank (clamped to the exact recorded maximum).
class LatencyHistogram {
 public:
  static constexpr u32 kSubBits = 5;
  static constexpr u32 kSubBuckets = 1u << kSubBits;
  /// Linear region [0, 2^kSubBits) one bucket per value, then one group
  /// of kSubBuckets per octave for exponents kSubBits..63.
  static constexpr u32 kBucketCount = kSubBuckets * (64 - kSubBits + 1);

  /// Bucket holding `ticks` (exact in the linear region, log-linear above).
  static u32 bucket_index(u64 ticks) {
    if (ticks < kSubBuckets) return static_cast<u32>(ticks);
    const u32 h = 63 - static_cast<u32>(std::countl_zero(ticks));
    const u32 sub = static_cast<u32>((ticks >> (h - kSubBits)) - kSubBuckets);
    return kSubBuckets * (h - kSubBits + 1) + sub;
  }
  /// Inclusive value range [bucket_lower, bucket_upper] of a bucket.
  static u64 bucket_lower(u32 idx) {
    if (idx < kSubBuckets) return idx;
    const u32 h = kSubBits + idx / kSubBuckets - 1;
    const u64 sub = idx % kSubBuckets;
    return (u64{1} << h) + (sub << (h - kSubBits));
  }
  static u64 bucket_upper(u32 idx) {
    if (idx < kSubBuckets) return idx;
    const u32 h = kSubBits + idx / kSubBuckets - 1;
    return bucket_lower(idx) + (u64{1} << (h - kSubBits)) - 1;
  }

  /// Record one observation.  A nonzero `exemplar_trace` (a span trace
  /// id; they are 1-based, so 0 means "none") is stored as the bucket's
  /// exemplar, last-write-wins -- linking the percentile a bucket feeds
  /// back to one concrete traced request.
  void record_ticks(u64 ticks, u64 exemplar_trace = 0);
  /// Convenience: milliseconds -> nanosecond ticks (rounded).
  void record_ms(f64 ms, u64 exemplar_trace = 0) {
    record_ticks(ms <= 0.0 ? 0 : static_cast<u64>(ms * 1e6 + 0.5),
                 exemplar_trace);
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }

  /// Immutable copy of the histogram state; all percentile math runs on
  /// snapshots so concurrent recording cannot skew a walk mid-read.
  struct Snapshot {
    u64 count = 0;
    u64 sum_ticks = 0;
    u64 min_ticks = 0;  // 0 when empty
    u64 max_ticks = 0;
    std::vector<u64> buckets;    // kBucketCount entries
    std::vector<u64> exemplars;  // kBucketCount entries; 0 = none

    /// Value at percentile p (0..100]: the upper bound of the bucket
    /// containing rank ceil(p/100 * count), clamped to the recorded
    /// maximum.  0 when empty.
    u64 percentile_ticks(f64 p) const;
    f64 percentile_ms(f64 p) const {
      return static_cast<f64>(percentile_ticks(p)) / 1e6;
    }
    /// Index of the bucket holding percentile p's rank (kBucketCount when
    /// the histogram is empty).
    u32 percentile_bucket(f64 p) const;
    /// Exemplar trace id of the percentile's bucket (0 when none was
    /// recorded there, or when the histogram is empty).
    u64 percentile_exemplar(f64 p) const {
      const u32 b = percentile_bucket(p);
      return b < exemplars.size() ? exemplars[b] : 0;
    }
  };
  Snapshot snapshot() const;

 private:
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> min_{~u64{0}};
  std::atomic<u64> max_{0};
  std::array<std::atomic<u64>, kBucketCount> buckets_{};
  /// Per-bucket exemplar trace id (0 = none), relaxed last-write-wins:
  /// deterministic on the serial request path, best-effort under
  /// concurrent recording -- exemplars are a debugging link, not a
  /// compared metric.
  std::array<std::atomic<u64>, kBucketCount> exemplars_{};
};

/// One sampled scalar (counter, gauge, or provider-computed value).
struct ScalarSample {
  std::string name;
  f64 value = 0.0;
};

/// One sampled histogram: the percentile digest, not the buckets (the
/// ring stays small; full buckets remain available on the live
/// instrument).  Times in milliseconds.
struct HistogramSample {
  std::string name;
  u64 count = 0;
  f64 sum_ms = 0.0;
  f64 min_ms = 0.0;
  f64 max_ms = 0.0;
  f64 p50_ms = 0.0;
  f64 p95_ms = 0.0;
  f64 p99_ms = 0.0;
  f64 p999_ms = 0.0;
  /// Exemplar trace ids of the buckets the percentiles (and max) fall
  /// in; 0 = no traced request landed there (e.g. span tracing off).
  u64 p50_trace = 0;
  u64 p95_trace = 0;
  u64 p99_trace = 0;
  u64 p999_trace = 0;
  u64 max_trace = 0;
};

/// One entry of the time-series ring.
struct TelemetrySnapshot {
  u64 seq = 0;        // monotonically increasing, survives ring eviction
  f64 host_ms = 0.0;  // host wall-clock since the registry was created
  /// Device-lifetime modeled milliseconds at sample time (set by the
  /// Device's provider; stays 0 for standalone registries).  This is the
  /// timestamp the Chrome-trace export plots counter tracks at.
  f64 modeled_ms = 0.0;
  std::vector<ScalarSample> scalars;
  std::vector<HistogramSample> histograms;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig cfg = {});

  /// Named instrument registration: the first call creates, later calls
  /// return the same instrument.  References stay valid for the registry's
  /// lifetime.  Safe from any thread.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Provider callback polled at snapshot time, appending scalars the
  /// registry cannot own itself (allocator stats, L2 interval rates, pool
  /// state).  `dt_ms` is the host interval since the previous snapshot
  /// (the full elapsed time for the first).
  using Provider =
      std::function<void(std::vector<ScalarSample>& out, f64 dt_ms)>;
  void add_provider(Provider p);

  /// Take a snapshot if the configured interval elapsed since the last
  /// one.  Cheap when it hasn't (one steady_clock read).
  void tick();
  /// Take a snapshot unconditionally (the "final state" sample exporters
  /// want before writing a timeline).
  void sample_now();

  const TelemetryConfig& config() const { return cfg_; }
  const std::deque<TelemetrySnapshot>& timeline() const { return ring_; }
  const TelemetrySnapshot* latest() const {
    return ring_.empty() ? nullptr : &ring_.back();
  }
  /// Snapshots evicted from the ring so far (0 = the timeline is complete).
  u64 dropped() const { return dropped_; }
  f64 elapsed_ms() const;

 private:
  TelemetryConfig cfg_;
  std::chrono::steady_clock::time_point start_;
  f64 last_sample_ms_ = -1.0;  // host_ms of the last snapshot, -1 = none
  u64 next_seq_ = 0;
  u64 dropped_ = 0;
  mutable std::mutex mu_;  // guards instrument registration
  // Registration order is export order; unique_ptr keeps references
  // stable across vector growth.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<LatencyHistogram>>>
      hists_;
  std::vector<Provider> providers_;
  std::deque<TelemetrySnapshot> ring_;
};

/// RAII request bracket for the plan executor: construction notes the
/// host start time when the device has telemetry enabled (no-op
/// otherwise); finish() records the request's host latency and modeled
/// latency into the "request.host_ms" / "request.modeled_ms" histograms,
/// bumps the "requests" counter and ticks the sampler.
class Device;
class TelemetryRequestScope {
 public:
  explicit TelemetryRequestScope(Device& dev);
  /// `exemplar_trace`: the request's span trace id (0 = not traced),
  /// attached to the latency samples as their histogram-bucket exemplar.
  void finish(f64 modeled_ms, u64 exemplar_trace = 0);

 private:
  Telemetry* t_ = nullptr;
  std::chrono::steady_clock::time_point t0_;
};

/// Write the whole timeline as schema-versioned JSONL: a header object
/// line (schema_version, source, device, interval, ring stats), then one
/// object per snapshot in ring order.
void write_timeline_jsonl(std::ostream& os, const Telemetry& t,
                          std::string_view source, std::string_view device);
bool write_timeline_jsonl_file(const std::string& path, const Telemetry& t,
                               std::string_view source,
                               std::string_view device);

/// Prometheus text exposition of one snapshot: scalars as gauges,
/// histograms as summaries (quantile-labeled series plus _sum/_count).
/// Names are sanitized ("allocator.bytes_live" -> ms_allocator_bytes_live)
/// and a human-readable percentile table precedes the series as # comment
/// lines, which the exposition format permits.
void write_prometheus(std::ostream& os, const TelemetrySnapshot& snap);

}  // namespace ms::sim
