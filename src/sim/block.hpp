// Block execution context: NW warps, a shared-memory arena, and barriers.
//
// Block kernels are written as explicit barrier-separated phases:
//
//   launch_blocks(dev, "k", nblocks, NW, [&](Block& blk) {
//     auto h = blk.shared<u32>(m * blk.num_warps());
//     blk.for_each_warp([&](Warp& w) { /* phase 1 */ });
//     blk.sync();
//     blk.for_each_warp([&](Warp& w) { /* phase 2 */ });
//   });
//
// Running each warp of a phase to completion before the barrier is
// semantically identical to lockstep execution with __syncthreads(), because
// no intra-phase communication between warps is allowed (the same contract
// real warp-synchronous CUDA code relies on).  The sanitizer's racecheck
// tool enforces that contract: each sync() advances the block's barrier
// epoch, and a warp touching a shared word that a *different* warp accessed
// in the same epoch is reported as a RAW/WAW/WAR hazard (see sanitizer.hpp).
//
// Shared memory accesses are charged with bank-conflict accounting: shared
// memory has 32 four-byte banks; a warp access is serialized once per
// distinct word it needs from the same bank (broadcasts of one word are
// free, as on real hardware).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/warp.hpp"

namespace ms::sim {

class Block;

/// A typed window into the block's shared-memory arena.  Knows its byte
/// offset within the arena so bank numbers can be computed.  The element
/// pointer is resolved through the arena on every access: a later
/// shared-memory allocation may grow (reallocate) the arena, and a stale
/// direct pointer would dangle.
///
/// Arrays may carry a label (used by sanitizer fault reports); unlabeled
/// arrays are identified by their byte offset within the arena.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(Block* block, std::vector<std::byte>* arena, u32 size,
              u32 byte_offset, std::string label)
      : block_(block),
        arena_(arena),
        size_(size),
        byte_offset_(byte_offset),
        label_(std::move(label)) {}

  u32 size() const { return size_; }
  u32 byte_offset() const { return byte_offset_; }

  /// Report label: the explicit label, or "smem+<offset>".
  std::string object() const {
    return label_.empty() ? "smem+" + std::to_string(byte_offset_) : label_;
  }

  /// Direct (uncharged) element access, for host-side setup and checking in
  /// tests.  Bounds-checked (SimError on violation); the mutable overload
  /// counts as initialization of the element's words.  Defined after Block
  /// (they need its sanitizer state).
  T& raw(u32 i);
  const T& raw(u32 i) const;

  /// Benign-race annotation (the TSan ANNOTATE_BENIGN_RACE idiom): declares
  /// that cross-warp accesses to this array within a barrier epoch are
  /// ordered by construction -- e.g. slots claimed exclusively through a
  /// shared atomic, plus the simulator's serialized warp execution between
  /// barriers -- and suppresses racecheck for its words.  Initcheck and
  /// bounds checks still apply.  Use sparingly and justify at the call
  /// site; an unannotated hazard is a bug.
  SharedArray& annotate_warp_serialized() {
    racecheck_exempt_ = true;
    return *this;
  }

 private:
  friend class Warp;
  friend class Block;

  T* data() const {
    return reinterpret_cast<T*>(arena_->data() + byte_offset_);
  }

  /// First 4-byte arena word of element i / words an element spans (the
  /// sanitizer shadows shared memory at bank-word granularity).
  u32 word0(u32 i) const {
    return (byte_offset_ + i * static_cast<u32>(sizeof(T))) / 4;
  }
  static constexpr u32 words_per_elem() {
    return sizeof(T) < 4 ? 1u : static_cast<u32>(sizeof(T)) / 4;
  }

  void host_bounds_check(u32 i) const;

  Block* block_ = nullptr;
  std::vector<std::byte>* arena_ = nullptr;
  u32 size_ = 0;
  u32 byte_offset_ = 0;
  bool racecheck_exempt_ = false;
  std::string label_;
};

class Block {
 public:
  Block(Device& dev, u32 block_id, u32 num_warps)
      : dev_(&dev),
        block_id_(block_id),
        arena_(dev.profile().smem_bytes_per_block) {
    if (dev.sanitizer().smem_tools()) {
      shadow_ = std::make_unique<SmemShadow>();
      shadow_->resize(shadow_words(static_cast<u32>(arena_.size())));
    }
    warps_.reserve(num_warps);
    for (u32 w = 0; w < num_warps; ++w) {
      warps_.emplace_back(dev, static_cast<u64>(block_id) * num_warps + w, w,
                          block_id);
    }
  }

  Device& device() const { return *dev_; }
  u32 block_id() const { return block_id_; }
  u32 num_warps() const { return static_cast<u32>(warps_.size()); }
  u32 num_threads() const { return num_warps() * kWarpSize; }

  /// Allocate `count` elements of shared memory (16-byte aligned, as CUDA
  /// does for aggregate shared declarations).  Usage beyond the device's
  /// 48 kB per-block capacity is permitted but recorded: the paper's
  /// large-m discussion (Section 6.4) identifies shared-memory pressure as
  /// the limiting factor, and tests assert on `peak_smem_bytes()` instead
  /// of hard-failing mid-experiment.  With the sanitizer armed the first
  /// overcommitting allocation is additionally reported as a warning
  /// naming the allocating kernel.
  template <typename T>
  SharedArray<T> shared(u32 count, std::string label = {}) {
    const u32 align = 16;
    used_ = (used_ + align - 1) / align * align;
    const u32 offset = used_;
    used_ += count * static_cast<u32>(sizeof(T));
    peak_ = std::max(peak_, used_);
    dev_->note_smem_usage(peak_);
    if (used_ > arena_.size()) {
      arena_.resize(used_);
      if (shadow_ != nullptr) shadow_->resize(shadow_words(used_));
    }
    const u32 capacity = dev_->profile().smem_bytes_per_block;
    if (used_ > capacity && !overcommit_warned_ && dev_->sanitizer().any()) {
      overcommit_warned_ = true;
      FaultContext ctx;
      ctx.kind = FaultKind::kSmemOvercommit;
      ctx.severity = FaultSeverity::kWarning;
      ctx.kernel = dev_->current_kernel_name();
      ctx.object = label.empty() ? "smem+" + std::to_string(offset) : label;
      ctx.index = used_;
      ctx.extent = capacity;
      ctx.block = block_id_;
      ctx.detail =
          "shared-memory allocation exceeds the device's per-block capacity";
      dev_->sanitizer().report(std::move(ctx));
    }
    return SharedArray<T>(this, &arena_, count, offset, std::move(label));
  }

  u32 peak_smem_bytes() const { return peak_; }
  bool smem_overcommitted() const {
    return peak_ > dev_->profile().smem_bytes_per_block;
  }

  /// __syncthreads(): a barrier between phases.  Each of the block's warps
  /// pays the barrier overhead in issue slots.  Also advances the
  /// racecheck barrier epoch: accesses before and after a sync() can never
  /// conflict.
  void sync() {
    dev_->events().barriers += 1;
    dev_->events().issue_slots +=
        static_cast<u64>(num_warps()) * dev_->profile().barrier_overhead_slots;
    epoch_ += 1;
  }

  /// Current barrier epoch (starts at 1; 0 in the shadow means "never").
  u32 epoch() const { return epoch_; }

  Warp& warp(u32 w) { return warps_[w]; }

  template <typename F>
  void for_each_warp(F&& f) {
    for (u32 w = 0; w < warps_.size(); ++w) f(warps_[w]);
  }

  /// True when this block carries a shared-memory shadow (racecheck or
  /// initcheck armed at construction).  Lets the Warp smem instructions
  /// skip the hook call entirely on the common path.
  bool smem_shadow_armed() const { return shadow_ != nullptr; }

  /// Sanitizer hook for one lane's shared access covering the 4-byte arena
  /// words [word0, word0 + nwords).  Non-fatal: initcheck flags reads
  /// (including the read half of an atomic RMW) of never-written words;
  /// racecheck flags cross-warp access to the same word within one barrier
  /// epoch (atomic-vs-atomic is exempt, as on hardware).  No-op unless a
  /// shared-memory tool was armed when the block was constructed.
  /// `label`/`byte_offset` identify the array (the report label is only
  /// materialized when something fires).  `racecheck_exempt` carries the
  /// array's SharedArray::annotate_warp_serialized() annotation: hazard
  /// detection and epoch bookkeeping are skipped, initcheck is not.
  void smem_sanitize(u32 word0, u32 nwords, bool is_write, bool is_atomic,
                     u32 lane, u32 warp, u64 global_warp,
                     std::string_view label, u32 byte_offset, u64 elem,
                     u64 extent, bool racecheck_exempt = false) {
    if (shadow_ == nullptr) return;
    Sanitizer& san = dev_->sanitizer();
    SmemShadow& sh = *shadow_;
    const auto object = [&]() -> std::string {
      return label.empty() ? "smem+" + std::to_string(byte_offset)
                           : std::string(label);
    };
    for (u32 k = 0; k < nwords; ++k) {
      const u32 w = word0 + k;
      const bool reads = !is_write || is_atomic;
      if (reads && san.initcheck() && sh.valid[w] == 0) {
        sh.valid[w] = 1;  // report each stale word once
        FaultContext ctx = smem_fault(FaultKind::kUninitSharedRead, lane,
                                      warp, global_warp, object(), elem,
                                      extent);
        ctx.detail = is_atomic
                         ? "atomic read-modify-write of a shared word never "
                           "written since block start"
                         : "read of a shared word never written since block "
                           "start";
        san.report(std::move(ctx));
      }
      if (san.racecheck() && !racecheck_exempt) {
        const bool prior_write =
            sh.write_epoch[w] == epoch_ && sh.writer[w] != warp;
        const bool prior_read =
            sh.read_epoch[w] == epoch_ && sh.reader[w] != warp;
        const char* hazard = nullptr;
        u32 other = 0;
        if (is_write && prior_write &&
            !(is_atomic && sh.write_atomic[w] != 0)) {
          hazard = "WAW";
          other = sh.writer[w];
        } else if (is_write && prior_read) {
          hazard = "WAR";
          other = sh.reader[w];
        } else if (!is_write && prior_write) {
          hazard = "RAW";
          other = sh.writer[w];
        }
        if (hazard != nullptr) {
          FaultContext ctx = smem_fault(FaultKind::kRaceHazard, lane, warp,
                                        global_warp, object(), elem, extent);
          ctx.detail = std::string(hazard) + " hazard with warp " +
                       std::to_string(other) +
                       " of this block: no Block::sync() between the "
                       "conflicting shared accesses";
          san.report(std::move(ctx));
          // Retire the word's epoch state so one missing barrier does not
          // flood the stream with a hazard per subsequent access.
          sh.write_epoch[w] = 0;
          sh.read_epoch[w] = 0;
        }
      }
      if (is_write) sh.valid[w] = 1;
      if (racecheck_exempt) continue;
      if (is_write) {
        sh.write_epoch[w] = epoch_;
        sh.writer[w] = warp;
        sh.write_atomic[w] = is_atomic ? u8{1} : u8{0};
      } else {
        sh.read_epoch[w] = epoch_;
        sh.reader[w] = warp;
      }
    }
  }

 private:
  template <typename T>
  friend class SharedArray;

  static u32 shadow_words(u32 bytes) { return (bytes + 3) / 4; }

  FaultContext smem_fault(FaultKind kind, u32 lane, u32 warp, u64 global_warp,
                          std::string_view object, u64 elem,
                          u64 extent) const {
    FaultContext ctx;
    ctx.kind = kind;
    ctx.kernel = dev_->current_kernel_name();
    ctx.object = std::string(object);
    ctx.index = elem;
    ctx.extent = extent;
    ctx.lane = lane;
    ctx.warp_in_block = warp;
    ctx.block = block_id_;
    ctx.global_warp = global_warp;
    return ctx;
  }

  Device* dev_;
  u32 block_id_;
  u32 used_ = 0;
  u32 peak_ = 0;
  /// Racecheck barrier epoch; 0 is reserved for "never accessed".
  u32 epoch_ = 1;
  bool overcommit_warned_ = false;
  std::vector<std::byte> arena_;
  std::unique_ptr<SmemShadow> shadow_;
  std::vector<Warp> warps_;
};

// ---------------------------------------------------------------------------
// SharedArray member implementations that need Block's definition.
// ---------------------------------------------------------------------------

template <typename T>
void SharedArray<T>::host_bounds_check(u32 i) const {
  if (i < size_) return;
  FaultContext ctx;
  ctx.kind = FaultKind::kSharedOOB;
  ctx.kernel = "<host>";
  if (block_ != nullptr && !block_->device().current_kernel_name().empty()) {
    ctx.kernel = block_->device().current_kernel_name();
  }
  ctx.object = object();
  ctx.index = i;
  ctx.extent = size_;
  if (block_ != nullptr) ctx.block = block_->block_id();
  ctx.detail = "SharedArray::raw() index out of bounds";
  if (block_ != nullptr && block_->device().sanitizer().memcheck()) {
    block_->device().sanitizer().report(ctx);
  }
  throw SimError(std::move(ctx));
}

template <typename T>
T& SharedArray<T>::raw(u32 i) {
  host_bounds_check(i);
  if (block_ != nullptr && block_->shadow_ != nullptr) {
    for (u32 k = 0; k < words_per_elem(); ++k) {
      block_->shadow_->valid[word0(i) + k] = 1;
    }
  }
  return data()[i];
}

template <typename T>
const T& SharedArray<T>::raw(u32 i) const {
  host_bounds_check(i);
  return data()[i];
}

// ---------------------------------------------------------------------------
// Warp shared-memory member implementations (need SharedArray's layout).
// ---------------------------------------------------------------------------

namespace detail {
/// Bank-conflict degree of a warp-wide shared access: shared memory has 32
/// four-byte banks; the access replays once per extra distinct word mapped
/// to the same bank.  Returns the number of serialized passes (>= 1).
template <typename T>
inline u32 smem_conflict_degree(const SharedArray<T>& arr,
                                const LaneArray<u32>& idx, LaneMask active) {
  if (active == 0) return 0;
  if constexpr (sizeof(T) == 4) {
    // Fast path for one-word elements: a single bank-occupancy bitmap
    // detects the conflict-free case (every lane in its own bank) without
    // building the per-bank word lists.  Any collision -- real conflict or
    // broadcast -- falls through to the full scan, which tells them apart.
    u32 occupied = 0;
    bool clean = true;
    for_each_lane(active, [&](u32 lane) {
      const u32 word = arr.byte_offset() / 4 + idx[lane];
      const u32 bank_bit = 1u << (word % kWarpSize);
      clean &= (occupied & bank_bit) == 0;
      occupied |= bank_bit;
    });
    if (clean) return 1;
  }
  // words[b] collects the distinct word addresses lane accesses map to in
  // bank b.  sizeof(T) is 4 or 8 in this library; handle both by counting
  // each 4-byte word the lane touches.
  std::array<std::array<u32, kWarpSize>, kWarpSize> words;  // guarded by counts
  std::array<u32, kWarpSize> counts{};
  u32 degree = 1;
  for_each_lane(active, [&](u32 lane) {
    const u32 base_word = (arr.byte_offset() + idx[lane] * static_cast<u32>(sizeof(T))) / 4;
    const u32 nwords = static_cast<u32>(sizeof(T)) / 4;
    for (u32 k = 0; k < nwords; ++k) {
      const u32 word = base_word + k;
      const u32 bank = word % kWarpSize;
      bool dup = false;
      for (u32 j = 0; j < counts[bank]; ++j) {
        if (words[bank][j] == word) dup = true;
      }
      if (!dup) {
        words[bank][counts[bank]++] = word;
        degree = std::max(degree, counts[bank]);
      }
    }
  });
  return degree;
}
}  // namespace detail

template <typename T>
LaneArray<T> Warp::smem_read(const SharedArray<T>& arr,
                             const LaneArray<u32>& idx, LaneMask active) {
  LaneArray<T> out{};
  if (active == 0) return out;
  if (dev_->charging_off()) {
    // Tape replay: the recorded shard carries the access/conflict
    // accounting; only the data movement (and its safety check) remains.
    for_each_lane(active, [&](u32 lane) {
      if (idx[lane] >= arr.size_) {
        smem_oob_fail(idx[lane], arr.size_, arr.object(), lane,
                      "shared memory read");
      }
      out[lane] = arr.data()[idx[lane]];
    });
    return out;
  }
  count_simt(active);
  dev_->events().smem_accesses += 1;
  dev_->events().smem_slots += detail::smem_conflict_degree(arr, idx, active);
  const bool sanitize = arr.block_ != nullptr && arr.block_->smem_shadow_armed();
  for_each_lane(active, [&](u32 lane) {
    if (idx[lane] >= arr.size_) {
      smem_oob_fail(idx[lane], arr.size_, arr.object(), lane,
                    "shared memory read");
    }
    if (sanitize) {
      arr.block_->smem_sanitize(arr.word0(idx[lane]), arr.words_per_elem(),
                                /*is_write=*/false, /*is_atomic=*/false, lane,
                                warp_in_block_, global_warp_id_, arr.label_,
                                arr.byte_offset_, idx[lane], arr.size_,
                                arr.racecheck_exempt_);
    }
    out[lane] = arr.data()[idx[lane]];
  });
  return out;
}

template <typename T>
void Warp::smem_write(SharedArray<T>& arr, const LaneArray<u32>& idx,
                      const LaneArray<T>& v, LaneMask active) {
  if (active == 0) return;
  if (dev_->charging_off()) {
    for_each_lane(active, [&](u32 lane) {
      if (idx[lane] >= arr.size_) {
        smem_oob_fail(idx[lane], arr.size_, arr.object(), lane,
                      "shared memory write");
      }
      arr.data()[idx[lane]] = v[lane];
    });
    return;
  }
  count_simt(active);
  dev_->events().smem_accesses += 1;
  dev_->events().smem_slots += detail::smem_conflict_degree(arr, idx, active);
  const bool sanitize = arr.block_ != nullptr && arr.block_->smem_shadow_armed();
  for_each_lane(active, [&](u32 lane) {
    if (idx[lane] >= arr.size_) {
      smem_oob_fail(idx[lane], arr.size_, arr.object(), lane,
                    "shared memory write");
    }
    if (sanitize) {
      arr.block_->smem_sanitize(arr.word0(idx[lane]), arr.words_per_elem(),
                                /*is_write=*/true, /*is_atomic=*/false, lane,
                                warp_in_block_, global_warp_id_, arr.label_,
                                arr.byte_offset_, idx[lane], arr.size_,
                                arr.racecheck_exempt_);
    }
    arr.data()[idx[lane]] = v[lane];
  });
}

template <typename T>
LaneArray<T> Warp::smem_atomic_add(SharedArray<T>& arr,
                                   const LaneArray<u32>& idx,
                                   const LaneArray<T>& v, LaneMask active) {
  LaneArray<T> out{};
  if (active == 0) return out;
  if (dev_->charging_off()) {
    for_each_lane(active, [&](u32 lane) {
      if (idx[lane] >= arr.size_) {
        smem_oob_fail(idx[lane], arr.size_, arr.object(), lane,
                      "shared memory atomic");
      }
      out[lane] = arr.data()[idx[lane]];
      arr.data()[idx[lane]] += v[lane];
    });
    return out;
  }
  count_simt(active);
  dev_->events().smem_accesses += 1;
  // Shared atomics serialize on address collisions.
  const u32 n_active = static_cast<u32>(std::popcount(active));
  u32 distinct = 0;
  std::array<u32, kWarpSize> seen{};
  for_each_lane(active, [&](u32 lane) {
    bool dup = false;
    for (u32 k = 0; k < distinct; ++k) {
      if (seen[k] == idx[lane]) dup = true;
    }
    if (!dup) seen[distinct++] = idx[lane];
  });
  dev_->events().atomic_ops += n_active;
  dev_->events().atomic_conflicts += n_active - distinct;
  dev_->events().smem_slots += n_active;  // one pass per lane (serialized RMW)
  const bool sanitize = arr.block_ != nullptr && arr.block_->smem_shadow_armed();
  for_each_lane(active, [&](u32 lane) {
    if (idx[lane] >= arr.size_) {
      smem_oob_fail(idx[lane], arr.size_, arr.object(), lane,
                    "shared memory atomic");
    }
    if (sanitize) {
      arr.block_->smem_sanitize(arr.word0(idx[lane]), arr.words_per_elem(),
                                /*is_write=*/true, /*is_atomic=*/true, lane,
                                warp_in_block_, global_warp_id_, arr.label_,
                                arr.byte_offset_, idx[lane], arr.size_,
                                arr.racecheck_exempt_);
    }
    out[lane] = arr.data()[idx[lane]];
    arr.data()[idx[lane]] += v[lane];
  });
  return out;
}

}  // namespace ms::sim
