// Block execution context: NW warps, a shared-memory arena, and barriers.
//
// Block kernels are written as explicit barrier-separated phases:
//
//   launch_blocks(dev, "k", nblocks, NW, [&](Block& blk) {
//     auto h = blk.shared<u32>(m * blk.num_warps());
//     blk.for_each_warp([&](Warp& w) { /* phase 1 */ });
//     blk.sync();
//     blk.for_each_warp([&](Warp& w) { /* phase 2 */ });
//   });
//
// Running each warp of a phase to completion before the barrier is
// semantically identical to lockstep execution with __syncthreads(), because
// no intra-phase communication between warps is allowed (the same contract
// real warp-synchronous CUDA code relies on).
//
// Shared memory accesses are charged with bank-conflict accounting: shared
// memory has 32 four-byte banks; a warp access is serialized once per
// distinct word it needs from the same bank (broadcasts of one word are
// free, as on real hardware).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/warp.hpp"

namespace ms::sim {

/// A typed window into the block's shared-memory arena.  Knows its byte
/// offset within the arena so bank numbers can be computed.  The element
/// pointer is resolved through the arena on every access: a later
/// shared-memory allocation may grow (reallocate) the arena, and a stale
/// direct pointer would dangle.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(std::vector<std::byte>* arena, u32 size, u32 byte_offset)
      : arena_(arena), size_(size), byte_offset_(byte_offset) {}

  u32 size() const { return size_; }
  u32 byte_offset() const { return byte_offset_; }

  /// Direct (uncharged) element access, for host-side checking in tests.
  T& raw(u32 i) { return data()[i]; }
  const T& raw(u32 i) const { return data()[i]; }

 private:
  friend class Warp;

  T* data() const {
    return reinterpret_cast<T*>(arena_->data() + byte_offset_);
  }

  std::vector<std::byte>* arena_ = nullptr;
  u32 size_ = 0;
  u32 byte_offset_ = 0;
};

class Block {
 public:
  Block(Device& dev, u32 block_id, u32 num_warps)
      : dev_(&dev), block_id_(block_id), arena_(dev.profile().smem_bytes_per_block) {
    warps_.reserve(num_warps);
    for (u32 w = 0; w < num_warps; ++w) {
      warps_.emplace_back(dev, static_cast<u64>(block_id) * num_warps + w, w,
                          block_id);
    }
  }

  Device& device() const { return *dev_; }
  u32 block_id() const { return block_id_; }
  u32 num_warps() const { return static_cast<u32>(warps_.size()); }
  u32 num_threads() const { return num_warps() * kWarpSize; }

  /// Allocate `count` elements of shared memory (16-byte aligned, as CUDA
  /// does for aggregate shared declarations).  Usage beyond the device's
  /// 48 kB per-block capacity is permitted but recorded: the paper's
  /// large-m discussion (Section 6.4) identifies shared-memory pressure as
  /// the limiting factor, and tests assert on `peak_smem_bytes()` instead
  /// of hard-failing mid-experiment.
  template <typename T>
  SharedArray<T> shared(u32 count) {
    const u32 align = 16;
    used_ = (used_ + align - 1) / align * align;
    const u32 offset = used_;
    used_ += count * static_cast<u32>(sizeof(T));
    peak_ = std::max(peak_, used_);
    if (used_ > arena_.size()) arena_.resize(used_);
    return SharedArray<T>(&arena_, count, offset);
  }

  u32 peak_smem_bytes() const { return peak_; }
  bool smem_overcommitted() const {
    return peak_ > dev_->profile().smem_bytes_per_block;
  }

  /// __syncthreads(): a barrier between phases.  Each of the block's warps
  /// pays the barrier overhead in issue slots.
  void sync() {
    dev_->events().barriers += 1;
    dev_->events().issue_slots +=
        static_cast<u64>(num_warps()) * dev_->profile().barrier_overhead_slots;
  }

  Warp& warp(u32 w) { return warps_[w]; }

  template <typename F>
  void for_each_warp(F&& f) {
    for (u32 w = 0; w < warps_.size(); ++w) f(warps_[w]);
  }

 private:
  Device* dev_;
  u32 block_id_;
  u32 used_ = 0;
  u32 peak_ = 0;
  std::vector<std::byte> arena_;
  std::vector<Warp> warps_;
};

// ---------------------------------------------------------------------------
// Warp shared-memory member implementations (need SharedArray's layout).
// ---------------------------------------------------------------------------

namespace detail {
/// Bank-conflict degree of a warp-wide shared access: shared memory has 32
/// four-byte banks; the access replays once per extra distinct word mapped
/// to the same bank.  Returns the number of serialized passes (>= 1).
template <typename T>
inline u32 smem_conflict_degree(const SharedArray<T>& arr,
                                const LaneArray<u32>& idx, LaneMask active) {
  if (active == 0) return 0;
  // words[b] collects the distinct word addresses lane accesses map to in
  // bank b.  sizeof(T) is 4 or 8 in this library; handle both by counting
  // each 4-byte word the lane touches.
  std::array<std::array<u32, kWarpSize>, kWarpSize> words;  // guarded by counts
  std::array<u32, kWarpSize> counts{};
  u32 degree = 1;
  for_each_lane(active, [&](u32 lane) {
    const u32 base_word = (arr.byte_offset() + idx[lane] * static_cast<u32>(sizeof(T))) / 4;
    const u32 nwords = static_cast<u32>(sizeof(T)) / 4;
    for (u32 k = 0; k < nwords; ++k) {
      const u32 word = base_word + k;
      const u32 bank = word % kWarpSize;
      bool dup = false;
      for (u32 j = 0; j < counts[bank]; ++j) {
        if (words[bank][j] == word) dup = true;
      }
      if (!dup) {
        words[bank][counts[bank]++] = word;
        degree = std::max(degree, counts[bank]);
      }
    }
  });
  return degree;
}
}  // namespace detail

template <typename T>
LaneArray<T> Warp::smem_read(const SharedArray<T>& arr,
                             const LaneArray<u32>& idx, LaneMask active) {
  LaneArray<T> out{};
  if (active == 0) return out;
  dev_->events().smem_slots += detail::smem_conflict_degree(arr, idx, active);
  for_each_lane(active, [&](u32 lane) {
    if (idx[lane] >= arr.size_) fail("shared memory read out of bounds");
    out[lane] = arr.data()[idx[lane]];
  });
  return out;
}

template <typename T>
void Warp::smem_write(SharedArray<T>& arr, const LaneArray<u32>& idx,
                      const LaneArray<T>& v, LaneMask active) {
  if (active == 0) return;
  dev_->events().smem_slots += detail::smem_conflict_degree(arr, idx, active);
  for_each_lane(active, [&](u32 lane) {
    if (idx[lane] >= arr.size_) fail("shared memory write out of bounds");
    arr.data()[idx[lane]] = v[lane];
  });
}

template <typename T>
LaneArray<T> Warp::smem_atomic_add(SharedArray<T>& arr,
                                   const LaneArray<u32>& idx,
                                   const LaneArray<T>& v, LaneMask active) {
  LaneArray<T> out{};
  if (active == 0) return out;
  // Shared atomics serialize on address collisions.
  const u32 n_active = static_cast<u32>(std::popcount(active));
  u32 distinct = 0;
  std::array<u32, kWarpSize> seen{};
  for_each_lane(active, [&](u32 lane) {
    bool dup = false;
    for (u32 k = 0; k < distinct; ++k) {
      if (seen[k] == idx[lane]) dup = true;
    }
    if (!dup) seen[distinct++] = idx[lane];
  });
  dev_->events().atomic_ops += n_active;
  dev_->events().atomic_conflicts += n_active - distinct;
  dev_->events().smem_slots += n_active;  // one pass per lane (serialized RMW)
  for_each_lane(active, [&](u32 lane) {
    if (idx[lane] >= arr.size_) fail("shared memory atomic out of bounds");
    out[lane] = arr.data()[idx[lane]];
    arr.data()[idx[lane]] += v[lane];
  });
  return out;
}

}  // namespace ms::sim
