// Per-item counter shard for the parallel block scheduler.
//
// When a kernel's blocks (or warp chunks) execute concurrently, they must
// not touch the Device's shared accounting state: the KernelEvents
// totals, the per-site attribution snapshots, the order-dependent L2
// model and the sanitizer report sink are all single-writer structures.
// Instead, each scheduled item runs with a thread-local CounterShard
// armed (t_shard below); every Device::events() increment, site
// transition, sector touch and sanitizer report lands in the shard.
// After the launch the shards are merged in ascending item order, which
// reproduces the serial execution order exactly -- see
// Device::merge_shard for the determinism argument.
//
// The L2 is the one piece that cannot be sharded (its LRU state makes
// every access's hit/miss outcome depend on all earlier accesses
// device-wide), so shards *record* their 32-byte sector streams as
// run-length-encoded SectorOp entries and the merge replays them
// serially through the real cache model.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "sim/events.hpp"
#include "sim/sanitizer.hpp"
#include "sim/span.hpp"
#include "sim/types.hpp"

namespace ms::sim {

/// One recorded L2 touch: `count` consecutive sectors starting at
/// `first_sector`, read or write, attributed to `site`.  Consecutive
/// same-kind touches from one shard are merged (unit-stride streams
/// collapse to a few entries).
struct SectorOp {
  u64 first_sector = 0;
  u32 count = 0;
  u32 site = 0;       // SiteId active when the touch was recorded
  bool is_write = false;

  bool operator==(const SectorOp&) const = default;
};

/// Accounting state of one scheduled item (one block, or one chunk of
/// warps).  Mirrors the Device's per-kernel accumulation machinery:
/// `events` plays the role of Device::current_, `site_snapshot` /
/// `current_site` / `sites` implement the same delta-based per-site
/// attribution, `sector_ops` stands in for the L2 and `reports` for the
/// sanitizer sink.
struct CounterShard {
  u64 item_id = 0;
  KernelEvents events;
  KernelEvents site_snapshot;
  u32 current_site = 0;
  /// (site id, counter slice) pairs; partition `events` exactly, like
  /// KernelRecord::sites.
  std::vector<std::pair<u32, KernelEvents>> sites;
  u32 peak_smem = 0;
  std::vector<SectorOp> sector_ops;
  std::vector<FaultContext> reports;
  /// First fault this item recorded via Device::record_fault (not thrown;
  /// the body kept running).  The merge applies the lowest faulting
  /// item's context -- deterministic first-fault-wins (see record_fault).
  std::optional<FaultContext> fault;
  /// Span events parked by this item (the fault above, when span tracing
  /// is on).  Forwarded to the recorder at merge time only when the
  /// item's fault wins, so serial and parallel runs attach the exact
  /// same events in the exact same order.
  std::vector<SpanEvent> span_events;
  /// Fatal exception raised by this item's body (SimError or any other);
  /// the item's partial counters up to the throw are kept.
  std::exception_ptr error;
  /// Set once this item's first global atomic has passed the
  /// completed-prefix fence (later atomics skip the wait).
  bool fence_passed = false;

  /// Attribute `events - site_snapshot` to the current site (the same
  /// algorithm as Device::flush_site_delta, scoped to this shard).
  void flush_site_delta() {
    const KernelEvents delta = events - site_snapshot;
    if (!(delta == KernelEvents{})) {
      auto it = sites.begin();
      for (; it != sites.end(); ++it) {
        if (it->first == current_site) break;
      }
      if (it == sites.end()) {
        sites.emplace_back(current_site, delta);
      } else {
        it->second += delta;
      }
    }
    site_snapshot = events;
  }

  u32 set_site(u32 site) {
    flush_site_delta();
    const u32 prev = current_site;
    current_site = site;
    return prev;
  }

  /// Append one sector touch, merging into the previous entry when it
  /// extends the same contiguous same-kind same-site run.
  void record_sectors(u64 first, u32 count, bool is_write) {
    if (!sector_ops.empty()) {
      SectorOp& back = sector_ops.back();
      if (back.is_write == is_write && back.site == current_site &&
          back.first_sector + back.count == first) {
        back.count += count;
        return;
      }
    }
    sector_ops.push_back(SectorOp{first, count, current_site, is_write});
  }
};

namespace detail {
/// The shard of the item currently executing on this thread, or null on
/// the serial path (and always null on the main thread).  Set by
/// Device::run_items around each item body.
extern thread_local CounterShard* t_shard;
}  // namespace detail

}  // namespace ms::sim
