#include "sim/chaos.hpp"

#include <cstring>
#include <sstream>

#include "sim/device.hpp"

namespace ms::sim {

namespace {

/// splitmix64: the standard 64-bit finalizer-style mixer.  Counter-based
/// use (hash of seed + counter) gives an arbitrary-access deterministic
/// stream with no shared state between sites.
u64 splitmix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Per-site stream salts (arbitrary distinct constants): arming one fault
/// class never perturbs another class's draw sequence.
constexpr u64 kSiteSalt[kChaosSiteCount] = {
    0xA110CFA11EDull,  // kAlloc
    0x1A07C4AB027ull,  // kLaunch
    0xB17F119F11Bull,  // kBitFlip
    0x12CC0884C7Eull,  // kL2Writeback
};

}  // namespace

const char* to_string(ChaosSite s) {
  switch (s) {
    case ChaosSite::kAlloc: return "alloc_failure";
    case ChaosSite::kLaunch: return "launch_abort";
    case ChaosSite::kBitFlip: return "bit_flip";
    case ChaosSite::kL2Writeback: return "l2_corruption";
  }
  return "?";
}

ChaosEngine::ChaosEngine(ChaosPolicy policy, Device& dev,
                         ResilienceStats& stats)
    : policy_(policy), dev_(&dev), stats_(&stats) {}

void ChaosEngine::register_buffer(u64 base, void* data, u64 bytes,
                                  std::string label) {
  buffers_[base] = BufferEntry{data, bytes, std::move(label), false};
}

void ChaosEngine::unregister_buffer(u64 base) { buffers_.erase(base); }

void ChaosEngine::protect_buffer(u64 base) {
  auto it = buffers_.find(base);
  check(it != buffers_.end(), "chaos: protect_buffer of unregistered base");
  it->second.protected_ = true;
}

void ChaosEngine::arm_alloc_failure(u64 skip) {
  one_shot_[static_cast<u32>(ChaosSite::kAlloc)] = OneShot{true, skip};
}

void ChaosEngine::arm_launch_abort(u64 skip) {
  one_shot_[static_cast<u32>(ChaosSite::kLaunch)] = OneShot{true, skip};
}

void ChaosEngine::arm_bit_flip(u64 base, u64 word, u32 bit,
                               u64 skip_kernel_ends) {
  check(bit < 32, "chaos: arm_bit_flip bit must be 0..31");
  targeted_ = TargetedFlip{true, base, word, bit, skip_kernel_ends};
}

u64 ChaosEngine::draw(ChaosSite site) {
  const u32 i = static_cast<u32>(site);
  counters_[i] += 1;
  return splitmix64((policy_.seed ^ kSiteSalt[i]) + counters_[i]);
}

bool ChaosEngine::decide(ChaosSite site, f64 p, u64& rnd) {
  rnd = 0;
  OneShot& os = one_shot_[static_cast<u32>(site)];
  if (os.armed) {
    if (os.countdown == 0) {
      os.armed = false;
      return true;
    }
    os.countdown -= 1;
  }
  if (p <= 0.0) return false;
  rnd = draw(site);
  if (p >= 1.0) return true;
  // Compare against p * 2^64 without overflowing: scale to 2^32 twice.
  const f64 scaled = p * 18446744073709551616.0;  // p * 2^64
  return static_cast<f64>(rnd) < scaled;
}

ChaosEngine::BufferEntry* ChaosEngine::find_covering(u64 addr, u64* base_out) {
  auto it = buffers_.upper_bound(addr);
  if (it == buffers_.begin()) return nullptr;
  --it;
  if (addr >= it->first + it->second.bytes) return nullptr;
  if (base_out != nullptr) *base_out = it->first;
  return &it->second;
}

void ChaosEngine::flip_bit(BufferEntry& buf, u64 word, u32 bit,
                           std::string_view kernel) {
  if ((word + 1) * 4 > buf.bytes) return;  // target word out of range
  // Flip bit `bit` of little-endian u32 word `word` via byte XOR -- no
  // alignment assumption on the buffer's element type.
  auto* bytes = static_cast<unsigned char*>(buf.data);
  bytes[word * 4 + bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  stats_->injected_bit_flips += 1;
  InjectionRecord rec;
  rec.site = ChaosSite::kBitFlip;
  rec.kernel = std::string(kernel);
  rec.object = buf.label;
  rec.word = word;
  rec.bit = bit;
  rec.words = 1;
  log_.push_back(std::move(rec));
}

void ChaosEngine::maybe_fail_alloc(u64 bytes) {
  u64 rnd = 0;
  if (!decide(ChaosSite::kAlloc, policy_.p_alloc_fail, rnd)) return;
  stats_->injected_alloc_failures += 1;
  const std::string& k = dev_->current_kernel_name();
  InjectionRecord rec;
  rec.site = ChaosSite::kAlloc;
  rec.kernel = k.empty() ? "<host>" : k;
  log_.push_back(rec);

  FaultContext ctx;
  ctx.kind = FaultKind::kAllocFailure;
  ctx.kernel = rec.kernel;
  ctx.object = "device address space";
  ctx.extent = bytes;
  ctx.detail = "chaos: injected allocation failure (simulated OOM)";
  throw SimError(std::move(ctx));
}

void ChaosEngine::maybe_abort_launch() {
  u64 rnd = 0;
  if (!decide(ChaosSite::kLaunch, policy_.p_launch_abort, rnd)) return;
  stats_->injected_launch_aborts += 1;
  const std::string& k = dev_->current_kernel_name();
  InjectionRecord rec;
  rec.site = ChaosSite::kLaunch;
  rec.kernel = k.empty() ? "<host>" : k;
  log_.push_back(rec);

  FaultContext ctx;
  ctx.kind = FaultKind::kLaunchFailure;
  ctx.kernel = rec.kernel;
  ctx.detail = "chaos: injected kernel-launch abort";
  throw SimError(std::move(ctx));
}

void ChaosEngine::on_kernel_end(std::string_view kernel) {
  if (targeted_.armed) {
    if (targeted_.countdown == 0) {
      targeted_.armed = false;
      if (auto it = buffers_.find(targeted_.base); it != buffers_.end()) {
        flip_bit(it->second, targeted_.word, targeted_.bit, kernel);
      }
    } else {
      targeted_.countdown -= 1;
    }
  }
  u64 rnd = 0;
  if (!decide(ChaosSite::kBitFlip, policy_.p_bit_flip, rnd)) return;
  // Pick a victim among unprotected registered buffers with >= one u32
  // word.  Map order (ascending base address) keeps the choice
  // deterministic for a given registry state.
  std::vector<BufferEntry*> candidates;
  for (auto& [base, e] : buffers_) {
    if (!e.protected_ && e.bytes >= 4) candidates.push_back(&e);
  }
  if (candidates.empty()) return;  // drew, but nothing to corrupt
  u64 h = splitmix64(rnd);
  BufferEntry& victim = *candidates[h % candidates.size()];
  h = splitmix64(h);
  const u64 word = h % (victim.bytes / 4);
  h = splitmix64(h);
  flip_bit(victim, word, static_cast<u32>(h % 32), kernel);
}

void ChaosEngine::on_writeback(u64 first_byte, u32 bytes) {
  u64 rnd = 0;
  if (!decide(ChaosSite::kL2Writeback, policy_.p_l2_corrupt, rnd)) return;
  u64 base = 0;
  BufferEntry* e = find_covering(first_byte, &base);
  if (e == nullptr || e->protected_) return;  // drew, but no live target
  // Scramble the u32 words of the buffer region this sector covers: XOR
  // with a nonzero pattern derived from the draw (deterministic, and
  // guaranteed to actually change the data).
  const u64 begin = first_byte - base;
  const u64 end = std::min<u64>(begin + bytes, e->bytes);
  const u64 first_word = begin / 4;
  const u64 last_word = end / 4;
  if (last_word <= first_word) return;
  const u32 pattern = static_cast<u32>(splitmix64(rnd)) | 1u;
  auto* data = static_cast<unsigned char*>(e->data);
  for (u64 wi = first_word; wi < last_word; ++wi) {
    u32 v;
    std::memcpy(&v, data + wi * 4, 4);
    v ^= pattern;
    std::memcpy(data + wi * 4, &v, 4);
  }
  stats_->injected_l2_corruptions += 1;
  const std::string& k = dev_->current_kernel_name();
  InjectionRecord rec;
  rec.site = ChaosSite::kL2Writeback;
  rec.kernel = k.empty() ? "<host>" : k;
  rec.object = e->label;
  rec.word = first_word;
  rec.words = static_cast<u32>(last_word - first_word);
  log_.push_back(std::move(rec));
}

}  // namespace ms::sim
