// The warp execution context.
//
// Kernels in this library are written warp-synchronously: the unit of
// execution is a 32-lane warp whose lanes advance in lockstep, exactly as
// CUDA warps do under SIMT control.  A Warp exposes
//
//   * the CUDA warp-wide intrinsics the paper's algorithms are built from
//     (`ballot`, `shfl`, `shfl_up`, `shfl_down`, `shfl_xor`, `popc`), with
//     bit-exact semantics;
//   * charged global-memory instructions (`load`/`store` for unit-stride,
//     `gather`/`scatter` for arbitrary lane addresses, warp-wide atomics) --
//     each access counts the distinct 32-byte sectors its lane addresses
//     touch and routes them through the device's L2 model;
//   * charged shared-memory instructions with bank-conflict accounting.
//
// Divergence is expressed by explicit active-lane masks: a lane outside the
// mask neither reads, writes, nor contributes to a ballot, matching the
// behaviour of predicated-off CUDA threads.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstring>

#include "sim/memory.hpp"
#include "sim/simd.hpp"
#include "sim/types.hpp"

namespace ms::sim {

template <typename T>
class SharedArray;  // defined in block.hpp

class Warp {
 public:
  Warp(Device& dev, u64 global_warp_id, u32 warp_in_block = 0, u32 block_id = 0)
      : dev_(&dev),
        global_warp_id_(global_warp_id),
        warp_in_block_(warp_in_block),
        block_id_(block_id) {}

  Device& device() const { return *dev_; }
  u64 warp_id() const { return global_warp_id_; }
  u32 warp_in_block() const { return warp_in_block_; }
  u32 block_id() const { return block_id_; }

  /// lane_id()[i] == i, the CUDA laneIdx.
  static LaneArray<u32> lane_id() { return LaneArray<u32>::iota(); }

  /// Charge `slots` warp-instruction issue slots of plain arithmetic.
  /// Algorithms call this for the address/bookkeeping math that the
  /// simulator does not see as an intrinsic.  Deliberately not counted as a
  /// SIMT instruction: the mask-carrying intrinsics and memory ops below
  /// are the divergence-visible instruction stream.
  void charge(u64 slots) { dev_->events().issue_slots += slots; }

  /// Bulk charge for a fused warp-level primitive (primitives/warp_ops.hpp,
  /// primitives/warp_scan.hpp): the exact counter deltas the unfused
  /// instruction sequence would have accumulated, applied in one shot.  The
  /// fused fast paths are only bit-identical to their reference loops
  /// because these deltas follow the closed forms derived from them --
  /// change a reference implementation and the formula must change with it.
  void charge_warp_op(u64 issue_slots, u64 ballot_rounds, u64 simt_insts,
                      u64 simt_active_lanes) {
    auto& ev = dev_->events();
    ev.issue_slots += issue_slots;
    ev.ballot_rounds += ballot_rounds;
    ev.simt_insts += simt_insts;
    ev.simt_active_lanes += simt_active_lanes;
  }

  // ---------------------------------------------------------------- ballot
  /// CUDA __ballot: bit i of the result is pred[i] != 0 for active lanes;
  /// inactive lanes contribute 0.
  LaneMask ballot(const LaneArray<u32>& pred, LaneMask active = kFullMask) {
    dev_->events().issue_slots += 1;
    dev_->events().ballot_rounds += 1;
    count_simt(active);
    if (simd::enabled()) return simd::ballot(pred.data(), active);
    LaneMask out = 0;
    for_each_lane(active, [&](u32 lane) {
      if (pred[lane] != 0) out |= (1u << lane);
    });
    return out;
  }

  /// CUDA __any: true if any active lane's predicate is non-zero.
  bool any(const LaneArray<u32>& pred, LaneMask active = kFullMask) {
    dev_->events().issue_slots += 1;
    count_simt(active);
    if (simd::enabled()) return (simd::nonzero_mask(pred.data()) & active) != 0;
    bool out = false;
    for_each_lane(active, [&](u32 lane) { out |= (pred[lane] != 0); });
    return out;
  }

  /// CUDA __all: true if every active lane's predicate is non-zero.
  bool all(const LaneArray<u32>& pred, LaneMask active = kFullMask) {
    dev_->events().issue_slots += 1;
    count_simt(active);
    if (simd::enabled()) {
      return (simd::nonzero_mask(pred.data()) & active) == active;
    }
    bool out = true;
    for_each_lane(active, [&](u32 lane) { out &= (pred[lane] != 0); });
    return out;
  }

  // ----------------------------------------------------------------- shfl
  /// CUDA __shfl: every active lane reads `v` from lane src[i] (mod 32).
  template <typename T>
  LaneArray<T> shfl(const LaneArray<T>& v, const LaneArray<u32>& src,
                    LaneMask active = kFullMask) {
    dev_->events().issue_slots += 1;
    count_simt(active);
    LaneArray<T> out = v;
    for_each_lane(active, [&](u32 lane) { out[lane] = v[src[lane] % kWarpSize]; });
    return out;
  }

  /// __shfl with a uniform source lane.
  template <typename T>
  LaneArray<T> shfl(const LaneArray<T>& v, u32 src_lane,
                    LaneMask active = kFullMask) {
    dev_->events().issue_slots += 1;
    count_simt(active);
    LaneArray<T> out = v;
    for_each_lane(active,
                  [&](u32 lane) { out[lane] = v[src_lane % kWarpSize]; });
    return out;
  }

  /// CUDA __shfl_up: lane i reads lane i-delta; lanes with i < delta keep
  /// their own value.
  template <typename T>
  LaneArray<T> shfl_up(const LaneArray<T>& v, u32 delta,
                       LaneMask active = kFullMask) {
    dev_->events().issue_slots += 1;
    count_simt(active);
    LaneArray<T> out = v;
    for_each_lane(active, [&](u32 lane) {
      if (lane >= delta) out[lane] = v[lane - delta];
    });
    return out;
  }

  /// CUDA __shfl_down: lane i reads lane i+delta; top lanes keep their own.
  template <typename T>
  LaneArray<T> shfl_down(const LaneArray<T>& v, u32 delta,
                         LaneMask active = kFullMask) {
    dev_->events().issue_slots += 1;
    count_simt(active);
    LaneArray<T> out = v;
    for_each_lane(active, [&](u32 lane) {
      if (lane + delta < kWarpSize) out[lane] = v[lane + delta];
    });
    return out;
  }

  /// CUDA __shfl_xor: lane i reads lane i^mask.
  template <typename T>
  LaneArray<T> shfl_xor(const LaneArray<T>& v, u32 mask,
                        LaneMask active = kFullMask) {
    dev_->events().issue_slots += 1;
    count_simt(active);
    LaneArray<T> out = v;
    for_each_lane(active,
                  [&](u32 lane) { out[lane] = v[(lane ^ mask) % kWarpSize]; });
    return out;
  }

  // ----------------------------------------------------------------- popc
  /// Per-lane __popc on a warp register.
  LaneArray<u32> popc(const LaneArray<u32>& v) {
    dev_->events().issue_slots += 1;
    count_simt(kFullMask);  // per-lane op, no mask form
    return v.map([](u32 x) { return static_cast<u32>(std::popcount(x)); });
  }

  // --------------------------------------------------- global memory: load
  /// Unit-stride load: active lane i reads buf[base + i].
  template <typename T>
  LaneArray<T> load(const DeviceBuffer<T>& buf, u64 base,
                    LaneMask active = kFullMask) {
    LaneArray<T> out{};
    if (active == 0) return out;
    if (dev_->charging_off()) {
      // Tape replay: the recorded shard carries this load's accounting;
      // only the data movement (and its safety check) remains.
      if (active == kFullMask && base + kWarpSize <= buf.size()) {
        std::memcpy(out.data(), buf.raw_data() + base, kWarpSize * sizeof(T));
        return out;
      }
      for_each_lane(active, [&](u32 lane) {
        bounds_check(buf, base + lane, lane, "unit-stride load");
        out[lane] = buf.raw_data()[base + lane];
      });
      return out;
    }
    count_simt(active);
    charge_contiguous</*is_write=*/false, T>(buf, base, active);
    if (active == kFullMask && base + kWarpSize <= buf.size() &&
        buf.init_shadow() == nullptr) [[likely]] {
      // Full warp, in bounds, no initcheck shadow: one bulk copy replaces
      // 32 per-lane bounds/shadow checks.  Fault behavior is unchanged --
      // an OOB access always falls through to the checking loop below.
      std::memcpy(out.data(), buf.raw_data() + base, kWarpSize * sizeof(T));
      return out;
    }
    for_each_lane(active, [&](u32 lane) {
      bounds_check(buf, base + lane, lane, "unit-stride load");
      init_check_read(buf, base + lane, lane);
      out[lane] = buf.raw_data()[base + lane];
    });
    return out;
  }

  /// Unit-stride store: active lane i writes buf[base + i].
  template <typename T>
  void store(DeviceBuffer<T>& buf, u64 base, const LaneArray<T>& v,
             LaneMask active = kFullMask) {
    if (active == 0) return;
    if (dev_->charging_off()) {
      if (active == kFullMask && base + kWarpSize <= buf.size()) {
        std::memcpy(buf.raw_data() + base, v.data(), kWarpSize * sizeof(T));
        return;
      }
      for_each_lane(active, [&](u32 lane) {
        bounds_check(buf, base + lane, lane, "unit-stride store");
        buf.raw_data()[base + lane] = v[lane];
      });
      return;
    }
    count_simt(active);
    charge_contiguous</*is_write=*/true, T>(buf, base, active);
    GlobalShadow* sh = buf.init_shadow();
    if (sh == nullptr && active == kFullMask &&
        base + kWarpSize <= buf.size()) [[likely]] {
      std::memcpy(buf.raw_data() + base, v.data(), kWarpSize * sizeof(T));
      return;
    }
    for_each_lane(active, [&](u32 lane) {
      bounds_check(buf, base + lane, lane, "unit-stride store");
      if (sh != nullptr) mark_valid(*sh, base + lane);
      buf.raw_data()[base + lane] = v[lane];
    });
  }

  /// Arbitrary-address gather: active lane i reads buf[idx[i]].
  template <typename T>
  LaneArray<T> gather(const DeviceBuffer<T>& buf, const LaneArray<u64>& idx,
                      LaneMask active = kFullMask) {
    LaneArray<T> out{};
    if (active == 0) return out;
    if (dev_->charging_off()) {
      for_each_lane(active, [&](u32 lane) {
        bounds_check(buf, idx[lane], lane, "gather");
        out[lane] = buf.raw_data()[idx[lane]];
      });
      return out;
    }
    count_simt(active);
    charge_scattered</*is_write=*/false, T>(buf, idx, active);
    for_each_lane(active, [&](u32 lane) {
      bounds_check(buf, idx[lane], lane, "gather");
      init_check_read(buf, idx[lane], lane);
      out[lane] = buf.raw_data()[idx[lane]];
    });
    return out;
  }

  /// Arbitrary-address scatter: active lane i writes buf[idx[i]].
  template <typename T>
  void scatter(DeviceBuffer<T>& buf, const LaneArray<u64>& idx,
               const LaneArray<T>& v, LaneMask active = kFullMask) {
    if (active == 0) return;
    if (dev_->charging_off()) {
      for_each_lane(active, [&](u32 lane) {
        bounds_check(buf, idx[lane], lane, "scatter");
        buf.raw_data()[idx[lane]] = v[lane];
      });
      return;
    }
    count_simt(active);
    charge_scattered</*is_write=*/true, T>(buf, idx, active);
    GlobalShadow* sh = buf.init_shadow();
    for_each_lane(active, [&](u32 lane) {
      bounds_check(buf, idx[lane], lane, "scatter");
      if (sh != nullptr) mark_valid(*sh, idx[lane]);
      buf.raw_data()[idx[lane]] = v[lane];
    });
  }

  /// Warp-wide global atomicAdd: returns each active lane's old value.
  /// Lanes hitting the same address are serialized (and counted as
  /// conflicts); distinct addresses are charged like a scatter.
  template <typename T>
  LaneArray<T> atomic_add(DeviceBuffer<T>& buf, const LaneArray<u64>& idx,
                          const LaneArray<T>& v, LaneMask active = kFullMask) {
    LaneArray<T> out{};
    if (active == 0) return out;
    if (dev_->charging_off()) {
      for_each_lane(active, [&](u32 lane) {
        bounds_check(buf, idx[lane], lane, "atomicAdd");
        out[lane] = atomic_rmw(buf.raw_data()[idx[lane]], [&](T old) {
          return static_cast<T>(old + v[lane]);
        });
      });
      return out;
    }
    dev_->global_atomic_fence();
    count_simt(active);
    charge_scattered</*is_write=*/true, T>(buf, idx, active);
    // Reads the old value too.
    charge_scattered</*is_write=*/false, T>(buf, idx, active);

    const u32 n_active = static_cast<u32>(std::popcount(active));
    u32 distinct = 0;
    std::array<u64, kWarpSize> seen{};
    for_each_lane(active, [&](u32 lane) {
      bool dup = false;
      for (u32 k = 0; k < distinct; ++k) {
        if (seen[k] == idx[lane]) dup = true;
      }
      if (!dup) seen[distinct++] = idx[lane];
    });
    dev_->events().atomic_ops += n_active;
    dev_->events().atomic_conflicts += n_active - distinct;
    // Conflicting lanes replay the atomic.
    dev_->events().issue_slots += (n_active - distinct);

    GlobalShadow* sh = buf.init_shadow();
    for_each_lane(active, [&](u32 lane) {
      bounds_check(buf, idx[lane], lane, "atomicAdd");
      init_check_read(buf, idx[lane], lane);
      if (sh != nullptr) mark_valid(*sh, idx[lane]);
      out[lane] = atomic_rmw(buf.raw_data()[idx[lane]],
                             [&](T old) { return static_cast<T>(old + v[lane]); });
    });
    return out;
  }

  /// Warp-wide global atomicMin: returns each active lane's old value.
  template <typename T>
  LaneArray<T> atomic_min(DeviceBuffer<T>& buf, const LaneArray<u64>& idx,
                          const LaneArray<T>& v, LaneMask active = kFullMask) {
    LaneArray<T> out{};
    if (active == 0) return out;
    if (dev_->charging_off()) {
      for_each_lane(active, [&](u32 lane) {
        bounds_check(buf, idx[lane], lane, "atomicMin");
        out[lane] = atomic_rmw(buf.raw_data()[idx[lane]],
                               [&](T old) { return std::min(old, v[lane]); });
      });
      return out;
    }
    dev_->global_atomic_fence();
    count_simt(active);
    charge_scattered</*is_write=*/true, T>(buf, idx, active);
    charge_scattered</*is_write=*/false, T>(buf, idx, active);
    const u32 n_active = static_cast<u32>(std::popcount(active));
    u32 distinct = 0;
    std::array<u64, kWarpSize> seen{};
    for_each_lane(active, [&](u32 lane) {
      bool dup = false;
      for (u32 k = 0; k < distinct; ++k) {
        if (seen[k] == idx[lane]) dup = true;
      }
      if (!dup) seen[distinct++] = idx[lane];
    });
    dev_->events().atomic_ops += n_active;
    dev_->events().atomic_conflicts += n_active - distinct;
    dev_->events().issue_slots += (n_active - distinct);
    GlobalShadow* sh = buf.init_shadow();
    for_each_lane(active, [&](u32 lane) {
      bounds_check(buf, idx[lane], lane, "atomicMin");
      init_check_read(buf, idx[lane], lane);
      if (sh != nullptr) mark_valid(*sh, idx[lane]);
      out[lane] = atomic_rmw(buf.raw_data()[idx[lane]],
                             [&](T old) { return std::min(old, v[lane]); });
    });
    return out;
  }

  // --------------------------------------------------------- shared memory
  // Implementations live in block.hpp (they need SharedArray's layout).
  template <typename T>
  LaneArray<T> smem_read(const SharedArray<T>& arr, const LaneArray<u32>& idx,
                         LaneMask active = kFullMask);
  template <typename T>
  void smem_write(SharedArray<T>& arr, const LaneArray<u32>& idx,
                  const LaneArray<T>& v, LaneMask active = kFullMask);
  template <typename T>
  LaneArray<T> smem_atomic_add(SharedArray<T>& arr, const LaneArray<u32>& idx,
                               const LaneArray<T>& v,
                               LaneMask active = kFullMask);

 private:
  /// Divergence accounting: one SIMT instruction with popcount(active)
  /// live lanes.  Called once per mask-carrying intrinsic or memory
  /// instruction (an atomic RMW counts once even though its read and
  /// write passes are charged separately).
  void count_simt(LaneMask active) {
    auto& ev = dev_->events();
    ev.simt_insts += 1;
    ev.simt_active_lanes += static_cast<u64>(std::popcount(active));
  }

  /// Build the common part of a fault context for a global access from
  /// this warp.
  template <typename T>
  FaultContext global_fault(FaultKind kind, const DeviceBuffer<T>& buf, u64 i,
                            u32 lane, std::string detail) const {
    FaultContext ctx;
    ctx.kind = kind;
    ctx.kernel = dev_->current_kernel_name();
    ctx.object = object_label(buf.name(), buf.base_address());
    ctx.index = i;
    ctx.extent = buf.size();
    ctx.lane = lane;
    ctx.warp_in_block = warp_in_block_;
    ctx.block = block_id_;
    ctx.global_warp = global_warp_id_;
    ctx.detail = std::move(detail);
    return ctx;
  }

  /// Same, for a shared-memory access (the smem instructions live in
  /// block.hpp but are Warp members, so the builders sit here).
  FaultContext shared_fault(FaultKind kind, std::string_view object, u64 i,
                            u64 extent, u32 lane, std::string detail) const {
    FaultContext ctx;
    ctx.kind = kind;
    ctx.kernel = dev_->current_kernel_name();
    ctx.object = std::string(object);
    ctx.index = i;
    ctx.extent = extent;
    ctx.lane = lane;
    ctx.warp_in_block = warp_in_block_;
    ctx.block = block_id_;
    ctx.global_warp = global_warp_id_;
    ctx.detail = std::move(detail);
    return ctx;
  }

  /// Shared OOB: fatal, reported under memcheck (same policy as global
  /// OOB).  Callers do the cheap index comparison themselves so the
  /// object-label string is only built on the failure path.
  [[noreturn]] void smem_oob_fail(u64 i, u64 extent, std::string object,
                                  u32 lane, const char* what) {
    FaultContext ctx =
        shared_fault(FaultKind::kSharedOOB, object, i, extent, lane,
                     std::string(what) + " out of bounds");
    if (dev_->sanitizer().memcheck()) dev_->sanitizer().report(ctx);
    throw SimError(std::move(ctx));
  }

  /// Global OOB is always fatal (the backing storage does not exist); with
  /// memcheck armed the fault is also recorded as a sanitizer report so
  /// the launch helpers can degrade gracefully.
  template <typename T>
  void bounds_check(const DeviceBuffer<T>& buf, u64 i, u32 lane,
                    const char* what) {
    if (i < buf.size()) return;
    FaultContext ctx =
        global_fault(FaultKind::kGlobalOOB, buf, i, lane,
                     std::string(what) + " out of bounds");
    if (dev_->sanitizer().memcheck()) dev_->sanitizer().report(ctx);
    throw SimError(std::move(ctx));
  }

  /// initcheck: reading an element no host or device write ever touched.
  /// Non-fatal; the word is marked valid after reporting so one stale
  /// element does not flood the report stream.  The mark is an atomic
  /// exchange so concurrently scheduled blocks reading the same stale
  /// element produce exactly one report (which block wins the exchange --
  /// and so stamps the report's block/lane fields -- is the one place the
  /// parallel scheduler may differ from serial attribution).
  template <typename T>
  void init_check_read(const DeviceBuffer<T>& buf, u64 i, u32 lane) {
    GlobalShadow* sh = buf.init_shadow();
    if (sh == nullptr) return;
    if (std::atomic_ref<u8>(sh->valid[i]).exchange(1, std::memory_order_relaxed) != 0) {
      return;
    }
    dev_->sanitizer().report(
        global_fault(FaultKind::kUninitGlobalRead, buf, i, lane,
                     "read of a global element never written by host or "
                     "device"));
  }

  /// Mark one shadow element written (racing writers are fine: all store 1).
  static void mark_valid(GlobalShadow& sh, u64 i) {
    std::atomic_ref<u8>(sh.valid[i]).store(1, std::memory_order_relaxed);
  }

  /// Host-atomic read-modify-write of one device element; returns the old
  /// value.  The global-atomic fence has already serialized concurrently
  /// scheduled items by this point, so the CAS loop never spins in
  /// practice -- it exists so device atomics are real host atomics (no
  /// data race even if a kernel mixes atomics with the fence disabled).
  template <typename T, typename F>
  static T atomic_rmw(T& cell, F&& update) {
    std::atomic_ref<T> ref(cell);
    T old = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(old, update(old),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
    }
    return old;
  }

  /// Charge a unit-stride access.  Issue cost: the load-store unit replays
  /// once per extra 128-byte cache line the warp touches (a perfectly
  /// coalesced 32 x 4 B access is one line, one issue slot); memory cost:
  /// each covered 32-byte sector goes through the L2 model.
  template <bool kIsWrite, typename T>
  void charge_contiguous(const DeviceBuffer<T>& buf, u64 base, LaneMask active) {
    const u32 tx = dev_->profile().transaction_bytes;
    const u32 line = kLineBytes;
    const u32 lo = static_cast<u32>(std::countr_zero(active));
    const u32 hi = 31u - static_cast<u32>(std::countl_zero(active));
    const u64 addr_lo = buf.address_of(base + lo);
    const u64 addr_hi = buf.address_of(base + hi) + sizeof(T) - 1;
    const u64 first = addr_lo / tx;
    const u32 segments = static_cast<u32>(addr_hi / tx - first + 1);
    const u32 lines = static_cast<u32>(addr_hi / line - addr_lo / line + 1);
    account<kIsWrite>(lines,
                      static_cast<u64>(std::popcount(active)) * sizeof(T));
    if constexpr (kIsWrite) {
      dev_->touch_write_sectors(first, segments);
    } else {
      dev_->touch_read_sectors(first, segments);
    }
  }

  /// Charge an arbitrary-address access.
  ///
  /// Issue cost follows the coalescing model the paper itself reasons with
  /// (Figure 2): the access is decomposed into maximal *lane-order runs* of
  /// consecutive addresses, and each run costs one issue slot per 128-byte
  /// line it spans.  A store whose lanes interleave two buckets therefore
  /// pays one transaction per interleave break, which is exactly the
  /// fragmentation that local reordering exists to remove.
  ///
  /// Memory cost is physical: each distinct 32-byte sector goes through the
  /// L2 model once (the L2 still merges duplicate sectors on their way to
  /// DRAM regardless of lane order).
  template <bool kIsWrite, typename T>
  void charge_scattered(const DeviceBuffer<T>& buf, const LaneArray<u64>& idx,
                        LaneMask active) {
    const u32 tx = dev_->profile().transaction_bytes;
    // One pass computes both costs: the lane-order run decomposition for
    // the issue side and the sector list for the DRAM/L2 side.
    u32 lines = 0;
    u64 run_start = 0, prev_end = ~u64{0};
    std::array<u64, 2 * kWarpSize> sectors{};
    u32 n = 0;
    bool presorted = true;
    for_each_lane(active, [&](u32 lane) {
      const u64 a = buf.address_of(idx[lane]);
      if (a != prev_end) {
        if (prev_end != ~u64{0}) {
          lines += static_cast<u32>((prev_end - 1) / kLineBytes -
                                    run_start / kLineBytes + 1);
        }
        run_start = a;
      }
      prev_end = a + sizeof(T);
      const u64 s0 = a / tx;
      const u64 s1 = (a + sizeof(T) - 1) / tx;
      if (n > 0 && s0 < sectors[n - 1]) presorted = false;
      sectors[n++] = s0;
      if (s1 != s0) sectors[n++] = s1;
    });
    if (prev_end != ~u64{0}) {
      lines += static_cast<u32>((prev_end - 1) / kLineBytes -
                                run_start / kLineBytes + 1);
    }
    // Distinct ascending sectors; lane addresses are usually already
    // monotone (bucket-major scatters), so the sort is rarely needed.
    if (!presorted) std::sort(sectors.begin(), sectors.begin() + n);
    const u32 segments =
        static_cast<u32>(std::unique(sectors.begin(), sectors.begin() + n) -
                         sectors.begin());
    account<kIsWrite>(lines,
                      static_cast<u64>(std::popcount(active)) * sizeof(T));
    for (u32 s = 0; s < segments; ++s) {
      if constexpr (kIsWrite) {
        dev_->touch_write_sector(sectors[s]);
      } else {
        dev_->touch_read_sector(sectors[s]);
      }
    }
  }

  /// L1/LSU cache-line granularity for issue replays.
  static constexpr u32 kLineBytes = 128;

  template <bool kIsWrite>
  void account(u32 lines, u64 useful_bytes) {
    auto& ev = dev_->events();
    ev.issue_slots += 1;
    ev.scatter_replays += lines - 1;
    if constexpr (kIsWrite) {
      ev.useful_bytes_written += useful_bytes;
    } else {
      ev.useful_bytes_read += useful_bytes;
    }
  }

  Device* dev_;
  u64 global_warp_id_;
  u32 warp_in_block_;
  u32 block_id_;
};

}  // namespace ms::sim
