// Derived metrics and guided bottleneck analysis -- the simulator's
// equivalent of Nsight Compute's "Speed of Light" and "Memory/Compute
// Workload Analysis" sections, computed from the raw KernelEvents the
// profiler (counters.hpp) already records.
//
// Three layers:
//
//   1. DerivedMetrics    -- the nsight-style ratios for one counter slice
//                           (a site, a kernel, or a whole run): speed-of-
//                           light utilization of the two modeled pipes,
//                           coalescing efficiency / sector over-fetch,
//                           bank-conflict serialization, active-lane
//                           (divergence) fraction, launch-overhead share,
//                           and a shared-memory-limited occupancy proxy.
//   2. MetricsReport     -- analyze_device() rolls a Device's kernel log
//                           into per-kernel-group, per-site and aggregate
//                           metrics, then runs a rules engine that emits
//                           severity-ranked Diagnosis entries ("DRAM-bound,
//                           38% of moved bytes unrequested at site X").
//   3. diff_reports      -- the run-diff regression tool: structurally
//                           compares two JSON profile reports (ms_cli or
//                           bench --json output) value by value, matching
//                           array rows by identity keys (method/m/kv,
//                           kernel name, site label), with a configurable
//                           relative tolerance.  `ms_cli diff` is a thin
//                           shell around it.
//
// Everything here is read-only over the recorded events: computing metrics
// never changes modeled times (the table5 baseline stays bit-identical).
#pragma once

#include <string>
#include <vector>

#include "sim/allocator.hpp"
#include "sim/chaos.hpp"
#include "sim/events.hpp"
#include "sim/json.hpp"
#include "sim/profile.hpp"

namespace ms::sim {

class Device;

/// Version stamp of every JSON report this repository writes (ms_cli
/// --json, bench --json, metrics sections, diff output).  Consumers
/// (check_bench.py, ms_cli diff) reject mismatched versions instead of
/// mis-parsing.  Bump when a field changes meaning or moves.
/// v4: reports gain the device sub-allocator stats block ("allocator")
/// and result rows record the concrete method ("method_selected").
/// v5: bench host timing excludes the warm-up trial and reports both mean
/// and min ("host_ms_min"); telemetry timelines (--telemetry JSONL,
/// bench/history records) carry the same version stamp.
/// v6: reports gain the resilience block ("resilience": fault-injection
/// and retry/fallback/validation accounting from the chaos engine and the
/// resilient request executor; all zeros when chaos is off).
/// v7: request-span dumps (--spans JSONL, sim/span.hpp) carry this stamp;
/// telemetry timeline histograms gain optional exemplar trace-id fields
/// (p50_trace/p95_trace/p99_trace/p999_trace/max_trace, present only when
/// a traced request landed in the percentile's bucket).
/// v8: reports gain the batched-serving block ("batching": batches,
/// packed/unpacked problem counts, fused launches, slot fill ratio and
/// partial-batch retries from the ServingExecutor; all zeros when the
/// device never served batches).  No existing field changed meaning:
/// modeled values are bit-identical to v7 on every existing bench.
inline constexpr u32 kReportSchemaVersion = 8;

/// Which modeled pipe a kernel (or run) saturates.  Classified with a 5%
/// margin: within it the two pipes are "balanced".
enum class Bound { kMemory, kIssue, kBalanced };
const char* to_string(Bound b);
Bound classify_bound(f64 mem_time_ms, f64 issue_time_ms);

/// Nsight-compute-style ratios for one counter slice.  The counter-only
/// fields are always valid; the time-based block (speed of light, launch
/// share, occupancy) is only filled when the slice corresponds to whole
/// kernels -- per-site slices have no time of their own and keep the
/// defaults.
struct DerivedMetrics {
  // --- traffic volumes (bytes) ---
  f64 dram_bytes = 0.0;    // DRAM transactions moved * sector size
  f64 sector_bytes = 0.0;  // L2 sector touches * sector size (hits + misses)
  f64 useful_bytes = 0.0;  // payload bytes lanes actually requested

  // --- memory workload ---
  /// useful_bytes / sector_bytes, in percent; 100 = perfectly coalesced.
  f64 coalescing_pct = 100.0;
  /// sector_bytes / useful_bytes (>= 1); the over-fetch factor: how many
  /// bytes move per byte requested.
  f64 sector_overfetch = 1.0;
  /// Fraction of L2 read sector touches served without a DRAM transaction.
  f64 l2_read_hit_pct = 100.0;

  // --- issue workload ---
  /// smem_slots / smem_accesses: average serialization of a shared access
  /// (1.0 = conflict-free; 32.0 = every access a 32-way bank conflict).
  f64 bank_conflict_mult = 1.0;
  /// Share of the cost model's weighted issue slots spent on bank-conflict
  /// serialization (the slots beyond one per shared access).
  f64 bank_conflict_slot_pct = 0.0;
  /// Share of weighted issue slots spent replaying non-coalesced global
  /// accesses (scatter_replays * scatter_issue_penalty).
  f64 scatter_replay_slot_pct = 0.0;

  // --- divergence ---
  /// Average active lanes per SIMT instruction, in percent of a full warp.
  f64 active_lane_pct = 100.0;
  u64 simt_insts = 0;
  u64 ballot_rounds = 0;

  // --- atomics ---
  f64 atomic_conflict_pct = 0.0;

  // --- time-based block (kernel / run slices only) ---
  f64 time_ms = 0.0;
  f64 mem_time_ms = 0.0;
  f64 issue_time_ms = 0.0;
  /// Pipe busy time as a percentage of the modeled execution time
  /// (time - launch overhead); the saturated pipe reads 100 for a single
  /// kernel.
  f64 sol_mem_pct = 0.0;
  f64 sol_issue_pct = 0.0;
  Bound bound = Bound::kBalanced;
  /// DRAM bytes moved / total kernel time (compare to the profile's peak).
  f64 dram_gbps = 0.0;
  /// Useful bytes / total kernel time (the app-visible bandwidth).
  f64 achieved_gbps = 0.0;
  /// Kernel-launch overhead as a share of total modeled time.
  f64 launch_overhead_pct = 0.0;
  /// Shared-memory-limited occupancy proxy: blocks that fit per SM given
  /// the peak per-block footprint, relative to the profile's resident-
  /// block ceiling.  100 when no shared memory is used.
  f64 smem_occupancy_pct = 100.0;
  u64 launches = 0;
};

/// Counter-only metrics of one slice (valid for sites and kernels alike).
DerivedMetrics derive_metrics(const KernelEvents& ev, const DeviceProfile& p);

/// Metrics of a sequence of whole kernels: counter ratios plus the
/// time-based block.  `mem_time_ms` / `issue_time_ms` are the summed pipe
/// components, `peak_smem_bytes` the largest per-block footprint.
DerivedMetrics derive_run_metrics(const KernelEvents& ev, f64 time_ms,
                                  f64 mem_time_ms, f64 issue_time_ms,
                                  u64 launches, u32 peak_smem_bytes,
                                  const DeviceProfile& p);

/// Shared-memory-limited occupancy proxy in percent (see DerivedMetrics).
f64 smem_occupancy_pct(u32 peak_smem_bytes, const DeviceProfile& p);

// ---------------------------------------------------------------------------
// Guided analysis
// ---------------------------------------------------------------------------

/// One finding of the rules engine, severity-ranked in MetricsReport.
struct Diagnosis {
  enum class Severity { kInfo = 0, kWarning = 1, kCritical = 2 };
  std::string rule;   // stable id, e.g. "dram-overfetch"
  Severity severity = Severity::kInfo;
  std::string scope;  // "run", "kernel:<name>" or "site:<label>"
  f64 value = 0.0;    // the metric that fired (rule-specific)
  std::string message;
};
const char* to_string(Diagnosis::Severity s);

/// Tunable firing thresholds of the rules engine (percent unless noted).
struct RuleThresholds {
  f64 overfetch_pct = 25.0;        // unrequested share of moved bytes
  f64 site_traffic_share = 10.0;   // a site must carry this much traffic
  f64 bank_conflict_slot_pct = 20.0;
  f64 scatter_replay_slot_pct = 20.0;
  f64 launch_overhead_pct = 25.0;
  f64 active_lane_pct = 60.0;      // below: divergence warning
  f64 atomic_conflict_pct = 50.0;
  f64 smem_occupancy_pct = 50.0;   // below: occupancy warning
};

/// Per-kernel-name aggregate (all launches of "warp_ms_prescan" fold into
/// one group, in first-launch order).
struct KernelGroupMetrics {
  std::string name;
  u64 launches = 0;
  f64 time_ms = 0.0;
  f64 mem_time_ms = 0.0;
  f64 issue_time_ms = 0.0;
  u32 peak_smem_bytes = 0;
  KernelEvents events;
  DerivedMetrics metrics;
};

struct SiteMetrics {
  std::string label;
  KernelEvents events;
  DerivedMetrics metrics;
};

/// The full derived-metrics report of everything a device has recorded.
struct MetricsReport {
  std::string device;
  f64 total_ms = 0.0;
  u64 launches = 0;
  KernelEvents events;
  DerivedMetrics aggregate;
  AllocatorStats allocator;                 // device-lifetime pool stats
  ResilienceStats resilience;               // chaos + retry accounting (v6)
  BatchStats batching;                      // batched-serving accounting (v8)
  std::vector<KernelGroupMetrics> kernels;  // first-launch order
  std::vector<SiteMetrics> sites;           // registration order, non-empty
  std::vector<Diagnosis> diagnoses;         // most severe first
};

/// Roll the device's kernel log and site table into a MetricsReport and
/// run the rules engine.  Non-const for the same reason as site_stats():
/// pending per-site deltas are flushed first.
MetricsReport analyze_device(Device& dev, const RuleThresholds& th = {});

/// Human-readable report (the `ms_cli metrics` output).
std::string format_metrics(const MetricsReport& rep);

/// Emit the report as "metrics" / "kernels" / "diagnoses" members of the
/// currently open JSON object (the machine-readable embedding used by
/// ms_cli --json and the bench reports).
void write_metrics_json(JsonWriter& w, const MetricsReport& rep);

/// Every KernelEvents counter as fields of the open JSON object.
void write_events_fields(JsonWriter& w, const KernelEvents& ev);

/// One per-site entry: label, raw counters, counter-only derived metrics.
void write_site_json(JsonWriter& w, const std::string& label,
                     const KernelEvents& ev, const DeviceProfile& p);

// ---------------------------------------------------------------------------
// Run-diff regression tool
// ---------------------------------------------------------------------------

struct DiffOptions {
  /// Allowed relative drift on numeric values (0 = exact; the simulator is
  /// deterministic, so two reports from the same build must match exactly).
  f64 tolerance = 0.0;
  /// Stop collecting after this many findings (the comparison still runs
  /// to completion for the summary counts).
  u64 max_findings = 200;
};

struct DiffFinding {
  std::string path;  // results[method=...,m=8].sites[label=...].dram_read_tx
  std::string note;  // "baseline 2948 current 2950 (+0.07%)"
  f64 drift = 0.0;   // relative drift for numeric findings, 0 otherwise
};

struct DiffResult {
  std::vector<DiffFinding> findings;
  u64 values_compared = 0;
  u64 total_findings = 0;  // >= findings.size() when capped
};

/// Structurally compare two parsed JSON reports.  Array elements are
/// matched by identity keys (method/name/label/kernel + m/key_value) when
/// present, by position otherwise; numbers drift-checked against
/// opts.tolerance; strings and bools compared exactly; missing or extra
/// members are findings.  Throws std::runtime_error when either document
/// lacks schema_version or carries one != kReportSchemaVersion.
DiffResult diff_reports(const JsonValue& base, const JsonValue& cur,
                        const DiffOptions& opts = {});

}  // namespace ms::sim
