// Size-bucketed caching sub-allocator for the simulated device address
// space, in the spirit of CUB's CachingDeviceAllocator.
//
// The device address space used to be a monotonic bump pointer: every
// DeviceBuffer reserved a fresh sector-aligned range and nothing was ever
// returned, so a serving-style loop of repeated multisplit calls grew the
// simulated address space without bound and never re-hit L2 on its own
// scratch.  CachingAllocator keeps the bump pointer for fresh reservations
// but adds per-size free lists: a freed range is cached under its rounded
// (sector-aligned) size and the next allocation of the same rounded size
// reuses it, LIFO, before new address space is reserved.
//
// Determinism and bit-identical single-shot costs are design constraints
// here (see DESIGN.md §10):
//   - Free lists are keyed by the EXACT rounded size (not a power-of-two
//     size class), so an allocation that misses the cache bumps the
//     address space by exactly the amount the legacy allocator would have.
//     A fresh Device therefore hands out bit-identical addresses to the
//     legacy scheme until the first free+realloc cycle.
//   - Reuse is LIFO per size class: the most recently freed range is
//     handed out first.  This maximizes L2 re-hits and is fully
//     deterministic (no address randomization, no coalescing heuristics).
//   - set_pooling(false) drops frees on the floor, restoring the legacy
//     bump-only behavior exactly; the plan_reuse bench uses this for an
//     honest A/B of pooled vs per-call allocation.
//   - A deferred scope (DeferredScope RAII, entered around every
//     plan/method execution) parks frees in a pending list instead of the
//     free lists, flushing when the scope closes.  Methods that free and
//     reallocate scratch WITHIN one call (the recursive scan split's
//     per-round buffers) therefore still see fresh bump addresses exactly
//     like the legacy allocator -- reuse only ever happens BETWEEN runs,
//     which is what keeps single-shot modeled costs bit-identical.
//
// The allocator tracks address ranges only -- backing storage lives in
// each DeviceBuffer's host vector, and the sanitizer registers a fresh
// shadow per allocation, so initcheck still flags reads of recycled
// addresses that the new owner has not initialized.
#pragma once

#include <map>
#include <vector>

#include "sim/types.hpp"

namespace ms::sim {

class ChaosEngine;

/// Lifetime counters for the device sub-allocator, surfaced through
/// sim/metrics and the JSON reports (schema v4 `allocator` block).
struct AllocatorStats {
  u64 alloc_count = 0;      ///< allocate() calls
  u64 free_count = 0;       ///< deallocate() calls (pooling on or off)
  u64 reuse_hits = 0;       ///< allocations served from a free list
  u64 bytes_requested = 0;  ///< sum of rounded sizes over all allocations
  u64 bytes_reused = 0;     ///< portion of bytes_requested served from cache
  u64 bytes_reserved = 0;   ///< high-water address space (the bump pointer)
  u64 bytes_cached = 0;     ///< currently sitting on free lists
  u64 bytes_live = 0;       ///< currently allocated to live buffers
};

class CachingAllocator {
 public:
  /// `alignment` is the rounding granularity for both the address and the
  /// size of every range (the Device passes its L2 sector size).
  explicit CachingAllocator(u64 alignment) : align_(alignment) {
    check(alignment > 0, "CachingAllocator: alignment must be nonzero");
  }

  /// Reserve a range of `bytes` (rounded up to the alignment; zero-byte
  /// requests still occupy one aligned slot so every buffer has a unique
  /// base).  Returns the base address: a recycled range of the same
  /// rounded size when one is cached, fresh address space otherwise.
  u64 allocate(u64 bytes);

  /// Return the range starting at `base` to the free list.  `bytes` must
  /// be the size passed to the matching allocate().  With pooling off the
  /// range is abandoned instead (legacy bump-only behavior); inside a
  /// deferred scope it parks on the pending list until the scope closes.
  void deallocate(u64 base, u64 bytes);

  /// Defer frees while a multi-kernel operation executes: deallocate()
  /// parks ranges on a pending list, and the close of the outermost scope
  /// flushes them to the free lists.  Keeps within-call alloc/free/alloc
  /// sequences bump-identical to the legacy allocator while still letting
  /// the NEXT run reuse this run's scratch.  Scopes nest.
  void begin_deferred_scope() { ++deferred_depth_; }
  void end_deferred_scope();

  /// RAII deferred scope; exception-safe (a sanitizer abort mid-run still
  /// flushes the pending frees on unwind).
  class DeferredScope {
   public:
    explicit DeferredScope(CachingAllocator& a) : a_(a) {
      a_.begin_deferred_scope();
    }
    ~DeferredScope() { a_.end_deferred_scope(); }
    DeferredScope(const DeferredScope&) = delete;
    DeferredScope& operator=(const DeferredScope&) = delete;

   private:
    CachingAllocator& a_;
  };

  /// Enable/disable reuse.  Off: deallocate() abandons ranges and
  /// allocate() always bumps, byte-for-byte the pre-pooling allocator.
  void set_pooling(bool on);
  bool pooling() const { return pooling_; }

  /// Drop every cached range (they cannot be handed out again).  Stats
  /// keep their lifetime totals; bytes_cached drops to zero.
  void trim();

  const AllocatorStats& stats() const { return stats_; }

  /// Attach/detach the fault-injection engine (Device::enable_chaos).
  /// When set, allocate() consults it FIRST -- an injected failure throws
  /// before any stats are touched, leaving the allocator unchanged.
  void set_chaos(ChaosEngine* chaos) { chaos_ = chaos; }

  /// High-water mark of the bump pointer == total address space ever
  /// reserved.  Bounded under alloc/free cycles with pooling on.
  u64 reserved_bytes() const { return next_addr_; }

 private:
  u64 rounded(u64 bytes) const {
    return ceil_div(bytes == 0 ? u64{1} : bytes, align_) * align_;
  }

  u64 align_;
  u64 next_addr_ = 0;
  bool pooling_ = true;
  u32 deferred_depth_ = 0;
  /// rounded size -> LIFO stack of cached base addresses.  std::map keeps
  /// iteration (trim, accounting) deterministic.
  std::map<u64, std::vector<u64>> free_lists_;
  /// Frees parked inside a deferred scope, in free order: (base, rounded
  /// size).  Flushed to free_lists_ when the outermost scope closes.
  std::vector<std::pair<u64, u64>> pending_;
  AllocatorStats stats_;
  ChaosEngine* chaos_ = nullptr;
};

}  // namespace ms::sim
