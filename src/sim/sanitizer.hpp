// Sanitizer subsystem: the simulator's compute-sanitizer analogue.
//
// Three opt-in tools, mirroring NVIDIA's `compute-sanitizer`:
//
//   * memcheck  -- out-of-bounds global/shared accesses.  An OOB access is
//     always fatal (the backing storage simply does not exist), but with
//     memcheck enabled the fault is also recorded as a report and the
//     launch helpers degrade gracefully instead of unwinding the caller
//     (the `cudaGetLastError` idiom: the fault parks in
//     `Device::last_error()`).
//   * initcheck -- shadow valid-bit tracking per element of every
//     DeviceBuffer and per 4-byte word of the shared-memory arena.  A
//     device read of a word that was never written (by host setup or by a
//     kernel) produces a report; execution continues with whatever garbage
//     the storage holds, exactly like the real tool.
//   * racecheck -- shared-memory hazard detection via per-word access
//     epochs.  `Block::sync()` advances the block's barrier epoch; a warp
//     touching a word that a *different* warp wrote in the same epoch is a
//     RAW/WAW/WAR hazard (atomic-vs-atomic accesses are exempt, as on
//     hardware).  The simulator executes warps sequentially, so racy
//     kernels still produce deterministic -- deceptively correct --
//     results; racecheck is what surfaces the missing barrier.
//
// Faults and reports carry a FaultContext (kernel, object, element index,
// lane, warp, block), and fatal ones are thrown as SimError, which derives
// from std::logic_error so legacy catch sites keep working.
//
// Enabling any tool does not change modeled costs: the hooks never touch
// KernelEvents.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace ms::sim {

/// Sentinel for "no specific lane" in a FaultContext.
inline constexpr u32 kNoLane = 0xFFFFFFFFu;

enum class FaultKind : u8 {
  kGlobalOOB,        // memcheck: global access out of bounds
  kSharedOOB,        // memcheck: shared access out of bounds
  kHostOOB,          // memcheck: host-side DeviceBuffer index out of bounds
  kUninitGlobalRead, // initcheck: read of never-written global word
  kUninitSharedRead, // initcheck: read of never-written shared word
  kRaceHazard,       // racecheck: cross-warp same-epoch shared access
  kSmemOvercommit,   // warning: shared allocation beyond device capacity
  kInvalidConfig,    // malformed MultisplitConfig rejected at plan build
  kLaunchFailure,    // a kernel launch was aborted by a fault
  kAllocFailure,     // device allocation failed (chaos-injected OOM)
  kValidationFailure,// resilient executor: output failed end-to-end check
  kRetryExhausted,   // resilient executor: attempts/budget exhausted
};

enum class FaultSeverity : u8 { kError, kWarning };

const char* to_string(FaultKind k);

/// Everything a report or fatal fault knows about where it happened.
struct FaultContext {
  FaultKind kind = FaultKind::kLaunchFailure;
  FaultSeverity severity = FaultSeverity::kError;
  std::string kernel;     // executing kernel name, or "<host>"
  std::string object;     // buffer / shared-array label
  u64 index = 0;          // element index of the access
  u64 extent = 0;         // object size in elements
  u32 lane = kNoLane;     // faulting lane, or kNoLane
  u32 warp_in_block = 0;
  u32 block = 0;
  u64 global_warp = 0;
  std::string detail;     // free-form: access kind, conflicting warp, ...
};

/// Multi-line compute-sanitizer-style rendering of one fault.
std::string format_fault(const FaultContext& ctx);

/// Structured simulator fault.  Derives from std::logic_error so existing
/// `catch (const std::logic_error&)` sites (and EXPECT_THROW assertions)
/// keep working; new code can catch SimError and inspect context().
class SimError : public std::logic_error {
 public:
  explicit SimError(FaultContext ctx)
      : std::logic_error(format_fault(ctx)), ctx_(std::move(ctx)) {}

  const FaultContext& context() const { return ctx_; }

 private:
  FaultContext ctx_;
};

/// Which tools are armed.  `fail_fast` additionally turns every error
/// report into a SimError thrown at the end of the offending launch --
/// the mode the MS_SANITIZE environment variable uses so that rerunning an
/// unmodified test suite fails on the first finding
/// (compute-sanitizer's --error-exitcode).
struct SanitizerConfig {
  bool memcheck = false;
  bool racecheck = false;
  bool initcheck = false;
  bool fail_fast = false;

  bool any() const { return memcheck || racecheck || initcheck; }

  static SanitizerConfig all() {
    return SanitizerConfig{true, true, true, false};
  }

  /// Parse a comma-separated tool list: "memcheck,racecheck,initcheck",
  /// "all", or "none".  Returns nullopt on an unknown token.
  static std::optional<SanitizerConfig> parse(std::string_view csv);
};

/// Per-element valid bits of one DeviceBuffer (initcheck shadow state).
/// Registered at buffer construction; the buffer caches the pointer so the
/// hot paths never pay a map lookup (entries are node-stable).
struct GlobalShadow {
  std::string name;
  u64 base = 0;
  u64 count = 0;
  u32 elem_size = 0;
  std::vector<u8> valid;  // one byte per element

  void mark_all() { std::fill(valid.begin(), valid.end(), u8{1}); }
};

/// Per-word shadow state of one block's shared-memory arena (initcheck
/// valid bits + racecheck access epochs).  Word = 4 bytes, matching the
/// bank width; an 8-byte element spans two words.
struct SmemShadow {
  std::vector<u8> valid;
  std::vector<u32> write_epoch, writer;
  std::vector<u8> write_atomic;
  std::vector<u32> read_epoch, reader;

  void resize(u32 words) {
    valid.resize(words, 0);
    write_epoch.resize(words, 0);
    writer.resize(words, 0);
    write_atomic.resize(words, 0);
    read_epoch.resize(words, 0);
    reader.resize(words, 0);
  }
};

/// The device-wide sanitizer: configuration, the report sink, and the
/// global-buffer shadow registry.  Owned by Device; disabled by default
/// (every hook first reads one bool).
class Sanitizer {
 public:
  void configure(SanitizerConfig cfg) {
    cfg_ = cfg;
    clear_reports();
  }
  const SanitizerConfig& config() const { return cfg_; }
  bool memcheck() const { return cfg_.memcheck; }
  bool racecheck() const { return cfg_.racecheck; }
  bool initcheck() const { return cfg_.initcheck; }
  bool fail_fast() const { return cfg_.fail_fast; }
  bool any() const { return cfg_.any(); }
  /// True when any tool that shadows shared memory is armed.
  bool smem_tools() const { return cfg_.racecheck || cfg_.initcheck; }

  // --- report sink ---
  /// Record one finding.  Errors and warnings are counted separately; the
  /// first kMaxStoredReports are kept verbatim, the rest only counted.
  void report(FaultContext ctx);
  u64 error_count() const { return errors_; }
  u64 warning_count() const { return warnings_; }
  const std::vector<FaultContext>& reports() const { return reports_; }
  /// The most recent error-severity report (for fail_fast rethrow).
  const std::optional<FaultContext>& last_error_report() const {
    return last_error_report_;
  }
  void clear_reports();
  /// Full compute-sanitizer-style dump: every stored report plus a
  /// summary line.  Empty string when there is nothing to report.
  std::string format_reports() const;

  // --- initcheck: global-buffer shadow registry ---
  /// Register a buffer allocation; returns the stable shadow slot (null
  /// when initcheck is off, so untracked buffers cost nothing).
  GlobalShadow* on_buffer_alloc(u64 base, u64 count, u32 elem_size,
                                std::string name);
  void on_buffer_free(u64 base);

  static constexpr u64 kMaxStoredReports = 128;

 private:
  SanitizerConfig cfg_;
  std::vector<FaultContext> reports_;
  std::optional<FaultContext> last_error_report_;
  u64 errors_ = 0;
  u64 warnings_ = 0;
  u64 dropped_ = 0;
  std::unordered_map<u64, std::unique_ptr<GlobalShadow>> buffers_;
};

/// "name" if non-empty, else "buffer@<base byte address>".
std::string object_label(std::string_view name, u64 base);

}  // namespace ms::sim
