// Cost tape: recorded accounting streams for the trace-replay fast path.
//
// Many multisplit stages are *cost-uniform*: the addresses they touch, the
// warp ops they issue and the shared-memory conflict patterns they produce
// depend only on the launch shape (n, m, block count), never on key values.
// The prescan histogram stage is the canonical example -- it reads the
// input at unit stride and charges mask-only warp histograms regardless of
// which buckets the keys land in.  For a reused MultisplitPlan those
// stages re-derive the exact same accounting every run.
//
// The tape machinery exploits that: the first run *records* each
// annotated launch's merged CounterShard stream (per-site counter slices,
// peak shared memory and the RLE sector-touch stream -- the same
// representation the parallel scheduler already uses), a second run
// *verifies* the recording byte-for-byte, and later runs *replay* it:
// the launch body still executes for its data effects (with charging
// suppressed), and the taped shards are merged through the live L2 in the
// original order.  Because Device::merge_shard replaying a shard is
// bit-identical to executing it serially (the PR-4 determinism argument),
// replayed runs produce bit-identical modeled costs, per-site
// attribution, cache evolution and DRAM traffic.
//
// Anything that could invalidate the recording -- a different buffer
// placement, an unexpected launch name, a sanitizer report, a fault, a
// thrown exception -- flips `tape_ok` and the run conservatively falls
// back to live accounting mid-flight (every launch is self-contained, so
// a partial replay followed by live execution is still exact).
#pragma once

#include <string>
#include <vector>

#include "sim/shard.hpp"
#include "sim/types.hpp"

namespace ms::sim {

/// What the device does with the active cost tape.
enum class TapeMode : u8 {
  kOff,     ///< no tape attached (normal execution)
  kRecord,  ///< live accounting, with annotated launches appended to the tape
  kReplay,  ///< annotated launches merge taped shards instead of charging
};

/// One recorded launch: the kernel name (validated on replay) and the
/// merged shard stream.  Serial recordings hold one shard for the whole
/// launch; parallel recordings hold one shard per scheduled item, in
/// ascending item order (the merge order either way).
struct LaunchTape {
  std::string name;
  std::vector<CounterShard> shards;
};

/// A full recording of one plan run: every annotated launch in issue
/// order, plus the base address of every device allocation made during
/// the run (scratch placement must match for the sector streams to be
/// valid on replay).
struct CostTape {
  std::vector<LaunchTape> launches;
  std::vector<u64> allocs;

  void clear() {
    launches.clear();
    allocs.clear();
  }
};

/// Cost-relevant equality of two shards: the counter totals, the per-site
/// slices, the peak shared-memory footprint and the sector-touch stream.
/// (Faulted/reporting shards are never taped, so those fields need no
/// comparison.)
inline bool shards_cost_equal(const CounterShard& a, const CounterShard& b) {
  return a.events == b.events && a.sites == b.sites &&
         a.peak_smem == b.peak_smem && a.sector_ops == b.sector_ops;
}

/// True when two recordings are byte-for-byte interchangeable: same
/// launches, same shard streams, same allocation placement.  The
/// record-then-verify handshake uses this to *prove* a plan's annotated
/// stages are input-independent before ever replaying.
inline bool tapes_equal(const CostTape& a, const CostTape& b) {
  if (a.allocs != b.allocs) return false;
  if (a.launches.size() != b.launches.size()) return false;
  for (std::size_t i = 0; i < a.launches.size(); ++i) {
    const LaunchTape& la = a.launches[i];
    const LaunchTape& lb = b.launches[i];
    if (la.name != lb.name) return false;
    if (la.shards.size() != lb.shards.size()) return false;
    for (std::size_t s = 0; s < la.shards.size(); ++s) {
      if (!shards_cost_equal(la.shards[s], lb.shards[s])) return false;
    }
  }
  return true;
}

}  // namespace ms::sim
