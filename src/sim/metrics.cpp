#include "sim/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"

namespace ms::sim {

namespace {

/// printf into a std::string (all report text is ASCII + fixed formats).
std::string strf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf);
}

f64 pct(f64 num, f64 den) { return den > 0.0 ? 100.0 * num / den : 0.0; }

/// The cost model's weighted issue-slot total (the denominator of the
/// slot-share metrics).  Mirrors model_kernel_cost exactly.
f64 weighted_issue_slots(const KernelEvents& ev, const DeviceProfile& p) {
  return static_cast<f64>(ev.issue_slots) +
         static_cast<f64>(ev.warps_launched) * p.warp_overhead_slots +
         static_cast<f64>(ev.smem_slots) * p.smem_slot_weight +
         static_cast<f64>(ev.scatter_replays) * p.scatter_issue_penalty;
}

}  // namespace

const char* to_string(Bound b) {
  switch (b) {
    case Bound::kMemory: return "memory";
    case Bound::kIssue: return "issue";
    case Bound::kBalanced: return "balanced";
  }
  return "?";
}

const char* to_string(Diagnosis::Severity s) {
  switch (s) {
    case Diagnosis::Severity::kInfo: return "info";
    case Diagnosis::Severity::kWarning: return "warning";
    case Diagnosis::Severity::kCritical: return "critical";
  }
  return "?";
}

Bound classify_bound(f64 mem_time_ms, f64 issue_time_ms) {
  if (mem_time_ms <= 0.0 && issue_time_ms <= 0.0) return Bound::kBalanced;
  if (mem_time_ms >= issue_time_ms * 1.05) return Bound::kMemory;
  if (issue_time_ms >= mem_time_ms * 1.05) return Bound::kIssue;
  return Bound::kBalanced;
}

f64 smem_occupancy_pct(u32 peak_smem_bytes, const DeviceProfile& p) {
  if (peak_smem_bytes == 0) return 100.0;
  if (p.max_resident_blocks == 0) return 100.0;
  const u64 fit = p.smem_bytes_per_block / peak_smem_bytes;  // 0 if too big
  const u64 resident = std::min<u64>(fit, p.max_resident_blocks);
  return 100.0 * static_cast<f64>(resident) / p.max_resident_blocks;
}

DerivedMetrics derive_metrics(const KernelEvents& ev, const DeviceProfile& p) {
  DerivedMetrics m;
  const f64 tb = p.transaction_bytes;
  m.dram_bytes = static_cast<f64>(ev.dram_read_tx + ev.dram_write_tx) * tb;
  m.sector_bytes =
      static_cast<f64>(ev.l2_read_segments + ev.l2_write_segments) * tb;
  m.useful_bytes =
      static_cast<f64>(ev.useful_bytes_read + ev.useful_bytes_written);

  if (m.sector_bytes > 0.0) {
    m.coalescing_pct = std::min(100.0, pct(m.useful_bytes, m.sector_bytes));
    m.sector_overfetch =
        m.useful_bytes > 0.0 ? m.sector_bytes / m.useful_bytes : 1.0;
  }
  if (ev.l2_read_segments > 0) {
    // dram_read_tx counts read misses only (writes allocate without fill),
    // so the hit rate of the read stream is 1 - misses/touches.
    const f64 miss = pct(static_cast<f64>(ev.dram_read_tx),
                         static_cast<f64>(ev.l2_read_segments));
    m.l2_read_hit_pct = std::max(0.0, 100.0 - miss);
  }

  if (ev.smem_accesses > 0) {
    m.bank_conflict_mult = static_cast<f64>(ev.smem_slots) /
                           static_cast<f64>(ev.smem_accesses);
  }
  const f64 slots = weighted_issue_slots(ev, p);
  if (slots > 0.0) {
    const f64 conflict_extra =
        static_cast<f64>(ev.smem_slots - std::min(ev.smem_slots,
                                                  ev.smem_accesses)) *
        p.smem_slot_weight;
    m.bank_conflict_slot_pct = pct(conflict_extra, slots);
    m.scatter_replay_slot_pct =
        pct(static_cast<f64>(ev.scatter_replays) * p.scatter_issue_penalty,
            slots);
  }

  m.simt_insts = ev.simt_insts;
  m.ballot_rounds = ev.ballot_rounds;
  if (ev.simt_insts > 0) {
    m.active_lane_pct = pct(static_cast<f64>(ev.simt_active_lanes),
                            static_cast<f64>(kWarpSize) * ev.simt_insts);
  }
  if (ev.atomic_ops > 0) {
    m.atomic_conflict_pct = pct(static_cast<f64>(ev.atomic_conflicts),
                                static_cast<f64>(ev.atomic_ops));
  }
  return m;
}

DerivedMetrics derive_run_metrics(const KernelEvents& ev, f64 time_ms,
                                  f64 mem_time_ms, f64 issue_time_ms,
                                  u64 launches, u32 peak_smem_bytes,
                                  const DeviceProfile& p) {
  DerivedMetrics m = derive_metrics(ev, p);
  m.time_ms = time_ms;
  m.mem_time_ms = mem_time_ms;
  m.issue_time_ms = issue_time_ms;
  m.launches = launches;
  const f64 launch_ms =
      static_cast<f64>(launches) * p.kernel_launch_us * 1e-3;
  const f64 exec_ms = std::max(0.0, time_ms - launch_ms);
  m.sol_mem_pct = std::min(100.0, pct(mem_time_ms, exec_ms));
  m.sol_issue_pct = std::min(100.0, pct(issue_time_ms, exec_ms));
  m.bound = classify_bound(mem_time_ms, issue_time_ms);
  if (time_ms > 0.0) {
    m.dram_gbps = m.dram_bytes / (time_ms * 1e-3) / 1e9;
    m.achieved_gbps = m.useful_bytes / (time_ms * 1e-3) / 1e9;
    m.launch_overhead_pct = std::min(100.0, pct(launch_ms, time_ms));
  }
  m.smem_occupancy_pct = smem_occupancy_pct(peak_smem_bytes, p);
  return m;
}

// ---------------------------------------------------------------------------
// analyze_device + rules engine
// ---------------------------------------------------------------------------

namespace {

void run_rules(MetricsReport& rep, const DeviceProfile& p,
               const RuleThresholds& th) {
  auto add = [&](const char* rule, Diagnosis::Severity sev, std::string scope,
                 f64 value, std::string msg) {
    rep.diagnoses.push_back(
        Diagnosis{rule, sev, std::move(scope), value, std::move(msg)});
  };
  const DerivedMetrics& agg = rep.aggregate;

  // Rule: speed-of-light.  Always fires (info); states which pipe bounds
  // the run and how far from the device peaks it sits.
  switch (agg.bound) {
    case Bound::kMemory:
      add("speed-of-light", Diagnosis::Severity::kInfo, "run", agg.sol_mem_pct,
          strf("run is DRAM-bound: memory pipe busy %.0f%% of modeled "
               "execution time (issue pipe %.0f%%); moving %.2f GB/s of DRAM "
               "traffic against a %.1f GB/s peak",
               agg.sol_mem_pct, agg.sol_issue_pct, agg.dram_gbps,
               p.mem_bandwidth_gbps));
      break;
    case Bound::kIssue:
      add("speed-of-light", Diagnosis::Severity::kInfo, "run",
          agg.sol_issue_pct,
          strf("run is issue-bound: instruction pipe busy %.0f%% of modeled "
               "execution time (memory pipe %.0f%%); DRAM bandwidth is not "
               "the limiter (%.2f of %.1f GB/s)",
               agg.sol_issue_pct, agg.sol_mem_pct, agg.dram_gbps,
               p.mem_bandwidth_gbps));
      break;
    case Bound::kBalanced:
      add("speed-of-light", Diagnosis::Severity::kInfo, "run",
          std::max(agg.sol_mem_pct, agg.sol_issue_pct),
          strf("run is balanced: memory pipe %.0f%% vs issue pipe %.0f%% of "
               "modeled execution time -- no single pipe dominates",
               agg.sol_mem_pct, agg.sol_issue_pct));
      break;
  }

  // Rule: dram-overfetch.  A site moving a meaningful share of the run's
  // sector traffic where a large fraction of moved bytes was never
  // requested.  Critical when the run is memory-bound (the wasted bytes
  // are on the critical path), warning otherwise.
  const auto overfetch_sev = agg.bound == Bound::kIssue
                                 ? Diagnosis::Severity::kWarning
                                 : Diagnosis::Severity::kCritical;
  bool site_fired = false;
  for (const auto& s : rep.sites) {
    const f64 share = pct(s.metrics.sector_bytes, agg.sector_bytes);
    const f64 unrequested = 100.0 - s.metrics.coalescing_pct;
    if (share >= th.site_traffic_share && unrequested > th.overfetch_pct) {
      site_fired = true;
      add("dram-overfetch", overfetch_sev, "site:" + s.label, unrequested,
          strf("%.0f%% of bytes moved at site '%s' were never requested "
               "(over-fetch %.1fx, %.0f%% of run sector traffic) -- improve "
               "coalescing, e.g. stage elements in shared memory to reorder "
               "them before this access",
               unrequested, s.label.c_str(), s.metrics.sector_overfetch,
               share));
    }
  }
  if (!site_fired && 100.0 - agg.coalescing_pct > th.overfetch_pct) {
    add("dram-overfetch", overfetch_sev, "run", 100.0 - agg.coalescing_pct,
        strf("%.0f%% of all moved bytes were never requested (over-fetch "
             "%.1fx) -- accesses are poorly coalesced",
             100.0 - agg.coalescing_pct, agg.sector_overfetch));
  }

  // Rule: bank-conflict-replays.  Serialized shared-memory banks eating a
  // large share of weighted issue slots; critical when the run is actually
  // issue-bound (they sit on the critical path).
  if (agg.bank_conflict_slot_pct >= th.bank_conflict_slot_pct) {
    const char* worst = nullptr;
    u64 worst_extra = 0;
    for (const auto& s : rep.sites) {
      const u64 extra =
          s.events.smem_slots -
          std::min(s.events.smem_slots, s.events.smem_accesses);
      if (extra > worst_extra) {
        worst_extra = extra;
        worst = s.label.c_str();
      }
    }
    add("bank-conflict-replays",
        agg.bound == Bound::kMemory ? Diagnosis::Severity::kWarning
                                    : Diagnosis::Severity::kCritical,
        worst ? std::string("site:") + worst : std::string("run"),
        agg.bank_conflict_slot_pct,
        strf("issue-bound via shared-memory bank-conflict replays: %.0f%% of "
             "weighted issue slots serialize conflicting banks (avg %.1fx "
             "slots per access%s%s) -- pad the shared array or permute the "
             "indexing",
             agg.bank_conflict_slot_pct, agg.bank_conflict_mult,
             worst ? ", worst at site " : "", worst ? worst : ""));
  }

  // Rule: scatter-replays.  Non-coalesced global accesses burning issue
  // slots in replays.
  if (agg.scatter_replay_slot_pct >= th.scatter_replay_slot_pct) {
    const char* worst = nullptr;
    u64 worst_replays = 0;
    for (const auto& s : rep.sites) {
      if (s.events.scatter_replays > worst_replays) {
        worst_replays = s.events.scatter_replays;
        worst = s.label.c_str();
      }
    }
    add("scatter-replays",
        agg.bound == Bound::kMemory ? Diagnosis::Severity::kInfo
                                    : Diagnosis::Severity::kWarning,
        worst ? std::string("site:") + worst : std::string("run"),
        agg.scatter_replay_slot_pct,
        strf("%.0f%% of weighted issue slots replay fragmented global "
             "accesses%s%s -- coalesce (sort/stage) before touching DRAM",
             agg.scatter_replay_slot_pct, worst ? ", worst at site " : "",
             worst ? worst : ""));
  }

  // Rule: launch-overhead.  Fixed per-launch cost dominating small inputs.
  if (agg.launch_overhead_pct >= th.launch_overhead_pct) {
    add("launch-overhead",
        agg.launch_overhead_pct > 50.0 ? Diagnosis::Severity::kCritical
                                       : Diagnosis::Severity::kWarning,
        "run", agg.launch_overhead_pct,
        strf("kernel-launch overhead is %.0f%% of total modeled time "
             "(%llu launches x %.1f us) -- the run is launch-overhead "
             "dominated at this problem size; fuse kernels or batch more "
             "work per launch",
             agg.launch_overhead_pct,
             static_cast<unsigned long long>(agg.launches),
             p.kernel_launch_us));
  }

  // Rule: warp-divergence.  Per kernel group: mostly-idle lanes on
  // mask-carrying instructions.
  for (const auto& g : rep.kernels) {
    if (g.events.simt_insts == 0) continue;
    if (g.metrics.active_lane_pct < th.active_lane_pct) {
      add("warp-divergence", Diagnosis::Severity::kWarning,
          "kernel:" + g.name, g.metrics.active_lane_pct,
          strf("kernel '%s' averages %.0f%% active lanes per SIMT "
               "instruction -- warps execute mostly diverged; consider "
               "compacting work or ballot-based reassignment",
               g.name.c_str(), g.metrics.active_lane_pct));
    }
  }

  // Rule: atomic-contention.  Serialized atomics on hot addresses.
  if (rep.events.atomic_ops > 0 &&
      agg.atomic_conflict_pct >= th.atomic_conflict_pct) {
    add("atomic-contention", Diagnosis::Severity::kWarning, "run",
        agg.atomic_conflict_pct,
        strf("%.0f%% of atomic operations conflicted on the same address -- "
             "atomics serialize; privatize per warp/block and reduce",
             agg.atomic_conflict_pct));
  }

  // Rule: smem-occupancy.  Per kernel group with a shared footprint:
  // shared memory caps resident blocks well below the device ceiling.
  for (const auto& g : rep.kernels) {
    if (g.peak_smem_bytes == 0) continue;
    if (g.metrics.smem_occupancy_pct < th.smem_occupancy_pct) {
      add("smem-occupancy", Diagnosis::Severity::kWarning, "kernel:" + g.name,
          g.metrics.smem_occupancy_pct,
          strf("kernel '%s' allocates %u B shared memory per block, "
               "limiting residency to %.0f%% of the %u-block ceiling -- "
               "less latency hiding; shrink the footprint or split blocks",
               g.name.c_str(), g.peak_smem_bytes, g.metrics.smem_occupancy_pct,
               p.max_resident_blocks));
    }
  }

  std::stable_sort(rep.diagnoses.begin(), rep.diagnoses.end(),
                   [](const Diagnosis& a, const Diagnosis& b) {
                     if (a.severity != b.severity)
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     return a.value > b.value;
                   });
}

}  // namespace

MetricsReport analyze_device(Device& dev, const RuleThresholds& th) {
  const DeviceProfile& p = dev.profile();
  MetricsReport rep;
  rep.device = p.name;
  rep.allocator = dev.allocator().stats();
  rep.resilience = dev.resilience_stats();
  rep.batching = dev.batch_stats();

  f64 mem_sum = 0.0, issue_sum = 0.0;
  u32 run_peak = 0;
  for (const auto& r : dev.records()) {
    rep.launches += 1;
    rep.total_ms += r.time_ms;
    rep.events += r.events;
    mem_sum += r.mem_time_ms;
    issue_sum += r.issue_time_ms;
    run_peak = std::max(run_peak, r.peak_smem_bytes);

    auto it = std::find_if(rep.kernels.begin(), rep.kernels.end(),
                           [&](const auto& g) { return g.name == r.name; });
    if (it == rep.kernels.end()) {
      rep.kernels.push_back(KernelGroupMetrics{});
      it = rep.kernels.end() - 1;
      it->name = r.name;
    }
    it->launches += 1;
    it->time_ms += r.time_ms;
    it->mem_time_ms += r.mem_time_ms;
    it->issue_time_ms += r.issue_time_ms;
    it->peak_smem_bytes = std::max(it->peak_smem_bytes, r.peak_smem_bytes);
    it->events += r.events;
  }
  for (auto& g : rep.kernels) {
    g.metrics = derive_run_metrics(g.events, g.time_ms, g.mem_time_ms,
                                   g.issue_time_ms, g.launches,
                                   g.peak_smem_bytes, p);
  }
  rep.aggregate = derive_run_metrics(rep.events, rep.total_ms, mem_sum,
                                     issue_sum, rep.launches, run_peak, p);

  for (const auto& s : dev.site_stats()) {
    if (s.events == KernelEvents{}) continue;
    SiteMetrics sm;
    sm.label = s.label;
    sm.events = s.events;
    sm.metrics = derive_metrics(s.events, p);
    rep.sites.push_back(std::move(sm));
  }

  run_rules(rep, p, th);
  return rep;
}

// ---------------------------------------------------------------------------
// Text report
// ---------------------------------------------------------------------------

std::string format_metrics(const MetricsReport& rep) {
  std::ostringstream os;
  const DerivedMetrics& a = rep.aggregate;
  os << "=== derived metrics: " << rep.device << " ===\n";
  os << strf("launches %llu, total %.4f ms (mem pipe %.4f ms, issue pipe "
             "%.4f ms, launch %.4f ms)\n",
             static_cast<unsigned long long>(rep.launches), rep.total_ms,
             a.mem_time_ms, a.issue_time_ms,
             rep.total_ms * a.launch_overhead_pct / 100.0);
  os << strf("speed of light: mem %.1f%% | issue %.1f%%  -> %s-bound\n",
             a.sol_mem_pct, a.sol_issue_pct, to_string(a.bound));
  os << strf("dram %.3f MB moved (%.2f GB/s), useful %.3f MB (%.2f GB/s), "
             "coalescing %.1f%%, over-fetch %.2fx, L2 read hit %.1f%%\n",
             a.dram_bytes / 1e6, a.dram_gbps, a.useful_bytes / 1e6,
             a.achieved_gbps, a.coalescing_pct, a.sector_overfetch,
             a.l2_read_hit_pct);
  os << strf("divergence: %.1f%% active lanes over %llu SIMT insts, %llu "
             "ballot rounds\n",
             a.active_lane_pct, static_cast<unsigned long long>(a.simt_insts),
             static_cast<unsigned long long>(a.ballot_rounds));
  os << strf("shared memory: %.2fx avg bank serialization (%.1f%% of issue "
             "slots), occupancy proxy %.0f%%\n",
             a.bank_conflict_mult, a.bank_conflict_slot_pct,
             a.smem_occupancy_pct);

  if (!rep.kernels.empty()) {
    os << "\nkernels (grouped by name):\n";
    os << strf("  %-36s %7s %10s %8s %8s  %-8s %6s %6s\n", "name", "launch",
               "time_ms", "mem_ms", "iss_ms", "bound", "coal%", "lane%");
    for (const auto& g : rep.kernels) {
      os << strf("  %-36s %7llu %10.4f %8.4f %8.4f  %-8s %6.1f %6.1f\n",
                 g.name.c_str(), static_cast<unsigned long long>(g.launches),
                 g.time_ms, g.mem_time_ms, g.issue_time_ms,
                 to_string(g.metrics.bound), g.metrics.coalescing_pct,
                 g.metrics.active_lane_pct);
    }
  }

  if (!rep.sites.empty()) {
    os << "\nsites:\n";
    os << strf("  %-36s %10s %7s %6s %7s %7s %6s\n", "label", "sector_kB",
               "share%", "coal%", "ovf", "conflx", "lane%");
    for (const auto& s : rep.sites) {
      os << strf("  %-36s %10.1f %7.1f %6.1f %7.2f %7.2f %6.1f\n",
                 s.label.c_str(), s.metrics.sector_bytes / 1e3,
                 pct(s.metrics.sector_bytes, a.sector_bytes),
                 s.metrics.coalescing_pct, s.metrics.sector_overfetch,
                 s.metrics.bank_conflict_mult, s.metrics.active_lane_pct);
    }
  }

  if (!rep.diagnoses.empty()) {
    os << "\nguided analysis:\n";
    for (const auto& d : rep.diagnoses) {
      os << strf("  [%-8s] %-22s %s\n", to_string(d.severity), d.rule.c_str(),
                 d.message.c_str());
      os << strf("             scope %s, value %.1f\n", d.scope.c_str(),
                 d.value);
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

void write_events_fields(JsonWriter& w, const KernelEvents& ev) {
  w.field("issue_slots", ev.issue_slots);
  w.field("scatter_replays", ev.scatter_replays);
  w.field("smem_slots", ev.smem_slots);
  w.field("dram_read_tx", ev.dram_read_tx);
  w.field("dram_write_tx", ev.dram_write_tx);
  w.field("l2_read_segments", ev.l2_read_segments);
  w.field("l2_write_segments", ev.l2_write_segments);
  w.field("useful_bytes_read", ev.useful_bytes_read);
  w.field("useful_bytes_written", ev.useful_bytes_written);
  w.field("warps_launched", ev.warps_launched);
  w.field("blocks_launched", ev.blocks_launched);
  w.field("barriers", ev.barriers);
  w.field("atomic_ops", ev.atomic_ops);
  w.field("atomic_conflicts", ev.atomic_conflicts);
  w.field("simt_insts", ev.simt_insts);
  w.field("simt_active_lanes", ev.simt_active_lanes);
  w.field("ballot_rounds", ev.ballot_rounds);
  w.field("smem_accesses", ev.smem_accesses);
}

namespace {

void write_counter_metrics_fields(JsonWriter& w, const DerivedMetrics& m) {
  w.field("coalescing_pct", m.coalescing_pct);
  w.field("sector_overfetch", m.sector_overfetch);
  w.field("l2_read_hit_pct", m.l2_read_hit_pct);
  w.field("bank_conflict_mult", m.bank_conflict_mult);
  w.field("bank_conflict_slot_pct", m.bank_conflict_slot_pct);
  w.field("scatter_replay_slot_pct", m.scatter_replay_slot_pct);
  w.field("active_lane_pct", m.active_lane_pct);
  w.field("atomic_conflict_pct", m.atomic_conflict_pct);
}

void write_run_metrics_object(JsonWriter& w, const DerivedMetrics& m) {
  w.begin_object();
  w.field("time_ms", m.time_ms);
  w.field("mem_time_ms", m.mem_time_ms);
  w.field("issue_time_ms", m.issue_time_ms);
  w.field("sol_mem_pct", m.sol_mem_pct);
  w.field("sol_issue_pct", m.sol_issue_pct);
  w.field("bound", to_string(m.bound));
  w.field("dram_gbps", m.dram_gbps);
  w.field("achieved_gbps", m.achieved_gbps);
  w.field("launch_overhead_pct", m.launch_overhead_pct);
  w.field("smem_occupancy_pct", m.smem_occupancy_pct);
  w.field("dram_bytes", m.dram_bytes);
  w.field("sector_bytes", m.sector_bytes);
  w.field("useful_bytes", m.useful_bytes);
  write_counter_metrics_fields(w, m);
  w.end_object();
}

}  // namespace

void write_site_json(JsonWriter& w, const std::string& label,
                     const KernelEvents& ev, const DeviceProfile& p) {
  const DerivedMetrics m = derive_metrics(ev, p);
  w.begin_object();
  w.field("label", label);
  write_events_fields(w, ev);
  write_counter_metrics_fields(w, m);
  w.end_object();
}

void write_metrics_json(JsonWriter& w, const MetricsReport& rep) {
  w.key("metrics");
  write_run_metrics_object(w, rep.aggregate);

  w.key("counters");
  w.begin_object();
  write_events_fields(w, rep.events);
  w.end_object();

  // Device sub-allocator stats (schema v4): address-space and pool-reuse
  // accounting over the device's lifetime.  Deterministic host-side
  // counters, so the tolerance-0 gates compare them exactly too.
  w.key("allocator");
  w.begin_object();
  w.field("alloc_count", rep.allocator.alloc_count);
  w.field("free_count", rep.allocator.free_count);
  w.field("reuse_hits", rep.allocator.reuse_hits);
  w.field("bytes_requested", rep.allocator.bytes_requested);
  w.field("bytes_reused", rep.allocator.bytes_reused);
  w.field("bytes_reserved", rep.allocator.bytes_reserved);
  w.field("bytes_cached", rep.allocator.bytes_cached);
  w.field("bytes_live", rep.allocator.bytes_live);
  w.end_object();

  // Fault-injection and resilient-executor accounting (schema v6).  All
  // zeros when chaos is off and the plain entry points are used, so the
  // tolerance-0 gates compare the block exactly.
  w.key("resilience");
  w.begin_object();
  w.field("injected_alloc_failures", rep.resilience.injected_alloc_failures);
  w.field("injected_launch_aborts", rep.resilience.injected_launch_aborts);
  w.field("injected_bit_flips", rep.resilience.injected_bit_flips);
  w.field("injected_l2_corruptions", rep.resilience.injected_l2_corruptions);
  w.field("requests", rep.resilience.requests);
  w.field("faults_observed", rep.resilience.faults_observed);
  w.field("retries", rep.resilience.retries);
  w.field("fallbacks", rep.resilience.fallbacks);
  w.field("validation_failures", rep.resilience.validation_failures);
  w.field("recovered", rep.resilience.recovered);
  w.field("lost", rep.resilience.lost);
  w.end_object();

  // Batched-serving accounting (schema v8).  All zeros when the device
  // never served batches, so the tolerance-0 gates compare the block
  // exactly on existing benches.
  w.key("batching");
  w.begin_object();
  w.field("batches", rep.batching.batches);
  w.field("packed_problems", rep.batching.packed_problems);
  w.field("unpacked_problems", rep.batching.unpacked_problems);
  w.field("fused_launches", rep.batching.fused_launches);
  w.field("slots_filled", rep.batching.slots_filled);
  w.field("slots_total", rep.batching.slots_total);
  w.field("fill_ratio", rep.batching.fill_ratio());
  w.field("problems_retried", rep.batching.problems_retried);
  w.end_object();

  w.key("kernels");
  w.begin_array();
  for (const auto& g : rep.kernels) {
    w.begin_object();
    w.field("name", g.name);
    w.field("launches", g.launches);
    w.field("peak_smem_bytes", g.peak_smem_bytes);
    w.key("counters");
    w.begin_object();
    write_events_fields(w, g.events);
    w.end_object();
    w.key("metrics");
    write_run_metrics_object(w, g.metrics);
    w.end_object();
  }
  w.end_array();

  w.key("diagnoses");
  w.begin_array();
  for (const auto& d : rep.diagnoses) {
    w.begin_object();
    w.field("rule", d.rule);
    w.field("severity", to_string(d.severity));
    w.field("scope", d.scope);
    w.field("value", d.value);
    w.field("message", d.message);
    w.end_object();
  }
  w.end_array();
}

// ---------------------------------------------------------------------------
// Run-diff regression tool
// ---------------------------------------------------------------------------

namespace {

const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

/// Print a number the way a human wrote it: integers without a decimal
/// point, everything else with enough digits to identify the value.
std::string num_str(f64 v) {
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    return strf("%.0f", v);
  }
  return strf("%.9g", v);
}

/// Identity key of an array element: report rows are identified by the
/// subset of these members they carry (bench results by method/m/key_value,
/// kernel groups by name, site entries by label).
std::string identity_of(const JsonValue& v) {
  static constexpr std::array<const char*, 7> kIdKeys = {
      "method", "method_selected", "name", "label", "kernel", "m",
      "key_value"};
  if (!v.is_object()) return {};
  std::string id;
  for (const char* k : kIdKeys) {
    const JsonValue* f = v.find(k);
    if (f == nullptr) continue;
    if (!id.empty()) id += ',';
    id += k;
    id += '=';
    switch (f->type) {
      case JsonValue::Type::kString: id += f->str; break;
      case JsonValue::Type::kNumber: id += num_str(f->number); break;
      case JsonValue::Type::kBool: id += f->boolean ? "true" : "false"; break;
      default: id += type_name(f->type); break;
    }
  }
  return id;
}

struct DiffCtx {
  const DiffOptions* opts;
  DiffResult* out;

  void finding(const std::string& path, std::string note, f64 drift = 0.0) {
    out->total_findings += 1;
    if (out->findings.size() < opts->max_findings) {
      out->findings.push_back(DiffFinding{path, std::move(note), drift});
    }
  }
};

std::string join(const std::string& path, std::string_view key) {
  if (path.empty()) return std::string(key);
  return path + "." + std::string(key);
}

void diff_value(DiffCtx& ctx, const std::string& path, const JsonValue& base,
                const JsonValue& cur);

/// host_* fields (host_ms, host_keys_per_sec, ...) report the simulator's
/// own wall-clock, which varies run to run and with --host-threads; they
/// are never part of the modeled results, so diffs skip them entirely.
bool is_host_time_key(std::string_view k) { return k.rfind("host_", 0) == 0; }

void diff_object(DiffCtx& ctx, const std::string& path, const JsonValue& base,
                 const JsonValue& cur) {
  for (const auto& [k, bv] : base.object) {
    if (is_host_time_key(k)) continue;
    const JsonValue* cv = cur.find(k);
    if (cv == nullptr) {
      ctx.finding(join(path, k), "present in baseline, missing in current");
    } else {
      diff_value(ctx, join(path, k), bv, *cv);
    }
  }
  for (const auto& [k, cv] : cur.object) {
    (void)cv;
    if (is_host_time_key(k)) continue;
    if (base.find(k) == nullptr) {
      ctx.finding(join(path, k), "not in baseline, added in current");
    }
  }
}

void diff_array(DiffCtx& ctx, const std::string& path, const JsonValue& base,
                const JsonValue& cur) {
  // Keyed matching when every element on both sides carries an identity;
  // positional otherwise (bare number arrays, trace-style lists).
  bool keyed = !base.array.empty() || !cur.array.empty();
  for (const auto& e : base.array) keyed = keyed && !identity_of(e).empty();
  for (const auto& e : cur.array) keyed = keyed && !identity_of(e).empty();

  if (keyed) {
    std::vector<std::pair<std::string, const JsonValue*>> cur_rows;
    cur_rows.reserve(cur.array.size());
    for (const auto& e : cur.array) cur_rows.emplace_back(identity_of(e), &e);
    std::vector<bool> matched(cur_rows.size(), false);
    for (const auto& be : base.array) {
      const std::string id = identity_of(be);
      const std::string row_path = path + "[" + id + "]";
      bool found = false;
      for (size_t i = 0; i < cur_rows.size(); ++i) {
        if (!matched[i] && cur_rows[i].first == id) {
          matched[i] = true;
          found = true;
          diff_value(ctx, row_path, be, *cur_rows[i].second);
          break;
        }
      }
      if (!found) {
        ctx.finding(row_path, "row present in baseline, missing in current");
      }
    }
    for (size_t i = 0; i < cur_rows.size(); ++i) {
      if (!matched[i]) {
        ctx.finding(path + "[" + cur_rows[i].first + "]",
                    "row not in baseline, added in current");
      }
    }
    return;
  }

  const size_t common = std::min(base.array.size(), cur.array.size());
  for (size_t i = 0; i < common; ++i) {
    diff_value(ctx, path + "[" + std::to_string(i) + "]", base.array[i],
               cur.array[i]);
  }
  if (base.array.size() != cur.array.size()) {
    ctx.finding(path, strf("array length changed: baseline %zu current %zu",
                           base.array.size(), cur.array.size()));
  }
}

void diff_value(DiffCtx& ctx, const std::string& path, const JsonValue& base,
                const JsonValue& cur) {
  if (base.type != cur.type) {
    ctx.finding(path, strf("type changed: baseline %s, current %s",
                           type_name(base.type), type_name(cur.type)));
    return;
  }
  switch (base.type) {
    case JsonValue::Type::kNull:
      ctx.out->values_compared += 1;
      break;
    case JsonValue::Type::kBool:
      ctx.out->values_compared += 1;
      if (base.boolean != cur.boolean) {
        ctx.finding(path, strf("baseline %s, current %s",
                               base.boolean ? "true" : "false",
                               cur.boolean ? "true" : "false"));
      }
      break;
    case JsonValue::Type::kString:
      ctx.out->values_compared += 1;
      if (base.str != cur.str) {
        ctx.finding(path, "baseline \"" + base.str + "\", current \"" +
                              cur.str + "\"");
      }
      break;
    case JsonValue::Type::kNumber: {
      ctx.out->values_compared += 1;
      const f64 a = base.number, b = cur.number;
      if (a == b) break;
      const f64 denom = std::max(std::fabs(a), std::fabs(b));
      const f64 drift = denom > 0.0 ? std::fabs(b - a) / denom : 0.0;
      if (drift > ctx.opts->tolerance) {
        ctx.finding(path,
                    strf("baseline %s, current %s (%+.4g%% drift)",
                         num_str(a).c_str(), num_str(b).c_str(),
                         100.0 * (b - a) / (denom > 0.0 ? denom : 1.0)),
                    drift);
      }
      break;
    }
    case JsonValue::Type::kObject:
      diff_object(ctx, path, base, cur);
      break;
    case JsonValue::Type::kArray:
      diff_array(ctx, path, base, cur);
      break;
  }
}

u64 schema_of(const JsonValue& v, const char* which) {
  if (!v.is_object()) {
    throw std::runtime_error(
        strf("%s report: top-level JSON value is not an object", which));
  }
  const JsonValue* s = v.find("schema_version");
  if (s == nullptr || !s->is_number()) {
    throw std::runtime_error(
        strf("%s report has no schema_version field -- it predates the "
             "metrics schema; regenerate it with this build",
             which));
  }
  return static_cast<u64>(s->number);
}

}  // namespace

DiffResult diff_reports(const JsonValue& base, const JsonValue& cur,
                        const DiffOptions& opts) {
  const u64 bs = schema_of(base, "baseline");
  const u64 cs = schema_of(cur, "current");
  if (bs != cs) {
    throw std::runtime_error(
        strf("schema_version mismatch: baseline v%llu vs current v%llu -- "
             "regenerate both reports with the same build",
             static_cast<unsigned long long>(bs),
             static_cast<unsigned long long>(cs)));
  }
  if (bs != kReportSchemaVersion) {
    throw std::runtime_error(
        strf("unsupported schema_version v%llu (this build reads v%u)",
             static_cast<unsigned long long>(bs), kReportSchemaVersion));
  }
  DiffResult out;
  DiffCtx ctx{&opts, &out};
  diff_value(ctx, "", base, cur);
  return out;
}

}  // namespace ms::sim
