// Fundamental types for the SIMT simulator.
//
// The simulator executes GPU-style kernels on the host, warp by warp, with
// all 32 lanes of a warp advancing in lockstep.  A `LaneArray<T>` is the
// simulator's picture of one warp-wide register: element i is the value the
// register holds in lane i.  All warp-wide intrinsics (ballot, shfl, popc)
// and all warp-wide memory instructions operate on LaneArrays.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ms {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

inline constexpr u32 kWarpSize = 32;

/// One bit per lane of a warp; bit i corresponds to lane i.
using LaneMask = u32;
inline constexpr LaneMask kFullMask = 0xFFFFFFFFu;

/// Throwing check used across the library: simulator misuse is a programming
/// error and must not be silently ignored, but we prefer an exception with a
/// message over an abort so tests can assert on failures.
[[noreturn]] inline void fail(const std::string& msg) {
  throw std::logic_error("ms: " + msg);
}

inline void check(bool ok, const char* msg) {
  if (!ok) fail(msg);
}

/// A warp-wide register: one value of type T per lane.
template <typename T>
class LaneArray {
 public:
  constexpr LaneArray() : v_{} {}

  /// Broadcast a scalar into every lane.
  static constexpr LaneArray filled(T x) {
    LaneArray a;
    for (u32 i = 0; i < kWarpSize; ++i) a.v_[i] = x;
    return a;
  }

  /// Lane i holds i (the CUDA `laneIdx`).
  static constexpr LaneArray iota(T base = T{0}) {
    LaneArray a;
    for (u32 i = 0; i < kWarpSize; ++i) a.v_[i] = static_cast<T>(base + static_cast<T>(i));
    return a;
  }

  constexpr T& operator[](u32 lane) { return v_[lane]; }
  constexpr const T& operator[](u32 lane) const { return v_[lane]; }

  /// Contiguous lane storage, for the host-SIMD lane engine (sim/simd.hpp)
  /// and bulk copies.  Lane i is element i; the storage is 32-byte aligned
  /// so a warp register loads as whole host vector registers.
  constexpr T* data() { return v_.data(); }
  constexpr const T* data() const { return v_.data(); }

  /// Elementwise transform; `f` is applied per active lane in lane order.
  template <typename F>
  constexpr auto map(F&& f) const {
    LaneArray<decltype(f(v_[0]))> out;
    for (u32 i = 0; i < kWarpSize; ++i) out[i] = f(v_[i]);
    return out;
  }

  template <typename U, typename F>
  constexpr auto zip(const LaneArray<U>& other, F&& f) const {
    LaneArray<decltype(f(v_[0], other[0]))> out;
    for (u32 i = 0; i < kWarpSize; ++i) out[i] = f(v_[i], other[i]);
    return out;
  }

  std::string to_string() const {
    std::ostringstream os;
    os << "[";
    for (u32 i = 0; i < kWarpSize; ++i) os << (i ? " " : "") << +v_[i];
    os << "]";
    return os.str();
  }

 private:
  alignas(32) std::array<T, kWarpSize> v_;
};

/// Iterate over the set bits of a lane mask (ascending lane order).
template <typename F>
inline void for_each_lane(LaneMask mask, F&& f) {
  while (mask != 0) {
    const u32 lane = static_cast<u32>(std::countr_zero(mask));
    f(lane);
    mask &= mask - 1;
  }
}

inline constexpr bool lane_active(LaneMask mask, u32 lane) {
  return (mask >> lane) & 1u;
}

/// ceil(a / b) for positive integers.
inline constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

/// ceil(log2(x)) with the convention ceil_log2(0) == ceil_log2(1) == 0.
inline constexpr u32 ceil_log2(u64 x) {
  u32 bits = 0;
  u64 v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace ms
