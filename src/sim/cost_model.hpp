// Turns counted kernel events into modeled milliseconds for a device.
//
// The model is a two-resource roofline:
//
//   issue_time = (issue_slots + smem_slots
//                 + scatter_replays * scatter_issue_penalty) / issue_rate
//   mem_time   = (dram_read_tx + dram_write_tx) * sector_bytes / bandwidth
//   kernel     = launch_overhead + max(issue_time, mem_time)
//
// A kernel is either bandwidth-bound or issue-bound; launch overhead is
// additive.  Every input to the model is a *measured* event count from the
// simulated execution -- coalescing, L2 write combining, bank conflicts and
// ballot-round counts all show up organically in the counters rather than
// being assumed.
#pragma once

#include "sim/events.hpp"
#include "sim/profile.hpp"

namespace ms::sim {

struct CostBreakdown {
  f64 time_ms = 0.0;
  f64 mem_time_ms = 0.0;
  f64 issue_time_ms = 0.0;
};

CostBreakdown model_kernel_cost(const KernelEvents& ev, const DeviceProfile& p);

/// Achieved DRAM bandwidth of a kernel in GB/s (diagnostics).
f64 achieved_bandwidth_gbps(const KernelRecord& r);

/// Fraction of moved DRAM bytes that were requested by lanes (coalescing
/// efficiency; 1.0 = perfectly coalesced).
f64 coalescing_efficiency(const KernelEvents& ev, const DeviceProfile& p);

}  // namespace ms::sim
