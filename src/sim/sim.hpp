// Umbrella header for the SIMT simulator substrate.
#pragma once

#include "sim/block.hpp"
#include "sim/cache.hpp"
#include "sim/cost_model.hpp"
#include "sim/counters.hpp"
#include "sim/device.hpp"
#include "sim/events.hpp"
#include "sim/faultinject.hpp"
#include "sim/json.hpp"
#include "sim/kernel.hpp"
#include "sim/memory.hpp"
#include "sim/metrics.hpp"
#include "sim/profile.hpp"
#include "sim/sanitizer.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"
#include "sim/warp.hpp"
