// Direct Multisplit and Warp-level Multisplit (paper Section 5).
//
// Both split the input into warp-sized subproblems, following the paper's
// Algorithm 1, with thread coarsening (the paper's footnote 5): each warp
// owns a tile of 32 * items_per_thread keys, processed in 32-wide rounds,
// so L = ceil(n / (32 * k)) columns in the histogram matrix H:
//
//   pre-scan:  each warp accumulates its ballot-based histogram (Alg. 2)
//              over its rounds and stores one column of H (layout
//              H[bucket * L + warp] so the row-vectorized device scan needs
//              no transpose);
//   scan:      one device-wide exclusive scan over the m x L matrix;
//   post-scan: each warp recomputes histogram + per-element local offsets
//              (merged Alg. 2+3 ranking; recomputing beats a global
//              round-trip, footnote 6) and writes elements out.
//
// Direct MS writes each round's 32 elements straight to their final
// positions: one store instruction scatters across up to m bucket runs, so
// every round pays the fragmentation.  Warp-level MS (Section 5.2.1) first
// reorders the whole tile in shared memory so that elements of one bucket
// are adjacent; the write-out rounds then cover contiguous position runs
// -- fewer memory segments per instruction, at the price of the reorder
// work.  This is the paper's central locality-vs-local-work trade, and the
// crossover (reordering wins for small m, loses for large m) emerges from
// the counted segments.
#pragma once

#include <optional>

#include "multisplit/bucket.hpp"
#include "multisplit/common.hpp"
#include "primitives/scan.hpp"
#include "primitives/warp_ops.hpp"

namespace ms::split::detail {

using prim::warp_exclusive_scan;
using prim::warp_histogram;
using prim::warp_rank;
using sim::Block;
using sim::Device;
using sim::DeviceBuffer;
using sim::Warp;

/// Fill `result.bucket_offsets` (size m+1) from the head of the scanned
/// histogram matrix G: bucket j starts at G[j * L] (the count of all
/// elements in buckets < j).
inline void offsets_from_scanned(const DeviceBuffer<u32>& g, u32 m, u64 L,
                                 u64 n, std::vector<u32>& out) {
  out.resize(m + 1);
  for (u32 j = 0; j < m; ++j) out[j] = g[static_cast<u64>(j) * L];
  out[m] = static_cast<u32>(n);
}

/// Shared implementation of Direct MS (kReorder = false) and Warp-level MS
/// (kReorder = true).  `vals_in`/`vals_out` are null for key-only splits.
template <bool kReorder, typename BucketFn, typename V = u32>
MultisplitResult warp_granularity_ms(Device& dev,
                                     const DeviceBuffer<u32>& keys_in,
                                     DeviceBuffer<u32>& keys_out,
                                     const DeviceBuffer<V>* vals_in,
                                     DeviceBuffer<V>* vals_out, u32 m,
                                     BucketFn bucket_of,
                                     const MultisplitConfig& cfg) {
  // Section 5.3: Direct MS extends past the warp width by giving each
  // thread ceil(m/32) bucket bitmaps; all histogram-related traffic is
  // linearized by the same factor ("no theoretical concerns, but will
  // degrade performance").  Warp-level reordering keeps the m <= 32 bound:
  // its in-warp bucket scan is a warp-wide shuffle program.
  check(m >= 1, "multisplit: need at least one bucket");
  check(!kReorder || m <= kWarpSize,
        "warp-level multisplit supports m <= 32 (use direct or block level)");
  const u32 groups = static_cast<u32>(ceil_div(m, kWarpSize));
  const bool small_m = (m <= kWarpSize);
  const u64 n = keys_in.size();
  const u32 k = std::max<u32>(1, cfg.items_per_thread);
  const u32 tile_w = kWarpSize * k;           // keys per warp subproblem
  const u64 L = ceil_div(n, tile_w);          // number of subproblems
  const u32 nw = cfg.warps_per_block;
  const u32 nblocks = static_cast<u32>(ceil_div(L, nw));
  constexpr u32 kBucketCost = bucket_charge_cost<BucketFn>;

  DeviceBuffer<u32> h(dev, static_cast<u64>(m) * L);
  DeviceBuffer<u32> g(dev, static_cast<u64>(m) * L);

  // nvprof-style access sites: registered once, charged per scope below.
  const char* tag = kReorder ? "warp_ms" : "direct_ms";
  const sim::SiteId prescan_load_site =
      dev.site_id(std::string(tag) + "/prescan_load");
  const sim::SiteId scatter_site =
      dev.site_id(std::string(tag) + "/postscan_scatter");

  MultisplitResult result;
  // Pre-scan + scan are cost-uniform (shape-derived addresses, mask-only
  // histogram charges, lane-computed staging indices), so a reused plan
  // may record/replay their accounting; the post-scan is key-dependent
  // and always runs live.  See block_ms.hpp / sim/tape.hpp.
  std::optional<sim::UniformStageScope> uniform(std::in_place, dev);
  sim::ProfileRegion prescan_region(dev, std::string(tag) + "/prescan");

  // ---------------- pre-scan ----------------
  // Per-warp histograms are staged in shared memory and written to H one
  // *row chunk* at a time: H[d*L + s0 .. s0+NW) covers the block's NW
  // subproblems contiguously, so the global store of the histogram matrix
  // is coalesced instead of one strided line per warp per bucket.
  sim::launch_blocks(dev, kReorder ? "warp_ms_prescan" : "direct_ms_prescan",
                     nblocks, nw, [&](Block& blk) {
    const u32 mpad = m | 1u;  // odd stride: conflict-free staging (32 banks)
    auto h2 = blk.shared<u32>(nw * mpad);
    const u64 s0 = static_cast<u64>(blk.block_id()) * nw;
    const u32 vw = static_cast<u32>(s0 < L ? std::min<u64>(nw, L - s0) : 0);
    blk.for_each_warp([&](Warp& w) {
      const u64 s = w.warp_id();
      if (s >= L) return;
      std::vector<LaneArray<u32>> accs(groups);
      for (u32 r = 0; r < k; ++r) {
        const u64 base = s * tile_w + static_cast<u64>(r) * kWarpSize;
        const LaneMask mask = prim::detail::row_mask(base, n);
        if (mask == 0) break;
        const auto keys = [&] {
          sim::ScopedSite site(dev, prescan_load_site);
          return w.load(keys_in, base, mask);
        }();
        w.charge(kBucketCost);
        const auto buckets = keys.map(bucket_of);
        if (small_m) {
          accs[0] =
              prim::lane_add(w, accs[0], warp_histogram(w, buckets, m, mask));
        } else {
          const auto histo = prim::warp_histogram_multi(w, buckets, m, mask);
          for (u32 gi = 0; gi < groups; ++gi)
            accs[gi] = prim::lane_add(w, accs[gi], histo[gi]);
        }
      }
      if (small_m) {
        w.smem_write(h2, LaneArray<u32>::iota(w.warp_in_block() * mpad),
                     accs[0], sim::tail_mask(m));
      } else {
        // Linearized per-warp H column store (Section 5.3).
        for (u32 gi = 0; gi < groups; ++gi) {
          const u32 d0 = gi * kWarpSize;
          LaneArray<u64> idx{};
          for (u32 lane = 0; lane < kWarpSize; ++lane)
            idx[lane] = static_cast<u64>(d0 + lane) * L + s;
          w.charge(2);
          w.scatter(h, idx, accs[gi], sim::tail_mask(m - d0));
        }
      }
    });
    blk.sync();
    if (vw == 0 || !small_m) return;
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      const u32 warps_m = static_cast<u32>(nw);
      for (u32 d = wi; d < m; d += warps_m) {
        w.charge(1);
        const auto sidx =
            Warp::lane_id().map([&](u32 lane) { return lane * mpad + d; });
        const auto vals = w.smem_read(h2, sidx, sim::tail_mask(vw));
        w.store(h, static_cast<u64>(d) * L + s0, vals, sim::tail_mask(vw));
      }
    });
  });
  const sim::TimingSummary prescan_sum = prescan_region.end();

  // ---------------- scan ----------------
  sim::ProfileRegion scan_region(dev, std::string(tag) + "/scan");
  prim::exclusive_scan<u32>(dev, h, g);
  const sim::TimingSummary scan_sum = scan_region.end();
  uniform.reset();
  sim::ProfileRegion postscan_region(dev, std::string(tag) + "/postscan");

  // ---------------- post-scan ----------------
  sim::launch_blocks(dev, kReorder ? "warp_ms_postscan" : "direct_ms_postscan",
                     nblocks, nw, [&](Block& blk) {
    sim::SharedArray<u32> st_keys;
    sim::SharedArray<V> st_vals;
    if constexpr (kReorder) {
      st_keys = blk.shared<u32>(blk.num_warps() * tile_w);
      if (vals_in != nullptr)
        st_vals = blk.shared<V>(blk.num_warps() * tile_w);
    }
    // Stage the block's slice of G through shared memory (the mirror image
    // of the pre-scan's coalesced H store): row chunk G[d*L + s0 .. s0+NW)
    // is read once per block and distributed to the warps' columns.
    const u32 mpad = m | 1u;
    auto g2 = blk.shared<u32>(small_m ? nw * mpad : 1);
    const u64 s0 = static_cast<u64>(blk.block_id()) * nw;
    const u32 vw = static_cast<u32>(s0 < L ? std::min<u64>(nw, L - s0) : 0);
    if (vw == 0) return;
    if (small_m) {
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        for (u32 d = wi; d < m; d += nw) {
          const auto vals = w.load(g, static_cast<u64>(d) * L + s0,
                                   sim::tail_mask(vw));
          w.charge(1);
          const auto sidx =
              Warp::lane_id().map([&](u32 lane) { return lane * mpad + d; });
          w.smem_write(g2, sidx, vals, sim::tail_mask(vw));
        }
      });
      blk.sync();
    }
    blk.for_each_warp([&](Warp& w) {
      const u64 s = w.warp_id();
      if (s >= L) return;
      const u64 wbase = s * tile_w;
      const u32 valid_total = static_cast<u32>(
          std::min<u64>(tile_w, n > wbase ? n - wbase : 0));
      if (valid_total == 0) return;
      // Global base of each bucket for this subproblem: lane d holds
      // G[d * L + s], staged in shared memory (m <= 32 only; the
      // linearized m > 32 path gathers G per element instead).
      LaneArray<u32> gbase{};
      if (small_m) {
        gbase = w.smem_read(g2,
                            LaneArray<u32>::iota(w.warp_in_block() * mpad),
                            sim::tail_mask(m));
      }

      if constexpr (!kReorder) {
        // Direct MS: every round scatters straight to final positions.
        // Footnote-6 ablation: the per-round histograms can either be
        // recomputed with ballots (default; what the paper ships) or the
        // *tile* histogram reloaded from H with per-round offsets still
        // computed locally -- reloading replaces log(m) ballot rounds per
        // round with one strided gather.
        LaneArray<u32> acc{};
        std::vector<LaneArray<u32>> acc_groups(small_m ? 0 : groups);
        for (u32 r = 0; r < k; ++r) {
          const u64 base = wbase + static_cast<u64>(r) * kWarpSize;
          const LaneMask mask = prim::detail::row_mask(base, n);
          if (mask == 0) break;
          const auto keys = w.load(keys_in, base, mask);
          w.charge(kBucketCost);
          const auto buckets = keys.map(bucket_of);
          if (!small_m) {
            // Section 5.3 linearized path: multi-bitmap offsets, per-group
            // histograms, and a per-element gather of G by own bucket.
            const auto offsets =
                prim::warp_offsets_multi(w, buckets, m, mask);
            const auto histo = prim::warp_histogram_multi(w, buckets, m, mask);
            LaneArray<u32> prev_rounds{};
            for (u32 gi = 0; gi < groups; ++gi) {
              const auto cand = w.shfl(
                  acc_groups[gi],
                  buckets.map([](u32 b) { return b % kWarpSize; }), mask);
              w.charge(1);
              for (u32 lane = 0; lane < kWarpSize; ++lane) {
                if (buckets[lane] / kWarpSize == gi)
                  prev_rounds[lane] = cand[lane];
              }
              acc_groups[gi] = prim::lane_add(w, acc_groups[gi], histo[gi]);
            }
            LaneArray<u64> gidx{};
            for (u32 lane = 0; lane < kWarpSize; ++lane)
              gidx[lane] = static_cast<u64>(buckets[lane]) * L + s;
            w.charge(1);
            const auto my_g = w.gather(g, gidx, mask);
            w.charge(2);
            LaneArray<u64> fin{};
            for (u32 lane = 0; lane < kWarpSize; ++lane)
              fin[lane] = static_cast<u64>(my_g[lane]) + prev_rounds[lane] +
                          offsets[lane];
            {
              sim::ScopedSite site(dev, scatter_site);
              w.scatter(keys_out, fin, keys, mask);
            }
            if (vals_in != nullptr) {
              const auto vals = w.load(*vals_in, base, mask);
              sim::ScopedSite site(dev, scatter_site);
              w.scatter(*vals_out, fin, vals, mask);
            }
            continue;
          }
          LaneArray<u32> offsets, histo;
          if (cfg.reload_histograms) {
            // Reload the subproblem histogram stored by the pre-scan
            // instead of recomputing it; offsets still need their ballot
            // pass.  Only meaningful with one item per thread, where the
            // subproblem histogram is exactly this round's histogram.
            check(k == 1, "reload_histograms requires items_per_thread == 1");
            offsets = prim::warp_offsets(w, buckets, m, mask);
            LaneArray<u64> hidx{};
            for (u32 lane = 0; lane < kWarpSize; ++lane)
              hidx[lane] = static_cast<u64>(lane) * L + s;
            w.charge(1);
            histo = w.gather(h, hidx, sim::tail_mask(m));
          } else {
            const auto rank = warp_rank(w, buckets, m, mask);
            offsets = rank.offsets;
            histo = rank.histogram;
          }
          const auto prev_rounds = w.shfl(acc, buckets, mask);
          const auto my_g = w.shfl(gbase, buckets, mask);
          w.charge(2);
          LaneArray<u64> fin{};
          for (u32 lane = 0; lane < kWarpSize; ++lane)
            fin[lane] = static_cast<u64>(my_g[lane]) + prev_rounds[lane] +
                        offsets[lane];
          {
            sim::ScopedSite site(dev, scatter_site);
            w.scatter(keys_out, fin, keys, mask);
          }
          if (vals_in != nullptr) {
            const auto vals = w.load(*vals_in, base, mask);
            sim::ScopedSite site(dev, scatter_site);
            w.scatter(*vals_out, fin, vals, mask);
          }
          acc = prim::lane_add(w, acc, histo);
        }
      } else {
        // Warp-level MS: stable local multisplit of the whole tile in
        // shared memory, then contiguous write-out rounds.
        const u32 slot0 = w.warp_in_block() * tile_w;
        LaneArray<u32> acc{};
        std::vector<LaneArray<u32>> keys_r(k), buckets_r(k), rank_r(k);
        std::vector<LaneArray<V>> vals_r(vals_in != nullptr ? k : 0);
        std::vector<LaneMask> mask_r(k, 0);
        for (u32 r = 0; r < k; ++r) {
          const u64 base = wbase + static_cast<u64>(r) * kWarpSize;
          const LaneMask mask = prim::detail::row_mask(base, n);
          mask_r[r] = mask;
          if (mask == 0) break;
          keys_r[r] = w.load(keys_in, base, mask);
          if (vals_in != nullptr) vals_r[r] = w.load(*vals_in, base, mask);
          w.charge(kBucketCost);
          buckets_r[r] = keys_r[r].map(bucket_of);
          const auto rank = warp_rank(w, buckets_r[r], m, mask);
          const auto prev_rounds = w.shfl(acc, buckets_r[r], mask);
          rank_r[r] = prim::lane_add(w, prev_rounds, rank.offsets);
          acc = prim::lane_add(w, acc, rank.histogram);
        }
        // Start of each bucket within the tile (equation (1) locally).
        const auto hscan = warp_exclusive_scan(w, acc);
        for (u32 r = 0; r < k; ++r) {
          const LaneMask mask = mask_r[r];
          if (mask == 0) break;
          const auto start = w.shfl(hscan, buckets_r[r], mask);
          const auto new_idx = prim::lane_add(w, start, rank_r[r]);
          w.charge(1);
          const auto st_idx =
              new_idx.map([slot0](u32 i) { return slot0 + i; });
          w.smem_write(st_keys, st_idx, keys_r[r], mask);
          if (vals_in != nullptr)
            w.smem_write(st_vals, st_idx, vals_r[r], mask);
        }
        // Write-out: positions t and t+1 of the reordered tile map to
        // adjacent (or bucket-boundary) global addresses.
        for (u32 t = 0; t < valid_total; t += kWarpSize) {
          const LaneMask mask2 = sim::tail_mask(valid_total - t);
          const auto keys2 =
              w.smem_read(st_keys, LaneArray<u32>::iota(slot0 + t), mask2);
          w.charge(kBucketCost);
          const auto buckets2 = keys2.map(bucket_of);
          const auto start2 = w.shfl(hscan, buckets2, mask2);
          const auto my_g = w.shfl(gbase, buckets2, mask2);
          w.charge(2);
          LaneArray<u64> fin{};
          for (u32 lane = 0; lane < kWarpSize; ++lane)
            fin[lane] = static_cast<u64>(my_g[lane]) +
                        (t + lane - start2[lane]);
          {
            sim::ScopedSite site(dev, scatter_site);
            w.scatter(keys_out, fin, keys2, mask2);
          }
          if (vals_in != nullptr) {
            const auto vals2 =
                w.smem_read(st_vals, LaneArray<u32>::iota(slot0 + t), mask2);
            sim::ScopedSite site(dev, scatter_site);
            w.scatter(*vals_out, fin, vals2, mask2);
          }
        }
      }
    });
  });

  const sim::TimingSummary postscan_sum = postscan_region.end();
  // Span-only epilogue stage (host-side offsets assembly launches no
  // kernels, so no ProfileRegion: regions()/trace stage bands unchanged).
  sim::SpanScope epilogue_span(dev, sim::SpanKind::kStage,
                               std::string(tag) + "/epilogue");
  result.stages.prescan_ms = prescan_sum.total_ms;
  result.stages.scan_ms = scan_sum.total_ms;
  result.stages.postscan_ms = postscan_sum.total_ms;
  result.summary = prescan_sum;
  result.summary += scan_sum;
  result.summary += postscan_sum;
  offsets_from_scanned(g, m, L, n, result.bucket_offsets);
  return result;
}

}  // namespace ms::split::detail
