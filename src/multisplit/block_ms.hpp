// Block-level Multisplit (paper Sections 5.1, 5.2.2 and 6.4).
//
// Subproblems are whole thread blocks (NW * 32 * k elements, k = block
// thread coarsening), so the global histogram matrix H shrinks by a
// further factor of NW*k relative to the warp-granularity methods -- the
// cheapest possible global scan -- at the price of hierarchical local
// work:
//
//   pre-scan:  warp histograms (accumulated over k rounds) ->
//              shared-memory multi-reduction across the block's warps ->
//              one column of H per *block*;
//   scan:      device-wide exclusive scan over m x (n / (NW*32*k));
//   post-scan: warp histograms + stable per-element ranks again, an
//              exclusive multi-scan across warps (per bucket) for
//              block-level local offsets, a stable block-wide reorder in
//              shared memory, and contiguous per-bucket writes.
//
// The paper's configuration is k = 1 (one item per thread, 256-key
// blocks); that is the default.  k > 1 is this library's extension in the
// direction the paper's footnote 5 hints at and later implementations
// took: longer per-bucket runs, a smaller scan, better amortized
// overheads, more shared memory per block.
//
// For m > 32 the per-row multi-scan no longer fits the warp-per-bucket
// scheme; following Section 6.4, the row-vectorized histogram matrix
// (m * NW entries) is stored in shared memory and scanned with one
// block-wide scan (k is forced to 1 there: the histogram matrix already
// strains shared memory).  All shared-memory pressure and bank behaviour
// of that regime is charged organically.
#pragma once

#include <optional>

#include "multisplit/bucket.hpp"
#include "multisplit/common.hpp"
#include "multisplit/warp_ms.hpp"
#include "primitives/block_ops.hpp"

namespace ms::split::detail {

template <typename BucketFn, typename V = u32>
MultisplitResult block_ms(Device& dev, const DeviceBuffer<u32>& keys_in,
                          DeviceBuffer<u32>& keys_out,
                          const DeviceBuffer<V>* vals_in,
                          DeviceBuffer<V>* vals_out, u32 m,
                          BucketFn bucket_of, const MultisplitConfig& cfg) {
  const u64 n = keys_in.size();
  const u32 nw = cfg.warps_per_block;
  const bool small_m = (m <= kWarpSize);
  const u32 k = small_m ? std::max<u32>(1, cfg.block_items_per_thread) : 1;
  const u32 tile = nw * kWarpSize * k;
  const u64 L = ceil_div(n, tile);  // one subproblem per block
  const u32 nblocks = static_cast<u32>(L);
  constexpr u32 kBucketCost = bucket_charge_cost<BucketFn>;
  const u32 groups = static_cast<u32>(ceil_div(m, kWarpSize));

  DeviceBuffer<u32> h(dev, static_cast<u64>(m) * L);
  DeviceBuffer<u32> g(dev, static_cast<u64>(m) * L);

  const sim::SiteId prescan_load_site = dev.site_id("block_ms/prescan_load");
  const sim::SiteId scatter_site = dev.site_id("block_ms/postscan_scatter");

  MultisplitResult result;
  // The pre-scan histogram and the bucket-count scan are cost-uniform:
  // loads are unit-stride at shape-derived addresses, histogram charges
  // are mask-only closed forms, and every shared/scatter index is
  // lane-computed -- no charge depends on key values.  Declaring them
  // eligible lets a reused plan record/replay their accounting (the
  // tape's verify run proves the claim; see sim/tape.hpp).  The
  // post-scan is key-dependent and always runs live.
  std::optional<sim::UniformStageScope> uniform(std::in_place, dev);
  sim::ProfileRegion prescan_region(dev, "block_ms/prescan");

  // Element index of warp wi's round r lane base within block b.
  const auto strip_base = [&](u64 b, u32 wi, u32 r) {
    return b * tile + (static_cast<u64>(wi) * k + r) * kWarpSize;
  };

  // ---------------- pre-scan ----------------
  sim::launch_blocks(dev, "block_ms_prescan", nblocks, nw, [&](Block& blk) {
    if (small_m) {
      auto h2 = blk.shared<u32>(nw * m);
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        LaneArray<u32> acc{};
        for (u32 r = 0; r < k; ++r) {
          const u64 base = strip_base(blk.block_id(), wi, r);
          const LaneMask mask = prim::detail::row_mask(base, n);
          if (mask == 0) break;
          const auto keys = [&] {
            sim::ScopedSite site(dev, prescan_load_site);
            return w.load(keys_in, base, mask);
          }();
          w.charge(kBucketCost);
          const auto buckets = keys.map(bucket_of);
          acc = prim::lane_add(w, acc,
                               prim::warp_histogram(w, buckets, m, mask));
        }
        w.smem_write(h2, LaneArray<u32>::iota(wi * m), acc,
                     sim::tail_mask(m));
      });
      blk.sync();
      prim::block_multi_reduce(blk, h2, m);
      Warp& w0 = blk.warp(0);
      const LaneMask mm = sim::tail_mask(m);
      const auto counts = w0.smem_read(h2, LaneArray<u32>::iota(0), mm);
      LaneArray<u64> idx{};
      for (u32 lane = 0; lane < kWarpSize; ++lane)
        idx[lane] = static_cast<u64>(lane) * L + blk.block_id();
      w0.charge(2);
      w0.scatter(h, idx, counts, mm);
    } else {
      // Section 6.4 path: row-vectorized histogram matrix in shared memory.
      const u64 tile_base = static_cast<u64>(blk.block_id()) * tile;
      auto ht = blk.shared<u32>(m * nw);  // ht[d * nw + wi]
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        const u64 base = tile_base + static_cast<u64>(wi) * kWarpSize;
        const LaneMask mask = prim::detail::row_mask(base, n);
        std::vector<LaneArray<u32>> histo(groups);
        if (mask != 0) {
          const auto keys = [&] {
            sim::ScopedSite site(dev, prescan_load_site);
            return w.load(keys_in, base, mask);
          }();
          w.charge(kBucketCost);
          const auto buckets = keys.map(bucket_of);
          histo = prim::warp_histogram_multi(w, buckets, m, mask);
        }
        for (u32 gi = 0; gi < groups; ++gi) {
          const u32 d0 = gi * kWarpSize;
          const LaneMask mm = sim::tail_mask(m - d0);
          w.charge(1);
          const auto sidx = Warp::lane_id().map(
              [d0, nw, wi](u32 lane) { return (d0 + lane) * nw + wi; });
          w.smem_write(ht, sidx, histo[gi], mm);
        }
      });
      blk.sync();
      // Row sums -> the block's column of H (warps cooperate over rows).
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        for (u32 d0 = wi * kWarpSize; d0 < m; d0 += nw * kWarpSize) {
          const LaneMask mm = sim::tail_mask(m - d0);
          LaneArray<u32> acc{};
          for (u32 j = 0; j < nw; ++j) {
            w.charge(1);
            const auto sidx = Warp::lane_id().map(
                [d0, nw, j](u32 lane) { return (d0 + lane) * nw + j; });
            acc = prim::lane_add(w, acc, w.smem_read(ht, sidx, mm));
          }
          LaneArray<u64> idx{};
          for (u32 lane = 0; lane < kWarpSize; ++lane)
            idx[lane] = static_cast<u64>(d0 + lane) * L + blk.block_id();
          w.charge(2);
          w.scatter(h, idx, acc, mm);
        }
      });
    }
  });
  const sim::TimingSummary prescan_sum = prescan_region.end();

  // ---------------- scan ----------------
  sim::ProfileRegion scan_region(dev, "block_ms/scan");
  prim::exclusive_scan<u32>(dev, h, g);
  const sim::TimingSummary scan_sum = scan_region.end();
  uniform.reset();
  sim::ProfileRegion postscan_region(dev, "block_ms/postscan");

  // ---------------- post-scan ----------------
  sim::launch_blocks(dev, "block_ms_postscan", nblocks, nw, [&](Block& blk) {
    const u64 tile_base = static_cast<u64>(blk.block_id()) * tile;
    const u32 tile_n = static_cast<u32>(std::min<u64>(tile, n - tile_base));
    auto st_keys = blk.shared<u32>(tile);
    sim::SharedArray<V> st_vals;
    if (vals_in != nullptr) st_vals = blk.shared<V>(tile);
    auto adjusted = blk.shared<u32>(m);  // global base minus block start

    // Per-warp, per-round register state across barriers.
    std::vector<std::vector<LaneArray<u32>>> keys_r(nw), buckets_r(nw),
        rank_r(nw);
    std::vector<std::vector<LaneArray<V>>> vals_r(nw);
    std::vector<std::vector<LaneMask>> mask_r(nw);

    if (small_m) {
      auto h2 = blk.shared<u32>((nw + 1) * m);
      auto bucket_start = blk.shared<u32>(m);
      // Phase 1: load rounds, warp histograms and stable in-strip ranks.
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        keys_r[wi].resize(k);
        buckets_r[wi].resize(k);
        rank_r[wi].resize(k);
        mask_r[wi].assign(k, 0);
        if (vals_in != nullptr) vals_r[wi].resize(k);
        LaneArray<u32> acc{};
        for (u32 r = 0; r < k; ++r) {
          const u64 base = strip_base(blk.block_id(), wi, r);
          const LaneMask mask = prim::detail::row_mask(base, n);
          mask_r[wi][r] = mask;
          if (mask == 0) break;
          keys_r[wi][r] = w.load(keys_in, base, mask);
          if (vals_in != nullptr) vals_r[wi][r] = w.load(*vals_in, base, mask);
          w.charge(kBucketCost);
          buckets_r[wi][r] = keys_r[wi][r].map(bucket_of);
          const auto rank = prim::warp_rank(w, buckets_r[wi][r], m, mask);
          const auto prev = w.shfl(acc, buckets_r[wi][r], mask);
          rank_r[wi][r] = prim::lane_add(w, prev, rank.offsets);
          acc = prim::lane_add(w, acc, rank.histogram);
        }
        w.smem_write(h2, LaneArray<u32>::iota(wi * m), acc,
                     sim::tail_mask(m));
      });
      blk.sync();

      // Phase 2: per-bucket exclusive scan across warps + block offsets.
      prim::block_multi_scan_exclusive(blk, h2, m);
      {
        Warp& w0 = blk.warp(0);
        const LaneMask mm = sim::tail_mask(m);
        LaneArray<u32> totals =
            w0.smem_read(h2, LaneArray<u32>::iota(nw * m), mm);
        for (u32 lane = m; lane < kWarpSize; ++lane) totals[lane] = 0;
        const auto starts = prim::warp_exclusive_scan(w0, totals);
        w0.smem_write(bucket_start, Warp::lane_id(), starts, mm);
        LaneArray<u64> idx{};
        for (u32 lane = 0; lane < kWarpSize; ++lane)
          idx[lane] = static_cast<u64>(lane) * L + blk.block_id();
        const auto gbase = w0.gather(g, idx, mm);
        w0.charge(1);
        const auto adj =
            gbase.zip(starts, [](u32 a, u32 s) { return a - s; });
        w0.smem_write(adjusted, Warp::lane_id(), adj, mm);
      }
      blk.sync();

      // Phase 3: stable block-wide reorder in shared memory.
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        const auto warp_base = w.smem_read(h2, LaneArray<u32>::iota(wi * m),
                                           sim::tail_mask(m));
        for (u32 r = 0; r < k; ++r) {
          const LaneMask mask = mask_r[wi][r];
          if (mask == 0) break;
          const auto ds = w.smem_read(bucket_start, buckets_r[wi][r], mask);
          const auto wb = w.shfl(warp_base, buckets_r[wi][r], mask);
          const auto pos =
              prim::lane_add(w, prim::lane_add(w, ds, wb), rank_r[wi][r]);
          w.smem_write(st_keys, pos, keys_r[wi][r], mask);
          if (vals_in != nullptr)
            w.smem_write(st_vals, pos, vals_r[wi][r], mask);
        }
      });
    } else {
      // Section 6.4 path for m > 32 (k == 1).
      auto ht = blk.shared<u32>(m * nw);
      auto bucket_start = blk.shared<u32>(m);
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        keys_r[wi].resize(1);
        buckets_r[wi].resize(1);
        rank_r[wi].resize(1);
        mask_r[wi].assign(1, 0);
        if (vals_in != nullptr) vals_r[wi].resize(1);
        const u64 base = tile_base + static_cast<u64>(wi) * kWarpSize;
        const LaneMask mask = prim::detail::row_mask(base, n);
        mask_r[wi][0] = mask;
        std::vector<LaneArray<u32>> histo(groups);
        if (mask != 0) {
          keys_r[wi][0] = w.load(keys_in, base, mask);
          if (vals_in != nullptr) vals_r[wi][0] = w.load(*vals_in, base, mask);
          w.charge(kBucketCost);
          buckets_r[wi][0] = keys_r[wi][0].map(bucket_of);
          histo = prim::warp_histogram_multi(w, buckets_r[wi][0], m, mask);
          rank_r[wi][0] = prim::warp_offsets_multi(w, buckets_r[wi][0], m, mask);
        }
        for (u32 gi = 0; gi < groups; ++gi) {
          const u32 d0 = gi * kWarpSize;
          const LaneMask mm = sim::tail_mask(m - d0);
          w.charge(1);
          const auto sidx = Warp::lane_id().map(
              [d0, nw, wi](u32 lane) { return (d0 + lane) * nw + wi; });
          w.smem_write(ht, sidx, histo[gi], mm);
        }
      });
      blk.sync();
      // One block-wide scan over the row-vectorized matrix: entry
      // (d, wi) becomes (elements of earlier buckets in the block) +
      // (elements of bucket d in earlier warps).
      prim::block_exclusive_scan_smem(blk, ht, m * nw);
      // bucket_start[d] = ht[d * nw]; adjusted[d] = G[d*L + b] - start.
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        for (u32 d0 = wi * kWarpSize; d0 < m; d0 += nw * kWarpSize) {
          const LaneMask mm = sim::tail_mask(m - d0);
          w.charge(1);
          const auto sidx = Warp::lane_id().map(
              [d0, nw](u32 lane) { return (d0 + lane) * nw; });
          const auto starts = w.smem_read(ht, sidx, mm);
          w.smem_write(bucket_start,
                       Warp::lane_id().map([d0](u32 l) { return d0 + l; }),
                       starts, mm);
          LaneArray<u64> idx{};
          for (u32 lane = 0; lane < kWarpSize; ++lane)
            idx[lane] = static_cast<u64>(d0 + lane) * L + blk.block_id();
          const auto gbase = w.gather(g, idx, mm);
          w.charge(1);
          const auto adj =
              gbase.zip(starts, [](u32 a, u32 s) { return a - s; });
          w.smem_write(adjusted,
                       Warp::lane_id().map([d0](u32 l) { return d0 + l; }),
                       adj, mm);
        }
      });
      blk.sync();
      // Reorder: pos = ht[d * nw + wi] + in-warp offset.
      blk.for_each_warp([&](Warp& w) {
        const u32 wi = w.warp_in_block();
        const LaneMask mask = mask_r[wi][0];
        if (mask == 0) return;
        w.charge(1);
        const auto sidx = buckets_r[wi][0].map(
            [nw, wi](u32 d) { return d * nw + wi; });
        const auto base_d = w.smem_read(ht, sidx, mask);
        const auto pos = prim::lane_add(w, base_d, rank_r[wi][0]);
        w.smem_write(st_keys, pos, keys_r[wi][0], mask);
        if (vals_in != nullptr) w.smem_write(st_vals, pos, vals_r[wi][0], mask);
      });
    }
    blk.sync();

    // Final phase: contiguous per-bucket writes, one 32-wide strip per
    // warp-round over the reordered tile.
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      for (u32 r = 0; r < k; ++r) {
        const u32 t = (wi * k + r) * kWarpSize;
        if (t >= tile_n) break;
        const LaneMask mask = sim::tail_mask(tile_n - t);
        const auto keys2 = w.smem_read(st_keys, LaneArray<u32>::iota(t), mask);
        w.charge(kBucketCost);
        const auto buckets2 = keys2.map(bucket_of);
        const auto gb = w.smem_read(adjusted, buckets2, mask);
        w.charge(1);
        LaneArray<u64> fin{};
        for (u32 lane = 0; lane < kWarpSize; ++lane)
          fin[lane] = static_cast<u64>(gb[lane]) + t + lane;
        {
          sim::ScopedSite site(dev, scatter_site);
          w.scatter(keys_out, fin, keys2, mask);
        }
        if (vals_in != nullptr) {
          const auto vals2 =
              w.smem_read(st_vals, LaneArray<u32>::iota(t), mask);
          sim::ScopedSite site(dev, scatter_site);
          w.scatter(*vals_out, fin, vals2, mask);
        }
      }
    });
  });

  const sim::TimingSummary postscan_sum = postscan_region.end();
  // Span-only epilogue stage (host-side offsets assembly launches no
  // kernels, so no ProfileRegion: regions()/trace stage bands unchanged).
  sim::SpanScope epilogue_span(dev, sim::SpanKind::kStage,
                               "block_ms/epilogue");
  result.stages.prescan_ms = prescan_sum.total_ms;
  result.stages.scan_ms = scan_sum.total_ms;
  result.stages.postscan_ms = postscan_sum.total_ms;
  result.summary = prescan_sum;
  result.summary += scan_sum;
  result.summary += postscan_sum;
  offsets_from_scanned(g, m, L, n, result.bucket_offsets);
  return result;
}

}  // namespace ms::split::detail
