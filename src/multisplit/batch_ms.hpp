// Fused batched multisplit kernels for the serving executor.
//
// The serving shape (millions of tiny requests: n <= 4096, m <= 32) is the
// launch-overhead wall the ROADMAP calls out: one launch sequence per
// request spends more modeled time in kernel_launch_us than in the split
// itself.  Following the warp-level-parallelism replication idea
// (PAPERS.md, arXiv:1501.01405), these kernels pack many *independent*
// problems into one fused launch, one problem per warp -- or per sub-warp
// slot when the problem is small enough -- so thousands of requests share
// a single launch overhead.
//
// Two packing classes:
//
//   kSub  (n <= 8, m <= 8):  four 8-lane slots per warp.  Each slot's
//         bucket IDs are lifted into a composite class space
//         (class = slot * 8 + bucket, < 32), so ONE shared warp_rank over
//         m = 32 composite classes ranks all four problems at once:
//         composite classes are problem-disjoint, so histogram lane d is
//         slot (d / 8)'s count of its local bucket (d % 8) and the
//         offsets are per-problem stable ranks.
//   kWarp (otherwise, n <= 4096, m <= 32):  one problem per warp, the
//         single-warp specialization of Direct MS (warp_ms.hpp) with the
//         histogram matrix, device scan and their launches all collapsed
//         into warp registers: pass A accumulates the ballot histogram
//         over ceil(n/32) rounds, a warp_exclusive_scan replaces the
//         device-wide scan, pass B recomputes ranks (footnote 6:
//         recomputation beats a global round-trip) and scatters.
//
// Problems that don't fit a class (n or m too large, or a non-stable
// method selected) fall back to the ordinary plan path; see serving.cpp.
//
// Both kernels produce the *stable* partition of every packed problem --
// bit-identical output to any stable method run sequentially on the same
// keys -- and write each problem's bucket histogram to a counts buffer so
// the host can assemble bucket_offsets without another launch.
//
// Determinism: packing metadata lives in host vectors indexed by warp id,
// every warp reads/writes only its own slot regions, and the launch goes
// through launch_warps' fixed 16-warp item decomposition -- so outputs
// and merged accounting are bit-identical for any MS_HOST_THREADS.
#pragma once

#include <algorithm>
#include <vector>

#include "multisplit/common.hpp"
#include "primitives/warp_ops.hpp"
#include "sim/kernel.hpp"

namespace ms::split {

/// Which fused-launch class a problem packs into (kNone: plan path).
enum class PackClass : u8 { kSub, kWarp, kNone };

/// Packing shape constants.
inline constexpr u32 kSubSlotWidth = 8;    ///< keys per sub-warp slot
inline constexpr u32 kSubSlotsPerWarp = kWarpSize / kSubSlotWidth;
inline constexpr u64 kPackMaxN = 4096;     ///< largest packable problem
inline constexpr u32 kPackMaxM = kWarpSize;

/// Classify one problem.  Depends ONLY on the problem's own shape and the
/// method selected for it -- never on what else is in the batch -- so a
/// problem's class (and with it its modeled per-problem cost) is identical
/// at every batch size.
inline PackClass classify_packing(u64 n, u32 m, Method selected) {
  if (n == 0 || n > kPackMaxN || m == 0 || m > kPackMaxM) {
    return PackClass::kNone;
  }
  // The fused kernels produce the stable partition; a non-stable selected
  // method (randomized insertion) has no such contract, so honor it on the
  // plan path instead of silently changing semantics.
  if (!method_traits(selected).stable) return PackClass::kNone;
  if (n <= kSubSlotWidth && m <= kSubSlotWidth) return PackClass::kSub;
  return PackClass::kWarp;
}

/// One packed problem as the fused kernels see it: shape, bucket function
/// and the lane window it owns inside the packed buffers.  Filled by the
/// serving executor's packer.
struct PackedProblem {
  u64 n = 0;
  u32 m = 0;
  const BucketFunction* bucket = nullptr;
  /// Element index of this problem's first key in the packed key buffers
  /// (kSub: warp_base + slot * kSubSlotWidth; kWarp: a 32-multiple).
  u64 base = 0;
  /// Element index of this problem's m histogram lanes in the counts
  /// buffer.
  u64 counts_base = 0;
};

namespace detail {

/// Erased-bucket evaluation charge, matching detail::ErasedBucket
/// (plan.hpp): the serving layer is type-erased end to end.
inline constexpr u32 kErasedBucketCost = 2;

/// Clamped composite/bucket evaluation for one lane.  Inactive lanes get
/// bucket 0; malformed bucket functions (b >= m) are clamped for memory
/// safety -- the serving validator rejects the problem afterwards.
inline u32 safe_bucket(const PackedProblem& p, u32 key) {
  const u32 b = (*p.bucket)(key);
  return b < p.m ? b : p.m - 1;
}

}  // namespace detail

/// Sub-warp fused launch: problems[w * kSubSlotsPerWarp + s] (nullptr =
/// empty slot) runs in slot s of warp w.  keys_in holds each problem's
/// keys at its base (staged by the host); keys_out receives the stable
/// partition in the same window; counts lane (counts_base + d) receives
/// the count of bucket d.
inline void batch_ms_sub(sim::Device& dev,
                         const sim::DeviceBuffer<u32>& keys_in,
                         sim::DeviceBuffer<u32>& keys_out,
                         sim::DeviceBuffer<u32>& counts,
                         const std::vector<const PackedProblem*>& problems) {
  const u64 num_warps = ceil_div(problems.size(), u64{kSubSlotsPerWarp});
  sim::launch_warps(dev, "batch_ms_sub", num_warps, [&](sim::Warp& w,
                                                        u64 wid) {
    const u64 base = wid * kWarpSize;
    const u64 p0 = wid * kSubSlotsPerWarp;
    // Active lanes: lane s*8+i holds key i of slot s's problem.
    LaneMask valid = 0;
    for (u32 s = 0; s < kSubSlotsPerWarp; ++s) {
      const u64 pi = p0 + s;
      if (pi >= problems.size() || problems[pi] == nullptr) continue;
      valid |= sim::tail_mask(problems[pi]->n) << (s * kSubSlotWidth);
    }
    if (valid == 0) return;
    const auto keys = w.load(keys_in, base, valid);
    // One erased-bucket evaluation plus the composite-class lift
    // (class = slot * 8 + bucket) per round; this warp has one round.
    w.charge(detail::kErasedBucketCost);
    w.charge(1);
    LaneArray<u32> comp{};
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const u32 s = lane / kSubSlotWidth;
      const u64 pi = p0 + s;
      u32 b = 0;
      if ((valid >> lane) & 1u) {
        b = detail::safe_bucket(*problems[pi], keys[lane]);
      }
      comp[lane] = s * kSubSlotWidth + b;
    }
    // ONE shared ranking over the 32 composite classes serves all four
    // slots: histogram lane d = slot d/8's count of bucket d%8, offsets =
    // stable rank within (slot, bucket).
    const auto rank = prim::warp_rank(w, comp, kWarpSize, valid);
    const auto excl = prim::warp_exclusive_scan(w, rank.histogram);
    // Start of the lane's bucket within its slot: composite-class scan at
    // the own class minus the scan at the slot's first class.
    const auto cls_start = w.shfl(excl, comp, valid);
    const auto slot_start = w.shfl(
        excl, comp.map([](u32 c) { return c & ~(kSubSlotWidth - 1); }),
        valid);
    w.charge(1);  // start-in-slot subtraction
    w.charge(2);  // destination address arithmetic
    LaneArray<u64> dest{};
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const u32 slot_base = (lane / kSubSlotWidth) * kSubSlotWidth;
      dest[lane] = base + slot_base +
                   (cls_start[lane] - slot_start[lane]) +
                   rank.offsets[lane];
    }
    w.scatter(keys_out, dest, keys, valid);
    // Composite histogram lanes ARE the per-slot bucket counts, laid out
    // contiguously: one coalesced store covers all four problems.
    w.store(counts, base, rank.histogram, kFullMask);
  });
}

/// Warp-granularity fused launch: problems[w] runs entirely in warp w,
/// looping ceil(n/32) rounds over its window [base, base + n).
inline void batch_ms_warp(sim::Device& dev,
                          const sim::DeviceBuffer<u32>& keys_in,
                          sim::DeviceBuffer<u32>& keys_out,
                          sim::DeviceBuffer<u32>& counts,
                          const std::vector<const PackedProblem*>& problems) {
  sim::launch_warps(dev, "batch_ms_warp", problems.size(), [&](sim::Warp& w,
                                                               u64 wid) {
    const PackedProblem* p = problems[wid];
    if (p == nullptr || p->n == 0) return;
    const u64 rounds = ceil_div(p->n, u64{kWarpSize});
    const auto eval = [&](const LaneArray<u32>& keys,
                          LaneMask mask) {
      w.charge(detail::kErasedBucketCost);
      LaneArray<u32> b{};
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        if ((mask >> lane) & 1u) b[lane] = detail::safe_bucket(*p, keys[lane]);
      }
      return b;
    };
    // Pass A: ballot histogram of the whole problem (Direct MS pre-scan
    // collapsed into registers).
    LaneArray<u32> acc{};
    for (u64 r = 0; r < rounds; ++r) {
      const u64 rb = p->base + r * kWarpSize;
      const LaneMask mask = sim::tail_mask(p->n - r * kWarpSize);
      const auto keys = w.load(keys_in, rb, mask);
      const auto buckets = eval(keys, mask);
      acc = prim::lane_add(w, acc,
                           prim::warp_histogram(w, buckets, p->m, mask));
    }
    // The device-wide scan of warp_ms.hpp collapses to one warp scan.
    const auto hscan = prim::warp_exclusive_scan(w, acc);
    // Pass B: recompute ranks per round (footnote 6) and scatter to the
    // stable position inside this problem's output window.
    LaneArray<u32> done{};
    for (u64 r = 0; r < rounds; ++r) {
      const u64 rb = p->base + r * kWarpSize;
      const LaneMask mask = sim::tail_mask(p->n - r * kWarpSize);
      const auto keys = w.load(keys_in, rb, mask);
      const auto buckets = eval(keys, mask);
      const auto rank = prim::warp_rank(w, buckets, p->m, mask);
      const auto prev = w.shfl(done, buckets, mask);
      const auto start = w.shfl(hscan, buckets, mask);
      w.charge(2);  // destination address arithmetic
      LaneArray<u64> dest{};
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        dest[lane] = p->base + start[lane] + prev[lane] + rank.offsets[lane];
      }
      w.scatter(keys_out, dest, keys, mask);
      done = prim::lane_add(w, done, rank.histogram);
    }
    w.charge(1);  // counts address setup
    w.store(counts, p->counts_base, acc, sim::tail_mask(p->m));
  });
}

/// Closed-form modeled cost of one packed problem, in milliseconds,
/// excluding the (shared) kernel launch overhead.  This is the
/// per-problem cost the serving executor reports: a deterministic
/// function of (profile, n, m, class) ONLY, so it is bit-identical across
/// batch compositions, batch sizes and host thread counts -- the
/// tolerance-0 serving gates compare it exactly between the batched and
/// unbatched paths.
///
/// Conventions (documented, deliberately input-independent):
///   - "as-if-full": a sub-warp problem is charged 1/4 of its warp's
///     shared instruction stream whether or not the other slots are
///     occupied;
///   - cold L2: every touched sector is charged as a DRAM transaction;
///   - worst-case scatter fragmentation: the stable scatter is charged
///     one lane-order run per element (real batches usually do better --
///     the fused launch's LIVE accounting, which drives the device
///     clock, counts the organic figure).
inline f64 packed_problem_cost(const sim::DeviceProfile& prof, u64 n, u32 m,
                               PackClass cls) {
  if (cls == PackClass::kNone || n == 0) return 0.0;
  const f64 sector = prof.transaction_bytes;
  f64 issue_slots = 0.0;   // plain + intrinsic slots, incl. warp overhead
  f64 replays = 0.0;       // scatter replays (penalty-weighted by the model)
  f64 sectors = 0.0;       // DRAM transactions, reads + writes
  if (cls == PackClass::kSub) {
    // Shared per-warp stream (see batch_ms_sub): load 1, bucket 2 + lift
    // 1, warp_rank(m=32 -> 5 rounds) 3*5+3, exclusive scan 11, two start
    // shfls + subtraction 3, address math 2, scatter 1, counts store 1.
    const f64 shared = 1 + 3 + (3 * 5.0 + 3) + 11 + 3 + 2 + 1 + 1 +
                       static_cast<f64>(prof.warp_overhead_slots);
    issue_slots = shared / kSubSlotsPerWarp;
    replays = static_cast<f64>(kWarpSize - 1) / kSubSlotsPerWarp;
    // 32 keys in + 32 out + 32 counts lanes, 4 bytes each, shared 4 ways.
    sectors = 3.0 * (kWarpSize * 4.0 / sector) / kSubSlotsPerWarp;
  } else {
    const f64 rounds = static_cast<f64>(ceil_div(n, u64{kWarpSize}));
    const f64 r = static_cast<f64>(ceil_log2(m));
    // Pass A per round: load 1, bucket 2, histogram 2r+1, lane_add 1.
    // Scan: 11.  Pass B per round: load 1, bucket 2, rank 3r+3, two
    // shfls 2, address 2, scatter 1, lane_add 1.  Epilogue: counts
    // address 1 + store 1.
    issue_slots = rounds * ((1 + 2 + 2 * r + 1 + 1) +
                            (1 + 2 + 3 * r + 3 + 2 + 2 + 1 + 1)) +
                  11 + 2 + static_cast<f64>(prof.warp_overhead_slots);
    replays = rounds * (kWarpSize - 1);
    // Keys read twice (two passes) + written once, plus m counts lanes.
    sectors = rounds * 3.0 * (kWarpSize * 4.0 / sector) +
              std::max(1.0, m * 4.0 / sector);
  }
  const f64 issue_ms = (issue_slots + replays * prof.scatter_issue_penalty) /
                       (prof.issue_rate_gips * 1e9) * 1e3;
  const f64 mem_ms = sectors * sector / (prof.mem_bandwidth_gbps * 1e9) * 1e3;
  return std::max(issue_ms, mem_ms);
}

}  // namespace ms::split
