#include "multisplit/serving.hpp"

#include <algorithm>
#include <utility>

#include "multisplit/plan.hpp"
#include "sim/span.hpp"
#include "sim/telemetry.hpp"

namespace ms::split {

namespace {

/// Host reference for one packed problem: the stable partition (the fused
/// kernels' contract) and its bucket offsets.  Returns false when the
/// bucket function maps a key outside [0, m) -- a caller error no retry
/// can cure.
bool expected_partition(const std::vector<u32>& keys, u32 m,
                        const BucketFunction& fn, std::vector<u32>& out_keys,
                        std::vector<u32>& offsets, std::string* why) {
  std::vector<u32> counts(m, 0);
  for (const u32 k : keys) {
    const u32 b = fn(k);
    if (b >= m) {
      if (why != nullptr) *why = "input key maps outside [0, m)";
      return false;
    }
    counts[b] += 1;
  }
  offsets.assign(m + 1, 0);
  for (u32 j = 0; j < m; ++j) offsets[j + 1] = offsets[j] + counts[j];
  std::vector<u32> cursor(offsets.begin(), offsets.end() - 1);
  out_keys.assign(keys.size(), 0);
  for (const u32 k : keys) out_keys[cursor[fn(k)]++] = k;
  return true;
}

}  // namespace

ServingExecutor::ServingExecutor(sim::Device& dev, ServingPolicy policy)
    : dev_(&dev), policy_(std::move(policy)) {
  check(policy_.max_batch >= 1, "serving: max_batch must be >= 1");
  check(policy_.max_linger_ms >= 0.0, "serving: max_linger_ms negative");
}

ServeTicket ServingExecutor::submit(std::vector<u32> keys, u32 m,
                                    BucketFunction bucket_of, Method method) {
  check(static_cast<bool>(bucket_of), "serving: null bucket function");
  PendingRequest req;
  req.ticket = static_cast<ServeTicket>(results_.size()) + 1;
  req.keys = std::move(keys);
  req.m = m;
  req.bucket = std::move(bucket_of);
  req.method = method;
  req.enqueue_ms = dev_->lifetime_ms();
  results_.emplace_back(std::nullopt);
  queue_.push_back(std::move(req));
  if (sim::Telemetry* t = dev_->telemetry()) {
    t->counter("serving.requests").add(1);
  }
  maybe_flush();
  if (sim::Telemetry* t = dev_->telemetry()) {
    t->gauge("serving.queue_depth").set(static_cast<f64>(queue_.size()));
  }
  return results_.size();  // == req.ticket (queue_ may have moved req)
}

void ServingExecutor::maybe_flush() {
  if (queue_.empty()) return;
  const bool full = queue_.size() >= policy_.max_batch;
  // Linger is measured on the VIRTUAL clock, which submit never advances:
  // this trigger fires when foreground launches aged the queue, and is
  // therefore identical at any host thread count.
  const bool lingered =
      dev_->lifetime_ms() - queue_.front().enqueue_ms >= policy_.max_linger_ms;
  if (full || lingered) flush();
}

bool ServingExecutor::ready(ServeTicket t) const {
  check(t >= 1 && t <= results_.size(), "serving: unknown ticket");
  return results_[t - 1].has_value();
}

const ServeResult& ServingExecutor::get(ServeTicket t) {
  check(t >= 1 && t <= results_.size(), "serving: unknown ticket");
  if (!results_[t - 1].has_value()) flush();
  check(results_[t - 1].has_value(), "serving: ticket did not execute");
  return *results_[t - 1];
}

ServeResult& ServingExecutor::result_slot(ServeTicket t) {
  results_[t - 1].emplace();
  return *results_[t - 1];
}

u64 ServingExecutor::flush() {
  if (queue_.empty()) return 0;
  std::vector<PendingRequest> batch;
  batch.swap(queue_);
  const u64 batch_id = next_batch_++;
  const u32 batch_size = static_cast<u32>(batch.size());
  // The cudaGetLastError idiom (cf. run_resilient): consume any stale
  // sticky error so fused-launch fault classification below only sees
  // faults raised by THIS flush.
  (void)dev_->take_last_error();

  // Resolve every request to its concrete method and packing class.
  // Resolution uses resolve_auto exactly as plan construction does, so a
  // packed problem reports the same method_selected a sequential
  // plan.run() would have -- and the class depends only on the problem's
  // own (n, m, method), never on the rest of the batch.
  std::vector<FlushItem> items(batch.size());
  std::vector<FlushItem> sub, warp;
  u64 unpacked = 0;
  for (u64 i = 0; i < batch.size(); ++i) {
    FlushItem& it = items[i];
    it.req = &batch[i];
    it.selected = batch[i].method == Method::kAuto
                      ? resolve_auto(dev_->profile(), batch[i].keys.size(),
                                     batch[i].m)
                      : batch[i].method;
    it.cls = classify_packing(batch[i].keys.size(), batch[i].m, it.selected);
    if (it.cls == PackClass::kSub) {
      sub.push_back(it);
    } else if (it.cls == PackClass::kWarp) {
      warp.push_back(it);
    } else {
      unpacked += 1;
    }
  }

  sim::BatchStats& bs = dev_->batch_stats();
  bs.batches += 1;
  bs.packed_problems += sub.size() + warp.size();
  bs.unpacked_problems += unpacked;
  sim::Telemetry* telem = dev_->telemetry();
  if (telem != nullptr) {
    telem->counter("serving.flushes").add(1);
    telem->counter("serving.packed").add(sub.size() + warp.size());
    telem->counter("serving.unpacked").add(unpacked);
    telem->histogram("serving.batch_size")
        .record_ms(static_cast<f64>(batch_size));
  }

  const f64 flush_t0 = dev_->lifetime_ms();
  const u64 fused_before = bs.fused_launches;
  if (!sub.empty()) run_packed(PackClass::kSub, sub, batch_id, batch_size);
  if (!warp.empty()) run_packed(PackClass::kWarp, warp, batch_id, batch_size);
  // Unpacked problems run the ordinary plan path OUTSIDE any batch span:
  // their spans, telemetry and modeled costs are bit-identical to a
  // sequential caller's.
  for (const FlushItem& it : items) {
    if (it.cls == PackClass::kNone) run_unpacked(it, batch_id, batch_size);
  }

  if (telem != nullptr) {
    const f64 elapsed = dev_->lifetime_ms() - flush_t0;
    const f64 launch_ms =
        static_cast<f64>(bs.fused_launches - fused_before) *
        dev_->profile().kernel_launch_us * 1e-3;
    telem->gauge("serving.launch_overhead_share")
        .set(elapsed > 0.0 ? launch_ms / elapsed : 0.0);
    telem->gauge("serving.queue_depth").set(0.0);
  }
  return batch.size();
}

void ServingExecutor::run_packed(PackClass cls, std::vector<FlushItem>& items,
                                 u64 batch_id, u32 batch_size) {
  sim::Device& dev = *dev_;
  sim::BatchStats& bs = dev.batch_stats();
  sim::Telemetry* telem = dev.telemetry();
  sim::SpanRecorder* rec = dev.spans();
  const char* span_name =
      cls == PackClass::kSub ? "serve.batch.sub" : "serve.batch.warp";

  std::vector<FlushItem*> active;
  active.reserve(items.size());
  for (FlushItem& it : items) active.push_back(&it);

  for (u32 round = 0; !active.empty(); ++round) {
    // --- pack: assign every active problem its lane window ---------------
    const u64 count = active.size();
    std::vector<PackedProblem> pp(count);
    std::vector<const PackedProblem*> launch_list;
    u64 total_keys = 0;
    u64 total_counts = 0;
    if (cls == PackClass::kSub) {
      // Slot s of warp w serves problem w * 4 + s: base == 8 * index for
      // both keys and counts (the histogram lanes mirror the key lanes).
      const u64 warps = ceil_div(count, u64{kSubSlotsPerWarp});
      total_keys = warps * kWarpSize;
      total_counts = total_keys;
      launch_list.resize(count);
      for (u64 i = 0; i < count; ++i) {
        pp[i] = {active[i]->req->keys.size(), active[i]->req->m,
                 &active[i]->req->bucket, i * kSubSlotWidth,
                 i * kSubSlotWidth};
        launch_list[i] = &pp[i];
      }
      bs.slots_total += warps * kSubSlotsPerWarp;
    } else {
      // One problem per warp; each key region rounded to whole warp rows
      // so every warp's loads stay inside its own window.
      launch_list.resize(count);
      for (u64 i = 0; i < count; ++i) {
        const u64 n = active[i]->req->keys.size();
        pp[i] = {n, active[i]->req->m, &active[i]->req->bucket, total_keys,
                 total_counts};
        launch_list[i] = &pp[i];
        total_keys += ceil_div(n, u64{kWarpSize}) * kWarpSize;
        total_counts += active[i]->req->m;
      }
      bs.slots_total += count;
    }
    bs.slots_filled += count;
    bs.fused_launches += 1;

    sim::DeviceBuffer<u32> keys_in(dev, total_keys, "serve.batch.keys_in");
    sim::DeviceBuffer<u32> keys_out(dev, total_keys, "serve.batch.keys_out");
    sim::DeviceBuffer<u32> counts(dev, total_counts, "serve.batch.counts");
    {
      // Uncharged host staging (the host() idiom every workload generator
      // uses); padding lanes are never device-read thanks to the kernels'
      // tail masks.
      const std::span<u32> hi = keys_in.host();
      for (u64 i = 0; i < count; ++i) {
        std::copy(active[i]->req->keys.begin(), active[i]->req->keys.end(),
                  hi.begin() + static_cast<std::ptrdiff_t>(pp[i].base));
      }
    }

    // --- fused launch, bracketed as one batch request span ---------------
    const f64 t0 = dev.lifetime_ms();
    std::optional<sim::FaultContext> fault;
    {
      sim::SpanScope batch_span(dev, sim::SpanKind::kRequest, span_name);
      try {
        if (cls == PackClass::kSub) {
          batch_ms_sub(dev, keys_in, keys_out, counts, launch_list);
        } else {
          batch_ms_warp(dev, keys_in, keys_out, counts, launch_list);
        }
      } catch (const sim::SimError& e) {
        fault = e.context();
        (void)dev.take_last_error();  // the throw also parked itself
      }
      if (!fault.has_value()) fault = dev.take_last_error();
    }
    const f64 t1 = dev.lifetime_ms();

    // Per-problem attribution: carve the fused launch's interval into
    // per-request spans, proportional to each problem's closed-form cost,
    // nested DIRECTLY under the launch span (trace.cpp draws the
    // launch -> request flow arrows from this shape).  Counter deltas
    // stay on the launch span; the request spans are pure attribution.
    if (rec != nullptr && dev.last_launch_span() != 0) {
      f64 total_cost = 0.0;
      std::vector<f64> cost(count);
      for (u64 i = 0; i < count; ++i) {
        cost[i] = packed_problem_cost(dev.profile(), pp[i].n, pp[i].m, cls);
        total_cost += cost[i];
      }
      f64 cum = 0.0;
      for (u64 i = 0; i < count; ++i) {
        const f64 f0 = total_cost > 0.0 ? cum / total_cost
                                        : static_cast<f64>(i) / count;
        cum += cost[i];
        const f64 f1 = total_cost > 0.0 ? cum / total_cost
                                        : static_cast<f64>(i + 1) / count;
        rec->insert_closed(sim::SpanKind::kRequest,
                           method_token(active[i]->selected),
                           dev.last_launch_span(), t0 + f0 * (t1 - t0),
                           t0 + f1 * (t1 - t0), sim::SpanCounters{});
      }
    }

    // --- unpack, validate, and decide per-problem fate --------------------
    std::vector<FlushItem*> retry;
    std::string launch_error;
    if (fault.has_value()) {
      // The whole fused launch faulted: every problem in THIS launch (and
      // only this launch -- the rest of the batch is untouched) retries.
      launch_error = fault->detail.empty()
                         ? std::string("fused launch fault in ") +
                               (fault->kernel.empty() ? span_name
                                                      : fault->kernel.c_str())
                         : fault->detail;
      retry = active;
    } else {
      const std::span<const u32> ko = std::as_const(keys_out).host();
      const std::span<const u32> co = std::as_const(counts).host();
      for (u64 i = 0; i < count; ++i) {
        FlushItem* it = active[i];
        const PendingRequest& req = *it->req;
        const u64 n = pp[i].n;
        const u32 m = pp[i].m;
        std::vector<u32> expect_keys, expect_off;
        std::string why;
        if (!expected_partition(req.keys, m, req.bucket, expect_keys,
                                expect_off, &why)) {
          // Caller error: deterministic, no retry can cure it.
          ServeResult& r = result_slot(req.ticket);
          r.failed = true;
          r.error = why;
          r.method_selected = it->selected;
          r.pack_class = cls;
          r.batch_id = batch_id;
          r.batch_size = batch_size;
          r.retry_rounds = round;
          continue;
        }
        std::vector<u32> got_off(m + 1, 0);
        for (u32 j = 0; j < m; ++j) {
          got_off[j + 1] = got_off[j] + co[pp[i].counts_base + j];
        }
        std::vector<u32> got_keys(
            ko.begin() + static_cast<std::ptrdiff_t>(pp[i].base),
            ko.begin() + static_cast<std::ptrdiff_t>(pp[i].base + n));
        const bool ok = !policy_.validate ||
                        (got_off == expect_off && got_keys == expect_keys);
        if (!ok) {
          it->retry_rounds = round + 1;
          retry.push_back(it);
          continue;
        }
        ServeResult& r = result_slot(req.ticket);
        r.keys_out = std::move(got_keys);
        r.bucket_offsets = std::move(got_off);
        r.method_selected = it->selected;
        r.modeled_cost_ms = packed_problem_cost(dev.profile(), n, m, cls);
        r.pack_class = cls;
        r.packed = true;
        r.batch_id = batch_id;
        r.batch_size = batch_size;
        r.retry_rounds = round;
      }
    }

    if (retry.empty()) return;
    if (round >= policy_.max_retry_rounds) {
      for (FlushItem* it : retry) {
        ServeResult& r = result_slot(it->req->ticket);
        r.failed = true;
        r.error = !launch_error.empty()
                      ? launch_error
                      : "packed output failed validation after retries";
        r.method_selected = it->selected;
        r.pack_class = cls;
        r.batch_id = batch_id;
        r.batch_size = batch_size;
        r.retry_rounds = round;
      }
      return;
    }
    bs.problems_retried += retry.size();
    if (telem != nullptr) telem->counter("serving.retries").add(retry.size());
    active = std::move(retry);
  }
}

void ServingExecutor::run_unpacked(const FlushItem& item, u64 batch_id,
                                   u32 batch_size) {
  sim::Device& dev = *dev_;
  const PendingRequest& req = *item.req;
  ServeResult& r = result_slot(req.ticket);
  r.pack_class = PackClass::kNone;
  r.batch_id = batch_id;
  r.batch_size = batch_size;
  try {
    sim::DeviceBuffer<u32> in(dev, std::span<const u32>(req.keys),
                              "serve.in");
    sim::DeviceBuffer<u32> out(dev, req.keys.size(), "serve.out");
    MultisplitConfig cfg = policy_.config;
    cfg.method = req.method;  // kAuto preserved: the plan resolves it
    const MultisplitPlan plan(dev, req.keys.size(), req.m, cfg);
    const MultisplitResult res = plan.run(in, out, req.bucket);
    const std::span<const u32> ho = std::as_const(out).host();
    r.keys_out.assign(ho.begin(), ho.end());
    r.bucket_offsets = res.bucket_offsets;
    r.method_selected = res.method_selected;
    r.modeled_cost_ms = res.total_ms();
  } catch (const std::exception& e) {
    (void)dev.take_last_error();
    r.failed = true;
    r.error = e.what();
    r.method_selected = item.selected;
  }
}

}  // namespace ms::split
