// Bucket-identification functors (the paper's programmer-provided
// `whatBucket()`).  A bucket functor maps a 32-bit key to a bucket ID in
// [0, m); it must be pure and cheap, since every multisplit stage
// recomputes it rather than storing labels (the paper's footnote 6 finds
// recomputation cheaper than a global round-trip -- an ablation bench
// checks the same trade-off here).
//
// `charge_cost` tells the simulator how many warp instructions one
// evaluation costs; the default of 2 models a multiply+shift or
// compare+select.
#pragma once

#include "sim/types.hpp"

namespace ms::split {

/// Buckets that equally divide the full 32-bit key domain -- the paper's
/// evaluation setup (Section 6): bucket(key) = floor(key * m / 2^32).
struct RangeBucket {
  u32 m;
  u32 operator()(u32 key) const {
    return static_cast<u32>((static_cast<u64>(key) * m) >> 32);
  }
  static constexpr u32 charge_cost = 2;
};

/// Identity buckets B_i = {i} over keys drawn from {0..m-1} -- the trivial
/// case of Section 3.1 where a plain radix sort is the right tool.
struct IdentityBucket {
  u32 operator()(u32 key) const { return key; }
  static constexpr u32 charge_cost = 0;
};

/// Group by low bits (hash-join style grouping of low-bit radixes).
struct LowBitsBucket {
  u32 bits;
  u32 operator()(u32 key) const { return key & ((1u << bits) - 1); }
  static constexpr u32 charge_cost = 1;
};

/// Delta-stepping SSSP buckets: bucket(dist) = min(dist / delta, m-1),
/// with one overflow bucket at the top.  Distances are fixed-point u32.
struct DeltaBucket {
  u32 delta;
  u32 m;
  u32 operator()(u32 dist) const {
    const u32 b = dist / delta;
    return b < m ? b : m - 1;
  }
  static constexpr u32 charge_cost = 3;
};

/// Two-pivot three-way bucketing (probabilistic top-k selection, one of the
/// paper's motivating applications: three bins around two pivots).
struct PivotBucket {
  u32 lo, hi;
  u32 operator()(u32 key) const { return (key >= hi) ? 2u : (key >= lo) ? 1u : 0u; }
  static constexpr u32 charge_cost = 3;
};

/// Prime/composite example from the paper's Figure 1.  Deliberately
/// expensive; demonstrates that bucket IDs need not be order-preserving.
struct PrimeBucket {
  u32 operator()(u32 key) const {
    if (key < 2) return 1u;  // composite-ish bucket for 0 and 1
    for (u32 d = 2; d * d <= key; ++d) {
      if (key % d == 0) return 1u;
    }
    return 0u;
  }
  static constexpr u32 charge_cost = 16;
};

namespace detail {
template <typename F, typename = void>
struct ChargeCost {
  static constexpr u32 value = 2;
};
template <typename F>
struct ChargeCost<F, std::void_t<decltype(F::charge_cost)>> {
  static constexpr u32 value = F::charge_cost;
};
}  // namespace detail

/// Instruction cost of one bucket-functor evaluation (defaults to 2 for
/// functors that don't declare a `charge_cost`).
template <typename F>
inline constexpr u32 bucket_charge_cost = detail::ChargeCost<F>::value;

}  // namespace ms::split
