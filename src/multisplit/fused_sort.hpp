// Fused-bucket sort multisplit -- the paper's Section 3.4 "future work",
// implemented.
//
// The reduced-bit sort's overheads are exactly the ones the paper wishes
// sort libraries would remove: "Today's sort primitives do not currently
// provide APIs for user-specified computations (e.g., bucket
// identifications) to be integrated as functors directly into sort's
// kernels; while this is an intriguing area of future work for the
// designers of sort primitives, ...".  Because this library owns its sort,
// we can do it: each counting pass evaluates the bucket functor inside the
// ranking kernels and sorts on a bit-window *of the bucket ID* -- no label
// vector is ever materialized, no (label, payload) pairs are packed or
// unpacked, and key-value pairs move exactly once per pass.
//
// Costs relative to the reduced-bit sort: saves the labeling pass (~2n
// global traffic), the label payloads in every pass, and the (un)packing
// passes for key-value inputs; pays the bucket functor ceil(bits/5) + 1
// extra evaluations per element.  The `ablation_fused_sort` bench
// quantifies the trade.
#pragma once

#include "multisplit/bucket.hpp"
#include "multisplit/common.hpp"
#include "primitives/radix_sort.hpp"

namespace ms::split::detail {

template <typename BucketFn, typename V = u32>
MultisplitResult fused_bucket_sort_ms(Device& dev,
                                      const DeviceBuffer<u32>& keys_in,
                                      DeviceBuffer<u32>& keys_out,
                                      const DeviceBuffer<V>* vals_in,
                                      DeviceBuffer<V>* vals_out, u32 m,
                                      BucketFn bucket_of,
                                      const MultisplitConfig& cfg) {
  (void)cfg;
  const u64 n = keys_in.size();
  const u32 bits = std::max<u32>(1, ceil_log2(m));
  constexpr u32 kBucketCost = bucket_charge_cost<BucketFn>;
  prim::RadixSortConfig rc;
  const u32 passes = static_cast<u32>(ceil_div(bits, rc.bits_per_pass));

  MultisplitResult result;
  sim::ProfileRegion sort_region(dev, "fused_sort/sorting");

  DeviceBuffer<u32> tmp_keys(dev, n);
  std::optional<DeviceBuffer<V>> tmp_vals;
  if (vals_in != nullptr) tmp_vals.emplace(dev, n);

  // Ping-pong so the last pass lands in the caller's output buffers.  The
  // first pass reads the (const) input directly -- with an even pass count
  // the first write goes to the temporaries.
  const DeviceBuffer<u32>* src_k = &keys_in;
  const DeviceBuffer<V>* src_v = vals_in;
  u32 shift = 0;
  for (u32 p = 0; p < passes; ++p) {
    const bool to_out = ((passes - 1 - p) % 2 == 0);
    DeviceBuffer<u32>* dst_k = to_out ? &keys_out : &tmp_keys;
    DeviceBuffer<V>* dst_v =
        vals_in != nullptr ? (to_out ? vals_out : &*tmp_vals) : nullptr;
    const u32 pass_bits = std::min(rc.bits_per_pass, bits - shift);
    const u32 md = 1u << pass_bits;
    prim::detail::radix_pass_fn<V>(
        dev, *src_k, *dst_k, src_v, dst_v, md,
        [&, shift, md](u32 k) { return (bucket_of(k) >> shift) & (md - 1); },
        /*digit_cost=*/kBucketCost + 1, rc);
    src_k = dst_k;
    src_v = dst_v;
    shift += pass_bits;
  }
  check(src_k == &keys_out, "fused_bucket_sort: ping-pong ended wrong");

  result.summary = sort_region.end();
  result.stages.scan_ms = result.summary.total_ms;  // one stage: sort

  // Bucket offsets from the sorted-by-bucket output (host-side).  Output
  // keys are device data and untrusted: with an identity-style bucket
  // function a fault-injected bit flip can map one outside [0, m), which
  // must yield wrong offsets (caught by resilient validation), never an
  // out-of-range host write.
  result.bucket_offsets.assign(m + 1, static_cast<u32>(n));
  result.bucket_offsets[0] = 0;
  for (u64 i = n; i-- > 0;) {
    const u32 b = bucket_of(keys_out[i]);
    if (b < m) result.bucket_offsets[b] = static_cast<u32>(i);
  }
  for (u32 j = m; j-- > 1;) {
    if (result.bucket_offsets[j] > result.bucket_offsets[j + 1])
      result.bucket_offsets[j] = result.bucket_offsets[j + 1];
  }
  return result;
}

}  // namespace ms::split::detail
