// Common types of the multisplit public API: method selection, tuning
// options, and the result record (bucket offsets + per-stage timings +
// event summaries for the paper's stage-breakdown tables).
#pragma once

#include <string>
#include <vector>

#include "sim/sim.hpp"

namespace ms::split {

enum class Method {
  kDirect,              // Section 5: warp subproblems, no reordering
  kWarpLevel,           // Section 5.2.1: + warp-level reordering
  kBlockLevel,          // Section 5.2.2: block subproblems + reordering
  kScanSplit,           // Section 3.2: one scan-based binary split (m == 2)
  kRecursiveScanSplit,  // Section 3.2: ceil(log2 m) split rounds
  kReducedBitSort,      // Section 3.4: sort bucket labels, permute payload
  kRandomizedInsertion, // Section 3.5: PRAM dart throwing (not stable)
  kFusedBucketSort,     // Section 3.4's "future work": bucket functor fused
                        // into the sort kernels; stable, no label vector
};

std::string to_string(Method m);

/// All stable deterministic methods (the paper's main cast).
inline constexpr Method kCoreMethods[] = {Method::kDirect, Method::kWarpLevel,
                                          Method::kBlockLevel};

struct MultisplitConfig {
  Method method = Method::kBlockLevel;
  /// Warps per block (NW).  The paper uses 8 (256 threads) throughout and
  /// quantifies the sensitivity in Section 6.
  u32 warps_per_block = 8;
  /// Thread coarsening for the warp-granularity methods (paper footnote 5):
  /// each warp's subproblem holds 32 * items_per_thread keys.
  u32 items_per_thread = 1;
  /// Thread coarsening for block-level MS (this library's extension in the
  /// direction later multisplit implementations took); 1 = the paper's
  /// configuration (256-key blocks).  Ignored for m > 32, where the
  /// histogram matrix already strains shared memory.
  u32 block_items_per_thread = 1;
  /// Footnote-6 ablation: load the pre-scan histograms back from global
  /// memory in the post-scan stage instead of recomputing them with
  /// ballots.  The paper found recomputation cheaper ("the recomputation is
  /// cheaper than the cost of global store and load"); this flag lets the
  /// ablation bench check that on the model.  Direct MS only.
  bool reload_histograms = false;
  /// Relaxation factor x for randomized insertion (Section 3.5).
  f64 relaxation = 2.0;
  /// Seed for randomized insertion's dart throwing.
  u64 seed = 0x9E3779B97F4A7C15ull;
};

/// Per-stage timing breakdown matching the paper's Table 4 rows.  For the
/// sort-based methods the stages map to labeling / sorting / packing.
struct StageTimings {
  f64 prescan_ms = 0.0;   // or "labeling"
  f64 scan_ms = 0.0;      // or "sorting"
  f64 postscan_ms = 0.0;  // or "(un)packing" / "splitting"
  f64 total() const { return prescan_ms + scan_ms + postscan_ms; }
};

struct MultisplitResult {
  /// bucket_offsets[j] = first output index of bucket j; size m+1, with
  /// bucket_offsets[m] == n.  (The paper's optional m-entry index array.)
  std::vector<u32> bucket_offsets;
  StageTimings stages;
  sim::TimingSummary summary;
  f64 total_ms() const { return stages.total(); }
};

}  // namespace ms::split
