// Common types of the multisplit public API: method selection, tuning
// options, and the result record (bucket offsets + per-stage timings +
// event summaries for the paper's stage-breakdown tables).
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sim.hpp"

namespace ms::split {

enum class Method {
  kDirect,              // Section 5: warp subproblems, no reordering
  kWarpLevel,           // Section 5.2.1: + warp-level reordering
  kBlockLevel,          // Section 5.2.2: block subproblems + reordering
  kScanSplit,           // Section 3.2: one scan-based binary split (m == 2)
  kRecursiveScanSplit,  // Section 3.2: ceil(log2 m) split rounds
  kReducedBitSort,      // Section 3.4: sort bucket labels, permute payload
  kRandomizedInsertion, // Section 3.5: PRAM dart throwing (not stable)
  kFusedBucketSort,     // Section 3.4's "future work": bucket functor fused
                        // into the sort kernels; stable, no label vector
  kAuto,                // Section 6 guidance: pick by (n, m) and the device
                        // profile's crossover table (MultisplitPlan resolves
                        // this to one of the concrete methods above)
};

/// Number of concrete (runnable) methods; kAuto is a selector, not an
/// implementation, and is always resolved before dispatch.
inline constexpr u32 kConcreteMethodCount =
    static_cast<u32>(Method::kAuto);

/// Display name, e.g. "Block-level MS" (the paper's table labels; used in
/// reports and human-readable output).
std::string to_string(Method m);

/// Stable CLI token, e.g. "block" -- the names `ms_cli --method` and the
/// benches accept.  parse_method accepts either spelling and round-trips
/// both; unknown names return nullopt (callers treat that as a hard error).
std::string method_token(Method m);
std::optional<Method> parse_method(std::string_view name);

/// Static capabilities of a concrete method, used by the plan layer for
/// early argument checking and by the CLI for its method listing.
struct MethodTraits {
  const char* token;    // CLI token ("warp")
  const char* display;  // paper-style display name ("Warp-level MS")
  u32 max_m;            // largest supported bucket count
  bool supports_pairs;  // key-value capable?
  bool stable;          // preserves input order within a bucket?
};
const MethodTraits& method_traits(Method m);

/// Resolve Method::kAuto for a problem shape against a device profile's
/// crossover table (paper Section 6): warp-level for small m, block-level
/// through m <= auto_block_level_max_m, reduced-bit sort beyond.
Method resolve_auto(const sim::DeviceProfile& profile, u64 n, u32 m);

/// All stable deterministic methods (the paper's main cast).
inline constexpr Method kCoreMethods[] = {Method::kDirect, Method::kWarpLevel,
                                          Method::kBlockLevel};

struct MultisplitConfig {
  Method method = Method::kBlockLevel;
  /// Warps per block (NW).  The paper uses 8 (256 threads) throughout and
  /// quantifies the sensitivity in Section 6.
  u32 warps_per_block = 8;
  /// Thread coarsening for the warp-granularity methods (paper footnote 5):
  /// each warp's subproblem holds 32 * items_per_thread keys.
  u32 items_per_thread = 1;
  /// Thread coarsening for block-level MS (this library's extension in the
  /// direction later multisplit implementations took); 1 = the paper's
  /// configuration (256-key blocks).  Ignored for m > 32, where the
  /// histogram matrix already strains shared memory.
  u32 block_items_per_thread = 1;
  /// Footnote-6 ablation: load the pre-scan histograms back from global
  /// memory in the post-scan stage instead of recomputing them with
  /// ballots.  The paper found recomputation cheaper ("the recomputation is
  /// cheaper than the cost of global store and load"); this flag lets the
  /// ablation bench check that on the model.  Direct MS only.
  bool reload_histograms = false;
  /// Relaxation factor x for randomized insertion (Section 3.5).
  f64 relaxation = 2.0;
  /// Seed for randomized insertion's dart throwing.
  u64 seed = 0x9E3779B97F4A7C15ull;
};

/// Reject malformed configurations (zero warps/items, relaxation below the
/// staging minimum) with a structured SimError (FaultKind::kInvalidConfig).
/// Called at plan build time, before any device work.
void validate_config(const MultisplitConfig& cfg);

/// Per-stage timing breakdown matching the paper's Table 4 rows.  For the
/// sort-based methods the stages map to labeling / sorting / packing.
struct StageTimings {
  f64 prescan_ms = 0.0;   // or "labeling"
  f64 scan_ms = 0.0;      // or "sorting"
  f64 postscan_ms = 0.0;  // or "(un)packing" / "splitting"
  f64 total() const { return prescan_ms + scan_ms + postscan_ms; }
};

/// How a resilient run may respond to faults (injected or organic).
/// Defaults give a request four total attempts with two tries per method
/// before degrading down the fallback ladder, deterministic exponential
/// backoff in *virtual* milliseconds (charged to the timing summary, not
/// wall clock), and end-to-end output validation so corrupted-but-
/// non-throwing runs are caught and retried rather than returned.
struct RetryPolicy {
  /// Total attempts across all methods (first try included).  1 disables
  /// retry entirely -- the first fault propagates.
  u32 max_attempts = 4;
  /// Attempts on the current method before falling back to a simpler one.
  u32 attempts_per_method = 2;
  /// Virtual backoff before retry k is base * multiplier^(k-1) ms.
  f64 backoff_base_ms = 0.25;
  f64 backoff_multiplier = 2.0;
  /// Give up (FaultKind::kRetryExhausted) once the summed attempt +
  /// backoff time exceeds this budget, even with attempts remaining.
  f64 timeout_budget_ms = std::numeric_limits<f64>::infinity();
  /// Re-check the output against the bucket function after every attempt
  /// (stability included for stable methods).  Catches silent corruption.
  bool validate_output = true;
  /// Permit degrading to a different (simpler) method; off = retry the
  /// requested method only.
  bool allow_fallback = true;
  /// Treat data-integrity faults (OOB, uninitialized reads, races) as
  /// retryable.  Off by default: in a healthy program those are bugs, not
  /// transients.  Chaos campaigns turn this on, since injected bit flips
  /// surface as exactly these kinds.
  bool retry_data_faults = false;
};

/// What resilience machinery did for one request (attached to the result).
struct ResilienceInfo {
  u32 attempts = 1;             // total run_method invocations
  u32 retries = 0;              // attempts beyond the first
  u32 fallbacks = 0;            // method downgrades taken
  u32 validation_failures = 0;  // outputs rejected by the validator
  f64 backoff_ms = 0.0;         // total virtual backoff charged
  bool degraded = false;        // final method != requested/resolved method
};

/// True if a fault of this kind may be cured by retrying (per `rp`).
/// Allocation / launch / validation failures always are; data-integrity
/// faults only when rp.retry_data_faults; config errors never.
bool fault_is_retryable(sim::FaultKind kind, const RetryPolicy& rp);

/// Next rung down the degradation ladder from `cur` that can serve an
/// (m, pairs) request, or nullopt when out of options.  Moves toward the
/// simplest, most robust kernels: fused/reduced-bit sort -> block-level ->
/// warp-level -> direct -> scan-split (m <= 2 only).
std::optional<Method> fallback_method(Method cur, u32 m, bool pairs);

struct MultisplitResult {
  /// bucket_offsets[j] = first output index of bucket j; size m+1, with
  /// bucket_offsets[m] == n.  (The paper's optional m-entry index array.)
  std::vector<u32> bucket_offsets;
  StageTimings stages;
  sim::TimingSummary summary;
  /// The concrete method that produced this result -- what Method::kAuto
  /// resolved to, or simply the requested method.  kAuto only on a
  /// default-constructed (never-run) result.
  Method method_selected = Method::kAuto;
  /// Retry/fallback accounting for the resilient entry points; default
  /// (single clean attempt) for the plain ones.
  ResilienceInfo resilience;
  f64 total_ms() const { return stages.total(); }
};

/// Type-erased bucket function for callers that don't want templates.
using BucketFunction = std::function<u32(u32)>;

}  // namespace ms::split
