// Randomized insertion multisplit (paper Section 3.5): the PRAM
// dart-throwing algorithm of Meyer [18], refactored for a block-based GPU.
//
//   1. A global histogram sizes a relaxed buffer per bucket (x times the
//      expected block share, x = cfg.relaxation).
//   2. Each block keeps an x-relaxed shared-memory buffer per bucket and
//      throws each of its keys at a random slot of its bucket's buffer;
//      collisions linearly probe for an adjacent empty slot.  Every probe
//      round costs the warp its full width (divergence: lanes that already
//      placed their key still wait), which is exactly the contention
//      penalty the paper identifies as this method's downfall.
//   3. When a shared buffer fills up, the block cooperatively flushes it
//      (including empty slots) to a cursor-reserved region of that
//      bucket's global staging area and empties it; all remaining buffers
//      are flushed at block end.
//   4. A final scan-based compaction squeezes the empty slots out of the
//      ~x*n staging area.
//
// The result is a valid (contiguous, ascending-bucket) multisplit but NOT
// stable -- intra-bucket order is randomized.  Key-only, like the paper's
// treatment.  The staging footprint and the compaction volume scale with
// x while the collision rate shrinks with it: the trade-off Section 3.5
// analyzes (best x ~= 2, still ~2x slower than radix sort).
#pragma once

#include "multisplit/bucket.hpp"
#include "multisplit/common.hpp"
#include "primitives/compact.hpp"
#include "primitives/histogram.hpp"

namespace ms::split::detail {

/// SplitMix64: cheap, well-distributed per-element hash for dart throwing.
inline u64 splitmix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename BucketFn>
MultisplitResult randomized_insertion_ms(Device& dev,
                                         const DeviceBuffer<u32>& keys_in,
                                         DeviceBuffer<u32>& keys_out, u32 m,
                                         BucketFn bucket_of,
                                         const MultisplitConfig& cfg) {
  check(m >= 1 && m <= kWarpSize,
        "randomized_insertion supports m <= 32 buckets");
  const u64 n = keys_in.size();
  const u32 nw = cfg.warps_per_block;
  const u32 tile = nw * kWarpSize;
  const u32 nblocks = static_cast<u32>(ceil_div(n, tile));
  constexpr u32 kBucketCost = bucket_charge_cost<BucketFn>;

  MultisplitResult result;
  const sim::SiteId flush_site = dev.site_id("randomized/flush_scatter");

  sim::ProfileRegion hist_region(dev, "randomized/histogram");
  // ---- stage 1: global histogram to size the relaxed buffers ----------
  DeviceBuffer<u32> hist(dev, m);
  prim::histogram_block_local(dev, keys_in, hist, m, bucket_of,
                              cfg.warps_per_block);

  // Per-block per-bucket shared capacity: x times the expected tile share,
  // with a floor so small buckets still have probe room.  (Host-side
  // arithmetic on the m-entry histogram -- launch-parameter computation.)
  std::vector<u32> cap(m), sm_base(m + 1, 0);
  for (u32 d = 0; d < m; ++d) {
    const f64 expected = static_cast<f64>(hist[d]) * tile / static_cast<f64>(n);
    cap[d] = std::max<u32>(16, static_cast<u32>(cfg.relaxation * expected) + 1);
    sm_base[d + 1] = sm_base[d] + cap[d];
  }
  const u32 cap_total = sm_base[m];

  // Global staging: bucket-major regions, cursor-reserved by flushes.
  // Sized for the end-of-block flushes plus the worst-case mid-flushes
  // (each mid-flush of bucket d clears at least ~half its buffer, so at
  // most ~2 * hist[d] / cap[d] of them happen).
  std::vector<u64> gbase(m + 1, 0);
  for (u32 d = 0; d < m; ++d) {
    const u64 end_flushes = static_cast<u64>(cap[d]) * nblocks;
    const u64 clears_per_flush =
        std::max<u32>(cap[d] / 2, cap[d] > kWarpSize ? cap[d] - kWarpSize : 1);
    const u64 mid_flushes =
        (hist[d] / clears_per_flush + 2) * static_cast<u64>(cap[d]);
    gbase[d + 1] = gbase[d] + end_flushes + mid_flushes;
  }
  DeviceBuffer<u32> staged_keys(dev, gbase[m], "randomized/staged_keys");
  DeviceBuffer<u32> staged_flags(dev, gbase[m], "randomized/staged_flags");
  DeviceBuffer<u32> cursor(dev, m, "randomized/cursor");
  // staged_keys must be cleared too: the worst-case staging slack beyond
  // the final cursors is never flushed to, yet the flag-driven compaction
  // below streams the whole buffer (initcheck would rightly flag it).
  sim::device_fill<u32>(dev, staged_keys, 0);
  sim::device_fill<u32>(dev, staged_flags, 0);
  sim::device_fill<u32>(dev, cursor, 0);
  const sim::TimingSummary hist_sum = hist_region.end();

  sim::ProfileRegion insert_region(dev, "randomized/insertion");
  // ---- stage 2: dart throwing into shared buffers, flush on pressure ---
  sim::launch_blocks(dev, "randomized_insertion", nblocks, nw, [&](Block& blk) {
    auto sm_keys = blk.shared<u32>(cap_total, "randomized/sm_keys");
    auto sm_occ = blk.shared<u32>(cap_total, "randomized/sm_occ");
    // Benign-race annotation: warps share these buffers within a barrier
    // epoch on purpose.  Slot ownership is claimed through the serialized
    // shared atomic on sm_occ, and the mid-kernel flushes rely on the
    // simulator's run-each-warp-to-completion execution order (see the
    // dart-throwing comment below).  Racecheck would rightly flag that as
    // scheduling-dependent on real hardware; here it is the modeled
    // contention experiment itself.
    sm_keys.annotate_warp_serialized();
    sm_occ.annotate_warp_serialized();
    const u64 tile_base = static_cast<u64>(blk.block_id()) * tile;

    // Zero occupancy flags AND the key buffer cooperatively: flushes copy
    // every slot of a buffer, empties included, so unclaimed key slots are
    // read later and must hold defined values.
    blk.for_each_warp([&](Warp& w) {
      for (u32 base = w.warp_in_block() * kWarpSize; base < cap_total;
           base += nw * kWarpSize) {
        const LaneMask mask = sim::tail_mask(cap_total - base);
        w.smem_write(sm_occ, LaneArray<u32>::iota(base), LaneArray<u32>{},
                     mask);
        w.smem_write(sm_keys, LaneArray<u32>::iota(base), LaneArray<u32>{},
                     mask);
      }
    });
    blk.sync();

    // Flush bucket d's shared buffer (all cap[d] slots, empties included)
    // to a cursor-reserved span of its global region, then empty it.
    const auto flush_bucket = [&](Warp& w, u32 d) {
      const auto old = w.atomic_add(cursor, LaneArray<u64>::filled(d),
                                    LaneArray<u32>::filled(cap[d]), 1u);
      const u64 dst0 = gbase[d] + old[0];
      check(dst0 + cap[d] <= gbase[d + 1],
            "randomized_insertion: staging region overflow");
      for (u32 off = 0; off < cap[d]; off += kWarpSize) {
        const LaneMask mask = sim::tail_mask(cap[d] - off);
        const auto sidx = LaneArray<u32>::iota(sm_base[d] + off);
        const auto k = w.smem_read(sm_keys, sidx, mask);
        const auto occ = w.smem_read(sm_occ, sidx, mask);
        w.charge(2);
        LaneArray<u64> idx{};
        for (u32 lane = 0; lane < kWarpSize; ++lane)
          idx[lane] = dst0 + off + lane;
        const auto flag = occ.map([](u32 o) { return o != 0 ? 1u : 0u; });
        {
          sim::ScopedSite site(dev, flush_site);
          w.scatter(staged_keys, idx, k, mask);
          w.scatter(staged_flags, idx, flag, mask);
        }
        w.smem_write(sm_occ, sidx, LaneArray<u32>{}, mask);
      }
    };

    // Dart throwing.  The simulator runs a block's warps sequentially
    // between barriers, so the claim loop below is race-free by
    // construction while paying the same contention charges a real,
    // atomically-synchronized block would.
    blk.for_each_warp([&](Warp& w) {
      const u32 wi = w.warp_in_block();
      const u64 base = tile_base + static_cast<u64>(wi) * kWarpSize;
      const LaneMask mask = prim::detail::row_mask(base, n);
      if (mask == 0) return;
      const auto keys = w.load(keys_in, base, mask);
      w.charge(kBucketCost);
      const auto buckets = keys.map(bucket_of);
      LaneArray<u32> slot{};
      LaneArray<u32> probes{};
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        if (!lane_active(mask, lane)) continue;
        const u64 h = splitmix64(cfg.seed ^ (base + lane));
        slot[lane] = sm_base[buckets[lane]] +
                     static_cast<u32>(h % cap[buckets[lane]]);
      }
      w.charge(4);  // hash + modulo
      LaneMask pending = mask;
      while (pending != 0) {
        // A lane that has probed its bucket's full capacity found it full:
        // flush that bucket (once) and restart the probe sequences of every
        // pending lane targeting it -- they all now see an empty buffer.
        for_each_lane(pending, [&](u32 lane) {
          const u32 d = buckets[lane];
          if (probes[lane] >= cap[d]) {
            flush_bucket(w, d);
            for_each_lane(pending, [&](u32 other) {
              if (buckets[other] == d) probes[other] = 0;
            });
          }
        });
        // Attempt: claim slots; the first claimant of a slot in lane order
        // sees old == 0 (the serialized shared atomic), losers probe on.
        const auto old =
            w.smem_atomic_add(sm_occ, slot, LaneArray<u32>::filled(1),
                              pending);
        LaneMask placed = 0;
        for_each_lane(pending, [&](u32 lane) {
          if (old[lane] == 0) placed |= (1u << lane);
        });
        w.smem_write(sm_keys, slot, keys, placed);
        pending &= ~placed;
        w.charge(2);  // ballot + predicate upkeep
        for_each_lane(pending, [&](u32 lane) {
          const u32 d = buckets[lane];
          u32 s = slot[lane] + 1;
          if (s >= sm_base[d] + cap[d]) s = sm_base[d];
          slot[lane] = s;
          probes[lane] += 1;
        });
      }
    });
    blk.sync();

    // End-of-block flush of every buffer.
    blk.for_each_warp([&](Warp& w) {
      for (u32 d = w.warp_in_block(); d < m; d += nw) flush_bucket(w, d);
    });
  });
  const sim::TimingSummary insert_sum = insert_region.end();

  // ---- stage 3: compact the empty slots out ----------------------------
  sim::ProfileRegion compact_region(dev, "randomized/compaction");
  const u64 kept =
      prim::compact_by_flags<u32>(dev, staged_keys, staged_flags, keys_out);
  check(kept == n, "randomized_insertion: lost elements");
  const sim::TimingSummary compact_sum = compact_region.end();

  result.stages.prescan_ms = hist_sum.total_ms;
  result.stages.scan_ms = insert_sum.total_ms;
  result.stages.postscan_ms = compact_sum.total_ms;
  result.summary = hist_sum;
  result.summary += insert_sum;
  result.summary += compact_sum;

  result.bucket_offsets.assign(m + 1, 0);
  for (u32 d = 0; d < m; ++d)
    result.bucket_offsets[d + 1] = result.bucket_offsets[d] + hist[d];
  return result;
}

}  // namespace ms::split::detail
