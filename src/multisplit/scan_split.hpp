// Scan-based split (paper Section 3.2).
//
// One round stably partitions the input by a binary flag using one
// device-wide scan: elements with flag 0 keep their relative order at the
// front, flag-1 elements at the back.  The recursive variant runs
// ceil(log2 m) rounds over the *bits of the bucket ID*, least-significant
// bit first -- each round is a stable binary split, so the composition is a
// stable multisplit (the same argument that makes LSB radix sort stable).
//
// The paper reports only an idealized lower bound (log2(m) times one
// split) because a single round was already uncompetitive; we implement
// the full recursion and benches report both the real time and that bound.
#pragma once

#include "multisplit/bucket.hpp"
#include "multisplit/common.hpp"
#include "primitives/scan.hpp"

namespace ms::split::detail {

/// One stable binary split round: elements with bit_of(key) == 0 first.
/// Stage kernels are named after the paper's Table 4 rows (labeling /
/// scan / splitting).
template <typename BitFn, typename V = u32>
void split_round(Device& dev, const DeviceBuffer<u32>& keys_in,
                 DeviceBuffer<u32>& keys_out, const DeviceBuffer<V>* vals_in,
                 DeviceBuffer<V>* vals_out, BitFn bit_of,
                 StageTimings& stages, sim::TimingSummary& summary) {
  const u64 n = keys_in.size();
  DeviceBuffer<u32> flags(dev, n);
  DeviceBuffer<u32> scanned(dev, n);
  const sim::SiteId scatter_site = dev.site_id("scan_split/scatter");

  sim::ProfileRegion label_region(dev, "scan_split/labeling");
  sim::launch_warps(dev, "split_labeling", ceil_div(n, kWarpSize),
                    [&](Warp& w, u64 wid) {
    const u64 base = wid * kWarpSize;
    const LaneMask mask = prim::detail::row_mask(base, n);
    const auto keys = w.load(keys_in, base, mask);
    w.charge(2);
    const auto f = keys.map([&](u32 k) { return bit_of(k); });
    w.store(flags, base, f, mask);
  });
  const sim::TimingSummary label_sum = label_region.end();

  sim::ProfileRegion scan_region(dev, "scan_split/scan");
  prim::exclusive_scan<u32>(dev, flags, scanned);
  const sim::TimingSummary scan_sum = scan_region.end();

  const u64 total1 = scanned[n - 1] + flags[n - 1];
  const u64 total0 = n - total1;

  sim::ProfileRegion scatter_region(dev, "scan_split/splitting");
  sim::launch_warps(dev, "split_scatter", ceil_div(n, kWarpSize),
                    [&](Warp& w, u64 wid) {
    const u64 base = wid * kWarpSize;
    const LaneMask mask = prim::detail::row_mask(base, n);
    const auto keys = w.load(keys_in, base, mask);
    const auto f = w.load(flags, base, mask);
    const auto s = w.load(scanned, base, mask);
    w.charge(3);
    LaneArray<u64> pos{};
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const u64 i = base + lane;
      pos[lane] = f[lane] ? (total0 + s[lane]) : (i - s[lane]);
    }
    {
      sim::ScopedSite site(dev, scatter_site);
      w.scatter(keys_out, pos, keys, mask);
    }
    if (vals_in != nullptr) {
      const auto vals = w.load(*vals_in, base, mask);
      sim::ScopedSite site(dev, scatter_site);
      w.scatter(*vals_out, pos, vals, mask);
    }
  });
  const sim::TimingSummary scatter_sum = scatter_region.end();

  stages.prescan_ms += label_sum.total_ms;
  stages.scan_ms += scan_sum.total_ms;
  stages.postscan_ms += scatter_sum.total_ms;
  summary += label_sum;
  summary += scan_sum;
  summary += scatter_sum;
}

/// Recursive scan-based split: ceil(log2 m) stable binary-split rounds over
/// the bucket-ID bits, LSB first.  For m == 2 this is the classic single
/// scan-based split.
template <typename BucketFn, typename V = u32>
MultisplitResult scan_split_ms(Device& dev, const DeviceBuffer<u32>& keys_in,
                               DeviceBuffer<u32>& keys_out,
                               const DeviceBuffer<V>* vals_in,
                               DeviceBuffer<V>* vals_out, u32 m,
                               BucketFn bucket_of,
                               const MultisplitConfig& cfg) {
  (void)cfg;
  const u64 n = keys_in.size();
  const u32 rounds = std::max<u32>(1, ceil_log2(m));

  MultisplitResult result;

  DeviceBuffer<u32> tmp_keys(dev, rounds > 1 ? n : 0);
  std::optional<DeviceBuffer<V>> tmp_vals;
  if (vals_in != nullptr && rounds > 1) tmp_vals.emplace(dev, n);

  // Ping-pong buffers so round `rounds-1` writes into keys_out.
  const DeviceBuffer<u32>* src_k = &keys_in;
  const DeviceBuffer<V>* src_v = vals_in;
  for (u32 r = 0; r < rounds; ++r) {
    const bool to_out = ((rounds - 1 - r) % 2 == 0);
    DeviceBuffer<u32>* dst_k = to_out ? &keys_out : &tmp_keys;
    DeviceBuffer<V>* dst_v =
        vals_in != nullptr ? (to_out ? vals_out : &*tmp_vals) : nullptr;
    split_round(
        dev, *src_k, *dst_k, src_v, dst_v,
        [&](u32 k) { return (bucket_of(k) >> r) & 1u; }, result.stages,
        result.summary);
    src_k = dst_k;
    src_v = dst_v;
  }
  check(src_k == &keys_out, "scan_split: ping-pong ended in wrong buffer");
  // Span-only epilogue stage over the host-side offsets derivation below
  // (no kernels, so no ProfileRegion / trace stage band is added).
  sim::SpanScope epilogue_span(dev, sim::SpanKind::kStage,
                               "scan_split/epilogue");
  // Bucket offsets: derived host-side from the (already split) output;
  // uncharged verification convenience, as the split rounds themselves
  // never materialize a histogram.
  // Output keys are device data and untrusted (see reduced_bit_sort.hpp):
  // a corrupted key whose bucket falls outside [0, m) must produce wrong
  // offsets, never an out-of-range host write.
  result.bucket_offsets.assign(m + 1, 0);
  for (u64 i = 0; i < n; ++i) {
    const u32 b = bucket_of(keys_out[i]);
    if (b < m) result.bucket_offsets[b + 1]++;
  }
  for (u32 j = 0; j < m; ++j)
    result.bucket_offsets[j + 1] += result.bucket_offsets[j];
  return result;
}

}  // namespace ms::split::detail
