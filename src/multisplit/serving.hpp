// Async batched serving executor -- the request path for "millions of
// tiny multisplits" workloads.
//
// The plan/executor layer (plan.hpp) is built for few large problems:
// every run() pays a full launch sequence, so at serving shapes
// (n <= 4096, m <= 32) the 5 us kernel-launch overhead dominates the
// modeled time.  The ServingExecutor refactors that path into a serving
// pipeline:
//
//   submit() -> ticket        requests queue; nothing runs yet
//   [policy flush point]      queue full, linger expired, or explicit
//   flush: pack + fuse        packable problems are packed one-per-warp
//                             (or 4-per-warp sub-warp slots) into at most
//                             two fused launches (batch_ms.hpp); the rest
//                             fall back to an ordinary plan.run()
//   get(ticket) -> result     completion is observable without blocking
//                             via ready(); get() forces a flush
//
// "Async" here means deferred to deterministic flush points, not host
// threads: all serving logic runs on the main thread, the parallelism is
// inside the fused launches (launch_warps' deterministic item pool), and
// every flush trigger is a pure function of the queue and the device's
// VIRTUAL clock.  Results are therefore bit-identical for a given policy
// regardless of MS_HOST_THREADS.
//
// Determinism of the reported per-problem cost: packed problems report
// the closed-form packed_problem_cost(profile, n, m, class), a function
// of the problem's own shape only -- never of batch size, batch
// composition, buffer addresses or thread count.  Unpacked problems run
// the ordinary plan path outside the batch span and report exactly what
// a sequential caller would see.
//
// Partial-batch retry: a faulted fused launch (or a problem whose output
// fails host validation, e.g. under chaos bit flips) re-packs ONLY the
// affected problems into a fresh fused launch, up to
// policy.max_retry_rounds; the rest of the batch completes normally.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "multisplit/batch_ms.hpp"
#include "multisplit/common.hpp"

namespace ms::split {

/// Flush policy of a ServingExecutor.  All triggers are deterministic:
/// queue depth and the device's virtual clock only.
struct ServingPolicy {
  /// Flush as soon as this many requests are queued.
  u32 max_batch = 256;
  /// Flush at submit time when the oldest queued request has lingered
  /// this long in VIRTUAL milliseconds (device lifetime_ms delta).  The
  /// virtual clock only advances when launches run, so a pure submit
  /// stream flushes on max_batch; interleaved foreground work expires
  /// lingering batches.
  f64 max_linger_ms = 0.25;
  /// Re-pack rounds for faulted / validation-failed problems before
  /// reporting them failed.
  u32 max_retry_rounds = 2;
  /// Host-validate every packed problem's output against the stable
  /// partition (the fused kernels' contract).  Catches silent corruption
  /// (chaos bit flips) per problem, enabling partial-batch retry.
  bool validate = true;
  /// Configuration forwarded to plan.run() for unpacked problems.
  /// (method is overridden per request.)
  MultisplitConfig config;
};

/// Completed request.  `failed` requests carry `error` and empty outputs.
struct ServeResult {
  std::vector<u32> keys_out;        ///< the stable partition of the input
  std::vector<u32> bucket_offsets;  ///< size m+1, bucket_offsets[m] == n
  /// The concrete method this request resolved to (kAuto resolved at
  /// flush with resolve_auto -- identical to what a sequential plan.run
  /// would have selected and recorded).
  Method method_selected = Method::kAuto;
  /// Packed problems: closed-form packed_problem_cost (launch overhead
  /// excluded -- it is shared).  Unpacked problems: the plan result's
  /// total_ms(), exactly as sequential.
  f64 modeled_cost_ms = 0.0;
  PackClass pack_class = PackClass::kNone;
  bool packed = false;   ///< served by a fused launch?
  bool failed = false;
  std::string error;     ///< first failure cause when failed
  u64 batch_id = 0;      ///< flush that served this request (1-based)
  u32 batch_size = 0;    ///< problems served by that flush
  u32 retry_rounds = 0;  ///< fused re-pack rounds this problem needed
};

/// Ticket returned by submit(); redeem with ready()/get().
using ServeTicket = u64;

class ServingExecutor {
 public:
  explicit ServingExecutor(sim::Device& dev, ServingPolicy policy = {});

  /// Queue one multisplit request (key-only, type-erased bucket function,
  /// matching the serving shape).  The executor owns the key vector; the
  /// split runs at the next flush point.  May flush before returning
  /// (max_batch reached or linger expired) -- completion is still only
  /// observable through ready()/get().
  ServeTicket submit(std::vector<u32> keys, u32 m, BucketFunction bucket_of,
                     Method method = Method::kAuto);

  /// True once the ticket's request has executed (no blocking, no work).
  bool ready(ServeTicket t) const;

  /// Result of a submitted request; forces a flush if still queued.
  const ServeResult& get(ServeTicket t);

  /// Execute everything queued now.  Returns the number of requests
  /// served (0 when the queue was empty).
  u64 flush();

  /// Flush until the queue is empty (one flush serves everything; this
  /// is the explicit end-of-stream drain point).
  u64 drain() { return flush(); }

  /// Requests queued but not yet executed.
  u64 pending() const { return queue_.size(); }

  const ServingPolicy& policy() const { return policy_; }
  sim::Device& device() const { return *dev_; }

 private:
  struct PendingRequest {
    ServeTicket ticket = 0;
    std::vector<u32> keys;
    u32 m = 0;
    BucketFunction bucket;
    Method method = Method::kAuto;
    f64 enqueue_ms = 0.0;  ///< virtual clock at submit (linger base)
  };

  /// A pending request resolved for one flush: concrete method + class.
  struct FlushItem {
    PendingRequest* req = nullptr;
    Method selected = Method::kAuto;
    PackClass cls = PackClass::kNone;
    u32 retry_rounds = 0;
  };

  void maybe_flush();
  /// Run one fused launch over `items` (all of one class), validating and
  /// retrying per policy; fills each item's ServeResult.
  void run_packed(PackClass cls, std::vector<FlushItem>& items, u64 batch_id,
                  u32 batch_size);
  /// Ordinary plan path for one non-packable request (outside any batch
  /// span: spans and modeled costs identical to a sequential caller).
  void run_unpacked(const FlushItem& item, u64 batch_id, u32 batch_size);
  ServeResult& result_slot(ServeTicket t);

  sim::Device* dev_;
  ServingPolicy policy_;
  std::vector<PendingRequest> queue_;
  /// results_[ticket - 1]; nullopt until executed.
  std::vector<std::optional<ServeResult>> results_;
  u64 next_batch_ = 1;
};

}  // namespace ms::split
