// Non-template pieces of the plan layer: method metadata (tokens, display
// names, capabilities), Method::kAuto resolution, MultisplitConfig
// validation, and MultisplitPlan's host-side shape/scratch resolution.
#include "multisplit/plan.hpp"

#include <sstream>

#include "primitives/scan.hpp"

namespace ms::split {

namespace {

/// Metadata table, indexed by static_cast<u32>(Method); kAuto last.
constexpr MethodTraits kTraits[] = {
    // token, display, max_m, supports_pairs, stable
    {"direct", "Direct MS", UINT32_MAX, true, true},
    {"warp", "Warp-level MS", UINT32_MAX, true, true},
    {"block", "Block-level MS", UINT32_MAX, true, true},
    {"scan_split", "Scan-based split", 2, true, true},
    {"recursive_split", "Recursive scan split", UINT32_MAX, true, true},
    {"reduced_bit", "Reduced-bit sort", UINT32_MAX, true, true},
    {"randomized", "Randomized insertion", UINT32_MAX, false, false},
    {"fused_sort", "Fused-bucket sort", UINT32_MAX, true, true},
    {"auto", "Auto", UINT32_MAX, true, true},
};
constexpr u32 kMethodCount = static_cast<u32>(std::size(kTraits));

[[noreturn]] void reject_config(const std::string& detail) {
  sim::FaultContext ctx;
  ctx.kind = sim::FaultKind::kInvalidConfig;
  ctx.kernel = "<plan>";
  ctx.object = "MultisplitConfig";
  ctx.detail = detail;
  throw sim::SimError(std::move(ctx));
}

}  // namespace

const MethodTraits& method_traits(Method m) {
  const u32 idx = static_cast<u32>(m);
  check(idx < kMethodCount, "method_traits: unknown method");
  return kTraits[idx];
}

std::string to_string(Method m) { return method_traits(m).display; }

std::string method_token(Method m) { return method_traits(m).token; }

std::optional<Method> parse_method(std::string_view name) {
  for (u32 i = 0; i < kMethodCount; ++i) {
    if (name == kTraits[i].token || name == kTraits[i].display) {
      return static_cast<Method>(i);
    }
  }
  return std::nullopt;
}

bool fault_is_retryable(sim::FaultKind kind, const RetryPolicy& rp) {
  switch (kind) {
    // Transient by construction: a failed allocation may succeed after the
    // pool drains, an aborted launch after resubmission, and a rejected
    // output after a rerun overwrites the corruption.
    case sim::FaultKind::kAllocFailure:
    case sim::FaultKind::kLaunchFailure:
    case sim::FaultKind::kValidationFailure:
      return true;
    // Data-integrity findings.  In a healthy program these are bugs and
    // retrying hides them; under fault injection a flipped bit produces
    // exactly these kinds, so chaos campaigns opt in.
    case sim::FaultKind::kGlobalOOB:
    case sim::FaultKind::kSharedOOB:
    case sim::FaultKind::kUninitGlobalRead:
    case sim::FaultKind::kUninitSharedRead:
    case sim::FaultKind::kRaceHazard:
      return rp.retry_data_faults;
    // Deterministic host/config errors: a retry replays the same mistake.
    default:
      return false;
  }
}

std::optional<Method> fallback_method(Method cur, u32 m, bool pairs) {
  // Degradation ladder, most- to least-sophisticated.  Each faulting
  // method falls to the next rung that can serve the (m, pairs) request;
  // the bottom rungs trade throughput for simpler kernels with smaller
  // scratch footprints and fewer shared-memory tricks.
  auto usable = [&](Method cand) {
    const MethodTraits& tr = method_traits(cand);
    if (m > tr.max_m) return false;
    if (pairs && !tr.supports_pairs) return false;
    return true;
  };
  auto next_in_chain = [&](Method from) -> std::optional<Method> {
    static constexpr Method kLadder[] = {
        Method::kFusedBucketSort, Method::kReducedBitSort,
        Method::kBlockLevel,      Method::kWarpLevel,
        Method::kDirect,
    };
    bool seen = false;
    for (Method cand : kLadder) {
      if (cand == from) {
        seen = true;
        continue;
      }
      if (seen && usable(cand)) return cand;
    }
    if (!seen) return std::nullopt;
    // Below the warp methods: the scan-based splits, whose kernels share
    // almost nothing with the histogram/sort family that just failed.
    if (m <= 2 && from != Method::kScanSplit && usable(Method::kScanSplit)) {
      return Method::kScanSplit;
    }
    if (m > 2 && usable(Method::kRecursiveScanSplit)) {
      return Method::kRecursiveScanSplit;
    }
    return std::nullopt;
  };
  switch (cur) {
    case Method::kRandomizedInsertion:
      // Key-only, non-stable specialist: degrade to the stable generalist.
      return usable(Method::kWarpLevel) ? std::optional<Method>(Method::kWarpLevel)
                                        : std::nullopt;
    case Method::kScanSplit:
    case Method::kRecursiveScanSplit:
    case Method::kAuto:
      // Already at the bottom of the ladder (or unresolved): no rung left.
      return std::nullopt;
    default:
      return next_in_chain(cur);
  }
}

Method resolve_auto(const sim::DeviceProfile& profile, u64 /*n*/, u32 m) {
  // Paper Section 6: warp-level MS leads for small bucket counts, the
  // block-level method through the shared-memory histogram limit, and the
  // reduced-bit sort beyond.  The crossover points live in the device
  // profile; n currently does not move them (the paper's crossovers are
  // stable across its measured sizes).
  if (m <= profile.auto_warp_level_max_m) return Method::kWarpLevel;
  if (m <= profile.auto_block_level_max_m) return Method::kBlockLevel;
  return Method::kReducedBitSort;
}

void validate_config(const MultisplitConfig& cfg) {
  if (cfg.warps_per_block == 0) {
    reject_config("warps_per_block must be >= 1 (a block needs a warp)");
  }
  if (cfg.items_per_thread == 0) {
    reject_config("items_per_thread must be >= 1");
  }
  if (cfg.block_items_per_thread == 0) {
    reject_config("block_items_per_thread must be >= 1");
  }
  if (cfg.relaxation < 1.0) {
    std::ostringstream os;
    os << "relaxation must be >= 1.0 (staging areas need at least one slot "
          "per key), got "
       << cfg.relaxation;
    reject_config(os.str());
  }
}

namespace {

/// Scratch estimate helpers.  Sizes are rounded per buffer exactly the way
/// the allocator rounds them (to the 32-byte transaction granularity), so
/// the plan's temp_storage_bytes matches the address space a run consumes.
constexpr u64 kAlign = 32;
u64 rounded(u64 bytes) {
  return ceil_div(bytes == 0 ? u64{1} : bytes, kAlign) * kAlign;
}

/// Address space of exclusive_scan's recursive partial tree over `len`
/// u32 elements (primitives/scan.hpp: two nblocks-sized buffers per level).
u64 scan_tree_bytes(u64 len) {
  const u32 tile = prim::ScanConfig{}.tile_items();
  if (len <= tile) return 0;
  const u64 nblocks = ceil_div(len, tile);
  return 2 * rounded(nblocks * 4) + scan_tree_bytes(nblocks);
}

}  // namespace

MultisplitPlan::MultisplitPlan(sim::Device& dev, u64 n, u32 m,
                               MultisplitConfig cfg, u32 value_bytes)
    : dev_(&dev),
      n_(n),
      m_(m),
      value_bytes_(value_bytes),
      requested_(cfg.method),
      cfg_(cfg) {
  check(m >= 1, "multisplit: need at least one bucket");
  validate_config(cfg_);
  method_ = requested_ == Method::kAuto ? resolve_auto(dev.profile(), n, m)
                                        : requested_;
  cfg_.method = method_;

  const MethodTraits& tr = method_traits(method_);
  if (method_ == Method::kScanSplit) {
    check(m <= 2, "scan-based split handles at most 2 buckets");
  }
  check(m <= tr.max_m, "multisplit: m exceeds the method's bucket limit");
  if (value_bytes_ > 0) {
    check(tr.supports_pairs, "randomized insertion is key-only (Section 3.5)");
  }

  // First-stage geometry and per-run scratch, mirroring what the method
  // implementations compute when they run.  All host arithmetic: building
  // a plan does no device work (the bit-identity argument in DESIGN.md
  // §10 depends on this).
  const u32 nw = cfg_.warps_per_block;
  shape_.warps_per_block = nw;
  switch (method_) {
    case Method::kDirect:
    case Method::kWarpLevel: {
      const u32 k = std::max<u32>(1, cfg_.items_per_thread);
      const u64 L = ceil_div(n, u64{kWarpSize} * k);  // warp subproblems
      shape_.subproblems = L;
      shape_.blocks = static_cast<u32>(ceil_div(L, nw));
      // Histogram matrix h and its scan g (m x L u32 each) + scan tree.
      temp_bytes_ = 2 * rounded(u64{m_} * L * 4) + scan_tree_bytes(u64{m_} * L);
      break;
    }
    case Method::kBlockLevel: {
      const bool small_m = m_ <= 32;
      const u32 k = small_m ? std::max<u32>(1, cfg_.block_items_per_thread) : 1;
      const u64 tile = u64{nw} * kWarpSize * k;
      const u64 L = ceil_div(n, tile);  // one subproblem per block
      shape_.subproblems = L;
      shape_.blocks = static_cast<u32>(L);
      temp_bytes_ = 2 * rounded(u64{m_} * L * 4) + scan_tree_bytes(u64{m_} * L);
      break;
    }
    case Method::kScanSplit:
    case Method::kRecursiveScanSplit: {
      const u32 rounds = std::max<u32>(1, ceil_log2(m_));
      shape_.subproblems = ceil_div(n, u64{kWarpSize});  // labeling warps
      shape_.blocks = static_cast<u32>(ceil_div(shape_.subproblems, u64{nw}));
      // Per round: flag + scanned-flag vectors and their scan tree; the
      // ping-pong key (and value) buffer persists across rounds.
      temp_bytes_ = 2 * rounded(n * 4) + scan_tree_bytes(n);
      if (rounds > 1) {
        temp_bytes_ += rounded(n * 4);
        if (value_bytes_ > 0) temp_bytes_ += rounded(n * value_bytes_);
      }
      break;
    }
    case Method::kReducedBitSort: {
      shape_.subproblems = ceil_div(n, u64{kWarpSize});
      shape_.blocks = static_cast<u32>(ceil_div(shape_.subproblems, u64{nw}));
      // Label vector + permutation payload (index vector key-only, packed
      // label|key u64 otherwise) + the radix sort's ping-pong buffers.
      // The sort's per-pass histogram trees are O(n / tile * m) and are
      // left out of the estimate.
      const u64 payload = value_bytes_ > 0 ? rounded(n * 8) : rounded(n * 4);
      temp_bytes_ = rounded(n * 4) + 2 * payload;
      break;
    }
    case Method::kRandomizedInsertion: {
      const u64 tile = u64{nw} * kWarpSize;
      shape_.subproblems = ceil_div(n, tile);
      shape_.blocks = static_cast<u32>(shape_.subproblems);
      // Histogram + cursor (m u32 each) and the relaxed staging area
      // (~relaxation * n slots for keys and occupancy flags; the exact
      // size rounds per bucket at run time).
      const u64 staged =
          static_cast<u64>(cfg_.relaxation * static_cast<f64>(n)) + m_;
      temp_bytes_ = 2 * rounded(u64{m_} * 4) + 2 * rounded(staged * 4) +
                    scan_tree_bytes(m_);
      break;
    }
    case Method::kFusedBucketSort: {
      shape_.subproblems = ceil_div(n, u64{kWarpSize});
      shape_.blocks = static_cast<u32>(ceil_div(shape_.subproblems, u64{nw}));
      // Ping-pong key (and value) buffers; per-pass histogram trees left
      // out as above.
      temp_bytes_ = rounded(n * 4);
      if (value_bytes_ > 0) temp_bytes_ += rounded(n * value_bytes_);
      break;
    }
    case Method::kAuto:
      fail("multisplit plan: kAuto must resolve to a concrete method");
  }
}

void MultisplitPlan::check_keys(const sim::DeviceBuffer<u32>& in,
                                const sim::DeviceBuffer<u32>& out) const {
  check(&in != &out, "multisplit: in and out must be distinct");
  check(in.size() == n_, "multisplit plan: input size differs from planned n");
  check(out.size() >= n_, "multisplit: output too small");
}

void MultisplitPlan::check_pairs(const sim::DeviceBuffer<u32>& keys_in,
                                 u64 vals_in_size,
                                 const sim::DeviceBuffer<u32>& keys_out,
                                 u64 vals_out_size) const {
  check(&keys_in != &keys_out, "multisplit: in and out must be distinct");
  check(keys_in.size() == n_,
        "multisplit plan: input size differs from planned n");
  check(keys_in.size() == vals_in_size, "multisplit: key/value mismatch");
  check(keys_out.size() >= n_ && vals_out_size >= n_,
        "multisplit: output too small");
  check(method_traits(method_).supports_pairs,
        "randomized insertion is key-only (Section 3.5)");
}

namespace detail {

void throw_retry_exhausted(Method requested, u32 attempts, f64 spent_ms,
                           const sim::FaultContext& last) {
  sim::FaultContext ctx;
  ctx.kind = sim::FaultKind::kRetryExhausted;
  ctx.kernel = "<resilience>";
  ctx.object = to_string(requested);
  ctx.index = attempts;
  std::ostringstream os;
  os << "retry budget exhausted after " << attempts << " attempts ("
     << spent_ms << " modeled ms); last fault: " << to_string(last.kind);
  if (!last.detail.empty()) os << " -- " << last.detail;
  ctx.detail = os.str();
  throw sim::SimError(std::move(ctx));
}

}  // namespace detail

MultisplitResult MultisplitPlan::run(const sim::DeviceBuffer<u32>& in,
                                     sim::DeviceBuffer<u32>& out,
                                     const BucketFunction& bucket_of) const {
  return run(in, out, detail::ErasedBucket{&bucket_of});
}

MultisplitResult MultisplitPlan::run_pairs(
    const sim::DeviceBuffer<u32>& keys_in,
    const sim::DeviceBuffer<u32>& vals_in, sim::DeviceBuffer<u32>& keys_out,
    sim::DeviceBuffer<u32>& vals_out, const BucketFunction& bucket_of) const {
  return run_pairs(keys_in, vals_in, keys_out, vals_out,
                   detail::ErasedBucket{&bucket_of});
}

MultisplitResult MultisplitPlan::run(const sim::DeviceBuffer<u32>& in,
                                     sim::DeviceBuffer<u32>& out,
                                     const BucketFunction& bucket_of,
                                     const RetryPolicy& rp) const {
  return run(in, out, detail::ErasedBucket{&bucket_of}, rp);
}

MultisplitResult MultisplitPlan::run_pairs(
    const sim::DeviceBuffer<u32>& keys_in,
    const sim::DeviceBuffer<u32>& vals_in, sim::DeviceBuffer<u32>& keys_out,
    sim::DeviceBuffer<u32>& vals_out, const BucketFunction& bucket_of,
    const RetryPolicy& rp) const {
  return run_pairs(keys_in, vals_in, keys_out, vals_out,
                   detail::ErasedBucket{&bucket_of}, rp);
}

}  // namespace ms::split
