// Seeded chaos campaigns: many resilient multisplit requests executed
// against an armed fault-injection engine (sim/chaos.hpp), with every
// outcome audited against a host-side ground truth.
//
// A campaign is the system-level proof the chaos PR gates on: for a given
// (seed, policy, request count) it reports how many faults were injected,
// how many requests recovered, how many surfaced as structured errors --
// and, crucially, that ZERO requests returned a silently wrong result.
// Campaigns are fully deterministic: the same config produces the same
// report at any MS_HOST_THREADS setting.
#pragma once

#include <string>
#include <vector>

#include "multisplit/common.hpp"
#include "sim/chaos.hpp"

namespace ms::split {

struct ChaosCampaignConfig {
  /// Seed for the campaign's own key streams (independent of the chaos
  /// engine's policy seed so reshuffling inputs never re-times faults).
  u64 seed = 0x5EEDFACEull;
  /// Total resilient requests to execute (round-robin over `methods`).
  u32 requests = 500;
  /// Keys per request (kept small: campaigns run hundreds of requests).
  u32 log2_n = 10;
  /// Buckets per request.
  u32 m = 8;
  /// Methods exercised, in round-robin order.
  std::vector<Method> methods = {Method::kWarpLevel, Method::kBlockLevel,
                                 Method::kReducedBitSort,
                                 Method::kRecursiveScanSplit};
  /// Fault mix.  Defaults make a 500-request campaign inject faults at
  /// every site while leaving most requests clean.
  sim::ChaosPolicy chaos = {
      .seed = 0xC405C0DEull,
      .p_alloc_fail = 0.01,
      .p_launch_abort = 0.01,
      .p_bit_flip = 0.03,
      .p_l2_corrupt = 0.0002,
  };
  /// Retry behavior.  retry_data_faults is on: injected corruption can
  /// surface as sanitizer-style data faults, which ARE transient here.
  RetryPolicy retry = {.retry_data_faults = true};
  /// Device profile name ("" = default profile).
  std::string profile;
  /// Record request/attempt/stage/launch spans (sim/span.hpp) and return
  /// the serialized dump in ChaosCampaignReport::spans_jsonl.
  bool record_spans = false;
};

/// Outcome tallies; requests = ok_first_try + recovered + structured_errors
/// + silent_wrong.
struct ChaosCampaignReport {
  ChaosCampaignConfig config;
  u32 ok_first_try = 0;       ///< clean on the first attempt
  u32 recovered = 0;          ///< faulted, then returned a correct result
  u32 structured_errors = 0;  ///< surfaced as SimError (never silent)
  u32 silent_wrong = 0;       ///< wrong output accepted -- MUST be zero
  u64 retries = 0;            ///< attempts beyond the first, summed
  u64 fallbacks = 0;          ///< method downgrades, summed
  /// Device-side stats snapshot at campaign end (injected_* totals and the
  /// executor's own accounting).
  sim::ResilienceStats stats;
  /// Execution-order audit trail of every injected fault.
  std::vector<sim::InjectionRecord> injections;
  /// Span dump (JSONL text) when config.record_spans was set; the device
  /// is campaign-local, so the dump is serialized before it is destroyed.
  std::string spans_jsonl;

  u32 total() const {
    return ok_first_try + recovered + structured_errors + silent_wrong;
  }
  /// The CI gate: every request either produced a verified-correct output
  /// or a structured error.
  bool clean() const {
    return silent_wrong == 0 && total() == config.requests;
  }
};

/// Run a campaign on a fresh device.  Deterministic in `cfg` alone.
ChaosCampaignReport run_chaos_campaign(const ChaosCampaignConfig& cfg);

/// Human-readable report (the `ms_cli chaos` output): config echo, the
/// injected-vs-detected-vs-recovered-vs-lost table, and the verdict line.
std::string format_campaign(const ChaosCampaignReport& rep);

}  // namespace ms::split
