// GPU Multisplit -- public API.
//
// Multisplit permutes keys (or key-value pairs) into m contiguous buckets,
// ordered by ascending bucket ID, where a programmer-provided functor maps
// each key to its bucket.  The deterministic methods are stable (input
// order preserved within a bucket); randomized insertion is not.
//
//   Device dev;                                    // simulated K40c
//   DeviceBuffer<u32> in(dev, n), out(dev, n);
//   ... fill in ...
//   auto r = multisplit_keys(dev, in, out, /*m=*/8, RangeBucket{8});
//   // out now holds the permuted keys; r.bucket_offsets[j] is where
//   // bucket j starts; r.stages breaks the cost into the paper's
//   // pre-scan / scan / post-scan stages.
//
// Method selection (MultisplitConfig::method) follows the paper's guidance:
// Warp-level MS for small m (<= ~6), Block-level MS for larger m; Direct
// MS, scan-based splits, reduced-bit sort and randomized insertion are
// provided as the paper's full cast of alternatives and baselines.
#pragma once

#include <functional>

#include "multisplit/block_ms.hpp"
#include "multisplit/bucket.hpp"
#include "multisplit/common.hpp"
#include "multisplit/fused_sort.hpp"
#include "multisplit/randomized_insertion.hpp"
#include "multisplit/reduced_bit_sort.hpp"
#include "multisplit/scan_split.hpp"
#include "multisplit/sort_baselines.hpp"
#include "multisplit/warp_ms.hpp"

namespace ms::split {

namespace detail {
/// Typed null value-buffer for the key-only paths (lets V deduce to u32).
inline constexpr const sim::DeviceBuffer<u32>* kNoValues = nullptr;
inline constexpr sim::DeviceBuffer<u32>* kNoValuesOut = nullptr;
}  // namespace detail

/// Key-only multisplit of `in` into `out` (distinct buffers, equal size).
/// Returns bucket offsets and per-stage timings.
template <typename BucketFn>
MultisplitResult multisplit_keys(sim::Device& dev,
                                 const sim::DeviceBuffer<u32>& in,
                                 sim::DeviceBuffer<u32>& out, u32 m,
                                 BucketFn bucket_of,
                                 const MultisplitConfig& cfg = {}) {
  check(&in != &out, "multisplit: in and out must be distinct");
  check(out.size() >= in.size(), "multisplit: output too small");
  check(m >= 1, "multisplit: need at least one bucket");
  switch (cfg.method) {
    case Method::kDirect:
      return detail::warp_granularity_ms<false>(dev, in, out, detail::kNoValues,
                                                detail::kNoValuesOut, m,
                                                bucket_of, cfg);
    case Method::kWarpLevel:
      return detail::warp_granularity_ms<true>(dev, in, out, detail::kNoValues,
                                               detail::kNoValuesOut, m,
                                               bucket_of, cfg);
    case Method::kBlockLevel:
      return detail::block_ms(dev, in, out, detail::kNoValues,
                              detail::kNoValuesOut, m, bucket_of, cfg);
    case Method::kScanSplit:
      check(m <= 2, "scan-based split handles at most 2 buckets");
      return detail::scan_split_ms(dev, in, out, detail::kNoValues,
                                   detail::kNoValuesOut, m, bucket_of, cfg);
    case Method::kRecursiveScanSplit:
      return detail::scan_split_ms(dev, in, out, detail::kNoValues,
                                   detail::kNoValuesOut, m, bucket_of, cfg);
    case Method::kReducedBitSort:
      return detail::reduced_bit_sort_ms(dev, in, out, detail::kNoValues,
                                         detail::kNoValuesOut, m, bucket_of,
                                         cfg);
    case Method::kRandomizedInsertion:
      return detail::randomized_insertion_ms(dev, in, out, m, bucket_of, cfg);
    case Method::kFusedBucketSort:
      return detail::fused_bucket_sort_ms(dev, in, out, detail::kNoValues,
                                          detail::kNoValuesOut, m, bucket_of,
                                          cfg);
  }
  fail("multisplit: unknown method");
}

/// Key-value multisplit: values are permuted alongside their keys.
/// V is u32 or u64 -- the paper's "values larger than the size of a
/// pointer use a pointer in place of the actual value" convention.
template <typename BucketFn, typename V>
MultisplitResult multisplit_pairs(sim::Device& dev,
                                  const sim::DeviceBuffer<u32>& keys_in,
                                  const sim::DeviceBuffer<V>& vals_in,
                                  sim::DeviceBuffer<u32>& keys_out,
                                  sim::DeviceBuffer<V>& vals_out, u32 m,
                                  BucketFn bucket_of,
                                  const MultisplitConfig& cfg = {}) {
  static_assert(std::is_same_v<V, u32> || std::is_same_v<V, u64>,
                "multisplit values are u32 or u64 (use a pointer otherwise)");
  check(&keys_in != &keys_out && &vals_in != &vals_out,
        "multisplit: in and out must be distinct");
  check(keys_in.size() == vals_in.size(), "multisplit: key/value mismatch");
  check(keys_out.size() >= keys_in.size() && vals_out.size() >= vals_in.size(),
        "multisplit: output too small");
  check(m >= 1, "multisplit: need at least one bucket");
  switch (cfg.method) {
    case Method::kDirect:
      return detail::warp_granularity_ms<false>(dev, keys_in, keys_out,
                                                &vals_in, &vals_out, m,
                                                bucket_of, cfg);
    case Method::kWarpLevel:
      return detail::warp_granularity_ms<true>(dev, keys_in, keys_out,
                                               &vals_in, &vals_out, m,
                                               bucket_of, cfg);
    case Method::kBlockLevel:
      return detail::block_ms(dev, keys_in, keys_out, &vals_in, &vals_out, m,
                              bucket_of, cfg);
    case Method::kScanSplit:
      check(m <= 2, "scan-based split handles at most 2 buckets");
      return detail::scan_split_ms(dev, keys_in, keys_out, &vals_in, &vals_out,
                                   m, bucket_of, cfg);
    case Method::kRecursiveScanSplit:
      return detail::scan_split_ms(dev, keys_in, keys_out, &vals_in, &vals_out,
                                   m, bucket_of, cfg);
    case Method::kReducedBitSort:
      return detail::reduced_bit_sort_ms(dev, keys_in, keys_out, &vals_in,
                                         &vals_out, m, bucket_of, cfg);
    case Method::kRandomizedInsertion:
      fail("randomized insertion is key-only (Section 3.5)");
    case Method::kFusedBucketSort:
      return detail::fused_bucket_sort_ms(dev, keys_in, keys_out, &vals_in,
                                          &vals_out, m, bucket_of, cfg);
  }
  fail("multisplit: unknown method");
}

/// Type-erased bucket function for callers that don't want templates.
using BucketFunction = std::function<u32(u32)>;

MultisplitResult multisplit_keys(sim::Device& dev,
                                 const sim::DeviceBuffer<u32>& in,
                                 sim::DeviceBuffer<u32>& out, u32 m,
                                 const BucketFunction& bucket_of,
                                 const MultisplitConfig& cfg);

MultisplitResult multisplit_pairs(sim::Device& dev,
                                  const sim::DeviceBuffer<u32>& keys_in,
                                  const sim::DeviceBuffer<u32>& vals_in,
                                  sim::DeviceBuffer<u32>& keys_out,
                                  sim::DeviceBuffer<u32>& vals_out, u32 m,
                                  const BucketFunction& bucket_of,
                                  const MultisplitConfig& cfg);

}  // namespace ms::split
