// GPU Multisplit -- public API.
//
// Multisplit permutes keys (or key-value pairs) into m contiguous buckets,
// ordered by ascending bucket ID, where a programmer-provided functor maps
// each key to its bucket.  The deterministic methods are stable (input
// order preserved within a bucket); randomized insertion is not.
//
//   Device dev;                                    // simulated K40c
//   DeviceBuffer<u32> in(dev, n), out(dev, n);
//   ... fill in ...
//   auto r = multisplit_keys(dev, in, out, /*m=*/8, RangeBucket{8});
//   // out now holds the permuted keys; r.bucket_offsets[j] is where
//   // bucket j starts; r.stages breaks the cost into the paper's
//   // pre-scan / scan / post-scan stages.
//
// Method selection (MultisplitConfig::method) follows the paper's guidance:
// Warp-level MS for small m (<= ~6), Block-level MS for larger m; Direct
// MS, scan-based splits, reduced-bit sort and randomized insertion are
// provided as the paper's full cast of alternatives and baselines.
// Method::kAuto applies that guidance automatically.
//
// The free functions below are one-shot conveniences: each builds a
// MultisplitPlan (plan.hpp) and runs it once.  Callers that split
// repeatedly should build the plan themselves and reuse it -- scratch
// buffers then come back from the device's pooled allocator and repeated
// runs re-hit L2 (see bench/plan_reuse.cpp).  Single-shot modeled costs
// are identical either way.
#pragma once

#include "multisplit/plan.hpp"

namespace ms::split {

/// Key-only multisplit of `in` into `out` (distinct buffers, equal size).
/// Returns bucket offsets and per-stage timings.
template <typename BucketFn>
MultisplitResult multisplit_keys(sim::Device& dev,
                                 const sim::DeviceBuffer<u32>& in,
                                 sim::DeviceBuffer<u32>& out, u32 m,
                                 BucketFn bucket_of,
                                 const MultisplitConfig& cfg = {}) {
  const MultisplitPlan plan(dev, in.size(), m, cfg);
  return plan.run(in, out, bucket_of);
}

/// Key-value multisplit: values are permuted alongside their keys.
/// V is u32 or u64 -- the paper's "values larger than the size of a
/// pointer use a pointer in place of the actual value" convention.
template <typename BucketFn, typename V>
MultisplitResult multisplit_pairs(sim::Device& dev,
                                  const sim::DeviceBuffer<u32>& keys_in,
                                  const sim::DeviceBuffer<V>& vals_in,
                                  sim::DeviceBuffer<u32>& keys_out,
                                  sim::DeviceBuffer<V>& vals_out, u32 m,
                                  BucketFn bucket_of,
                                  const MultisplitConfig& cfg = {}) {
  static_assert(std::is_same_v<V, u32> || std::is_same_v<V, u64>,
                "multisplit values are u32 or u64 (use a pointer otherwise)");
  const MultisplitPlan plan(dev, keys_in.size(), m, cfg,
                            static_cast<u32>(sizeof(V)));
  return plan.run_pairs(keys_in, vals_in, keys_out, vals_out, bucket_of);
}

/// Type-erased overloads (see BucketFunction in common.hpp).
MultisplitResult multisplit_keys(sim::Device& dev,
                                 const sim::DeviceBuffer<u32>& in,
                                 sim::DeviceBuffer<u32>& out, u32 m,
                                 const BucketFunction& bucket_of,
                                 const MultisplitConfig& cfg);

MultisplitResult multisplit_pairs(sim::Device& dev,
                                  const sim::DeviceBuffer<u32>& keys_in,
                                  const sim::DeviceBuffer<u32>& vals_in,
                                  sim::DeviceBuffer<u32>& keys_out,
                                  sim::DeviceBuffer<u32>& vals_out, u32 m,
                                  const BucketFunction& bucket_of,
                                  const MultisplitConfig& cfg);

}  // namespace ms::split
