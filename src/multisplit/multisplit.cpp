#include "multisplit/multisplit.hpp"

namespace ms::split {

MultisplitResult multisplit_keys(sim::Device& dev,
                                 const sim::DeviceBuffer<u32>& in,
                                 sim::DeviceBuffer<u32>& out, u32 m,
                                 const BucketFunction& bucket_of,
                                 const MultisplitConfig& cfg) {
  return multisplit_keys(dev, in, out, m, detail::ErasedBucket{&bucket_of},
                         cfg);
}

MultisplitResult multisplit_pairs(sim::Device& dev,
                                  const sim::DeviceBuffer<u32>& keys_in,
                                  const sim::DeviceBuffer<u32>& vals_in,
                                  sim::DeviceBuffer<u32>& keys_out,
                                  sim::DeviceBuffer<u32>& vals_out, u32 m,
                                  const BucketFunction& bucket_of,
                                  const MultisplitConfig& cfg) {
  return multisplit_pairs(dev, keys_in, vals_in, keys_out, vals_out, m,
                          detail::ErasedBucket{&bucket_of}, cfg);
}

}  // namespace ms::split
