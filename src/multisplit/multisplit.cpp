#include "multisplit/multisplit.hpp"

namespace ms::split {

std::string to_string(Method m) {
  switch (m) {
    case Method::kDirect: return "Direct MS";
    case Method::kWarpLevel: return "Warp-level MS";
    case Method::kBlockLevel: return "Block-level MS";
    case Method::kScanSplit: return "Scan-based split";
    case Method::kRecursiveScanSplit: return "Recursive scan split";
    case Method::kReducedBitSort: return "Reduced-bit sort";
    case Method::kRandomizedInsertion: return "Randomized insertion";
    case Method::kFusedBucketSort: return "Fused-bucket sort";
  }
  return "?";
}

namespace {
/// Adapter giving std::function-based callers an honest evaluation charge.
struct ErasedBucket {
  const BucketFunction* fn;
  u32 operator()(u32 key) const { return (*fn)(key); }
  static constexpr u32 charge_cost = 2;
};
}  // namespace

MultisplitResult multisplit_keys(sim::Device& dev,
                                 const sim::DeviceBuffer<u32>& in,
                                 sim::DeviceBuffer<u32>& out, u32 m,
                                 const BucketFunction& bucket_of,
                                 const MultisplitConfig& cfg) {
  return multisplit_keys(dev, in, out, m, ErasedBucket{&bucket_of}, cfg);
}

MultisplitResult multisplit_pairs(sim::Device& dev,
                                  const sim::DeviceBuffer<u32>& keys_in,
                                  const sim::DeviceBuffer<u32>& vals_in,
                                  sim::DeviceBuffer<u32>& keys_out,
                                  sim::DeviceBuffer<u32>& vals_out, u32 m,
                                  const BucketFunction& bucket_of,
                                  const MultisplitConfig& cfg) {
  return multisplit_pairs(dev, keys_in, vals_in, keys_out, vals_out, m,
                          ErasedBucket{&bucket_of}, cfg);
}

}  // namespace ms::split
