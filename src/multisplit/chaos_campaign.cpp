// Campaign driver: see chaos_campaign.hpp for the contract.
#include "multisplit/chaos_campaign.hpp"

#include <sstream>

#include "multisplit/bucket.hpp"
#include "multisplit/plan.hpp"
#include "sim/memory.hpp"
#include "sim/span.hpp"

namespace ms::split {

namespace {

/// splitmix64 (same mixer the chaos engine uses); the campaign derives one
/// independent key stream per request from (campaign seed, request index).
u64 mix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Host ground truth: the stable partition RangeBucket{m} induces.
void reference_split(const std::vector<u32>& keys, u32 m,
                     std::vector<u32>* offsets, std::vector<u32>* sorted) {
  const RangeBucket bucket{m};
  std::vector<u32> counts(m, 0);
  for (const u32 k : keys) counts[bucket(k)] += 1;
  offsets->assign(m + 1, 0);
  for (u32 j = 0; j < m; ++j) (*offsets)[j + 1] = (*offsets)[j] + counts[j];
  std::vector<u32> cursor(offsets->begin(), offsets->end() - 1);
  sorted->resize(keys.size());
  for (const u32 k : keys) (*sorted)[cursor[bucket(k)]++] = k;
}

sim::DeviceProfile profile_by_name(const std::string& name) {
  if (name == "750ti") return sim::DeviceProfile::gtx_750_ti();
  if (name == "sol") return sim::DeviceProfile::speed_of_light();
  return sim::DeviceProfile::tesla_k40c();
}

}  // namespace

ChaosCampaignReport run_chaos_campaign(const ChaosCampaignConfig& cfg) {
  check(!cfg.methods.empty(), "chaos campaign: need at least one method");
  check(cfg.m >= 1, "chaos campaign: need at least one bucket");

  ChaosCampaignReport rep;
  rep.config = cfg;

  sim::Device dev(profile_by_name(cfg.profile));
  dev.enable_chaos(cfg.chaos);
  if (cfg.record_spans) dev.enable_spans();

  const u64 n = u64{1} << cfg.log2_n;
  // Created AFTER enable_chaos, so both register with the engine.  The
  // input is protected: retries must re-execute against pristine keys, and
  // the ground-truth audit below is only meaningful if the reference input
  // survives the campaign.  The output stays fair game.
  sim::DeviceBuffer<u32> in(dev, n, "campaign.in");
  sim::DeviceBuffer<u32> out(dev, n, "campaign.out");
  dev.chaos()->protect_buffer(in.base_address());

  // Plans are built once per method (host-side only) and reused across
  // requests -- the serving pattern the resilient executor targets.
  std::vector<MultisplitPlan> plans;
  plans.reserve(cfg.methods.size());
  for (const Method m : cfg.methods) {
    MultisplitConfig mc;
    mc.method = m;
    plans.emplace_back(dev, n, cfg.m, mc);
  }

  const RangeBucket bucket{cfg.m};
  std::vector<u32> keys(n);
  std::vector<u32> want_offsets, want_sorted;

  for (u32 req = 0; req < cfg.requests; ++req) {
    // Fresh deterministic keys for this request.
    const u64 stream = mix64(cfg.seed ^ (u64{req} + 1));
    for (u64 i = 0; i < n; ++i) {
      keys[i] = static_cast<u32>(mix64(stream + i));
    }
    std::copy(keys.begin(), keys.end(), in.host().begin());
    reference_split(keys, cfg.m, &want_offsets, &want_sorted);

    const MultisplitPlan& plan = plans[req % plans.size()];
    MultisplitResult r;
    bool ran = false;
    try {
      r = plan.run(in, out, bucket, cfg.retry);
      ran = true;
    } catch (const sim::SimError&) {
      // Structured failure: the request surfaced an error instead of a
      // result.  Drain the sticky error so the audit of the next request
      // starts clean (run_resilient drains on entry too; this keeps the
      // device presentable for callers inspecting it between requests).
      (void)dev.take_last_error();
      rep.structured_errors += 1;
    }
    if (!ran) continue;

    rep.retries += r.resilience.retries;
    rep.fallbacks += r.resilience.fallbacks;

    // Independent audit against the host ground truth -- the executor's
    // own validator is part of the system under test, so the campaign
    // never trusts it.  All campaign methods are stable, so the output
    // must equal the stable partition exactly.
    bool correct = r.bucket_offsets.size() == want_offsets.size();
    if (correct) {
      for (std::size_t j = 0; j < want_offsets.size(); ++j) {
        if (r.bucket_offsets[j] != want_offsets[j]) correct = false;
      }
    }
    if (correct) {
      const std::span<const u32> got = std::as_const(out).host();
      for (u64 i = 0; i < n; ++i) {
        if (got[i] != want_sorted[i]) {
          correct = false;
          break;
        }
      }
    }
    if (correct) {
      // The protected input must still hold the generated keys.
      const std::span<const u32> src = std::as_const(in).host();
      for (u64 i = 0; i < n; ++i) {
        if (src[i] != keys[i]) {
          correct = false;
          break;
        }
      }
    }
    if (!correct) {
      rep.silent_wrong += 1;
    } else if (r.resilience.attempts > 1) {
      rep.recovered += 1;
    } else {
      rep.ok_first_try += 1;
    }
  }

  rep.stats = dev.resilience_stats();
  rep.injections = dev.chaos()->log();
  if (cfg.record_spans) {
    std::ostringstream spans;
    sim::write_spans_jsonl(spans, *dev.spans(), "chaos_campaign",
                           dev.profile().name);
    rep.spans_jsonl = spans.str();
  }
  return rep;
}

std::string format_campaign(const ChaosCampaignReport& rep) {
  const ChaosCampaignConfig& c = rep.config;
  std::ostringstream os;
  os << "chaos campaign: " << c.requests << " requests, n=2^" << c.log2_n
     << ", m=" << c.m << ", seed=0x" << std::hex << c.seed << std::dec
     << "\n";
  os << "methods:";
  for (const Method m : c.methods) os << " " << method_token(m);
  os << "\n";
  os << "policy: p_alloc_fail=" << c.chaos.p_alloc_fail
     << " p_launch_abort=" << c.chaos.p_launch_abort
     << " p_bit_flip=" << c.chaos.p_bit_flip
     << " p_l2_corrupt=" << c.chaos.p_l2_corrupt << "\n\n";

  const sim::ResilienceStats& s = rep.stats;
  os << "injected faults\n";
  os << "  alloc failures     " << s.injected_alloc_failures << "\n";
  os << "  launch aborts      " << s.injected_launch_aborts << "\n";
  os << "  bit flips          " << s.injected_bit_flips << "\n";
  os << "  l2 corruptions     " << s.injected_l2_corruptions << "\n";
  os << "  total              " << s.injected_total() << "\n\n";

  os << "executor response\n";
  os << "  faults detected    " << s.faults_observed << "\n";
  os << "  retries            " << s.retries << "\n";
  os << "  fallbacks          " << s.fallbacks << "\n";
  os << "  validation catches " << s.validation_failures << "\n\n";

  os << "request outcomes (" << rep.total() << "/" << c.requests << ")\n";
  os << "  ok first try       " << rep.ok_first_try << "\n";
  os << "  recovered          " << rep.recovered << "\n";
  os << "  structured errors  " << rep.structured_errors << "\n";
  os << "  SILENT WRONG       " << rep.silent_wrong << "\n\n";

  os << (rep.clean()
             ? "verdict: CLEAN (every fault recovered or surfaced)\n"
             : "verdict: FAILED (silent wrong results or lost requests)\n");
  return os.str();
}

}  // namespace ms::split
